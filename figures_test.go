// Figure-scenario tests: one end-to-end reproduction per figure of the
// paper, on the live stack. These are the F1–F5 rows of DESIGN.md's
// experiment index (unit-level variants live in the respective packages).
package causalshare_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/consistency"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/lockarb"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/shareddata"
	"causalshare/internal/total"
	ctrace "causalshare/internal/trace"
	"causalshare/internal/transport"
)

// newAuditedCollector pairs a figure scenario's trace collector with an
// offline consistency history recorder. Declared mode: the scenarios'
// upper layers (front-end, sequencer, arbiter) chain their own traffic but
// do not re-declare every delivery they observed, which is exactly the
// paper's Λ-causality contract.
func newAuditedCollector() (*ctrace.Collector, *consistency.Recorder) {
	hist := consistency.NewDeclaredRecorder()
	return ctrace.NewCollector(ctrace.Config{Observer: hist}), hist
}

// assertAuditClean fails the test if the online trace auditor caught any
// consistency violation during the scenario, or if the offline checker's
// whole-history CC/CCv/CM verdicts do not all hold over what the recorder
// saw.
func assertAuditClean(t *testing.T, col *ctrace.Collector, hist *consistency.Recorder) {
	t.Helper()
	if n := col.ViolationCount(); n != 0 {
		t.Errorf("online trace audit caught %d violations: %v", n, col.Violations())
	}
	rep, err := consistency.Check(hist.History())
	if err != nil {
		t.Fatalf("offline consistency check: %v", err)
	}
	if !rep.AllHold() {
		t.Errorf("offline consistency check over %d recorded ops: %s", rep.Ops, rep)
	}
}

// TestFigure1Scenario reproduces Figure 1: entities sharing a data VAL
// through broadcast data-access messages — every access is seen by every
// entity, and the entities converge on the same value.
func TestFigure1Scenario(t *testing.T) {
	ids := []string{"e1", "e2", "e3"}
	grp := group.MustNew("fig1", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 3 * time.Millisecond, Seed: 41})
	defer func() { _ = net.Close() }()

	trace := obs.NewTrace()
	col, hist := newAuditedCollector()
	replicas := map[string]*core.Replica{}
	engines := map[string]*causal.OSend{}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self: id, Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: trace.Observer(id, rep.Deliver),
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = rep
		engines[id] = eng
	}

	// Each entity issues one access message; all must see all three.
	fe, err := core.NewFrontEnd("cli", engines["e1"])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		op := shareddata.Inc()
		if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
			t.Fatal(err)
		}
	}
	rd := shareddata.Read()
	if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Applied() < 7 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("entities did not converge")
		}
		time.Sleep(time.Millisecond)
	}
	if n, err := trace.SameDeliverySet(); err != nil || n != 7 {
		t.Fatalf("delivery sets: %d, %v", n, err)
	}
	ref, _ := replicas["e1"].ReadStable()
	for _, id := range ids[1:] {
		st, _ := replicas[id].ReadStable()
		if st.Digest() != ref.Digest() {
			t.Errorf("entity %s VAL %s, want %s", id, st.Digest(), ref.Digest())
		}
	}
	assertAuditClean(t, col, hist)
}

// TestFigure2Scenario reproduces Figure 2's computation R(M) =
// mk -> ||{mi', mj'} -> mj” at full-stack level: the concurrent middle
// messages may interleave differently per member, but all members share
// the view when the synchronization message arrives.
func TestFigure2Scenario(t *testing.T) {
	ids := []string{"ai", "aj", "ak"}
	grp := group.MustNew("fig2", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 4 * time.Millisecond, Seed: 43})
	defer func() { _ = net.Close() }()

	col, hist := newAuditedCollector()
	replicas := map[string]*core.Replica{}
	engines := map[string]*causal.OSend{}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self: id, Initial: shareddata.NewCounter(0), Apply: shareddata.ApplyCounter,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: rep.Deliver,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = rep
		engines[id] = eng
	}

	mk := message.Message{Label: message.Label{Origin: "ak", Seq: 1}, Kind: message.KindNonCommutative, Op: "set", Body: []byte("10")}
	mi := message.Message{Label: message.Label{Origin: "ai", Seq: 1}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "inc"}
	mj := message.Message{Label: message.Label{Origin: "aj", Seq: 1}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "dec"}
	sync := message.Message{Label: message.Label{Origin: "aj", Seq: 2}, Deps: message.After(mi.Label, mj.Label), Kind: message.KindRead, Op: "rd"}
	for _, step := range []struct {
		from string
		m    message.Message
	}{{"ak", mk}, {"ai", mi}, {"aj", mj}, {"aj", sync}} {
		if err := engines[step.from].Broadcast(step.m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, rep := range replicas {
			if rep.Cycle() < 2 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sync point never reached")
		}
		time.Sleep(time.Millisecond)
	}
	histories := map[string][]core.StablePoint{}
	for id, rep := range replicas {
		histories[id] = rep.StablePoints()
	}
	audit := obs.AuditStablePoints(histories)
	if !audit.Consistent() || audit.Points != 2 {
		t.Fatalf("audit = %+v", audit)
	}
	// The agreed value: set(10), one inc, one dec -> 10.
	st, _ := replicas["ai"].ReadStable()
	if st.Digest() != shareddata.NewCounter(10).Digest() {
		t.Errorf("agreed value %s, want counter:10", st.Digest())
	}
	assertAuditClean(t, col, hist)
}

// TestFigure3GraphForms reproduces Figure 3's dependency-graph forms from
// observed executions: many-to-one (concurrent dependents) and one-to-many
// AND-dependency, extracted via the obs tracer.
func TestFigure3GraphForms(t *testing.T) {
	tr := obs.NewTrace()
	rec := tr.Observer("m", nil)
	col, hist := newAuditedCollector()
	spans := col.Tracer("m")
	msgNode := message.Message{Label: message.Label{Origin: "s", Seq: 1}, Kind: message.KindNonCommutative, Op: "Msg"}
	m1 := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Deps: message.After(msgNode.Label), Kind: message.KindCommutative, Op: "m1"}
	m2 := message.Message{Label: message.Label{Origin: "b", Seq: 1}, Deps: message.After(msgNode.Label), Kind: message.KindCommutative, Op: "m2"}
	msg2 := message.Message{Label: message.Label{Origin: "s", Seq: 2}, Deps: message.After(m1.Label, m2.Label), Kind: message.KindNonCommutative, Op: "Msg'"}
	for _, m := range []*message.Message{&msgNode, &m1, &m2, &msg2} {
		m.Span = col.Tracer(m.Label.Origin).Broadcast(*m)
		rec(*m)
		spans.Enqueue(*m)
		spans.Deliver(*m)
	}
	g, err := tr.ExtractGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Concurrent(m1.Label, m2.Label) {
		t.Error("many-to-one dependents not concurrent")
	}
	if !g.HappensBefore(msgNode.Label, msg2.Label) {
		t.Error("transitive AND-dependency lost")
	}
	if lin := g.CountLinearizations(0); lin != 2 {
		t.Errorf("diamond admits %d orders, want 2", lin)
	}
	assertAuditClean(t, col, hist)
}

// TestFigure4TotalOrderLayer reproduces Figure 4: a total-ordering
// function interposed between the causal broadcast layer and the
// application orders spontaneously generated messages identically at all
// members, while the application can keep using causal broadcast
// directly underneath.
func TestFigure4TotalOrderLayer(t *testing.T) {
	ids := []string{"a", "b", "c"}
	grp := group.MustNew("fig4", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 3 * time.Millisecond, Seed: 47})
	defer func() { _ = net.Close() }()

	type member struct {
		layer  *total.Sequencer
		engine *causal.OSend
		mu     sync.Mutex
		order  []string
	}
	members := map[string]*member{}
	orderSnapshot := func(mb *member) []string {
		mb.mu.Lock()
		defer mb.mu.Unlock()
		return append([]string(nil), mb.order...)
	}
	defer func() {
		for _, m := range members {
			_ = m.layer.Close()
			_ = m.engine.Close()
		}
	}()
	col, hist := newAuditedCollector()
	for _, id := range ids {
		mb := &member{}
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver: func(m message.Message) {
				mb.mu.Lock()
				mb.order = append(mb.order, m.Op)
				mb.mu.Unlock()
			},
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		sq.Bind(eng)
		mb.layer = sq
		mb.engine = eng
		members[id] = mb
	}
	// Spontaneous messages from every member, racing each other.
	for i := 0; i < 5; i++ {
		for _, id := range ids {
			op := fmt.Sprintf("spont-%s-%d", id, i)
			if _, err := members[id].layer.ASend(op, message.KindNonCommutative, nil, message.Unconstrained()); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, mb := range members {
			if len(orderSnapshot(mb)) < 15 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("total order never completed")
		}
		time.Sleep(time.Millisecond)
	}
	ref := orderSnapshot(members[ids[0]])
	for _, id := range ids[1:] {
		got := orderSnapshot(members[id])
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("member %s order diverges at %d: %s vs %s", id, i, got[i], ref[i])
			}
		}
	}
	assertAuditClean(t, col, hist)
}

// TestFigure5Arbitration reproduces Figure 5: LOCK/TFR cycles over the
// total order; members A, B, C agree on every holder across cycles S.
func TestFigure5Arbitration(t *testing.T) {
	ids := []string{"A", "B", "C"}
	grp := group.MustNew("fig5", ids)
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: 53})
	defer func() { _ = net.Close() }()

	arbiters := map[string]*lockarb.Arbiter{}
	var logMu sync.Mutex
	grantLogs := map[string][]string{}
	logSnapshot := func(id string) []string {
		logMu.Lock()
		defer logMu.Unlock()
		return append([]string(nil), grantLogs[id]...)
	}
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	col, hist := newAuditedCollector()
	for _, id := range ids {
		id := id
		var arb *lockarb.Arbiter
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver: func(m message.Message) { arb.Ingest(m) },
			Tracer:  col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
			Tracer: col.Tracer(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		sq.Bind(eng)
		arb, err = lockarb.NewArbiter(lockarb.Config{
			Self: id, Group: grp, Layer: sq,
			OnGrant: func(holder string, cycle uint64) {
				logMu.Lock()
				grantLogs[id] = append(grantLogs[id], fmt.Sprintf("%s@%d", holder, cycle))
				logMu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		arbiters[id] = arb
		closers = append(closers, func() { _ = sq.Close(); _ = eng.Close() })
	}
	for _, id := range ids {
		if err := arbiters[id].Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Two arbitration cycles, all members requesting — sequential
	// acquire/release per member driven from one goroutine per member.
	done := make(chan error, len(ids))
	for _, id := range ids {
		go func(id string) {
			for s := 0; s < 2; s++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				if _, err := arbiters[id].Acquire(ctx); err != nil {
					cancel()
					done <- err
					return
				}
				if err := arbiters[id].Release(); err != nil {
					cancel()
					done <- err
					return
				}
				cancel()
			}
			done <- nil
		}(id)
	}
	for range ids {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(logSnapshot(ids[0])) >= 6 && len(logSnapshot(ids[1])) >= 6 && len(logSnapshot(ids[2])) >= 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ref := logSnapshot(ids[0])
	if len(ref) < 6 {
		t.Fatalf("only %d grants observed", len(ref))
	}
	for _, id := range ids[1:] {
		got := logSnapshot(id)
		limit := len(ref)
		if len(got) < limit {
			limit = len(got)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				t.Fatalf("member %s grant %d = %s, want %s", id, i, got[i], ref[i])
			}
		}
	}
	assertAuditClean(t, col, hist)
}
