// Package causalshare reproduces K. Ravindran & K. Shah, "Causal
// Broadcasting and Consistency of Distributed Shared Data" (ICDCS 1994):
// a model that ties the consistency of replicated shared data to the
// causal ordering of the data-access messages, so that replicas agree at
// application-chosen stable points without running agreement protocols.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory): explicit-dependency causal broadcast (OSend) with a
// vector-clock CBCAST baseline, the ASend total-ordering layer, the §6.1
// replicated-data access protocol with stable-point detection, the §6.2
// decentralized lock arbitration, replicated data types, comparison
// baselines, a deterministic simulator, and the E1–E10 experiment
// harness. Runnable entry points are under cmd/ and examples/; the
// benchmarks in bench_test.go regenerate every experiment table.
package causalshare
