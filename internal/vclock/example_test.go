package vclock_test

import (
	"fmt"

	"causalshare/internal/vclock"
)

func ExampleVC_Compare() {
	send := vclock.New()
	send.Tick("p1") // p1 sends m

	recv := vclock.New()
	recv.Merge(send)
	recv.Tick("p2") // p2's event after delivering m

	other := vclock.New()
	other.Tick("p3") // independent event

	fmt.Println(send.Compare(recv))
	fmt.Println(send.Compare(other))
	// Output:
	// <
	// ||
}

func ExampleVC_CausallyReady() {
	local := vclock.VC{"s": 1, "p": 2}
	next := vclock.VC{"s": 2, "p": 2}    // s's next message, deps seen
	tooNew := vclock.VC{"s": 3, "p": 2}  // FIFO gap
	missing := vclock.VC{"s": 2, "q": 1} // unseen causal predecessor
	fmt.Println(local.CausallyReady(next, "s"))
	fmt.Println(local.CausallyReady(tooNew, "s"))
	fmt.Println(local.CausallyReady(missing, "s"))
	// Output:
	// true
	// false
	// false
}
