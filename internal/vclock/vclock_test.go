package vclock

import (
	"testing"
	"testing/quick"
)

func TestCompareTable(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want Ordering
	}{
		{"both empty", VC{}, VC{}, Equal},
		{"nil vs empty", nil, VC{}, Equal},
		{"identical", VC{"a": 1, "b": 2}, VC{"a": 1, "b": 2}, Equal},
		{"strictly before", VC{"a": 1}, VC{"a": 2}, Before},
		{"strictly after", VC{"a": 3}, VC{"a": 2}, After},
		{"before with extra id", VC{"a": 1}, VC{"a": 1, "b": 1}, Before},
		{"after with extra id", VC{"a": 1, "b": 1}, VC{"a": 1}, After},
		{"concurrent simple", VC{"a": 1}, VC{"b": 1}, Concurrent},
		{"concurrent crossed", VC{"a": 2, "b": 1}, VC{"a": 1, "b": 2}, Concurrent},
		{"zero entries ignored", VC{"a": 1, "b": 0}, VC{"a": 1}, Equal},
		{"missing vs zero", VC{}, VC{"a": 0}, Equal},
		{"empty before nonempty", VC{}, VC{"a": 1}, Before},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	inverse := map[Ordering]Ordering{
		Equal: Equal, Before: After, After: Before, Concurrent: Concurrent,
	}
	pairs := []struct{ a, b VC }{
		{VC{"a": 1}, VC{"a": 2}},
		{VC{"a": 1}, VC{"b": 1}},
		{VC{"a": 1, "b": 2}, VC{"a": 1, "b": 2}},
		{VC{"a": 5, "c": 1}, VC{"a": 5, "b": 9}},
	}
	for _, p := range pairs {
		ab, ba := p.a.Compare(p.b), p.b.Compare(p.a)
		if inverse[ab] != ba {
			t.Errorf("Compare(%v,%v)=%v but Compare(%v,%v)=%v", p.a, p.b, ab, p.b, p.a, ba)
		}
	}
}

func TestTickMergeSemantics(t *testing.T) {
	a, b := New(), New()
	a.Tick("p1")         // p1 event 1
	stamped := a.Clone() // message m carries {p1:1}
	b.Merge(stamped)     // p2 receives m
	b.Tick("p2")         // p2 event after m
	if got := stamped.Compare(b); got != Before {
		t.Fatalf("message clock should precede receiver's post-event clock, got %v", got)
	}
	c := New()
	c.Tick("p3") // independent event at p3
	if got := stamped.Compare(c); got != Concurrent {
		t.Fatalf("independent events should be concurrent, got %v", got)
	}
}

func TestCausallyReady(t *testing.T) {
	tests := []struct {
		name   string
		local  VC
		msg    VC
		sender string
		want   bool
	}{
		{"first from sender", VC{}, VC{"s": 1}, "s", true},
		{"fifo gap", VC{}, VC{"s": 2}, "s", false},
		{"fifo next", VC{"s": 3}, VC{"s": 4}, "s", true},
		{"fifo duplicate", VC{"s": 3}, VC{"s": 3}, "s", false},
		{"missing causal predecessor", VC{}, VC{"s": 1, "p": 1}, "s", false},
		{"predecessor satisfied", VC{"p": 1}, VC{"s": 1, "p": 1}, "s", true},
		{"predecessor over-satisfied", VC{"p": 5}, VC{"s": 1, "p": 1}, "s", true},
		{"no sender component", VC{}, VC{"p": 1}, "s", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.local.CausallyReady(tt.msg, tt.sender); got != tt.want {
				t.Errorf("CausallyReady(%v, %v, %q) = %v, want %v",
					tt.local, tt.msg, tt.sender, got, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := VC{"x": 1}
	b := a.Clone()
	b.Tick("x")
	if a["x"] != 1 {
		t.Fatalf("Clone aliased underlying map: a=%v", a)
	}
	var nilVC VC
	c := nilVC.Clone()
	c.Tick("y") // must not panic
	if c["y"] != 1 {
		t.Fatalf("Clone of nil not usable: %v", c)
	}
}

func TestDominates(t *testing.T) {
	a := VC{"a": 2, "b": 1}
	if !a.Dominates(a.Clone()) {
		t.Error("clock must dominate itself")
	}
	if !a.Dominates(VC{"a": 1}) {
		t.Error("superset clock must dominate subset")
	}
	if a.Dominates(VC{"c": 1}) {
		t.Error("must not dominate clock with unseen component")
	}
}

func TestStringDeterministic(t *testing.T) {
	v := VC{"b": 2, "a": 1, "c": 3}
	want := "{a:1 b:2 c:3}"
	for i := 0; i < 10; i++ {
		if got := v.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tests := []VC{
		{},
		{"a": 1},
		{"node-1": 42, "node-2": 7, "": 3},
		{"x": 1<<63 + 5},
	}
	for _, v := range tests {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary(%v): %v", v, err)
		}
		var got VC
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary(%v): %v", v, err)
		}
		if got.Compare(v) != Equal || len(got) != len(v) {
			t.Errorf("round trip of %v produced %v", v, got)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid, _ := VC{"abc": 9}.MarshalBinary()
	tests := []struct {
		name string
		data []byte
	}{
		{"empty input", nil},
		{"truncated id", valid[:2]},
		{"truncated counter", valid[:len(valid)-1]},
		{"trailing garbage", append(append([]byte{}, valid...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var v VC
			if err := v.UnmarshalBinary(tt.data); err == nil {
				t.Errorf("UnmarshalBinary(%x) succeeded, want error", tt.data)
			}
		})
	}
}

// propVC converts the fuzz input into a small clock over a bounded id space
// so comparisons exercise overlapping components.
func propVC(xs []uint8) VC {
	ids := []string{"a", "b", "c", "d"}
	v := New()
	for i, x := range xs {
		if i >= len(ids) {
			break
		}
		if x%2 == 0 {
			v[ids[i]] = uint64(x / 2)
		}
	}
	return v
}

func TestPropMergeIsLUB(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := propVC(xs), propVC(ys)
		m := a.Merged(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := propVC(xs), propVC(ys)
		return a.Merged(b).Compare(b.Merged(a)) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMergeIdempotent(t *testing.T) {
	f := func(xs []uint8) bool {
		a := propVC(xs)
		return a.Merged(a).Compare(a) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompareConsistentWithDominates(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := propVC(xs), propVC(ys)
		switch a.Compare(b) {
		case Before:
			return b.Dominates(a) && !a.Dominates(b)
		case After:
			return a.Dominates(b) && !b.Dominates(a)
		case Equal:
			return a.Dominates(b) && b.Dominates(a)
		case Concurrent:
			return !a.Dominates(b) && !b.Dominates(a)
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(xs []uint8) bool {
		v := propVC(xs)
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var got VC
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Compare(v) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTransitivity(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		a, b, c := propVC(xs), propVC(ys), propVC(zs)
		if a.Compare(b) == Before && b.Compare(c) == Before {
			return a.Compare(c) == Before
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum(t *testing.T) {
	if got := (VC{"a": 2, "b": 3}).Sum(); got != 5 {
		t.Errorf("Sum = %d, want 5", got)
	}
	if got := (VC{}).Sum(); got != 0 {
		t.Errorf("Sum of empty = %d, want 0", got)
	}
}
