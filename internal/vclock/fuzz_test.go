package vclock

import (
	"bytes"
	"testing"
)

// FuzzVCUnmarshal checks the clock codec never panics on arbitrary bytes
// and that accepted inputs normalize to a stable canonical encoding.
func FuzzVCUnmarshal(f *testing.F) {
	for _, vc := range []VC{{}, {"a": 1}, {"node-1": 42, "node-2": 7}, {"x": 1 << 62}} {
		data, err := vc.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		var v VC
		if err := v.UnmarshalBinary(data); err != nil {
			return
		}
		canon, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again VC
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if again.Compare(v) != Equal {
			t.Fatalf("round trip changed clock: %v vs %v", v, again)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixpoint")
		}
	})
}
