package vclock

import "sync"

// Lamport is a scalar logical clock (Lamport 1978). It is consistent with
// happens-before — if a -> b then L(a) < L(b) — but, unlike a vector clock,
// cannot distinguish concurrency from precedence. The total-order layer
// (package total) uses Lamport timestamps with a deterministic process-id
// tie-break to impose an identical order at all members.
//
// Lamport is safe for concurrent use. The zero value is ready to use.
type Lamport struct {
	mu  sync.Mutex
	now uint64
}

// Now returns the current clock value without advancing it.
func (l *Lamport) Now() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now
}

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now++
	return l.now
}

// Witness incorporates a timestamp observed on an incoming message:
// the clock jumps past it and ticks. Returns the new value.
func (l *Lamport) Witness(t uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t > l.now {
		l.now = t
	}
	l.now++
	return l.now
}

// Stamp is a totally ordered (time, process) pair. Stamps from distinct
// processes are never equal, so sorting by Stamp yields the same sequence
// at every member — the property ASend relies on.
type Stamp struct {
	Time uint64
	Proc string
}

// Less reports whether s orders strictly before o: first by Time, ties
// broken by Proc.
func (s Stamp) Less(o Stamp) bool {
	if s.Time != o.Time {
		return s.Time < o.Time
	}
	return s.Proc < o.Proc
}
