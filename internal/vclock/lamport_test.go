package vclock

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestLamportTick(t *testing.T) {
	var l Lamport
	if l.Now() != 0 {
		t.Fatalf("zero-value clock Now = %d, want 0", l.Now())
	}
	for want := uint64(1); want <= 5; want++ {
		if got := l.Tick(); got != want {
			t.Fatalf("Tick = %d, want %d", got, want)
		}
	}
}

func TestLamportWitness(t *testing.T) {
	tests := []struct {
		name    string
		initial uint64
		seen    uint64
		want    uint64
	}{
		{"witness ahead", 2, 10, 11},
		{"witness behind", 10, 2, 11},
		{"witness equal", 5, 5, 6},
		{"witness zero", 0, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var l Lamport
			for i := uint64(0); i < tt.initial; i++ {
				l.Tick()
			}
			if got := l.Witness(tt.seen); got != tt.want {
				t.Errorf("Witness(%d) from %d = %d, want %d", tt.seen, tt.initial, got, tt.want)
			}
		})
	}
}

func TestLamportConcurrentUse(t *testing.T) {
	var l Lamport
	const goroutines, ticks = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < ticks; j++ {
				l.Tick()
			}
		}()
	}
	wg.Wait()
	if got := l.Now(); got != goroutines*ticks {
		t.Fatalf("after %d concurrent ticks Now = %d", goroutines*ticks, got)
	}
}

func TestStampLess(t *testing.T) {
	tests := []struct {
		name string
		a, b Stamp
		want bool
	}{
		{"time orders first", Stamp{1, "z"}, Stamp{2, "a"}, true},
		{"proc breaks ties", Stamp{3, "a"}, Stamp{3, "b"}, true},
		{"equal is not less", Stamp{3, "a"}, Stamp{3, "a"}, false},
		{"reverse", Stamp{4, "a"}, Stamp{3, "a"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("(%v).Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestPropStampTotalOrder(t *testing.T) {
	mk := func(t uint8, p bool) Stamp {
		proc := "a"
		if p {
			proc = "b"
		}
		return Stamp{Time: uint64(t % 4), Proc: proc}
	}
	// Trichotomy: exactly one of a<b, b<a, a==b.
	f := func(t1 uint8, p1 bool, t2 uint8, p2 bool) bool {
		a, b := mk(t1, p1), mk(t2, p2)
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		count := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStampSortDeterministic(t *testing.T) {
	stamps := []Stamp{{2, "b"}, {1, "c"}, {2, "a"}, {1, "a"}}
	want := []Stamp{{1, "a"}, {1, "c"}, {2, "a"}, {2, "b"}}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i].Less(stamps[j]) })
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, stamps[i], want[i])
		}
	}
}
