// Package vclock implements logical clocks for tracking the causal
// precedence of events in a distributed computation.
//
// The paper's causal relations R(M) are Lamport "happens before" relations
// on messages (Ravindran & Shah, §2.1). Two clock families are provided:
//
//   - VC, a vector clock that characterizes happens-before exactly: for
//     events a and b, a -> b iff VC(a) < VC(b), and a || b iff the clocks
//     are incomparable.
//   - Lamport, a scalar clock that is consistent with happens-before
//     (a -> b implies L(a) < L(b)) but cannot detect concurrency.
//
// The vector-clock CBCAST baseline in package causal piggybacks a VC on
// every broadcast; the paper's OSend engine instead carries explicit
// dependency labels, and package causal's benchmarks compare the two.
package vclock

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Ordering is the outcome of comparing two vector clocks.
type Ordering int

// Possible results of VC.Compare. Equal means identical component-wise;
// Before/After are strict happens-before relations; Concurrent means the
// clocks are incomparable (neither dominates).
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns the conventional symbol for the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "="
	case Before:
		return "<"
	case After:
		return ">"
	case Concurrent:
		return "||"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// VC is a vector clock: a map from process identifier to the number of
// events that process has locally stamped. The zero value (nil map) is a
// valid clock representing "no events observed"; all methods treat missing
// entries as zero.
type VC map[string]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Clone returns a deep copy of the clock. Clone of nil returns an empty,
// non-nil clock so the caller may mutate it.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Get returns the component for process id (zero if absent).
func (v VC) Get(id string) uint64 { return v[id] }

// Set assigns the component for process id.
func (v VC) Set(id string, n uint64) { v[id] = n }

// Tick increments the component for process id and returns the new value.
// It is the event-stamping operation performed when a process sends a
// message.
func (v VC) Tick(id string) uint64 {
	v[id]++
	return v[id]
}

// Merge sets each component of v to the maximum of v's and o's components.
// It is the receive-side operation of the vector-clock algorithm.
func (v VC) Merge(o VC) {
	for k, n := range o {
		if n > v[k] {
			v[k] = n
		}
	}
}

// Merged returns a new clock that is the component-wise maximum of v and o.
func (v VC) Merged(o VC) VC {
	out := v.Clone()
	out.Merge(o)
	return out
}

// Compare classifies the relation between v and o.
func (v VC) Compare(o VC) Ordering {
	vLess, oLess := false, false
	for k, n := range v {
		switch m := o[k]; {
		case n < m:
			vLess = true
		case n > m:
			oLess = true
		}
	}
	for k, m := range o {
		if _, ok := v[k]; !ok && m > 0 {
			vLess = true
		}
	}
	switch {
	case vLess && oLess:
		return Concurrent
	case vLess:
		return Before
	case oLess:
		return After
	default:
		return Equal
	}
}

// HappensBefore reports whether v < o (strict causal precedence).
func (v VC) HappensBefore(o VC) bool { return v.Compare(o) == Before }

// ConcurrentWith reports whether v || o.
func (v VC) ConcurrentWith(o VC) bool { return v.Compare(o) == Concurrent }

// Dominates reports whether v >= o component-wise, i.e. every event o has
// seen is also reflected in v. Unlike Compare it is not strict: a clock
// dominates itself.
func (v VC) Dominates(o VC) bool {
	c := v.Compare(o)
	return c == Equal || c == After
}

// CausallyReady reports whether a message stamped with clock msg from
// process sender may be delivered at a process whose delivery clock is v,
// under the CBCAST delivery rule (Birman, Schiper & Stephenson):
//
//	msg[sender] == v[sender]+1, and
//	msg[k] <= v[k] for every k != sender.
//
// The first condition enforces FIFO from the sender; the second enforces
// that every message the sender had delivered before sending has also been
// delivered locally.
func (v VC) CausallyReady(msg VC, sender string) bool {
	for k, n := range msg {
		if k == sender {
			if n != v[k]+1 {
				return false
			}
			continue
		}
		if n > v[k] {
			return false
		}
	}
	// A message with no component for its own sender is malformed for
	// delivery purposes: FIFO position 0 never equals v[sender]+1 >= 1.
	if _, ok := msg[sender]; !ok {
		return false
	}
	return true
}

// Sum returns the total number of events reflected in the clock. It is a
// cheap monotone progress measure used by the simulator's metrics.
func (v VC) Sum() uint64 {
	var s uint64
	for _, n := range v {
		s += n
	}
	return s
}

// String renders the clock deterministically as {a:1 b:3}.
func (v VC) String() string {
	ids := make([]string, 0, len(v))
	for k := range v {
		ids = append(ids, k)
	}
	sort.Strings(ids)
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", id, v[id])
	}
	b.WriteByte('}')
	return b.String()
}

// MarshalBinary encodes the clock as a length-prefixed list of
// (id, counter) pairs in sorted id order, so equal clocks have equal
// encodings.
func (v VC) MarshalBinary() ([]byte, error) {
	ids := make([]string, 0, len(v))
	for k := range v {
		ids = append(ids, k)
	}
	sort.Strings(ids)
	buf := make([]byte, 0, 4+len(v)*16)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
		buf = binary.AppendUvarint(buf, v[id])
	}
	return buf, nil
}

// UnmarshalBinary decodes a clock previously encoded with MarshalBinary,
// replacing v's contents.
func (v *VC) UnmarshalBinary(data []byte) error {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return fmt.Errorf("vclock: truncated count")
	}
	data = data[used:]
	// Every entry takes at least 2 bytes on the wire; reject counts that
	// cannot fit before sizing any allocation.
	if n > uint64(len(data))/2 {
		return fmt.Errorf("vclock: entry count %d exceeds input", n)
	}
	out := make(VC, n)
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(data)
		if used <= 0 || uint64(len(data)-used) < l {
			return fmt.Errorf("vclock: truncated id at entry %d", i)
		}
		id := string(data[used : used+int(l)])
		data = data[used+int(l):]
		c, used := binary.Uvarint(data)
		if used <= 0 {
			return fmt.Errorf("vclock: truncated counter for %q", id)
		}
		data = data[used:]
		out[id] = c
	}
	if len(data) != 0 {
		return fmt.Errorf("vclock: %d trailing bytes", len(data))
	}
	*v = out
	return nil
}

// EncodedSize returns the number of bytes MarshalBinary would produce.
// The wire-overhead experiment (E7) uses it to compare vector-clock
// piggyback size against explicit OSend dependency labels.
func (v VC) EncodedSize() int {
	b, _ := v.MarshalBinary() // cannot fail
	return len(b)
}
