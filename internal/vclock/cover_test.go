package vclock

import "testing"

func TestOrderingString(t *testing.T) {
	tests := []struct {
		o    Ordering
		want string
	}{
		{Equal, "="}, {Before, "<"}, {After, ">"}, {Concurrent, "||"},
		{Ordering(99), "Ordering(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestGetSet(t *testing.T) {
	v := New()
	if v.Get("a") != 0 {
		t.Error("missing component not zero")
	}
	v.Set("a", 7)
	if v.Get("a") != 7 {
		t.Errorf("Get = %d after Set(7)", v.Get("a"))
	}
}

func TestHappensBeforeAndConcurrentWith(t *testing.T) {
	a := VC{"p": 1}
	b := VC{"p": 2}
	c := VC{"q": 1}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Error("HappensBefore broken")
	}
	if !a.ConcurrentWith(c) || a.ConcurrentWith(b) {
		t.Error("ConcurrentWith broken")
	}
}

func TestEncodedSize(t *testing.T) {
	small := VC{"a": 1}
	big := VC{"a": 1, "bb": 2, "ccc": 3}
	if small.EncodedSize() <= 0 {
		t.Error("EncodedSize not positive")
	}
	if big.EncodedSize() <= small.EncodedSize() {
		t.Error("EncodedSize not growing with entries")
	}
	data, err := big.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if big.EncodedSize() != len(data) {
		t.Errorf("EncodedSize = %d, marshal length = %d", big.EncodedSize(), len(data))
	}
}
