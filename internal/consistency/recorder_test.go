package consistency

import (
	"testing"

	"causalshare/internal/message"
)

func lbl(origin string, seq uint64) message.Label { return message.Label{Origin: origin, Seq: seq} }

func msg(origin string, seq uint64, kind message.Kind, deps ...message.Label) message.Message {
	return message.Message{Label: lbl(origin, seq), Kind: kind, Deps: message.After(deps...)}
}

// record replays a (kind, member, message) script into a fresh recorder.
type recEv struct {
	kind   evKind
	member string
	m      message.Message
	wm     map[string]uint64
}

func replay(evs ...recEv) *Recorder {
	return replayInto(NewRecorder(), evs...)
}

func replayInto(rec *Recorder, evs ...recEv) *Recorder {
	for _, ev := range evs {
		switch ev.kind {
		case evSend:
			rec.RecordSend(ev.member, ev.m)
		case evDeliver:
			rec.RecordDeliver(ev.member, ev.m)
		case evSeed:
			rec.RecordSeed(ev.member, ev.wm)
		}
	}
	return rec
}

func sendEv(member string, m message.Message) recEv    { return recEv{kind: evSend, member: member, m: m} }
func deliverEv(member string, m message.Message) recEv { return recEv{kind: evDeliver, member: member, m: m} }

// TestRecorderHealthyChain: a chained origin plus an in-order remote
// reader materializes as one register with monotone reads — all three
// verdicts hold, and self-deliveries add no reads.
func TestRecorderHealthyChain(t *testing.T) {
	m1 := msg("a", 1, message.KindNonCommutative)
	m2 := msg("a", 2, message.KindNonCommutative, m1.Label)
	m3 := msg("a", 3, message.KindNonCommutative, m2.Label)
	rec := replay(
		sendEv("a", m1), deliverEv("a", m1), deliverEv("b", m1),
		sendEv("a", m2), deliverEv("a", m2), deliverEv("b", m2),
		sendEv("a", m3), deliverEv("a", m3), deliverEv("b", m3),
	)
	h := rec.History()
	rep := mustCheck(t, h)
	if !rep.AllHold() {
		t.Fatalf("healthy chain rejected:\n%s\n%s", h, rep)
	}
	if len(h.Sessions) != 2 {
		t.Fatalf("want sessions for a and b, got:\n%s", h)
	}
	// a: w1, (witness r1), w2, (witness r2), w3 — one register, values 1..3.
	// b: reads 1, 2, (witness 2), 3, (witness 3); strictly monotone.
	var aWrites, bReads []uint64
	for _, s := range h.Sessions {
		for _, op := range s.Ops {
			if s.Member == "a" && op.Type == OpWrite {
				aWrites = append(aWrites, op.Val)
			}
			if s.Member == "b" {
				if op.Type == OpWrite {
					t.Fatalf("reader session got a write:\n%s", h)
				}
				bReads = append(bReads, op.Val)
			}
		}
	}
	if len(aWrites) != 3 || aWrites[0] != 1 || aWrites[2] != 3 {
		t.Fatalf("chain writes %v, want [1 2 3]", aWrites)
	}
	for i := 1; i < len(bReads); i++ {
		if bReads[i] < bReads[i-1] {
			t.Fatalf("reader view not monotone: %v", bReads)
		}
	}
}

// TestRecorderCatchesMisorderedDelivery: delivering a chain's second
// message before its first records reads 2-then-1 — WriteCORead, CC fails.
// This is the recorder's reason to exist: a causal-order violation in the
// engine becomes a bad pattern in the history.
func TestRecorderCatchesMisorderedDelivery(t *testing.T) {
	m1 := msg("a", 1, message.KindNonCommutative)
	m2 := msg("a", 2, message.KindNonCommutative, m1.Label)
	rec := replay(
		sendEv("a", m1), sendEv("a", m2),
		deliverEv("b", m2), deliverEv("b", m1), // out of causal order
	)
	rep := mustCheck(t, rec.History())
	if rep.CC.Holds {
		t.Fatalf("misordered delivery passed CC:\n%s\n%s", rec.History(), rep)
	}
	if rep.CC.Pattern != PatternWriteCORead {
		t.Fatalf("pattern %q, want WriteCORead: %s", rep.CC.Pattern, rep)
	}
}

// TestRecorderWitnessCatchesMissedDep: delivering a message without its
// cross-origin dependency leaves a witness read of the initial value with
// the dependency's write in its causal past — WriteCOInitRead.
func TestRecorderWitnessCatchesMissedDep(t *testing.T) {
	a1 := msg("a", 1, message.KindNonCommutative)
	b1 := msg("b", 1, message.KindNonCommutative, a1.Label)
	rec := replay(
		sendEv("a", a1),
		deliverEv("b", a1),
		sendEv("b", b1), // b saw a1, so b1 causally follows it
		deliverEv("c", b1), // c delivers b1 without a1: the promise is broken
	)
	rep := mustCheck(t, rec.History())
	if rep.CC.Holds {
		t.Fatalf("missed dependency passed CC:\n%s\n%s", rec.History(), rep)
	}
	if rep.CC.Pattern != PatternWriteCOInitRead {
		t.Fatalf("pattern %q, want WriteCOInitRead: %s", rep.CC.Pattern, rep)
	}
}

// TestRecorderChainSplit: sends that do not depend on the origin's
// previous label start a new register, so deliberately concurrent
// same-origin traffic (a front-end's commutative ops) reordering freely
// is NOT a violation.
func TestRecorderChainSplit(t *testing.T) {
	m1 := msg("a~1", 1, message.KindCommutative)
	m2 := msg("a~1", 2, message.KindCommutative) // no dep on m1: concurrent
	rec := replay(
		sendEv("a", m1), sendEv("a", m2),
		deliverEv("b", m2), deliverEv("b", m1), // reordered — allowed
	)
	h := rec.History()
	rep := mustCheck(t, h)
	if !rep.AllHold() {
		t.Fatalf("concurrent same-origin reorder rejected:\n%s\n%s", h, rep)
	}
	// Two distinct registers, each written once.
	vars := map[string]bool{}
	for _, s := range h.Sessions {
		for _, op := range s.Ops {
			if op.Type == OpWrite {
				vars[op.Var] = true
			}
		}
	}
	if len(vars) != 2 {
		t.Fatalf("want 2 registers for unchained sends, got %v\n%s", vars, h)
	}
}

// TestRecorderControlShapesChains: control messages keep a chain linked
// and count toward its causal floor but emit no operations.
func TestRecorderControlShapesChains(t *testing.T) {
	d1 := msg("a", 1, message.KindNonCommutative)
	c2 := msg("a", 2, message.KindControl, d1.Label)
	d3 := msg("a", 3, message.KindNonCommutative, c2.Label)
	rec := replay(
		sendEv("a", d1), deliverEv("b", d1),
		sendEv("a", c2), deliverEv("b", c2),
		sendEv("a", d3), deliverEv("b", d3),
	)
	h := rec.History()
	rep := mustCheck(t, h)
	if !rep.AllHold() {
		t.Fatalf("control-linked chain rejected:\n%s\n%s", h, rep)
	}
	// One register (the chain survived the control link), data values 1, 2.
	writes := map[string][]uint64{}
	for _, s := range h.Sessions {
		for _, op := range s.Ops {
			if op.Type == OpWrite {
				writes[op.Var] = append(writes[op.Var], op.Val)
			}
		}
	}
	if len(writes) != 1 {
		t.Fatalf("control send split the chain: %v\n%s", writes, h)
	}
	for _, vals := range writes {
		if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
			t.Fatalf("data writes %v, want [1 2] (control emits no write)", vals)
		}
	}
}

// TestRecorderSeedRotatesSession: a snapshot seed starts a fresh session
// whose registers are primed from the watermarks, so a rejoined member
// resuming mid-chain is not a stale read.
func TestRecorderSeedRotatesSession(t *testing.T) {
	m1 := msg("a", 1, message.KindNonCommutative)
	m2 := msg("a", 2, message.KindNonCommutative, m1.Label)
	m3 := msg("a", 3, message.KindNonCommutative, m2.Label)
	rec := replay(
		sendEv("a", m1), deliverEv("b", m1),
		sendEv("a", m2), deliverEv("b", m2),
		recEv{kind: evSeed, member: "b", wm: map[string]uint64{"a": 2}},
		sendEv("a", m3), deliverEv("b", m3),
	)
	h := rec.History()
	rep := mustCheck(t, h)
	if !rep.AllHold() {
		t.Fatalf("seeded rejoin rejected:\n%s\n%s", h, rep)
	}
	bSessions := 0
	for _, s := range h.Sessions {
		if s.Member == "b" {
			bSessions++
		}
	}
	if bSessions != 2 {
		t.Fatalf("want 2 sessions for the rejoined member, got %d:\n%s", bSessions, h)
	}
}

// TestRecorderSeedWithoutRotationWouldFail is the negative control for
// the rotation rule: the same events in ONE session (stitch the
// incarnations together by hand) do not generally stay consistent —
// here they do because the reads stay monotone, so instead pin that a
// seed below the delivered watermark plus a continued chain still passes
// (the primed registers carry the causal floor).
func TestRecorderSeedPrimesRegisters(t *testing.T) {
	m1 := msg("a", 1, message.KindNonCommutative)
	m2 := msg("a", 2, message.KindNonCommutative, m1.Label)
	b1 := msg("b", 1, message.KindNonCommutative, m2.Label)
	rec := replay(
		sendEv("a", m1), sendEv("a", m2),
		// c rejoins from a snapshot that already covers a's chain up to 2,
		// then delivers b1 (which depends on m2) without ever delivering
		// m1/m2 itself: the watermark must stand in for those deliveries.
		recEv{kind: evSeed, member: "c", wm: map[string]uint64{"a": 2}},
		deliverEv("b", m1), deliverEv("b", m2),
		sendEv("b", b1),
		deliverEv("c", b1),
	)
	h := rec.History()
	rep := mustCheck(t, h)
	if !rep.AllHold() {
		t.Fatalf("watermark-covered delivery rejected:\n%s\n%s", h, rep)
	}
}

// undeclaredKnowledgeScript is the Λ-causality litmus scenario: b delivers
// a's whole chain but declares only its first label when sending b1, and c
// delivers b1 before a2. An explicit-dependency engine (OSend) permits
// this — b asserted that only a1 matters for b1 — but under the full
// session-order model b's undeclared knowledge of a2 leaks into c's causal
// past through b1 and flags c's witness of a1 as a stale read.
func undeclaredKnowledgeScript() []recEv {
	a1 := msg("a", 1, message.KindNonCommutative)
	a2 := msg("a", 2, message.KindNonCommutative, a1.Label)
	b1 := msg("b", 1, message.KindNonCommutative, a1.Label)
	return []recEv{
		sendEv("a", a1), sendEv("a", a2),
		deliverEv("b", a1), deliverEv("b", a2),
		sendEv("b", b1), // b knew a2, declared only a1
		deliverEv("c", a1),
		deliverEv("c", b1), // declared dep (a1) satisfied; a2 still in flight
		deliverEv("c", a2),
	}
}

// TestDeclaredRecorderScopesToDeclaredDeps: the same events that fail the
// full-session model (an over-claim against an explicit-dependency engine)
// pass in declared mode, where a sender's writes only inherit the
// causality the messages themselves declared.
func TestDeclaredRecorderScopesToDeclaredDeps(t *testing.T) {
	script := undeclaredKnowledgeScript()

	full := mustCheck(t, replay(script...).History())
	if full.CC.Holds || full.CC.Pattern != PatternWriteCORead {
		t.Fatalf("full model should flag undeclared knowledge as WriteCORead, got %s", full)
	}

	h := replayInto(NewDeclaredRecorder(), script...).History()
	rep := mustCheck(t, h)
	if !rep.AllHold() {
		t.Fatalf("declared mode over-claimed on Λ-causal events:\n%s\n%s", h, rep)
	}
	// b's writes live in their own session, apart from its deliveries.
	bSessions := 0
	for _, s := range h.Sessions {
		if s.Member == "b" {
			bSessions++
		}
	}
	if bSessions != 2 {
		t.Fatalf("want separate write and read sessions for b, got %d:\n%s", bSessions, h)
	}
}

// TestDeclaredRecorderStillCatchesMissedDep: scoping to declared deps must
// not cost detection of broken declared promises — delivering a message
// without its declared dependency is still WriteCOInitRead.
func TestDeclaredRecorderStillCatchesMissedDep(t *testing.T) {
	a1 := msg("a", 1, message.KindNonCommutative)
	b1 := msg("b", 1, message.KindNonCommutative, a1.Label)
	rec := replayInto(NewDeclaredRecorder(),
		sendEv("a", a1),
		deliverEv("b", a1),
		sendEv("b", b1),
		deliverEv("c", b1), // c never delivered the declared dep a1
	)
	rep := mustCheck(t, rec.History())
	if rep.CC.Holds || rep.CC.Pattern != PatternWriteCOInitRead {
		t.Fatalf("missed declared dep not caught in declared mode: %s", rep)
	}
}

// TestDeclaredRecorderStillCatchesChainReorder: per-chain FIFO is part of
// the declared promise (every chained send declares its predecessor), so a
// chain delivered out of order still fails CC in declared mode.
func TestDeclaredRecorderStillCatchesChainReorder(t *testing.T) {
	m1 := msg("a", 1, message.KindNonCommutative)
	m2 := msg("a", 2, message.KindNonCommutative, m1.Label)
	rec := replayInto(NewDeclaredRecorder(),
		sendEv("a", m1), sendEv("a", m2),
		deliverEv("b", m2), deliverEv("b", m1),
	)
	rep := mustCheck(t, rec.History())
	if rep.CC.Holds || rep.CC.Pattern != PatternWriteCORead {
		t.Fatalf("chain reorder not caught in declared mode: %s", rep)
	}
}

// TestRecorderDuplicatesIgnored: duplicate sends and deliveries collapse.
func TestRecorderDuplicatesIgnored(t *testing.T) {
	m1 := msg("a", 1, message.KindNonCommutative)
	rec := replay(
		sendEv("a", m1), sendEv("a", m1),
		deliverEv("b", m1), deliverEv("b", m1), deliverEv("b", m1),
	)
	h := rec.History()
	reads := 0
	for _, s := range h.Sessions {
		for _, op := range s.Ops {
			if op.Type == OpRead {
				reads++
			}
		}
	}
	if reads != 1 {
		t.Fatalf("want 1 read after dedup, got %d:\n%s", reads, h)
	}
	if rec.Events() != 5 {
		t.Fatalf("raw event count %d, want 5", rec.Events())
	}
}
