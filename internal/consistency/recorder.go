package consistency

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"causalshare/internal/message"
)

// Recorder implements trace.Observer: it records every first send, first
// delivery, and snapshot seed from a live engine (or a sim run) and
// materializes the execution as a register History the checker can judge.
//
// The mapping is the chain-register model. Each origin's sends are cut
// into chains: a send continues its origin's chain when its dependencies
// include the origin's immediately-previous label, and starts a new chain
// otherwise (so the sequencer's everything-chains traffic is one register
// per origin, while a front-end's deliberately concurrent commutative
// sends each get their own). A chain is one register; its k-th data
// message is the write of value k. Deliveries become reads:
//
//   - delivering a chain's data message reads its value (self-deliveries
//     are not recorded — the origin already wrote the value);
//   - each dependency of a sent or delivered message yields a witness
//     read of the dependency's register at the member's current view,
//     pinning the causal floor the protocol promised. Witness reads are
//     emitted after the message's own read so a missed dependency shows
//     up as a bad pattern (stale or initial value with the dependency's
//     write in the causal past).
//
// Control traffic shapes chains but emits no operations. A snapshot seed
// (rejoin) rotates the member to a fresh session — the new incarnation
// continues the donor's history, not its own pre-crash reads — with its
// registers primed from the seeded watermarks.
//
// Recording is two-phase: hooks only append raw events (cheap, under the
// recorder's own lock); History() replays them into sessions.
type Recorder struct {
	mu       sync.Mutex
	events   []event
	declared bool
}

type evKind uint8

const (
	evSend evKind = iota + 1
	evDeliver
	evSeed
)

type event struct {
	kind   evKind
	member string
	label  message.Label
	deps   []message.Label
	mkind  message.Kind
	wm     map[string]uint64
}

// NewRecorder returns an empty recorder; hand it to trace.Config.Observer
// or Collector.SetObserver, or feed it directly from a sim run.
//
// The materialized history treats each member's full session order as
// causal export: everything a member delivered before sending m is in m's
// causal past. That is the right model for engines promising full causal
// order (CBCast, PCCast) and for workloads that declare their complete
// causal frontier — checking it against an engine that only promises
// declared-dependency order reports violations the engine never promised
// to prevent. Those callers want NewDeclaredRecorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewDeclaredRecorder returns a recorder that scopes causal export to
// declared dependencies — the paper's Λ-causality. Each member's writes
// materialize in a separate session whose only inbound causality is the
// dependencies the messages themselves declared (witness reads raised to
// the declared floor), so knowledge a sender held but did not declare does
// not leak into receivers' causal pasts. This is the sound model for
// explicit-dependency engines (OSend) and for stacks whose upper layers
// deliberately under-declare — e.g. a sequencer that chains its ORDERs but
// does not re-declare every delivery it happened to observe. Detection
// power for the declared promise is unchanged: a delivery that misses a
// declared dependency, or breaks a chain's FIFO order, still surfaces as a
// bad pattern.
func NewDeclaredRecorder() *Recorder { return &Recorder{declared: true} }

// RecordSend implements trace.Observer.
func (r *Recorder) RecordSend(member string, m message.Message) {
	r.mu.Lock()
	r.events = append(r.events, event{
		kind: evSend, member: member, label: m.Label,
		deps: append([]message.Label(nil), m.Deps.Labels()...), mkind: m.Kind,
	})
	r.mu.Unlock()
}

// RecordDeliver implements trace.Observer.
func (r *Recorder) RecordDeliver(member string, m message.Message) {
	r.mu.Lock()
	r.events = append(r.events, event{
		kind: evDeliver, member: member, label: m.Label,
		deps: append([]message.Label(nil), m.Deps.Labels()...), mkind: m.Kind,
	})
	r.mu.Unlock()
}

// RecordSeed implements trace.Observer.
func (r *Recorder) RecordSeed(member string, watermarks map[string]uint64) {
	wm := make(map[string]uint64, len(watermarks))
	for k, v := range watermarks {
		wm[k] = v
	}
	r.mu.Lock()
	r.events = append(r.events, event{kind: evSeed, member: member, wm: wm})
	r.mu.Unlock()
}

// Events returns the raw event count (for reporting).
func (r *Recorder) Events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// labelMeta is what the chain pass learns about one sent label.
type labelMeta struct {
	chain int
	// val is the message's write value for data sends, and for control
	// sends the chain's data count it covers (its causal floor).
	val  uint64
	data bool
}

// originEntry records, per origin in send order, the chain and cumulative
// data value each label reached — the watermark resolution table.
type originEntry struct {
	seq   uint64
	chain int
	val   uint64
}

// History materializes the recorded events into a register history. The
// recorder stays usable; later events extend later materializations.
func (r *Recorder) History() *History {
	r.mu.Lock()
	events := r.events[:len(r.events):len(r.events)]
	r.mu.Unlock()

	// Chain pass: cut each origin's sends into chains and assign write
	// values. First send of a label wins; duplicates are ignored.
	info := make(map[message.Label]labelMeta)
	lastLabel := make(map[string]message.Label)
	chainIndex := make(map[string]int) // per-origin chain counter
	originLog := make(map[string][]originEntry)
	var chainVar []string
	var chainData []uint64
	chainOf := make(map[string]int) // origin → current chain id
	for _, ev := range events {
		if ev.kind != evSend {
			continue
		}
		if _, dup := info[ev.label]; dup {
			continue
		}
		origin := ev.label.Origin
		prev, chained := lastLabel[origin]
		if chained {
			chained = containsLabel(ev.deps, prev)
		}
		if !chained {
			chainIndex[origin]++
			chainOf[origin] = len(chainVar)
			chainVar = append(chainVar, fmt.Sprintf("%s@%d", origin, chainIndex[origin]))
			chainData = append(chainData, 0)
		}
		lastLabel[origin] = ev.label
		c := chainOf[origin]
		meta := labelMeta{chain: c, val: chainData[c]}
		if ev.mkind != message.KindControl {
			chainData[c]++
			meta.val = chainData[c]
			meta.data = true
		}
		info[ev.label] = meta
		originLog[origin] = append(originLog[origin], originEntry{seq: ev.label.Seq, chain: c, val: chainData[c]})
	}

	// Session pass: replay sends and deliveries into per-member sessions.
	type memberState struct {
		regs map[int]uint64
		ops  []Op
		done [][]Op
	}
	states := make(map[string]*memberState)
	var names []string
	state := func(m string) *memberState {
		st := states[m]
		if st == nil {
			st = &memberState{regs: make(map[int]uint64)}
			states[m] = st
			names = append(names, m)
		}
		return st
	}
	// In declared mode a member's writes live in their own session, keyed
	// apart from its delivery session; the NUL never appears in member
	// names and is stripped for display.
	const wSuffix = "\x00w"
	writeState := func(m string) *memberState {
		if r.declared {
			return state(m + wSuffix)
		}
		return state(m)
	}
	type delivKey struct {
		member string
		label  message.Label
	}
	seenSend := make(map[message.Label]bool)
	seenDeliver := make(map[delivKey]bool)

	witness := func(st *memberState, deps []message.Label) {
		for _, d := range deps {
			dm, known := info[d]
			if !known {
				continue
			}
			cur := st.regs[dm.chain]
			if cur == 0 && dm.val == 0 {
				continue // nothing written, nothing promised: no information
			}
			st.ops = append(st.ops, Op{Type: OpRead, Var: chainVar[dm.chain], Val: cur, Label: d})
		}
	}
	// witnessDeclared seeds a write session's causal floor from the
	// message's declared dependencies: each dependency raises the session's
	// register to the floor it asserts and is read back at the raised
	// value, creating exactly the w(dep) → w(this) edge the sender
	// declared — and nothing more.
	witnessDeclared := func(st *memberState, deps []message.Label) {
		for _, d := range deps {
			dm, known := info[d]
			if !known {
				continue
			}
			if dm.val > st.regs[dm.chain] {
				st.regs[dm.chain] = dm.val
			}
			cur := st.regs[dm.chain]
			if cur == 0 {
				continue
			}
			st.ops = append(st.ops, Op{Type: OpRead, Var: chainVar[dm.chain], Val: cur, Label: d})
		}
	}

	for _, ev := range events {
		switch ev.kind {
		case evSend:
			if seenSend[ev.label] {
				continue
			}
			seenSend[ev.label] = true
			m := info[ev.label]
			if !m.data {
				continue
			}
			st := writeState(ev.member)
			if r.declared {
				witnessDeclared(st, ev.deps)
			} else {
				witness(st, ev.deps)
			}
			st.ops = append(st.ops, Op{Type: OpWrite, Var: chainVar[m.chain], Val: m.val, Label: ev.label})
			if m.val > st.regs[m.chain] {
				st.regs[m.chain] = m.val
			}
		case evDeliver:
			key := delivKey{ev.member, ev.label}
			if seenDeliver[key] {
				continue
			}
			seenDeliver[key] = true
			m, known := info[ev.label]
			if !known || !m.data {
				continue
			}
			st := state(ev.member)
			if m.val > st.regs[m.chain] {
				st.regs[m.chain] = m.val
			}
			if ownsOrigin(ev.member, ev.label.Origin) {
				continue // the origin wrote this value; a self-read adds nothing
			}
			st.ops = append(st.ops, Op{Type: OpRead, Var: chainVar[m.chain], Val: m.val, Label: ev.label})
			witness(st, ev.deps)
		case evSeed:
			// The new incarnation's view is the donor's: registers prime
			// from the seeded watermarks, everything else resets. In
			// declared mode the member's write session reseeds the same
			// way — the snapshot is a declared adoption of that floor.
			reseed := func(st *memberState) {
				if len(st.ops) > 0 {
					st.done = append(st.done, st.ops)
					st.ops = nil
				}
				st.regs = make(map[int]uint64)
				for origin, upto := range ev.wm {
					for _, e := range originLog[origin] {
						if e.seq > upto {
							break
						}
						if e.val > st.regs[e.chain] {
							st.regs[e.chain] = e.val
						}
					}
				}
			}
			reseed(state(ev.member))
			if r.declared {
				reseed(state(ev.member + wSuffix))
			}
		}
	}

	sort.Strings(names)
	h := &History{}
	for _, name := range names {
		st := states[name]
		if len(st.ops) > 0 {
			st.done = append(st.done, st.ops)
		}
		member := strings.TrimSuffix(name, wSuffix)
		for _, ops := range st.done {
			h.Sessions = append(h.Sessions, Session{Member: member, Ops: ops})
		}
	}
	return h
}

func containsLabel(deps []message.Label, l message.Label) bool {
	for _, d := range deps {
		if d == l {
			return true
		}
	}
	return false
}

// ownsOrigin reports whether member is the sender behind origin — the
// member itself, or one of its front-end identities ("member~id").
func ownsOrigin(member, origin string) bool {
	return origin == member || strings.HasPrefix(origin, member+"~")
}
