package consistency

import (
	"strings"
	"testing"
)

// richHistory is a recorded-shape history with sites for every mutation
// class: one chained writer, two independent readers with full views.
func richHistory() *History {
	return hist(
		sess("o1", w("x", 1), w("x", 2), w("x", 3)),
		sess("r1", rd("x", 1), rd("x", 2), rd("x", 3)),
		sess("r2", rd("x", 1), rd("x", 2), rd("x", 3)),
	)
}

// TestMutateDeterministic: equal seeds give identical surgery.
func TestMutateDeterministic(t *testing.T) {
	for _, class := range Mutations {
		a, descA, errA := Mutate(richHistory(), class, 42)
		b, descB, errB := Mutate(richHistory(), class, 42)
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", class, errA, errB)
		}
		if descA != descB || a.String() != b.String() {
			t.Fatalf("%s not deterministic:\n%q\n%q", class, descA, descB)
		}
		if descA == "" {
			t.Fatalf("%s: empty description", class)
		}
	}
}

// TestMutateLeavesOriginalIntact: mutation operates on a clone.
func TestMutateLeavesOriginalIntact(t *testing.T) {
	h := richHistory()
	before := h.String()
	for _, class := range Mutations {
		if _, _, err := Mutate(h, class, 7); err != nil {
			t.Fatalf("%s: %v", class, err)
		}
	}
	if h.String() != before {
		t.Fatalf("original history mutated in place:\n%s\nvs\n%s", h, before)
	}
}

// TestMutateNoSite: histories without a usable site error out rather than
// silently returning an unmutated (still-passing) history — a mutation
// that does not happen must not look like a mutation that was caught.
func TestMutateNoSite(t *testing.T) {
	trivial := hist(sess("p1", w("x", 1)), sess("p2", rd("x", 1)))
	for _, class := range Mutations {
		if _, _, err := Mutate(trivial, class, 1); err == nil {
			t.Fatalf("%s found a site in a single-write history", class)
		} else if !strings.Contains(err.Error(), "no "+class.String()) &&
			!strings.Contains(err.Error(), "site") {
			t.Fatalf("%s: unhelpful error %v", class, err)
		}
	}
}

// TestMutateExpectedTriples: the synthetic matrix — each class lands on
// its rung of the lattice with the promised pattern. (The engine-recorded
// matrix lives in internal/sim.)
func TestMutateExpectedTriples(t *testing.T) {
	base := richHistory()
	if rep := mustCheck(t, base); !rep.AllHold() {
		t.Fatalf("baseline unhealthy: %s", rep)
	}
	for _, class := range Mutations {
		for seed := int64(0); seed < 10; seed++ {
			mut, desc, err := Mutate(base, class, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", class, seed, err)
			}
			cc, ccv, cm := class.Expected()
			rep := mustCheck(t, mut)
			if rep.CC.Holds != cc || rep.CCv.Holds != ccv || rep.CM.Holds != cm {
				t.Fatalf("%s seed %d (%s): CC=%v CCv=%v CM=%v, want %v/%v/%v\n%s\n%s",
					class, seed, desc, rep.CC.Holds, rep.CCv.Holds, rep.CM.Holds, cc, ccv, cm, mut, rep)
			}
			pc, pv, pm := class.ExpectedPattern()
			for lv, want := range map[Level]string{LevelCC: pc, LevelCCv: pv, LevelCM: pm} {
				if want == "" {
					continue
				}
				if got := rep.Outcome(lv).Pattern; got != want {
					t.Fatalf("%s seed %d: %s pattern %q, want %q\n%s", class, seed, lv, got, want, rep)
				}
			}
		}
	}
}
