package consistency

import (
	"fmt"
	"testing"

	"causalshare/internal/message"
)

// genRecorded replays a healthy m-member, rounds-deep broadcast schedule
// through the Recorder: every member chains one send per round depending
// on its own previous send and every other chain's previous round, and
// every member delivers every round in order. The resulting history is
// the recorded shape the checker sees after real runs — chained writes,
// message reads, and witness reads — and all three verdicts hold.
func genRecorded(members, rounds int) *History {
	rec := NewRecorder()
	genRecordedInto(rec, members, rounds)
	return rec.History()
}

// BenchmarkConsistencyCheck measures whole-history verdict time against
// history length — the E16 sweep. ops/op reports the history size each
// checked history carries, so BENCH_check.json exposes runtime vs length.
func BenchmarkConsistencyCheck(b *testing.B) {
	for _, cfg := range []struct{ members, rounds int }{
		{4, 4}, {4, 16}, {4, 64}, {8, 32},
	} {
		h := genRecorded(cfg.members, cfg.rounds)
		rep, err := Check(h)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllHold() {
			b.Fatalf("benchmark history unhealthy: %s", rep)
		}
		b.Run(fmt.Sprintf("n=%d/ops=%d", cfg.members, h.Ops()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Check(h); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.Ops()), "ops/history")
		})
	}
}

// BenchmarkRecorderMaterialize isolates the recorder's replay cost.
func BenchmarkRecorderMaterialize(b *testing.B) {
	rec := NewRecorder()
	genRecordedInto(rec, 4, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := rec.History()
		if h.Ops() == 0 {
			b.Fatal("empty materialization")
		}
	}
}

// genRecordedInto is genRecorded against a caller-owned recorder.
func genRecordedInto(rec *Recorder, members, rounds int) {
	names := make([]string, members)
	prev := make([]message.Label, members)
	for i := range names {
		names[i] = fmt.Sprintf("m%02d", i)
	}
	for r := 0; r < rounds; r++ {
		sent := make([]message.Message, members)
		for i, name := range names {
			var deps []message.Label
			for j := range names {
				if !prev[j].IsNil() {
					deps = append(deps, prev[j])
				}
			}
			m := message.Message{
				Label: message.Label{Origin: name, Seq: uint64(r + 1)},
				Kind:  message.KindNonCommutative,
				Deps:  message.After(deps...),
			}
			sent[i] = m
			rec.RecordSend(name, m)
		}
		for i := range names {
			prev[i] = sent[i].Label
		}
		for _, name := range names {
			for _, m := range sent {
				rec.RecordDeliver(name, m)
			}
		}
	}
}
