package consistency

import "fmt"

// RefReport carries the reference checker's verdicts.
type RefReport struct {
	CC, CCv, CM Outcome
}

// refMaxAssignments caps the reads-from enumeration for non-differentiated
// histories; beyond it the reference comes back Undecided.
const refMaxAssignments = 1 << 12

// Reference decides CC, CCv, and CM by exhaustive search, straight from
// the definitions: enumerate every reads-from assignment (one candidate
// per read in differentiated histories, several otherwise), close po ∪ rf
// into a candidate causal order, and search for the serializations each
// criterion demands. Exponential — it exists as ground truth for the
// property tests and as the bounded fallback for small non-differentiated
// histories; the polynomial bad-pattern checker must agree with it on
// every history both can decide.
func Reference(h *History) *RefReport {
	r := newRef(h)
	return r.run()
}

type refChecker struct {
	h    *History
	n    int
	sess []int
	idx  []int
	typ  []OpType
	varOf []int
	val  []uint64

	varNames []string
	// cands[r] lists candidate writer ids for read r; nil for init reads.
	cands [][]int
	reads []int
}

func newRef(h *History) *refChecker {
	n := h.Ops()
	r := &refChecker{
		h: h, n: n,
		sess: make([]int, n), idx: make([]int, n),
		typ: make([]OpType, n), varOf: make([]int, n), val: make([]uint64, n),
		cands: make([][]int, n),
	}
	vars := make(map[string]int)
	id := 0
	for si := range h.Sessions {
		for oi, op := range h.Sessions[si].Ops {
			v, ok := vars[op.Var]
			if !ok {
				v = len(r.varNames)
				vars[op.Var] = v
				r.varNames = append(r.varNames, op.Var)
			}
			r.sess[id], r.idx[id] = si, oi
			r.typ[id], r.varOf[id], r.val[id] = op.Type, v, op.Val
			id++
		}
	}
	for op := 0; op < n; op++ {
		if r.typ[op] != OpRead {
			continue
		}
		r.reads = append(r.reads, op)
		if r.val[op] == InitValue {
			continue
		}
		for w := 0; w < n; w++ {
			if r.typ[w] == OpWrite && r.varOf[w] == r.varOf[op] && r.val[w] == r.val[op] {
				r.cands[op] = append(r.cands[op], w)
			}
		}
	}
	return r
}

func (r *refChecker) ref(op int) OpRef { return OpRef{Session: r.sess[op], Index: r.idx[op]} }

func (r *refChecker) run() *RefReport {
	rep := &RefReport{}
	fail := func(o Outcome) *RefReport {
		rep.CC, rep.CCv, rep.CM = o, o, o
		return rep
	}

	// A read with no candidate writer sinks every assignment.
	for _, rd := range r.reads {
		if r.val[rd] != InitValue && len(r.cands[rd]) == 0 {
			return fail(Outcome{
				Pattern: PatternThinAirRead,
				Refs:    []OpRef{r.ref(rd)},
				Detail: fmt.Sprintf("read of %s returned %d, which was never written",
					r.varNames[r.varOf[rd]], r.val[rd]),
			})
		}
	}

	total := 1
	var choose []int // reads with a non-trivial candidate set
	for _, rd := range r.reads {
		if len(r.cands[rd]) > 0 {
			if total *= len(r.cands[rd]); total > refMaxAssignments {
				return fail(Outcome{
					Undecided: true,
					Detail:    fmt.Sprintf("more than %d reads-from assignments", refMaxAssignments),
				})
			}
			choose = append(choose, rd)
		}
	}

	rf := make([]int, r.n)
	for i := range rf {
		rf[i] = -1
	}
	var ccOK, ccvOK, cmOK bool
	var firstCycle []int
	var ccWitness, cmWitness, ccvNote string
	var ccRef, cmRef []OpRef
	sawAcyclic := false

	pick := make([]int, len(choose))
	for {
		for i, rd := range choose {
			rf[rd] = r.cands[rd][pick[i]]
		}
		co, cycle := r.close(rf)
		if cycle != nil {
			if firstCycle == nil {
				firstCycle = cycle
			}
		} else {
			sawAcyclic = true
			if !ccOK {
				if bad := r.checkPerOp(co, rf, false); bad < 0 {
					ccOK = true
				} else if ccWitness == "" {
					ccWitness = fmt.Sprintf("no serialization of the causal past explains op %d", bad)
					ccRef = []OpRef{r.ref(bad)}
				}
			}
			if !cmOK {
				if bad := r.checkPerOp(co, rf, true); bad < 0 {
					cmOK = true
				} else if cmWitness == "" {
					cmWitness = fmt.Sprintf("no serialization of the causal past satisfies all reads up to op %d", bad)
					cmRef = []OpRef{r.ref(bad)}
				}
			}
			if !ccvOK {
				if r.checkCCv(co, rf) {
					ccvOK = true
				} else if ccvNote == "" {
					ccvNote = "no arbitration (total order extending causality) explains every read"
				}
			}
		}
		if ccOK && ccvOK && cmOK {
			break
		}
		// Next assignment.
		i := 0
		for ; i < len(pick); i++ {
			pick[i]++
			if pick[i] < len(r.cands[choose[i]]) {
				break
			}
			pick[i] = 0
		}
		if i == len(pick) {
			break
		}
	}

	if !sawAcyclic {
		refs := make([]OpRef, len(firstCycle))
		for i, op := range firstCycle {
			refs[i] = r.ref(op)
		}
		return fail(Outcome{
			Pattern: PatternCyclicCO,
			Refs:    refs,
			Cycle:   refs,
			Detail:  "every reads-from assignment makes session order and reads-from cyclic",
		})
	}
	mk := func(ok bool, detail string, refs []OpRef) Outcome {
		if ok {
			return Outcome{Holds: true}
		}
		return Outcome{Pattern: PatternBoundedSearch, Detail: detail, Refs: refs}
	}
	rep.CC = mk(ccOK, ccWitness, ccRef)
	rep.CCv = mk(ccvOK, ccvNote, nil)
	rep.CM = mk(cmOK, cmWitness, cmRef)
	return rep
}

// close builds co = (po ∪ rf)+ as a dense matrix, returning a cycle
// witness instead if the relation is cyclic.
func (r *refChecker) close(rf []int) ([][]bool, []int) {
	co := make([][]bool, r.n)
	for a := 0; a < r.n; a++ {
		co[a] = make([]bool, r.n)
	}
	for a := 0; a < r.n; a++ {
		for b := 0; b < r.n; b++ {
			if a != b && r.sess[a] == r.sess[b] && r.idx[a] < r.idx[b] {
				co[a][b] = true
			}
		}
	}
	for rd, w := range rf {
		if w >= 0 {
			co[w][rd] = true
		}
	}
	for k := 0; k < r.n; k++ {
		for a := 0; a < r.n; a++ {
			if !co[a][k] {
				continue
			}
			for b := 0; b < r.n; b++ {
				if co[k][b] {
					co[a][b] = true
				}
			}
		}
	}
	for a := 0; a < r.n; a++ {
		if co[a][a] {
			// Recover an explicit cycle through a for the witness.
			adj := make([][]int32, r.n)
			for x := 0; x < r.n; x++ {
				for y := 0; y < r.n; y++ {
					if x != y && r.sess[x] == r.sess[y] && r.idx[y] == r.idx[x]+1 {
						adj[x] = append(adj[x], int32(y))
					}
				}
			}
			for rd, w := range rf {
				if w >= 0 {
					adj[w] = append(adj[w], int32(rd))
				}
			}
			return nil, findCycle(r.n, adj)
		}
	}
	return co, nil
}

// checkPerOp verifies the per-operation serialization obligation. With
// full=false it is CC: for each op o, some linear extension of o's causal
// past explains o's own read (writes impose nothing). With full=true it is
// CM: the extension must satisfy every read the session made up to o.
// Returns the first op with no valid serialization, or -1.
func (r *refChecker) checkPerOp(co [][]bool, rf []int, full bool) int {
	for o := 0; o < r.n; o++ {
		if !full && r.typ[o] != OpRead {
			continue
		}
		past := r.past(co, o)
		constrained := make([]bool, r.n)
		if full {
			for _, rd := range r.reads {
				if r.sess[rd] == r.sess[o] && r.idx[rd] <= r.idx[o] {
					constrained[rd] = true
				}
			}
		} else {
			constrained[o] = true
		}
		if !r.existsSerialization(past, co, rf, constrained) {
			return o
		}
	}
	return -1
}

// past returns o's causal past including o.
func (r *refChecker) past(co [][]bool, o int) []int {
	out := []int{}
	for a := 0; a < r.n; a++ {
		if a == o || co[a][o] {
			out = append(out, a)
		}
	}
	return out
}

// existsSerialization searches for a linear extension of co over elems in
// which every constrained read sees, as the last write to its variable
// before its own position, exactly its assigned writer (none for init
// reads). Depth-first with early exit.
func (r *refChecker) existsSerialization(elems []int, co [][]bool, rf []int, constrained []bool) bool {
	placed := make([]bool, r.n)
	lastW := make([]int, len(r.varNames))
	for i := range lastW {
		lastW[i] = -1
	}
	inSet := make([]bool, r.n)
	for _, e := range elems {
		inSet[e] = true
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(elems) {
			return true
		}
		for _, e := range elems {
			if placed[e] {
				continue
			}
			ready := true
			for _, p := range elems {
				if p != e && !placed[p] && co[p][e] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if r.typ[e] == OpRead && constrained[e] && lastW[r.varOf[e]] != rf[e] {
				continue // this read cannot go here; try other elements
			}
			placed[e] = true
			saved := -2
			if r.typ[e] == OpWrite {
				saved = lastW[r.varOf[e]]
				lastW[r.varOf[e]] = e
			}
			if rec(k + 1) {
				return true
			}
			placed[e] = false
			if saved != -2 {
				lastW[r.varOf[e]] = saved
			}
		}
		return false
	}
	return rec(0)
}

// checkCCv searches for one arbitration — a linear extension of co over
// every op — in which each read returns the arbitration-maximal write to
// its variable among the writes in its causal past.
func (r *refChecker) checkCCv(co [][]bool, rf []int) bool {
	pos := make([]int, r.n)
	placed := make([]bool, r.n)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == r.n {
			for _, rd := range r.reads {
				best := -1
				for w := 0; w < r.n; w++ {
					if r.typ[w] == OpWrite && r.varOf[w] == r.varOf[rd] && co[w][rd] {
						if best < 0 || pos[w] > pos[best] {
							best = w
						}
					}
				}
				if best != rf[rd] {
					return false
				}
			}
			return true
		}
		for e := 0; e < r.n; e++ {
			if placed[e] {
				continue
			}
			ready := true
			for p := 0; p < r.n; p++ {
				if p != e && !placed[p] && co[p][e] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			placed[e] = true
			pos[e] = k
			if rec(k + 1) {
				return true
			}
			placed[e] = false
		}
		return false
	}
	return rec(0)
}
