package consistency

import (
	"fmt"
	"math/rand"
	"testing"
)

// genSC generates a random history by simulating a sequentially
// consistent execution: one global memory, ops applied in generation
// order, every read returning the current value. SC implies CM, CCv, and
// CC, so the checker must pass all three. Writes draw from per-variable
// counters, keeping the history differentiated (the polynomial path).
func genSC(rng *rand.Rand) *History {
	nSess := 2 + rng.Intn(3) // 2..4 sessions
	nOps := 4 + rng.Intn(5)  // 4..8 ops
	vars := []string{"x", "y"}[:1+rng.Intn(2)]

	mem := make(map[string]uint64)
	next := make(map[string]uint64)
	h := &History{Sessions: make([]Session, nSess)}
	for i := range h.Sessions {
		h.Sessions[i].Member = fmt.Sprintf("p%d", i+1)
	}
	for i := 0; i < nOps; i++ {
		si := rng.Intn(nSess)
		v := vars[rng.Intn(len(vars))]
		if rng.Intn(2) == 0 {
			next[v]++
			mem[v] = next[v]
			h.Sessions[si].Ops = append(h.Sessions[si].Ops, Op{Type: OpWrite, Var: v, Val: next[v]})
		} else {
			h.Sessions[si].Ops = append(h.Sessions[si].Ops, Op{Type: OpRead, Var: v, Val: mem[v]})
		}
	}
	return h
}

// genAdversarial generates a random differentiated history with
// unconstrained read values — most are inconsistent in interesting ways
// (thin-air, stale, forked, alternating), some happen to be valid.
func genAdversarial(rng *rand.Rand) *History {
	nSess := 2 + rng.Intn(3)
	nOps := 4 + rng.Intn(5)
	vars := []string{"x", "y"}[:1+rng.Intn(2)]

	next := make(map[string]uint64)
	h := &History{Sessions: make([]Session, nSess)}
	for i := range h.Sessions {
		h.Sessions[i].Member = fmt.Sprintf("p%d", i+1)
	}
	for i := 0; i < nOps; i++ {
		si := rng.Intn(nSess)
		v := vars[rng.Intn(len(vars))]
		if rng.Intn(3) == 0 {
			next[v]++
			h.Sessions[si].Ops = append(h.Sessions[si].Ops, Op{Type: OpWrite, Var: v, Val: next[v]})
		} else {
			// Any value in [0, written+1]: 0 is an init read, written+1 is
			// thin air, the rest may or may not be causally explainable.
			val := uint64(rng.Intn(int(next[v]) + 2))
			h.Sessions[si].Ops = append(h.Sessions[si].Ops, Op{Type: OpRead, Var: v, Val: val})
		}
	}
	return h
}

// agree asserts the polynomial checker and the brute-force reference
// render identical verdicts on h (which must be within reference bounds).
func agree(t *testing.T, h *History, seed int64) {
	t.Helper()
	rep, err := Check(h)
	if err != nil {
		t.Fatalf("seed %d: Check: %v\n%s", seed, err, h)
	}
	ref := Reference(h)
	for _, lv := range []Level{LevelCC, LevelCCv, LevelCM} {
		got, want := rep.Outcome(lv), ref.CC
		switch lv {
		case LevelCCv:
			want = ref.CCv
		case LevelCM:
			want = ref.CM
		}
		if want.Undecided {
			t.Fatalf("seed %d: reference undecided on a property-sized history\n%s", seed, h)
		}
		if got.Holds != want.Holds {
			t.Fatalf("seed %d: %s disagree: checker=%v (%s) reference=%v (%s)\n%s",
				seed, lv, got.Holds, got.Detail, want.Holds, want.Detail, h)
		}
	}
}

// TestPropertySCHistoriesAllHold: every history generated from a
// sequentially consistent interleaving must pass CC, CCv, and CM on both
// checkers.
func TestPropertySCHistoriesAllHold(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		h := genSC(rand.New(rand.NewSource(seed)))
		rep, err := Check(h)
		if err != nil {
			t.Fatalf("seed %d: Check: %v\n%s", seed, err, h)
		}
		if !rep.AllHold() {
			t.Fatalf("seed %d: SC history rejected:\n%s\n%s", seed, h, rep)
		}
		if !rep.Differentiated {
			t.Fatalf("seed %d: generator produced a non-differentiated history\n%s", seed, h)
		}
		agree(t, h, seed)
	}
}

// TestPropertyAdversarialMatchesReference: on random adversarial
// histories the polynomial bad-pattern checker must agree with the
// exhaustive reference on every level. This is the soundness +
// completeness property pin for the n≤4, ops≤8 fragment.
func TestPropertyAdversarialMatchesReference(t *testing.T) {
	holds, fails := 0, 0
	for seed := int64(0); seed < 500; seed++ {
		h := genAdversarial(rand.New(rand.NewSource(seed)))
		agree(t, h, seed)
		rep, _ := Check(h)
		if rep.AllHold() {
			holds++
		} else {
			fails++
		}
	}
	// The generator must actually exercise both sides of the verdict.
	if holds == 0 || fails == 0 {
		t.Fatalf("generator degenerate: %d holding, %d failing histories", holds, fails)
	}
}

// TestPropertyMutatedSCDowngrades: mutations of SC histories that find a
// site must produce their class's verdict triple — checked against the
// reference as ground truth, not just the polynomial checker.
func TestPropertyMutatedSCDowngrades(t *testing.T) {
	tried, applied := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		// Mutations need sites (two readers, two values); grow the history a
		// little beyond the SC generator's default.
		rng := rand.New(rand.NewSource(seed))
		h := &History{Sessions: []Session{
			{Member: "o1", Ops: []Op{w("x", 1), w("x", 2), w("x", 3)}},
			{Member: "r1"}, {Member: "r2"},
		}}
		for si := 1; si <= 2; si++ {
			upTo := 2 + rng.Intn(2) // reads 1..2 or 1..3, in order
			for v := uint64(1); v <= uint64(upTo); v++ {
				h.Sessions[si].Ops = append(h.Sessions[si].Ops, rd("x", v))
			}
		}
		for _, class := range Mutations {
			tried++
			mut, _, err := Mutate(h, class, seed)
			if err != nil {
				continue // no site in this shape
			}
			applied++
			cc, ccv, cm := class.Expected()
			rep, cerr := Check(mut)
			if cerr != nil {
				t.Fatalf("seed %d %s: Check: %v\n%s", seed, class, cerr, mut)
			}
			if rep.CC.Holds != cc || rep.CCv.Holds != ccv || rep.CM.Holds != cm {
				t.Fatalf("seed %d %s: verdicts CC=%v CCv=%v CM=%v, want %v/%v/%v\n%s\n%s",
					seed, class, rep.CC.Holds, rep.CCv.Holds, rep.CM.Holds, cc, ccv, cm, mut, rep)
			}
			if mut.Ops() <= 8 {
				agree(t, mut, seed)
			}
		}
	}
	if applied < tried/2 {
		t.Fatalf("mutation sites too rare: %d applied of %d tried", applied, tried)
	}
}
