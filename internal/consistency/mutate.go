package consistency

import (
	"fmt"
	"math/rand"
)

// Mutation names a class of history perturbation. Each class is built to
// land on a specific rung of the verdict lattice, so the mutation matrix
// proves the checker distinguishes the three criteria rather than merely
// failing everything:
//
//	Reorder     → CC ✗ (hence CCv ✗, CM ✗): swaps two reads of
//	              causally-ordered writes, faking an out-of-causal-order
//	              delivery (WriteCORead).
//	ForkRead    → CC ✓, CM ✓, CCv ✗: detaches a register's writes into
//	              concurrent sessions and forks one reader's view into a
//	              reversed read-only session, so two members durably
//	              disagree on arbitration (CyclicCF).
//	SessionDrop → CC ✓, CCv ✗, CM ✗: detaches the writes and appends a
//	              stale re-read, dropping the session edge that kept one
//	              member's view monotone (CyclicHB).
type Mutation int

const (
	// MutationReorder swaps two causally-ordered deliveries in one session.
	MutationReorder Mutation = iota + 1
	// MutationForkRead forks one reader's view of a register against
	// another's.
	MutationForkRead
	// MutationSessionDrop drops a session's monotonic-read edge by
	// re-reading an old value after a newer one.
	MutationSessionDrop
)

// Mutations lists every class, for matrix tests.
var Mutations = []Mutation{MutationReorder, MutationForkRead, MutationSessionDrop}

// String names the mutation class.
func (m Mutation) String() string {
	switch m {
	case MutationReorder:
		return "reorder"
	case MutationForkRead:
		return "read-fork"
	case MutationSessionDrop:
		return "session-drop"
	default:
		return fmt.Sprintf("Mutation(%d)", int(m))
	}
}

// Expected returns the verdict triple the class must produce.
func (m Mutation) Expected() (cc, ccv, cm bool) {
	switch m {
	case MutationReorder:
		return false, false, false
	case MutationForkRead:
		return true, false, true
	case MutationSessionDrop:
		return true, false, false
	default:
		return false, false, false
	}
}

// ExpectedPattern returns the bad pattern the class must be caught by.
func (m Mutation) ExpectedPattern() (cc, ccv, cm string) {
	switch m {
	case MutationReorder:
		p := PatternWriteCORead
		return p, p, p
	case MutationForkRead:
		return "", PatternCyclicCF, ""
	case MutationSessionDrop:
		return "", PatternCyclicCF, PatternCyclicHB
	default:
		return "", "", ""
	}
}

// Mutate returns a perturbed deep copy of h, plus a description of the
// surgery, choosing the mutation site by seed. It fails when the history
// offers no site for the class (too few writes or readers).
func Mutate(h *History, class Mutation, seed int64) (*History, string, error) {
	out := h.Clone()
	rng := rand.New(rand.NewSource(seed))
	switch class {
	case MutationReorder:
		return mutateReorder(out, rng)
	case MutationForkRead:
		return mutateForkRead(out, rng)
	case MutationSessionDrop:
		return mutateSessionDrop(out, rng)
	default:
		return nil, "", fmt.Errorf("consistency: unknown mutation class %d", int(class))
	}
}

// writeSite locates a variable's writes.
type writeSite struct {
	sess, idx int
	val       uint64
}

// varWrites maps each variable to its writes in session-scan order.
func varWrites(h *History) map[string][]writeSite {
	out := make(map[string][]writeSite)
	for si := range h.Sessions {
		for oi, op := range h.Sessions[si].Ops {
			if op.Type == OpWrite {
				out[op.Var] = append(out[op.Var], writeSite{si, oi, op.Val})
			}
		}
	}
	return out
}

// chainOrdered reports whether all writes sit in one session in ascending
// value order — i.e. they are causally ordered, as the recorder's chains
// guarantee.
func chainOrdered(ws []writeSite) bool {
	for i := 1; i < len(ws); i++ {
		if ws[i].sess != ws[0].sess || ws[i].idx <= ws[i-1].idx || ws[i].val <= ws[i-1].val {
			return false
		}
	}
	return true
}

// sessionWrites reports whether session si writes v at all.
func sessionWrites(h *History, si int, v string) bool {
	for _, op := range h.Sessions[si].Ops {
		if op.Type == OpWrite && op.Var == v {
			return true
		}
	}
	return false
}

// mutateReorder swaps two consecutive same-variable reads whose writes
// are causally ordered — the recorded session now claims it observed the
// overwrite before the overwritten value, which no causal delivery order
// allows (WriteCORead).
func mutateReorder(h *History, rng *rand.Rand) (*History, string, error) {
	writes := varWrites(h)
	type cand struct{ sess, i, j int }
	var cands []cand
	for si := range h.Sessions {
		lastRead := make(map[string]int)
		for oi, op := range h.Sessions[si].Ops {
			if op.Type != OpRead || op.Val == InitValue {
				continue
			}
			if prev, ok := lastRead[op.Var]; ok {
				pv := h.Sessions[si].Ops[prev].Val
				if pv != InitValue && pv < op.Val &&
					chainOrdered(writes[op.Var]) && len(writes[op.Var]) >= 2 &&
					writes[op.Var][0].sess != si {
					cands = append(cands, cand{si, prev, oi})
				}
			}
			lastRead[op.Var] = oi
		}
	}
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("consistency: no reorder site (no session reads a causally-ordered register twice)")
	}
	c := cands[rng.Intn(len(cands))]
	ops := h.Sessions[c.sess].Ops
	desc := fmt.Sprintf("reorder: swapped %s[%d] %s with %s[%d] %s",
		h.Sessions[c.sess].Member, c.i, ops[c.i], h.Sessions[c.sess].Member, c.j, ops[c.j])
	ops[c.i], ops[c.j] = ops[c.j], ops[c.i]
	return h, desc, nil
}

// detachWrites removes every write of v from its session and re-appends
// each as its own single-op session: the writes become causally
// concurrent while their reads-from edges survive.
func detachWrites(h *History, v string) {
	var detached []Session
	for si := range h.Sessions {
		s := &h.Sessions[si]
		kept := s.Ops[:0]
		for _, op := range s.Ops {
			if op.Type == OpWrite && op.Var == v {
				detached = append(detached, Session{Member: s.Member, Ops: []Op{op}})
				continue
			}
			kept = append(kept, op)
		}
		s.Ops = kept
	}
	h.Sessions = append(h.Sessions, detached...)
}

// readVals returns the distinct non-initial values session si reads from v.
func readVals(h *History, si int, v string) []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, op := range h.Sessions[si].Ops {
		if op.Type == OpRead && op.Var == v && op.Val != InitValue && !seen[op.Val] {
			seen[op.Val] = true
			out = append(out, op.Val)
		}
	}
	return out
}

// mutateForkRead makes a register's writes concurrent and reverses one
// reader's observed order, so two sessions durably disagree about which
// write won — individually causal (CC, CM hold), but no single
// arbitration explains both (CyclicCF fails CCv).
func mutateForkRead(h *History, rng *rand.Rand) (*History, string, error) {
	writes := varWrites(h)
	type cand struct {
		v    string
		a, b int
	}
	var cands []cand
	for v, ws := range writes {
		if len(ws) < 2 {
			continue
		}
		var readers []int
		for si := range h.Sessions {
			if !sessionWrites(h, si, v) && len(readVals(h, si, v)) >= 2 {
				readers = append(readers, si)
			}
		}
		for i := 0; i < len(readers); i++ {
			for j := 0; j < len(readers); j++ {
				if i == j {
					continue
				}
				if commonVals(h, readers[i], readers[j], v) >= 2 {
					cands = append(cands, cand{v, readers[i], readers[j]})
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("consistency: no read-fork site (no two sessions both read two values of one register)")
	}
	c := cands[rng.Intn(len(cands))]
	detachWrites(h, c.v)
	// Extract session b's non-initial reads of v and replay them reversed
	// in a fresh read-only session. The fork must NOT stay inline: b keeps
	// writing its own chain, and a backwards view sitting po-before those
	// writes would leak into every other member's causal past and turn the
	// fork into a genuine CM violation. A read-only session exports no
	// causality, so only arbitration (CCv) can tell the two views apart.
	var forked []Op
	b := &h.Sessions[c.b]
	kept := b.Ops[:0]
	for _, op := range b.Ops {
		if op.Type == OpRead && op.Var == c.v && op.Val != InitValue {
			forked = append(forked, op)
			continue
		}
		kept = append(kept, op)
	}
	b.Ops = kept
	for i, j := 0, len(forked)-1; i < j; i, j = i+1, j-1 {
		forked[i], forked[j] = forked[j], forked[i]
	}
	h.Sessions = append(h.Sessions, Session{Member: b.Member + "~fork", Ops: forked})
	desc := fmt.Sprintf("read-fork: detached %d writes of %s and forked %s's view backwards (vs %s)",
		len(writes[c.v]), c.v, b.Member, h.Sessions[c.a].Member)
	return h, desc, nil
}

// commonVals counts distinct non-initial values of v read by both a and b.
func commonVals(h *History, a, b int, v string) int {
	av := readVals(h, a, v)
	bv := readVals(h, b, v)
	set := make(map[uint64]bool, len(av))
	for _, x := range av {
		set[x] = true
	}
	n := 0
	for _, x := range bv {
		if set[x] {
			n++
		}
	}
	return n
}

// mutateSessionDrop makes a register's writes concurrent and appends a
// stale re-read to one reader: the session claims it saw old, new, old
// again — each read is individually causal (CC holds), but the session's
// own order admits no serialization (CyclicHB fails CM) and no
// arbitration explains the alternation (CyclicCF fails CCv).
func mutateSessionDrop(h *History, rng *rand.Rand) (*History, string, error) {
	writes := varWrites(h)
	type cand struct {
		v     string
		sess  int
		stale uint64
	}
	var cands []cand
	for v, ws := range writes {
		if len(ws) < 2 {
			continue
		}
		for si := range h.Sessions {
			if sessionWrites(h, si, v) {
				continue
			}
			if vals := readVals(h, si, v); len(vals) >= 2 {
				// Re-read the first value the session observed: every
				// later distinct value it read then alternates with it.
				cands = append(cands, cand{v, si, vals[0]})
			}
		}
	}
	if len(cands) == 0 {
		return nil, "", fmt.Errorf("consistency: no session-drop site (no session reads two values of one register)")
	}
	c := cands[rng.Intn(len(cands))]
	detachWrites(h, c.v)
	s := &h.Sessions[c.sess]
	s.Ops = append(s.Ops, Op{Type: OpRead, Var: c.v, Val: c.stale})
	desc := fmt.Sprintf("session-drop: detached writes of %s and re-read stale value %d at the end of %s",
		c.v, c.stale, s.Member)
	return h, desc, nil
}
