package consistency

import (
	"bytes"
	"strings"
	"testing"
)

// h builds a history from session specs; see ops().
func hist(sessions ...Session) *History { return &History{Sessions: sessions} }

func sess(member string, ops ...Op) Session { return Session{Member: member, Ops: ops} }

func w(v string, val uint64) Op { return Op{Type: OpWrite, Var: v, Val: val} }
func rd(v string, val uint64) Op { return Op{Type: OpRead, Var: v, Val: val} }

func mustCheck(t *testing.T, h *History) *Report {
	t.Helper()
	rep, err := Check(h)
	if err != nil {
		t.Fatalf("Check: %v\n%s", err, h)
	}
	return rep
}

// expect asserts the verdict triple and, where given, the pattern names.
func expect(t *testing.T, h *History, cc, ccv, cm bool, patterns ...string) *Report {
	t.Helper()
	rep := mustCheck(t, h)
	if rep.CC.Holds != cc || rep.CCv.Holds != ccv || rep.CM.Holds != cm {
		t.Fatalf("verdicts CC=%v CCv=%v CM=%v, want CC=%v CCv=%v CM=%v\n%s\n%s",
			rep.CC.Holds, rep.CCv.Holds, rep.CM.Holds, cc, ccv, cm, h, rep)
	}
	for i, want := range patterns {
		if want == "" {
			continue
		}
		got := rep.Outcome(Level(i + 1)).Pattern
		if got != want {
			t.Fatalf("%s failed with pattern %q, want %q\n%s", Level(i+1), got, want, rep)
		}
	}
	return rep
}

// TestLatticeAllHold pins a healthy causal exchange: everything passes.
func TestLatticeAllHold(t *testing.T) {
	rep := expect(t, hist(
		sess("p1", w("x", 1), w("x", 2)),
		sess("p2", rd("x", 1), rd("x", 2), w("y", 1)),
		sess("p3", rd("x", 2), rd("y", 1)),
	), true, true, true)
	if !rep.Differentiated {
		t.Fatal("history should take the polynomial path")
	}
	if !rep.AllHold() {
		t.Fatalf("AllHold false: %s", rep)
	}
}

// TestLatticeFork pins the classic fork: two writers race, two readers
// disagree on the winner. Individually causal (CC, CM hold) but no single
// arbitration explains both readers (CCv fails with CyclicCF).
func TestLatticeFork(t *testing.T) {
	rep := expect(t, hist(
		sess("p1", w("x", 1)),
		sess("p2", w("x", 2)),
		sess("p3", rd("x", 1), rd("x", 2)),
		sess("p4", rd("x", 2), rd("x", 1)),
	), true, false, true, "", PatternCyclicCF, "")
	if len(rep.CCv.Cycle) == 0 {
		t.Fatalf("CyclicCF verdict carries no cycle witness: %s", rep)
	}
}

// TestLatticeAlternatingRead pins the CM/CCv-but-not-CC split: one session
// reads x as 1, 2, then 1 again over concurrent writes. No serialization
// of its own past explains it (CM fails, CyclicHB) and no arbitration does
// either (CCv fails), yet each read alone is causal (CC holds).
func TestLatticeAlternatingRead(t *testing.T) {
	expect(t, hist(
		sess("p1", w("x", 1)),
		sess("p2", w("x", 2)),
		sess("p3", rd("x", 1), rd("x", 2), rd("x", 1)),
	), true, false, false, "", PatternCyclicCF, PatternCyclicHB)
}

// TestLatticeStaleRead pins WriteCORead: the writes are causally ordered
// and a session still reads the overwritten value after the overwrite.
func TestLatticeStaleRead(t *testing.T) {
	h := hist(
		sess("p1", w("x", 1), w("x", 2)),
		sess("p2", rd("x", 2), rd("x", 1)),
	)
	rep := expect(t, h, false, false, false,
		PatternWriteCORead, PatternWriteCORead, PatternWriteCORead)
	if len(rep.CC.Refs) != 3 {
		t.Fatalf("WriteCORead wants {w1, w2, r} refs, got %v", rep.CC.Refs)
	}
	if got := rep.CC.Refs[2].Resolve(h); got != rd("x", 1) {
		t.Fatalf("witness read is %s, want r(x)=1", got)
	}
}

// TestLatticeInitOverwritten pins WriteCOInitRead: a session that causally
// learned y=1 (written after x=1) still reads x as initial.
func TestLatticeInitOverwritten(t *testing.T) {
	expect(t, hist(
		sess("p1", w("x", 1), w("y", 1)),
		sess("p2", rd("y", 1), rd("x", 0)),
	), false, false, false, PatternWriteCOInitRead, "", "")
}

// TestLatticeThinAir pins ThinAirRead: a value nobody wrote.
func TestLatticeThinAir(t *testing.T) {
	expect(t, hist(
		sess("p1", w("x", 1)),
		sess("p2", rd("x", 7)),
	), false, false, false, PatternThinAirRead, "", "")
}

// TestLatticeCyclicCO pins CyclicCO: two sessions each read the other's
// later write — causality would have to run backwards.
func TestLatticeCyclicCO(t *testing.T) {
	rep := expect(t, hist(
		sess("p1", rd("y", 1), w("x", 1)),
		sess("p2", rd("x", 1), w("y", 1)),
	), false, false, false, PatternCyclicCO, PatternCyclicCO, PatternCyclicCO)
	if len(rep.CC.Cycle) < 2 {
		t.Fatalf("CyclicCO verdict carries no cycle: %s", rep)
	}
}

// TestCMSubsumptionDeepSession pins that checking only each session's
// final op is enough: the violation sits early in a long session and must
// still surface.
func TestCMSubsumptionDeepSession(t *testing.T) {
	expect(t, hist(
		sess("p1", w("x", 1)),
		sess("p2", w("x", 2)),
		sess("p3",
			rd("x", 1), rd("x", 2), rd("x", 1), // the alternation
			w("z", 1), rd("z", 1), w("z", 2), rd("z", 2), // healthy tail
		),
	), true, false, false, "", PatternCyclicCF, PatternCyclicHB)
}

// TestNonDifferentiatedFallsBack pins the bounded-search path: the same
// value written twice routes to the reference semantics and still renders
// correct verdicts.
func TestNonDifferentiatedFallsBack(t *testing.T) {
	rep := expect(t, hist(
		sess("p1", w("x", 1)),
		sess("p2", w("x", 1)), // duplicate value: not differentiated
		sess("p3", rd("x", 1)),
	), true, true, true)
	if rep.Differentiated {
		t.Fatal("duplicate write should leave the polynomial fragment")
	}

	// And a failing one: alternation with duplicate writes elsewhere.
	rep = mustCheck(t, hist(
		sess("p1", w("x", 1), w("x", 2)),
		sess("p2", rd("x", 2), rd("x", 1)),
		sess("p3", w("y", 5)),
		sess("p4", w("y", 5)),
	))
	if rep.CC.Holds {
		t.Fatalf("bounded search missed the stale read:\n%s", rep)
	}
}

// TestNonDifferentiatedTooBigUndecided pins the budget: a big
// non-differentiated history comes back Undecided, never a false verdict.
func TestNonDifferentiatedTooBigUndecided(t *testing.T) {
	var ops []Op
	for i := uint64(1); i <= 10; i++ {
		ops = append(ops, w("x", i))
	}
	h := hist(sess("p1", ops...), sess("p2", w("y", 1)), sess("p3", w("y", 1)))
	rep := mustCheck(t, h)
	if !rep.CC.Undecided || rep.CC.Holds {
		t.Fatalf("want Undecided, got %s", rep)
	}
}

// TestValidateRejects pins structural validation.
func TestValidateRejects(t *testing.T) {
	if _, err := Check(hist(sess("p", Op{Type: OpWrite, Var: "x", Val: 0}))); err == nil {
		t.Fatal("write of the initial value must be rejected")
	}
	if _, err := Check(hist(sess("p", Op{Type: 9, Var: "x", Val: 1}))); err == nil {
		t.Fatal("unknown op type must be rejected")
	}
	if _, err := Check(hist(sess("p", Op{Type: OpWrite, Var: "", Val: 1}))); err == nil {
		t.Fatal("empty variable must be rejected")
	}
}

// TestJSONRoundTrip pins the recorded-history file format.
func TestJSONRoundTrip(t *testing.T) {
	h := hist(
		sess("p1", w("x", 1), w("x", 2)),
		sess("p2", rd("x", 1), rd("x", 2)),
	)
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.String() != h.String() {
		t.Fatalf("round-trip mismatch:\n%s\nvs\n%s", got, h)
	}
	// Unknown format tag is rejected, not misread.
	if _, err := ReadJSON(strings.NewReader(`{"format":"other/v9","sessions":[]}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestReportString pins the summary rendering tests and CLI lean on.
func TestReportString(t *testing.T) {
	rep := mustCheck(t, hist(
		sess("p1", w("x", 1), w("x", 2)),
		sess("p2", rd("x", 2), rd("x", 1)),
	))
	s := rep.String()
	for _, want := range []string{"CC=FAIL(WriteCORead)", "ops=4", "overwritten"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

// TestParseLevel pins the CLI-facing level parser.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"cc": LevelCC, "CCv": LevelCCv, "cm": LevelCM} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("serializable"); err == nil {
		t.Fatal("bad level accepted")
	}
}
