// Package consistency renders whole-history consistency verdicts — CC
// (causal consistency), CCv (causal convergence), and CM (causal memory)
// — over recorded single-computation histories, following Bouajjani,
// Enea, Guerraoui & Hamza, "On Verifying Causal Consistency" (POPL 2017).
//
// A History is a set of sessions, each an ordered sequence of register
// read/write operations (the per-member operation log with read-values
// and session order). For differentiated histories — every value written
// at most once per variable, which the Recorder guarantees by
// construction and the data-independence argument of the paper makes
// sufficient — each criterion reduces to the absence of a fixed family of
// bad patterns over the causality relation co = (po ∪ rf)+:
//
//	CC  ⇔ none of {CyclicCO, ThinAirRead, WriteCOInitRead, WriteCORead}
//	CCv ⇔ CC ∧ ¬CyclicCF
//	CM  ⇔ CC ∧ none of {WriteHBInitRead, CyclicHB}
//
// CC is the weakest criterion; CCv (all members converge on one
// arbitration of concurrent writes) and CM (each session's reads are
// explainable by one serialization of its causal past) are incomparable
// strengthenings. The checker reports all three, each with a minimal
// counterexample (the offending operations, and the cycle for the cyclic
// patterns) when it fails. Non-differentiated histories fall back to a
// bounded search against the brute-force reference semantics.
package consistency

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"causalshare/internal/message"
)

// OpType distinguishes register reads from writes.
type OpType uint8

const (
	// OpWrite assigns Val to Var.
	OpWrite OpType = iota + 1
	// OpRead observes Var; Val is the value returned (InitValue if the
	// session observed the variable's initial state).
	OpRead
)

// InitValue is the value a read returns when it observed a variable no
// write had reached yet — the paper's initial register state.
const InitValue uint64 = 0

// Op is one register operation in a session.
type Op struct {
	Type OpType `json:"type"`
	Var  string `json:"var"`
	// Val is the written value, or the value the read returned. Writes
	// must not write InitValue (0): in a differentiated history every
	// written value is unique per variable and distinguishable from the
	// initial state.
	Val uint64 `json:"val"`
	// Label optionally names the broadcast message this operation was
	// recorded from; zero for synthetic histories. It is provenance for
	// counterexamples, not checker input.
	Label message.Label `json:"label,omitempty"`
}

// String renders the op for counterexamples: w(x)=3 or r(x)=3.
func (o Op) String() string {
	t := "w"
	if o.Type == OpRead {
		t = "r"
	}
	s := fmt.Sprintf("%s(%s)=%d", t, o.Var, o.Val)
	if !o.Label.IsNil() {
		s += "[" + o.Label.String() + "]"
	}
	return s
}

// Session is one entity's totally ordered operation sequence (the
// program/session order po). A member that crashed and rejoined from a
// snapshot contributes one session per incarnation: the snapshot breaks
// the session edge, because the new incarnation's state is the donor's,
// not the continuation of its own pre-crash reads.
type Session struct {
	// Member names the entity; several sessions may share a member.
	Member string `json:"member"`
	Ops    []Op   `json:"ops"`
}

// History is a recorded single-computation history: the checker's input.
type History struct {
	Sessions []Session `json:"sessions"`
}

// Ops returns the total operation count.
func (h *History) Ops() int {
	n := 0
	for i := range h.Sessions {
		n += len(h.Sessions[i].Ops)
	}
	return n
}

// Validate checks structural well-formedness: known op types, named
// variables, and no write of InitValue.
func (h *History) Validate() error {
	for si := range h.Sessions {
		s := &h.Sessions[si]
		for oi, op := range s.Ops {
			at := fmt.Sprintf("session %d (%s) op %d", si, s.Member, oi)
			if op.Type != OpWrite && op.Type != OpRead {
				return fmt.Errorf("consistency: %s: invalid op type %d", at, op.Type)
			}
			if op.Var == "" {
				return fmt.Errorf("consistency: %s: empty variable", at)
			}
			if op.Type == OpWrite && op.Val == InitValue {
				return fmt.Errorf("consistency: %s: write of the reserved initial value", at)
			}
		}
	}
	return nil
}

// Differentiated reports whether every value is written at most once per
// variable — the polynomial fragment the bad-pattern checker is exact
// for. It returns the first duplicated (var, val) pair otherwise.
func (h *History) Differentiated() (bool, string, uint64) {
	seen := make(map[string]map[uint64]bool)
	for i := range h.Sessions {
		for _, op := range h.Sessions[i].Ops {
			if op.Type != OpWrite {
				continue
			}
			vals := seen[op.Var]
			if vals == nil {
				vals = make(map[uint64]bool)
				seen[op.Var] = vals
			}
			if vals[op.Val] {
				return false, op.Var, op.Val
			}
			vals[op.Val] = true
		}
	}
	return true, "", 0
}

// Clone deep-copies the history; mutations operate on clones so the
// pristine recording stays checkable.
func (h *History) Clone() *History {
	out := &History{Sessions: make([]Session, len(h.Sessions))}
	for i, s := range h.Sessions {
		out.Sessions[i] = Session{Member: s.Member, Ops: append([]Op(nil), s.Ops...)}
	}
	return out
}

// String summarizes the history compactly for failure messages.
func (h *History) String() string {
	out := ""
	for i := range h.Sessions {
		s := &h.Sessions[i]
		out += s.Member + ":"
		for _, op := range s.Ops {
			out += " " + op.String()
		}
		out += "\n"
	}
	return out
}

// historyFile is the versioned on-disk form cmd/cccheck replays.
type historyFile struct {
	Format   string    `json:"format"`
	Sessions []Session `json:"sessions"`
}

// historyFormat tags the JSON encoding; readers reject unknown formats
// rather than misinterpreting them.
const historyFormat = "causalshare-history/v1"

// WriteJSON writes the history in the recorded-history file format.
func (h *History) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(historyFile{Format: historyFormat, Sessions: h.Sessions})
}

// ReadJSON parses a recorded-history file and validates it.
func ReadJSON(r io.Reader) (*History, error) {
	var f historyFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("consistency: parse history: %w", err)
	}
	if f.Format != historyFormat {
		return nil, fmt.Errorf("consistency: unknown history format %q (want %q)", f.Format, historyFormat)
	}
	h := &History{Sessions: f.Sessions}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// OpRef points into a history: the counterexample currency.
type OpRef struct {
	// Session indexes History.Sessions; Index indexes its Ops.
	Session int `json:"session"`
	Index   int `json:"index"`
}

// Resolve returns the referenced op (zero Op if out of range).
func (r OpRef) Resolve(h *History) Op {
	if r.Session < 0 || r.Session >= len(h.Sessions) {
		return Op{}
	}
	s := h.Sessions[r.Session]
	if r.Index < 0 || r.Index >= len(s.Ops) {
		return Op{}
	}
	return s.Ops[r.Index]
}

// DescribeRefs renders refs as "member[i]:op" lines for counterexamples.
func DescribeRefs(h *History, refs []OpRef) []string {
	out := make([]string, 0, len(refs))
	for _, r := range refs {
		member := "?"
		if r.Session >= 0 && r.Session < len(h.Sessions) {
			member = h.Sessions[r.Session].Member
		}
		out = append(out, fmt.Sprintf("%s[%d]: %s", member, r.Index, r.Resolve(h)))
	}
	return out
}

// sortRefs orders refs deterministically for stable counterexamples.
func sortRefs(refs []OpRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Session != refs[j].Session {
			return refs[i].Session < refs[j].Session
		}
		return refs[i].Index < refs[j].Index
	})
}
