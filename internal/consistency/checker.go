package consistency

import (
	"fmt"
	"strings"
	"time"
)

// Bad-pattern names, exactly as in Bouajjani et al.; Outcome.Pattern
// carries one of these when a verdict fails on the polynomial path.
const (
	// PatternCyclicCO: the base causality relation co = (po ∪ rf)+ has a
	// cycle — no causal order can contain it. Fails CC, CCv, and CM.
	PatternCyclicCO = "CyclicCO"
	// PatternThinAirRead: a read returned a non-initial value no write
	// ever wrote to that variable. Fails CC, CCv, and CM.
	PatternThinAirRead = "ThinAirRead"
	// PatternWriteCOInitRead: a read returned the initial value although a
	// write to the variable is in its causal past. Fails CC, CCv, and CM.
	PatternWriteCOInitRead = "WriteCOInitRead"
	// PatternWriteCORead: a read returned a value overwritten in its
	// causal past (w1 →co w2 →co r, r reads w1). Fails CC, CCv, and CM.
	PatternWriteCORead = "WriteCORead"
	// PatternCyclicCF: the conflict relation over same-variable writes,
	// derived from what reads observed, cycles with co — the members
	// durably disagree on an arbitration. Fails CCv only.
	PatternCyclicCF = "CyclicCF"
	// PatternWriteHBInitRead: within one session's view, a read of the
	// initial value happens after a write to the variable was already
	// serialized. Fails CM only.
	PatternWriteHBInitRead = "WriteHBInitRead"
	// PatternCyclicHB: some operation's happened-before relation (causal
	// past plus the write orderings its session's reads force) is cyclic —
	// no single serialization explains that session's reads. Fails CM only.
	PatternCyclicHB = "CyclicHB"
	// PatternBoundedSearch marks verdicts decided by the brute-force
	// reference semantics (non-differentiated histories).
	PatternBoundedSearch = "(bounded-search)"
)

// Level selects a consistency criterion.
type Level int

const (
	// LevelCC is causal consistency: every session's reads are explainable
	// by per-operation serializations of its causal past.
	LevelCC Level = iota + 1
	// LevelCCv is causal convergence: one arbitration order explains every
	// read — eventually-convergent replicas need it.
	LevelCCv
	// LevelCM is causal memory: each session's reads up to any point are
	// explainable by a single serialization of that point's causal past.
	LevelCM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelCC:
		return "CC"
	case LevelCCv:
		return "CCv"
	case LevelCM:
		return "CM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel parses "cc", "ccv", or "cm" (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "cc":
		return LevelCC, nil
	case "ccv":
		return LevelCCv, nil
	case "cm":
		return LevelCM, nil
	default:
		return 0, fmt.Errorf("consistency: unknown level %q (want cc, ccv, or cm)", s)
	}
}

// Outcome is one criterion's verdict over one history.
type Outcome struct {
	// Holds reports the criterion is satisfied.
	Holds bool `json:"holds"`
	// Undecided reports the checker could not decide (non-differentiated
	// history beyond the bounded-search budget); Holds is false then.
	Undecided bool `json:"undecided,omitempty"`
	// Pattern names the bad pattern when the verdict fails.
	Pattern string `json:"pattern,omitempty"`
	// Refs are the offending operations (the minimal witness).
	Refs []OpRef `json:"refs,omitempty"`
	// Cycle is the cycle witness for the cyclic patterns, in edge order.
	Cycle []OpRef `json:"cycle,omitempty"`
	// Detail is a one-line human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// Report carries all three verdicts over one history.
type Report struct {
	Ops            int           `json:"ops"`
	SessionCount   int           `json:"sessions"`
	Differentiated bool          `json:"differentiated"`
	CC             Outcome       `json:"cc"`
	CCv            Outcome       `json:"ccv"`
	CM             Outcome       `json:"cm"`
	Elapsed        time.Duration `json:"elapsed_ns"`
}

// Outcome returns the verdict for one level.
func (r *Report) Outcome(l Level) Outcome {
	switch l {
	case LevelCCv:
		return r.CCv
	case LevelCM:
		return r.CM
	default:
		return r.CC
	}
}

// AllHold reports whether every criterion is satisfied.
func (r *Report) AllHold() bool { return r.CC.Holds && r.CCv.Holds && r.CM.Holds }

// String renders a one-line verdict summary plus counterexample lines.
func (r *Report) String() string {
	tick := func(o Outcome) string {
		switch {
		case o.Holds:
			return "ok"
		case o.Undecided:
			return "undecided"
		default:
			return "FAIL(" + o.Pattern + ")"
		}
	}
	out := fmt.Sprintf("ops=%d sessions=%d CC=%s CCv=%s CM=%s",
		r.Ops, r.SessionCount, tick(r.CC), tick(r.CCv), tick(r.CM))
	for _, o := range []Outcome{r.CC, r.CCv, r.CM} {
		if !o.Holds && o.Detail != "" {
			out += "\n  " + o.Detail
		}
	}
	return out
}

// maxBoundedOps bounds the brute-force fallback for non-differentiated
// histories; larger ones come back Undecided.
const maxBoundedOps = 10

// Check renders CC, CCv, and CM verdicts over h. Differentiated histories
// take the polynomial bad-pattern path; others fall back to the bounded
// reference search.
func Check(h *History) (*Report, error) {
	start := time.Now()
	if err := h.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Ops: h.Ops(), SessionCount: len(h.Sessions)}
	if diff, dvar, dval := h.Differentiated(); !diff {
		if rep.Ops > maxBoundedOps {
			reason := fmt.Sprintf("value %d written twice to %s: history is not differentiated and %d ops exceed the bounded-search budget (%d)",
				dval, dvar, rep.Ops, maxBoundedOps)
			und := Outcome{Undecided: true, Detail: reason}
			rep.CC, rep.CCv, rep.CM = und, und, und
			rep.Elapsed = time.Since(start)
			return rep, nil
		}
		ref := Reference(h)
		rep.CC, rep.CCv, rep.CM = ref.CC, ref.CCv, ref.CM
		rep.Elapsed = time.Since(start)
		return rep, nil
	}
	rep.Differentiated = true

	ck := newChecker(h)
	ck.run(rep)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ---- bitsets ----

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) or(o bitset) bool {
	changed := uint64(0)
	for i, w := range o {
		nw := b[i] | w
		changed |= nw ^ b[i]
		b[i] = nw
	}
	return changed != 0
}

func (b bitset) and(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// ---- the polynomial checker ----

type checker struct {
	h *History
	n int

	// op id → location and content.
	sess, idx []int
	typ       []OpType
	varOf     []int
	val       []uint64

	varNames []string
	// writesOn[var] lists writer op ids; writerOf[var][val] resolves rf.
	writesOn [][]int
	writerOf []map[uint64]int

	// rf[r] is the writer op id, or -1 for an init read. Thin-air reads
	// are detected during construction.
	rf      []int
	thinAir int // op id of the first thin-air read, -1 if none

	// adj holds the direct po-successor and rf edges (for cycle
	// witnesses); reach holds the strict transitive closure of them.
	adj   [][]int32
	reach []bitset

	topo    []int32
	acyclic bool
}

func newChecker(h *History) *checker {
	n := h.Ops()
	ck := &checker{
		h: h, n: n,
		sess: make([]int, n), idx: make([]int, n),
		typ: make([]OpType, n), varOf: make([]int, n), val: make([]uint64, n),
		rf: make([]int, n), thinAir: -1,
		adj: make([][]int32, n),
	}
	vars := make(map[string]int)
	id := 0
	for si := range h.Sessions {
		for oi, op := range h.Sessions[si].Ops {
			v, ok := vars[op.Var]
			if !ok {
				v = len(ck.varNames)
				vars[op.Var] = v
				ck.varNames = append(ck.varNames, op.Var)
				ck.writesOn = append(ck.writesOn, nil)
				ck.writerOf = append(ck.writerOf, make(map[uint64]int))
			}
			ck.sess[id], ck.idx[id] = si, oi
			ck.typ[id], ck.varOf[id], ck.val[id] = op.Type, v, op.Val
			if op.Type == OpWrite {
				ck.writesOn[v] = append(ck.writesOn[v], id)
				ck.writerOf[v][op.Val] = id // unique: history is differentiated
			}
			if oi > 0 {
				ck.adj[id-1] = append(ck.adj[id-1], int32(id))
			}
			id++
		}
	}
	for op := 0; op < n; op++ {
		ck.rf[op] = -1
		if ck.typ[op] != OpRead || ck.val[op] == InitValue {
			continue
		}
		w, ok := ck.writerOf[ck.varOf[op]][ck.val[op]]
		if !ok {
			if ck.thinAir < 0 {
				ck.thinAir = op
			}
			continue
		}
		ck.rf[op] = w
		ck.adj[w] = append(ck.adj[w], int32(op))
	}
	return ck
}

func (ck *checker) ref(op int) OpRef { return OpRef{Session: ck.sess[op], Index: ck.idx[op]} }

func (ck *checker) refs(ops ...int) []OpRef {
	out := make([]OpRef, len(ops))
	for i, op := range ops {
		out[i] = ck.ref(op)
	}
	return out
}

func (ck *checker) describe(op int) string {
	return fmt.Sprintf("%s[%d]: %s", ck.h.Sessions[ck.sess[op]].Member, ck.idx[op], ck.ref(op).Resolve(ck.h))
}

// topoSort Kahn-sorts edges; on failure (cycle) the remainder feeds the
// cycle extractor.
func topoSort(n int, adj [][]int32) (order []int32, acyclic bool) {
	indeg := make([]int32, n)
	for _, succs := range adj {
		for _, s := range succs {
			indeg[s]++
		}
	}
	order = make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range adj[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return order, len(order) == n
}

// findCycle extracts one directed cycle via iterative DFS; the graph is
// known to contain at least one.
func findCycle(n int, adj [][]int32) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		// Iterative DFS: stack of (node, next-edge-index).
		type frame struct {
			v  int32
			ei int
		}
		stack := []frame{{int32(root), 0}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(adj[f.v]) {
				s := adj[f.v][f.ei]
				f.ei++
				switch color[s] {
				case white:
					color[s] = gray
					parent[s] = f.v
					stack = append(stack, frame{s, 0})
				case gray:
					// Back edge f.v → s closes the cycle.
					cycle := []int{int(f.v)}
					for at := f.v; at != s; {
						at = parent[at]
						cycle = append(cycle, int(at))
					}
					// Reverse into edge order s → ... → f.v.
					for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return cycle
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// closure computes strict reachability over adj in reverse topological
// order: reach[v] = ∪ over successors s of ({s} ∪ reach[s]).
func (ck *checker) closure() {
	ck.reach = make([]bitset, ck.n)
	words := (ck.n + 63) / 64
	backing := make([]uint64, ck.n*words)
	for v := 0; v < ck.n; v++ {
		ck.reach[v] = bitset(backing[v*words : (v+1)*words])
	}
	for i := len(ck.topo) - 1; i >= 0; i-- {
		v := ck.topo[i]
		for _, s := range ck.adj[v] {
			ck.reach[v].set(int(s))
			ck.reach[v].or(ck.reach[s])
		}
	}
}

// co reports a →co b (strictly).
func (ck *checker) co(a, b int) bool { return ck.reach[a].has(b) }

func (ck *checker) cycleOutcome(pattern string, cycle []int, detail string) Outcome {
	return Outcome{
		Pattern: pattern,
		Refs:    ck.refs(cycle...),
		Cycle:   ck.refs(cycle...),
		Detail:  detail + ": " + ck.cycleString(cycle),
	}
}

func (ck *checker) cycleString(cycle []int) string {
	parts := make([]string, 0, len(cycle)+1)
	for _, op := range cycle {
		parts = append(parts, ck.describe(op))
	}
	if len(cycle) > 0 {
		parts = append(parts, "→ back to "+ck.describe(cycle[0]))
	}
	return strings.Join(parts, " → ")
}

// run fills the report. CC's bad patterns are part of CCv's and CM's
// families, so a CC failure fails all three with the same witness.
func (ck *checker) run(rep *Report) {
	ck.topo, ck.acyclic = topoSort(ck.n, ck.adj)
	if !ck.acyclic {
		out := ck.cycleOutcome(PatternCyclicCO, findCycle(ck.n, ck.adj), "session order and reads-from cycle")
		rep.CC, rep.CCv, rep.CM = out, out, out
		return
	}
	ck.closure()

	if cc, ok := ck.checkCC(); !ok {
		rep.CC, rep.CCv, rep.CM = cc, cc, cc
		return
	}
	rep.CC = Outcome{Holds: true}
	rep.CCv = ck.checkCCv()
	rep.CM = ck.checkCM()
}

// checkCC scans for the four CC bad patterns (CyclicCO was checked by the
// caller).
func (ck *checker) checkCC() (Outcome, bool) {
	if ck.thinAir >= 0 {
		r := ck.thinAir
		return Outcome{
			Pattern: PatternThinAirRead,
			Refs:    ck.refs(r),
			Detail: fmt.Sprintf("%s read value %d, which no write to %s ever wrote",
				ck.describe(r), ck.val[r], ck.varNames[ck.varOf[r]]),
		}, false
	}
	for r := 0; r < ck.n; r++ {
		if ck.typ[r] != OpRead {
			continue
		}
		v := ck.varOf[r]
		if ck.rf[r] < 0 {
			// Initial-value read: no write to v may be causally before it.
			for _, w := range ck.writesOn[v] {
				if ck.co(w, r) {
					return Outcome{
						Pattern: PatternWriteCOInitRead,
						Refs:    ck.refs(w, r),
						Detail: fmt.Sprintf("%s read the initial value of %s although %s is in its causal past",
							ck.describe(r), ck.varNames[v], ck.describe(w)),
					}, false
				}
			}
			continue
		}
		w1 := ck.rf[r]
		for _, w2 := range ck.writesOn[v] {
			if w2 != w1 && ck.co(w1, w2) && ck.co(w2, r) {
				return Outcome{
					Pattern: PatternWriteCORead,
					Refs:    ck.refs(w1, w2, r),
					Detail: fmt.Sprintf("%s read from %s although it was overwritten by %s in the read's causal past",
						ck.describe(r), ck.describe(w1), ck.describe(w2)),
				}, false
			}
		}
	}
	return Outcome{Holds: true}, true
}

// checkCCv adds the conflict edges reads force between same-variable
// writes and looks for a cycle through co ∪ cf.
func (ck *checker) checkCCv() Outcome {
	// cf: w1 → w2 when some read of w2 has w1 in its causal past — any
	// arbitration must then order w1 before w2.
	combined := make([][]int32, ck.n)
	for v := range combined {
		combined[v] = ck.adj[v]
	}
	added := false
	for r := 0; r < ck.n; r++ {
		if ck.typ[r] != OpRead || ck.rf[r] < 0 {
			continue
		}
		w2 := ck.rf[r]
		for _, w1 := range ck.writesOn[ck.varOf[r]] {
			if w1 == w2 || !ck.co(w1, r) {
				continue
			}
			if !added {
				// Copy-on-write: don't append into ck.adj's backing arrays.
				for v := range combined {
					combined[v] = append([]int32(nil), ck.adj[v]...)
				}
				added = true
			}
			combined[w1] = append(combined[w1], int32(w2))
		}
	}
	if _, ok := topoSort(ck.n, combined); !ok {
		return ck.cycleOutcome(PatternCyclicCF, findCycle(ck.n, combined),
			"no single arbitration of concurrent writes explains every read (conflict/causality cycle)")
	}
	return Outcome{Holds: true}
}

// checkCM verifies, for each session's final operation o, that one
// serialization of o's causal past explains every read the session made
// up to o. The happened-before relation hb_o starts as co restricted to
// the past and grows write→write edges forced by the session's reads;
// a cycle (or a write serialized before an initial-value read of its
// variable) means no such serialization exists. Checking only each
// session's po-maximal operation is sound: hb_o grows monotonically with
// o along the session order.
func (ck *checker) checkCM() Outcome {
	for si := range ck.h.Sessions {
		if len(ck.h.Sessions[si].Ops) == 0 {
			continue
		}
		if out, ok := ck.checkCMAt(si); !ok {
			return out
		}
	}
	return Outcome{Holds: true}
}

// checkCMAt runs the hb fixpoint for session si's last operation.
func (ck *checker) checkCMAt(si int) (Outcome, bool) {
	// Locate o: the session's last op. Its causal past mask covers every
	// op with a →co o, plus o itself.
	o := -1
	for op := 0; op < ck.n; op++ {
		if ck.sess[op] == si && ck.idx[op] == len(ck.h.Sessions[si].Ops)-1 {
			o = op
			break
		}
	}
	mask := newBitset(ck.n)
	for a := 0; a < ck.n; a++ {
		if a == o || ck.co(a, o) {
			mask.set(a)
		}
	}

	// hb rows: co restricted to the past (already transitive). hbAdj holds
	// the direct edges for cycle witnesses.
	words := (ck.n + 63) / 64
	backing := make([]uint64, ck.n*words)
	hb := make([]bitset, ck.n)
	for a := 0; a < ck.n; a++ {
		hb[a] = bitset(backing[a*words : (a+1)*words])
		if mask.has(a) {
			copy(hb[a], ck.reach[a])
			hb[a].and(mask)
		}
	}
	hbAdj := make([][]int32, ck.n)
	for a := 0; a < ck.n; a++ {
		if !mask.has(a) {
			continue
		}
		for _, s := range ck.adj[a] {
			if mask.has(int(s)) {
				hbAdj[a] = append(hbAdj[a], s)
			}
		}
	}

	// The session's reads up to o (all of them: o is the last op).
	var sessionReads []int
	for op := 0; op < ck.n; op++ {
		if ck.sess[op] == si && ck.typ[op] == OpRead {
			sessionReads = append(sessionReads, op)
		}
	}

	addEdge := func(u, w int) {
		hbAdj[u] = append(hbAdj[u], int32(w))
		// Propagate: u now reaches w and w's cone; so does everything
		// that reaches u.
		delta := newBitset(ck.n)
		delta.set(w)
		delta.or(hb[w])
		hb[u].or(delta)
		for a := 0; a < ck.n; a++ {
			if mask.has(a) && hb[a].has(u) {
				hb[a].or(delta)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, r := range sessionReads {
			v := ck.varOf[r]
			w2 := ck.rf[r]
			for _, w1 := range ck.writesOn[v] {
				if !mask.has(w1) || w1 == w2 {
					continue
				}
				if !hb[w1].has(r) {
					continue
				}
				if w2 < 0 {
					return Outcome{
						Pattern: PatternWriteHBInitRead,
						Refs:    ck.refs(w1, r, o),
						Detail: fmt.Sprintf("no serialization for %s's session: %s must precede %s, which read the initial value of %s",
							ck.h.Sessions[si].Member, ck.describe(w1), ck.describe(r), ck.varNames[v]),
					}, false
				}
				if !hb[w1].has(w2) {
					addEdge(w1, w2)
					changed = true
					if hb[w1].has(w1) {
						return ck.cycleWitnessCM(si, hbAdj), false
					}
				}
			}
		}
	}
	// A cycle can only appear through addEdge (checked there), but keep a
	// final sweep for defense in depth.
	for a := 0; a < ck.n; a++ {
		if mask.has(a) && hb[a].has(a) {
			return ck.cycleWitnessCM(si, hbAdj), false
		}
	}
	return Outcome{}, true
}

func (ck *checker) cycleWitnessCM(si int, hbAdj [][]int32) Outcome {
	out := ck.cycleOutcome(PatternCyclicHB, findCycle(ck.n, hbAdj),
		fmt.Sprintf("no serialization of %s's causal past satisfies all its reads (happened-before cycle)",
			ck.h.Sessions[si].Member))
	return out
}
