package causal

import (
	"testing"

	"causalshare/internal/message"
	"causalshare/internal/vclock"
)

// FuzzDecodeAdvert checks the advert codec never panics and accepted
// inputs re-encode losslessly.
func FuzzDecodeAdvert(f *testing.F) {
	seeds := [][2]map[string]uint64{
		{{}, {}},
		{{"a": 1}, {"b": 2}},
		{{"m00~cli": 900, "m00~total": 3}, {"m01": 12}},
	}
	for _, s := range seeds {
		f.Add(encodeAdvert(s[0], s[1])[1:])
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		retained, watermarks, err := decodeAdvert(data)
		if err != nil {
			return
		}
		re := encodeAdvert(retained, watermarks)
		r2, w2, err := decodeAdvert(re[1:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(r2) != len(retained) || len(w2) != len(watermarks) {
			t.Fatalf("round trip changed sizes")
		}
		for k, v := range retained {
			if r2[k] != v {
				t.Fatalf("retained[%q] changed: %d -> %d", k, v, r2[k])
			}
		}
		for k, v := range watermarks {
			if w2[k] != v {
				t.Fatalf("watermarks[%q] changed: %d -> %d", k, v, w2[k])
			}
		}
	})
}

// FuzzDecodeLabel checks the label codec never panics and round-trips.
func FuzzDecodeLabel(f *testing.F) {
	f.Add(encodeLabel(nil, message.Label{Origin: "a~cli", Seq: 42}))
	f.Add([]byte{})
	f.Add([]byte{0x05, 'a'})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, rest, err := decodeLabel(data)
		if err != nil {
			return
		}
		re := encodeLabel(nil, l)
		l2, rest2, err := decodeLabel(re)
		if err != nil || l2 != l || len(rest2) != 0 {
			t.Fatalf("round trip failed: %v %v %v", l2, rest2, err)
		}
		_ = rest
	})
}

// FuzzDecodeCBFrame checks the CBCAST frame decoder never panics.
func FuzzDecodeCBFrame(f *testing.F) {
	seed, err := encodeCBFrame("sender", vclock.VC{"sender": 1}, message.Message{
		Label: message.Label{Origin: "sender", Seq: 1},
		Kind:  message.KindCommutative,
		Op:    "inc",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed[1:])
	f.Add([]byte{})
	f.Add([]byte{0x01, 'x', 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		sender, vc, m, err := decodeCBFrame(message.NewDecoder(), data)
		if err != nil {
			return
		}
		// Accepted frames must re-encode and re-decode consistently.
		re, err := encodeCBFrame(sender, vc, m)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		s2, vc2, m2, err := decodeCBFrame(message.NewDecoder(), re[1:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2 != sender || m2.Label != m.Label || vc2.Compare(vc) != vclock.Equal {
			t.Fatalf("round trip changed frame")
		}
	})
}
