package causal

import (
	"testing"
	"testing/quick"

	"causalshare/internal/message"
)

func TestDeliveredSetBasics(t *testing.T) {
	d := newDeliveredSet()
	l := message.Label{Origin: "a", Seq: 1}
	if d.Has(l) {
		t.Error("empty set reports label")
	}
	if !d.Add(l) {
		t.Error("first Add returned false")
	}
	if d.Add(l) {
		t.Error("second Add returned true")
	}
	if !d.Has(l) {
		t.Error("added label not found")
	}
}

func TestDeliveredSetWatermarkCompaction(t *testing.T) {
	d := newDeliveredSet()
	// Deliver out of order: 3, 1, 2 — watermark should end at 3 with no
	// sparse entries.
	for _, s := range []uint64{3, 1, 2} {
		if !d.Add(message.Label{Origin: "a", Seq: s}) {
			t.Fatalf("Add(%d) = false", s)
		}
	}
	os := d.byOrigin["a"]
	if os.watermark != 3 || len(os.above) != 0 {
		t.Errorf("watermark = %d, sparse = %d; want 3, 0", os.watermark, len(os.above))
	}
	if d.Len() != 3 || d.SparseLen() != 0 {
		t.Errorf("Len = %d SparseLen = %d", d.Len(), d.SparseLen())
	}
	// A gap keeps entries sparse.
	d.Add(message.Label{Origin: "a", Seq: 10})
	if d.SparseLen() != 1 {
		t.Errorf("SparseLen after gap = %d, want 1", d.SparseLen())
	}
}

func TestDeliveredSetPerOriginIsolation(t *testing.T) {
	d := newDeliveredSet()
	d.Add(message.Label{Origin: "a", Seq: 1})
	if d.Has(message.Label{Origin: "b", Seq: 1}) {
		t.Error("origin b contaminated by origin a")
	}
}

func TestPropDeliveredSetMatchesNaiveSet(t *testing.T) {
	f := func(adds []uint16) bool {
		d := newDeliveredSet()
		naive := make(map[message.Label]bool)
		for _, a := range adds {
			origin := string(rune('a' + int(a%3)))
			l := message.Label{Origin: origin, Seq: uint64(a%32) + 1}
			got := d.Add(l)
			want := !naive[l]
			naive[l] = true
			if got != want {
				return false
			}
		}
		for l := range naive {
			if !d.Has(l) {
				return false
			}
		}
		if d.Len() != len(naive) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropWatermarkNeverExceedsContiguousPrefix(t *testing.T) {
	f := func(adds []uint8) bool {
		d := newDeliveredSet()
		present := make(map[uint64]bool)
		for _, a := range adds {
			s := uint64(a%16) + 1
			d.Add(message.Label{Origin: "x", Seq: s})
			present[s] = true
		}
		os, ok := d.byOrigin["x"]
		if !ok {
			return len(adds) == 0
		}
		for s := uint64(1); s <= os.watermark; s++ {
			if !present[s] {
				return false // watermark claims an undelivered seq
			}
		}
		// Nothing contiguous may remain sparse.
		if _, sparse := os.above[os.watermark+1]; sparse {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
