package causal

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
	"causalshare/internal/wal"
)

// OSendConfig parameterizes an OSend engine.
type OSendConfig struct {
	// Self is the local member id; it must be a member of Group.
	Self string
	// Group is the broadcast domain (every Broadcast reaches all members).
	Group *group.Group
	// Conn is the transport attachment for Self.
	Conn transport.Conn
	// Deliver receives messages in causal order.
	Deliver DeliverFunc
	// Patience is how long a message may wait on a missing predecessor
	// before the engine requests retransmission from the predecessor's
	// origin. Zero disables retransmission (appropriate on lossless
	// transports).
	Patience time.Duration
	// Telemetry is the registry the engine registers its instruments on.
	// Engines sharing a registry aggregate their counters; when nil the
	// engine creates a private registry, so Snapshot (and the Metrics
	// compatibility view) stay per-engine.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives send/deliver/defer/fetch events. A nil
	// ring disables tracing at zero cost.
	Trace *telemetry.Ring
	// Tracer, when non-nil, records causal span lifecycles (send → enqueue
	// → holdback wait → deliver) into the group's trace.Collector and runs
	// the online causal-order audit on every delivery. Nil disables span
	// tracing; messages then carry no span context.
	Tracer *trace.Tracer
	// Flight, when non-nil, is this member's black-box flight recorder.
	// The engine records what the trace collector cannot see from its
	// hooks: holdback entry with the blocking dependency, and dependency
	// fetches. Nil disables flight recording at zero cost.
	Flight *flightrec.Recorder
	// Journal, when non-nil, is the member's write-ahead log. The engine
	// journals every delivery (rebuilding the frontier and label chain on
	// restart) and every membership verdict. A nil journal disables
	// durability at zero cost.
	Journal *wal.WAL
	// OnSync, when non-nil, is invoked after a state-sync response from a
	// peer has been applied: the peer's delivered watermarks have been
	// seeded locally and fetches for the retained tail issued. A rejoining
	// member uses it to learn how far the group had progressed while it was
	// down. The callback runs on the engine's receive goroutine.
	OnSync func(from string, watermarks map[string]uint64)
}

// OSend is the paper's causal broadcast engine: ordering is driven purely
// by the explicit OccursAfter predicates messages carry. A message is
// delivered once every label in its predicate has been delivered locally;
// until then it is buffered. Because the predicate is stable application
// information, a buffered message's predecessors are guaranteed to exist,
// so a missing one can always be re-fetched from its origin (the label
// names it).
//
// Locking is split so the two halves of the hot path never contend: the
// Broadcast path touches only retainMu (retransmission state), the
// delivery path only deliverMu (buffering state), and the delivered set
// sits behind its own read-mostly lock so stable-point detectors can poll
// Delivered without slowing either path. Counters are atomics. The lock
// hierarchy is deliverMu | retainMu → deliveredMu; deliverMu and retainMu
// are never held together.
type OSend struct {
	self     string
	grp      *group.Group
	others   []string // cached fan-out targets (the group is immutable)
	conn     transport.Conn
	deliver  DeliverFunc
	patience time.Duration
	onSync   func(from string, watermarks map[string]uint64)

	closed atomic.Bool

	// deliveredMu guards the delivered-label set, the engine's most read
	// structure (every ingest probes it, stable-point detectors poll it).
	deliveredMu sync.RWMutex
	delivered   *deliveredSet

	// deliverMu guards the delivery buffer and its scratch space.
	deliverMu   sync.Mutex
	pending     map[message.Label]*pendingEntry
	waiting     map[message.Label][]message.Label // missing label -> pending labels blocked on it
	maxBuffered int
	cascade     []message.Message   // BFS scratch for deliverLocked
	readyFree   [][]message.Message // recycled ready batches

	// retainMu guards retransmission state: messages kept for re-fetch,
	// fetch rate-limiting, and peer watermarks.
	retainMu  sync.Mutex
	retained  map[message.Label]message.Message
	lastFetch map[message.Label]time.Time
	// peerWM holds, per peer, the delivered watermarks that peer last
	// advertised; a retained message every peer's watermark covers is
	// stable and garbage-collected.
	peerWM map[string]map[string]uint64
	// down marks peers excluded from the stability quorum (crashed or
	// shed by the reliability sublayer): a dead member's frozen watermark
	// must not pin retained history forever. An advert from a down peer
	// clears the mark — the peer is evidently back.
	down map[string]bool
	// fetchSpread rotates dependency fetches across live peers when a
	// label's origin is down (any retainer can serve it).
	fetchSpread int

	// reg is the registry ins was registered on (shared or private); trace
	// is the optional event ring. Instruments and rings are nil-safe, so
	// the hot paths update them unconditionally.
	reg    *telemetry.Registry
	ins    osendInstruments
	meta   metaInstruments
	peer   peerInstruments
	trace  *telemetry.Ring
	spans  *trace.Tracer
	flight *flightrec.Recorder
	wlog   *wal.WAL

	done chan struct{}
	wg   sync.WaitGroup
}

type pendingEntry struct {
	msg     message.Message
	missing map[message.Label]struct{}
	since   time.Time
}

var (
	_ Broadcaster = (*OSend)(nil)
	_ Engine      = (*OSend)(nil)
)

// NewOSend starts an engine; its receive loop runs until Close.
func NewOSend(cfg OSendConfig) (*OSend, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("causal: %q is not a member of the group", cfg.Self)
	}
	if cfg.Conn == nil {
		return nil, fmt.Errorf("causal: nil conn")
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("causal: nil deliver func")
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &OSend{
		self:      cfg.Self,
		grp:       cfg.Group,
		others:    cfg.Group.Others(cfg.Self),
		conn:      cfg.Conn,
		deliver:   cfg.Deliver,
		patience:  cfg.Patience,
		onSync:    cfg.OnSync,
		reg:       reg,
		ins:       newOSendInstruments(reg),
		meta:      newMetaInstruments(reg),
		trace:     cfg.Trace,
		spans:     cfg.Tracer,
		flight:    cfg.Flight,
		wlog:      cfg.Journal,
		delivered: newDeliveredSet(),
		pending:   make(map[message.Label]*pendingEntry),
		waiting:   make(map[message.Label][]message.Label),
		retained:  make(map[message.Label]message.Message),
		lastFetch: make(map[message.Label]time.Time),
		peerWM:    make(map[string]map[string]uint64),
		down:      make(map[string]bool),
		done:      make(chan struct{}),
	}
	e.peer = newPeerInstruments(reg)
	registerPeerLag(reg, e.others, e.peerLag)
	e.wg.Add(1)
	go e.recvLoop()
	if e.patience > 0 {
		e.wg.Add(1)
		go e.fetchLoop()
	}
	return e, nil
}

// Self implements Broadcaster.
func (e *OSend) Self() string { return e.self }

// Broadcast implements Broadcaster. The message is encoded exactly once
// into a pooled frame that every destination shares (the transport fans
// it out without per-peer copies), retained for retransmission, and
// processed locally through the same delivery logic (self-delivery in
// causal position).
func (e *OSend) Broadcast(m message.Message) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("causal: broadcast: %w", err)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	t0 := time.Now()
	// Span assignment and the SentAt stamp must precede frame sizing: both
	// ride as trailers, and EncodedSize accounts for them.
	m.Span = e.spans.Broadcast(m)
	if m.SentAt == 0 {
		m.SentAt = t0.UnixNano()
	}
	f := transport.NewFrame(1 + m.EncodedSize())
	f.B = append(f.B, frameOSendData)
	var err error
	f.B, err = m.AppendBinary(f.B)
	if err != nil {
		f.Release()
		return fmt.Errorf("causal: encode %v: %w", m.Label, err)
	}

	e.retainMu.Lock()
	e.retained[m.Label] = m
	e.ins.retainedDepth.Set(int64(len(e.retained)))
	e.retainMu.Unlock()
	// Ordering metadata on the wire: the OccursAfter labels, once per peer.
	e.ins.controlBytes.Add(uint64(m.Deps.EncodedSize()) * uint64(len(e.others)))
	e.meta.add(uint64(m.Deps.EncodedSize()), uint64(len(e.others)))
	e.meta.msgs.Inc()
	e.trace.Record(telemetry.EventSend, e.self, m.Label.Origin, m.Label.Seq, 0)

	err = transport.Multicast(e.conn, e.others, f)
	f.Release()
	if err != nil {
		// Per-peer delivery is best-effort: the message is retained for
		// retransmission and the anti-entropy adverts re-offer it, so a
		// crashed or partitioned peer must not fail the broadcast for the
		// rest — and the sender still observes its own message.
		e.ins.sendErrors.Inc()
	}
	e.ingest(m)
	e.ins.broadcastLat.ObserveSince(t0)
	return nil
}

// Snapshot returns the engine's registry snapshot — the one snapshot
// shape shared by every instrumented layer. When the engine was built
// with a shared registry the snapshot covers everything registered on it.
func (e *OSend) Snapshot() telemetry.Snapshot { return e.reg.Snapshot() }

// Metrics is the thin compatibility view over Snapshot, preserving the
// legacy per-engine counter struct. With a shared registry the counter
// fields aggregate across every engine on it; the buffer-depth fields are
// always this engine's own.
func (e *OSend) Metrics() Metrics {
	s := e.reg.Snapshot()
	m := Metrics{
		Delivered:    s.Get("causal_osend_delivered_total"),
		Duplicates:   s.Get("causal_osend_duplicates_total"),
		Fetches:      s.Get("causal_osend_fetches_total"),
		ControlBytes: s.Get("causal_osend_control_bytes_total"),
		StablePruned: s.Get("causal_osend_stable_pruned_total"),
	}
	e.deliverMu.Lock()
	m.Buffered = len(e.pending)
	m.MaxBuffered = e.maxBuffered
	e.deliverMu.Unlock()
	e.retainMu.Lock()
	m.Retained = len(e.retained)
	e.retainMu.Unlock()
	return m
}

// Delivered reports whether l has been delivered locally; the stable-point
// detector polls it, so it takes only a read lock on the delivered set.
func (e *OSend) Delivered(l message.Label) bool {
	return e.deliveredHas(l)
}

func (e *OSend) deliveredHas(l message.Label) bool {
	e.deliveredMu.RLock()
	ok := e.delivered.Has(l)
	e.deliveredMu.RUnlock()
	return ok
}

func (e *OSend) deliveredAdd(l message.Label) bool {
	e.deliveredMu.Lock()
	ok := e.delivered.Add(l)
	e.deliveredMu.Unlock()
	return ok
}

// ForgetRetained drops the local retransmission copy of l (call once l is
// known stable at all members).
func (e *OSend) ForgetRetained(l message.Label) {
	e.retainMu.Lock()
	delete(e.retained, l)
	e.ins.retainedDepth.Set(int64(len(e.retained)))
	e.retainMu.Unlock()
}

// Frontier returns the engine's delivered watermarks: per origin, every
// sequence in [1, Frontier[origin]] has been delivered locally. A peer
// serving a rejoin snapshot pairs this with the total layer's SyncState.
func (e *OSend) Frontier() map[string]uint64 {
	e.deliveredMu.RLock()
	defer e.deliveredMu.RUnlock()
	return e.delivered.Watermarks()
}

// SeedFrontier marks every sequence up to wm[origin] as already delivered,
// per origin. A rejoining member seeds the frontiers its peers report so
// pre-crash history — whose effects it recovers through the state
// snapshot, not re-delivery — is treated as old news; buffered messages
// whose missing predecessors the seed covered deliver immediately.
func (e *OSend) SeedFrontier(wm map[string]uint64) {
	e.deliveredMu.Lock()
	for origin, seq := range wm {
		e.delivered.Seed(origin, seq)
	}
	e.deliveredMu.Unlock()
	// The auditor must learn the watermarks before the release pass below
	// delivers anything that depends on seeded history.
	e.spans.SeedDelivered(wm)
	e.releaseSeeded()
}

// releaseSeeded re-checks the holdback buffer after a frontier seed:
// dependencies the seed covered are satisfied, and fully satisfied
// messages deliver with their usual cascade.
func (e *OSend) releaseSeeded() {
	e.deliverMu.Lock()
	var freed []message.Message
	for l, entry := range e.pending {
		for d := range entry.missing {
			if e.deliveredHas(d) {
				delete(entry.missing, d)
			}
		}
		if len(entry.missing) == 0 {
			delete(e.pending, l)
			e.ins.depWait.ObserveSince(entry.since)
			freed = append(freed, entry.msg)
		}
	}
	for d := range e.waiting {
		if e.deliveredHas(d) {
			delete(e.waiting, d)
		}
	}
	var ready []message.Message
	if len(freed) != 0 {
		ready = e.takeReadyLocked()
		for _, m := range freed {
			ready = e.deliverLocked(ready, m)
		}
		e.ins.pendingDepth.Set(int64(len(e.pending)))
	}
	e.deliverMu.Unlock()
	e.observeVisibility(ready)
	for _, r := range ready {
		e.deliver(r)
		// Journaled AFTER the callback: a durable delivery claim implies
		// everything the upper layer journaled for r (e.g. the
		// sequencer's holdback payload) sits earlier in the log, so a
		// torn tail can never leave a claim without its payload.
		e.wlog.Deliver(r.Label)
	}
	if ready != nil {
		e.pruneFetched(ready)
		e.putReady(ready)
	}
}

// RequestSync asks every peer for a state-sync snapshot (their delivered
// watermarks plus the retained tail they can serve). Responses arrive as
// sync frames handled on the receive goroutine: tail fetches are issued
// and the OnSync callback (if any) invoked. Responses deliberately do NOT
// seed the delivered frontier — by the time one arrives the peer's
// watermarks may have advanced past messages whose effects the caller's
// resume snapshot predates, and seeding would skip them silently. Seeding
// is the caller's job via SeedFrontier, read consistently with whatever
// layer snapshot it resumes from. The fan-out is best-effort; callers
// re-invoke if no response arrives.
func (e *OSend) RequestSync() error {
	if e.closed.Load() {
		return ErrClosed
	}
	f := transport.StaticFrame([]byte{frameOSendSyncReq})
	err := transport.Multicast(e.conn, e.others, f)
	f.Release()
	return err
}

// SyncWith asks one peer for a state-sync snapshot — the targeted variant
// of RequestSync. The reliability sublayer calls it (via its OnResync
// hook) when the link from peer skipped irrecoverable sequences: only
// that peer's retained tail needs re-fetching, not the whole group's.
func (e *OSend) SyncWith(peer string) error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.conn.Send(peer, []byte{frameOSendSyncReq})
}

// serveSync answers a rejoining peer's sync request with this member's
// retained tail (highest retained seq per origin) and delivered
// watermarks — the advert payload, sent unicast under the sync-resp tag so
// the requester knows it may seed the watermarks rather than merely prune.
func (e *OSend) serveSync(requester string) {
	e.retainMu.Lock()
	maxSeq := make(map[string]uint64, len(e.retained))
	for l := range e.retained {
		if l.Seq > maxSeq[l.Origin] {
			maxSeq[l.Origin] = l.Seq
		}
	}
	e.retainMu.Unlock()
	e.deliveredMu.RLock()
	wm := e.delivered.Watermarks()
	e.deliveredMu.RUnlock()
	frame := []byte{frameOSendSyncResp}
	frame = appendOriginSeqMap(frame, maxSeq)
	frame = appendOriginSeqMap(frame, wm)
	_ = e.conn.Send(requester, frame) // best effort; requester retries
}

// MarkDown sets or clears a peer's down mark. A down peer is excluded
// from the stability quorum (its frozen watermark would otherwise pin
// retained history forever) and dependency fetches for labels it
// originated are spread across live peers instead — with group-wide
// retention any of them may hold a copy. The failure detector or the
// reliability sublayer's shed verdicts drive this; an advert arriving
// from a down peer clears the mark on its own.
func (e *OSend) MarkDown(peer string, down bool) {
	e.retainMu.Lock()
	if down {
		e.down[peer] = true
	} else {
		delete(e.down, peer)
	}
	e.retainMu.Unlock()
	e.wlog.Member(peer, down)
}

// handleSyncResp applies one peer's snapshot through the normal advert
// path: the retained tail above the local (seeded) watermark is fetched
// and stability bookkeeping stays current. It never seeds the delivered
// frontier itself — see RequestSync for why.
func (e *OSend) handleSyncResp(from string, retained, watermarks map[string]uint64) {
	e.handleAdvert(from, retained, watermarks)
	if e.onSync != nil {
		e.onSync(from, watermarks)
	}
}

// Close implements Broadcaster.
func (e *OSend) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.done)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *OSend) recvLoop() {
	defer e.wg.Done()
	// Label the delivery goroutine so CPU/goroutine profiles attribute
	// holdback and cascade work to the owning member.
	pprof.Do(context.Background(), pprof.Labels("loop", "osend-recv", "member", e.self), func(context.Context) {
		dec := message.NewDecoder()
		if br, ok := e.conn.(transport.BatchRecver); ok {
			var batch []transport.Envelope
			for {
				var err error
				batch, err = br.RecvBatch(batch)
				if err != nil {
					return
				}
				for i := range batch {
					e.handleFrame(dec, &batch[i])
					batch[i].Release()
				}
			}
		}
		for {
			env, err := e.conn.Recv()
			if err != nil {
				return
			}
			e.handleFrame(dec, &env)
			env.Release()
		}
	})
}

// handleFrame dispatches one inbound frame. The envelope's payload is only
// valid for the duration of the call (the caller releases the frame).
func (e *OSend) handleFrame(dec *message.Decoder, env *transport.Envelope) {
	if len(env.Payload) == 0 {
		return
	}
	kind, body := env.Payload[0], env.Payload[1:]
	switch kind {
	case frameOSendData:
		var m message.Message
		if err := dec.Decode(&m, body); err != nil {
			return // malformed frame; drop
		}
		e.ingest(m)
	case frameOSendFetch:
		l, rest, err := decodeLabel(body)
		if err != nil || len(rest) != 0 {
			return
		}
		e.serveFetch(env.From, l)
	case frameOSendAdvert:
		retained, watermarks, err := decodeAdvert(body)
		if err != nil {
			return
		}
		e.handleAdvert(env.From, retained, watermarks)
	case frameOSendSyncReq:
		if len(body) != 0 {
			return
		}
		e.serveSync(env.From)
	case frameOSendSyncResp:
		retained, watermarks, err := decodeAdvert(body)
		if err != nil {
			return
		}
		e.handleSyncResp(env.From, retained, watermarks)
	default:
		// Unknown frame kinds are ignored for forward compatibility.
	}
}

// takeReadyLocked pops a recycled delivery batch. Caller holds deliverMu.
func (e *OSend) takeReadyLocked() []message.Message {
	if n := len(e.readyFree); n > 0 {
		buf := e.readyFree[n-1]
		e.readyFree = e.readyFree[:n-1]
		return buf
	}
	return nil
}

// putReady recycles a delivery batch once its messages are handed out.
func (e *OSend) putReady(buf []message.Message) {
	clear(buf)
	e.deliverMu.Lock()
	e.readyFree = append(e.readyFree, buf[:0])
	e.deliverMu.Unlock()
}

// ingest runs the delivery algorithm on one received (or locally
// broadcast) message, cascading through any pending messages it releases.
func (e *OSend) ingest(m message.Message) {
	if e.closed.Load() {
		return
	}
	// Group-wide retention: with anti-entropy armed, every member keeps a
	// serveable copy of every message it sees until stability proves the
	// whole group delivered it, so a fetch is answerable by ANY retainer
	// and history survives its origin's crash. (Origin-only retention
	// strands a dead member's tail: survivors that delivered it could not
	// serve the ones that did not.) Without patience nothing ever fetches,
	// so the copies would be pure memory overhead — skip them.
	if e.patience > 0 {
		e.retainMu.Lock()
		if _, ok := e.retained[m.Label]; !ok {
			e.retained[m.Label] = m
			e.ins.retainedDepth.Set(int64(len(e.retained)))
		}
		e.retainMu.Unlock()
	}
	e.deliverMu.Lock()
	if e.deliveredHas(m.Label) {
		e.ins.duplicates.Inc()
		e.deliverMu.Unlock()
		return
	}
	if _, buffered := e.pending[m.Label]; buffered {
		e.ins.duplicates.Inc()
		e.deliverMu.Unlock()
		return
	}
	e.spans.Enqueue(m)
	// The common case has every predecessor delivered; allocate the
	// missing-set only when something actually is missing.
	var missing map[message.Label]struct{}
	for _, d := range m.Deps.Labels() {
		if !e.deliveredHas(d) {
			if missing == nil {
				missing = make(map[message.Label]struct{}, m.Deps.Len())
			}
			missing[d] = struct{}{}
		}
	}
	if missing != nil {
		e.pending[m.Label] = &pendingEntry{msg: m, missing: missing, since: time.Now()}
		for d := range missing {
			e.waiting[d] = append(e.waiting[d], m.Label)
			e.flight.Holdback(m.Label, d)
		}
		depth := len(e.pending)
		if depth > e.maxBuffered {
			e.maxBuffered = depth
		}
		e.deliverMu.Unlock()
		e.ins.pendingDepth.Set(int64(depth))
		e.ins.pendingMax.SetMax(int64(depth))
		e.trace.Record(telemetry.EventDefer, e.self, m.Label.Origin, m.Label.Seq, int64(depth))
		return
	}
	ready := e.deliverLocked(e.takeReadyLocked(), m)
	if len(ready) > 1 {
		// The cascade drained buffered messages; refresh the depth gauge.
		e.ins.pendingDepth.Set(int64(len(e.pending)))
	}
	e.deliverMu.Unlock()
	e.observeVisibility(ready)
	for _, r := range ready {
		e.deliver(r)
		// Journaled AFTER the callback: a durable delivery claim implies
		// everything the upper layer journaled for r (e.g. the
		// sequencer's holdback payload) sits earlier in the log, so a
		// torn tail can never leave a claim without its payload.
		e.wlog.Deliver(r.Label)
	}
	e.pruneFetched(ready)
	e.putReady(ready)
}

// observeVisibility records send→deliver latency toward each remote
// origin in the batch. Alloc-free (see peerInstruments.observe).
func (e *OSend) observeVisibility(ready []message.Message) {
	if len(ready) == 0 {
		return
	}
	now := time.Now().UnixNano()
	for i := range ready {
		e.peer.observe(e.self, &ready[i], now)
	}
}

// peerLag scans the holdback buffer for messages from peer: the
// snapshot-time feed for the causal_peer_* gauges.
func (e *OSend) peerLag(peer string) (depth, ageMS int64) {
	return scanPendingLag(peer, func(yield func(origin string, since time.Time)) {
		e.deliverMu.Lock()
		defer e.deliverMu.Unlock()
		for _, entry := range e.pending {
			yield(entry.msg.Label.Origin, entry.since)
		}
	})
}

// deliverLocked marks m delivered and appends, in order, m plus every
// buffered message transitively released by it to out. Caller holds
// deliverMu.
func (e *OSend) deliverLocked(out []message.Message, m message.Message) []message.Message {
	queue := append(e.cascade[:0], m)
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if !e.deliveredAdd(cur.Label) {
			continue
		}
		e.ins.delivered.Inc()
		e.trace.Record(telemetry.EventDeliver, e.self, cur.Label.Origin, cur.Label.Seq, 0)
		e.spans.Deliver(cur)
		out = append(out, cur)
		blocked, ok := e.waiting[cur.Label]
		if !ok {
			continue
		}
		delete(e.waiting, cur.Label)
		for _, bl := range blocked {
			entry, ok := e.pending[bl]
			if !ok {
				continue
			}
			delete(entry.missing, cur.Label)
			if e.spans != nil {
				// Attribute the holdback wait to the edge that just resolved.
				e.spans.DepResolved(bl, cur.Label, time.Since(entry.since))
			}
			if len(entry.missing) == 0 {
				delete(e.pending, bl)
				e.ins.depWait.ObserveSince(entry.since)
				queue = append(queue, entry.msg)
			}
		}
	}
	clear(queue)
	e.cascade = queue[:0]
	return out
}

// pruneFetched drops fetch rate-limit entries for labels that just got
// delivered, so the lastFetch map tracks only live gaps instead of
// growing with history.
func (e *OSend) pruneFetched(ready []message.Message) {
	e.retainMu.Lock()
	if len(e.lastFetch) != 0 {
		for i := range ready {
			delete(e.lastFetch, ready[i].Label)
		}
	}
	e.retainMu.Unlock()
}

// fetchLoop periodically requests retransmission of predecessors that
// pending messages have been waiting on longer than the patience window.
func (e *OSend) fetchLoop() {
	defer e.wg.Done()
	interval := e.patience / 2
	if interval <= 0 {
		interval = e.patience
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case now := <-ticker.C:
			e.fetchMissing(now)
			e.advertise()
			e.pruneFetchState()
		}
	}
}

// pruneFetchState sweeps fetch rate-limit entries that can never be acted
// on again: labels already delivered (covered elsewhere but also swept
// here for entries created by adverts that raced a delivery) and labels
// whose retransmission route left the group.
func (e *OSend) pruneFetchState() {
	e.retainMu.Lock()
	for l := range e.lastFetch {
		if e.deliveredHas(l) || !e.grp.Contains(RouteOrigin(l.Origin)) {
			delete(e.lastFetch, l)
		}
	}
	e.retainMu.Unlock()
}

// fetchBacklog reports the number of tracked fetch rate-limit entries
// (test hook for the pruning regression tests).
func (e *OSend) fetchBacklog() int {
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	return len(e.lastFetch)
}

// advertise sends every peer (a) the highest retained sequence number per
// origin this member has broadcast under, and (b) this member's delivered
// watermarks. Peers use (a) to detect tail losses — dropped messages that
// no later dependency ever names — and fetch them; (b) drives stability
// garbage collection: a retained message whose sequence every peer's
// watermark covers can never be re-fetched, so the copy is dropped.
// Dependency-driven fetching covers every loss that *is* referenced; the
// adverts are the anti-entropy half of the engine's reliability.
func (e *OSend) advertise() {
	if e.closed.Load() {
		return
	}
	e.retainMu.Lock()
	maxSeq := make(map[string]uint64)
	for l := range e.retained {
		if l.Seq > maxSeq[l.Origin] {
			maxSeq[l.Origin] = l.Seq
		}
	}
	e.retainMu.Unlock()
	e.deliveredMu.RLock()
	wm := e.delivered.Watermarks()
	e.deliveredMu.RUnlock()
	if len(maxSeq) == 0 && len(wm) == 0 {
		return
	}
	frame := encodeAdvert(maxSeq, wm)
	f := transport.StaticFrame(frame)
	_ = transport.Multicast(e.conn, e.others, f) // best effort; re-sent next tick
	f.Release()
}

// handleAdvert fetches, from the advertising member, any sequence numbers
// it claims to retain that are neither delivered nor pending locally, and
// garbage-collects retained messages the advertised watermarks prove
// stable.
func (e *OSend) handleAdvert(from string, retained, watermarks map[string]uint64) {
	const maxFetchPerAdvert = 32
	now := time.Now()
	var candidates []message.Label
scan:
	for origin, maxSeq := range retained {
		for seq := e.deliveredWatermark(origin) + 1; seq <= maxSeq; seq++ {
			l := message.Label{Origin: origin, Seq: seq}
			if e.deliveredHas(l) || e.isPending(l) {
				continue
			}
			candidates = append(candidates, l)
			if len(candidates) >= maxFetchPerAdvert {
				break scan
			}
		}
	}
	var fetches []message.Label
	e.retainMu.Lock()
	for _, l := range candidates {
		if last, ok := e.lastFetch[l]; ok && now.Sub(last) < e.patience {
			continue
		}
		e.lastFetch[l] = now
		fetches = append(fetches, l)
		e.ins.fetches.Inc()
		e.trace.Record(telemetry.EventFetch, e.self, l.Origin, l.Seq, 0)
		e.flight.Fetch(l, from)
	}
	e.peerWM[from] = watermarks
	delete(e.down, from) // an advertising peer is evidently alive
	e.pruneStableLocked()
	e.retainMu.Unlock()
	for _, l := range fetches {
		frame := append([]byte{frameOSendFetch}, encodeLabel(nil, l)...)
		_ = e.conn.Send(from, frame) // best effort; retried next advert
	}
}

func (e *OSend) deliveredWatermark(origin string) uint64 {
	e.deliveredMu.RLock()
	wm := e.delivered.Watermark(origin)
	e.deliveredMu.RUnlock()
	return wm
}

func (e *OSend) isPending(l message.Label) bool {
	e.deliverMu.Lock()
	_, ok := e.pending[l]
	e.deliverMu.Unlock()
	return ok
}

// pruneStableLocked drops retained messages whose sequence every peer's
// advertised watermark covers: all members delivered them, so no fetch
// can ever name them again. Peers marked down are excluded from the
// quorum — a crashed member's frozen watermark must not pin the whole
// group's history; if it returns it recovers by snapshot, not by fetch.
// Caller holds retainMu.
func (e *OSend) pruneStableLocked() {
	for _, p := range e.others {
		if e.down[p] {
			continue
		}
		if _, ok := e.peerWM[p]; !ok {
			return // need evidence from every live peer before anything is stable
		}
	}
	for l := range e.retained {
		stable := true
		for _, p := range e.others {
			if e.down[p] {
				continue
			}
			wm, ok := e.peerWM[p]
			if !ok || wm[l.Origin] < l.Seq {
				stable = false
				break
			}
		}
		if stable {
			delete(e.retained, l)
			delete(e.lastFetch, l)
			e.ins.stablePruned.Inc()
		}
	}
	e.ins.retainedDepth.Set(int64(len(e.retained)))
}

func encodeAdvert(retained, watermarks map[string]uint64) []byte {
	return encodeAdvertKind(frameOSendAdvert, retained, watermarks)
}

// encodeAdvertKind builds an advert frame under any engine's tag; the body
// layout (two origin→seq maps) is shared across engines.
func encodeAdvertKind(kind byte, retained, watermarks map[string]uint64) []byte {
	frame := []byte{kind}
	frame = appendOriginSeqMap(frame, retained)
	frame = appendOriginSeqMap(frame, watermarks)
	return frame
}

func appendOriginSeqMap(buf []byte, m map[string]uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for origin, seq := range m {
		buf = binary.AppendUvarint(buf, uint64(len(origin)))
		buf = append(buf, origin...)
		buf = binary.AppendUvarint(buf, seq)
	}
	return buf
}

func decodeAdvert(body []byte) (retained, watermarks map[string]uint64, err error) {
	retained, body, err = readOriginSeqMap(body)
	if err != nil {
		return nil, nil, err
	}
	watermarks, body, err = readOriginSeqMap(body)
	if err != nil {
		return nil, nil, err
	}
	if len(body) != 0 {
		return nil, nil, fmt.Errorf("causal: %d trailing advert bytes", len(body))
	}
	return retained, watermarks, nil
}

func readOriginSeqMap(body []byte) (map[string]uint64, []byte, error) {
	n, used := binary.Uvarint(body)
	if used <= 0 {
		return nil, nil, fmt.Errorf("causal: truncated advert count")
	}
	body = body[used:]
	// Each entry takes at least 2 bytes; reject counts that cannot fit
	// before sizing any allocation.
	if n > uint64(len(body))/2 {
		return nil, nil, fmt.Errorf("causal: advert count %d exceeds frame", n)
	}
	out := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		ol, used := binary.Uvarint(body)
		if used <= 0 || uint64(len(body)-used) < ol {
			return nil, nil, fmt.Errorf("causal: truncated advert origin")
		}
		origin := string(body[used : used+int(ol)])
		body = body[used+int(ol):]
		seq, used := binary.Uvarint(body)
		if used <= 0 {
			return nil, nil, fmt.Errorf("causal: truncated advert seq")
		}
		body = body[used:]
		out[origin] = seq
	}
	return out, body, nil
}

func (e *OSend) fetchMissing(now time.Time) {
	type fetch struct {
		to string
		l  message.Label
	}
	var candidates []fetch
	e.deliverMu.Lock()
	for _, entry := range e.pending {
		if now.Sub(entry.since) < e.patience {
			continue
		}
		for d := range entry.missing {
			to := RouteOrigin(d.Origin)
			if to == e.self || !e.grp.Contains(to) {
				continue
			}
			candidates = append(candidates, fetch{to: to, l: d})
		}
	}
	e.deliverMu.Unlock()
	var fetches []fetch
	e.retainMu.Lock()
	for _, c := range candidates {
		if last, ok := e.lastFetch[c.l]; ok && now.Sub(last) < e.patience {
			continue
		}
		if e.down[c.to] {
			// The origin is down; with group-wide retention any live peer
			// may hold a copy, so rotate the request across them.
			if alt := e.altRouteLocked(c.to); alt != "" {
				c.to = alt
			}
		}
		e.lastFetch[c.l] = now
		fetches = append(fetches, c)
		e.ins.fetches.Inc()
		e.trace.Record(telemetry.EventFetch, e.self, c.l.Origin, c.l.Seq, 0)
		e.flight.Fetch(c.l, c.to)
	}
	e.retainMu.Unlock()
	for _, f := range fetches {
		frame := append([]byte{frameOSendFetch}, encodeLabel(nil, f.l)...)
		_ = e.conn.Send(f.to, frame) // best effort; retried next tick
	}
}

// altRouteLocked picks the next live peer in rotation, skipping avoid.
// Caller holds retainMu.
func (e *OSend) altRouteLocked(avoid string) string {
	n := len(e.others)
	for i := 0; i < n; i++ {
		p := e.others[(e.fetchSpread+i)%n]
		if p != avoid && !e.down[p] {
			e.fetchSpread = (e.fetchSpread + i + 1) % n
			return p
		}
	}
	return ""
}

func (e *OSend) serveFetch(requester string, l message.Label) {
	e.retainMu.Lock()
	m, ok := e.retained[l]
	e.retainMu.Unlock()
	if !ok {
		return
	}
	f := transport.NewFrame(1 + m.EncodedSize())
	f.B = append(f.B, frameOSendData)
	var err error
	f.B, err = m.AppendBinary(f.B)
	if err != nil {
		f.Release()
		return
	}
	_ = e.conn.Send(requester, f.B) // best effort
	f.Release()
}

// RouteOrigin maps a label origin to the transport id retransmission
// requests are sent to. '~' is reserved as a namespace separator: layers
// stacked above the engine (e.g. the total-order layer) label their
// traffic "<member>~<layer>", and fetches route to <member>.
func RouteOrigin(origin string) string {
	for i := 0; i < len(origin); i++ {
		if origin[i] == '~' {
			return origin[:i]
		}
	}
	return origin
}

func encodeLabel(buf []byte, l message.Label) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l.Origin)))
	buf = append(buf, l.Origin...)
	return binary.AppendUvarint(buf, l.Seq)
}

func decodeLabel(data []byte) (message.Label, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return message.Nil, nil, fmt.Errorf("causal: truncated label origin")
	}
	origin := string(data[used : used+int(n)])
	data = data[used+int(n):]
	seq, used := binary.Uvarint(data)
	if used <= 0 {
		return message.Nil, nil, fmt.Errorf("causal: truncated label seq")
	}
	return message.Label{Origin: origin, Seq: seq}, data[used:], nil
}
