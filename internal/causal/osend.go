package causal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

// OSendConfig parameterizes an OSend engine.
type OSendConfig struct {
	// Self is the local member id; it must be a member of Group.
	Self string
	// Group is the broadcast domain (every Broadcast reaches all members).
	Group *group.Group
	// Conn is the transport attachment for Self.
	Conn transport.Conn
	// Deliver receives messages in causal order.
	Deliver DeliverFunc
	// Patience is how long a message may wait on a missing predecessor
	// before the engine requests retransmission from the predecessor's
	// origin. Zero disables retransmission (appropriate on lossless
	// transports).
	Patience time.Duration
}

// OSend is the paper's causal broadcast engine: ordering is driven purely
// by the explicit OccursAfter predicates messages carry. A message is
// delivered once every label in its predicate has been delivered locally;
// until then it is buffered. Because the predicate is stable application
// information, a buffered message's predecessors are guaranteed to exist,
// so a missing one can always be re-fetched from its origin (the label
// names it).
type OSend struct {
	self     string
	grp      *group.Group
	conn     transport.Conn
	deliver  DeliverFunc
	patience time.Duration

	mu        sync.Mutex
	closed    bool
	delivered *deliveredSet
	pending   map[message.Label]*pendingEntry
	waiting   map[message.Label][]message.Label // missing label -> pending labels blocked on it
	retained  map[message.Label]message.Message // own messages, for retransmission
	lastFetch map[message.Label]time.Time
	// peerWM holds, per peer, the delivered watermarks that peer last
	// advertised; a retained message every peer's watermark covers is
	// stable and garbage-collected.
	peerWM  map[string]map[string]uint64
	metrics Metrics

	done chan struct{}
	wg   sync.WaitGroup
}

type pendingEntry struct {
	msg     message.Message
	missing map[message.Label]struct{}
	since   time.Time
}

var _ Broadcaster = (*OSend)(nil)

// NewOSend starts an engine; its receive loop runs until Close.
func NewOSend(cfg OSendConfig) (*OSend, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("causal: %q is not a member of the group", cfg.Self)
	}
	if cfg.Conn == nil {
		return nil, fmt.Errorf("causal: nil conn")
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("causal: nil deliver func")
	}
	e := &OSend{
		self:      cfg.Self,
		grp:       cfg.Group,
		conn:      cfg.Conn,
		deliver:   cfg.Deliver,
		patience:  cfg.Patience,
		delivered: newDeliveredSet(),
		pending:   make(map[message.Label]*pendingEntry),
		waiting:   make(map[message.Label][]message.Label),
		retained:  make(map[message.Label]message.Message),
		lastFetch: make(map[message.Label]time.Time),
		peerWM:    make(map[string]map[string]uint64),
		done:      make(chan struct{}),
	}
	e.wg.Add(1)
	go e.recvLoop()
	if e.patience > 0 {
		e.wg.Add(1)
		go e.fetchLoop()
	}
	return e, nil
}

// Self implements Broadcaster.
func (e *OSend) Self() string { return e.self }

// Broadcast implements Broadcaster. The message is retained for
// retransmission, sent to all other members, and processed locally through
// the same delivery logic (self-delivery in causal position).
func (e *OSend) Broadcast(m message.Message) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("causal: broadcast: %w", err)
	}
	data, err := m.MarshalBinary()
	if err != nil {
		return fmt.Errorf("causal: encode %v: %w", m.Label, err)
	}
	frame := append([]byte{frameOSendData}, data...)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.retained[m.Label] = m
	// Ordering metadata on the wire: the OccursAfter labels, once per peer.
	meta := uint64(depsEncodedSize(m)) * uint64(e.grp.Size()-1)
	e.metrics.ControlBytes += meta
	e.mu.Unlock()

	for _, peer := range e.grp.Others(e.self) {
		if err := e.conn.Send(peer, frame); err != nil {
			return fmt.Errorf("causal: send %v to %q: %w", m.Label, peer, err)
		}
	}
	e.ingest(m)
	return nil
}

// depsEncodedSize returns the exact wire size of m's ordering metadata:
// the dependency count plus each encoded label.
func depsEncodedSize(m message.Message) int {
	buf := binary.AppendUvarint(nil, uint64(m.Deps.Len()))
	for _, d := range m.Deps.Labels() {
		buf = encodeLabel(buf, d)
	}
	return len(buf)
}

// Metrics returns a snapshot of the engine's counters.
func (e *OSend) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.metrics
	m.Buffered = len(e.pending)
	m.Retained = len(e.retained)
	return m
}

// Delivered reports whether l has been delivered locally; the stable-point
// detector uses it.
func (e *OSend) Delivered(l message.Label) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.delivered.Has(l)
}

// ForgetRetained drops the local retransmission copy of l (call once l is
// known stable at all members).
func (e *OSend) ForgetRetained(l message.Label) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.retained, l)
}

// Close implements Broadcaster.
func (e *OSend) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *OSend) recvLoop() {
	defer e.wg.Done()
	for {
		env, err := e.conn.Recv()
		if err != nil {
			return
		}
		if len(env.Payload) == 0 {
			continue
		}
		kind, body := env.Payload[0], env.Payload[1:]
		switch kind {
		case frameOSendData:
			var m message.Message
			if err := m.UnmarshalBinary(body); err != nil {
				continue // malformed frame; drop
			}
			e.ingest(m)
		case frameOSendFetch:
			l, rest, err := decodeLabel(body)
			if err != nil || len(rest) != 0 {
				continue
			}
			e.serveFetch(env.From, l)
		case frameOSendAdvert:
			retained, watermarks, err := decodeAdvert(body)
			if err != nil {
				continue
			}
			e.handleAdvert(env.From, retained, watermarks)
		default:
			// Unknown frame kinds are ignored for forward compatibility.
		}
	}
}

// ingest runs the delivery algorithm on one received (or locally
// broadcast) message, cascading through any pending messages it releases.
func (e *OSend) ingest(m message.Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if e.delivered.Has(m.Label) {
		e.metrics.Duplicates++
		e.mu.Unlock()
		return
	}
	if _, buffered := e.pending[m.Label]; buffered {
		e.metrics.Duplicates++
		e.mu.Unlock()
		return
	}
	missing := make(map[message.Label]struct{})
	for _, d := range m.Deps.Labels() {
		if !e.delivered.Has(d) {
			missing[d] = struct{}{}
		}
	}
	var ready []message.Message
	if len(missing) == 0 {
		ready = e.deliverLocked(m)
	} else {
		e.pending[m.Label] = &pendingEntry{msg: m, missing: missing, since: time.Now()}
		for d := range missing {
			e.waiting[d] = append(e.waiting[d], m.Label)
		}
		if len(e.pending) > e.metrics.MaxBuffered {
			e.metrics.MaxBuffered = len(e.pending)
		}
	}
	e.mu.Unlock()
	for _, r := range ready {
		e.deliver(r)
	}
}

// deliverLocked marks m delivered and returns, in order, m plus every
// buffered message transitively released by it. Caller holds e.mu.
func (e *OSend) deliverLocked(m message.Message) []message.Message {
	var out []message.Message
	queue := []message.Message{m}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !e.delivered.Add(cur.Label) {
			continue
		}
		e.metrics.Delivered++
		out = append(out, cur)
		blocked := e.waiting[cur.Label]
		delete(e.waiting, cur.Label)
		for _, bl := range blocked {
			entry, ok := e.pending[bl]
			if !ok {
				continue
			}
			delete(entry.missing, cur.Label)
			if len(entry.missing) == 0 {
				delete(e.pending, bl)
				queue = append(queue, entry.msg)
			}
		}
	}
	return out
}

// fetchLoop periodically requests retransmission of predecessors that
// pending messages have been waiting on longer than the patience window.
func (e *OSend) fetchLoop() {
	defer e.wg.Done()
	interval := e.patience / 2
	if interval <= 0 {
		interval = e.patience
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case now := <-ticker.C:
			e.fetchMissing(now)
			e.advertise()
		}
	}
}

// advertise sends every peer (a) the highest retained sequence number per
// origin this member has broadcast under, and (b) this member's delivered
// watermarks. Peers use (a) to detect tail losses — dropped messages that
// no later dependency ever names — and fetch them; (b) drives stability
// garbage collection: a retained message whose sequence every peer's
// watermark covers can never be re-fetched, so the copy is dropped.
// Dependency-driven fetching covers every loss that *is* referenced; the
// adverts are the anti-entropy half of the engine's reliability.
func (e *OSend) advertise() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	maxSeq := make(map[string]uint64)
	for l := range e.retained {
		if l.Seq > maxSeq[l.Origin] {
			maxSeq[l.Origin] = l.Seq
		}
	}
	wm := e.delivered.Watermarks()
	e.mu.Unlock()
	if len(maxSeq) == 0 && len(wm) == 0 {
		return
	}
	frame := encodeAdvert(maxSeq, wm)
	for _, peer := range e.grp.Others(e.self) {
		_ = e.conn.Send(peer, frame) // best effort; re-sent next tick
	}
}

// handleAdvert fetches, from the advertising member, any sequence numbers
// it claims to retain that are neither delivered nor pending locally, and
// garbage-collects retained messages the advertised watermarks prove
// stable.
func (e *OSend) handleAdvert(from string, retained, watermarks map[string]uint64) {
	const maxFetchPerAdvert = 32
	now := time.Now()
	var fetches []message.Label
	e.mu.Lock()
	for origin, maxSeq := range retained {
		for seq := e.delivered.Watermark(origin) + 1; seq <= maxSeq; seq++ {
			l := message.Label{Origin: origin, Seq: seq}
			if e.delivered.Has(l) {
				continue
			}
			if _, buffered := e.pending[l]; buffered {
				continue
			}
			if last, ok := e.lastFetch[l]; ok && now.Sub(last) < e.patience {
				continue
			}
			e.lastFetch[l] = now
			fetches = append(fetches, l)
			e.metrics.Fetches++
			if len(fetches) >= maxFetchPerAdvert {
				break
			}
		}
		if len(fetches) >= maxFetchPerAdvert {
			break
		}
	}
	e.peerWM[from] = watermarks
	e.pruneStableLocked()
	e.mu.Unlock()
	for _, l := range fetches {
		frame := append([]byte{frameOSendFetch}, encodeLabel(nil, l)...)
		_ = e.conn.Send(from, frame) // best effort; retried next advert
	}
}

// pruneStableLocked drops retained messages whose sequence every peer's
// advertised watermark covers: all members delivered them, so no fetch
// can ever name them again. Caller holds e.mu.
func (e *OSend) pruneStableLocked() {
	others := e.grp.Others(e.self)
	if len(e.peerWM) < len(others) {
		return // need evidence from every peer before anything is stable
	}
	for l := range e.retained {
		stable := true
		for _, p := range others {
			wm, ok := e.peerWM[p]
			if !ok || wm[l.Origin] < l.Seq {
				stable = false
				break
			}
		}
		if stable {
			delete(e.retained, l)
			delete(e.lastFetch, l)
			e.metrics.StablePruned++
		}
	}
}

func encodeAdvert(retained, watermarks map[string]uint64) []byte {
	frame := []byte{frameOSendAdvert}
	frame = appendOriginSeqMap(frame, retained)
	frame = appendOriginSeqMap(frame, watermarks)
	return frame
}

func appendOriginSeqMap(buf []byte, m map[string]uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	for origin, seq := range m {
		buf = binary.AppendUvarint(buf, uint64(len(origin)))
		buf = append(buf, origin...)
		buf = binary.AppendUvarint(buf, seq)
	}
	return buf
}

func decodeAdvert(body []byte) (retained, watermarks map[string]uint64, err error) {
	retained, body, err = readOriginSeqMap(body)
	if err != nil {
		return nil, nil, err
	}
	watermarks, body, err = readOriginSeqMap(body)
	if err != nil {
		return nil, nil, err
	}
	if len(body) != 0 {
		return nil, nil, fmt.Errorf("causal: %d trailing advert bytes", len(body))
	}
	return retained, watermarks, nil
}

func readOriginSeqMap(body []byte) (map[string]uint64, []byte, error) {
	n, used := binary.Uvarint(body)
	if used <= 0 {
		return nil, nil, fmt.Errorf("causal: truncated advert count")
	}
	body = body[used:]
	// Each entry takes at least 2 bytes; reject counts that cannot fit
	// before sizing any allocation.
	if n > uint64(len(body))/2 {
		return nil, nil, fmt.Errorf("causal: advert count %d exceeds frame", n)
	}
	out := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		ol, used := binary.Uvarint(body)
		if used <= 0 || uint64(len(body)-used) < ol {
			return nil, nil, fmt.Errorf("causal: truncated advert origin")
		}
		origin := string(body[used : used+int(ol)])
		body = body[used+int(ol):]
		seq, used := binary.Uvarint(body)
		if used <= 0 {
			return nil, nil, fmt.Errorf("causal: truncated advert seq")
		}
		body = body[used:]
		out[origin] = seq
	}
	return out, body, nil
}

func (e *OSend) fetchMissing(now time.Time) {
	type fetch struct {
		to string
		l  message.Label
	}
	var fetches []fetch
	e.mu.Lock()
	for _, entry := range e.pending {
		if now.Sub(entry.since) < e.patience {
			continue
		}
		for d := range entry.missing {
			if last, ok := e.lastFetch[d]; ok && now.Sub(last) < e.patience {
				continue
			}
			e.lastFetch[d] = now
			to := RouteOrigin(d.Origin)
			if to == e.self || !e.grp.Contains(to) {
				continue
			}
			fetches = append(fetches, fetch{to: to, l: d})
			e.metrics.Fetches++
		}
	}
	e.mu.Unlock()
	for _, f := range fetches {
		frame := append([]byte{frameOSendFetch}, encodeLabel(nil, f.l)...)
		_ = e.conn.Send(f.to, frame) // best effort; retried next tick
	}
}

func (e *OSend) serveFetch(requester string, l message.Label) {
	e.mu.Lock()
	m, ok := e.retained[l]
	e.mu.Unlock()
	if !ok {
		return
	}
	data, err := m.MarshalBinary()
	if err != nil {
		return
	}
	frame := append([]byte{frameOSendData}, data...)
	_ = e.conn.Send(requester, frame) // best effort
}

// RouteOrigin maps a label origin to the transport id retransmission
// requests are sent to. '~' is reserved as a namespace separator: layers
// stacked above the engine (e.g. the total-order layer) label their
// traffic "<member>~<layer>", and fetches route to <member>.
func RouteOrigin(origin string) string {
	for i := 0; i < len(origin); i++ {
		if origin[i] == '~' {
			return origin[:i]
		}
	}
	return origin
}

func encodeLabel(buf []byte, l message.Label) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l.Origin)))
	buf = append(buf, l.Origin...)
	return binary.AppendUvarint(buf, l.Seq)
}

func decodeLabel(data []byte) (message.Label, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return message.Nil, nil, fmt.Errorf("causal: truncated label origin")
	}
	origin := string(data[used : used+int(n)])
	data = data[used+int(n):]
	seq, used := binary.Uvarint(data)
	if used <= 0 {
		return message.Nil, nil, fmt.Errorf("causal: truncated label seq")
	}
	return message.Label{Origin: origin, Seq: seq}, data[used:], nil
}
