package causal

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
	"causalshare/internal/vclock"
	"causalshare/internal/wal"
)

// CBCastConfig parameterizes a CBCast engine.
type CBCastConfig struct {
	// Self is the local member id; it must be a member of Group.
	Self string
	// Group is the broadcast domain.
	Group *group.Group
	// Conn is the transport attachment for Self.
	Conn transport.Conn
	// Deliver receives messages in causal order.
	Deliver DeliverFunc
	// Patience bounds how long a buffered message waits on a vector-clock
	// gap before the engine requests retransmission. Zero disables it.
	Patience time.Duration
	// Telemetry, when non-nil, registers the engine's causal_cbcast_*
	// instruments there; the legacy Metrics struct is kept either way.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records span lifecycles into the group's
	// trace.Collector. CBCast messages usually declare no dependencies, so
	// the audit checks are vacuous, but span context still propagates and
	// the latency breakdown still applies.
	Tracer *trace.Tracer
	// Flight, when non-nil, is this member's black-box flight recorder;
	// the engine records holdback entry (against the blocking FIFO
	// predecessor the vector clock names) and gap fetches.
	Flight *flightrec.Recorder
	// Journal, when non-nil, is the member's write-ahead log; every
	// delivery is journaled (see OSendConfig.Journal).
	Journal *wal.WAL
}

// CBCast is the ISIS-style causal broadcast baseline: each message
// piggybacks the sender's vector clock and is delivered under the classic
// causal condition (FIFO from the sender plus all causal predecessors
// delivered). It infers causality from what the sender had observed —
// the "incidental ordering" the paper contrasts OSend against — so it may
// delay messages the application considers concurrent.
type CBCast struct {
	self     string
	grp      *group.Group
	others   []string // cached fan-out targets (the group is immutable)
	conn     transport.Conn
	deliver  DeliverFunc
	patience time.Duration

	mu        sync.Mutex
	closed    bool
	vc        vclock.VC // local delivery clock
	pending   []cbEntry
	retained  map[uint64][]byte // own frames by seq, for retransmission
	lastFetch map[string]time.Time
	metrics   Metrics
	ins       cbcastInstruments
	meta      metaInstruments
	peer      peerInstruments
	spans     *trace.Tracer
	flight    *flightrec.Recorder
	wlog      *wal.WAL

	done chan struct{}
	wg   sync.WaitGroup
}

type cbEntry struct {
	sender string
	vc     vclock.VC
	msg    message.Message
	since  time.Time
}

var _ Broadcaster = (*CBCast)(nil)

// NewCBCast starts an engine; its receive loop runs until Close.
func NewCBCast(cfg CBCastConfig) (*CBCast, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("causal: %q is not a member of the group", cfg.Self)
	}
	if cfg.Conn == nil {
		return nil, fmt.Errorf("causal: nil conn")
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("causal: nil deliver func")
	}
	e := &CBCast{
		self:      cfg.Self,
		grp:       cfg.Group,
		others:    cfg.Group.Others(cfg.Self),
		conn:      cfg.Conn,
		deliver:   cfg.Deliver,
		patience:  cfg.Patience,
		vc:        vclock.New(),
		ins:       newCBCastInstruments(cfg.Telemetry),
		meta:      newMetaInstruments(cfg.Telemetry),
		spans:     cfg.Tracer,
		flight:    cfg.Flight,
		wlog:      cfg.Journal,
		retained:  make(map[uint64][]byte),
		lastFetch: make(map[string]time.Time),
		done:      make(chan struct{}),
	}
	e.peer = newPeerInstruments(cfg.Telemetry)
	registerPeerLag(cfg.Telemetry, e.others, e.peerLag)
	e.wg.Add(1)
	go e.recvLoop()
	if e.patience > 0 {
		e.wg.Add(1)
		go e.fetchLoop()
	}
	return e, nil
}

// Self implements Broadcaster.
func (e *CBCast) Self() string { return e.self }

// Broadcast implements Broadcaster. The local clock ticks, the message is
// stamped with the post-tick clock, delivered locally (it is causally
// ready by construction) and sent to all other members.
func (e *CBCast) Broadcast(m message.Message) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("causal: broadcast: %w", err)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	// Span assignment and the SentAt stamp precede encoding so the frame
	// carries both trailers.
	m.Span = e.spans.Broadcast(m)
	if m.SentAt == 0 {
		m.SentAt = time.Now().UnixNano()
	}
	seq := e.vc.Tick(e.self)
	stamp := e.vc.Clone()
	frame, err := encodeCBFrame(e.self, stamp, m)
	if err != nil {
		// Roll back the tick so the clock does not advance past a message
		// that was never sent.
		e.vc.Set(e.self, seq-1)
		e.mu.Unlock()
		return fmt.Errorf("causal: encode %v: %w", m.Label, err)
	}
	e.retained[seq] = frame
	stampBytes, _ := stamp.MarshalBinary() // cannot fail
	e.metrics.ControlBytes += uint64(len(stampBytes)) * uint64(e.grp.Size()-1)
	e.metrics.Delivered++
	e.ins.controlBytes.Add(uint64(len(stampBytes)) * uint64(e.grp.Size()-1))
	e.meta.add(uint64(len(stampBytes)), uint64(e.grp.Size()-1))
	e.meta.msgs.Inc()
	e.ins.delivered.Inc()
	e.mu.Unlock()

	// Self-delivery first: a member observes its own message immediately.
	e.spans.Enqueue(m)
	e.spans.Deliver(m)
	e.deliver(m)
	// After the callback — see the OSend dispatch loop.
	e.wlog.Deliver(m.Label)
	// The frame is retained above for retransmission and never mutated, so
	// every destination shares the one encoding. StaticFrame keeps it out
	// of the pools: its lifetime is the retention window, not the send.
	f := transport.StaticFrame(frame)
	err = transport.Multicast(e.conn, e.others, f)
	f.Release()
	if err != nil {
		// Per-peer delivery is best-effort: the message was delivered
		// locally and retained, and the anti-entropy adverts re-offer it,
		// so a crashed peer must not fail the broadcast for the rest.
		e.ins.sendErrors.Inc()
	}
	return nil
}

// Clock returns a copy of the local delivery clock.
func (e *CBCast) Clock() vclock.VC {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.vc.Clone()
}

// Metrics returns a snapshot of the engine's counters.
func (e *CBCast) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.metrics
	m.Buffered = len(e.pending)
	return m
}

// Close implements Broadcaster.
func (e *CBCast) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *CBCast) recvLoop() {
	defer e.wg.Done()
	// Label the delivery goroutine for CPU/goroutine profile attribution.
	pprof.Do(context.Background(), pprof.Labels("loop", "cbcast-recv", "member", e.self), func(context.Context) {
		dec := message.NewDecoder()
		if br, ok := e.conn.(transport.BatchRecver); ok {
			var batch []transport.Envelope
			for {
				var err error
				batch, err = br.RecvBatch(batch)
				if err != nil {
					return
				}
				for i := range batch {
					e.handleFrame(dec, &batch[i])
					batch[i].Release()
				}
			}
		}
		for {
			env, err := e.conn.Recv()
			if err != nil {
				return
			}
			e.handleFrame(dec, &env)
			env.Release()
		}
	})
}

// handleFrame dispatches one inbound frame. The envelope's payload is only
// valid for the duration of the call (the caller releases the frame).
func (e *CBCast) handleFrame(dec *message.Decoder, env *transport.Envelope) {
	if len(env.Payload) == 0 {
		return
	}
	kind, body := env.Payload[0], env.Payload[1:]
	switch kind {
	case frameCBCastData:
		sender, vc, m, err := decodeCBFrame(dec, body)
		if err != nil {
			return
		}
		e.ingest(sender, vc, m)
	case frameCBCastFetch:
		seq, used := binary.Uvarint(body)
		if used <= 0 {
			return
		}
		e.serveFetch(env.From, seq)
	case frameCBCastAdvert:
		seq, used := binary.Uvarint(body)
		if used <= 0 {
			return
		}
		e.handleAdvert(env.From, seq)
	default:
	}
}

func (e *CBCast) ingest(sender string, vc vclock.VC, m message.Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if vc.Get(sender) <= e.vc.Get(sender) {
		e.metrics.Duplicates++ // already delivered (or impossibly old)
		e.ins.duplicates.Inc()
		e.mu.Unlock()
		return
	}
	for _, p := range e.pending {
		if p.sender == sender && p.vc.Get(sender) == vc.Get(sender) {
			e.metrics.Duplicates++
			e.ins.duplicates.Inc()
			e.mu.Unlock()
			return
		}
	}
	e.spans.Enqueue(m)
	e.pending = append(e.pending, cbEntry{sender: sender, vc: vc, msg: m, since: time.Now()})
	if len(e.pending) > e.metrics.MaxBuffered {
		e.metrics.MaxBuffered = len(e.pending)
	}
	e.ins.pendingMax.SetMax(int64(len(e.pending)))
	ready := e.drainLocked()
	e.ins.pendingDepth.Set(int64(len(e.pending)))
	if e.flight != nil {
		for i := range e.pending {
			if e.pending[i].msg.Label != m.Label {
				continue
			}
			// Still held back after the drain: the vector clock names the
			// FIFO predecessor as (part of) what it waits on.
			if fifoSeq := vc.Get(sender); fifoSeq > 1 {
				e.flight.Holdback(m.Label, message.Label{Origin: sender, Seq: fifoSeq - 1})
			} else {
				e.flight.Holdback(m.Label, message.Label{})
			}
			break
		}
	}
	e.mu.Unlock()
	if len(ready) != 0 {
		now := time.Now().UnixNano()
		for i := range ready {
			e.peer.observe(e.self, &ready[i], now)
		}
	}
	for _, r := range ready {
		e.deliver(r)
		// After the callback — see the OSend dispatch loop.
		e.wlog.Deliver(r.Label)
	}
}

// peerLag scans the holdback buffer for messages from peer: the
// snapshot-time feed for the causal_peer_* gauges.
func (e *CBCast) peerLag(peer string) (depth, ageMS int64) {
	return scanPendingLag(peer, func(yield func(origin string, since time.Time)) {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i := range e.pending {
			yield(e.pending[i].msg.Label.Origin, e.pending[i].since)
		}
	})
}

// drainLocked repeatedly scans the buffer delivering every causally ready
// message until a fixpoint. Caller holds e.mu.
func (e *CBCast) drainLocked() []message.Message {
	var out []message.Message
	for {
		progress := false
		for i := 0; i < len(e.pending); i++ {
			p := e.pending[i]
			if !e.vc.CausallyReady(p.vc, p.sender) {
				continue
			}
			e.vc.Merge(p.vc)
			e.metrics.Delivered++
			e.ins.delivered.Inc()
			e.spans.Deliver(p.msg)
			out = append(out, p.msg)
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			progress = true
			i--
		}
		if !progress {
			return out
		}
	}
}

func (e *CBCast) fetchLoop() {
	defer e.wg.Done()
	interval := e.patience / 2
	if interval <= 0 {
		interval = e.patience
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case now := <-ticker.C:
			e.fetchGaps(now)
			e.advertise()
		}
	}
}

// advertise tells every peer the highest sequence number this member has
// broadcast, so tail losses (messages no later clock ever references) are
// detected and re-fetched.
func (e *CBCast) advertise() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	latest := e.vc.Get(e.self)
	e.mu.Unlock()
	if latest == 0 {
		return
	}
	frame := append([]byte{frameCBCastAdvert}, binary.AppendUvarint(nil, latest)...)
	f := transport.StaticFrame(frame)
	_ = transport.Multicast(e.conn, e.others, f) // best effort; re-sent next tick
	f.Release()
}

// handleAdvert fetches the next needed sequence from a peer that claims
// to have broadcast past our horizon for it.
func (e *CBCast) handleAdvert(from string, latest uint64) {
	e.mu.Lock()
	have := e.vc.Get(from)
	want := have + 1
	stale := latest > have
	if last, ok := e.lastFetch[from]; ok && time.Since(last) < e.patience {
		stale = false
	}
	if stale {
		e.lastFetch[from] = time.Now()
		e.metrics.Fetches++
		e.ins.fetches.Inc()
		e.flight.Fetch(message.Label{Origin: from, Seq: want}, from)
	}
	e.mu.Unlock()
	if !stale {
		return
	}
	frame := append([]byte{frameCBCastFetch}, binary.AppendUvarint(nil, want)...)
	_ = e.conn.Send(from, frame) // best effort; retried next advert
}

// fetchGaps requests, from each origin a stale pending message is waiting
// on, the next sequence number the local clock needs from that origin.
func (e *CBCast) fetchGaps(now time.Time) {
	type fetch struct {
		to  string
		seq uint64
	}
	var fetches []fetch
	e.mu.Lock()
	for _, p := range e.pending {
		if now.Sub(p.since) < e.patience {
			continue
		}
		for origin, need := range p.vc {
			have := e.vc.Get(origin)
			wantNext := have + 1
			if origin == p.sender {
				// FIFO gap: we need seqs up to need-1 before p itself.
				if need <= wantNext {
					continue // p is blocked on other components
				}
			} else if need <= have {
				continue
			}
			if origin == e.self || !e.grp.Contains(origin) {
				continue
			}
			if last, ok := e.lastFetch[origin]; ok && now.Sub(last) < e.patience {
				continue
			}
			e.lastFetch[origin] = now
			fetches = append(fetches, fetch{to: origin, seq: wantNext})
			e.metrics.Fetches++
			e.ins.fetches.Inc()
			e.flight.Fetch(message.Label{Origin: origin, Seq: wantNext}, origin)
		}
	}
	e.mu.Unlock()
	for _, f := range fetches {
		frame := append([]byte{frameCBCastFetch}, binary.AppendUvarint(nil, f.seq)...)
		_ = e.conn.Send(f.to, frame) // best effort; retried next tick
	}
}

func (e *CBCast) serveFetch(requester string, seq uint64) {
	e.mu.Lock()
	// Serve the requested seq and a few following, to heal bursts faster.
	var frames [][]byte
	for s := seq; s < seq+4; s++ {
		if f, ok := e.retained[s]; ok {
			frames = append(frames, f)
		}
	}
	e.mu.Unlock()
	for _, f := range frames {
		_ = e.conn.Send(requester, f) // best effort
	}
}

func encodeCBFrame(sender string, vc vclock.VC, m message.Message) ([]byte, error) {
	vcBytes, err := vc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 1+len(sender)+len(vcBytes)+m.EncodedSize()+12)
	buf = append(buf, frameCBCastData)
	buf = binary.AppendUvarint(buf, uint64(len(sender)))
	buf = append(buf, sender...)
	buf = binary.AppendUvarint(buf, uint64(len(vcBytes)))
	buf = append(buf, vcBytes...)
	return m.AppendBinary(buf)
}

// decodeCBFrame decodes the body of a frameCBCastData frame (tag already
// stripped). The decoder interns the recurring strings across frames.
func decodeCBFrame(dec *message.Decoder, body []byte) (string, vclock.VC, message.Message, error) {
	var m message.Message
	n, used := binary.Uvarint(body)
	if used <= 0 || uint64(len(body)-used) < n {
		return "", nil, m, frameError(frameCBCastData, fmt.Errorf("truncated sender"))
	}
	sender := string(body[used : used+int(n)])
	body = body[used+int(n):]
	vcLen, used := binary.Uvarint(body)
	if used <= 0 || uint64(len(body)-used) < vcLen {
		return "", nil, m, frameError(frameCBCastData, fmt.Errorf("truncated clock"))
	}
	var vc vclock.VC
	if err := vc.UnmarshalBinary(body[used : used+int(vcLen)]); err != nil {
		return "", nil, m, frameError(frameCBCastData, err)
	}
	if err := dec.Decode(&m, body[used+int(vcLen):]); err != nil {
		return "", nil, m, frameError(frameCBCastData, err)
	}
	return sender, vc, m, nil
}
