package causal

import (
	"testing"
	"time"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/reliable"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// gaugeValue reads one gauge out of a snapshot (Snapshot.Get covers
// counters only).
func gaugeValue(s telemetry.Snapshot, name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

func newPCCastCluster(t *testing.T, ids []string, net transport.Network, patience time.Duration, rcfg *reliable.Config) *cluster {
	t.Helper()
	grp := group.MustNew("g", ids)
	c := &cluster{grp: grp, net: net, cols: map[string]*collector{}, bcs: map[string]Broadcaster{}}
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		var tconn transport.Conn = conn
		if rcfg != nil {
			tconn = reliable.Wrap(conn, grp.Others(id), *rcfg)
		}
		col := &collector{}
		e, err := NewPCCast(PCCastConfig{
			Self: id, Group: grp, Conn: tconn, Deliver: col.deliver, Patience: patience,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.cols[id] = col
		c.bcs[id] = e
	}
	return c
}

func TestPCCastConfigValidation(t *testing.T) {
	grp := group.MustNew("g", []string{"a"})
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	conn, _ := net.Attach("a")
	cb := func(message.Message) {}
	tests := []struct {
		name string
		cfg  PCCastConfig
	}{
		{"not a member", PCCastConfig{Self: "x", Group: grp, Conn: conn, Deliver: cb}},
		{"nil group", PCCastConfig{Self: "a", Conn: conn, Deliver: cb}},
		{"nil conn", PCCastConfig{Self: "a", Group: grp, Deliver: cb}},
		{"nil deliver", PCCastConfig{Self: "a", Group: grp, Conn: conn}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPCCast(tt.cfg); err == nil {
				t.Error("NewPCCast accepted invalid config")
			}
		})
	}
}

func TestPCCastRequiresFIFOConn(t *testing.T) {
	// A lossy transport is not a reliable FIFO link: the capability probe
	// must make NewPCCast fail fast rather than silently misorder.
	grp := group.MustNew("g", []string{"a", "b"})
	net := transport.NewChanNet(transport.FaultModel{DropProb: 0.1, Seed: 7})
	defer func() { _ = net.Close() }()
	conn, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	cb := func(message.Message) {}
	if _, err := NewPCCast(PCCastConfig{Self: "a", Group: grp, Conn: conn, Deliver: cb}); err == nil {
		t.Fatal("NewPCCast accepted a lossy conn")
	}
	// The reliability sublayer upgrades the same conn to FIFO.
	rconn := reliable.Wrap(conn, grp.Others("a"), reliable.Config{Seed: 1})
	e, err := NewPCCast(PCCastConfig{Self: "a", Group: grp, Conn: rconn, Deliver: cb})
	if err != nil {
		t.Fatalf("NewPCCast rejected a reliable.Wrap conn: %v", err)
	}
	_ = e.Close()
}

func TestPCCastSelfDelivery(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c := newPCCastCluster(t, []string{"a", "b"}, net, 0, nil)
	defer c.close(t)
	m := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
	if err := c.bcs["a"].Broadcast(m); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		got := c.cols[id].waitFor(t, 1, time.Second)
		if got[0].Label != m.Label {
			t.Errorf("member %s delivered %v", id, got[0].Label)
		}
	}
}

func TestPCCastCausalOrderWithoutDeps(t *testing.T) {
	// The headline property: b's m2 is causally after a's m1 (b delivered
	// m1 before sending m2) yet carries NO dependency metadata. FIFO links
	// plus forward-on-first-receipt alone must order them at every member.
	net := transport.NewChanNet(transport.FaultModel{
		MinDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 17,
	})
	c := newPCCastCluster(t, []string{"a", "b", "c"}, net, 0, nil)
	defer c.close(t)

	m1 := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindNonCommutative, Op: "w1"}
	if err := c.bcs["a"].Broadcast(m1); err != nil {
		t.Fatal(err)
	}
	c.cols["b"].waitFor(t, 1, time.Second) // b has delivered m1
	m2 := message.Message{Label: message.Label{Origin: "b", Seq: 1}, Kind: message.KindNonCommutative, Op: "w2"}
	if err := c.bcs["b"].Broadcast(m2); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		got := c.cols[id].waitFor(t, 2, 2*time.Second)
		pos := positions(got)
		if pos[m1.Label] >= pos[m2.Label] {
			t.Errorf("member %s violated causal order: %v", id, got)
		}
	}
}

func TestPCCastDependencyHoldback(t *testing.T) {
	// Explicit OccursAfter predicates still hold messages back — the
	// safety net for out-of-stream paths.
	net := transport.NewChanNet(transport.FaultModel{})
	c := newPCCastCluster(t, []string{"a", "b", "c"}, net, 0, nil)
	defer c.close(t)

	m1 := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindNonCommutative, Op: "w1"}
	m2 := message.Message{
		Label: message.Label{Origin: "b", Seq: 1},
		Deps:  message.After(m1.Label),
		Kind:  message.KindNonCommutative,
		Op:    "w2",
	}
	if err := c.bcs["b"].Broadcast(m2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let m2 spread and buffer everywhere
	if err := c.bcs["a"].Broadcast(m1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		got := c.cols[id].waitFor(t, 2, 2*time.Second)
		pos := positions(got)
		if pos[m1.Label] >= pos[m2.Label] {
			t.Errorf("member %s delivered %v before its dependency %v", id, m2.Label, m1.Label)
		}
	}
}

func TestPCCastFloodForwardsOnceAndDedups(t *testing.T) {
	// Flood dissemination: each non-origin member re-emits each message
	// exactly once, and the n-1 copies every member receives collapse to
	// one delivery.
	net := transport.NewChanNet(transport.FaultModel{})
	c := newPCCastCluster(t, []string{"a", "b", "c"}, net, 0, nil)
	defer c.close(t)

	const count = 5
	for i := uint64(1); i <= count; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		c.cols[id].waitFor(t, count, 2*time.Second)
	}
	time.Sleep(20 * time.Millisecond) // let forwarded copies land
	for _, id := range []string{"a", "b", "c"} {
		if got := c.cols[id].snapshot(); len(got) != count {
			t.Errorf("member %s delivered %d messages, want %d", id, len(got), count)
		}
	}
	for _, id := range []string{"b", "c"} {
		e := c.bcs[id].(*PCCast)
		s := e.Snapshot()
		if f := s.Get("causal_pccast_forwarded_total"); f != count {
			t.Errorf("member %s forwarded %d frames, want exactly %d", id, f, count)
		}
		if d := s.Get("causal_pccast_duplicates_total"); d == 0 {
			t.Errorf("member %s saw no duplicates despite flood copies", id)
		}
	}
	// The origin never re-forwards echoes of its own messages.
	if f := c.bcs["a"].(*PCCast).Snapshot().Get("causal_pccast_forwarded_total"); f != 0 {
		t.Errorf("origin forwarded %d of its own echoes", f)
	}
}

func TestPCCastRefillNotForwarded(t *testing.T) {
	// Refill frames bypass the sender's FIFO stream; receivers must
	// deliver them via the holdback but never re-flood them.
	net := transport.NewChanNet(transport.FaultModel{})
	grp := group.MustNew("g", []string{"a", "b", "c"})
	connA, _ := net.Attach("a")
	connC, _ := net.Attach("c")
	colA := &collector{}
	ea, err := NewPCCast(PCCastConfig{Self: "a", Group: grp, Conn: connA, Deliver: colA.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ea.Close() }()
	colB := &collector{}
	connB, _ := net.Attach("b")
	eb, err := NewPCCast(PCCastConfig{Self: "b", Group: grp, Conn: connB, Deliver: colB.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = eb.Close() }()
	defer func() { _ = net.Close() }()

	m := message.Message{Label: message.Label{Origin: "c", Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
	frame := []byte{framePCCastData}
	frame = message.AppendPCHeader(frame, message.PCHeader{Refill: true})
	frame, err = m.AppendBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := connC.Send("a", frame); err != nil {
		t.Fatal(err)
	}
	colA.waitFor(t, 1, time.Second)
	time.Sleep(20 * time.Millisecond)
	if f := ea.Snapshot().Get("causal_pccast_forwarded_total"); f != 0 {
		t.Errorf("refill frame was forwarded %d times", f)
	}
	if got := colB.snapshot(); len(got) != 0 {
		t.Errorf("member b received a refill flood: %v", got)
	}

	// Contrast: the same message without the refill mark IS forwarded.
	m2 := message.Message{Label: message.Label{Origin: "c", Seq: 2}, Kind: message.KindCommutative, Op: "inc"}
	frame = []byte{framePCCastData}
	frame = message.AppendPCHeader(frame, message.PCHeader{})
	frame, err = m2.AppendBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := connC.Send("a", frame); err != nil {
		t.Fatal(err)
	}
	colB.waitFor(t, 1, time.Second) // b got it only via a's forward
	if f := ea.Snapshot().Get("causal_pccast_forwarded_total"); f != 1 {
		t.Errorf("data frame forwarded %d times, want 1", f)
	}
}

func TestPCCastLinkEstablishmentBuffers(t *testing.T) {
	// A peer coming back up must not have its frames processed until the
	// join round-trip completes; frames received meanwhile buffer and then
	// drain in receipt order (including their forward).
	net := transport.NewChanNet(transport.FaultModel{})
	grp := group.MustNew("g", []string{"a", "b", "c"})
	tr := group.NewTracker(grp)
	connA, _ := net.Attach("a")
	connB, _ := net.Attach("b") // raw: we play b by hand
	connC, _ := net.Attach("c")
	colA := &collector{}
	ea, err := NewPCCast(PCCastConfig{Self: "a", Group: grp, Conn: connA, Deliver: colA.deliver, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ea.Close() }()
	colC := &collector{}
	ec, err := NewPCCast(PCCastConfig{Self: "c", Group: grp, Conn: connC, Deliver: colC.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ec.Close() }()
	defer func() { _ = net.Close() }()

	// b crashes and returns: the tracker edges drive a's link state.
	tr.MarkDown("b")
	tr.MarkUp("b") // a sends b a join request; b has not answered yet

	m := message.Message{Label: message.Label{Origin: "b", Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
	frame := []byte{framePCCastData}
	frame = message.AppendPCHeader(frame, message.PCHeader{})
	frame, err = m.AppendBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := connB.Send("a", frame); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if got := colA.snapshot(); len(got) != 0 {
		t.Fatalf("frame processed before link establishment: %v", got)
	}
	if buffered := gaugeValue(ea.Snapshot(), "causal_pccast_link_buffered"); buffered != 1 {
		t.Fatalf("link buffer gauge = %d, want 1", buffered)
	}

	// b answers the join request: the link establishes and the buffer
	// drains — a delivers, and the drained frame is forwarded on to c.
	resp := appendOriginSeqMap([]byte{framePCCastJoinResp}, nil)
	if err := connB.Send("a", resp); err != nil {
		t.Fatal(err)
	}
	colA.waitFor(t, 1, time.Second)
	colC.waitFor(t, 1, time.Second)
	if buffered := gaugeValue(ea.Snapshot(), "causal_pccast_link_buffered"); buffered != 0 {
		t.Errorf("link buffer gauge = %d after establishment, want 0", buffered)
	}
}

func TestPCCastChainOverReliableLossyNet(t *testing.T) {
	// The production shape: lossy transport upgraded by reliable.Wrap,
	// PCCast on top. A dependency chain must come out in order everywhere.
	net := transport.NewChanNet(transport.FaultModel{
		DropProb: 0.2, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 99,
	})
	rcfg := &reliable.Config{Seed: 1}
	c := newPCCastCluster(t, []string{"a", "b", "c"}, net, 25*time.Millisecond, rcfg)
	defer c.close(t)

	var prev message.Label
	const count = 30
	for i := uint64(1); i <= count; i++ {
		m := message.Message{
			Label: message.Label{Origin: "a", Seq: i},
			Deps:  message.After(prev),
			Kind:  message.KindNonCommutative,
			Op:    "w",
		}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
		prev = m.Label
	}
	for _, id := range []string{"b", "c"} {
		got := c.cols[id].waitFor(t, count, 10*time.Second)
		for i := range got {
			if got[i].Label.Seq != uint64(i+1) {
				t.Fatalf("member %s: chain out of order at %d: %v", id, i, got[i].Label)
			}
		}
	}
}

func TestPCCastSyncServesLateJoiner(t *testing.T) {
	// A member attaching after history was broadcast catches up through
	// RequestSync: sync responses prime anti-entropy, fetches pull the
	// retained tail as refill frames, and the holdback orders them.
	net := transport.NewChanNet(transport.FaultModel{})
	grp := group.MustNew("g", []string{"a", "b", "c"})
	c := &cluster{grp: grp, net: net, cols: map[string]*collector{}, bcs: map[string]Broadcaster{}}
	defer c.close(t)
	for _, id := range []string{"a", "b"} {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		col := &collector{}
		e, err := NewPCCast(PCCastConfig{Self: id, Group: grp, Conn: conn, Deliver: col.deliver, Patience: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		c.cols[id] = col
		c.bcs[id] = e
	}
	var prev message.Label
	const count = 10
	for i := uint64(1); i <= count; i++ {
		m := message.Message{
			Label: message.Label{Origin: "a", Seq: i},
			Deps:  message.After(prev),
			Kind:  message.KindNonCommutative,
			Op:    "w",
		}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
		prev = m.Label
	}
	c.cols["b"].waitFor(t, count, 2*time.Second)

	// c attaches only now: everything above was never delivered to it.
	conn, err := net.Attach("c")
	if err != nil {
		t.Fatal(err)
	}
	col := &collector{}
	e, err := NewPCCast(PCCastConfig{Self: "c", Group: grp, Conn: conn, Deliver: col.deliver, Patience: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.cols["c"] = col
	c.bcs["c"] = e
	if err := e.RequestSync(); err != nil {
		t.Fatal(err)
	}
	got := col.waitFor(t, count, 10*time.Second)
	for i := range got {
		if got[i].Label.Seq != uint64(i+1) {
			t.Fatalf("late joiner out of order at %d: %v", i, got[i].Label)
		}
	}
}

func TestPCCastMetaBytesFlatInGroupSize(t *testing.T) {
	// The tentpole claim in miniature: PCCast's per-frame metadata does
	// not grow with the group, CBCast's does.
	sizes := []int{3, 8}
	perFrame := make([]uint64, 0, len(sizes))
	for _, n := range sizes {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('a' + i))
		}
		net := transport.NewChanNet(transport.FaultModel{})
		c := newPCCastCluster(t, ids, net, 0, nil)
		for i := uint64(1); i <= 4; i++ {
			m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
			if err := c.bcs["a"].Broadcast(m); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range ids {
			c.cols[id].waitFor(t, 4, 2*time.Second)
		}
		s := c.bcs["a"].(*PCCast).Snapshot()
		bytes, frames := s.Get("causal_meta_bytes_total"), s.Get("causal_meta_frames_total")
		if frames == 0 {
			t.Fatal("no meta frames recorded")
		}
		perFrame = append(perFrame, bytes/frames)
		c.close(t)
	}
	for i := 1; i < len(perFrame); i++ {
		if perFrame[i] > perFrame[0] {
			t.Errorf("PCCast meta bytes/frame grew with group size: %v", perFrame)
		}
	}
}
