// Package causal implements causal broadcasting, the communication
// construct at the heart of the paper (§3): delivery of messages M at all
// group members in the causal order R(M).
//
// Three interchangeable engines are provided:
//
//   - OSend — the paper's contribution (§3.3): every message carries an
//     explicit OccursAfter predicate naming the labels it depends on. A
//     member delivers a message once all named predecessors are delivered
//     locally. The causal order is exactly what the application declared
//     ("semantic ordering"), no more.
//   - CBCAST — the ISIS-style baseline [Birman, Schiper & Stephenson]:
//     every message piggybacks a vector clock, and delivery follows the
//     classic causal condition. The transport's incidental order is
//     conservatively folded into causality ("incidental ordering"), so
//     CBCAST may impose constraints the application never asked for.
//   - PCCast — the PC-broadcast scaling engine [Nédelec, Molli & Mostéfaoui]:
//     given reliable per-pair FIFO links (reliable.Wrap, or a fault-free
//     transport), causal order needs no per-message clock at all. Each
//     member forwards every message on first receipt into its own FIFO
//     stream before reacting to it, so wire metadata is constant-size
//     regardless of group size — the engine that scales to n=256 and
//     beyond, at the cost of flood amplification.
//
// All run over a transport.Conn and report buffering metrics used by
// experiments E6/E7/E15; OSend and CBCast additionally tolerate
// reordering, duplication and (with retransmission enabled) loss on the
// raw transport, while PCCast delegates loss repair to the link layer it
// requires.
package causal

import (
	"errors"
	"fmt"

	"causalshare/internal/message"
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("causal: engine closed")

// DeliverFunc consumes messages in causal order. It is invoked on the
// engine's receive goroutine with no engine lock held, so implementations
// may call back into the engine (e.g. broadcast a response) but must not
// block indefinitely.
type DeliverFunc func(message.Message)

// Broadcaster is the sending half shared by both engines; the total-order
// layer and the core data-access protocols are written against it.
type Broadcaster interface {
	// Self returns the local member id.
	Self() string
	// Broadcast sends m to every group member, including the sender
	// (self-delivery passes through the same ordering logic, so a member
	// observes its own messages in causal position).
	Broadcast(m message.Message) error
	// Close stops the engine. Buffered but undeliverable messages are
	// discarded.
	Close() error
}

// Metrics is a snapshot of an engine's buffering behaviour.
type Metrics struct {
	// Delivered is the number of messages handed to the application.
	Delivered uint64
	// Buffered is the current number of messages held awaiting
	// predecessors.
	Buffered int
	// MaxBuffered is the high-water mark of Buffered.
	MaxBuffered int
	// Duplicates is the number of frames discarded as already delivered
	// or already buffered.
	Duplicates uint64
	// Fetches is the number of retransmission requests issued.
	Fetches uint64
	// ControlBytes counts wire bytes spent on ordering metadata (labels
	// or vector clocks), for the overhead experiment E7.
	ControlBytes uint64
	// Retained is the current number of messages held for retransmission.
	Retained int
	// StablePruned counts retained messages garbage-collected after every
	// peer's advertised watermark covered them.
	StablePruned uint64
}

// Engine is the full surface the recovery and chaos machinery drives: the
// Broadcaster sending half plus the anti-entropy, failure-marking and
// rejoin hooks. OSend and PCCast implement it; CBCast (the baseline) stays
// a plain Broadcaster.
type Engine interface {
	Broadcaster
	// Delivered reports whether l has been delivered locally.
	Delivered(l message.Label) bool
	// MarkDown sets or clears a peer's down mark (stability quorum and
	// fetch routing; see the engines' method docs).
	MarkDown(peer string, down bool)
	// SyncWith asks one peer for a state-sync snapshot.
	SyncWith(peer string) error
	// RequestSync asks every peer for a state-sync snapshot.
	RequestSync() error
	// Frontier returns the delivered watermarks per origin.
	Frontier() map[string]uint64
	// SeedFrontier marks everything up to wm[origin] as already delivered.
	SeedFrontier(wm map[string]uint64)
}

// frame type tags on the wire.
const (
	frameOSendData byte = iota + 1
	frameOSendFetch
	frameCBCastData
	frameCBCastFetch
	frameOSendAdvert
	frameCBCastAdvert
	frameOSendSyncReq
	frameOSendSyncResp
	framePCCastData
	framePCCastFetch
	framePCCastAdvert
	framePCCastSyncReq
	framePCCastSyncResp
	framePCCastJoinReq
	framePCCastJoinResp
)

func frameError(kind byte, err error) error {
	return fmt.Errorf("causal: frame kind %d: %w", kind, err)
}
