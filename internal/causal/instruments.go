package causal

import (
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// peerInstruments are the per-peer observability-plane instruments every
// engine registers under the same names, so the causaltop aggregator is
// engine-agnostic: a member's causal lag toward each peer reads the same
// whether OSend, CBCast or PCCast produced it.
type peerInstruments struct {
	// visibility is the send→remote-deliver latency toward the peer the
	// message originated from, computed from the SentAt wall-clock stamp
	// the origin placed in the wire trailer. Subject to clock skew between
	// members — on one host (every harness here) that is nanoseconds.
	visibility *telemetry.HistogramFamily
}

func newPeerInstruments(reg *telemetry.Registry) peerInstruments {
	return peerInstruments{
		visibility: reg.HistogramFamily("causal_visibility_seconds",
			"Origin-send to local-deliver latency, labeled by the originating peer.",
			"peer", telemetry.DurationBuckets),
	}
}

// observe records one remote delivery's visibility latency. Alloc-free:
// RouteOrigin is a substring, With is a read-locked map hit, Observe is
// atomic adds — the fan-out hot path calls this per delivery.
func (p peerInstruments) observe(self string, m *message.Message, nowNanos int64) {
	if m.SentAt == 0 {
		return
	}
	origin := RouteOrigin(m.Label.Origin)
	if origin == self {
		return
	}
	d := float64(nowNanos-m.SentAt) / 1e9
	if d < 0 {
		d = 0 // cross-host clock skew must not corrupt the ladder
	}
	p.visibility.With(origin).Observe(d)
}

// registerPeerLag registers the snapshot-time per-peer holdback gauges:
// how many of peer's messages sit in the holdback buffer and how old the
// oldest is. scan runs only at snapshot time (under the engine's delivery
// lock), so the hot path pays nothing. With a registry shared by several
// engines the last engine to register a peer label wins (a rejoined
// member's fresh engine takes the series over from its dead
// incarnation) — per-member registries (the observability-plane
// deployment) never collide.
func registerPeerLag(reg *telemetry.Registry, peers []string, scan func(peer string) (depth, ageMS int64)) {
	depthFam := reg.GaugeFamily("causal_peer_holdback_depth",
		"Messages from the peer buffered awaiting missing predecessors.",
		"peer")
	ageFam := reg.GaugeFamily("causal_peer_pending_age_ms",
		"Age in milliseconds of the oldest held-back message from the peer (0 when none).",
		"peer")
	for _, p := range peers {
		p := p
		depthFam.Func(p, func() int64 { d, _ := scan(p); return d })
		ageFam.Func(p, func() int64 { _, a := scan(p); return a })
	}
}

// scanPendingLag is the shared holdback scan: origins route through
// RouteOrigin so a total-layer label ("b~seq") counts toward member b.
func scanPendingLag(peer string, each func(yield func(origin string, since time.Time))) (depth, ageMS int64) {
	now := time.Now()
	each(func(origin string, since time.Time) {
		if RouteOrigin(origin) != peer {
			return
		}
		depth++
		if a := now.Sub(since).Milliseconds(); a > ageMS {
			ageMS = a
		}
	})
	return depth, ageMS
}

// osendInstruments are OSend's registry-backed instruments. Engines given
// the same registry share (and therefore aggregate) them; an engine built
// without a registry gets a private one so its Snapshot and Metrics views
// stay per-engine.
type osendInstruments struct {
	delivered     *telemetry.Counter
	duplicates    *telemetry.Counter
	fetches       *telemetry.Counter
	controlBytes  *telemetry.Counter
	stablePruned  *telemetry.Counter
	pendingDepth  *telemetry.Gauge
	pendingMax    *telemetry.Gauge
	retainedDepth *telemetry.Gauge
	sendErrors    *telemetry.Counter
	depWait       *telemetry.Histogram
	broadcastLat  *telemetry.Histogram
}

func newOSendInstruments(reg *telemetry.Registry) osendInstruments {
	return osendInstruments{
		delivered: reg.Counter("causal_osend_delivered_total",
			"Messages delivered in causal order."),
		duplicates: reg.Counter("causal_osend_duplicates_total",
			"Received messages discarded as already delivered or buffered."),
		fetches: reg.Counter("causal_osend_fetches_total",
			"Retransmission requests issued for missing predecessors."),
		controlBytes: reg.Counter("causal_osend_control_bytes_total",
			"Ordering metadata bytes placed on the wire (OccursAfter labels, once per peer)."),
		stablePruned: reg.Counter("causal_osend_stable_pruned_total",
			"Retained messages garbage-collected after every peer's watermark covered them."),
		pendingDepth: reg.Gauge("causal_osend_pending_depth",
			"Messages currently buffered awaiting a missing predecessor."),
		pendingMax: reg.Gauge("causal_osend_pending_depth_max",
			"High-water mark of the pending buffer."),
		retainedDepth: reg.Gauge("causal_osend_retained_depth",
			"Own messages retained for retransmission."),
		sendErrors: reg.Counter("causal_osend_send_errors_total",
			"Best-effort fan-outs where at least one peer was unreachable."),
		depWait: reg.Histogram("causal_osend_dep_wait_seconds",
			"Time a buffered message waited on missing predecessors before delivery.",
			telemetry.DurationBuckets),
		broadcastLat: reg.Histogram("causal_osend_delivery_seconds",
			"Broadcast-call-to-local-self-delivery latency (encode, fan-out, ingest).",
			telemetry.DurationBuckets),
	}
}

// pccastInstruments are PCCast's registry-backed instruments.
type pccastInstruments struct {
	delivered     *telemetry.Counter
	duplicates    *telemetry.Counter
	forwarded     *telemetry.Counter
	fetches       *telemetry.Counter
	controlBytes  *telemetry.Counter
	stablePruned  *telemetry.Counter
	pendingDepth  *telemetry.Gauge
	pendingMax    *telemetry.Gauge
	retainedDepth *telemetry.Gauge
	linkBuffered  *telemetry.Gauge
	sendErrors    *telemetry.Counter
	depWait       *telemetry.Histogram
	broadcastLat  *telemetry.Histogram
}

func newPCCastInstruments(reg *telemetry.Registry) pccastInstruments {
	return pccastInstruments{
		delivered: reg.Counter("causal_pccast_delivered_total",
			"Messages delivered in causal (FIFO-stream) order."),
		duplicates: reg.Counter("causal_pccast_duplicates_total",
			"Received frames discarded as already delivered or buffered."),
		forwarded: reg.Counter("causal_pccast_forwarded_total",
			"Frames re-emitted to the full group on first receipt (flood dissemination)."),
		fetches: reg.Counter("causal_pccast_fetches_total",
			"Retransmission requests issued for missing predecessors."),
		controlBytes: reg.Counter("causal_pccast_control_bytes_total",
			"Ordering metadata bytes placed on the wire (constant-size PC headers, once per peer)."),
		stablePruned: reg.Counter("causal_pccast_stable_pruned_total",
			"Retained messages garbage-collected after every peer's watermark covered them."),
		pendingDepth: reg.Gauge("causal_pccast_pending_depth",
			"Messages currently buffered awaiting a missing predecessor."),
		pendingMax: reg.Gauge("causal_pccast_pending_depth_max",
			"High-water mark of the pending buffer."),
		retainedDepth: reg.Gauge("causal_pccast_retained_depth",
			"Messages retained for retransmission."),
		linkBuffered: reg.Gauge("causal_pccast_link_buffered",
			"Data frames buffered on not-yet-established links (join round-trips in flight)."),
		sendErrors: reg.Counter("causal_pccast_send_errors_total",
			"Best-effort fan-outs where at least one peer was unreachable."),
		depWait: reg.Histogram("causal_pccast_dep_wait_seconds",
			"Time a buffered message waited on missing predecessors before delivery.",
			telemetry.DurationBuckets),
		broadcastLat: reg.Histogram("causal_pccast_delivery_seconds",
			"Broadcast-call-to-local-self-delivery latency (encode, fan-out, ingest).",
			telemetry.DurationBuckets),
	}
}

// metaInstruments aggregate ordering-metadata cost uniformly across all
// three engines, for the E15 scaling experiment: total metadata bytes, the
// frames that carried them, and the application messages they amortize
// over. bytes/frame is the headline comparison — O(n) for vector clocks
// and dependency lists, constant for PC headers — while bytes/msg folds in
// PCCast's flood amplification honestly.
type metaInstruments struct {
	bytes  *telemetry.Counter
	frames *telemetry.Counter
	msgs   *telemetry.Counter
}

func newMetaInstruments(reg *telemetry.Registry) metaInstruments {
	m := metaInstruments{
		bytes: reg.Counter("causal_meta_bytes_total",
			"Ordering metadata bytes placed on the wire, all engines."),
		frames: reg.Counter("causal_meta_frames_total",
			"Wire frames that carried ordering metadata, all engines."),
		msgs: reg.Counter("causal_meta_msgs_total",
			"Application messages broadcast (denominator for per-msg metadata cost)."),
	}
	reg.GaugeFunc("causal_meta_bytes_per_msg",
		"Ordering metadata bytes per application message (bytes_total / msgs_total).",
		func() int64 {
			n := m.msgs.Value()
			if n == 0 {
				return 0
			}
			return int64(m.bytes.Value() / n)
		})
	return m
}

// add records one fan-out of meta bytes across frames wire frames.
func (m metaInstruments) add(metaBytes, frames uint64) {
	m.bytes.Add(metaBytes * frames)
	m.frames.Add(frames)
}

// cbcastInstruments are CBCast's registry-backed instruments, nil (no-op)
// when the engine was built without a registry.
type cbcastInstruments struct {
	delivered    *telemetry.Counter
	duplicates   *telemetry.Counter
	fetches      *telemetry.Counter
	controlBytes *telemetry.Counter
	sendErrors   *telemetry.Counter
	pendingDepth *telemetry.Gauge
	pendingMax   *telemetry.Gauge
}

func newCBCastInstruments(reg *telemetry.Registry) cbcastInstruments {
	return cbcastInstruments{
		delivered: reg.Counter("causal_cbcast_delivered_total",
			"Messages delivered in causal order (vector-clock condition)."),
		duplicates: reg.Counter("causal_cbcast_duplicates_total",
			"Received messages discarded as duplicates."),
		fetches: reg.Counter("causal_cbcast_fetches_total",
			"Retransmission requests issued for vector-clock gaps."),
		controlBytes: reg.Counter("causal_cbcast_control_bytes_total",
			"Ordering metadata bytes placed on the wire (vector clocks, once per peer)."),
		sendErrors: reg.Counter("causal_cbcast_send_errors_total",
			"Best-effort fan-outs where at least one peer was unreachable."),
		pendingDepth: reg.Gauge("causal_cbcast_pending_depth",
			"Messages currently buffered awaiting vector-clock readiness."),
		pendingMax: reg.Gauge("causal_cbcast_pending_depth_max",
			"High-water mark of the holdback buffer."),
	}
}
