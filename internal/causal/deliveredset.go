package causal

import (
	"causalshare/internal/message"
)

// deliveredSet records which labels a member has delivered, compactly.
// Labels from one origin carry increasing sequence numbers, so per origin
// the set is a contiguous watermark prefix plus a sparse set of
// out-of-order deliveries above it. This keeps memory O(active window)
// instead of O(history) — the delivered-prefix analogue of the dependency-
// graph pruning described in DESIGN.md.
type deliveredSet struct {
	byOrigin map[string]*originSet
}

type originSet struct {
	// watermark w means every seq in [1, w] is delivered.
	watermark uint64
	// above holds delivered seqs > watermark.
	above map[uint64]struct{}
}

func newDeliveredSet() *deliveredSet {
	return &deliveredSet{byOrigin: make(map[string]*originSet)}
}

// Has reports whether l was delivered.
func (d *deliveredSet) Has(l message.Label) bool {
	os, ok := d.byOrigin[l.Origin]
	if !ok {
		return false
	}
	if l.Seq <= os.watermark {
		return true
	}
	_, ok = os.above[l.Seq]
	return ok
}

// Add marks l delivered, advancing the origin watermark through any now-
// contiguous sparse entries. Returns false if l was already present.
func (d *deliveredSet) Add(l message.Label) bool {
	os, ok := d.byOrigin[l.Origin]
	if !ok {
		os = &originSet{above: make(map[uint64]struct{})}
		d.byOrigin[l.Origin] = os
	}
	if l.Seq <= os.watermark {
		return false
	}
	if _, dup := os.above[l.Seq]; dup {
		return false
	}
	os.above[l.Seq] = struct{}{}
	for {
		if _, next := os.above[os.watermark+1]; !next {
			break
		}
		os.watermark++
		delete(os.above, os.watermark)
	}
	return true
}

// Seed advances origin's watermark to at least seq, treating everything up
// to it as already delivered. A rejoining member seeds the watermarks its
// peers advertise so pre-crash history is never re-delivered; sparse
// entries the new watermark covers are compacted away. Seeding backwards
// is a no-op.
func (d *deliveredSet) Seed(origin string, seq uint64) {
	os, ok := d.byOrigin[origin]
	if !ok {
		os = &originSet{above: make(map[uint64]struct{})}
		d.byOrigin[origin] = os
	}
	if seq <= os.watermark {
		return
	}
	os.watermark = seq
	for s := range os.above {
		if s <= os.watermark {
			delete(os.above, s)
		}
	}
	for {
		if _, next := os.above[os.watermark+1]; !next {
			break
		}
		os.watermark++
		delete(os.above, os.watermark)
	}
}

// Watermark returns the contiguous delivered prefix for origin: every seq
// in [1, Watermark] is delivered. The anti-entropy protocol starts gap
// scans here.
func (d *deliveredSet) Watermark(origin string) uint64 {
	os, ok := d.byOrigin[origin]
	if !ok {
		return 0
	}
	return os.watermark
}

// Watermarks returns every origin's contiguous delivered prefix. The
// anti-entropy adverts piggyback it so peers can garbage-collect retained
// messages that are stable (delivered everywhere).
func (d *deliveredSet) Watermarks() map[string]uint64 {
	out := make(map[string]uint64, len(d.byOrigin))
	for origin, os := range d.byOrigin {
		if os.watermark > 0 {
			out[origin] = os.watermark
		}
	}
	return out
}

// Len returns the total number of delivered labels tracked (watermark
// prefixes count in full).
func (d *deliveredSet) Len() int {
	n := 0
	for _, os := range d.byOrigin {
		n += int(os.watermark) + len(os.above)
	}
	return n
}

// SparseLen returns the number of non-compacted entries, a memory metric.
func (d *deliveredSet) SparseLen() int {
	n := 0
	for _, os := range d.byOrigin {
		n += len(os.above)
	}
	return n
}
