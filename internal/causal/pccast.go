package causal

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
	"causalshare/internal/wal"
)

// PCCastConfig parameterizes a PCCast engine.
type PCCastConfig struct {
	// Self is the local member id; it must be a member of Group.
	Self string
	// Group is the broadcast domain (every Broadcast reaches all members).
	Group *group.Group
	// Conn is the transport attachment for Self. It must preserve reliable
	// per-pair FIFO order (transport.IsFIFO must report true): wrap lossy
	// transports in reliable.Wrap first. NewPCCast fails fast otherwise —
	// PC-cast carries no per-message clock, so a link that drops or
	// reorders silently breaks causal delivery instead of merely slowing
	// it.
	Conn transport.Conn
	// Deliver receives messages in causal order.
	Deliver DeliverFunc
	// Patience is how long a message may wait on a missing predecessor
	// before the engine requests retransmission. Zero disables the
	// anti-entropy loop (appropriate when the link layer already
	// guarantees delivery).
	Patience time.Duration
	// Telemetry is the registry the engine registers its instruments on;
	// nil gets a private registry.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, receives send/deliver/defer/fetch events.
	Trace *telemetry.Ring
	// Tracer, when non-nil, records causal span lifecycles and runs the
	// online causal-order audit on every delivery.
	Tracer *trace.Tracer
	// Flight, when non-nil, is this member's black-box flight recorder;
	// the engine records holdback entry, dependency fetches, and flood
	// forwards — the transitions the trace collector cannot see.
	Flight *flightrec.Recorder
	// Journal, when non-nil, is the member's write-ahead log; every
	// delivery and membership verdict is journaled (see
	// OSendConfig.Journal).
	Journal *wal.WAL
	// OnSync, when non-nil, is invoked after a state-sync response from a
	// peer has been applied (see OSendConfig.OnSync).
	OnSync func(from string, watermarks map[string]uint64)
	// Tracker, when non-nil, drives link state from membership edges: a
	// member going down tears its link, a member coming back triggers the
	// buffered link-establishment round-trip.
	Tracker *group.Tracker
}

// PCCast is the PC-broadcast engine [Nédelec, Molli & Mostéfaoui]: causal
// order from reliable FIFO links alone, with constant-size wire metadata.
//
// The invariant that replaces vector clocks: every member emits or
// forwards each message into its single FIFO-sequenced outgoing stream
// BEFORE emitting anything causally later. The origin's Broadcast fans the
// message out before self-delivery (so replies it triggers land later in
// the stream); every receiver re-emits the message to the full group on
// first receipt, before reacting to it. A message therefore precedes, on
// every link it travels, everything that causally follows it — receivers
// get causal order for free from link order. The cost is flood
// amplification: each message crosses every link once, n·(n−1) frames for
// a group of n, which is the trade the scaling experiment E15 measures
// against the vector-clock engines' O(n) per-frame metadata.
//
// Two paths bypass stream order and therefore need the safety net: refill
// frames (retransmissions served from retention buffers, marked
// Refill in the PC header and never forwarded) and post-rejoin catch-up.
// The engine keeps OSend's dependency holdback for exactly these — a
// message whose OccursAfter labels are not yet delivered buffers until
// they are, whatever link it arrived on.
//
// Joins and leaves use buffered link establishment: when a peer is marked
// back up, its data frames are buffered until a join-request/response
// round-trip completes (the response carries the peer's delivered
// watermarks, priming anti-entropy), then drain in receipt order.
//
// Lock hierarchy: deliverMu | retainMu | linkMu → deliveredMu; sendMu is a
// leaf taken only around full-group data fan-outs.
type PCCast struct {
	self     string
	grp      *group.Group
	others   []string // cached fan-out targets (the group is immutable)
	conn     transport.Conn
	deliver  DeliverFunc
	patience time.Duration
	onSync   func(from string, watermarks map[string]uint64)

	closed atomic.Bool

	// outbox is the engine's outgoing data stream: Broadcast and forward
	// enqueue encoded frames, and one sender goroutine drains them into
	// the transport in enqueue order, which makes the stream a single
	// well-defined sequence. Decoupling emission from the receive loop is
	// load-bearing, not cosmetic: the reliable sublayer applies inbound
	// acks inside Recv, so a receive goroutine that forwarded
	// synchronously could block on a full send window and thereby starve
	// the very acks that drain it.
	outMu     sync.Mutex
	outCond   *sync.Cond
	outQ      []*transport.Frame
	outHead   int
	outClosed bool

	// deliveredMu guards the delivered-label set.
	deliveredMu sync.RWMutex
	delivered   *deliveredSet

	// deliverMu guards the delivery buffer and its scratch space.
	deliverMu   sync.Mutex
	pending     map[message.Label]*pendingEntry
	waiting     map[message.Label][]message.Label
	maxBuffered int
	cascade     []message.Message
	readyFree   [][]message.Message

	// retainMu guards retransmission state (see OSend for field docs).
	retainMu    sync.Mutex
	retained    map[message.Label]message.Message
	lastFetch   map[message.Label]time.Time
	peerWM      map[string]map[string]uint64
	down        map[string]bool
	fetchSpread int

	// linkMu guards per-peer link establishment state.
	linkMu  sync.Mutex
	links   map[string]*pcLink
	linkBuf int // total frames buffered across unestablished links

	reg    *telemetry.Registry
	ins    pccastInstruments
	meta   metaInstruments
	peer   peerInstruments
	trace  *telemetry.Ring
	spans  *trace.Tracer
	flight *flightrec.Recorder
	wlog   *wal.WAL

	done chan struct{}
	wg   sync.WaitGroup
}

// pcLink is one inbound link's establishment state. Links are established
// by default (the group starts connected); MarkDown tears one, MarkUp
// starts the join round-trip that re-establishes it.
type pcLink struct {
	established bool
	buf         []pcBuffered
}

// pcBuffered is a data frame held on a not-yet-established link.
type pcBuffered struct {
	m   message.Message
	hdr message.PCHeader
}

// maxLinkBuffer bounds per-link establishment buffering; overflow drops
// the newest frame (anti-entropy re-fetches anything that mattered).
const maxLinkBuffer = 4096

var (
	_ Broadcaster = (*PCCast)(nil)
	_ Engine      = (*PCCast)(nil)
)

// NewPCCast starts an engine; its receive loop runs until Close. It fails
// fast when the conn does not guarantee reliable FIFO links — the one
// property the engine's correctness rests on.
func NewPCCast(cfg PCCastConfig) (*PCCast, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("causal: %q is not a member of the group", cfg.Self)
	}
	if cfg.Conn == nil {
		return nil, fmt.Errorf("causal: nil conn")
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("causal: nil deliver func")
	}
	if !transport.IsFIFO(cfg.Conn) {
		return nil, fmt.Errorf("causal: pccast requires reliable FIFO links; wrap the conn in reliable.Wrap")
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	e := &PCCast{
		self:      cfg.Self,
		grp:       cfg.Group,
		others:    cfg.Group.Others(cfg.Self),
		conn:      cfg.Conn,
		deliver:   cfg.Deliver,
		patience:  cfg.Patience,
		onSync:    cfg.OnSync,
		reg:       reg,
		ins:       newPCCastInstruments(reg),
		meta:      newMetaInstruments(reg),
		trace:     cfg.Trace,
		spans:     cfg.Tracer,
		flight:    cfg.Flight,
		wlog:      cfg.Journal,
		delivered: newDeliveredSet(),
		pending:   make(map[message.Label]*pendingEntry),
		waiting:   make(map[message.Label][]message.Label),
		retained:  make(map[message.Label]message.Message),
		lastFetch: make(map[message.Label]time.Time),
		peerWM:    make(map[string]map[string]uint64),
		down:      make(map[string]bool),
		links:     make(map[string]*pcLink),
		done:      make(chan struct{}),
	}
	e.peer = newPeerInstruments(reg)
	registerPeerLag(reg, e.others, e.peerLag)
	e.outCond = sync.NewCond(&e.outMu)
	if cfg.Tracker != nil {
		cfg.Tracker.Subscribe(func(id string, up bool) {
			if id != e.self {
				e.MarkDown(id, !up)
			}
		})
	}
	e.wg.Add(2)
	go e.recvLoop()
	go e.sendLoop()
	if e.patience > 0 {
		e.wg.Add(1)
		go e.fetchLoop()
	}
	return e, nil
}

// Self implements Broadcaster.
func (e *PCCast) Self() string { return e.self }

// Broadcast implements Broadcaster. The message goes out under a
// zero-valued PC header — one byte of ordering metadata regardless of
// group size — before local delivery, so anything the delivery triggers
// lands later in this member's FIFO stream.
func (e *PCCast) Broadcast(m message.Message) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("causal: broadcast: %w", err)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	t0 := time.Now()
	m.Span = e.spans.Broadcast(m)
	if m.SentAt == 0 {
		m.SentAt = t0.UnixNano()
	}
	hdr := message.PCHeader{}
	f := transport.NewFrame(1 + hdr.EncodedSize() + m.EncodedSize())
	f.B = append(f.B, framePCCastData)
	f.B = message.AppendPCHeader(f.B, hdr)
	var err error
	f.B, err = m.AppendBinary(f.B)
	if err != nil {
		f.Release()
		return fmt.Errorf("causal: encode %v: %w", m.Label, err)
	}

	e.retainMu.Lock()
	e.retained[m.Label] = m
	e.ins.retainedDepth.Set(int64(len(e.retained)))
	e.retainMu.Unlock()
	metaBytes := uint64(hdr.EncodedSize())
	e.ins.controlBytes.Add(metaBytes * uint64(len(e.others)))
	e.meta.add(metaBytes, uint64(len(e.others)))
	e.meta.msgs.Inc()
	e.trace.Record(telemetry.EventSend, e.self, m.Label.Origin, m.Label.Seq, 0)

	// Into the stream BEFORE self-delivery: anything the delivery
	// callback broadcasts in response enqueues later, so it follows m on
	// every link.
	e.enqueue(f)
	f.Release()
	e.ingest(m)
	e.ins.broadcastLat.ObserveSince(t0)
	return nil
}

// forward re-emits a first-receipt message to the full group with the hop
// count bumped. It MUST target the exact full peer set: the reliable
// sublayer sequences only complete fan-outs into the FIFO stream, so
// excluding even the peer the frame came from would silently demote the
// forward to unordered unicast.
func (e *PCCast) forward(m message.Message, hdr message.PCHeader) {
	fh := message.PCHeader{Hops: hdr.Hops + 1}
	f := transport.NewFrame(1 + fh.EncodedSize() + m.EncodedSize())
	f.B = append(f.B, framePCCastData)
	f.B = message.AppendPCHeader(f.B, fh)
	var err error
	f.B, err = m.AppendBinary(f.B)
	if err != nil {
		f.Release()
		return
	}
	metaBytes := uint64(fh.EncodedSize())
	e.ins.controlBytes.Add(metaBytes * uint64(len(e.others)))
	e.meta.add(metaBytes, uint64(len(e.others)))
	e.ins.forwarded.Inc()
	e.flight.Forward(m.Label, int(fh.Hops))
	e.enqueue(f)
	f.Release()
}

// enqueue appends one data frame to the outgoing stream. The frame is
// retained until the sender goroutine has fanned it out.
func (e *PCCast) enqueue(f *transport.Frame) {
	f.Retain()
	e.outMu.Lock()
	if e.outClosed {
		e.outMu.Unlock()
		f.Release()
		return
	}
	e.outQ = append(e.outQ, f)
	e.outMu.Unlock()
	e.outCond.Signal()
}

// sendLoop drains the outbox in enqueue order. It is the only goroutine
// that fans data frames out, so enqueue order IS stream order; if the
// transport applies backpressure (reliable window full) only this
// goroutine blocks, while the receive loop keeps draining acks.
func (e *PCCast) sendLoop() {
	defer e.wg.Done()
	for {
		e.outMu.Lock()
		for e.outHead >= len(e.outQ) && !e.outClosed {
			e.outQ = e.outQ[:0]
			e.outHead = 0
			e.outCond.Wait()
		}
		if e.outClosed {
			for _, f := range e.outQ[e.outHead:] {
				f.Release()
			}
			e.outQ = nil
			e.outMu.Unlock()
			return
		}
		f := e.outQ[e.outHead]
		e.outQ[e.outHead] = nil
		e.outHead++
		e.outMu.Unlock()
		err := transport.Multicast(e.conn, e.others, f)
		f.Release()
		if err != nil {
			// Best-effort, as in OSend: retention plus anti-entropy repair
			// the peers that missed it.
			e.ins.sendErrors.Inc()
		}
	}
}

// Snapshot returns the engine's registry snapshot.
func (e *PCCast) Snapshot() telemetry.Snapshot { return e.reg.Snapshot() }

// Metrics is the thin compatibility view over Snapshot.
func (e *PCCast) Metrics() Metrics {
	s := e.reg.Snapshot()
	m := Metrics{
		Delivered:    s.Get("causal_pccast_delivered_total"),
		Duplicates:   s.Get("causal_pccast_duplicates_total"),
		Fetches:      s.Get("causal_pccast_fetches_total"),
		ControlBytes: s.Get("causal_pccast_control_bytes_total"),
		StablePruned: s.Get("causal_pccast_stable_pruned_total"),
	}
	e.deliverMu.Lock()
	m.Buffered = len(e.pending)
	m.MaxBuffered = e.maxBuffered
	e.deliverMu.Unlock()
	e.retainMu.Lock()
	m.Retained = len(e.retained)
	e.retainMu.Unlock()
	return m
}

// Delivered reports whether l has been delivered locally.
func (e *PCCast) Delivered(l message.Label) bool { return e.deliveredHas(l) }

func (e *PCCast) deliveredHas(l message.Label) bool {
	e.deliveredMu.RLock()
	ok := e.delivered.Has(l)
	e.deliveredMu.RUnlock()
	return ok
}

func (e *PCCast) deliveredAdd(l message.Label) bool {
	e.deliveredMu.Lock()
	ok := e.delivered.Add(l)
	e.deliveredMu.Unlock()
	return ok
}

// Frontier returns the engine's delivered watermarks (see OSend.Frontier).
func (e *PCCast) Frontier() map[string]uint64 {
	e.deliveredMu.RLock()
	defer e.deliveredMu.RUnlock()
	return e.delivered.Watermarks()
}

// SeedFrontier marks every sequence up to wm[origin] as already delivered
// (see OSend.SeedFrontier).
func (e *PCCast) SeedFrontier(wm map[string]uint64) {
	e.deliveredMu.Lock()
	for origin, seq := range wm {
		e.delivered.Seed(origin, seq)
	}
	e.deliveredMu.Unlock()
	e.spans.SeedDelivered(wm)
	e.releaseSeeded()
}

func (e *PCCast) releaseSeeded() {
	e.deliverMu.Lock()
	var freed []message.Message
	for l, entry := range e.pending {
		for d := range entry.missing {
			if e.deliveredHas(d) {
				delete(entry.missing, d)
			}
		}
		if len(entry.missing) == 0 {
			delete(e.pending, l)
			e.ins.depWait.ObserveSince(entry.since)
			freed = append(freed, entry.msg)
		}
	}
	for d := range e.waiting {
		if e.deliveredHas(d) {
			delete(e.waiting, d)
		}
	}
	var ready []message.Message
	if len(freed) != 0 {
		ready = e.takeReadyLocked()
		for _, m := range freed {
			ready = e.deliverLocked(ready, m)
		}
		e.ins.pendingDepth.Set(int64(len(e.pending)))
	}
	e.deliverMu.Unlock()
	e.observeVisibility(ready)
	for _, r := range ready {
		e.deliver(r)
		// After the callback — see the OSend dispatch loop.
		e.wlog.Deliver(r.Label)
	}
	if ready != nil {
		e.pruneFetched(ready)
		e.putReady(ready)
	}
}

// RequestSync asks every peer for a state-sync snapshot (see
// OSend.RequestSync for why responses never seed the frontier).
func (e *PCCast) RequestSync() error {
	if e.closed.Load() {
		return ErrClosed
	}
	f := transport.StaticFrame([]byte{framePCCastSyncReq})
	err := transport.Multicast(e.conn, e.others, f)
	f.Release()
	return err
}

// SyncWith asks one peer for a state-sync snapshot.
func (e *PCCast) SyncWith(peer string) error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.conn.Send(peer, []byte{framePCCastSyncReq})
}

func (e *PCCast) serveSync(requester string) {
	e.retainMu.Lock()
	maxSeq := make(map[string]uint64, len(e.retained))
	for l := range e.retained {
		if l.Seq > maxSeq[l.Origin] {
			maxSeq[l.Origin] = l.Seq
		}
	}
	e.retainMu.Unlock()
	e.deliveredMu.RLock()
	wm := e.delivered.Watermarks()
	e.deliveredMu.RUnlock()
	frame := []byte{framePCCastSyncResp}
	frame = appendOriginSeqMap(frame, maxSeq)
	frame = appendOriginSeqMap(frame, wm)
	_ = e.conn.Send(requester, frame) // best effort; requester retries
}

func (e *PCCast) handleSyncResp(from string, retained, watermarks map[string]uint64) {
	e.handleAdvert(from, retained, watermarks)
	if e.onSync != nil {
		e.onSync(from, watermarks)
	}
}

// MarkDown sets or clears a peer's down mark. Beyond OSend's stability
// and fetch-routing semantics, PCCast ties link state to it: marking a
// peer down tears its inbound link (buffered frames from the dead
// incarnation are discarded); marking it up starts the buffered
// establishment round-trip — data frames from the peer are held until its
// join response arrives, then drain in receipt order.
func (e *PCCast) MarkDown(peer string, down bool) {
	e.retainMu.Lock()
	if down {
		e.down[peer] = true
	} else {
		delete(e.down, peer)
	}
	e.retainMu.Unlock()
	e.wlog.Member(peer, down)

	e.linkMu.Lock()
	ls := e.links[peer]
	if down {
		if ls == nil {
			ls = &pcLink{}
			e.links[peer] = ls
		}
		ls.established = false
		e.linkBuf -= len(ls.buf)
		ls.buf = nil
		e.ins.linkBuffered.Set(int64(e.linkBuf))
		e.linkMu.Unlock()
		return
	}
	if ls == nil || ls.established {
		e.linkMu.Unlock()
		return
	}
	e.linkMu.Unlock()
	if !e.closed.Load() {
		_ = e.conn.Send(peer, []byte{framePCCastJoinReq}) // retried each anti-entropy tick
	}
}

// establish completes the join round-trip for one link: marks it
// established and returns the frames buffered while it was pending.
func (e *PCCast) establish(peer string) []pcBuffered {
	e.linkMu.Lock()
	ls := e.links[peer]
	if ls == nil || ls.established {
		e.linkMu.Unlock()
		return nil
	}
	ls.established = true
	buf := ls.buf
	ls.buf = nil
	e.linkBuf -= len(buf)
	e.ins.linkBuffered.Set(int64(e.linkBuf))
	e.linkMu.Unlock()
	return buf
}

// gateLink buffers a data frame when its inbound link is mid-establishment.
// Returns true when the frame was consumed (buffered or dropped on
// overflow).
func (e *PCCast) gateLink(from string, m message.Message, hdr message.PCHeader) bool {
	e.linkMu.Lock()
	ls := e.links[from]
	if ls == nil || ls.established {
		e.linkMu.Unlock()
		return false
	}
	if len(ls.buf) < maxLinkBuffer {
		ls.buf = append(ls.buf, pcBuffered{m: m, hdr: hdr})
		e.linkBuf++
		e.ins.linkBuffered.Set(int64(e.linkBuf))
	}
	e.linkMu.Unlock()
	return true
}

// Close implements Broadcaster.
func (e *PCCast) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.done)
	e.outMu.Lock()
	e.outClosed = true
	e.outMu.Unlock()
	e.outCond.Broadcast()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *PCCast) recvLoop() {
	defer e.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("loop", "pccast-recv", "member", e.self), func(context.Context) {
		dec := message.NewDecoder()
		if br, ok := e.conn.(transport.BatchRecver); ok {
			var batch []transport.Envelope
			for {
				var err error
				batch, err = br.RecvBatch(batch)
				if err != nil {
					return
				}
				for i := range batch {
					e.handleFrame(dec, &batch[i])
					batch[i].Release()
				}
			}
		}
		for {
			env, err := e.conn.Recv()
			if err != nil {
				return
			}
			e.handleFrame(dec, &env)
			env.Release()
		}
	})
}

func (e *PCCast) handleFrame(dec *message.Decoder, env *transport.Envelope) {
	if len(env.Payload) == 0 {
		return
	}
	kind, body := env.Payload[0], env.Payload[1:]
	switch kind {
	case framePCCastData:
		hdr, msgBytes, err := message.DecodePCHeader(body)
		if err != nil {
			return // malformed header; drop
		}
		var m message.Message
		if err := dec.Decode(&m, msgBytes); err != nil {
			return
		}
		if e.gateLink(env.From, m, hdr) {
			return // link mid-establishment; frame buffered
		}
		e.processData(m, hdr)
	case framePCCastFetch:
		l, rest, err := decodeLabel(body)
		if err != nil || len(rest) != 0 {
			return
		}
		e.serveFetch(env.From, l)
	case framePCCastAdvert:
		retained, watermarks, err := decodeAdvert(body)
		if err != nil {
			return
		}
		e.handleAdvert(env.From, retained, watermarks)
	case framePCCastSyncReq:
		if len(body) != 0 {
			return
		}
		e.serveSync(env.From)
	case framePCCastSyncResp:
		retained, watermarks, err := decodeAdvert(body)
		if err != nil {
			return
		}
		e.handleSyncResp(env.From, retained, watermarks)
	case framePCCastJoinReq:
		if len(body) != 0 {
			return
		}
		e.serveJoin(env.From)
	case framePCCastJoinResp:
		wm, rest, err := readOriginSeqMap(body)
		if err != nil || len(rest) != 0 {
			return
		}
		e.handleJoinResp(env.From, wm)
	default:
		// Unknown frame kinds are ignored for forward compatibility.
	}
}

// processData runs the receive path for one data frame: forward on first
// receipt (into this member's FIFO stream, BEFORE any delivery the frame
// may trigger), then the holdback delivery algorithm. Refill frames —
// retransmissions that bypassed the sender's stream — are never
// forwarded; the holdback alone orders them. Echoes of this member's own
// messages never forward either: the original emission already occupies
// this member's stream.
//
// Only the receive goroutine calls processData, so first-receipt is
// race-free for foreign labels without extra locking: every copy of a
// foreign label arrives here.
func (e *PCCast) processData(m message.Message, hdr message.PCHeader) {
	if !hdr.Refill && RouteOrigin(m.Label.Origin) != e.self &&
		!e.deliveredHas(m.Label) && !e.isPending(m.Label) {
		e.forward(m, hdr)
	}
	e.ingest(m)
}

// serveJoin answers a peer's link-establishment ping with this member's
// delivered watermarks. The response is the "cut" in this member's FIFO
// stream the requester establishes from; the watermarks prime its
// anti-entropy so history from before the cut is fetched, not awaited.
func (e *PCCast) serveJoin(requester string) {
	e.retainMu.Lock()
	delete(e.down, requester) // an explicit ping is liveness evidence
	e.retainMu.Unlock()
	e.deliveredMu.RLock()
	wm := e.delivered.Watermarks()
	e.deliveredMu.RUnlock()
	frame := appendOriginSeqMap([]byte{framePCCastJoinResp}, wm)
	_ = e.conn.Send(requester, frame) // best effort; requester re-pings
}

// handleJoinResp completes establishment of the link from the responding
// peer: its watermarks feed stability bookkeeping, then the frames
// buffered during the round-trip drain in receipt order.
func (e *PCCast) handleJoinResp(from string, wm map[string]uint64) {
	e.handleAdvert(from, nil, wm)
	for _, b := range e.establish(from) {
		e.processData(b.m, b.hdr)
	}
}

func (e *PCCast) takeReadyLocked() []message.Message {
	if n := len(e.readyFree); n > 0 {
		buf := e.readyFree[n-1]
		e.readyFree = e.readyFree[:n-1]
		return buf
	}
	return nil
}

func (e *PCCast) putReady(buf []message.Message) {
	clear(buf)
	e.deliverMu.Lock()
	e.readyFree = append(e.readyFree, buf[:0])
	e.deliverMu.Unlock()
}

// ingest runs the holdback delivery algorithm on one message (received,
// drained from a link buffer, or locally broadcast). Identical to OSend's:
// on FIFO links the OccursAfter predicate is already satisfied in the
// common case and the holdback is pass-through; it earns its keep on the
// out-of-stream paths (refills, rejoin catch-up).
func (e *PCCast) ingest(m message.Message) {
	if e.closed.Load() {
		return
	}
	// Group-wide retention, as in OSend: any retainer can serve a fetch.
	if e.patience > 0 {
		e.retainMu.Lock()
		if _, ok := e.retained[m.Label]; !ok {
			e.retained[m.Label] = m
			e.ins.retainedDepth.Set(int64(len(e.retained)))
		}
		e.retainMu.Unlock()
	}
	e.deliverMu.Lock()
	if e.deliveredHas(m.Label) {
		e.ins.duplicates.Inc()
		e.deliverMu.Unlock()
		return
	}
	if _, buffered := e.pending[m.Label]; buffered {
		e.ins.duplicates.Inc()
		e.deliverMu.Unlock()
		return
	}
	e.spans.Enqueue(m)
	var missing map[message.Label]struct{}
	for _, d := range m.Deps.Labels() {
		if !e.deliveredHas(d) {
			if missing == nil {
				missing = make(map[message.Label]struct{}, m.Deps.Len())
			}
			missing[d] = struct{}{}
		}
	}
	if missing != nil {
		e.pending[m.Label] = &pendingEntry{msg: m, missing: missing, since: time.Now()}
		for d := range missing {
			e.waiting[d] = append(e.waiting[d], m.Label)
			e.flight.Holdback(m.Label, d)
		}
		depth := len(e.pending)
		if depth > e.maxBuffered {
			e.maxBuffered = depth
		}
		e.deliverMu.Unlock()
		e.ins.pendingDepth.Set(int64(depth))
		e.ins.pendingMax.SetMax(int64(depth))
		e.trace.Record(telemetry.EventDefer, e.self, m.Label.Origin, m.Label.Seq, int64(depth))
		return
	}
	ready := e.deliverLocked(e.takeReadyLocked(), m)
	if len(ready) > 1 {
		e.ins.pendingDepth.Set(int64(len(e.pending)))
	}
	e.deliverMu.Unlock()
	e.observeVisibility(ready)
	for _, r := range ready {
		e.deliver(r)
		// After the callback — see the OSend dispatch loop.
		e.wlog.Deliver(r.Label)
	}
	e.pruneFetched(ready)
	e.putReady(ready)
}

// observeVisibility records send→deliver latency toward each remote
// origin in the batch. Alloc-free (see peerInstruments.observe).
func (e *PCCast) observeVisibility(ready []message.Message) {
	if len(ready) == 0 {
		return
	}
	now := time.Now().UnixNano()
	for i := range ready {
		e.peer.observe(e.self, &ready[i], now)
	}
}

// peerLag scans the holdback buffer for messages from peer: the
// snapshot-time feed for the causal_peer_* gauges.
func (e *PCCast) peerLag(peer string) (depth, ageMS int64) {
	return scanPendingLag(peer, func(yield func(origin string, since time.Time)) {
		e.deliverMu.Lock()
		defer e.deliverMu.Unlock()
		for _, entry := range e.pending {
			yield(entry.msg.Label.Origin, entry.since)
		}
	})
}

func (e *PCCast) deliverLocked(out []message.Message, m message.Message) []message.Message {
	queue := append(e.cascade[:0], m)
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if !e.deliveredAdd(cur.Label) {
			continue
		}
		e.ins.delivered.Inc()
		e.trace.Record(telemetry.EventDeliver, e.self, cur.Label.Origin, cur.Label.Seq, 0)
		e.spans.Deliver(cur)
		out = append(out, cur)
		blocked, ok := e.waiting[cur.Label]
		if !ok {
			continue
		}
		delete(e.waiting, cur.Label)
		for _, bl := range blocked {
			entry, ok := e.pending[bl]
			if !ok {
				continue
			}
			delete(entry.missing, cur.Label)
			if e.spans != nil {
				e.spans.DepResolved(bl, cur.Label, time.Since(entry.since))
			}
			if len(entry.missing) == 0 {
				delete(e.pending, bl)
				e.ins.depWait.ObserveSince(entry.since)
				queue = append(queue, entry.msg)
			}
		}
	}
	clear(queue)
	e.cascade = queue[:0]
	return out
}

func (e *PCCast) pruneFetched(ready []message.Message) {
	e.retainMu.Lock()
	if len(e.lastFetch) != 0 {
		for i := range ready {
			delete(e.lastFetch, ready[i].Label)
		}
	}
	e.retainMu.Unlock()
}

// fetchLoop is the anti-entropy heartbeat: dependency fetches, adverts,
// stale-state pruning, and join-request retries for links stuck
// mid-establishment.
func (e *PCCast) fetchLoop() {
	defer e.wg.Done()
	interval := e.patience / 2
	if interval <= 0 {
		interval = e.patience
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case now := <-ticker.C:
			e.fetchMissing(now)
			e.advertise()
			e.pruneFetchState()
			e.repingLinks()
		}
	}
}

// repingLinks re-sends the join ping for every link whose establishment
// round-trip has not completed — including links to peers still marked
// down. Pinging a dead peer costs one dropped unicast per tick; pinging
// it the moment it returns is what re-establishes the link even when the
// failure detector's recovery signal (OnResync) never fires, e.g. a
// rejoin on a link that skipped nothing.
func (e *PCCast) repingLinks() {
	if e.closed.Load() {
		return
	}
	var stuck []string
	e.linkMu.Lock()
	for peer, ls := range e.links {
		if !ls.established {
			stuck = append(stuck, peer)
		}
	}
	e.linkMu.Unlock()
	for _, peer := range stuck {
		_ = e.conn.Send(peer, []byte{framePCCastJoinReq})
	}
}

func (e *PCCast) pruneFetchState() {
	e.retainMu.Lock()
	for l := range e.lastFetch {
		if e.deliveredHas(l) || !e.grp.Contains(RouteOrigin(l.Origin)) {
			delete(e.lastFetch, l)
		}
	}
	e.retainMu.Unlock()
}

func (e *PCCast) advertise() {
	if e.closed.Load() {
		return
	}
	e.retainMu.Lock()
	maxSeq := make(map[string]uint64)
	for l := range e.retained {
		if l.Seq > maxSeq[l.Origin] {
			maxSeq[l.Origin] = l.Seq
		}
	}
	e.retainMu.Unlock()
	e.deliveredMu.RLock()
	wm := e.delivered.Watermarks()
	e.deliveredMu.RUnlock()
	if len(maxSeq) == 0 && len(wm) == 0 {
		return
	}
	frame := encodeAdvertKind(framePCCastAdvert, maxSeq, wm)
	f := transport.StaticFrame(frame)
	_ = transport.Multicast(e.conn, e.others, f) // best effort; re-sent next tick
	f.Release()
}

func (e *PCCast) handleAdvert(from string, retained, watermarks map[string]uint64) {
	const maxFetchPerAdvert = 32
	now := time.Now()
	var candidates []message.Label
scan:
	for origin, maxSeq := range retained {
		for seq := e.deliveredWatermark(origin) + 1; seq <= maxSeq; seq++ {
			l := message.Label{Origin: origin, Seq: seq}
			if e.deliveredHas(l) || e.isPending(l) {
				continue
			}
			candidates = append(candidates, l)
			if len(candidates) >= maxFetchPerAdvert {
				break scan
			}
		}
	}
	var fetches []message.Label
	e.retainMu.Lock()
	for _, l := range candidates {
		if last, ok := e.lastFetch[l]; ok && now.Sub(last) < e.patience {
			continue
		}
		e.lastFetch[l] = now
		fetches = append(fetches, l)
		e.ins.fetches.Inc()
		e.trace.Record(telemetry.EventFetch, e.self, l.Origin, l.Seq, 0)
		e.flight.Fetch(l, from)
	}
	e.peerWM[from] = watermarks
	delete(e.down, from) // an advertising peer is evidently alive
	e.pruneStableLocked()
	e.retainMu.Unlock()
	for _, l := range fetches {
		frame := append([]byte{framePCCastFetch}, encodeLabel(nil, l)...)
		_ = e.conn.Send(from, frame) // best effort; retried next advert
	}
}

func (e *PCCast) deliveredWatermark(origin string) uint64 {
	e.deliveredMu.RLock()
	wm := e.delivered.Watermark(origin)
	e.deliveredMu.RUnlock()
	return wm
}

func (e *PCCast) isPending(l message.Label) bool {
	e.deliverMu.Lock()
	_, ok := e.pending[l]
	e.deliverMu.Unlock()
	return ok
}

// pruneStableLocked — see OSend.pruneStableLocked. Caller holds retainMu.
func (e *PCCast) pruneStableLocked() {
	for _, p := range e.others {
		if e.down[p] {
			continue
		}
		if _, ok := e.peerWM[p]; !ok {
			return // need evidence from every live peer before anything is stable
		}
	}
	for l := range e.retained {
		stable := true
		for _, p := range e.others {
			if e.down[p] {
				continue
			}
			wm, ok := e.peerWM[p]
			if !ok || wm[l.Origin] < l.Seq {
				stable = false
				break
			}
		}
		if stable {
			delete(e.retained, l)
			delete(e.lastFetch, l)
			e.ins.stablePruned.Inc()
		}
	}
	e.ins.retainedDepth.Set(int64(len(e.retained)))
}

func (e *PCCast) fetchMissing(now time.Time) {
	type fetch struct {
		to string
		l  message.Label
	}
	var candidates []fetch
	e.deliverMu.Lock()
	for _, entry := range e.pending {
		if now.Sub(entry.since) < e.patience {
			continue
		}
		for d := range entry.missing {
			to := RouteOrigin(d.Origin)
			if to == e.self || !e.grp.Contains(to) {
				continue
			}
			candidates = append(candidates, fetch{to: to, l: d})
		}
	}
	e.deliverMu.Unlock()
	var fetches []fetch
	e.retainMu.Lock()
	for _, c := range candidates {
		if last, ok := e.lastFetch[c.l]; ok && now.Sub(last) < e.patience {
			continue
		}
		if e.down[c.to] {
			if alt := e.altRouteLocked(c.to); alt != "" {
				c.to = alt
			}
		}
		e.lastFetch[c.l] = now
		fetches = append(fetches, c)
		e.ins.fetches.Inc()
		e.trace.Record(telemetry.EventFetch, e.self, c.l.Origin, c.l.Seq, 0)
		e.flight.Fetch(c.l, c.to)
	}
	e.retainMu.Unlock()
	for _, f := range fetches {
		frame := append([]byte{framePCCastFetch}, encodeLabel(nil, f.l)...)
		_ = e.conn.Send(f.to, frame) // best effort; retried next tick
	}
}

// altRouteLocked picks the next live peer in rotation, skipping avoid.
// Caller holds retainMu.
func (e *PCCast) altRouteLocked(avoid string) string {
	n := len(e.others)
	for i := 0; i < n; i++ {
		p := e.others[(e.fetchSpread+i)%n]
		if p != avoid && !e.down[p] {
			e.fetchSpread = (e.fetchSpread + i + 1) % n
			return p
		}
	}
	return ""
}

// serveFetch re-encodes a retained message under a Refill header: the
// copy bypasses this member's FIFO stream (it is a unicast answer, not a
// fan-out), so the receiver must not forward it and must order it by its
// OccursAfter predicate alone.
func (e *PCCast) serveFetch(requester string, l message.Label) {
	e.retainMu.Lock()
	m, ok := e.retained[l]
	e.retainMu.Unlock()
	if !ok {
		return
	}
	rh := message.PCHeader{Refill: true}
	f := transport.NewFrame(1 + rh.EncodedSize() + m.EncodedSize())
	f.B = append(f.B, framePCCastData)
	f.B = message.AppendPCHeader(f.B, rh)
	var err error
	f.B, err = m.AppendBinary(f.B)
	if err != nil {
		f.Release()
		return
	}
	_ = e.conn.Send(requester, f.B) // best effort
	f.Release()
}
