package causal

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// captureConn is a Conn without FrameSender support that records every
// payload slice handed to Send. Recv blocks until Close.
type captureConn struct {
	id string

	mu       sync.Mutex
	payloads [][]byte

	closed chan struct{}
	once   sync.Once
}

func newCaptureConn(id string) *captureConn {
	return &captureConn{id: id, closed: make(chan struct{})}
}

func (c *captureConn) LocalID() string { return c.id }

func (c *captureConn) Send(to string, payload []byte) error {
	c.mu.Lock()
	c.payloads = append(c.payloads, payload)
	c.mu.Unlock()
	return nil
}

func (c *captureConn) Recv() (transport.Envelope, error) {
	<-c.closed
	return transport.Envelope{}, transport.ErrClosed
}

func (c *captureConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *captureConn) sent() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.payloads...)
}

// TestOSendEncodeOnce pins the tentpole property: one Broadcast encodes
// the message exactly once no matter how many destinations it fans out
// to. The capture conn lacks FrameSender, so the engine goes through the
// Multicast fallback — if it encoded per peer, the recorded payloads
// would have distinct backing arrays.
func TestOSendEncodeOnce(t *testing.T) {
	for _, size := range []int{2, 4, 16} {
		t.Run(fmt.Sprintf("n=%d", size), func(t *testing.T) {
			ids := make([]string, size)
			for i := range ids {
				ids[i] = fmt.Sprintf("m%d", i)
			}
			grp := group.MustNew("g", ids)
			conn := newCaptureConn("m0")
			e, err := NewOSend(OSendConfig{
				Self: "m0", Group: grp, Conn: conn,
				Deliver: func(message.Message) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = e.Close() }()

			m := message.Message{
				Label: message.Label{Origin: "m0", Seq: 1},
				Kind:  message.KindCommutative,
				Op:    "inc",
				Body:  []byte("x"),
				// Pre-stamp so the engine keeps this value and the frame
				// matches MarshalBinary byte for byte.
				SentAt: 12345,
			}
			if err := e.Broadcast(m); err != nil {
				t.Fatal(err)
			}
			sent := conn.sent()
			if len(sent) != size-1 {
				t.Fatalf("sent %d frames, want %d", len(sent), size-1)
			}
			for i := 1; i < len(sent); i++ {
				if &sent[i][0] != &sent[0][0] {
					t.Fatalf("peer %d received a different encoding: broadcast was marshalled more than once", i)
				}
			}
			want, err := m.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if len(sent[0]) != 1+len(want) || sent[0][0] != frameOSendData {
				t.Fatalf("frame is %d bytes with tag %d, want %d bytes with tag %d",
					len(sent[0]), sent[0][0], 1+len(want), frameOSendData)
			}
		})
	}
}

// TestOSendLastFetchPrunedOnDelivery is the regression test for the
// unbounded lastFetch growth: once a fetched-for label is delivered, its
// rate-limit entry must go away.
func TestOSendLastFetchPrunedOnDelivery(t *testing.T) {
	grp := group.MustNew("g", []string{"a", "b"})
	conn := newCaptureConn("a")
	e, err := NewOSend(OSendConfig{
		Self: "a", Group: grp, Conn: conn,
		Deliver: func(message.Message) {}, Patience: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	m1 := message.Label{Origin: "b", Seq: 1}
	m2 := message.Message{
		Label: message.Label{Origin: "b", Seq: 2},
		Deps:  message.After(m1),
		Kind:  message.KindCommutative,
		Op:    "inc",
	}
	e.ingest(m2) // buffered: m1 missing
	// Simulate the fetch the patience timer would have issued for m1.
	e.retainMu.Lock()
	e.lastFetch[m1] = time.Now()
	e.retainMu.Unlock()
	if got := e.fetchBacklog(); got != 1 {
		t.Fatalf("fetch backlog = %d, want 1", got)
	}

	// The missing message arrives; both deliver, and the rate-limit entry
	// for m1 must be pruned with them.
	e.ingest(message.Message{Label: m1, Kind: message.KindCommutative, Op: "inc"})
	if !e.Delivered(m1) || !e.Delivered(m2.Label) {
		t.Fatal("cascade delivery failed")
	}
	if got := e.fetchBacklog(); got != 0 {
		t.Fatalf("fetch backlog after delivery = %d, want 0 (lastFetch leaks)", got)
	}
}

// TestOSendLastFetchPrunedWhenOriginLeaves checks the periodic sweep drops
// entries whose retransmission route is no longer a group member (the
// origin left), as well as entries for labels delivered through a path
// that bypassed pruneFetched.
func TestOSendLastFetchPrunedWhenOriginLeaves(t *testing.T) {
	grp := group.MustNew("g", []string{"a", "b"})
	conn := newCaptureConn("a")
	e, err := NewOSend(OSendConfig{
		Self: "a", Group: grp, Conn: conn,
		Deliver: func(message.Message) {}, Patience: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	delivered := message.Label{Origin: "b", Seq: 1}
	e.ingest(message.Message{Label: delivered, Kind: message.KindCommutative, Op: "inc"})

	e.retainMu.Lock()
	e.lastFetch[delivered] = time.Now()                                // already delivered
	e.lastFetch[message.Label{Origin: "ghost", Seq: 4}] = time.Now()   // origin not in group
	e.lastFetch[message.Label{Origin: "ghost~t", Seq: 9}] = time.Now() // layered origin, also gone
	live := message.Label{Origin: "b", Seq: 99}
	e.lastFetch[live] = time.Now() // still fetchable: must survive
	e.retainMu.Unlock()

	e.pruneFetchState()

	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	if len(e.lastFetch) != 1 {
		t.Fatalf("lastFetch has %d entries after sweep, want 1: %v", len(e.lastFetch), e.lastFetch)
	}
	if _, ok := e.lastFetch[live]; !ok {
		t.Fatal("sweep removed a live fetch entry")
	}
}

// TestOSendTelemetrySteadyStateAllocs pins the telemetry overhead budget:
// with a registry, a trace ring, and an observed transport all enabled, a
// steady-state broadcast (frame pooled, retained map not growing, every
// member delivering) must stay at 0 allocs/op. Counter increments, gauge
// stores, histogram observations, and ring records are all on the
// measured path.
func TestOSendTelemetrySteadyStateAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(1024)
	net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
	defer func() { _ = net.Close() }()
	ids := []string{"a", "b"}
	grp := group.MustNew("g", ids)

	var delivered atomic.Uint64
	engines := make([]*OSend, 0, len(ids))
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewOSend(OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver:   func(message.Message) { delivered.Add(1) },
			Telemetry: reg,
			Trace:     ring,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()

	lab := message.NewLabeler("a")
	send := func() {
		m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
		if err := engines[0].Broadcast(m); err != nil {
			t.Error(err)
			return
		}
		// Keep the retained map at steady size so the measurement sees the
		// long-run regime, not map growth.
		engines[0].ForgetRetained(m.Label)
		want := uint64(len(ids)) * lab.Last().Seq
		for delivered.Load() < want {
			runtime.Gosched() // AllocsPerRun pins GOMAXPROCS to 1
		}
	}
	for i := 0; i < 200; i++ {
		send() // warm the frame pool, decoder interning, and batch buffers
	}
	if n := testing.AllocsPerRun(500, send); n != 0 {
		t.Fatalf("telemetry-enabled broadcast = %.1f allocs/op, want 0", n)
	}
}

// TestOSendConcurrentBroadcastRecv drives several sender goroutines per
// engine while receive loops deliver concurrently, under a fault model
// with enough delay jitter to force buffering. Run with -race it covers
// the split-lock paths: Broadcast (retainMu) against ingest/deliver
// (deliverMu, deliveredMu) against metric and query readers.
func TestOSendConcurrentBroadcastRecv(t *testing.T) {
	const (
		members    = 4
		sendersPer = 3
		perSender  = 40
	)
	ids := make([]string, members)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%d", i)
	}
	net := transport.NewChanNet(transport.FaultModel{
		MaxDelay: 2 * time.Millisecond, Seed: 7,
	})
	defer func() { _ = net.Close() }()
	grp := group.MustNew("g", ids)

	var delivered atomic.Uint64
	engines := make([]*OSend, members)
	for i, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewOSend(OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver:  func(message.Message) { delivered.Add(1) },
			Patience: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()

	var wg sync.WaitGroup
	for i, e := range engines {
		for s := 0; s < sendersPer; s++ {
			wg.Add(1)
			go func(e *OSend, origin string) {
				defer wg.Done()
				var prev message.Label
				for seq := uint64(1); seq <= perSender; seq++ {
					m := message.Message{
						Label: message.Label{Origin: origin, Seq: seq},
						Deps:  message.After(prev), // chain: forces buffering under reordering
						Kind:  message.KindCommutative,
						Op:    "inc",
					}
					if err := e.Broadcast(m); err != nil {
						t.Errorf("broadcast %v: %v", m.Label, err)
						return
					}
					prev = m.Label
				}
			}(e, fmt.Sprintf("%s~s%d", ids[i], s))
		}
	}
	// Concurrent readers exercise the read-mostly paths while the storm
	// runs.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, e := range engines {
		readers.Add(1)
		go func(e *OSend) {
			defer readers.Done()
			probe := message.Label{Origin: ids[0] + "~s0", Seq: 1}
			for {
				select {
				case <-stop:
					return
				default:
					_ = e.Metrics()
					_ = e.Delivered(probe)
					time.Sleep(time.Millisecond)
				}
			}
		}(e)
	}
	wg.Wait()

	want := uint64(members) * sendersPer * perSender * members // every member delivers every message
	deadline := time.Now().Add(20 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			close(stop)
			readers.Wait()
			t.Fatalf("delivered %d of %d", delivered.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	readers.Wait()
}
