package causal

import (
	"testing"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/transport"
)

func TestAdvertCodecRoundTrip(t *testing.T) {
	tests := []struct {
		name       string
		retained   map[string]uint64
		watermarks map[string]uint64
	}{
		{"both empty", map[string]uint64{}, map[string]uint64{}},
		{"retained only", map[string]uint64{"a~cli": 7}, map[string]uint64{}},
		{"watermarks only", map[string]uint64{}, map[string]uint64{"b": 3}},
		{"both", map[string]uint64{"a": 1, "b~t": 9}, map[string]uint64{"a": 1, "c": 12}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frame := encodeAdvert(tt.retained, tt.watermarks)
			if frame[0] != frameOSendAdvert {
				t.Fatalf("frame tag = %d", frame[0])
			}
			retained, watermarks, err := decodeAdvert(frame[1:])
			if err != nil {
				t.Fatal(err)
			}
			if len(retained) != len(tt.retained) || len(watermarks) != len(tt.watermarks) {
				t.Fatalf("decoded %d/%d entries, want %d/%d",
					len(retained), len(watermarks), len(tt.retained), len(tt.watermarks))
			}
			for k, v := range tt.retained {
				if retained[k] != v {
					t.Errorf("retained[%q] = %d, want %d", k, retained[k], v)
				}
			}
			for k, v := range tt.watermarks {
				if watermarks[k] != v {
					t.Errorf("watermarks[%q] = %d, want %d", k, watermarks[k], v)
				}
			}
		})
	}
}

func TestAdvertDecodeErrors(t *testing.T) {
	valid := encodeAdvert(map[string]uint64{"abc": 5}, map[string]uint64{"d": 1})
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated first map", valid[1:3]},
		{"truncated second map", valid[1 : len(valid)-1]},
		{"trailing bytes", append(append([]byte{}, valid[1:]...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := decodeAdvert(tt.data); err == nil {
				t.Error("decode succeeded on malformed advert")
			}
		})
	}
}

func TestRouteOrigin(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"member", "member"},
		{"member~total", "member"},
		{"r2~cli", "r2"},
		{"a~b~c", "a"},
		{"~weird", ""},
		{"", ""},
	}
	for _, tt := range tests {
		if got := RouteOrigin(tt.in); got != tt.want {
			t.Errorf("RouteOrigin(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStabilityGarbageCollection(t *testing.T) {
	// With patience enabled, adverts flow; once every peer's watermark
	// covers the sender's messages, the retained copies must be pruned.
	net := transport.NewChanNet(transport.FaultModel{})
	c := newOSendCluster(t, []string{"a", "b", "c"}, net, 10*time.Millisecond)
	defer c.close(t)

	const count = 20
	for i := uint64(1); i <= count; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		c.cols[id].waitFor(t, count, 2*time.Second)
	}
	e, ok := c.bcs["a"].(*OSend)
	if !ok {
		t.Fatal("not an OSend engine")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := e.Metrics()
		if m.Retained == 0 && m.StablePruned == count {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retained not pruned: %+v", m)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStabilityGCStillServesUnstableFetches(t *testing.T) {
	// Two of three members deliver; the third is partitioned. Messages
	// must remain retained (not stable) so the partitioned member can
	// recover after healing.
	net := transport.NewChanNet(transport.FaultModel{})
	c := newOSendCluster(t, []string{"a", "b", "c"}, net, 10*time.Millisecond)
	defer c.close(t)

	net.Partition("a", "c", true)
	net.Partition("b", "c", true)
	const count = 5
	for i := uint64(1); i <= count; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	c.cols["b"].waitFor(t, count, 2*time.Second)
	time.Sleep(30 * time.Millisecond) // adverts circulate between a and b
	e, ok := c.bcs["a"].(*OSend)
	if !ok {
		t.Fatal("not an OSend engine")
	}
	if m := e.Metrics(); m.Retained != count {
		t.Fatalf("retained = %d during partition, want %d (c has not delivered)", m.Retained, count)
	}
	net.Heal()
	c.cols["c"].waitFor(t, count, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.Metrics().Retained == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retained not pruned after heal: %+v", e.Metrics())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
