package causal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

// collector records delivered messages at one member.
type collector struct {
	mu   sync.Mutex
	msgs []message.Message
}

func (c *collector) deliver(m message.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) snapshot() []message.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]message.Message(nil), c.msgs...)
}

// waitFor blocks until the collector holds n messages or the deadline
// passes, returning the snapshot either way.
func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) []message.Message {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		got := c.snapshot()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d deliveries, have %d: %v", n, len(got), got)
		}
		time.Sleep(time.Millisecond)
	}
}

func positions(msgs []message.Message) map[message.Label]int {
	pos := make(map[message.Label]int, len(msgs))
	for i, m := range msgs {
		pos[m.Label] = i
	}
	return pos
}

// cluster is a set of engines of one kind over a shared network.
type cluster struct {
	grp  *group.Group
	net  transport.Network
	cols map[string]*collector
	bcs  map[string]Broadcaster
}

func (c *cluster) close(t *testing.T) {
	t.Helper()
	for _, b := range c.bcs {
		if err := b.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
	_ = c.net.Close()
}

func newOSendCluster(t *testing.T, ids []string, net transport.Network, patience time.Duration) *cluster {
	t.Helper()
	grp := group.MustNew("g", ids)
	c := &cluster{grp: grp, net: net, cols: map[string]*collector{}, bcs: map[string]Broadcaster{}}
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		col := &collector{}
		e, err := NewOSend(OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: col.deliver, Patience: patience,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.cols[id] = col
		c.bcs[id] = e
	}
	return c
}

func newCBCastCluster(t *testing.T, ids []string, net transport.Network, patience time.Duration) *cluster {
	t.Helper()
	grp := group.MustNew("g", ids)
	c := &cluster{grp: grp, net: net, cols: map[string]*collector{}, bcs: map[string]Broadcaster{}}
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		col := &collector{}
		e, err := NewCBCast(CBCastConfig{
			Self: id, Group: grp, Conn: conn, Deliver: col.deliver, Patience: patience,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.cols[id] = col
		c.bcs[id] = e
	}
	return c
}

func TestOSendConfigValidation(t *testing.T) {
	grp := group.MustNew("g", []string{"a"})
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	conn, _ := net.Attach("a")
	cb := func(message.Message) {}
	tests := []struct {
		name string
		cfg  OSendConfig
	}{
		{"not a member", OSendConfig{Self: "x", Group: grp, Conn: conn, Deliver: cb}},
		{"nil group", OSendConfig{Self: "a", Conn: conn, Deliver: cb}},
		{"nil conn", OSendConfig{Self: "a", Group: grp, Deliver: cb}},
		{"nil deliver", OSendConfig{Self: "a", Group: grp, Conn: conn}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewOSend(tt.cfg); err == nil {
				t.Error("NewOSend accepted invalid config")
			}
		})
	}
}

func TestOSendSelfDelivery(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c := newOSendCluster(t, []string{"a", "b"}, net, 0)
	defer c.close(t)
	m := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
	if err := c.bcs["a"].Broadcast(m); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		got := c.cols[id].waitFor(t, 1, time.Second)
		if got[0].Label != m.Label {
			t.Errorf("member %s delivered %v", id, got[0].Label)
		}
	}
}

func TestOSendRespectsExplicitDependency(t *testing.T) {
	// b broadcasts m2 with OccursAfter(m1) before a's m1 is sent anywhere.
	// Every member must still deliver m1 before m2.
	net := transport.NewChanNet(transport.FaultModel{})
	c := newOSendCluster(t, []string{"a", "b", "c"}, net, 0)
	defer c.close(t)

	m1 := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindNonCommutative, Op: "w1"}
	m2 := message.Message{
		Label: message.Label{Origin: "b", Seq: 1},
		Deps:  message.After(m1.Label),
		Kind:  message.KindNonCommutative,
		Op:    "w2",
	}
	// Deliberately broadcast the dependent first.
	if err := c.bcs["b"].Broadcast(m2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let m2 spread and buffer everywhere
	if err := c.bcs["a"].Broadcast(m1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		got := c.cols[id].waitFor(t, 2, 2*time.Second)
		pos := positions(got)
		if pos[m1.Label] >= pos[m2.Label] {
			t.Errorf("member %s delivered %v before its dependency %v", id, m2.Label, m1.Label)
		}
	}
}

func TestOSendFigure2Scenario(t *testing.T) {
	// Figure 2: R(M) = mk -> ||{m1', m2'} -> mj'. All members must see mk
	// first and mj' last; m1'/m2' may interleave per member.
	net := transport.NewChanNet(transport.FaultModel{
		MinDelay: 0, MaxDelay: 3 * time.Millisecond, Seed: 11,
	})
	c := newOSendCluster(t, []string{"ai", "aj", "ak"}, net, 50*time.Millisecond)
	defer c.close(t)

	mk := message.Message{Label: message.Label{Origin: "ak", Seq: 1}, Kind: message.KindNonCommutative, Op: "mk"}
	m1 := message.Message{Label: message.Label{Origin: "ai", Seq: 1}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "m1'"}
	m2 := message.Message{Label: message.Label{Origin: "aj", Seq: 1}, Deps: message.After(mk.Label), Kind: message.KindCommutative, Op: "m2'"}
	mj := message.Message{Label: message.Label{Origin: "ai", Seq: 2}, Deps: message.After(m1.Label, m2.Label), Kind: message.KindNonCommutative, Op: "mj'"}

	if err := c.bcs["ak"].Broadcast(mk); err != nil {
		t.Fatal(err)
	}
	if err := c.bcs["ai"].Broadcast(m1); err != nil {
		t.Fatal(err)
	}
	if err := c.bcs["aj"].Broadcast(m2); err != nil {
		t.Fatal(err)
	}
	if err := c.bcs["ai"].Broadcast(mj); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"ai", "aj", "ak"} {
		got := c.cols[id].waitFor(t, 4, 2*time.Second)
		pos := positions(got)
		if pos[mk.Label] != 0 {
			t.Errorf("member %s: mk not first: %v", id, got)
		}
		if pos[mj.Label] != 3 {
			t.Errorf("member %s: mj' not last: %v", id, got)
		}
	}
}

func TestOSendConcurrentInterleavingsMayDiffer(t *testing.T) {
	// Concurrent messages are delivered in arrival order, which may differ
	// across members. With many rounds and random latency this should
	// produce at least one divergence — demonstrating the paper's point
	// that views agree only at synchronization points.
	net := transport.NewChanNet(transport.FaultModel{
		MinDelay: 0, MaxDelay: 4 * time.Millisecond, Seed: 3,
	})
	c := newOSendCluster(t, []string{"a", "b"}, net, 50*time.Millisecond)
	defer c.close(t)

	const rounds = 20
	for r := uint64(1); r <= rounds; r++ {
		ma := message.Message{Label: message.Label{Origin: "a", Seq: r}, Kind: message.KindCommutative, Op: "inc"}
		mb := message.Message{Label: message.Label{Origin: "b", Seq: r}, Kind: message.KindCommutative, Op: "dec"}
		if err := c.bcs["a"].Broadcast(ma); err != nil {
			t.Fatal(err)
		}
		if err := c.bcs["b"].Broadcast(mb); err != nil {
			t.Fatal(err)
		}
	}
	gotA := c.cols["a"].waitFor(t, 2*rounds, 2*time.Second)
	gotB := c.cols["b"].waitFor(t, 2*rounds, 2*time.Second)
	same := true
	for i := range gotA {
		if gotA[i].Label != gotB[i].Label {
			same = false
			break
		}
	}
	if same {
		t.Log("members happened to agree on interleaving (allowed but unexpected under reordering)")
	}
	// Both must have delivered the same *set*.
	setA, setB := positions(gotA), positions(gotB)
	if len(setA) != len(setB) {
		t.Fatalf("delivered sets differ in size: %d vs %d", len(setA), len(setB))
	}
	for l := range setA {
		if _, ok := setB[l]; !ok {
			t.Errorf("label %v delivered at a but not b", l)
		}
	}
}

func TestOSendDuplicateFramesIgnored(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{DupProb: 1.0, Seed: 5})
	c := newOSendCluster(t, []string{"a", "b"}, net, 0)
	defer c.close(t)
	for i := uint64(1); i <= 10; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	got := c.cols["b"].waitFor(t, 10, 2*time.Second)
	time.Sleep(20 * time.Millisecond) // allow duplicates to arrive
	got = c.cols["b"].snapshot()
	if len(got) != 10 {
		t.Fatalf("duplicates leaked: delivered %d, want 10", len(got))
	}
	e, ok := c.bcs["b"].(*OSend)
	if !ok {
		t.Fatal("not an OSend engine")
	}
	if m := e.Metrics(); m.Duplicates == 0 {
		t.Error("duplicate counter never incremented under DupProb=1")
	}
}

func TestOSendLossRecoveryViaFetch(t *testing.T) {
	// 30% loss; patience-driven fetch must recover every message.
	net := transport.NewChanNet(transport.FaultModel{
		DropProb: 0.3, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 99,
	})
	c := newOSendCluster(t, []string{"a", "b", "c"}, net, 15*time.Millisecond)
	defer c.close(t)

	var prev message.Label
	const count = 30
	for i := uint64(1); i <= count; i++ {
		m := message.Message{
			Label: message.Label{Origin: "a", Seq: i},
			Deps:  message.After(prev), // chain: forces gap detection
			Kind:  message.KindNonCommutative,
			Op:    "w",
		}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
		prev = m.Label
	}
	for _, id := range []string{"b", "c"} {
		got := c.cols[id].waitFor(t, count, 10*time.Second)
		for i := range got {
			if got[i].Label.Seq != uint64(i+1) {
				t.Fatalf("member %s: chain out of order at %d: %v", id, i, got[i].Label)
			}
		}
	}
	e, ok := c.bcs["b"].(*OSend)
	if !ok {
		t.Fatal("not an OSend engine")
	}
	if m := e.Metrics(); m.Fetches == 0 {
		t.Error("recovery happened without any fetches under 30% loss (suspicious)")
	}
}

func TestOSendBroadcastAfterClose(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c := newOSendCluster(t, []string{"a", "b"}, net, 0)
	e := c.bcs["a"]
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	m := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindRead, Op: "rd"}
	if err := e.Broadcast(m); err != ErrClosed {
		t.Errorf("Broadcast after Close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	_ = c.bcs["b"].Close()
	_ = net.Close()
}

func TestOSendDeliveredQuery(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c := newOSendCluster(t, []string{"a", "b"}, net, 0)
	defer c.close(t)
	e, ok := c.bcs["a"].(*OSend)
	if !ok {
		t.Fatal("not an OSend engine")
	}
	l := message.Label{Origin: "a", Seq: 1}
	if e.Delivered(l) {
		t.Error("label delivered before broadcast")
	}
	if err := e.Broadcast(message.Message{Label: l, Kind: message.KindCommutative, Op: "inc"}); err != nil {
		t.Fatal(err)
	}
	c.cols["a"].waitFor(t, 1, time.Second)
	if !e.Delivered(l) {
		t.Error("label not delivered after broadcast")
	}
}

func TestCBCastSelfAndRemoteDelivery(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c := newCBCastCluster(t, []string{"a", "b"}, net, 0)
	defer c.close(t)
	m := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
	if err := c.bcs["a"].Broadcast(m); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		got := c.cols[id].waitFor(t, 1, time.Second)
		if got[0].Label != m.Label {
			t.Errorf("member %s delivered %v", id, got[0].Label)
		}
	}
}

func TestCBCastCausalOrderAcrossSenders(t *testing.T) {
	// a sends m1; b delivers m1 then sends m2. Under CBCAST m1 -> m2 is
	// potential causality, so every member delivers m1 before m2 even when
	// the network reorders them.
	net := transport.NewChanNet(transport.FaultModel{
		MinDelay: 0, MaxDelay: 5 * time.Millisecond, Seed: 17,
	})
	c := newCBCastCluster(t, []string{"a", "b", "c"}, net, 50*time.Millisecond)
	defer c.close(t)

	m1 := message.Message{Label: message.Label{Origin: "a", Seq: 1}, Kind: message.KindNonCommutative, Op: "w1"}
	if err := c.bcs["a"].Broadcast(m1); err != nil {
		t.Fatal(err)
	}
	c.cols["b"].waitFor(t, 1, time.Second) // b has delivered m1
	m2 := message.Message{Label: message.Label{Origin: "b", Seq: 1}, Kind: message.KindNonCommutative, Op: "w2"}
	if err := c.bcs["b"].Broadcast(m2); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		got := c.cols[id].waitFor(t, 2, 2*time.Second)
		pos := positions(got)
		if pos[m1.Label] >= pos[m2.Label] {
			t.Errorf("member %s violated causal order: %v", id, got)
		}
	}
}

func TestCBCastFIFOFromEachSender(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{
		MinDelay: 0, MaxDelay: 4 * time.Millisecond, Seed: 23,
	})
	c := newCBCastCluster(t, []string{"a", "b"}, net, 50*time.Millisecond)
	defer c.close(t)
	const count = 25
	for i := uint64(1); i <= count; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	got := c.cols["b"].waitFor(t, count, 3*time.Second)
	for i := range got {
		if got[i].Label.Seq != uint64(i+1) {
			t.Fatalf("FIFO violated at %d: %v", i, got[i].Label)
		}
	}
}

func TestCBCastLossRecovery(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{
		DropProb: 0.25, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 31,
	})
	c := newCBCastCluster(t, []string{"a", "b"}, net, 15*time.Millisecond)
	defer c.close(t)
	const count = 30
	for i := uint64(1); i <= count; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	got := c.cols["b"].waitFor(t, count, 10*time.Second)
	if len(got) < count {
		t.Fatalf("recovered only %d of %d", len(got), count)
	}
}

func TestCBCastDuplicateSuppression(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{DupProb: 1.0, Seed: 41})
	c := newCBCastCluster(t, []string{"a", "b"}, net, 0)
	defer c.close(t)
	for i := uint64(1); i <= 10; i++ {
		m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
		if err := c.bcs["a"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	c.cols["b"].waitFor(t, 10, 2*time.Second)
	time.Sleep(20 * time.Millisecond)
	if got := c.cols["b"].snapshot(); len(got) != 10 {
		t.Fatalf("duplicates leaked: %d deliveries", len(got))
	}
}

func TestEnginesOverTCP(t *testing.T) {
	for _, engine := range []string{"osend", "cbcast"} {
		t.Run(engine, func(t *testing.T) {
			net := transport.NewTCPNet()
			var c *cluster
			if engine == "osend" {
				c = newOSendCluster(t, []string{"a", "b", "c"}, net, 0)
			} else {
				c = newCBCastCluster(t, []string{"a", "b", "c"}, net, 0)
			}
			defer c.close(t)
			const count = 10
			for i := uint64(1); i <= count; i++ {
				m := message.Message{Label: message.Label{Origin: "a", Seq: i}, Kind: message.KindCommutative, Op: "inc"}
				if err := c.bcs["a"].Broadcast(m); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range []string{"a", "b", "c"} {
				got := c.cols[id].waitFor(t, count, 5*time.Second)
				if len(got) != count {
					t.Errorf("member %s delivered %d", id, len(got))
				}
			}
		})
	}
}

func TestControlBytesComparison(t *testing.T) {
	// E7 sanity: with a large group, CBCAST's vector clock metadata should
	// exceed OSend's single-label dependency metadata per message.
	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	netO := transport.NewChanNet(transport.FaultModel{})
	co := newOSendCluster(t, ids, netO, 0)
	defer co.close(t)
	netC := transport.NewChanNet(transport.FaultModel{})
	cc := newCBCastCluster(t, ids, netC, 0)
	defer cc.close(t)

	// Everyone broadcasts once (fills every VC component), then m00 sends
	// a chain of 20 messages each depending on its predecessor.
	for _, id := range ids {
		m := message.Message{Label: message.Label{Origin: id, Seq: 1}, Kind: message.KindCommutative, Op: "inc"}
		if err := co.bcs[id].Broadcast(m); err != nil {
			t.Fatal(err)
		}
		if err := cc.bcs[id].Broadcast(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		co.cols[id].waitFor(t, len(ids), 3*time.Second)
		cc.cols[id].waitFor(t, len(ids), 3*time.Second)
	}
	prev := message.Label{Origin: "m00", Seq: 1}
	for i := uint64(2); i <= 21; i++ {
		m := message.Message{Label: message.Label{Origin: "m00", Seq: i}, Deps: message.After(prev), Kind: message.KindNonCommutative, Op: "w"}
		if err := co.bcs["m00"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
		if err := cc.bcs["m00"].Broadcast(m); err != nil {
			t.Fatal(err)
		}
		prev = m.Label
	}
	eo, ok := co.bcs["m00"].(*OSend)
	if !ok {
		t.Fatal("not OSend")
	}
	ec, ok := cc.bcs["m00"].(*CBCast)
	if !ok {
		t.Fatal("not CBCast")
	}
	osendBytes := eo.Metrics().ControlBytes
	cbcastBytes := ec.Metrics().ControlBytes
	if osendBytes >= cbcastBytes {
		t.Errorf("OSend control bytes %d not below CBCAST %d for 12-member group",
			osendBytes, cbcastBytes)
	}
}
