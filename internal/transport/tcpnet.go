package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"causalshare/internal/telemetry"
)

// TCPNet is a Network over real TCP loopback sockets. Every attached node
// runs a listener on 127.0.0.1; a shared registry maps ids to addresses.
// Frames are length-prefixed: [uvarint fromLen][from][uvarint bodyLen][body].
//
// TCPNet provides reliable FIFO per sender-receiver pair (TCP semantics),
// so it exhibits less reordering than ChanNet with faults; integration
// tests use it to prove the broadcast stack runs over actual sockets.
//
// With a positive FlushWindow each outbound peer gathers small frames in a
// write buffer that a per-peer flusher drains in one Write (a writev-style
// batch), trading up to one window of latency for far fewer syscalls under
// load. The default window of zero keeps every Send a synchronous single
// write.
type TCPNet struct {
	cfg    TCPConfig
	dice   *faultDice
	faulty bool
	ins    *netInstruments
	parts  *partitionSet
	mu     sync.Mutex
	nodes  map[string]*tcpConn
	closed bool
}

// TCPConfig tunes a TCPNet.
type TCPConfig struct {
	// FlushWindow is how long a peer writer may gather frames before
	// flushing them in one write. Zero (the default) makes every Send
	// write synchronously and report write errors directly; a positive
	// window batches, and write errors surface on a later Send to the
	// same peer.
	FlushWindow time.Duration

	// Faults injects drop/dup/delay at the send path, before any bytes hit
	// the socket, using the same FaultModel and dice as ChanNet. Delayed
	// and duplicated frames are re-sent on their own goroutines, so a
	// positive delay (or a duplicate) breaks TCP's per-pair FIFO ordering —
	// which is the point: it forces the causal layer to buffer.
	Faults FaultModel

	// Telemetry, when non-nil, registers the transport instruments there.
	Telemetry *telemetry.Registry
}

// flushBytes caps how much a peer buffer may gather before the sender
// flushes inline regardless of the window.
const flushBytes = 64 << 10

var _ Network = (*TCPNet)(nil)

// NewTCPNet constructs an empty TCP loopback network with synchronous
// (unbatched) writes.
func NewTCPNet() *TCPNet { return NewTCPNetWithConfig(TCPConfig{}) }

// NewTCPNetWithConfig constructs an empty TCP loopback network with the
// given tuning.
func NewTCPNetWithConfig(cfg TCPConfig) *TCPNet {
	return &TCPNet{
		cfg:    cfg,
		dice:   newFaultDice(cfg.Faults.Seed),
		faulty: cfg.Faults.active(),
		ins:    newNetInstruments(cfg.Telemetry),
		parts:  newPartitionSet(),
		nodes:  make(map[string]*tcpConn),
	}
}

// Partition blocks (or with block=false, heals) traffic between a and b in
// both directions. Frames already written to a socket are unaffected; the
// block is enforced on the send path, before any bytes hit the wire, so
// it works identically to ChanNet's for the chaos harness.
func (n *TCPNet) Partition(a, b string, block bool) { n.parts.set(a, b, block) }

// PartitionOneWay blocks (or heals) only the from→to direction (see
// ChanNet.PartitionOneWay).
func (n *TCPNet) PartitionOneWay(from, to string, block bool) {
	n.parts.setOneWay(from, to, block)
}

// Heal removes all partitions.
func (n *TCPNet) Heal() { n.parts.clear() }

// Isolate partitions id away from every currently attached peer (the
// chaos harness's crash model; see ChanNet.Isolate).
func (n *TCPNet) Isolate(id string) {
	for _, other := range n.IDs() {
		if other != id {
			n.parts.set(id, other, true)
		}
	}
}

// Restore removes every partition involving id, one-way blocks included.
func (n *TCPNet) Restore(id string) { n.parts.clearFor(id) }

// Attach implements Network: it starts a listener for id.
func (n *TCPNet) Attach(id string) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("transport: id %q already attached", id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q: %w", id, err)
	}
	c := &tcpConn{
		id:      id,
		net:     n,
		ln:      ln,
		box:     newMailbox(),
		peers:   make(map[string]*tcpPeer),
		inbound: make(map[net.Conn]struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	n.nodes[id] = c
	return c, nil
}

// IDs implements Network.
func (n *TCPNet) IDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// Close implements Network.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*tcpConn, 0, len(n.nodes))
	for _, c := range n.nodes {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

func (n *TCPNet) addrOf(id string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.nodes[id]
	if !ok {
		return "", false
	}
	return c.ln.Addr().String(), true
}

// tcpPeer is one outbound connection plus its gather buffer and flusher.
type tcpPeer struct {
	conn net.Conn
	ins  *netInstruments

	// writeMu serializes writes to conn; buffer swaps happen inside it so
	// chunk order equals write order (per-pair FIFO).
	writeMu sync.Mutex

	mu       sync.Mutex
	pending  []byte // frames gathered since the last flush
	nframes  int    // frames in pending (flush-window occupancy)
	spare    []byte // recycled buffer for the next gather
	err      error  // sticky asynchronous write error

	kick     chan struct{} // signals the flusher that pending is non-empty
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newTCPPeer(conn net.Conn, window time.Duration, ins *netInstruments) *tcpPeer {
	p := &tcpPeer{conn: conn, ins: ins}
	if window > 0 {
		p.kick = make(chan struct{}, 1)
		p.done = make(chan struct{})
		p.wg.Add(1)
		go p.flushLoop(window)
	}
	return p
}

// appendWireFrame appends one length-prefixed frame to buf.
func appendWireFrame(buf []byte, from string, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(from)))
	buf = append(buf, from...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// enqueue gathers one frame for the flusher. It reports whether the
// caller should flush inline because the buffer ran past flushBytes.
func (p *tcpPeer) enqueue(from string, payload []byte) (inline bool, err error) {
	p.mu.Lock()
	if p.err != nil {
		err = p.err
		p.mu.Unlock()
		return false, err
	}
	wasEmpty := len(p.pending) == 0
	p.pending = appendWireFrame(p.pending, from, payload)
	p.nframes++
	inline = len(p.pending) >= flushBytes
	p.mu.Unlock()
	if wasEmpty && !inline {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return inline, nil
}

// flush writes everything gathered so far in one Write call.
func (p *tcpPeer) flush() error {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	p.mu.Lock()
	buf := p.pending
	nframes := p.nframes
	p.pending = p.spare[:0]
	p.nframes = 0
	p.spare = nil
	p.mu.Unlock()
	if len(buf) == 0 {
		p.mu.Lock()
		if p.spare == nil {
			p.spare = buf
		}
		p.mu.Unlock()
		return nil
	}
	p.ins.flushes.Inc()
	p.ins.flushBytes.Observe(float64(len(buf)))
	p.ins.flushFrames.Observe(float64(nframes))
	_, err := p.conn.Write(buf)
	p.mu.Lock()
	p.spare = buf[:0]
	if err != nil && p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	return err
}

func (p *tcpPeer) flushLoop(window time.Duration) {
	defer p.wg.Done()
	timer := time.NewTimer(window)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-p.kick:
		case <-p.done:
			_ = p.flush()
			return
		}
		timer.Reset(window)
		select {
		case <-timer.C:
		case <-p.done:
			timer.Stop()
			_ = p.flush()
			return
		}
		_ = p.flush()
	}
}

// write sends one frame synchronously (no gather window), using a pooled
// buffer so the combined header+payload costs no allocation.
func (p *tcpPeer) write(from string, payload []byte) error {
	f := NewFrame(len(from) + len(payload) + 2*binary.MaxVarintLen64)
	f.B = appendWireFrame(f.B, from, payload)
	p.writeMu.Lock()
	_, err := p.conn.Write(f.B)
	p.writeMu.Unlock()
	f.Release()
	return err
}

func (p *tcpPeer) stop() {
	p.stopOnce.Do(func() {
		if p.done != nil {
			close(p.done)
			p.wg.Wait()
		}
		_ = p.conn.Close()
	})
}

// tcpConn is TCPNet's Conn.
type tcpConn struct {
	id  string
	net *TCPNet
	ln  net.Listener
	box *mailbox

	mu      sync.Mutex
	peers   map[string]*tcpPeer   // outbound connection cache
	inbound map[net.Conn]struct{} // accepted connections, closed on Close
	wg      sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

var (
	_ Conn        = (*tcpConn)(nil)
	_ FrameSender = (*tcpConn)(nil)
	_ BatchRecver = (*tcpConn)(nil)
	_ FIFOProber  = (*tcpConn)(nil)
)

func (c *tcpConn) LocalID() string { return c.id }

// FIFO implements FIFOProber: TCP gives per-pair FIFO natively, but any
// active fault model breaks it — delayed and duplicated frames are re-sent
// from their own timer goroutines, so even a constant injected delay races
// the direct write path. Only the fault-free config keeps TCP's promise.
func (c *tcpConn) FIFO() bool { return !c.net.faulty }

func (c *tcpConn) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		c.inbound[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(conn)
	}
}

func (c *tcpConn) readLoop(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		_ = conn.Close()
		c.mu.Lock()
		delete(c.inbound, conn)
		c.mu.Unlock()
	}()
	r := &byteReaderConn{conn: conn}
	for {
		from, err := readFrameString(r)
		if err != nil {
			return
		}
		body, err := readFrameBytes(r)
		if err != nil {
			return
		}
		if !c.box.put(Envelope{From: from, To: c.id, Payload: body}) {
			return
		}
		c.net.ins.framesDelivered.Inc()
	}
}

// sendOne routes one frame to a peer, rolling the fault dice first. A
// dropped frame succeeds silently (like a real network); duplicated and
// delayed frames are transmitted later from their own copies.
func (c *tcpConn) sendOne(to string, payload []byte) error {
	c.net.ins.framesSent.Inc()
	if c.net.parts.isBlocked(c.id, to) {
		c.net.ins.partitionDropped.Inc()
		return nil // partitions drop silently, like a real network
	}
	if c.net.faulty {
		drop, delay, dup, dupDelay := c.net.dice.roll(c.net.cfg.Faults, c.id, to)
		if drop {
			c.net.ins.faultDropped.Inc()
			return nil
		}
		if dup {
			c.net.ins.faultDuplicated.Inc()
			c.transmitCopyAfter(to, payload, dupDelay)
		}
		if delay > 0 {
			c.net.ins.faultDelayed.Inc()
			c.transmitCopyAfter(to, payload, delay)
			return nil
		}
	}
	return c.transmit(to, payload)
}

// transmitCopyAfter schedules an owned copy of payload for transmission
// after d. Errors on the deferred path are swallowed: from the causal
// layer's perspective the frame was simply lost, which the fault model
// already permits.
func (c *tcpConn) transmitCopyAfter(to string, payload []byte, d time.Duration) {
	body := make([]byte, len(payload))
	copy(body, payload)
	time.AfterFunc(d, func() { _ = c.transmit(to, body) })
}

// transmit pushes one frame to a peer through the configured write path.
func (c *tcpConn) transmit(to string, payload []byte) error {
	p, err := c.peer(to)
	if err != nil {
		return err
	}
	if c.net.cfg.FlushWindow <= 0 {
		if err := p.write(c.id, payload); err != nil {
			c.dropPeer(to, p)
			return fmt.Errorf("transport: write to %q: %w", to, err)
		}
		return nil
	}
	inline, err := p.enqueue(c.id, payload)
	if err != nil {
		c.dropPeer(to, p)
		return fmt.Errorf("transport: write to %q: %w", to, err)
	}
	if inline {
		if err := p.flush(); err != nil {
			c.dropPeer(to, p)
			return fmt.Errorf("transport: write to %q: %w", to, err)
		}
	}
	return nil
}

func (c *tcpConn) Send(to string, payload []byte) error {
	return c.sendOne(to, payload)
}

// SendFrame implements FrameSender. TCP cannot share user-space buffers
// with the kernel, but the frame is still encoded exactly once: each
// peer's copy goes straight into that peer's gather buffer (or a pooled
// write buffer), never through a per-destination re-encode.
// Best-effort fan-out: a dead peer's dial or write error must not sever
// the live ones; the first error is returned after all were attempted.
func (c *tcpConn) SendFrame(tos []string, f *Frame) error {
	var first error
	for _, to := range tos {
		if err := c.sendOne(to, f.B); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// dropPeer forces a re-dial on the next send after a write error.
func (c *tcpConn) dropPeer(to string, p *tcpPeer) {
	c.mu.Lock()
	if c.peers[to] == p {
		delete(c.peers, to)
	}
	c.mu.Unlock()
	p.stop()
}

func (c *tcpConn) peer(to string) (*tcpPeer, error) {
	c.mu.Lock()
	if p, ok := c.peers[to]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	addr, ok := c.net.addrOf(to)
	if !ok {
		return nil, &ErrUnknownPeer{ID: to}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", to, err)
	}
	c.mu.Lock()
	if existing, ok := c.peers[to]; ok {
		c.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	p := newTCPPeer(conn, c.net.cfg.FlushWindow, c.net.ins)
	c.peers[to] = p
	c.mu.Unlock()
	return p, nil
}

func (c *tcpConn) Recv() (Envelope, error) { return c.box.get() }

// RecvBatch implements BatchRecver.
func (c *tcpConn) RecvBatch(buf []Envelope) ([]Envelope, error) {
	envs, err := c.box.getBatch(buf)
	if err == nil {
		c.net.ins.recvBatch.Observe(float64(len(envs)))
	}
	return envs, err
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.ln.Close()
		c.mu.Lock()
		peers := make([]*tcpPeer, 0, len(c.peers))
		for _, p := range c.peers {
			peers = append(peers, p)
		}
		c.peers = make(map[string]*tcpPeer)
		// Closing accepted connections unblocks their readLoops; without
		// this, Close deadlocks whenever a peer that dialed us closes
		// after us.
		for conn := range c.inbound {
			_ = conn.Close()
		}
		c.mu.Unlock()
		for _, p := range peers {
			p.stop()
		}
		c.box.close()
		c.net.mu.Lock()
		delete(c.net.nodes, c.id)
		c.net.mu.Unlock()
		c.wg.Wait()
	})
	return c.closeErr
}

// byteReaderConn adapts a net.Conn to io.ByteReader for uvarint decoding
// while still allowing bulk reads.
type byteReaderConn struct {
	conn net.Conn
	one  [1]byte
}

func (b *byteReaderConn) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.conn, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteReaderConn) Read(p []byte) (int, error) { return b.conn.Read(p) }

func readFrameBytes(r *byteReaderConn) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxFrame = 16 << 20
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func readFrameString(r *byteReaderConn) (string, error) {
	b, err := readFrameBytes(r)
	return string(b), err
}
