package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNet is a Network over real TCP loopback sockets. Every attached node
// runs a listener on 127.0.0.1; a shared registry maps ids to addresses.
// Frames are length-prefixed: [uvarint fromLen][from][uvarint bodyLen][body].
//
// TCPNet provides reliable FIFO per sender-receiver pair (TCP semantics),
// so it exhibits less reordering than ChanNet with faults; integration
// tests use it to prove the broadcast stack runs over actual sockets.
type TCPNet struct {
	mu     sync.Mutex
	nodes  map[string]*tcpConn
	closed bool
}

var _ Network = (*TCPNet)(nil)

// NewTCPNet constructs an empty TCP loopback network.
func NewTCPNet() *TCPNet {
	return &TCPNet{nodes: make(map[string]*tcpConn)}
}

// Attach implements Network: it starts a listener for id.
func (n *TCPNet) Attach(id string) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("transport: id %q already attached", id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen for %q: %w", id, err)
	}
	c := &tcpConn{
		id:      id,
		net:     n,
		ln:      ln,
		box:     newMailbox(),
		peers:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	n.nodes[id] = c
	return c, nil
}

// IDs implements Network.
func (n *TCPNet) IDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// Close implements Network.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*tcpConn, 0, len(n.nodes))
	for _, c := range n.nodes {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

func (n *TCPNet) addrOf(id string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.nodes[id]
	if !ok {
		return "", false
	}
	return c.ln.Addr().String(), true
}

// tcpConn is TCPNet's Conn.
type tcpConn struct {
	id  string
	net *TCPNet
	ln  net.Listener
	box *mailbox

	mu      sync.Mutex
	peers   map[string]net.Conn   // outbound connection cache
	inbound map[net.Conn]struct{} // accepted connections, closed on Close
	wg      sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

var _ Conn = (*tcpConn)(nil)

func (c *tcpConn) LocalID() string { return c.id }

func (c *tcpConn) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		c.inbound[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(conn)
	}
}

func (c *tcpConn) readLoop(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		_ = conn.Close()
		c.mu.Lock()
		delete(c.inbound, conn)
		c.mu.Unlock()
	}()
	r := &byteReaderConn{conn: conn}
	for {
		from, err := readFrameString(r)
		if err != nil {
			return
		}
		body, err := readFrameBytes(r)
		if err != nil {
			return
		}
		if !c.box.put(Envelope{From: from, To: c.id, Payload: body}) {
			return
		}
	}
}

func (c *tcpConn) Send(to string, payload []byte) error {
	conn, err := c.peer(to)
	if err != nil {
		return err
	}
	frame := make([]byte, 0, len(c.id)+len(payload)+16)
	frame = binary.AppendUvarint(frame, uint64(len(c.id)))
	frame = append(frame, c.id...)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := conn.Write(frame); err != nil {
		delete(c.peers, to) // force re-dial next time
		return fmt.Errorf("transport: write to %q: %w", to, err)
	}
	return nil
}

func (c *tcpConn) peer(to string) (net.Conn, error) {
	c.mu.Lock()
	if conn, ok := c.peers[to]; ok {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	addr, ok := c.net.addrOf(to)
	if !ok {
		return nil, &ErrUnknownPeer{ID: to}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", to, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.peers[to]; ok {
		_ = conn.Close()
		return existing, nil
	}
	c.peers[to] = conn
	return conn, nil
}

func (c *tcpConn) Recv() (Envelope, error) { return c.box.get() }

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.ln.Close()
		c.mu.Lock()
		for _, conn := range c.peers {
			_ = conn.Close()
		}
		c.peers = make(map[string]net.Conn)
		// Closing accepted connections unblocks their readLoops; without
		// this, Close deadlocks whenever a peer that dialed us closes
		// after us.
		for conn := range c.inbound {
			_ = conn.Close()
		}
		c.mu.Unlock()
		c.box.close()
		c.net.mu.Lock()
		delete(c.net.nodes, c.id)
		c.net.mu.Unlock()
		c.wg.Wait()
	})
	return c.closeErr
}

// byteReaderConn adapts a net.Conn to io.ByteReader for uvarint decoding
// while still allowing bulk reads.
type byteReaderConn struct {
	conn net.Conn
	one  [1]byte
}

func (b *byteReaderConn) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.conn, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteReaderConn) Read(p []byte) (int, error) { return b.conn.Read(p) }

func readFrameBytes(r *byteReaderConn) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxFrame = 16 << 20
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func readFrameString(r *byteReaderConn) (string, error) {
	b, err := readFrameBytes(r)
	return string(b), err
}
