package transport

import (
	"sync"
	"sync/atomic"

	"causalshare/internal/telemetry"
)

// Frame is an immutable, reference-counted wire frame shared across a
// broadcast fan-out. The sending engine encodes a message once into a
// frame, hands the same frame to every destination via SendFrame /
// Multicast, and the last holder to Release it returns the buffer to a
// size-classed pool.
//
// Ownership rules (see DESIGN.md "Hot path & batching"):
//
//   - NewFrame returns a frame the caller owns with one reference. The
//     caller may append to B until the frame is first handed to a
//     transport; from then on the bytes are immutable.
//   - Every transport hop that queues the frame takes its own reference
//     (Retain) and releases it when its consumer is done; the sender
//     releases its construction reference after the fan-out.
//   - Receivers get the frame via Envelope and call Envelope.Release once
//     they no longer need Payload. Decoded messages must not alias the
//     frame (the message codec copies), so Release immediately after
//     decode is always safe.
//   - A frame that must live indefinitely (e.g. a retransmission cache)
//     is wrapped with StaticFrame, whose Release is a no-op.
//
// Forgetting a Release leaks nothing — the garbage collector still
// reclaims the buffer — it only forgoes reuse. A double Release is a
// bug: the buffer may be recycled while still referenced.
type Frame struct {
	// B is the frame's bytes. Append-build it before the first send;
	// treat it as read-only afterwards.
	B []byte

	refs   atomic.Int32
	pooled bool
}

// frameClasses are the pooled buffer capacities. Broadcast frames are
// dominated by small control and data messages, so the ladder starts low;
// anything above the top class is allocated directly and never pooled.
var frameClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

var framePools [len(frameClasses)]sync.Pool

// Pool reuse counters are process-wide package atomics (the pools are);
// RegisterPoolMetrics exposes them on a registry via snapshot-time reads.
var framePoolHits, framePoolMisses atomic.Uint64

// PoolStats reports how many NewFrame calls were served from a pool (hits)
// versus freshly allocated (misses, including oversize unpooled frames).
func PoolStats() (hits, misses uint64) {
	return framePoolHits.Load(), framePoolMisses.Load()
}

// RegisterPoolMetrics registers counters for the process-wide frame pool on
// reg. Values are read at snapshot time, so the frame hot path pays only
// its existing atomics.
func RegisterPoolMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("transport_frame_pool_hits_total",
		"Frames served from a size-classed pool.",
		func() uint64 { return framePoolHits.Load() })
	reg.CounterFunc("transport_frame_pool_misses_total",
		"Frames freshly allocated (pool empty or oversize).",
		func() uint64 { return framePoolMisses.Load() })
}

// classFor returns the pool index whose capacity fits n, or -1 if n
// exceeds the largest class.
func classFor(n int) int {
	for i, c := range frameClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// NewFrame returns a frame with zero length, capacity at least n, and one
// reference owned by the caller.
func NewFrame(n int) *Frame {
	ci := classFor(n)
	if ci < 0 {
		framePoolMisses.Add(1)
		f := &Frame{B: make([]byte, 0, n)}
		f.refs.Store(1)
		return f
	}
	if v := framePools[ci].Get(); v != nil {
		f, ok := v.(*Frame)
		if ok {
			framePoolHits.Add(1)
			f.B = f.B[:0]
			f.refs.Store(1)
			return f
		}
	}
	framePoolMisses.Add(1)
	f := &Frame{B: make([]byte, 0, frameClasses[ci]), pooled: true}
	f.refs.Store(1)
	return f
}

// StaticFrame wraps an existing byte slice in an unpooled frame whose
// Release never recycles the bytes. Use it to fan out buffers that outlive
// the send (retransmission caches).
func StaticFrame(b []byte) *Frame {
	f := &Frame{B: b}
	f.refs.Store(1)
	return f
}

// Retain adds a reference.
func (f *Frame) Retain() { f.refs.Add(1) }

// Release drops a reference; the last release returns a pooled frame's
// buffer for reuse. Calling Release on a nil frame is a no-op.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if f.refs.Add(-1) != 0 {
		return
	}
	if !f.pooled {
		return
	}
	ci := classFor(cap(f.B))
	if ci < 0 || cap(f.B) != frameClasses[ci] {
		return // foreign capacity; let the GC have it
	}
	framePools[ci].Put(f)
}

// FrameSender is implemented by connections that can fan one immutable
// frame out to many peers without re-encoding or per-peer copies.
type FrameSender interface {
	// SendFrame enqueues f's bytes to every named peer. The call takes
	// its own references; the caller keeps (and eventually releases) its
	// construction reference. The fan-out is best-effort: a peer that is
	// unknown or unreachable (crashed, partitioned) does not stop
	// delivery to the rest; the first per-peer error is returned after
	// every destination was attempted.
	SendFrame(tos []string, f *Frame) error
}

// Multicast sends f's bytes to every peer, sharing the frame when the
// connection supports it and falling back to per-peer Send (which copies)
// otherwise. Either way the message was encoded exactly once, by the
// caller. Multicast does not consume the caller's reference.
//
// The fan-out is best-effort: every destination is attempted even when
// some fail (a crashed member must not sever the survivors), and the
// first per-peer error is returned for accounting. The causal layer's
// anti-entropy recovers any loss to peers that come back.
func Multicast(c Conn, tos []string, f *Frame) error {
	if len(tos) == 0 {
		return nil
	}
	if fs, ok := c.(FrameSender); ok {
		return fs.SendFrame(tos, f)
	}
	var first error
	for _, to := range tos {
		if err := c.Send(to, f.B); err != nil && first == nil {
			first = err
		}
	}
	return first
}
