package transport

import "causalshare/internal/telemetry"

// netInstruments groups the transport-layer instruments. Built from a
// possibly-nil registry: every field is then a nil instrument whose
// methods are no-ops, so the send and delivery paths update them
// unconditionally without branching on "telemetry enabled".
type netInstruments struct {
	framesSent       *telemetry.Counter
	framesDelivered  *telemetry.Counter
	faultDropped     *telemetry.Counter
	faultDuplicated  *telemetry.Counter
	faultDelayed     *telemetry.Counter
	partitionDropped *telemetry.Counter
	recvBatch        *telemetry.Histogram
	flushes          *telemetry.Counter
	flushBytes       *telemetry.Histogram
	flushFrames      *telemetry.Histogram
}

func newNetInstruments(reg *telemetry.Registry) *netInstruments {
	return &netInstruments{
		framesSent: reg.Counter("transport_frames_sent_total",
			"Frames handed to the network send path (before fault injection)."),
		framesDelivered: reg.Counter("transport_frames_delivered_total",
			"Frames placed in a destination mailbox."),
		faultDropped: reg.Counter("transport_fault_dropped_total",
			"Frames discarded by the fault model's drop probability."),
		faultDuplicated: reg.Counter("transport_fault_duplicated_total",
			"Frames the fault model delivered twice."),
		faultDelayed: reg.Counter("transport_fault_delayed_total",
			"Primary frames given a positive fault-model delay."),
		partitionDropped: reg.Counter("transport_partition_dropped_total",
			"Frames discarded because the sender-receiver pair is partitioned."),
		recvBatch: reg.Histogram("transport_recv_batch_size",
			"Envelopes drained per RecvBatch call.", telemetry.CountBuckets),
		flushes: reg.Counter("transport_tcp_flushes_total",
			"Gather-buffer flushes on TCP peer connections."),
		flushBytes: reg.Histogram("transport_tcp_flush_bytes",
			"Bytes written per TCP gather-buffer flush.", telemetry.ByteBuckets),
		flushFrames: reg.Histogram("transport_tcp_flush_frames",
			"Frames coalesced per TCP gather-buffer flush (window occupancy).", telemetry.CountBuckets),
	}
}
