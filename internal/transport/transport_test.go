package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// networks returns a constructor per implementation so every contract test
// runs against both substrates.
func networks() map[string]func() Network {
	return map[string]func() Network{
		"chan": func() Network { return NewChanNet(FaultModel{}) },
		"tcp":  func() Network { return NewTCPNet() },
	}
}

func TestAttachAndIDs(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer func() { _ = n.Close() }()
			for _, id := range []string{"a", "b", "c"} {
				if _, err := n.Attach(id); err != nil {
					t.Fatalf("Attach(%q): %v", id, err)
				}
			}
			if got := len(n.IDs()); got != 3 {
				t.Errorf("IDs() returned %d ids, want 3", got)
			}
			if _, err := n.Attach("a"); err == nil {
				t.Error("duplicate Attach succeeded")
			}
		})
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer func() { _ = n.Close() }()
			a, err := n.Attach("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := n.Attach("b")
			if err != nil {
				t.Fatal(err)
			}
			want := []byte("hello shared data")
			if err := a.Send("b", want); err != nil {
				t.Fatalf("Send: %v", err)
			}
			env, err := b.Recv()
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if env.From != "a" || env.To != "b" || string(env.Payload) != string(want) {
				t.Errorf("got envelope %+v", env)
			}
		})
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer func() { _ = n.Close() }()
			a, err := n.Attach("a")
			if err != nil {
				t.Fatal(err)
			}
			err = a.Send("ghost", []byte("x"))
			var unknown *ErrUnknownPeer
			if err == nil {
				t.Fatal("Send to unknown peer succeeded")
			}
			if ok := asUnknownPeer(err, &unknown); !ok || unknown.ID != "ghost" {
				t.Errorf("error = %v, want ErrUnknownPeer{ghost}", err)
			}
		})
	}
}

func asUnknownPeer(err error, target **ErrUnknownPeer) bool {
	u, ok := err.(*ErrUnknownPeer)
	if ok {
		*target = u
	}
	return ok
}

func TestFIFOWithoutFaults(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer func() { _ = n.Close() }()
			a, err := n.Attach("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := n.Attach("b")
			if err != nil {
				t.Fatal(err)
			}
			const count = 200
			for i := 0; i < count; i++ {
				if err := a.Send("b", []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < count; i++ {
				env, err := b.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if string(env.Payload) != fmt.Sprintf("%d", i) {
					t.Fatalf("frame %d out of order: got %q", i, env.Payload)
				}
			}
		})
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer func() { _ = n.Close() }()
			a, err := n.Attach("a")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := a.Recv()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-done:
				if err != ErrClosed {
					t.Errorf("Recv error = %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock on Close")
			}
		})
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer func() { _ = n.Close() }()
			dst, err := n.Attach("dst")
			if err != nil {
				t.Fatal(err)
			}
			const senders, per = 8, 50
			conns := make([]Conn, senders)
			for i := range conns {
				conns[i], err = n.Attach(fmt.Sprintf("s%d", i))
				if err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for _, c := range conns {
				wg.Add(1)
				go func(c Conn) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						if err := c.Send("dst", []byte("m")); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			for i := 0; i < senders*per; i++ {
				if _, err := dst.Recv(); err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
			}
		})
	}
}

func TestChanNetDrop(t *testing.T) {
	n := NewChanNet(FaultModel{DropProb: 1.0, Seed: 7})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	if _, err := n.Attach("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s := n.Stats()
	if s.Dropped != 50 || s.Delivered != 0 {
		t.Errorf("Stats = %+v, want all 50 dropped", s)
	}
}

func TestChanNetDuplicate(t *testing.T) {
	n := NewChanNet(FaultModel{DupProb: 1.0, Seed: 7})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		env, err := b.Recv()
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if string(env.Payload) != "x" {
			t.Fatalf("copy %d payload %q", i, env.Payload)
		}
	}
	if s := n.Stats(); s.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", s.Duplicated)
	}
}

func TestChanNetPartition(t *testing.T) {
	n := NewChanNet(FaultModel{})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	n.Partition("a", "b", true)
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	n.Heal()
	if err := a.Send("b", []byte("found")); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "found" {
		t.Errorf("got %q through partition, want only post-heal frame", env.Payload)
	}
	if s := n.Stats(); s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestChanNetDelayedDeliveryReorders(t *testing.T) {
	// Deterministic seed; wide delay window guarantees some inversion
	// across 40 frames.
	n := NewChanNet(FaultModel{MinDelay: 0, MaxDelay: 20 * time.Millisecond, Seed: 42})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	const count = 40
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]int, 0, count)
	for i := 0; i < count; i++ {
		env, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, int(env.Payload[0]))
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("random-latency network produced no reordering; fault model inert")
	}
	seen := make(map[int]bool)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != count {
		t.Errorf("lost frames: delivered %d distinct of %d", len(seen), count)
	}
}

func TestChanNetDelayedCloseStopsDispatcher(t *testing.T) {
	n := NewChanNet(FaultModel{MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1})
	a, _ := n.Attach("a")
	if _, err := n.Attach("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = a.Send("b", []byte("x"))
	}
	done := make(chan struct{})
	go func() {
		_ = n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung with frames in flight")
	}
	if err := a.Send("b", []byte("x")); err != ErrClosed {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestChanNetPending(t *testing.T) {
	n := NewChanNet(FaultModel{})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	bConn, _ := n.Attach("b")
	b, ok := bConn.(*chanConn)
	if !ok {
		t.Fatal("Attach did not return *chanConn")
	}
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 5 {
		t.Errorf("Pending = %d, want 5", got)
	}
}

func TestTCPNetLargeFrame(t *testing.T) {
	n := NewTCPNet()
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := a.Send("b", big); err != nil {
		t.Fatal(err)
	}
	env, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Payload) != len(big) {
		t.Fatalf("payload length %d, want %d", len(env.Payload), len(big))
	}
	for i := range big {
		if env.Payload[i] != big[i] {
			t.Fatalf("payload corrupt at byte %d", i)
		}
	}
}

func TestSendPayloadNotAliased(t *testing.T) {
	n := NewChanNet(FaultModel{})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	env, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Payload) != "original" {
		t.Errorf("delivered payload %q aliased sender buffer", env.Payload)
	}
}
