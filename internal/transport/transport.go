// Package transport provides the network substrates the broadcast layers
// run on. The paper assumes a distributed-OS kernel communication facility;
// we substitute two interchangeable implementations behind one interface:
//
//   - ChanNet: an in-process network built on goroutines and channels with
//     a seeded fault model (latency, reordering, loss, duplication,
//     partitions). It exercises exactly the delivery-buffer logic a kernel
//     layer would, deterministically enough for tests.
//   - TCPNet: a real TCP loopback network with length-prefixed framing,
//     proving the stack runs over actual sockets.
//
// Deterministic discrete-event execution for benchmarks lives in package
// sim; this package is the *live* substrate used by examples and
// integration tests.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed network or connection.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an id that never attached.
type ErrUnknownPeer struct{ ID string }

func (e *ErrUnknownPeer) Error() string {
	return fmt.Sprintf("transport: unknown peer %q", e.ID)
}

// Envelope is one point-to-point frame: an opaque payload plus addressing.
type Envelope struct {
	From    string
	To      string
	Payload []byte
}

// Conn is one node's attachment to a network. Implementations are safe for
// concurrent use.
type Conn interface {
	// LocalID returns the id this connection was attached under.
	LocalID() string
	// Send enqueues a frame to the named peer. Delivery is asynchronous
	// and — depending on the fault model — may be delayed, reordered,
	// duplicated, or dropped. Send never blocks on the receiver.
	Send(to string, payload []byte) error
	// Recv blocks until a frame arrives or the connection closes, in
	// which case it returns ErrClosed.
	Recv() (Envelope, error)
	// Close detaches the node. Pending inbound frames are discarded.
	Close() error
}

// Network is a set of attachable endpoints.
type Network interface {
	// Attach registers id and returns its connection. Attaching the same
	// id twice is an error.
	Attach(id string) (Conn, error)
	// IDs returns the currently attached ids in unspecified order.
	IDs() []string
	// Close tears down the network and all connections.
	Close() error
}

// mailbox is an unbounded FIFO queue with blocking receive. Senders never
// block, so a slow receiver cannot stall the network dispatcher.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e Envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
	return true
}

func (m *mailbox) get() (Envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Envelope{}, ErrClosed
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, nil
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
