// Package transport provides the network substrates the broadcast layers
// run on. The paper assumes a distributed-OS kernel communication facility;
// we substitute two interchangeable implementations behind one interface:
//
//   - ChanNet: an in-process network built on goroutines and channels with
//     a seeded fault model (latency, reordering, loss, duplication,
//     partitions). It exercises exactly the delivery-buffer logic a kernel
//     layer would, deterministically enough for tests.
//   - TCPNet: a real TCP loopback network with length-prefixed framing,
//     proving the stack runs over actual sockets.
//
// Deterministic discrete-event execution for benchmarks lives in package
// sim; this package is the *live* substrate used by examples and
// integration tests.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed network or connection.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an id that never attached.
type ErrUnknownPeer struct{ ID string }

func (e *ErrUnknownPeer) Error() string {
	return fmt.Sprintf("transport: unknown peer %q", e.ID)
}

// Envelope is one point-to-point frame: an opaque payload plus addressing.
type Envelope struct {
	From    string
	To      string
	Payload []byte

	// frame, when non-nil, is the pooled broadcast frame backing Payload.
	// The receiver owns one reference and returns it with Release.
	frame *Frame
}

// Release returns the envelope's backing frame (if any) to its pool.
// Call it once Payload is no longer needed; decoded messages never alias
// the payload, so releasing right after decode is safe. Release is
// idempotent on the same Envelope value and a no-op for unpooled frames.
func (e *Envelope) Release() {
	if e.frame != nil {
		e.frame.Release()
		e.frame = nil
	}
}

// Conn is one node's attachment to a network. Implementations are safe for
// concurrent use.
type Conn interface {
	// LocalID returns the id this connection was attached under.
	LocalID() string
	// Send enqueues a frame to the named peer. Delivery is asynchronous
	// and — depending on the fault model — may be delayed, reordered,
	// duplicated, or dropped. Send never blocks on the receiver.
	Send(to string, payload []byte) error
	// Recv blocks until a frame arrives or the connection closes, in
	// which case it returns ErrClosed.
	Recv() (Envelope, error)
	// Close detaches the node. Pending inbound frames are discarded.
	Close() error
}

// FIFOProber is implemented by connections that can report whether they
// deliver reliable per-pair FIFO: every frame a sender passes to Send (or
// SendFrame) for one peer arrives at that peer exactly once, in send
// order. Layers whose correctness *depends* on link order — the PC-cast
// causal engine — probe this capability at construction and fail fast
// rather than silently misorder over a raw lossy conn. The probe describes
// the conn's configured behaviour, not a runtime guarantee against
// dynamic partitions; the reliability sublayer (reliable.Wrap) upgrades
// any conn to a truthful FIFO() == true.
type FIFOProber interface {
	// FIFO reports whether the connection preserves reliable per-pair
	// FIFO delivery order.
	FIFO() bool
}

// IsFIFO reports whether c advertises reliable per-pair FIFO delivery. A
// conn that does not implement FIFOProber makes no promise, so IsFIFO is
// conservative and returns false for it.
func IsFIFO(c Conn) bool {
	p, ok := c.(FIFOProber)
	return ok && p.FIFO()
}

// BatchRecver is implemented by connections that can drain every queued
// inbound frame in one call, amortizing wakeups and lock traffic across a
// burst. Receive loops should prefer it when available.
type BatchRecver interface {
	// RecvBatch blocks until at least one frame is available (or the
	// connection closes, returning ErrClosed), then returns all queued
	// frames appended to buf[:0]. The returned slice is only valid until
	// the next RecvBatch call with the same buf.
	RecvBatch(buf []Envelope) ([]Envelope, error)
}

// Network is a set of attachable endpoints.
type Network interface {
	// Attach registers id and returns its connection. Attaching the same
	// id twice is an error.
	Attach(id string) (Conn, error)
	// IDs returns the currently attached ids in unspecified order.
	IDs() []string
	// Close tears down the network and all connections.
	Close() error
}

// mailbox is an unbounded FIFO queue with blocking receive. Senders never
// block, so a slow receiver cannot stall the network dispatcher. The queue
// is head-indexed so steady-state traffic cycles through one backing array
// instead of reallocating as the slice head advances.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Envelope
	head   int
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e Envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, e)
	m.cond.Signal()
	return true
}

// putAll enqueues a batch under one lock acquisition, signalling once.
func (m *mailbox) putAll(envs []Envelope) bool {
	if len(envs) == 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, envs...)
	m.cond.Signal()
	return true
}

// resetLocked recycles the backing array once the queue drains. Consumed
// slots are zeroed so the mailbox does not pin released frames.
func (m *mailbox) resetLocked() {
	if m.head == len(m.queue) {
		clear(m.queue)
		m.queue = m.queue[:0]
		m.head = 0
	}
}

func (m *mailbox) get() (Envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.queue) {
		return Envelope{}, ErrClosed
	}
	e := m.queue[m.head]
	m.queue[m.head] = Envelope{}
	m.head++
	m.resetLocked()
	return e, nil
}

// getBatch blocks for at least one frame, then drains the whole queue into
// buf[:0] in one lock acquisition.
func (m *mailbox) getBatch(buf []Envelope) ([]Envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.queue) {
		return nil, ErrClosed
	}
	buf = append(buf[:0], m.queue[m.head:]...)
	m.head = len(m.queue)
	m.resetLocked()
	return buf, nil
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for i := m.head; i < len(m.queue); i++ {
		m.queue[i].Release()
	}
	m.queue = nil
	m.head = 0
	m.cond.Broadcast()
}

func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) - m.head
}
