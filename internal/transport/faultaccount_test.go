package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"causalshare/internal/telemetry"
)

// replayFaults re-rolls the fault dice with the same seed the network will
// use and returns the exact expected drop/dup/delay counts for n sends
// issued by a single sequential sender on the a→b direction.
func replayFaults(m FaultModel, n int) (drops, dups, delayed uint64) {
	d := newFaultDice(m.Seed)
	for i := 0; i < n; i++ {
		drop, delay, dup, _ := d.roll(m, "a", "b")
		if drop {
			drops++
			continue
		}
		if dup {
			dups++
		}
		if delay > 0 {
			delayed++
		}
	}
	return
}

func checkFaultCounters(t *testing.T, reg *telemetry.Registry, sent, drops, dups, delayed uint64) {
	t.Helper()
	s := reg.Snapshot()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"transport_frames_sent_total", sent},
		{"transport_fault_dropped_total", drops},
		{"transport_fault_duplicated_total", dups},
		{"transport_fault_delayed_total", delayed},
		{"transport_frames_delivered_total", sent - drops + dups},
	} {
		if got := s.Get(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

// waitForCount polls until counter reaches want and stays there, or fails.
func waitForCount(t *testing.T, counter *atomic.Uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for counter.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d frames, want %d", counter.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // grace: catch spurious extras
	if got := counter.Load(); got != want {
		t.Fatalf("received %d frames, want exactly %d", got, want)
	}
}

var faultAccountModel = FaultModel{
	MinDelay: 0,
	MaxDelay: 2 * time.Millisecond,
	DropProb: 0.2,
	DupProb:  0.15,
	Seed:     42,
}

// TestFaultAccountingChanNet asserts the telemetry counters report the
// injected faults exactly: a sequential sender makes the dice rolls
// deterministic, so an independent replay predicts every count.
func TestFaultAccountingChanNet(t *testing.T) {
	const n = 400
	drops, dups, delayed := replayFaults(faultAccountModel, n)

	reg := telemetry.NewRegistry()
	net := NewChanNetObserved(faultAccountModel, reg)
	defer func() { _ = net.Close() }()
	sender, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	recver, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}

	var received atomic.Uint64
	go func() {
		for {
			env, err := recver.Recv()
			if err != nil {
				return
			}
			env.Release()
			received.Add(1)
		}
	}()

	payload := []byte("frame")
	for i := 0; i < n; i++ {
		if err := sender.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &received, n-drops+dups)
	checkFaultCounters(t, reg, n, drops, dups, delayed)
}

// TestFaultAccountingTCPNet is the same exact-count assertion over real
// loopback sockets, exercising the TCP send-path fault injection.
func TestFaultAccountingTCPNet(t *testing.T) {
	const n = 400
	drops, dups, delayed := replayFaults(faultAccountModel, n)

	reg := telemetry.NewRegistry()
	net := NewTCPNetWithConfig(TCPConfig{Faults: faultAccountModel, Telemetry: reg})
	defer func() { _ = net.Close() }()
	sender, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	recver, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}

	var received atomic.Uint64
	go func() {
		for {
			env, err := recver.Recv()
			if err != nil {
				return
			}
			env.Release()
			received.Add(1)
		}
	}()

	payload := []byte("frame")
	for i := 0; i < n; i++ {
		if err := sender.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &received, n-drops+dups)
	checkFaultCounters(t, reg, n, drops, dups, delayed)
}

func TestFramePoolStats(t *testing.T) {
	h0, m0 := PoolStats()
	f := NewFrame(128)
	f.Release()
	g := NewFrame(128)
	g.Release()
	h1, m1 := PoolStats()
	if h1+m1 <= h0+m0 {
		t.Fatalf("pool counters did not advance: %d+%d -> %d+%d", h0, m0, h1, m1)
	}
	reg := telemetry.NewRegistry()
	RegisterPoolMetrics(reg)
	s := reg.Snapshot()
	if got := s.Get("transport_frame_pool_hits_total"); got < h1 {
		t.Fatalf("registered pool hits %d below PoolStats value %d", got, h1)
	}
}

// TestFaultDiceDupStreamIsolation is the regression test for the derived
// duplicate seed stream: toggling DupProb must not perturb the drop/delay
// fate of any frame, so chaos seeds stay stable across fault-model tweaks.
func TestFaultDiceDupStreamIsolation(t *testing.T) {
	base := FaultModel{MaxDelay: 2 * time.Millisecond, DropProb: 0.2, Seed: 7}
	withDup := base
	withDup.DupProb = 0.5

	const n = 2000
	d0 := newFaultDice(base.Seed)
	d1 := newFaultDice(withDup.Seed)
	var dups uint64
	for i := 0; i < n; i++ {
		drop0, delay0, _, _ := d0.roll(base, "a", "b")
		drop1, delay1, dup, _ := d1.roll(withDup, "a", "b")
		if drop0 != drop1 || delay0 != delay1 {
			t.Fatalf("frame %d: fate diverged with DupProb on: drop %v/%v delay %v/%v",
				i, drop0, drop1, delay0, delay1)
		}
		if dup {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("DupProb=0.5 produced no duplicates in 2000 rolls")
	}
}

var burstAccountModel = FaultModel{
	DropProb:  0.02,
	BurstProb: 0.05,
	BurstHeal: 0.3,
	BurstDrop: 0.9,
	Seed:      42,
}

// TestFaultAccountingBurstChanNet mirrors TestFaultAccountingChanNet for
// the Gilbert–Elliott burst model: the replay predicts every counter, and
// the predicted drop pattern must actually cluster (a run of consecutive
// drops longer than independent loss at the same rate plausibly yields).
func TestFaultAccountingBurstChanNet(t *testing.T) {
	const n = 400
	drops, dups, delayed := replayFaults(burstAccountModel, n)
	if drops == 0 {
		t.Fatal("burst model dropped nothing in replay; test is vacuous")
	}

	// Clustering check on the deterministic replay: longest drop run.
	d := newFaultDice(burstAccountModel.Seed)
	run, maxRun := 0, 0
	for i := 0; i < n; i++ {
		drop, _, _, _ := d.roll(burstAccountModel, "a", "b")
		if drop {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 3 {
		t.Fatalf("longest drop run %d; Gilbert–Elliott chain should produce bursts", maxRun)
	}

	reg := telemetry.NewRegistry()
	net := NewChanNetObserved(burstAccountModel, reg)
	defer func() { _ = net.Close() }()
	sender, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	recver, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	var received atomic.Uint64
	go func() {
		for {
			env, err := recver.Recv()
			if err != nil {
				return
			}
			env.Release()
			received.Add(1)
		}
	}()
	for i := 0; i < n; i++ {
		if err := sender.Send("b", []byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &received, n-drops+dups)
	checkFaultCounters(t, reg, n, drops, dups, delayed)
}

// TestFaultAccountingBurstTCPNet runs the same burst accounting over real
// loopback sockets.
func TestFaultAccountingBurstTCPNet(t *testing.T) {
	const n = 400
	drops, dups, delayed := replayFaults(burstAccountModel, n)

	reg := telemetry.NewRegistry()
	net := NewTCPNetWithConfig(TCPConfig{Faults: burstAccountModel, Telemetry: reg})
	defer func() { _ = net.Close() }()
	sender, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	recver, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	var received atomic.Uint64
	go func() {
		for {
			env, err := recver.Recv()
			if err != nil {
				return
			}
			env.Release()
			received.Add(1)
		}
	}()
	for i := 0; i < n; i++ {
		if err := sender.Send("b", []byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &received, n-drops+dups)
	checkFaultCounters(t, reg, n, drops, dups, delayed)
}

// TestFaultAccountingOneWayDrop asserts per-direction drop overrides: the
// a→b direction loses everything while b→a is untouched, the asymmetric
// loss a one-way routing failure produces.
func TestFaultAccountingOneWayDrop(t *testing.T) {
	m := FaultModel{
		DropLink: map[Link]float64{{From: "a", To: "b"}: 1},
		Seed:     42,
	}
	reg := telemetry.NewRegistry()
	net := NewChanNetObserved(m, reg)
	defer func() { _ = net.Close() }()
	ca, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	var atA atomic.Uint64
	go func() {
		for {
			env, err := ca.Recv()
			if err != nil {
				return
			}
			env.Release()
			atA.Add(1)
		}
	}()
	const n = 50
	for i := 0; i < n; i++ {
		if err := ca.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := cb.Send("a", []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &atA, n)
	if got := cb.(*chanConn).Pending(); got != 0 {
		t.Fatalf("b received %d frames through a fully lossy a→b link", got)
	}
	if got := reg.Snapshot().Get("transport_fault_dropped_total"); got != n {
		t.Fatalf("dropped counter = %d, want %d", got, n)
	}
}

// TestPartitionOneWay proves directional partitions block exactly one
// direction and that Restore clears them.
func TestPartitionOneWay(t *testing.T) {
	for _, kind := range []string{"chan", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			var net Network
			var oneWay func(from, to string, block bool)
			var restore func(id string)
			switch kind {
			case "chan":
				n := NewChanNet(FaultModel{})
				net, oneWay, restore = n, n.PartitionOneWay, n.Restore
			default:
				n := NewTCPNet()
				net, oneWay, restore = n, n.PartitionOneWay, n.Restore
			}
			defer func() { _ = net.Close() }()
			ca, err := net.Attach("a")
			if err != nil {
				t.Fatal(err)
			}
			cb, err := net.Attach("b")
			if err != nil {
				t.Fatal(err)
			}
			var atA, atB atomic.Uint64
			drain := func(c Conn, ctr *atomic.Uint64) {
				for {
					env, err := c.Recv()
					if err != nil {
						return
					}
					env.Release()
					ctr.Add(1)
				}
			}
			go drain(ca, &atA)
			go drain(cb, &atB)

			oneWay("a", "b", true)
			if err := ca.Send("b", []byte("lost")); err != nil {
				t.Fatal(err)
			}
			if err := cb.Send("a", []byte("arrives")); err != nil {
				t.Fatal(err)
			}
			waitForCount(t, &atA, 1)
			if got := atB.Load(); got != 0 {
				t.Fatalf("b received %d frames through a blocked a→b direction", got)
			}

			restore("a")
			if err := ca.Send("b", []byte("healed")); err != nil {
				t.Fatal(err)
			}
			waitForCount(t, &atB, 1)
		})
	}
}
