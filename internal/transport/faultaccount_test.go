package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"causalshare/internal/telemetry"
)

// replayFaults re-rolls the fault dice with the same seed the network will
// use and returns the exact expected drop/dup/delay counts for n sends
// issued by a single sequential sender.
func replayFaults(m FaultModel, n int) (drops, dups, delayed uint64) {
	d := newFaultDice(m.Seed)
	for i := 0; i < n; i++ {
		drop, delay, dup, _ := d.roll(m)
		if drop {
			drops++
			continue
		}
		if dup {
			dups++
		}
		if delay > 0 {
			delayed++
		}
	}
	return
}

func checkFaultCounters(t *testing.T, reg *telemetry.Registry, sent, drops, dups, delayed uint64) {
	t.Helper()
	s := reg.Snapshot()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"transport_frames_sent_total", sent},
		{"transport_fault_dropped_total", drops},
		{"transport_fault_duplicated_total", dups},
		{"transport_fault_delayed_total", delayed},
		{"transport_frames_delivered_total", sent - drops + dups},
	} {
		if got := s.Get(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

// waitForCount polls until counter reaches want and stays there, or fails.
func waitForCount(t *testing.T, counter *atomic.Uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for counter.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d frames, want %d", counter.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // grace: catch spurious extras
	if got := counter.Load(); got != want {
		t.Fatalf("received %d frames, want exactly %d", got, want)
	}
}

var faultAccountModel = FaultModel{
	MinDelay: 0,
	MaxDelay: 2 * time.Millisecond,
	DropProb: 0.2,
	DupProb:  0.15,
	Seed:     42,
}

// TestFaultAccountingChanNet asserts the telemetry counters report the
// injected faults exactly: a sequential sender makes the dice rolls
// deterministic, so an independent replay predicts every count.
func TestFaultAccountingChanNet(t *testing.T) {
	const n = 400
	drops, dups, delayed := replayFaults(faultAccountModel, n)

	reg := telemetry.NewRegistry()
	net := NewChanNetObserved(faultAccountModel, reg)
	defer func() { _ = net.Close() }()
	sender, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	recver, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}

	var received atomic.Uint64
	go func() {
		for {
			env, err := recver.Recv()
			if err != nil {
				return
			}
			env.Release()
			received.Add(1)
		}
	}()

	payload := []byte("frame")
	for i := 0; i < n; i++ {
		if err := sender.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &received, n-drops+dups)
	checkFaultCounters(t, reg, n, drops, dups, delayed)
}

// TestFaultAccountingTCPNet is the same exact-count assertion over real
// loopback sockets, exercising the TCP send-path fault injection.
func TestFaultAccountingTCPNet(t *testing.T) {
	const n = 400
	drops, dups, delayed := replayFaults(faultAccountModel, n)

	reg := telemetry.NewRegistry()
	net := NewTCPNetWithConfig(TCPConfig{Faults: faultAccountModel, Telemetry: reg})
	defer func() { _ = net.Close() }()
	sender, err := net.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	recver, err := net.Attach("b")
	if err != nil {
		t.Fatal(err)
	}

	var received atomic.Uint64
	go func() {
		for {
			env, err := recver.Recv()
			if err != nil {
				return
			}
			env.Release()
			received.Add(1)
		}
	}()

	payload := []byte("frame")
	for i := 0; i < n; i++ {
		if err := sender.Send("b", payload); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, &received, n-drops+dups)
	checkFaultCounters(t, reg, n, drops, dups, delayed)
}

func TestFramePoolStats(t *testing.T) {
	h0, m0 := PoolStats()
	f := NewFrame(128)
	f.Release()
	g := NewFrame(128)
	g.Release()
	h1, m1 := PoolStats()
	if h1+m1 <= h0+m0 {
		t.Fatalf("pool counters did not advance: %d+%d -> %d+%d", h0, m0, h1, m1)
	}
	reg := telemetry.NewRegistry()
	RegisterPoolMetrics(reg)
	s := reg.Snapshot()
	if got := s.Get("transport_frame_pool_hits_total"); got < h1 {
		t.Fatalf("registered pool hits %d below PoolStats value %d", got, h1)
	}
}
