package transport

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"causalshare/internal/telemetry"
)

// Stats counts frame-level events, for the overhead experiments.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
}

// ChanNet is an in-process Network built on goroutines and channels.
// Destinations are fully independent: each connection owns its mailbox
// and, when the fault model delays frames, its own delay scheduler. A
// scheduler releases every due frame in one batch, so a burst of ready
// deliveries costs one mailbox lock and one receiver wakeup instead of
// one of each per frame. There is no global dispatch goroutine and no
// cross-destination lock on the send path: senders resolve the
// destination through an atomic snapshot of the attachment table.
type ChanNet struct {
	faults FaultModel
	dice   *faultDice
	parts  *partitionSet
	ins    *netInstruments

	mu     sync.Mutex // guards attach/detach mutations
	conns  map[string]*chanConn
	snap   atomic.Value // map[string]*chanConn, read by senders
	closed atomic.Bool

	sent, delivered, dropped, duplicated atomic.Uint64
}

var _ Network = (*ChanNet)(nil)

// NewChanNet constructs a network with the given fault model. A zero
// FaultModel yields instant lossless delivery.
func NewChanNet(faults FaultModel) *ChanNet {
	return NewChanNetObserved(faults, nil)
}

// NewChanNetObserved is NewChanNet with transport instruments registered on
// reg. A nil registry yields no-op instruments and an identical hot path.
func NewChanNetObserved(faults FaultModel, reg *telemetry.Registry) *ChanNet {
	n := &ChanNet{
		faults: faults,
		dice:   newFaultDice(faults.Seed),
		parts:  newPartitionSet(),
		ins:    newNetInstruments(reg),
		conns:  make(map[string]*chanConn),
	}
	n.snap.Store(map[string]*chanConn{})
	return n
}

func (n *ChanNet) delayed() bool {
	return n.faults.MinDelay > 0 || n.faults.MaxDelay > 0
}

// publishLocked refreshes the sender-visible attachment snapshot. Caller
// holds n.mu.
func (n *ChanNet) publishLocked() {
	m := make(map[string]*chanConn, len(n.conns))
	for id, c := range n.conns {
		m[id] = c
	}
	n.snap.Store(m)
}

// lookup resolves a destination without locking.
func (n *ChanNet) lookup(id string) (*chanConn, bool) {
	m, ok := n.snap.Load().(map[string]*chanConn)
	if !ok {
		return nil, false
	}
	c, ok := m[id]
	return c, ok
}

// Attach implements Network.
func (n *ChanNet) Attach(id string) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if _, dup := n.conns[id]; dup {
		return nil, fmt.Errorf("transport: id %q already attached", id)
	}
	c := &chanConn{id: id, net: n, box: newMailbox()}
	if n.delayed() {
		c.sched = newDestSched(c)
	}
	n.conns[id] = c
	n.publishLocked()
	return c, nil
}

// IDs implements Network.
func (n *ChanNet) IDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.conns))
	for id := range n.conns {
		out = append(out, id)
	}
	return out
}

// Partition blocks (or with block=false, heals) traffic between a and b in
// both directions. Frames in flight are unaffected.
func (n *ChanNet) Partition(a, b string, block bool) { n.parts.set(a, b, block) }

// PartitionOneWay blocks (or heals) only the from→to direction, modelling
// asymmetric routing failures: from's frames vanish while to's still
// arrive, so acks flow one way and data the other.
func (n *ChanNet) PartitionOneWay(from, to string, block bool) {
	n.parts.setOneWay(from, to, block)
}

// Heal removes all partitions.
func (n *ChanNet) Heal() { n.parts.clear() }

// Isolate partitions id away from every currently attached peer — the
// chaos harness's crash model: the process keeps running (its state and
// conn survive) but no frame crosses in either direction, exactly what a
// crashed or fully partitioned member looks like to the rest.
func (n *ChanNet) Isolate(id string) {
	for _, other := range n.IDs() {
		if other != id {
			n.parts.set(id, other, true)
		}
	}
}

// Restore removes every partition involving id (rejoin/heal of one
// member), one-way blocks included, without touching partitions between
// other pairs.
func (n *ChanNet) Restore(id string) { n.parts.clearFor(id) }

// Stats returns a snapshot of frame counters.
func (n *ChanNet) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
	}
}

// Close implements Network.
func (n *ChanNet) Close() error {
	n.mu.Lock()
	if n.closed.Swap(true) {
		n.mu.Unlock()
		return nil
	}
	conns := make([]*chanConn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.stop()
	}
	return nil
}

// route decides one frame's fate and hands it (and a possible duplicate)
// to the destination. env.frame references must already be owned by env.
func (n *ChanNet) route(dst *chanConn, env Envelope) {
	n.sent.Add(1)
	n.ins.framesSent.Inc()
	if n.parts.isBlocked(env.From, env.To) {
		n.dropped.Add(1)
		n.ins.partitionDropped.Inc()
		env.Release()
		return // partitions drop silently, like a real network
	}
	drop, delay, dup, dupDelay := n.dice.roll(n.faults, env.From, env.To)
	if drop {
		n.dropped.Add(1)
		n.ins.faultDropped.Inc()
		env.Release()
		return
	}
	if delay > 0 {
		n.ins.faultDelayed.Inc()
	}
	var dupEnv Envelope
	if dup {
		n.duplicated.Add(1)
		n.ins.faultDuplicated.Inc()
		dupEnv = env
		if dupEnv.frame != nil {
			dupEnv.frame.Retain()
		}
	}
	if dst.sched == nil {
		n.deliver(dst, env)
		if dup {
			n.deliver(dst, dupEnv)
		}
		return
	}
	now := time.Now()
	dst.sched.schedule(delivery{at: now.Add(delay), env: env})
	if dup {
		dst.sched.schedule(delivery{at: now.Add(dupDelay), env: dupEnv})
	}
}

func (n *ChanNet) send(from, to string, payload []byte) error {
	if n.closed.Load() {
		return ErrClosed
	}
	dst, ok := n.lookup(to)
	if !ok {
		return &ErrUnknownPeer{ID: to}
	}
	// Unicast sends copy: the caller keeps ownership of payload.
	body := make([]byte, len(payload))
	copy(body, payload)
	n.route(dst, Envelope{From: from, To: to, Payload: body})
	return nil
}

// sendFrame fans one immutable frame out to every destination with no
// copies: every queued envelope shares f's bytes and holds one reference.
// The fan-out is best-effort: an unknown (detached, crashed) peer does not
// stop delivery to the rest.
func (n *ChanNet) sendFrame(from string, tos []string, f *Frame) error {
	if n.closed.Load() {
		return ErrClosed
	}
	var first error
	for _, to := range tos {
		dst, ok := n.lookup(to)
		if !ok {
			if first == nil {
				first = &ErrUnknownPeer{ID: to}
			}
			continue
		}
		f.Retain()
		n.route(dst, Envelope{From: from, To: to, Payload: f.B, frame: f})
	}
	return first
}

func (n *ChanNet) deliver(dst *chanConn, env Envelope) {
	if dst.box.put(env) {
		n.delivered.Add(1)
		n.ins.framesDelivered.Inc()
	} else {
		env.Release()
	}
}

// deliverBatch releases a scheduler batch into the mailbox in one lock
// acquisition.
func (n *ChanNet) deliverBatch(dst *chanConn, envs []Envelope) {
	if dst.box.putAll(envs) {
		n.delivered.Add(uint64(len(envs)))
		n.ins.framesDelivered.Add(uint64(len(envs)))
	} else {
		for i := range envs {
			envs[i].Release()
		}
	}
}

type delivery struct {
	at  time.Time
	env Envelope
	seq uint64 // tie-break so equal-time frames keep schedule order
}

type deliveryHeap struct {
	items []delivery
	seq   uint64
}

func (h *deliveryHeap) Len() int { return len(h.items) }
func (h *deliveryHeap) Less(i, j int) bool {
	if !h.items[i].at.Equal(h.items[j].at) {
		return h.items[i].at.Before(h.items[j].at)
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *deliveryHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *deliveryHeap) Push(x any) {
	d, ok := x.(delivery)
	if !ok {
		return
	}
	h.seq++
	d.seq = h.seq
	h.items = append(h.items, d)
}
func (h *deliveryHeap) Pop() any {
	old := h.items
	n := len(old)
	item := old[n-1]
	old[n-1] = delivery{}
	h.items = old[:n-1]
	return item
}

// destSched is one destination's delay scheduler: a private heap drained
// by a private goroutine, so scheduling traffic for one receiver never
// contends with any other destination. Due deliveries are coalesced into
// one mailbox batch.
type destSched struct {
	dst  *chanConn
	mu   sync.Mutex
	heap deliveryHeap
	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	batch []Envelope // dispatcher-owned scratch
}

func newDestSched(dst *chanConn) *destSched {
	s := &destSched{
		dst:  dst,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.run()
	return s
}

func (s *destSched) schedule(d delivery) {
	s.mu.Lock()
	heap.Push(&s.heap, d)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *destSched) stop() {
	close(s.done)
	s.wg.Wait()
	// Drop whatever never became due.
	s.mu.Lock()
	for _, d := range s.heap.items {
		d.env.Release()
	}
	s.heap.items = nil
	s.mu.Unlock()
}

// run releases scheduled deliveries when due, batching everything that is
// ready at each wakeup into a single mailbox append.
func (s *destSched) run() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		s.batch = s.batch[:0]
		var wait time.Duration = -1
		for s.heap.Len() > 0 {
			d := time.Until(s.heap.items[0].at)
			if d > 0 {
				wait = d
				break
			}
			popped, ok := heap.Pop(&s.heap).(delivery)
			if ok {
				s.batch = append(s.batch, popped.env)
			}
		}
		s.mu.Unlock()
		if len(s.batch) > 0 {
			s.dst.net.deliverBatch(s.dst, s.batch)
		}

		if wait < 0 {
			select {
			case <-s.wake:
			case <-s.done:
				return
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
		case <-s.done:
			return
		}
	}
}

// chanConn is ChanNet's Conn.
type chanConn struct {
	id    string
	net   *ChanNet
	box   *mailbox
	sched *destSched // nil when the fault model has no delay

	closeOnce sync.Once
}

var (
	_ Conn        = (*chanConn)(nil)
	_ FrameSender = (*chanConn)(nil)
	_ BatchRecver = (*chanConn)(nil)
	_ FIFOProber  = (*chanConn)(nil)
)

func (c *chanConn) LocalID() string { return c.id }

// FIFO implements FIFOProber: the conn is per-pair FIFO exactly when the
// network's fault model is.
func (c *chanConn) FIFO() bool { return c.net.faults.FIFO() }

func (c *chanConn) Send(to string, payload []byte) error {
	return c.net.send(c.id, to, payload)
}

// SendFrame implements FrameSender: one encode, n zero-copy deliveries.
func (c *chanConn) SendFrame(tos []string, f *Frame) error {
	return c.net.sendFrame(c.id, tos, f)
}

func (c *chanConn) Recv() (Envelope, error) { return c.box.get() }

// RecvBatch implements BatchRecver.
func (c *chanConn) RecvBatch(buf []Envelope) ([]Envelope, error) {
	envs, err := c.box.getBatch(buf)
	if err == nil {
		c.net.ins.recvBatch.Observe(float64(len(envs)))
	}
	return envs, err
}

// Pending returns the number of frames waiting in the inbox; the buffer-
// occupancy experiment samples it.
func (c *chanConn) Pending() int { return c.box.len() }

// stop shuts the connection's scheduler and mailbox down without touching
// the attachment table (used by network Close, which already holds it).
func (c *chanConn) stop() {
	c.closeOnce.Do(func() {
		if c.sched != nil {
			c.sched.stop()
		}
		c.box.close()
	})
}

func (c *chanConn) Close() error {
	c.stop()
	c.net.mu.Lock()
	if _, ok := c.net.conns[c.id]; ok {
		delete(c.net.conns, c.id)
		c.net.publishLocked()
	}
	c.net.mu.Unlock()
	return nil
}
