package transport

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts frame-level events, for the overhead experiments.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
}

// ChanNet is an in-process Network built on goroutines and channels. One
// dispatcher goroutine applies the fault model and releases frames to
// per-connection mailboxes in delay order.
type ChanNet struct {
	faults FaultModel
	dice   *faultDice
	parts  *partitionSet

	mu     sync.Mutex
	conns  map[string]*chanConn
	closed bool

	// dispatcher state
	queue    deliveryHeap
	wake     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	sent, delivered, dropped, duplicated atomic.Uint64
}

var _ Network = (*ChanNet)(nil)

// NewChanNet constructs a network with the given fault model. A zero
// FaultModel yields instant lossless delivery.
func NewChanNet(faults FaultModel) *ChanNet {
	n := &ChanNet{
		faults: faults,
		dice:   newFaultDice(faults.Seed),
		parts:  newPartitionSet(),
		conns:  make(map[string]*chanConn),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if n.delayed() {
		n.wg.Add(1)
		go n.dispatch()
	}
	return n
}

func (n *ChanNet) delayed() bool {
	return n.faults.MinDelay > 0 || n.faults.MaxDelay > 0
}

// Attach implements Network.
func (n *ChanNet) Attach(id string) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, dup := n.conns[id]; dup {
		return nil, fmt.Errorf("transport: id %q already attached", id)
	}
	c := &chanConn{id: id, net: n, box: newMailbox()}
	n.conns[id] = c
	return c, nil
}

// IDs implements Network.
func (n *ChanNet) IDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.conns))
	for id := range n.conns {
		out = append(out, id)
	}
	return out
}

// Partition blocks (or with block=false, heals) traffic between a and b in
// both directions. Frames in flight are unaffected.
func (n *ChanNet) Partition(a, b string, block bool) { n.parts.set(a, b, block) }

// Heal removes all partitions.
func (n *ChanNet) Heal() { n.parts.clear() }

// Stats returns a snapshot of frame counters.
func (n *ChanNet) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
	}
}

// Close implements Network.
func (n *ChanNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*chanConn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	n.stopOnce.Do(func() { close(n.done) })
	n.wg.Wait()
	for _, c := range conns {
		c.box.close()
	}
	return nil
}

func (n *ChanNet) send(from, to string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.conns[to]
	n.mu.Unlock()
	if !ok {
		return &ErrUnknownPeer{ID: to}
	}
	n.sent.Add(1)
	if n.parts.isBlocked(from, to) {
		n.dropped.Add(1)
		return nil // partitions drop silently, like a real network
	}
	drop, delay, dup, dupDelay := n.dice.roll(n.faults)
	if drop {
		n.dropped.Add(1)
		return nil
	}
	body := make([]byte, len(payload))
	copy(body, payload)
	env := Envelope{From: from, To: to, Payload: body}
	if !n.delayed() {
		n.deliver(dst, env)
		if dup {
			n.duplicated.Add(1)
			n.deliver(dst, env)
		}
		return nil
	}
	now := time.Now()
	n.schedule(delivery{at: now.Add(delay), dst: dst, env: env})
	if dup {
		n.duplicated.Add(1)
		n.schedule(delivery{at: now.Add(dupDelay), dst: dst, env: env})
	}
	return nil
}

func (n *ChanNet) deliver(dst *chanConn, env Envelope) {
	if dst.box.put(env) {
		n.delivered.Add(1)
	}
}

type delivery struct {
	at  time.Time
	dst *chanConn
	env Envelope
	seq uint64 // tie-break so equal-time frames keep schedule order
}

type deliveryHeap struct {
	items []delivery
	seq   uint64
}

func (h *deliveryHeap) Len() int { return len(h.items) }
func (h *deliveryHeap) Less(i, j int) bool {
	if !h.items[i].at.Equal(h.items[j].at) {
		return h.items[i].at.Before(h.items[j].at)
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *deliveryHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *deliveryHeap) Push(x any) {
	d, ok := x.(delivery)
	if !ok {
		return
	}
	h.seq++
	d.seq = h.seq
	h.items = append(h.items, d)
}
func (h *deliveryHeap) Pop() any {
	old := h.items
	n := len(old)
	item := old[n-1]
	h.items = old[:n-1]
	return item
}

func (n *ChanNet) schedule(d delivery) {
	n.mu.Lock()
	heap.Push(&n.queue, d)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// dispatch releases scheduled deliveries when due. It is the only goroutine
// that pops the heap.
func (n *ChanNet) dispatch() {
	defer n.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		var wait time.Duration = -1
		for n.queue.Len() > 0 {
			head := n.queue.items[0]
			d := time.Until(head.at)
			if d > 0 {
				wait = d
				break
			}
			popped, ok := heap.Pop(&n.queue).(delivery)
			n.mu.Unlock()
			if ok {
				n.deliver(popped.dst, popped.env)
			}
			n.mu.Lock()
		}
		n.mu.Unlock()

		if wait < 0 {
			select {
			case <-n.wake:
			case <-n.done:
				return
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-n.wake:
		case <-n.done:
			return
		}
	}
}

// chanConn is ChanNet's Conn.
type chanConn struct {
	id  string
	net *ChanNet
	box *mailbox

	closeOnce sync.Once
}

var _ Conn = (*chanConn)(nil)

func (c *chanConn) LocalID() string { return c.id }

func (c *chanConn) Send(to string, payload []byte) error {
	return c.net.send(c.id, to, payload)
}

func (c *chanConn) Recv() (Envelope, error) { return c.box.get() }

// Pending returns the number of frames waiting in the inbox; the buffer-
// occupancy experiment samples it.
func (c *chanConn) Pending() int { return c.box.len() }

func (c *chanConn) Close() error {
	c.closeOnce.Do(func() {
		c.box.close()
		c.net.mu.Lock()
		delete(c.net.conns, c.id)
		c.net.mu.Unlock()
	})
	return nil
}
