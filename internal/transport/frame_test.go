package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {256, 0}, {257, 1}, {1 << 10, 1},
		{4 << 10, 2}, {16 << 10, 3}, {64 << 10, 4}, {64<<10 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFrameReuseAfterRelease(t *testing.T) {
	// Drain the pool's influence by working with one frame: a released
	// frame must come back from NewFrame with length 0 and full class
	// capacity, regardless of whether it is the very same object (pools
	// may drop entries at any time).
	f := NewFrame(100)
	f.B = append(f.B, "hello"...)
	if cap(f.B) != 256 {
		t.Fatalf("cap = %d, want class capacity 256", cap(f.B))
	}
	f.Release()
	g := NewFrame(100)
	if len(g.B) != 0 {
		t.Errorf("recycled frame has len %d, want 0", len(g.B))
	}
	if cap(g.B) < 100 {
		t.Errorf("recycled frame has cap %d, want >= 100", cap(g.B))
	}
	g.Release()
}

func TestFrameRefCounting(t *testing.T) {
	f := NewFrame(10)
	f.B = append(f.B, 1, 2, 3)
	f.Retain() // second holder
	f.Release()
	// One reference remains; the bytes must still be intact and the frame
	// must not have been recycled into a concurrent NewFrame.
	if !bytes.Equal(f.B, []byte{1, 2, 3}) {
		t.Fatalf("frame bytes corrupted after partial release: %v", f.B)
	}
	f.Release()
}

func TestOversizedFrameUnpooled(t *testing.T) {
	n := frameClasses[len(frameClasses)-1] + 1
	f := NewFrame(n)
	if f.pooled {
		t.Error("oversized frame marked pooled")
	}
	if cap(f.B) < n {
		t.Errorf("cap = %d, want >= %d", cap(f.B), n)
	}
	f.Release() // must not panic or poison any pool
}

func TestStaticFrameKeepsBytes(t *testing.T) {
	b := []byte("retained for retransmission")
	f := StaticFrame(b)
	f.Retain()
	f.Release()
	f.Release()
	if !bytes.Equal(b, []byte("retained for retransmission")) {
		t.Error("StaticFrame release touched the caller's bytes")
	}
	// The slice must never enter a pool: NewFrame after full release must
	// not hand the static bytes to another caller.
	g := NewFrame(len(b))
	if len(g.B) != 0 {
		t.Errorf("pool handed out a non-empty buffer (len %d)", len(g.B))
	}
	g.Release()
}

// TestMulticastSharesEncoding checks the fallback path of Multicast (a
// Conn with no FrameSender) still encodes once: every peer receives the
// same backing array.
func TestMulticastSharesEncoding(t *testing.T) {
	c := &captureConn{}
	f := StaticFrame([]byte("once"))
	if err := Multicast(c, []string{"a", "b", "c"}, f); err != nil {
		t.Fatal(err)
	}
	f.Release()
	if len(c.payloads) != 3 {
		t.Fatalf("sent %d frames, want 3", len(c.payloads))
	}
	for i := 1; i < len(c.payloads); i++ {
		if &c.payloads[i][0] != &c.payloads[0][0] {
			t.Error("Multicast re-encoded per peer: backing arrays differ")
		}
	}
}

// captureConn is a minimal Conn that records sent payload slices.
type captureConn struct{ payloads [][]byte }

func (c *captureConn) LocalID() string { return "cap" }
func (c *captureConn) Send(to string, payload []byte) error {
	c.payloads = append(c.payloads, payload)
	return nil
}
func (c *captureConn) Recv() (Envelope, error) { return Envelope{}, ErrClosed }
func (c *captureConn) Close() error            { return nil }

// TestSendFrameFanout checks ChanNet's zero-copy fan-out: every receiver
// observes the same bytes, and the envelopes share the frame's backing
// array rather than holding copies.
func TestSendFrameFanout(t *testing.T) {
	n := NewChanNet(FaultModel{})
	defer func() { _ = n.Close() }()
	src, err := n.Attach("src")
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]Conn, 3)
	ids := make([]string, 3)
	for i := range peers {
		ids[i] = fmt.Sprintf("r%d", i)
		peers[i], err = n.Attach(ids[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	f := NewFrame(16)
	f.B = append(f.B, "fanout-frame"...)
	first := &f.B[0]
	fs, ok := src.(FrameSender)
	if !ok {
		t.Fatal("chanConn does not implement FrameSender")
	}
	if err := fs.SendFrame(ids, f); err != nil {
		t.Fatal(err)
	}
	f.Release()
	for i, p := range peers {
		env, err := p.Recv()
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if string(env.Payload) != "fanout-frame" {
			t.Fatalf("peer %d got %q", i, env.Payload)
		}
		if &env.Payload[0] != first {
			t.Errorf("peer %d received a copy, want shared backing array", i)
		}
		env.Release()
	}
}

// TestRecvBatchDrainsQueue checks RecvBatch returns everything queued in
// one call, in order.
func TestRecvBatchDrainsQueue(t *testing.T) {
	n := NewChanNet(FaultModel{})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	br, ok := b.(BatchRecver)
	if !ok {
		t.Fatal("chanConn does not implement BatchRecver")
	}
	var got []Envelope
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d frames", len(got))
		}
		batch, err := br.RecvBatch(nil)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	for i, env := range got {
		if env.Payload[0] != byte(i) {
			t.Fatalf("frame %d carries %d, want FIFO order", i, env.Payload[0])
		}
	}
}

// TestRecvBatchReusesBuffer checks the caller's buffer is reused across
// calls instead of reallocated.
func TestRecvBatchReusesBuffer(t *testing.T) {
	n := NewChanNet(FaultModel{})
	defer func() { _ = n.Close() }()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	br := b.(BatchRecver)
	buf := make([]Envelope, 0, 8)
	for round := 0; round < 3; round++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
		out, err := br.RecvBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) >= 1 && cap(out) == cap(buf) && cap(buf) > 0 {
			buf = out // same backing array handed back
			continue
		}
		buf = out
	}
}
