package transport

import (
	"fmt"
	"testing"
	"time"
)

// TestTCPFlushWindowDelivers checks the batched write path carries every
// frame, in per-pair FIFO order, across a burst large enough to exercise
// both the timed flush and the inline flushBytes overflow.
func TestTCPFlushWindowDelivers(t *testing.T) {
	n := NewTCPNetWithConfig(TCPConfig{FlushWindow: 2 * time.Millisecond})
	defer func() { _ = n.Close() }()
	a, err := n.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	const count = 2000
	payload := make([]byte, 100) // 2000 * ~100B crosses flushBytes repeatedly
	go func() {
		for i := 0; i < count; i++ {
			payload[0], payload[1] = byte(i>>8), byte(i)
			if err := a.Send("b", payload); err != nil {
				return
			}
		}
	}()
	br := b.(BatchRecver)
	var got int
	var batch []Envelope
	deadline := time.Now().Add(10 * time.Second)
	for got < count {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d frames", got, count)
		}
		batch, err = br.RecvBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, env := range batch {
			seq := int(env.Payload[0])<<8 | int(env.Payload[1])
			if seq != got {
				t.Fatalf("frame %d arrived as %d: batching broke FIFO", got, seq)
			}
			if len(env.Payload) != len(payload) {
				t.Fatalf("frame %d has %d bytes, want %d", got, len(env.Payload), len(payload))
			}
			got++
		}
	}
}

// TestTCPFlushWindowMulticast checks SendFrame over the batched path: one
// frame reaches several peers intact.
func TestTCPFlushWindowMulticast(t *testing.T) {
	n := NewTCPNetWithConfig(TCPConfig{FlushWindow: time.Millisecond})
	defer func() { _ = n.Close() }()
	src, err := n.Attach("src")
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]Conn, 3)
	ids := make([]string, 3)
	for i := range peers {
		ids[i] = fmt.Sprintf("r%d", i)
		if peers[i], err = n.Attach(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	f := StaticFrame([]byte("batched multicast"))
	if err := Multicast(src, ids, f); err != nil {
		t.Fatal(err)
	}
	f.Release()
	for i, p := range peers {
		env, err := p.Recv()
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		if string(env.Payload) != "batched multicast" {
			t.Fatalf("peer %d got %q", i, env.Payload)
		}
		if env.From != "src" {
			t.Fatalf("peer %d got From=%q", i, env.From)
		}
	}
}

// TestTCPFlushWindowErrorSurfaces checks a write failure on the batched
// path becomes visible on a later Send to the same peer instead of being
// swallowed.
func TestTCPFlushWindowErrorSurfaces(t *testing.T) {
	n := NewTCPNetWithConfig(TCPConfig{FlushWindow: time.Millisecond})
	defer func() { _ = n.Close() }()
	a, err := n.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	// Kill the receiving side; subsequent batched writes must eventually
	// fail (flush hits a broken pipe, the sticky error surfaces, and the
	// peer is dropped for a re-dial that cannot succeed).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send("b", []byte("doomed")); err != nil {
			return // surfaced, as required
		}
		if time.Now().After(deadline) {
			t.Fatal("write errors never surfaced on Send")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
