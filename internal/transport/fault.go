package transport

import (
	"math/rand"
	"sync"
	"time"
)

// Link names one direction of a point-to-point link, for per-direction
// fault overrides (asymmetric loss, one-way partitions).
type Link struct {
	From, To string
}

// FaultModel describes the adversarial behaviour the network injects. The
// zero value is a perfect network: instant, lossless, FIFO.
type FaultModel struct {
	// MinDelay and MaxDelay bound the uniformly sampled per-frame latency.
	// Unequal delays across frames produce reordering, which is what
	// forces the causal layers to buffer (experiment E6).
	MinDelay time.Duration
	MaxDelay time.Duration
	// DropProb is the probability a frame is silently discarded.
	DropProb float64
	// DropLink overrides DropProb for specific directions, so loss can be
	// asymmetric: DropLink[Link{"a","b"}] = 1 drops every a→b frame while
	// b→a traffic still flows (a one-way partition expressed as loss).
	// Directions absent from the map use DropProb.
	DropLink map[Link]float64
	// BurstProb, BurstHeal and BurstDrop parameterize a Gilbert–Elliott
	// two-state loss chain layered over the base drop probability. Each
	// frame first advances the chain: from the good state it enters the
	// bad state with probability BurstProb; from the bad state it heals
	// with probability BurstHeal. While bad, frames drop with probability
	// BurstDrop (default 1 when BurstProb > 0), producing the correlated
	// loss bursts real networks exhibit — consecutive gaps that defeat
	// single-frame repair and force windowed retransmission.
	BurstProb float64
	BurstHeal float64
	BurstDrop float64
	// DupProb is the probability a frame is delivered twice (the second
	// copy with an independently sampled delay). Duplicate decisions draw
	// from their own derived seed stream, so enabling DupProb does not
	// perturb the drop/delay fate of later frames.
	DupProb float64
	// Seed fixes the fault RNG so runs are reproducible. Zero means 1.
	Seed int64
}

// FIFO reports whether the model preserves reliable per-pair FIFO
// delivery: nothing dropped or duplicated, and every frame delayed by the
// same constant (the delivery scheduler breaks equal-time ties in send
// order, so a constant delay keeps queue order equal to send order).
// Unequal delay bounds reorder; any loss or duplication breaks the
// "reliable" half. Dynamic partitions are outside the model: they drop
// frames regardless, which is why chaos runs layer reliable.Wrap on top
// before arming a FIFO-dependent engine.
func (m FaultModel) FIFO() bool {
	return m.DropProb == 0 && len(m.DropLink) == 0 && m.BurstProb == 0 &&
		m.DupProb == 0 && m.MaxDelay <= m.MinDelay
}

// active reports whether the model injects any fault at all. (FaultModel
// contains a map, so callers cannot compare against the zero literal.)
func (m FaultModel) active() bool {
	return m.MinDelay > 0 || m.MaxDelay > 0 || m.DropProb > 0 ||
		m.BurstProb > 0 || m.DupProb > 0 || len(m.DropLink) > 0
}

// dropProb resolves the base drop probability for one direction.
func (m FaultModel) dropProb(from, to string) float64 {
	if len(m.DropLink) > 0 {
		if p, ok := m.DropLink[Link{From: from, To: to}]; ok {
			return p
		}
	}
	return m.DropProb
}

// burstDrop is the in-burst drop probability, defaulting to certain loss.
func (m FaultModel) burstDrop() float64 {
	if m.BurstDrop > 0 {
		return m.BurstDrop
	}
	return 1
}

// dupSeedSalt derives the duplicate stream's seed from the primary seed.
// Any odd constant works; this one is splitmix64's increment, truncated
// to fit int64.
const dupSeedSalt int64 = 0x1e3779b97f4a7c15

// faultDice wraps seeded RNGs behind a mutex so concurrent senders share
// one reproducible random stream. Drop, delay and the Gilbert–Elliott
// burst chain draw from the primary stream; duplicate decisions (and the
// duplicate copy's delay) draw from a second stream derived from the same
// seed, so toggling DupProb never shifts the fate of later frames and
// chaos seeds stay stable across fault-model tweaks.
type faultDice struct {
	mu    sync.Mutex
	rng   *rand.Rand
	dup   *rand.Rand
	burst bool // Gilbert–Elliott chain state: true = bad (bursting)
}

func newFaultDice(seed int64) *faultDice {
	if seed == 0 {
		seed = 1
	}
	return &faultDice{
		rng: rand.New(rand.NewSource(seed)),
		dup: rand.New(rand.NewSource(seed ^ dupSeedSalt)),
	}
}

// roll samples the fate of one frame on the directed link from→to:
// whether it is dropped, how long it is delayed, and whether a duplicate
// (with its own delay) is produced.
func (d *faultDice) roll(m FaultModel, from, to string) (drop bool, delay time.Duration, dup bool, dupDelay time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dropP := m.dropProb(from, to)
	if m.BurstProb > 0 {
		if d.burst {
			if d.rng.Float64() < m.BurstHeal {
				d.burst = false
			}
		} else if d.rng.Float64() < m.BurstProb {
			d.burst = true
		}
		if d.burst {
			dropP = m.burstDrop()
		}
	}
	if dropP > 0 && d.rng.Float64() < dropP {
		return true, 0, false, 0
	}
	delay = sampleDelay(d.rng, m)
	if m.DupProb > 0 && d.dup.Float64() < m.DupProb {
		dup = true
		dupDelay = sampleDelay(d.dup, m)
	}
	return false, delay, dup, dupDelay
}

func sampleDelay(rng *rand.Rand, m FaultModel) time.Duration {
	if m.MaxDelay <= m.MinDelay {
		return m.MinDelay
	}
	return m.MinDelay + time.Duration(rng.Int63n(int64(m.MaxDelay-m.MinDelay)))
}

// partitionSet tracks unreachability between ids: symmetric pairs (both
// directions blocked) and directed links (one-way blackouts, which model
// asymmetric routing failures — the hard case for ack-based protocols,
// since data flows but acknowledgements die).
type partitionSet struct {
	mu      sync.RWMutex
	blocked map[[2]string]struct{}
	oneway  map[Link]struct{}
}

func newPartitionSet() *partitionSet {
	return &partitionSet{
		blocked: make(map[[2]string]struct{}),
		oneway:  make(map[Link]struct{}),
	}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// set blocks or unblocks the pair (a, b) in both directions.
func (p *partitionSet) set(a, b string, block bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if block {
		p.blocked[pairKey(a, b)] = struct{}{}
	} else {
		delete(p.blocked, pairKey(a, b))
	}
}

// setOneWay blocks or unblocks only the from→to direction.
func (p *partitionSet) setOneWay(from, to string, block bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if block {
		p.oneway[Link{From: from, To: to}] = struct{}{}
	} else {
		delete(p.oneway, Link{From: from, To: to})
	}
}

// isBlocked reports whether a from→to frame is discarded.
func (p *partitionSet) isBlocked(from, to string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if _, ok := p.blocked[pairKey(from, to)]; ok {
		return true
	}
	_, ok := p.oneway[Link{From: from, To: to}]
	return ok
}

// clearFor removes every partition entry involving id (used on Restore,
// so a rejoining member comes back fully reachable).
func (p *partitionSet) clearFor(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.blocked {
		if k[0] == id || k[1] == id {
			delete(p.blocked, k)
		}
	}
	for k := range p.oneway {
		if k.From == id || k.To == id {
			delete(p.oneway, k)
		}
	}
}

// clear removes all partitions (heal).
func (p *partitionSet) clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked = make(map[[2]string]struct{})
	p.oneway = make(map[Link]struct{})
}
