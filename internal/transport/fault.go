package transport

import (
	"math/rand"
	"sync"
	"time"
)

// FaultModel describes the adversarial behaviour the network injects. The
// zero value is a perfect network: instant, lossless, FIFO.
type FaultModel struct {
	// MinDelay and MaxDelay bound the uniformly sampled per-frame latency.
	// Unequal delays across frames produce reordering, which is what
	// forces the causal layers to buffer (experiment E6).
	MinDelay time.Duration
	MaxDelay time.Duration
	// DropProb is the probability a frame is silently discarded.
	DropProb float64
	// DupProb is the probability a frame is delivered twice (the second
	// copy with an independently sampled delay).
	DupProb float64
	// Seed fixes the fault RNG so runs are reproducible. Zero means 1.
	Seed int64
}

// faultDice wraps a seeded RNG behind a mutex so concurrent senders share
// one reproducible random stream.
type faultDice struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultDice(seed int64) *faultDice {
	if seed == 0 {
		seed = 1
	}
	return &faultDice{rng: rand.New(rand.NewSource(seed))}
}

// roll samples the fate of one frame: whether it is dropped, how long it is
// delayed, and whether a duplicate (with its own delay) is produced.
func (d *faultDice) roll(m FaultModel) (drop bool, delay time.Duration, dup bool, dupDelay time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m.DropProb > 0 && d.rng.Float64() < m.DropProb {
		return true, 0, false, 0
	}
	delay = sampleDelay(d.rng, m)
	if m.DupProb > 0 && d.rng.Float64() < m.DupProb {
		dup = true
		dupDelay = sampleDelay(d.rng, m)
	}
	return false, delay, dup, dupDelay
}

func sampleDelay(rng *rand.Rand, m FaultModel) time.Duration {
	if m.MaxDelay <= m.MinDelay {
		return m.MinDelay
	}
	return m.MinDelay + time.Duration(rng.Int63n(int64(m.MaxDelay-m.MinDelay)))
}

// partitionSet tracks symmetric unreachability between id pairs.
type partitionSet struct {
	mu      sync.RWMutex
	blocked map[[2]string]struct{}
}

func newPartitionSet() *partitionSet {
	return &partitionSet{blocked: make(map[[2]string]struct{})}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// set blocks or unblocks the pair (a, b) in both directions.
func (p *partitionSet) set(a, b string, block bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if block {
		p.blocked[pairKey(a, b)] = struct{}{}
	} else {
		delete(p.blocked, pairKey(a, b))
	}
}

// isBlocked reports whether frames between a and b are discarded.
func (p *partitionSet) isBlocked(a, b string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.blocked[pairKey(a, b)]
	return ok
}

// clear removes all partitions (heal).
func (p *partitionSet) clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked = make(map[[2]string]struct{})
}
