package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("SetMax = %d, want 11", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "different help ignored")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("lat", "", DurationBuckets)
	h2 := r.Histogram("lat", "", CountBuckets)
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "a-b", "a b", "a.b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// per-bucket: (<=1): 0.5,1 → 2; (<=10): 2,10 → 2; (<=100): 11 → 1; +Inf: 1000 → 1
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 6 {
		t.Fatalf("count = %d, want 6", hs.Count)
	}
	if math.Abs(hs.Sum-1024.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1024.5", hs.Sum)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", CountBuckets)
	var ring *Ring
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(9)
	h.Observe(1)
	h.ObserveSince(time.Now())
	ring.Record(EventSend, "m", "o", 1, 0)
	r.CounterFunc("f", "", func() uint64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || ring.Len() != 0 {
		t.Fatal("nil instruments retained state")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := uint64(41)
	r.CounterFunc("pool_hits_total", "", func() uint64 { return v })
	r.GaugeFunc("live", "", func() int64 { return 7 })
	v = 42
	s := r.Snapshot()
	if got := s.Get("pool_hits_total"); got != 42 {
		t.Fatalf("func counter = %d, want 42", got)
	}
	found := false
	for _, g := range s.Gauges {
		if g.Name == "live" && g.Value == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("func gauge missing from snapshot: %+v", s.Gauges)
	}
}

// TestUpdateAllocs pins the hot-path budget: counter increments, gauge
// stores, histogram observations, and ring records must not allocate.
func TestUpdateAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", DurationBuckets)
	ring := NewRing(64)
	t0 := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4)
		g.SetMax(9)
		h.Observe(0.001)
		h.ObserveSince(t0)
		ring.Record(EventDeliver, "member", "origin", 9, 1)
	}); n != 0 {
		t.Fatalf("instrument updates allocate %.1f allocs/op, want 0", n)
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", CountBuckets)
	ring := NewRing(32)
	var wg sync.WaitGroup
	const writers, per = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
				ring.Record(EventSend, "m", "o", uint64(i), 0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
			_ = ring.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != writers*per {
		t.Fatalf("counter = %d, want %d", got, writers*per)
	}
	if got := h.Count(); got != writers*per {
		t.Fatalf("histogram count = %d, want %d", got, writers*per)
	}
	if got := ring.Dropped() + uint64(ring.Len()); got != writers*per {
		t.Fatalf("ring dropped+len = %d, want %d", got, writers*per)
	}
}

func TestRingOrderAndOverwrite(t *testing.T) {
	ring := NewRing(4)
	for i := uint64(1); i <= 6; i++ {
		ring.Record(EventDeliver, "m", "o", i, 0)
	}
	evs := ring.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(i + 3); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ring.Dropped())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("event timestamps are not monotonic")
		}
	}
}

func TestCompact(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a_depth", "").Set(3)
	r.Histogram("lat", "", CountBuckets).Observe(1)
	got := r.Snapshot().Compact()
	for _, want := range []string{"b_total=2", "a_depth=3", "lat_count=1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Compact() = %q, missing %q", got, want)
		}
	}
}
