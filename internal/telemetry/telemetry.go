// Package telemetry is the runtime observability layer shared by every
// tier of the stack (transport → causal → total → core). It provides:
//
//   - A metrics Registry of pre-registered instruments — atomic counters,
//     gauges, fixed-bucket histograms, and snapshot-time func metrics —
//     whose update paths allocate nothing and take no locks, so the
//     broadcast hot path can be instrumented without giving up its
//     zero-allocation property (BenchmarkBroadcastFanout stays 0
//     allocs/op with a live registry attached).
//   - A fixed-size event Ring tracer (ring.go) recording send / deliver /
//     defer / stable-point events with monotonic timestamps.
//   - HTTP exposition (http.go): a Prometheus-text /metrics handler, an
//     expvar-style JSON snapshot handler, and a trace dump.
//
// Design rules:
//
//   - Registration is idempotent: asking for an instrument name that
//     already exists returns the existing instrument, so layers sharing
//     one registry (several engines over one network) aggregate into the
//     same series. Registering a name under a different instrument kind
//     panics (a programming error, caught in tests).
//   - Every instrument is nil-safe: methods on a nil *Counter, *Gauge,
//     *Histogram or *Ring are no-ops, and every Registry accessor on a
//     nil *Registry returns nil. A layer holds plain instrument fields
//     and never branches on "telemetry enabled".
//   - Reads are snapshot-on-read: Snapshot copies every value under the
//     registration lock; writers never wait on readers.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds a process's (or one subsystem's) instruments. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is a
// valid "telemetry disabled" registry: every accessor returns a nil
// instrument whose methods are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]funcMetric
	families   map[string]*family
}

type funcMetric struct {
	help    string
	counter func() uint64 // counter-kind when non-nil
	gauge   func() int64  // gauge-kind when non-nil
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		funcs:      make(map[string]funcMetric),
		families:   make(map[string]*family),
	}
}

// validName enforces the Prometheus metric-name charset
// [a-zA-Z_][a-zA-Z0-9_]* without pulling in regexp.
func validName(name string) bool {
	if len(name) == 0 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkNameLocked panics when name is malformed or already registered
// under a different kind. Caller holds r.mu; have is the map being
// registered into (so re-registration in the same kind passes).
func (r *Registry) checkNameLocked(name, kind string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid instrument name %q", name))
	}
	for k, m := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.histograms[name] != nil,
		"func":      hasFunc(r.funcs, name),
		"family":    r.families[name] != nil,
	} {
		if m && k != kind {
			panic(fmt.Sprintf("telemetry: %q already registered as a %s", name, k))
		}
	}
}

func hasFunc(m map[string]funcMetric, name string) bool {
	_, ok := m[name]
	return ok
}

// Counter registers (or returns the existing) monotonically increasing
// counter. Nil registry → nil counter (no-op instrument).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkNameLocked(name, "counter")
	c := &Counter{help: help}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkNameLocked(name, "gauge")
	g := &Gauge{help: help}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// buckets are cumulative upper bounds in increasing order; an implicit
// +Inf bucket is appended. Re-registration returns the existing histogram
// regardless of the buckets argument, so sharing layers must agree on
// bucket ladders (they do: the package-level ladders below).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkNameLocked(name, "histogram")
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not increasing", name))
		}
	}
	h := &Histogram{
		help:   help,
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterFunc registers a counter whose value is read by fn at snapshot
// time — for pre-existing atomics (e.g. the process-wide frame pool) that
// should stay where they are. First registration wins.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; ok {
		return
	}
	r.checkNameLocked(name, "func")
	r.funcs[name] = funcMetric{help: help, counter: fn}
}

// GaugeFunc registers a gauge whose value is read by fn at snapshot time.
// First registration wins.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; ok {
		return
	}
	r.checkNameLocked(name, "func")
	r.funcs[name] = funcMetric{help: help, gauge: fn}
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver.
type Counter struct {
	v    atomic.Uint64
	help string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are safe on a nil
// receiver.
type Gauge struct {
	v    atomic.Int64
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v is greater (high-water marks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free
// and allocation-free: a linear scan over the (small, pre-registered)
// bucket ladder plus three atomic adds. All methods are safe on a nil
// receiver.
type Histogram struct {
	help   string
	bounds []float64       // upper bounds, increasing; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the duration helper
// every latency instrument uses.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sample sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket ladders shared across the stack, so instruments registered from
// different layers into one registry agree.
var (
	// DurationBuckets spans 10µs..2.5s — delivery latencies, dependency
	// waits, stable-point intervals.
	DurationBuckets = []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5,
	}
	// CountBuckets spans 1..4096 — batch sizes, buffer depths.
	CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
	// ByteBuckets spans 64B..1MiB — flush-window occupancy, frame sizes.
	ByteBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// CounterSnapshot is one counter's value at snapshot time. Label/LabelKey
// are set only for family children ({LabelKey="Label"} series).
type CounterSnapshot struct {
	Name     string `json:"name"`
	Help     string `json:"help,omitempty"`
	LabelKey string `json:"label_key,omitempty"`
	Label    string `json:"label,omitempty"`
	Value    uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's value at snapshot time.
type GaugeSnapshot struct {
	Name     string `json:"name"`
	Help     string `json:"help,omitempty"`
	LabelKey string `json:"label_key,omitempty"`
	Label    string `json:"label,omitempty"`
	Value    int64  `json:"value"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Name     string `json:"name"`
	Help     string `json:"help,omitempty"`
	LabelKey string `json:"label_key,omitempty"`
	Label    string `json:"label,omitempty"`
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the bucket the rank lands in. Samples in
// the +Inf bucket clamp to the last finite bound. Returns 0 on an empty
// histogram (not NaN — snapshots must stay JSON-encodable).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, n := range h.Counts {
		prev := cum
		cum += float64(n)
		if cum < rank || n == 0 {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket: clamp
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*((rank-prev)/float64(n))
	}
	return h.Bounds[len(h.Bounds)-1]
}

// merge folds other's buckets into h (same ladder assumed — the shared
// package-level ladders guarantee it across members).
func (h *HistogramSnapshot) merge(other HistogramSnapshot) {
	if len(h.Bounds) == 0 {
		h.Bounds = append([]float64(nil), other.Bounds...)
		h.Counts = make([]uint64, len(other.Counts))
	}
	for i := range other.Counts {
		if i < len(h.Counts) {
			h.Counts[i] += other.Counts[i]
		}
	}
	h.Count += other.Count
	h.Sum += other.Sum
}

// Snapshot is a consistent-enough copy of a registry: each instrument is
// read atomically (the set of instruments is fixed under the lock, values
// are concurrent reads). It is the one snapshot shape every layer's
// metrics API returns.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every instrument. Nil registry → zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Help: c.help, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Help: g.help, Value: g.Value()})
	}
	for name, f := range r.funcs {
		if f.counter != nil {
			s.Counters = append(s.Counters, CounterSnapshot{Name: name, Help: f.help, Value: f.counter()})
		} else {
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Help: f.help, Value: f.gauge()})
		}
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Name:   name,
			Help:   h.help,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	for _, f := range r.families {
		f.snapshotInto(&s)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Label < s.Counters[j].Label
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Label < s.Gauges[j].Label
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return s.Histograms[i].Label < s.Histograms[j].Label
	})
	return s
}

// Get returns the named counter value from the snapshot (0 when absent),
// for tests and table rendering. Labeled series under the name sum.
func (s Snapshot) Get(name string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// GaugeValue returns the named gauge series (label "" selects the
// unlabeled series) and whether it was present.
func (s Snapshot) GaugeValue(name, label string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && g.Label == label {
			return g.Value, true
		}
	}
	return 0, false
}

// HistogramAt returns the named histogram series (label "" selects the
// unlabeled series) and whether it was present.
func (s Snapshot) HistogramAt(name, label string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && h.Label == label {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Quantile estimates the q-quantile of the named histogram, merging every
// labeled series under the name (so causal_visibility_seconds p99 spans
// all peers). Returns 0 when the name is absent or empty.
func (s Snapshot) Quantile(name string, q float64) float64 {
	var merged HistogramSnapshot
	for _, h := range s.Histograms {
		if h.Name == name {
			merged.merge(h)
		}
	}
	return merged.Quantile(q)
}

// Compact renders the snapshot as one line of name=value pairs (counters
// and gauges; histograms contribute name_count), for experiment tables
// and CLI summaries.
func (s Snapshot) Compact() string {
	var b []byte
	app := func(name string, v any) {
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = fmt.Appendf(b, "%s=%v", name, v)
	}
	for _, c := range s.Counters {
		app(c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		app(g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		app(h.Name+"_count", h.Count)
	}
	return string(b)
}
