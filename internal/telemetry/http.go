package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// WriteText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comments, plain series for counters and
// gauges, cumulative le-labelled series plus _sum/_count for histograms.
// Family children render as name{key="label"} series; HELP/TYPE emit once
// per metric name (the snapshot is sorted name-then-label, so children of
// one family are contiguous).
func WriteText(b *strings.Builder, s Snapshot) {
	prev := ""
	for _, c := range s.Counters {
		if c.Name != prev {
			writeHeader(b, c.Name, c.Help, "counter")
			prev = c.Name
		}
		fmt.Fprintf(b, "%s%s %d\n", c.Name, labelSuffix(c.LabelKey, c.Label), c.Value)
	}
	prev = ""
	for _, g := range s.Gauges {
		if g.Name != prev {
			writeHeader(b, g.Name, g.Help, "gauge")
			prev = g.Name
		}
		fmt.Fprintf(b, "%s%s %d\n", g.Name, labelSuffix(g.LabelKey, g.Label), g.Value)
	}
	prev = ""
	for _, h := range s.Histograms {
		if h.Name != prev {
			writeHeader(b, h.Name, h.Help, "histogram")
			prev = h.Name
		}
		series := labelSuffix(h.LabelKey, h.Label)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(b, "%s_bucket%s %d\n", h.Name, bucketSuffix(h.LabelKey, h.Label, formatBound(bound)), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", h.Name, bucketSuffix(h.LabelKey, h.Label, "+Inf"), h.Count)
		fmt.Fprintf(b, "%s_sum%s %s\n", h.Name, series, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(b, "%s_count%s %d\n", h.Name, series, h.Count)
	}
}

func writeHeader(b *strings.Builder, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelSuffix renders the {key="label"} selector for a family child, or
// "" for an unlabeled series.
func labelSuffix(key, label string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "=" + strconv.Quote(label) + "}"
}

// bucketSuffix renders the histogram-bucket selector, folding the family
// label (when present) in front of le.
func bucketSuffix(key, label, le string) string {
	if key == "" {
		return "{le=" + strconv.Quote(le) + "}"
	}
	return "{" + key + "=" + strconv.Quote(label) + ",le=" + strconv.Quote(le) + "}"
}

// Handler serves reg in Prometheus text format.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		WriteText(&b, reg.Snapshot())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// JSONHandler serves reg as an expvar-style JSON snapshot.
func JSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
}

// traceEvent is the JSON shape of one ring event.
type traceEvent struct {
	AtNanos int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Member  string `json:"member,omitempty"`
	Origin  string `json:"origin,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Value   int64  `json:"value,omitempty"`
}

// TraceHandler serves the ring's retained events as JSON, oldest first.
func TraceHandler(ring *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		events := ring.Snapshot()
		out := struct {
			Dropped uint64       `json:"dropped"`
			Events  []traceEvent `json:"events"`
		}{Dropped: ring.Dropped(), Events: make([]traceEvent, 0, len(events))}
		for _, e := range events {
			out.Events = append(out.Events, traceEvent{
				AtNanos: int64(e.At), Kind: e.Kind.String(),
				Member: e.Member, Origin: e.Origin, Seq: e.Seq, Value: e.Value,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// Server is a running exposition endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Route is an extra endpoint mounted on a Serve mux. Subsystems above
// telemetry (the causal-trace collector, for one) contribute their
// exposition this way without telemetry importing them.
type Route struct {
	// Pattern is a net/http mux pattern ("/trace/").
	Pattern string
	Handler http.Handler
}

// Healthz returns a liveness Route for /healthz reporting the member id,
// process uptime, and wall-clock time — the identity endpoint causaltop
// uses to map scrape targets to group members.
func Healthz(member string) Route {
	started := time.Now()
	return Route{Pattern: "/healthz", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Member        string  `json:"member,omitempty"`
			UptimeSeconds float64 `json:"uptime_seconds"`
			NowUnixNanos  int64   `json:"now_unix_ns"`
		}{Member: member, UptimeSeconds: time.Since(started).Seconds(), NowUnixNanos: time.Now().UnixNano()})
	})}
}

// Serve starts an HTTP server on addr exposing:
//
//	/metrics       Prometheus text
//	/vars          JSON snapshot
//	/trace         event-ring dump (empty when ring is nil — the ring is
//	               nil-safe, so serving without one is not an error)
//	/healthz       liveness + uptime (pass Healthz(member) as an extra
//	               route to stamp the member id; a default anonymous one
//	               mounts otherwise)
//	/debug/pprof/  the standard runtime profiles (heap, goroutine, CPU,
//	               execution trace) on this mux, not the default mux
//
// plus any extra routes, and registers the runtime collector (goroutines,
// heap, GC) on reg. Pass addr ":0" to bind an ephemeral port; Addr
// reports the bound address. The caller owns the returned server and must
// Close it.
func Serve(addr string, reg *Registry, ring *Ring, extra ...Route) (*Server, error) {
	RegisterRuntime(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/vars", JSONHandler(reg))
	mux.Handle("/trace", TraceHandler(ring))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	healthz := false
	for _, r := range extra {
		if r.Handler != nil {
			mux.Handle(r.Pattern, r.Handler)
			if r.Pattern == "/healthz" {
				healthz = true
			}
		}
	}
	if !healthz {
		h := Healthz("")
		mux.Handle(h.Pattern, h.Handler)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
