package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE comments, plain series for counters and
// gauges, cumulative le-labelled series plus _sum/_count for histograms.
func WriteText(b *strings.Builder, s Snapshot) {
	for _, c := range s.Counters {
		writeHeader(b, c.Name, c.Help, "counter")
		fmt.Fprintf(b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		writeHeader(b, g.Name, g.Help, "gauge")
		fmt.Fprintf(b, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		writeHeader(b, h.Name, h.Help, "histogram")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.Name, formatBound(bound), cum)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(b, "%s_sum %s\n", h.Name, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(b, "%s_count %d\n", h.Name, h.Count)
	}
}

func writeHeader(b *strings.Builder, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves reg in Prometheus text format.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		WriteText(&b, reg.Snapshot())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// JSONHandler serves reg as an expvar-style JSON snapshot.
func JSONHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
}

// traceEvent is the JSON shape of one ring event.
type traceEvent struct {
	AtNanos int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Member  string `json:"member,omitempty"`
	Origin  string `json:"origin,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Value   int64  `json:"value,omitempty"`
}

// TraceHandler serves the ring's retained events as JSON, oldest first.
func TraceHandler(ring *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		events := ring.Snapshot()
		out := struct {
			Dropped uint64       `json:"dropped"`
			Events  []traceEvent `json:"events"`
		}{Dropped: ring.Dropped(), Events: make([]traceEvent, 0, len(events))}
		for _, e := range events {
			out.Events = append(out.Events, traceEvent{
				AtNanos: int64(e.At), Kind: e.Kind.String(),
				Member: e.Member, Origin: e.Origin, Seq: e.Seq, Value: e.Value,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// Server is a running exposition endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Route is an extra endpoint mounted on a Serve mux. Subsystems above
// telemetry (the causal-trace collector, for one) contribute their
// exposition this way without telemetry importing them.
type Route struct {
	// Pattern is a net/http mux pattern ("/trace/").
	Pattern string
	Handler http.Handler
}

// Serve starts an HTTP server on addr exposing:
//
//	/metrics  Prometheus text
//	/vars     JSON snapshot
//	/trace    event-ring dump (404 when ring is nil)
//
// plus any extra routes. Pass addr ":0" to bind an ephemeral port; Addr
// reports the bound address. The caller owns the returned server and must
// Close it.
func Serve(addr string, reg *Registry, ring *Ring, extra ...Route) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/vars", JSONHandler(reg))
	if ring != nil {
		mux.Handle("/trace", TraceHandler(ring))
	}
	for _, r := range extra {
		if r.Handler != nil {
			mux.Handle(r.Pattern, r.Handler)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
