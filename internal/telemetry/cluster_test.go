package telemetry

import (
	"context"
	"testing"
	"time"
)

// fakeMemberServer serves a registry populated the way a real member's
// engine/reliable/total/core stack would populate it.
func fakeMemberServer(t *testing.T, member string, epoch, cycle int64, holdback map[string]int64, shedPeer string) *Server {
	t.Helper()
	reg := NewRegistry()
	hb := reg.GaugeFamily("causal_peer_holdback_depth", "", "peer")
	age := reg.GaugeFamily("causal_peer_pending_age_ms", "", "peer")
	vis := reg.HistogramFamily("causal_visibility_seconds", "", "peer", DurationBuckets)
	rtt := reg.GaugeFamily("reliable_link_rtt_us", "", "peer")
	shed := reg.GaugeFamily("reliable_link_shed", "", "peer")
	retx := reg.CounterFamily("reliable_link_retransmits_total", "", "peer")
	for peer, depth := range holdback {
		hb.With(peer).Set(depth)
		age.With(peer).Set(depth * 10)
		vis.With(peer).Observe(0.005)
		vis.With(peer).Observe(0.050)
		rtt.With(peer).Set(150)
		retx.With(peer).Add(uint64(depth))
		if peer == shedPeer {
			shed.With(peer).Set(1)
		}
	}
	reg.Gauge("total_epoch", "").Set(epoch)
	reg.Gauge("core_stable_cycle", "").Set(cycle)
	reg.Gauge("core_stable_age_ms", "").Set(7)
	fl := reg.GaugeFamily("total_member_frontier_lag", "", "peer")
	for peer, depth := range holdback {
		fl.With(peer).Set(depth)
	}
	srv, err := Serve("127.0.0.1:0", reg, nil, Healthz(member))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// TestScrapeCluster drives the full observability pipeline over real
// HTTP: two live members, one dead target, aggregated into a cluster
// view with the skews and worst offenders causaltop renders.
func TestScrapeCluster(t *testing.T) {
	a := fakeMemberServer(t, "a", 3, 10, map[string]int64{"b": 4, "c": 1}, "c")
	b := fakeMemberServer(t, "b", 5, 12, map[string]int64{"a": 2, "c": 9}, "")

	s := &Scraper{Timeout: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// 127.0.0.1:1 is reserved and refuses connections — the dead member.
	view := s.ScrapeCluster(ctx, []string{a.Addr(), b.Addr(), "127.0.0.1:1"})

	if view.Up != 2 || view.Down != 1 {
		t.Fatalf("up/down = %d/%d, want 2/1", view.Up, view.Down)
	}
	if len(view.Members) != 3 {
		t.Fatalf("members = %d, want 3", len(view.Members))
	}
	ma, mb, dead := view.Members[0], view.Members[1], view.Members[2]
	if ma.Member != "a" || mb.Member != "b" {
		t.Fatalf("healthz identity not applied: %q, %q", ma.Member, mb.Member)
	}
	if dead.Up || dead.Err == "" {
		t.Fatalf("dead target reported up=%v err=%q", dead.Up, dead.Err)
	}

	if got := len(ma.PeerLags); got != 2 {
		t.Fatalf("member a peer lags = %d, want 2", got)
	}
	if ma.MaxHoldbackDepth != 4 || ma.MaxPendingAgeMS != 40 {
		t.Fatalf("member a max holdback/age = %d/%d, want 4/40", ma.MaxHoldbackDepth, ma.MaxPendingAgeMS)
	}
	// Two observations (5ms, 50ms) per peer: the p50 must land in the
	// 5ms region and the p99 in the 50ms region of the bucket ladder.
	if ma.VisibilityCount != 4 {
		t.Fatalf("member a visibility count = %d, want 4", ma.VisibilityCount)
	}
	if ma.VisibilityP50 <= 0 || ma.VisibilityP50 > 0.020 {
		t.Fatalf("p50 = %v, want in (0, 20ms]", ma.VisibilityP50)
	}
	if ma.VisibilityP99 < 0.020 || ma.VisibilityP99 > 0.200 {
		t.Fatalf("p99 = %v, want in [20ms, 200ms]", ma.VisibilityP99)
	}

	if view.MaxHoldback.Member != "b" || view.MaxHoldback.Peer != "c" || view.MaxHoldback.Value != 9 {
		t.Fatalf("max holdback = %+v, want b<-c 9", view.MaxHoldback)
	}
	if view.MinStableCycle != 10 || view.MaxStableCycle != 12 || view.StabilitySkew != 2 {
		t.Fatalf("stability = [%d..%d] skew %d, want [10..12] skew 2",
			view.MinStableCycle, view.MaxStableCycle, view.StabilitySkew)
	}
	if view.MinEpoch != 3 || view.MaxEpoch != 5 || view.EpochSkew != 2 {
		t.Fatalf("epoch = [%d..%d] skew %d, want [3..5] skew 2",
			view.MinEpoch, view.MaxEpoch, view.EpochSkew)
	}
	if view.ShedLinks != 1 {
		t.Fatalf("shed links = %d, want 1", view.ShedLinks)
	}
	if view.MaxRTT.Value != 150 {
		t.Fatalf("max rtt = %+v, want 150", view.MaxRTT)
	}
	// Serve registers the runtime collector: the scrape must carry it.
	if ma.Goroutines <= 0 {
		t.Fatalf("goroutines = %d, want > 0", ma.Goroutines)
	}
}

// TestAggregateAllDown pins the degenerate case: no live member means
// zero-valued extrema, not garbage from the unreachable views.
func TestAggregateAllDown(t *testing.T) {
	view := Aggregate([]MemberView{
		{Target: "x", Err: "refused"},
		{Target: "y", Err: "refused"},
	})
	if view.Up != 0 || view.Down != 2 {
		t.Fatalf("up/down = %d/%d, want 0/2", view.Up, view.Down)
	}
	if view.StabilitySkew != 0 || view.EpochSkew != 0 || view.MaxHoldback.Value != 0 {
		t.Fatalf("extrema not zero: %+v", view)
	}
}

func TestNormalizeTarget(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:9090":      "http://localhost:9090",
		" 10.0.0.1:9090/ ":    "http://10.0.0.1:9090",
		"https://m1.exa:443":  "https://m1.exa:443",
		"http://m2.exa:8080/": "http://m2.exa:8080",
	} {
		if got := normalizeTarget(in); got != want {
			t.Errorf("normalizeTarget(%q) = %q, want %q", in, got, want)
		}
	}
}
