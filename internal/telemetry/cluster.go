package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the cluster half of the observability plane: a scrape
// client that pulls /vars and /healthz from every member's telemetry
// server and folds the per-member snapshots into one ClusterView — the
// structure causaltop renders and scripts consume as JSON. The member
// side exposes raw series; everything derived (quantiles, skews, worst
// offenders) is computed here so members stay allocation-free.

// PeerLag is one member's causal lag toward one origin: how many of
// that origin's messages sit in the holdback queue and how long the
// oldest has waited. Both return to zero when the member is caught up.
type PeerLag struct {
	Peer          string `json:"peer"`
	HoldbackDepth int64  `json:"holdback_depth"`
	PendingAgeMS  int64  `json:"pending_age_ms"`
}

// LinkHealth is the reliability sublayer's view of one outgoing link.
type LinkHealth struct {
	Peer        string `json:"peer"`
	RTTMicros   int64  `json:"rtt_us"`
	Outstanding int64  `json:"outstanding"`
	Retransmits uint64 `json:"retransmits"`
	Shed        bool   `json:"shed"`
}

// MemberView is one member's scraped and derived state. Up reports
// whether the scrape succeeded; when it did not, Err carries the reason
// and every derived field is zero.
type MemberView struct {
	Target        string  `json:"target"`
	Member        string  `json:"member"`
	Up            bool    `json:"up"`
	Err           string  `json:"err,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`

	// Causal plane.
	PeerLags         []PeerLag `json:"peer_lags,omitempty"`
	VisibilityP50    float64   `json:"visibility_p50_s"`
	VisibilityP99    float64   `json:"visibility_p99_s"`
	VisibilityP999   float64   `json:"visibility_p999_s"`
	VisibilityCount  uint64    `json:"visibility_count"`
	MaxHoldbackDepth int64     `json:"max_holdback_depth"`
	MaxPendingAgeMS  int64     `json:"max_pending_age_ms"`

	// Reliability plane.
	Links []LinkHealth `json:"links,omitempty"`

	// Ordering and stability plane.
	Epoch          int64 `json:"epoch"`
	StableCycle    int64 `json:"stable_cycle"`
	StableAgeMS    int64 `json:"stable_age_ms"`
	MaxFrontierLag int64 `json:"max_frontier_lag"`

	// Process health.
	Goroutines     int64 `json:"goroutines"`
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`

	// Snapshot retains the raw scrape for callers that need series this
	// view does not derive. Omitted from JSON: causaltop -json emits the
	// derived view, not a cluster-wide metrics dump.
	Snapshot Snapshot `json:"-"`
}

// Offender names the member (and, when peer-scoped, the peer) behind a
// cluster-wide worst value.
type Offender struct {
	Member string `json:"member,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Value  int64  `json:"value"`
}

// ClusterView merges every member's view into the cluster-level
// signals the §4 consistency model cares about: is causal delivery
// keeping up (lag), how stale can a read get (visibility, stability
// frontier), and is the membership in agreement about epochs.
type ClusterView struct {
	ScrapedAt time.Time    `json:"scraped_at"`
	Members   []MemberView `json:"members"`
	Up        int          `json:"up"`
	Down      int          `json:"down"`

	MaxHoldback   Offender `json:"max_holdback"`
	MaxPendingAge Offender `json:"max_pending_age_ms"`
	MaxFrontier   Offender `json:"max_frontier_lag"`

	// WorstVisibilityP99 is the slowest member's p99 send-to-deliver
	// latency in seconds.
	WorstVisibilityP99 float64 `json:"worst_visibility_p99_s"`

	// Stability frontier across up members: every deferred read is
	// served from a cycle >= MinStableCycle, and StabilitySkew bounds
	// how far apart members' agreement points sit.
	MinStableCycle int64 `json:"min_stable_cycle"`
	MaxStableCycle int64 `json:"max_stable_cycle"`
	StabilitySkew  int64 `json:"stability_skew"`

	MinEpoch  int64 `json:"min_epoch"`
	MaxEpoch  int64 `json:"max_epoch"`
	EpochSkew int64 `json:"epoch_skew"`

	ShedLinks int      `json:"shed_links"`
	MaxRTT    Offender `json:"max_rtt_us"`
}

// healthzBody mirrors the Healthz route's JSON.
type healthzBody struct {
	Member        string  `json:"member"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Scraper pulls member telemetry over HTTP. The zero value is usable.
type Scraper struct {
	// Client, when nil, falls back to a private client with Timeout.
	Client *http.Client
	// Timeout bounds each scrape when Client is nil (default 2s).
	Timeout time.Duration

	once sync.Once
	c    *http.Client
}

func (s *Scraper) client() *http.Client {
	s.once.Do(func() {
		s.c = s.Client
		if s.c == nil {
			to := s.Timeout
			if to <= 0 {
				to = 2 * time.Second
			}
			s.c = &http.Client{Timeout: to}
		}
	})
	return s.c
}

// normalizeTarget accepts "host:port" or a full URL and returns the
// base URL without a trailing slash.
func normalizeTarget(target string) string {
	t := strings.TrimSuffix(strings.TrimSpace(target), "/")
	if !strings.Contains(t, "://") {
		t = "http://" + t
	}
	return t
}

func (s *Scraper) getJSON(ctx context.Context, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// ScrapeMember fetches one member's /vars and /healthz and derives its
// MemberView. A failed scrape returns a view with Up=false and Err set
// rather than an error: one dead member must not hide the rest of the
// cluster, which is the very condition the dashboard exists to show.
func (s *Scraper) ScrapeMember(ctx context.Context, target string) MemberView {
	base := normalizeTarget(target)
	mv := MemberView{Target: target, Member: target}
	var snap Snapshot
	if err := s.getJSON(ctx, base+"/vars", &snap); err != nil {
		mv.Err = err.Error()
		return mv
	}
	mv.Up = true
	mv.Snapshot = snap
	var hz healthzBody
	if err := s.getJSON(ctx, base+"/healthz", &hz); err == nil {
		if hz.Member != "" {
			mv.Member = hz.Member
		}
		mv.UptimeSeconds = hz.UptimeSeconds
	}
	deriveMember(&mv)
	return mv
}

// ScrapeCluster scrapes all targets concurrently and aggregates.
func (s *Scraper) ScrapeCluster(ctx context.Context, targets []string) ClusterView {
	members := make([]MemberView, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t string) {
			defer wg.Done()
			members[i] = s.ScrapeMember(ctx, t)
		}(i, t)
	}
	wg.Wait()
	return Aggregate(members)
}

// deriveMember fills the derived fields of mv from its raw snapshot.
func deriveMember(mv *MemberView) {
	snap := mv.Snapshot

	// Per-peer causal lag: join the two gauge families on peer label.
	lag := map[string]*PeerLag{}
	peerOrder := []string{}
	at := func(peer string) *PeerLag {
		if p, ok := lag[peer]; ok {
			return p
		}
		p := &PeerLag{Peer: peer}
		lag[peer] = p
		peerOrder = append(peerOrder, peer)
		return p
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "causal_peer_holdback_depth":
			at(g.Label).HoldbackDepth = g.Value
		case "causal_peer_pending_age_ms":
			at(g.Label).PendingAgeMS = g.Value
		}
	}
	sort.Strings(peerOrder)
	for _, peer := range peerOrder {
		p := *lag[peer]
		mv.PeerLags = append(mv.PeerLags, p)
		if p.HoldbackDepth > mv.MaxHoldbackDepth {
			mv.MaxHoldbackDepth = p.HoldbackDepth
		}
		if p.PendingAgeMS > mv.MaxPendingAgeMS {
			mv.MaxPendingAgeMS = p.PendingAgeMS
		}
	}

	// Visibility quantiles merge every origin's histogram.
	mv.VisibilityP50 = snap.Quantile("causal_visibility_seconds", 0.50)
	mv.VisibilityP99 = snap.Quantile("causal_visibility_seconds", 0.99)
	mv.VisibilityP999 = snap.Quantile("causal_visibility_seconds", 0.999)
	for _, h := range snap.Histograms {
		if h.Name == "causal_visibility_seconds" {
			mv.VisibilityCount += h.Count
		}
	}

	// Link health: join RTT/outstanding/shed gauges and the retransmit
	// counter family on peer label.
	links := map[string]*LinkHealth{}
	linkOrder := []string{}
	link := func(peer string) *LinkHealth {
		if l, ok := links[peer]; ok {
			return l
		}
		l := &LinkHealth{Peer: peer}
		links[peer] = l
		linkOrder = append(linkOrder, peer)
		return l
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "reliable_link_rtt_us":
			link(g.Label).RTTMicros = g.Value
		case "reliable_link_outstanding":
			link(g.Label).Outstanding = g.Value
		case "reliable_link_shed":
			link(g.Label).Shed = g.Value != 0
		}
	}
	for _, c := range snap.Counters {
		if c.Name == "reliable_link_retransmits_total" {
			link(c.Label).Retransmits = c.Value
		}
	}
	sort.Strings(linkOrder)
	for _, peer := range linkOrder {
		mv.Links = append(mv.Links, *links[peer])
	}

	if v, ok := snap.GaugeValue("total_epoch", ""); ok {
		mv.Epoch = v
	}
	if v, ok := snap.GaugeValue("core_stable_cycle", ""); ok {
		mv.StableCycle = v
	}
	if v, ok := snap.GaugeValue("core_stable_age_ms", ""); ok {
		mv.StableAgeMS = v
	}
	for _, g := range snap.Gauges {
		if g.Name == "total_member_frontier_lag" && g.Value > mv.MaxFrontierLag {
			mv.MaxFrontierLag = g.Value
		}
	}
	if v, ok := snap.GaugeValue("runtime_goroutines", ""); ok {
		mv.Goroutines = v
	}
	if v, ok := snap.GaugeValue("runtime_heap_inuse_bytes", ""); ok {
		mv.HeapInuseBytes = v
	}
}

// Aggregate folds member views into the cluster view. Down members
// count toward Down but contribute nothing to the derived extrema, so
// a partitioned member reads as absent, not as healthy.
func Aggregate(members []MemberView) ClusterView {
	cv := ClusterView{ScrapedAt: time.Now(), Members: members}
	first := true
	for i := range members {
		m := &members[i]
		if !m.Up {
			cv.Down++
			continue
		}
		cv.Up++
		for _, p := range m.PeerLags {
			if p.HoldbackDepth > cv.MaxHoldback.Value {
				cv.MaxHoldback = Offender{Member: m.Member, Peer: p.Peer, Value: p.HoldbackDepth}
			}
			if p.PendingAgeMS > cv.MaxPendingAge.Value {
				cv.MaxPendingAge = Offender{Member: m.Member, Peer: p.Peer, Value: p.PendingAgeMS}
			}
		}
		if m.MaxFrontierLag > cv.MaxFrontier.Value {
			cv.MaxFrontier = Offender{Member: m.Member, Value: m.MaxFrontierLag}
		}
		if m.VisibilityP99 > cv.WorstVisibilityP99 {
			cv.WorstVisibilityP99 = m.VisibilityP99
		}
		for _, l := range m.Links {
			if l.Shed {
				cv.ShedLinks++
			}
			if l.RTTMicros > cv.MaxRTT.Value {
				cv.MaxRTT = Offender{Member: m.Member, Peer: l.Peer, Value: l.RTTMicros}
			}
		}
		if first {
			cv.MinStableCycle, cv.MaxStableCycle = m.StableCycle, m.StableCycle
			cv.MinEpoch, cv.MaxEpoch = m.Epoch, m.Epoch
			first = false
			continue
		}
		if m.StableCycle < cv.MinStableCycle {
			cv.MinStableCycle = m.StableCycle
		}
		if m.StableCycle > cv.MaxStableCycle {
			cv.MaxStableCycle = m.StableCycle
		}
		if m.Epoch < cv.MinEpoch {
			cv.MinEpoch = m.Epoch
		}
		if m.Epoch > cv.MaxEpoch {
			cv.MaxEpoch = m.Epoch
		}
	}
	cv.StabilitySkew = cv.MaxStableCycle - cv.MinStableCycle
	cv.EpochSkew = cv.MaxEpoch - cv.MinEpoch
	return cv
}
