package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// family is the registry-side record behind CounterFamily, GaugeFamily
// and HistogramFamily: one metric name, one label key, lazily minted
// per-label children. The fast path (With on an already-minted label) is
// an RLock + map hit — no allocation — so hot paths may call With per
// event, though engines normally resolve children once at construction.
type family struct {
	name   string
	help   string
	key    string // label key ("peer", "link", ...)
	kind   string // "counter" | "gauge" | "histogram"
	bounds []float64

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64 // snapshot-time gauge children
}

func newFamily(name, help, key, kind string, bounds []float64) *family {
	return &family{
		name: name, help: help, key: key, kind: kind, bounds: bounds,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// CounterFamily mints per-label counters under one metric name. The zero
// value and nil are valid "telemetry disabled" families: With returns a
// nil *Counter whose methods are no-ops.
type CounterFamily struct{ f *family }

// With returns the counter for label, minting it on first use.
func (cf *CounterFamily) With(label string) *Counter {
	if cf == nil || cf.f == nil {
		return nil
	}
	cf.f.mu.RLock()
	c := cf.f.counters[label]
	cf.f.mu.RUnlock()
	if c != nil {
		return c
	}
	cf.f.mu.Lock()
	defer cf.f.mu.Unlock()
	if c := cf.f.counters[label]; c != nil {
		return c
	}
	c = &Counter{help: cf.f.help}
	cf.f.counters[label] = c
	return c
}

// GaugeFamily mints per-label gauges under one metric name. Nil-safe.
type GaugeFamily struct{ f *family }

// With returns the gauge for label, minting it on first use.
func (gf *GaugeFamily) With(label string) *Gauge {
	if gf == nil || gf.f == nil {
		return nil
	}
	gf.f.mu.RLock()
	g := gf.f.gauges[label]
	gf.f.mu.RUnlock()
	if g != nil {
		return g
	}
	gf.f.mu.Lock()
	defer gf.f.mu.Unlock()
	if g := gf.f.gauges[label]; g != nil {
		return g
	}
	g = &Gauge{help: gf.f.help}
	gf.f.gauges[label] = g
	return g
}

// Func registers a snapshot-time gauge child for label — the per-peer
// analogue of Registry.GaugeFunc, for values computed by scanning engine
// state (holdback depth toward a peer) rather than maintained inline.
// The LAST registration per label wins: when a member incarnation is
// torn down and restarted against the same registry (chaos rejoin), the
// live engine's closure must replace the dead one's, which would
// otherwise keep reporting the frozen incarnation's state forever. fn
// runs under the registry snapshot lock; it may take subsystem locks
// but must not touch the registry.
func (gf *GaugeFamily) Func(label string, fn func() int64) {
	if gf == nil || gf.f == nil || fn == nil {
		return
	}
	gf.f.mu.Lock()
	defer gf.f.mu.Unlock()
	gf.f.funcs[label] = fn
}

// HistogramFamily mints per-label histograms (one shared bucket ladder)
// under one metric name. Nil-safe.
type HistogramFamily struct{ f *family }

// With returns the histogram for label, minting it on first use.
func (hf *HistogramFamily) With(label string) *Histogram {
	if hf == nil || hf.f == nil {
		return nil
	}
	hf.f.mu.RLock()
	h := hf.f.hists[label]
	hf.f.mu.RUnlock()
	if h != nil {
		return h
	}
	hf.f.mu.Lock()
	defer hf.f.mu.Unlock()
	if h := hf.f.hists[label]; h != nil {
		return h
	}
	h = &Histogram{
		help:   hf.f.help,
		bounds: hf.f.bounds,
		counts: make([]atomic.Uint64, len(hf.f.bounds)+1),
	}
	hf.f.hists[label] = h
	return h
}

// CounterFamily registers (or returns the existing) per-label counter
// family. key is the label key every child shares ("peer"). Re-requesting
// a family name with a different key panics — series under one name must
// agree on their label key.
func (r *Registry) CounterFamily(name, help, key string) *CounterFamily {
	if r == nil {
		return nil
	}
	return &CounterFamily{f: r.family(name, help, key, "counter", nil)}
}

// GaugeFamily registers (or returns the existing) per-label gauge family.
func (r *Registry) GaugeFamily(name, help, key string) *GaugeFamily {
	if r == nil {
		return nil
	}
	return &GaugeFamily{f: r.family(name, help, key, "gauge", nil)}
}

// HistogramFamily registers (or returns the existing) per-label histogram
// family. As with Histogram, re-registration keeps the first bucket
// ladder.
func (r *Registry) HistogramFamily(name, help, key string, buckets []float64) *HistogramFamily {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram family %q buckets not increasing", name))
		}
	}
	return &HistogramFamily{f: r.family(name, help, key, "histogram", append([]float64(nil), buckets...))}
}

func (r *Registry) family(name, help, key, kind string, bounds []float64) *family {
	if !validName(key) {
		panic(fmt.Sprintf("telemetry: invalid label key %q for family %q", key, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: family %q already registered as a %s family", name, f.kind))
		}
		if f.key != key {
			panic(fmt.Sprintf("telemetry: family %q already registered with label key %q", name, f.key))
		}
		return f
	}
	r.checkNameLocked(name, "family")
	f := newFamily(name, help, key, kind, bounds)
	r.families[name] = f
	return f
}

// snapshotInto appends every child series to the snapshot. Caller holds
// the registry lock; f.mu orders against concurrent minting.
func (f *family) snapshotInto(s *Snapshot) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for label, c := range f.counters {
		s.Counters = append(s.Counters, CounterSnapshot{
			Name: f.name, Help: f.help, LabelKey: f.key, Label: label, Value: c.Value(),
		})
	}
	for label, g := range f.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{
			Name: f.name, Help: f.help, LabelKey: f.key, Label: label, Value: g.Value(),
		})
	}
	for label, fn := range f.funcs {
		s.Gauges = append(s.Gauges, GaugeSnapshot{
			Name: f.name, Help: f.help, LabelKey: f.key, Label: label, Value: fn(),
		})
	}
	for label, h := range f.hists {
		hs := HistogramSnapshot{
			Name: f.name, Help: f.help, LabelKey: f.key, Label: label,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
}
