package telemetry

import "sort"

// MetricDesc describes one registered metric for documentation: its
// name, kind, label key (families only), and help string. Unlike
// Snapshot it covers registration, not data — a family with no minted
// children still appears, which is what a metrics reference needs.
type MetricDesc struct {
	Name     string
	Kind     string // "counter" | "gauge" | "histogram"
	LabelKey string // non-empty for per-label families
	Help     string
}

// Describe returns every registered metric, sorted by name. Func-backed
// metrics report their exposition kind; the doc generator (cmd/metricsdoc,
// make metrics-doc) walks this to produce docs/METRICS.md.
func (r *Registry) Describe() []MetricDesc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricDesc, 0,
		len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs)+len(r.families))
	for name, c := range r.counters {
		out = append(out, MetricDesc{Name: name, Kind: "counter", Help: c.help})
	}
	for name, g := range r.gauges {
		out = append(out, MetricDesc{Name: name, Kind: "gauge", Help: g.help})
	}
	for name, h := range r.histograms {
		out = append(out, MetricDesc{Name: name, Kind: "histogram", Help: h.help})
	}
	for name, f := range r.funcs {
		kind := "gauge"
		if f.counter != nil {
			kind = "counter"
		}
		out = append(out, MetricDesc{Name: name, Kind: kind, Help: f.help})
	}
	for name, f := range r.families {
		out = append(out, MetricDesc{Name: name, Kind: f.kind, LabelKey: f.key, Help: f.help})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
