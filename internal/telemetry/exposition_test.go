package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestWriteTextGolden pins the Prometheus text exposition byte for byte:
// HELP/TYPE headers once per metric name, stable name-then-label
// ordering, cumulative buckets ending in +Inf, and _sum/_count lines
// consistent with the observations. A renderer change that reorders or
// reformats series breaks real scrape configs, so the expected text is
// spelled out in full.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_last", "Registered first, renders last.").Add(9)
	reg.Gauge("app_depth", "Queue depth.").Set(-3)
	h := reg.Histogram("app_wait_seconds", "Wait time.", []float64{0.1, 1})
	h.Observe(0.05) // first bucket
	h.Observe(0.5)  // second bucket
	h.Observe(5)    // +Inf bucket
	cf := reg.CounterFamily("app_sent_total", "Frames sent per peer.", "peer")
	cf.With("b").Add(2)
	cf.With("a").Add(1)
	hf := reg.HistogramFamily("app_rtt_seconds", "RTT per peer.", "peer", []float64{0.5})
	hf.With("a").Observe(0.25)
	hf.With("a").Observe(2)

	var b strings.Builder
	WriteText(&b, reg.Snapshot())
	want := `# HELP app_sent_total Frames sent per peer.
# TYPE app_sent_total counter
app_sent_total{peer="a"} 1
app_sent_total{peer="b"} 2
# HELP zz_last Registered first, renders last.
# TYPE zz_last counter
zz_last 9
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth -3
# HELP app_rtt_seconds RTT per peer.
# TYPE app_rtt_seconds histogram
app_rtt_seconds_bucket{peer="a",le="0.5"} 1
app_rtt_seconds_bucket{peer="a",le="+Inf"} 2
app_rtt_seconds_sum{peer="a"} 2.25
app_rtt_seconds_count{peer="a"} 2
# HELP app_wait_seconds Wait time.
# TYPE app_wait_seconds histogram
app_wait_seconds_bucket{le="0.1"} 1
app_wait_seconds_bucket{le="1"} 2
app_wait_seconds_bucket{le="+Inf"} 3
app_wait_seconds_sum 5.55
app_wait_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteTextHeaderOncePerFamily: a family with several children must
// emit its HELP/TYPE header exactly once.
func TestWriteTextHeaderOncePerFamily(t *testing.T) {
	reg := NewRegistry()
	gf := reg.GaugeFamily("fam_depth", "Depth per peer.", "peer")
	for _, p := range []string{"a", "b", "c", "d"} {
		gf.With(p).Set(1)
	}
	var b strings.Builder
	WriteText(&b, reg.Snapshot())
	if got := strings.Count(b.String(), "# TYPE fam_depth gauge"); got != 1 {
		t.Fatalf("TYPE header emitted %d times, want 1:\n%s", got, b.String())
	}
	if got := strings.Count(b.String(), "fam_depth{"); got != 4 {
		t.Fatalf("%d child series, want 4:\n%s", got, b.String())
	}
}

// TestRingConcurrentRecordSnapshot hammers one ring from parallel
// recorders while snapshots and Dropped reads race them; run under
// -race this is the regression net for the ring's locking. Accounting
// must balance exactly: every record is either in the final snapshot or
// counted dropped.
func TestRingConcurrentRecordSnapshot(t *testing.T) {
	const (
		capacity  = 64
		writers   = 8
		perWriter = 500
	)
	ring := NewRing(capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ring.Record(EventDeliver, "m", "origin", uint64(i), int64(w))
			}
		}(w)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := ring.Snapshot()
				if len(snap) > capacity {
					t.Errorf("snapshot holds %d events, cap %d", len(snap), capacity)
					return
				}
				_ = ring.Dropped()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := ring.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("final snapshot holds %d, want full ring of %d", len(snap), capacity)
	}
	if got := ring.Dropped() + uint64(len(snap)); got != writers*perWriter {
		t.Fatalf("dropped+retained = %d, want %d (accounting leak)", got, writers*perWriter)
	}
	// Oldest-first: At must be non-decreasing across the snapshot.
	for i := 1; i < len(snap); i++ {
		if snap[i].At < snap[i-1].At {
			t.Fatalf("snapshot out of order at %d: %d < %d", i, snap[i].At, snap[i-1].At)
		}
	}
}

// TestSnapshotEmptyRegistry: Get, GaugeValue, HistogramAt, Quantile and
// Compact must be well-behaved on a registry with nothing in it, and on
// the zero Snapshot.
func TestSnapshotEmptyRegistry(t *testing.T) {
	snap := NewRegistry().Snapshot()
	if got := snap.Get("anything"); got != 0 {
		t.Fatalf("Get on empty = %d, want 0", got)
	}
	if _, ok := snap.GaugeValue("anything", ""); ok {
		t.Fatal("GaugeValue found a series in an empty registry")
	}
	if _, ok := snap.HistogramAt("anything", ""); ok {
		t.Fatal("HistogramAt found a series in an empty registry")
	}
	if q := snap.Quantile("anything", 0.99); q != 0 {
		t.Fatalf("Quantile on empty = %v, want 0", q)
	}
	if got := snap.Compact(); got != "" {
		t.Fatalf("Compact on empty = %q, want empty", got)
	}
	var zero Snapshot
	if got := zero.Compact(); got != "" {
		t.Fatalf("Compact on zero snapshot = %q, want empty", got)
	}
	var b strings.Builder
	WriteText(&b, zero)
	if b.Len() != 0 {
		t.Fatalf("WriteText on zero snapshot emitted %q", b.String())
	}
}
