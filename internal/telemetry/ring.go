package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies a traced runtime event.
type EventKind uint8

// Event kinds recorded by the instrumented layers.
const (
	// EventSend: a broadcast left the local engine.
	EventSend EventKind = iota + 1
	// EventDeliver: a message was handed to the application in order.
	EventDeliver
	// EventDefer: a message was buffered awaiting a missing predecessor.
	EventDefer
	// EventStable: a replica established a stable point (Value = cycle).
	EventStable
	// EventDrop: the transport discarded a frame (fault or partition).
	EventDrop
	// EventFetch: a retransmission request was issued.
	EventFetch
	// EventEpoch: the total-order layer adopted a new epoch (Seq = epoch).
	EventEpoch
	// EventElect: a leader election completed at the new leader
	// (Seq = epoch, Value = re-proposed assignments).
	EventElect
	// EventViolation: the online causal auditor flagged an ordering
	// violation (Value = violation kind).
	EventViolation
	// EventRetransmit: the reliability sublayer re-sent a frame
	// (Seq = link sequence number).
	EventRetransmit
	// EventNack: the reliability sublayer requested a missing frame
	// (Seq = first missing link sequence, Value = gap width).
	EventNack
	// EventShed: the reliability sublayer shed an unresponsive peer
	// (Origin = the shed peer).
	EventShed
	// EventResync: a receiver skipped irrecoverable link sequences and
	// asked the layer above to resync (Origin = the link peer,
	// Value = sequences skipped).
	EventResync
)

// String returns the kind's wire/debug name.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventDefer:
		return "defer"
	case EventStable:
		return "stable"
	case EventDrop:
		return "drop"
	case EventFetch:
		return "fetch"
	case EventEpoch:
		return "epoch"
	case EventElect:
		return "elect"
	case EventViolation:
		return "violation"
	case EventRetransmit:
		return "retransmit"
	case EventNack:
		return "nack"
	case EventShed:
		return "shed"
	case EventResync:
		return "resync"
	default:
		return "unknown"
	}
}

// Event is one traced occurrence. The string fields must be immutable
// (member ids and label origins are); Record stores them by reference, so
// recording allocates nothing.
type Event struct {
	// At is the monotonic time since the ring was created.
	At time.Duration `json:"at_ns"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Member is the local member the event happened at.
	Member string `json:"member,omitempty"`
	// Origin and Seq identify the message label involved, when any.
	Origin string `json:"origin,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	// Value carries a kind-specific payload (buffer depth for EventDefer,
	// stable cycle for EventStable; 0 otherwise).
	Value int64 `json:"value,omitempty"`
}

// Ring is a fixed-capacity event tracer. Record overwrites the oldest
// event once full — memory is bounded by construction — and costs one
// short mutex section and no allocation. A nil *Ring is a valid disabled
// tracer: Record on it is a no-op, so layers thread a Ring through
// unconditionally.
//
// Ownership: the ring owns its slots; Snapshot returns copies. Producers
// must only pass strings that remain immutable for the process lifetime
// (ids, label origins) — the ring aliases them rather than copying.
type Ring struct {
	mu   sync.Mutex
	base time.Time
	buf  []Event
	next uint64 // total events ever recorded
}

// NewRing returns a tracer retaining the most recent capacity events
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{base: time.Now(), buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full. No-op on a
// nil ring.
func (r *Ring) Record(kind EventKind, member, origin string, seq uint64, value int64) {
	if r == nil {
		return
	}
	at := time.Since(r.base)
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = Event{
		At: at, Kind: kind, Member: member, Origin: origin, Seq: seq, Value: value,
	}
	r.next++
	r.mu.Unlock()
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped returns how many events have been overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// Snapshot copies the retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.next < n {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, n)
	start := r.next % n
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}
