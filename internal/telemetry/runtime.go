package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats per sampling window so a
// single Snapshot (which reads several runtime gauges back to back)
// triggers at most one stop-the-world stats collection.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	once bool
}

const memSampleWindow = 250 * time.Millisecond

func (m *memSampler) read(f func(*runtime.MemStats) int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.once || time.Since(m.at) > memSampleWindow {
		runtime.ReadMemStats(&m.ms)
		m.at = time.Now()
		m.once = true
	}
	return f(&m.ms)
}

// RegisterRuntime registers process-level runtime gauges — goroutine
// count, heap in use, GC pause totals and cycle count — as snapshot-time
// funcs, so they cost nothing between scrapes. Idempotent (first
// registration wins, like every func metric); nil registry is a no-op.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	// Every runtime-instrumented endpoint also identifies its build; the
	// scraper-facing contract is that /metrics answers "which binary is
	// this?" without a separate probe.
	RegisterBuildInfo(r)
	s := &memSampler{}
	r.GaugeFunc("runtime_goroutines",
		"live goroutines in this process",
		func() int64 { return int64(runtime.NumGoroutine()) })
	r.GaugeFunc("runtime_heap_inuse_bytes",
		"bytes in in-use heap spans",
		func() int64 { return s.read(func(ms *runtime.MemStats) int64 { return int64(ms.HeapInuse) }) })
	r.GaugeFunc("runtime_heap_objects",
		"live heap objects",
		func() int64 { return s.read(func(ms *runtime.MemStats) int64 { return int64(ms.HeapObjects) }) })
	r.GaugeFunc("runtime_next_gc_bytes",
		"heap size that triggers the next GC cycle",
		func() int64 { return s.read(func(ms *runtime.MemStats) int64 { return int64(ms.NextGC) }) })
	r.CounterFunc("runtime_gc_cycles_total",
		"completed GC cycles",
		func() uint64 { return uint64(s.read(func(ms *runtime.MemStats) int64 { return int64(ms.NumGC) })) })
	r.CounterFunc("runtime_gc_pause_ns_total",
		"cumulative stop-the-world GC pause nanoseconds",
		func() uint64 {
			return uint64(s.read(func(ms *runtime.MemStats) int64 { return int64(ms.PauseTotalNs) }))
		})
	r.CounterFunc("runtime_alloc_bytes_total",
		"cumulative bytes allocated on the heap",
		func() uint64 { return uint64(s.read(func(ms *runtime.MemStats) int64 { return int64(ms.TotalAlloc) })) })
}
