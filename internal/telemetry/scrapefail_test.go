package telemetry

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// These tests pin the scraper's failure paths: whatever a member endpoint
// does — emit garbage, hang, or serve only half its routes — the scrape
// must degrade to a Down row that the cluster view surfaces, never to a
// hidden or fabricated-healthy member.

func TestScrapeMemberMalformedVars(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/vars" {
			_, _ = w.Write([]byte(`{"counters": [{"name": "x", "value":`)) // truncated JSON
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	s := &Scraper{}
	mv := s.ScrapeMember(context.Background(), srv.URL)
	if mv.Up {
		t.Fatal("malformed /vars JSON scraped as Up")
	}
	if mv.Err == "" {
		t.Fatal("down member carries no error")
	}
	assertDownNotHidden(t, mv)
}

func TestScrapeMemberTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the scrape past its deadline
	}))
	// Unblock the handler before Close: httptest.Server.Close waits for
	// in-flight handlers, and defers run last-in-first-out.
	defer srv.Close()
	defer close(release)

	s := &Scraper{Timeout: 50 * time.Millisecond}
	start := time.Now()
	mv := s.ScrapeMember(context.Background(), srv.URL)
	if mv.Up {
		t.Fatal("hung endpoint scraped as Up")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("scrape blocked %v, want the configured 50ms timeout to bound it", waited)
	}
	if mv.Err == "" {
		t.Fatal("timed-out member carries no error")
	}
	assertDownNotHidden(t, mv)
}

// TestScrapeMemberHalfDead covers the zombie shape: the process answers
// /healthz but /vars is gone (handler crashed, route misconfigured). A
// green healthcheck must not make the member look scrapeable.
func TestScrapeMemberHalfDead(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			_, _ = w.Write([]byte(`{"member":"zombie","uptime_seconds":5}`))
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	s := &Scraper{}
	mv := s.ScrapeMember(context.Background(), srv.URL)
	if mv.Up {
		t.Fatal("member without /vars scraped as Up")
	}
	if !strings.Contains(mv.Err, "status") {
		t.Fatalf("Err = %q, want the /vars HTTP status", mv.Err)
	}
	assertDownNotHidden(t, mv)
}

// assertDownNotHidden folds the down view into a cluster with one healthy
// member and asserts the down member stays visible: counted in Down,
// present in Members, contributing nothing to the derived extrema.
func assertDownNotHidden(t *testing.T, down MemberView) {
	t.Helper()
	healthy := MemberView{Target: "ok:1", Member: "ok", Up: true, Epoch: 3, StableCycle: 7}
	cv := Aggregate([]MemberView{down, healthy})
	if cv.Up != 1 || cv.Down != 1 {
		t.Fatalf("up/down = %d/%d, want 1/1", cv.Up, cv.Down)
	}
	if len(cv.Members) != 2 {
		t.Fatalf("down member dropped from Members: %+v", cv.Members)
	}
	var found bool
	for _, m := range cv.Members {
		if m.Target == down.Target {
			found = true
			if m.Up {
				t.Fatal("down member flipped to Up in the cluster view")
			}
			if m.Err == "" {
				t.Fatal("down member's error lost in aggregation")
			}
		}
	}
	if !found {
		t.Fatalf("down member %q hidden from the cluster view", down.Target)
	}
	// Extrema derive from the healthy member alone — a down member must
	// not zero them out or contribute phantom values.
	if cv.MinEpoch != 3 || cv.MaxEpoch != 3 || cv.MinStableCycle != 7 {
		t.Fatalf("down member polluted extrema: %+v", cv)
	}
}

// TestBuildInfoGauge pins the satellite contract: RegisterRuntime (and so
// every telemetry.Serve endpoint) exposes telemetry_build_info{version}=1.
func TestBuildInfoGauge(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() is empty")
	}
	reg := NewRegistry()
	RegisterRuntime(reg)
	snap := reg.Snapshot()
	for _, g := range snap.Gauges {
		if g.Name == "telemetry_build_info" {
			if g.Label != Version() {
				t.Fatalf("build info labeled %q, want Version() %q", g.Label, Version())
			}
			if g.Value != 1 {
				t.Fatalf("telemetry_build_info = %d, want constant 1", g.Value)
			}
			return
		}
	}
	t.Fatalf("telemetry_build_info not registered; gauges: %+v", snap.Gauges)
}
