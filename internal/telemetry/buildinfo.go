package telemetry

import (
	"runtime/debug"
	"sync"
)

// buildVersion caches the answer: ReadBuildInfo walks the embedded module
// data on every call, and both the -version flags and the build-info gauge
// want the same string.
var buildVersion = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	// Module builds from a checkout carry no tag; fall back to the VCS
	// revision stamped by the toolchain.
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
})

// Version reports the running binary's version: the main module's version
// when tagged, otherwise the VCS revision (short, "-dirty" when the tree
// was modified), otherwise "devel"/"unknown". Every command's -version
// flag prints it.
func Version() string { return buildVersion() }

// RegisterBuildInfo publishes the binary's identity as the conventional
// constant gauge telemetry_build_info{version="..."} = 1, so a scraper can
// tell which build is serving each member endpoint. Idempotent; nil
// registry is a no-op.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFamily("telemetry_build_info",
		"constant 1, labeled with the running binary's version",
		"version").With(Version()).Set(1)
}
