package graph

import (
	"fmt"
	"strings"
)

// DOT renders the dependency graph in Graphviz dot syntax, nodes and
// edges in deterministic order. Edges point from ancestor to descendant
// (m -> m' means m' occurs after m), matching Figure 3's orientation.
// Useful for inspecting extracted stable graphs:
//
//	go run ./cmd/causalsim -dot | dot -Tsvg > graph.svg
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n.String())
	}
	for _, n := range g.Nodes() {
		for _, s := range g.Successors(n) {
			fmt.Fprintf(&b, "  %q -> %q;\n", n.String(), s.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
