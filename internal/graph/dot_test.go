package graph

import (
	"strings"
	"testing"

	"causalshare/internal/message"
)

func TestDOTDeterministicAndComplete(t *testing.T) {
	g := diamond(t)
	first := g.DOT("fig3")
	for i := 0; i < 5; i++ {
		if g.DOT("fig3") != first {
			t.Fatal("DOT output not deterministic")
		}
	}
	for _, want := range []string{
		`digraph "fig3"`,
		`"a#1" -> "b#1"`,
		`"a#1" -> "c#1"`,
		`"b#1" -> "a#2"`,
		`"c#1" -> "a#2"`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("DOT missing %q:\n%s", want, first)
		}
	}
	if strings.Contains(first, `"a#2" ->`) {
		t.Error("leaf node has outgoing edge in DOT")
	}
}

func TestDOTEmptyGraph(t *testing.T) {
	out := New().DOT("empty")
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "}") {
		t.Errorf("malformed empty DOT: %s", out)
	}
}

func TestDOTIsolatedNode(t *testing.T) {
	g := New()
	g.AddNode(message.Label{Origin: "solo", Seq: 1})
	if !strings.Contains(g.DOT("g"), `"solo#1";`) {
		t.Error("isolated node missing from DOT")
	}
}
