package graph_test

import (
	"fmt"

	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// Figure 3's dependency forms: Msg fans out to two concurrent dependents,
// which an AND-dependent message joins back.
func ExampleGraph() {
	msgNode := message.Label{Origin: "s", Seq: 1}
	m1 := message.Label{Origin: "a", Seq: 1}
	m2 := message.Label{Origin: "b", Seq: 1}
	join := message.Label{Origin: "s", Seq: 2}

	g := graph.New()
	_ = g.AddEdges(m1, []message.Label{msgNode})
	_ = g.AddEdges(m2, []message.Label{msgNode})
	_ = g.AddEdges(join, []message.Label{m1, m2})

	fmt.Println("m1 || m2:", g.Concurrent(m1, m2))
	fmt.Println("Msg ≺ join:", g.HappensBefore(msgNode, join))
	fmt.Println("admissible orders:", g.CountLinearizations(0))
	order, _ := g.TopoSort()
	fmt.Println("one order:", order)
	// Output:
	// m1 || m2: true
	// Msg ≺ join: true
	// admissible orders: 2
	// one order: [s#1 a#1 b#1 s#2]
}

func ExampleGraph_MeanWidth() {
	g := graph.New()
	root := message.Label{Origin: "r", Seq: 1}
	_ = g.AddEdges(root, nil)
	for i := uint64(1); i <= 3; i++ {
		_ = g.AddEdges(message.Label{Origin: "c", Seq: i}, []message.Label{root})
	}
	fmt.Printf("%.1f\n", g.MeanWidth())
	// Output:
	// 2.0
}
