package graph

import (
	"testing"
	"testing/quick"

	"causalshare/internal/message"
)

func lbl(o string, s uint64) message.Label { return message.Label{Origin: o, Seq: s} }

// diamond builds Msg -> {m1, m2} -> final: the paper's Figure 3 composed —
// many-to-one fan-out from Msg and a one-to-many AND dependency into final.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	msg, m1, m2, fin := lbl("a", 1), lbl("b", 1), lbl("c", 1), lbl("a", 2)
	if err := g.AddEdges(msg, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdges(m1, []message.Label{msg}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdges(m2, []message.Label{msg}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdges(fin, []message.Label{m1, m2}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure3GraphForms(t *testing.T) {
	// Many-to-one: OccursAfter(m1', Msg); OccursAfter(m2', Msg) — m1', m2'
	// concurrent. One-to-many: OccursAfter(Msg', m1 ∧ m2).
	g := diamond(t)
	msg, m1, m2, fin := lbl("a", 1), lbl("b", 1), lbl("c", 1), lbl("a", 2)

	if !g.HappensBefore(msg, m1) || !g.HappensBefore(msg, m2) {
		t.Error("Msg must precede both dependents")
	}
	if !g.Concurrent(m1, m2) {
		t.Error("m1' and m2' must be concurrent (no relation specified)")
	}
	if !g.HappensBefore(msg, fin) {
		t.Error("precedence must be transitive through the diamond")
	}
	if !g.HappensBefore(m1, fin) || !g.HappensBefore(m2, fin) {
		t.Error("AND dependency must order fin after both m1 and m2")
	}
	if got := g.Roots(); len(got) != 1 || got[0] != msg {
		t.Errorf("Roots() = %v, want [%v]", got, msg)
	}
	if got := g.Leaves(); len(got) != 1 || got[0] != fin {
		t.Errorf("Leaves() = %v, want [%v]", got, fin)
	}
}

func TestAddMessage(t *testing.T) {
	g := New()
	m := message.Message{
		Label: lbl("a", 1),
		Deps:  message.After(lbl("b", 1)),
		Kind:  message.KindCommutative,
		Op:    "inc",
	}
	if err := g.AddMessage(m); err != nil {
		t.Fatalf("AddMessage: %v", err)
	}
	if !g.Has(lbl("b", 1)) {
		t.Error("dependency label must be added as a node")
	}
	if !g.HappensBefore(lbl("b", 1), lbl("a", 1)) {
		t.Error("edge from dep to message missing")
	}
	bad := message.Message{Label: message.Nil, Kind: message.KindRead}
	if err := g.AddMessage(bad); err == nil {
		t.Error("AddMessage must reject invalid messages")
	}
}

func TestCycleRejection(t *testing.T) {
	g := New()
	a, b, c := lbl("a", 1), lbl("b", 1), lbl("c", 1)
	if err := g.AddEdges(b, []message.Label{a}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdges(c, []message.Label{b}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdges(a, []message.Label{c}); err == nil {
		t.Fatal("cycle a->b->c->a accepted")
	}
	// Graph must be unchanged by the failed insert.
	if g.HappensBefore(c, a) {
		t.Error("failed insert left a partial edge")
	}
	if err := g.AddEdges(a, []message.Label{a}); err == nil {
		t.Error("self edge accepted")
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[message.Label]int, len(order))
	for i, l := range order {
		pos[l] = i
	}
	for _, n := range g.Nodes() {
		for _, p := range g.Predecessors(n) {
			if pos[p] >= pos[n] {
				t.Errorf("%v sorted after dependent %v", p, n)
			}
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond(t)
	first, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d: order differs at %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestLinearizations(t *testing.T) {
	// Diamond has exactly 2 linearizations: Msg (m1 m2 | m2 m1) fin.
	g := diamond(t)
	lins := g.Linearizations(0)
	if len(lins) != 2 {
		t.Fatalf("diamond linearizations = %d, want 2", len(lins))
	}
	for _, lin := range lins {
		if lin[0] != lbl("a", 1) || lin[3] != lbl("a", 2) {
			t.Errorf("linearization %v violates diamond order", lin)
		}
	}
	if got := g.CountLinearizations(0); got != 2 {
		t.Errorf("CountLinearizations = %d, want 2", got)
	}
}

func TestLinearizationsFactorial(t *testing.T) {
	// The paper bounds L by (r+1)! — r fully concurrent messages after a
	// root give exactly r! orders of the middle layer.
	g := New()
	root := lbl("r", 1)
	if err := g.AddEdges(root, nil); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := g.AddEdges(lbl("c", i), []message.Label{root}); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.CountLinearizations(0); got != 24 {
		t.Errorf("4 concurrent messages: %d linearizations, want 4! = 24", got)
	}
}

func TestLinearizationsLimit(t *testing.T) {
	g := New()
	for i := uint64(1); i <= 6; i++ {
		if err := g.AddEdges(lbl("c", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(g.Linearizations(10)); got != 10 {
		t.Errorf("limited enumeration returned %d, want 10", got)
	}
	if got := g.CountLinearizations(50); got != 50 {
		t.Errorf("limited count returned %d, want 50", got)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond(t)
	msg, m1, m2, fin := lbl("a", 1), lbl("b", 1), lbl("c", 1), lbl("a", 2)
	anc := g.Ancestors(fin)
	if len(anc) != 3 {
		t.Fatalf("Ancestors(fin) = %v, want 3 nodes", anc)
	}
	desc := g.Descendants(msg)
	if len(desc) != 3 {
		t.Fatalf("Descendants(msg) = %v, want 3 nodes", desc)
	}
	if len(g.Ancestors(msg)) != 0 || len(g.Descendants(fin)) != 0 {
		t.Error("root has no ancestors; leaf has no descendants")
	}
	if len(g.Ancestors(m1)) != 1 || len(g.Descendants(m2)) != 1 {
		t.Error("middle nodes have exactly one ancestor/descendant")
	}
}

func TestRemovePrunes(t *testing.T) {
	g := diamond(t)
	msg := lbl("a", 1)
	g.Remove(msg)
	if g.Has(msg) {
		t.Fatal("node still present after Remove")
	}
	if got := len(g.Roots()); got != 2 {
		t.Errorf("after pruning root, Roots() = %d nodes, want 2", got)
	}
	for _, n := range g.Nodes() {
		for _, p := range g.Predecessors(n) {
			if p == msg {
				t.Errorf("dangling edge from removed node into %v", n)
			}
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.Remove(lbl("a", 1))
	if !g.Has(lbl("a", 1)) {
		t.Error("Clone shares node set")
	}
	if !g.HappensBefore(lbl("a", 1), lbl("b", 1)) {
		t.Error("Clone shares edge sets")
	}
}

func TestLayersAndWidth(t *testing.T) {
	g := diamond(t)
	layers := g.Layers()
	if len(layers) != 3 {
		t.Fatalf("diamond Layers = %d, want 3", len(layers))
	}
	if len(layers[1]) != 2 {
		t.Errorf("middle layer width = %d, want 2", len(layers[1]))
	}
	if w := g.MeanWidth(); w < 1.3 || w > 1.4 {
		t.Errorf("MeanWidth = %f, want 4/3", w)
	}

	// A pure chain has width exactly 1.
	chain := New()
	prev := message.Nil
	for i := uint64(1); i <= 5; i++ {
		l := lbl("x", i)
		var deps []message.Label
		if !prev.IsNil() {
			deps = []message.Label{prev}
		}
		if err := chain.AddEdges(l, deps); err != nil {
			t.Fatal(err)
		}
		prev = l
	}
	if w := chain.MeanWidth(); w != 1.0 {
		t.Errorf("chain MeanWidth = %f, want 1.0", w)
	}
}

func TestConcurrentEdgeCases(t *testing.T) {
	g := diamond(t)
	a := lbl("a", 1)
	if g.Concurrent(a, a) {
		t.Error("a node is not concurrent with itself")
	}
	if g.Concurrent(a, lbl("zz", 9)) {
		t.Error("absent node cannot be concurrent")
	}
}

// propGraph builds a random DAG by only adding edges from lower to higher
// indices, which can never cycle.
func propGraph(edges []uint8, n uint8) *Graph {
	size := int(n%6) + 2
	g := New()
	for i := 0; i < size; i++ {
		g.AddNode(lbl("p", uint64(i+1)))
	}
	for _, e := range edges {
		from := int(e) % size
		to := int(e/16) % size
		if from < to {
			// Errors impossible by construction; ignore defensively.
			_ = g.AddEdges(lbl("p", uint64(to+1)), []message.Label{lbl("p", uint64(from+1))})
		}
	}
	return g
}

func TestPropTopoSortIsValid(t *testing.T) {
	f := func(edges []uint8, n uint8) bool {
		g := propGraph(edges, n)
		order, err := g.TopoSort()
		if err != nil || len(order) != g.Len() {
			return false
		}
		pos := make(map[message.Label]int)
		for i, l := range order {
			pos[l] = i
		}
		for _, node := range g.Nodes() {
			for _, p := range g.Predecessors(node) {
				if pos[p] >= pos[node] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropHappensBeforeIsStrictPartialOrder(t *testing.T) {
	f := func(edges []uint8, n uint8) bool {
		g := propGraph(edges, n)
		nodes := g.Nodes()
		for _, a := range nodes {
			if g.HappensBefore(a, a) {
				return false // irreflexive
			}
			for _, b := range nodes {
				if g.HappensBefore(a, b) && g.HappensBefore(b, a) {
					return false // antisymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropLinearizationsAllDistinctAndValid(t *testing.T) {
	f := func(edges []uint8) bool {
		g := propGraph(edges, 4) // <= 6 nodes keeps enumeration small
		lins := g.Linearizations(0)
		seen := make(map[string]bool)
		for _, lin := range lins {
			key := ""
			pos := make(map[message.Label]int)
			for i, l := range lin {
				pos[l] = i
				key += l.String() + "|"
			}
			if seen[key] {
				return false // duplicates
			}
			seen[key] = true
			for _, node := range g.Nodes() {
				for _, p := range g.Predecessors(node) {
					if pos[p] >= pos[node] {
						return false
					}
				}
			}
		}
		return len(lins) == g.CountLinearizations(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
