// Package graph implements the message dependency graphs of §3 of the
// paper: directed acyclic graphs whose nodes are message labels and whose
// edges encode OccursAfter relations (an edge m -> m' means m' occurs
// after m, i.e. m is an ancestor of m').
//
// The paper calls the graph a "stable form" of the application's causality
// information: it is reproducible across execution instances and is the
// object on which agreement operates (§3.2). This package supports:
//
//   - incremental construction from OccursAfter predicates,
//   - cycle rejection (a cyclic "causal order" is unsatisfiable),
//   - reachability and transitive-closure queries (the '≺' relation),
//   - enumeration and counting of linearizations (the event sequences
//     EvSeq_i of §4.1, used by the transition-preserving check),
//   - concurrency-degree metrics (antichain layers) for experiment E8, and
//   - pruning of delivered prefixes so state stays O(active window).
package graph

import (
	"fmt"
	"sort"

	"causalshare/internal/message"
)

// Graph is a mutable DAG over message labels. The zero value is not usable;
// call New. Graph is not safe for concurrent use; the delivery engines
// guard it with their own locks.
type Graph struct {
	// succ maps a label to the set of labels that occur after it.
	succ map[message.Label]map[message.Label]struct{}
	// pred maps a label to the set of labels it occurs after.
	pred map[message.Label]map[message.Label]struct{}
	// nodes tracks membership, including isolated nodes.
	nodes map[message.Label]struct{}
}

// New returns an empty dependency graph.
func New() *Graph {
	return &Graph{
		succ:  make(map[message.Label]map[message.Label]struct{}),
		pred:  make(map[message.Label]map[message.Label]struct{}),
		nodes: make(map[message.Label]struct{}),
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Has reports whether label l is a node of the graph.
func (g *Graph) Has(l message.Label) bool {
	_, ok := g.nodes[l]
	return ok
}

// AddNode inserts an isolated node if not present.
func (g *Graph) AddNode(l message.Label) {
	if l.IsNil() {
		return
	}
	g.nodes[l] = struct{}{}
}

// AddMessage inserts the message's label with edges from each of its
// OccursAfter dependencies (dependencies are added as nodes if new — a
// member can learn of a predecessor from a successor's predicate before
// the predecessor itself arrives). It fails if the edge set would create a
// cycle, leaving the graph unchanged.
func (g *Graph) AddMessage(m message.Message) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	return g.AddEdges(m.Label, m.Deps.Labels())
}

// AddEdges inserts node l with edges dep -> l for every dep. It rejects
// additions that would create a cycle.
func (g *Graph) AddEdges(l message.Label, deps []message.Label) error {
	if l.IsNil() {
		return fmt.Errorf("graph: nil label")
	}
	for _, d := range deps {
		if d == l {
			return fmt.Errorf("graph: self edge on %v", l)
		}
		// Adding d -> l creates a cycle iff l already reaches d.
		if g.reaches(l, d) {
			return fmt.Errorf("graph: edge %v -> %v closes a cycle", d, l)
		}
	}
	g.AddNode(l)
	for _, d := range deps {
		g.AddNode(d)
		if g.succ[d] == nil {
			g.succ[d] = make(map[message.Label]struct{})
		}
		g.succ[d][l] = struct{}{}
		if g.pred[l] == nil {
			g.pred[l] = make(map[message.Label]struct{})
		}
		g.pred[l][d] = struct{}{}
	}
	return nil
}

// reaches reports whether there is a directed path from a to b.
func (g *Graph) reaches(a, b message.Label) bool {
	if a == b {
		return true
	}
	if !g.Has(a) || !g.Has(b) {
		return false
	}
	stack := []message.Label{a}
	seen := map[message.Label]struct{}{a: {}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.succ[n] {
			if s == b {
				return true
			}
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				stack = append(stack, s)
			}
		}
	}
	return false
}

// HappensBefore reports the transitive precedence a ≺ b (a strict path
// from a to b exists).
func (g *Graph) HappensBefore(a, b message.Label) bool {
	return a != b && g.reaches(a, b)
}

// Concurrent reports whether a and b are concurrent in the graph: distinct
// nodes with no path in either direction (the paper's ||{a, b}).
func (g *Graph) Concurrent(a, b message.Label) bool {
	if a == b || !g.Has(a) || !g.Has(b) {
		return false
	}
	return !g.reaches(a, b) && !g.reaches(b, a)
}

// Predecessors returns the direct OccursAfter dependencies of l in
// deterministic order.
func (g *Graph) Predecessors(l message.Label) []message.Label {
	return sortedSet(g.pred[l])
}

// Successors returns the direct dependents of l in deterministic order.
func (g *Graph) Successors(l message.Label) []message.Label {
	return sortedSet(g.succ[l])
}

// Ancestors returns every label with a path to l, in deterministic order.
func (g *Graph) Ancestors(l message.Label) []message.Label {
	return g.closure(l, g.pred)
}

// Descendants returns every label reachable from l, in deterministic order.
func (g *Graph) Descendants(l message.Label) []message.Label {
	return g.closure(l, g.succ)
}

func (g *Graph) closure(l message.Label, dir map[message.Label]map[message.Label]struct{}) []message.Label {
	out := make(map[message.Label]struct{})
	stack := []message.Label{l}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range dir[n] {
			if _, ok := out[next]; !ok {
				out[next] = struct{}{}
				stack = append(stack, next)
			}
		}
	}
	return sortedSet(out)
}

// Roots returns the nodes with no predecessors (deliverable immediately),
// in deterministic order.
func (g *Graph) Roots() []message.Label {
	out := make(map[message.Label]struct{})
	for n := range g.nodes {
		if len(g.pred[n]) == 0 {
			out[n] = struct{}{}
		}
	}
	return sortedSet(out)
}

// Leaves returns the nodes with no successors, in deterministic order.
func (g *Graph) Leaves() []message.Label {
	out := make(map[message.Label]struct{})
	for n := range g.nodes {
		if len(g.succ[n]) == 0 {
			out[n] = struct{}{}
		}
	}
	return sortedSet(out)
}

// Nodes returns all labels in deterministic order.
func (g *Graph) Nodes() []message.Label { return sortedSet(g.nodes) }

// Remove deletes l and all its edges. Pruning delivered ancestors keeps
// the stable graph O(active activity) rather than O(history); the
// delivered-ancestor GC of the OSend engine uses it.
func (g *Graph) Remove(l message.Label) {
	for p := range g.pred[l] {
		delete(g.succ[p], l)
	}
	for s := range g.succ[l] {
		delete(g.pred[s], l)
	}
	delete(g.pred, l)
	delete(g.succ, l)
	delete(g.nodes, l)
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New()
	for n := range g.nodes {
		out.nodes[n] = struct{}{}
	}
	for n, set := range g.succ {
		cp := make(map[message.Label]struct{}, len(set))
		for s := range set {
			cp[s] = struct{}{}
		}
		out.succ[n] = cp
	}
	for n, set := range g.pred {
		cp := make(map[message.Label]struct{}, len(set))
		for s := range set {
			cp[s] = struct{}{}
		}
		out.pred[n] = cp
	}
	return out
}

// TopoSort returns one deterministic linearization (Kahn's algorithm with
// sorted tie-breaks), or an error if the graph has a cycle (possible only
// if invariants were bypassed).
func (g *Graph) TopoSort() ([]message.Label, error) {
	indeg := make(map[message.Label]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	var frontier []message.Label
	for n, d := range indeg {
		if d == 0 {
			frontier = append(frontier, n)
		}
	}
	sortLabels(frontier)
	out := make([]message.Label, 0, len(g.nodes))
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		out = append(out, n)
		released := make([]message.Label, 0, len(g.succ[n]))
		for s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				released = append(released, s)
			}
		}
		sortLabels(released)
		frontier = mergeSorted(frontier, released)
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle among %d nodes", len(g.nodes)-len(out))
	}
	return out, nil
}

// Linearizations enumerates all topological orders of the graph, up to
// limit (0 means unlimited). These are the event sequences EvSeq_1..EvSeq_L
// of §4.1; the paper bounds L by (r+1)!. The transition-preserving check
// replays each against the state-transition function.
func (g *Graph) Linearizations(limit int) [][]message.Label {
	indeg := make(map[message.Label]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	var results [][]message.Label
	current := make([]message.Label, 0, len(g.nodes))
	var rec func()
	rec = func() {
		if limit > 0 && len(results) >= limit {
			return
		}
		if len(current) == len(g.nodes) {
			results = append(results, append([]message.Label(nil), current...))
			return
		}
		var avail []message.Label
		for n, d := range indeg {
			if d == 0 {
				avail = append(avail, n)
			}
		}
		sortLabels(avail)
		for _, n := range avail {
			indeg[n] = -1 // mark used
			for s := range g.succ[n] {
				indeg[s]--
			}
			current = append(current, n)
			rec()
			current = current[:len(current)-1]
			for s := range g.succ[n] {
				indeg[s]++
			}
			indeg[n] = 0
		}
	}
	rec()
	return results
}

// CountLinearizations returns the number of topological orders, counting
// at most limit (0 = unlimited). It shares the enumerator but avoids
// materializing sequences.
func (g *Graph) CountLinearizations(limit int) int {
	indeg := make(map[message.Label]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	count := 0
	var rec func(placed int)
	rec = func(placed int) {
		if limit > 0 && count >= limit {
			return
		}
		if placed == len(g.nodes) {
			count++
			return
		}
		for n, d := range indeg {
			if d != 0 {
				continue
			}
			indeg[n] = -1
			for s := range g.succ[n] {
				indeg[s]--
			}
			rec(placed + 1)
			for s := range g.succ[n] {
				indeg[s]++
			}
			indeg[n] = 0
			if limit > 0 && count >= limit {
				return
			}
		}
	}
	rec(0)
	return count
}

// Layers partitions the nodes into antichain layers: layer i holds the
// nodes whose longest path from a root has length i. All nodes within a
// layer are pairwise concurrent-or-independent in depth, so the mean layer
// width is the concurrency-degree metric of experiment E8.
func (g *Graph) Layers() [][]message.Label {
	order, err := g.TopoSort()
	if err != nil {
		return nil
	}
	depth := make(map[message.Label]int, len(order))
	maxDepth := 0
	for _, n := range order {
		d := 0
		for p := range g.pred[n] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[n] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	layers := make([][]message.Label, maxDepth+1)
	for _, n := range order {
		layers[depth[n]] = append(layers[depth[n]], n)
	}
	for _, l := range layers {
		sortLabels(l)
	}
	return layers
}

// MeanWidth returns the average antichain-layer width, a scalar measure of
// how much concurrency the causal order permits (1.0 = a total order).
func (g *Graph) MeanWidth() float64 {
	layers := g.Layers()
	if len(layers) == 0 {
		return 0
	}
	return float64(g.Len()) / float64(len(layers))
}

func sortedSet(set map[message.Label]struct{}) []message.Label {
	out := make([]message.Label, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sortLabels(out)
	return out
}

func sortLabels(ls []message.Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
}

// mergeSorted merges two label slices that are each sorted, preserving
// order. Used to keep Kahn frontiers deterministic.
func mergeSorted(a, b []message.Label) []message.Label {
	if len(b) == 0 {
		return a
	}
	out := make([]message.Label, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Less(b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
