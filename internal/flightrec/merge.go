package flightrec

import (
	"fmt"
	"sort"
	"time"
)

// Merge reconstructs one causally consistent cluster timeline from N
// member dumps. The happened-before relation is rebuilt offline exactly
// the way the broadcast layer enforces it online:
//
//   - program order: each member's ring is totally ordered by its own
//     monotonic clock;
//   - message order: a frame's send record at its origin precedes every
//     receive and delivery record for the same label elsewhere.
//
// Those send→recv edges double as skew constraints: member wall clocks
// are shifted (per-member offset, iterated to a fixed point) until no
// receive appears to precede its send, then the partial order is
// linearized by corrected wall time among causally ready records.
// Records that the partial order does NOT relate to their timeline
// predecessor are explicitly marked Concurrent — the rendered order for
// those is a tiebreak, not a fact.
func Merge(dumps []*Dump) *Timeline {
	dumps = append([]*Dump(nil), dumps...)
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].Member < dumps[j].Member })

	t := &Timeline{Dumps: dumps, Skew: make([]time.Duration, len(dumps))}
	for _, d := range dumps {
		t.Members = append(t.Members, d.Member)
	}

	// Flat node ids: member m's record i is base[m]+i.
	base := make([]int, len(dumps)+1)
	for m, d := range dumps {
		base[m+1] = base[m] + len(d.Records)
	}
	total := base[len(dumps)]
	memberOf := make([]int, total)
	for m := range dumps {
		for i := base[m]; i < base[m+1]; i++ {
			memberOf[i] = m
		}
	}

	// Cross-member edges: the send of label L → the first receive-side
	// record of L at each other member (recv preferred; deliver when the
	// recv record was overwritten by ring wrap).
	type labelKey struct {
		org string
		seq uint64
	}
	sends := make(map[labelKey]int, total/4)
	firstSeen := make(map[labelKey][]int) // receive-side node per member (-1 none)
	for m, d := range dumps {
		for i, rec := range d.Records {
			key := labelKey{d.Sym(rec.A.Org), rec.A.Seq}
			switch rec.Kind {
			case KindFrameSend:
				if _, ok := sends[key]; !ok {
					sends[key] = base[m] + i
				}
			case KindFrameRecv, KindDeliver:
				fs, ok := firstSeen[key]
				if !ok {
					fs = make([]int, len(dumps))
					for j := range fs {
						fs[j] = -1
					}
					firstSeen[key] = fs
				}
				if fs[m] == -1 {
					fs[m] = base[m] + i
				}
			}
		}
	}
	type edge struct{ from, to int }
	var cross []edge
	for key, from := range sends {
		for m, to := range firstSeen[key] {
			if to != -1 && m != memberOf[from] {
				cross = append(cross, edge{from, to})
			}
		}
	}

	// Skew correction to a fixed point (bounded passes): if a corrected
	// receive precedes its corrected send, the receiver's clock is behind
	// — shift the whole member forward by the deficit.
	wall := func(node int) int64 {
		m := memberOf[node]
		return dumps[m].Wall(dumps[m].Records[node-base[m]]) + int64(t.Skew[m])
	}
	for pass := 0; pass < 4*len(dumps)+4; pass++ {
		adjusted := false
		for _, e := range cross {
			if deficit := wall(e.from) - wall(e.to); deficit > 0 {
				t.Skew[memberOf[e.to]] += time.Duration(deficit)
				adjusted = true
			}
		}
		if !adjusted {
			break
		}
	}

	// Kahn linearization over program order + cross edges, releasing the
	// causally ready record with the smallest corrected wall time
	// (member name, then ring position, break exact ties — the schedule
	// is deterministic for identical inputs).
	indeg := make([]int, total)
	succ := make([][]int, total)
	for _, e := range cross {
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	for m := range dumps {
		for i := base[m] + 1; i < base[m+1]; i++ {
			indeg[i]++ // predecessor in program order
		}
	}
	before := func(a, b int) bool {
		wa, wb := wall(a), wall(b)
		if wa != wb {
			return wa < wb
		}
		if memberOf[a] != memberOf[b] {
			return t.Members[memberOf[a]] < t.Members[memberOf[b]]
		}
		return a < b
	}
	var ready []int
	push := func(n int) {
		ready = append(ready, n)
		for i := len(ready) - 1; i > 0 && before(ready[i], ready[i-1]); i-- {
			ready[i], ready[i-1] = ready[i-1], ready[i]
		}
	}
	for m := range dumps {
		if base[m] < base[m+1] {
			push(base[m])
		}
	}
	release := func(n int) {
		m := memberOf[n]
		if n+1 < base[m+1] {
			if indeg[n+1]--; indeg[n+1] == 0 {
				push(n + 1)
			}
		}
		for _, s := range succ[n] {
			if indeg[s]--; indeg[s] == 0 {
				push(s)
			}
		}
	}

	// Per-node vector clocks drive the Concurrent marking: a timeline
	// entry unordered with its predecessor is flagged, because its
	// placement is a wall-clock tiebreak, not happened-before.
	vc := make([][]uint32, total)
	t.Entries = make([]Entry, 0, total)
	emitted := 0
	prev := -1
	emit := func(n int) {
		m := memberOf[n]
		idx := n - base[m]
		clock := make([]uint32, len(dumps))
		if idx > 0 {
			copy(clock, vc[n-1])
		}
		for _, e := range cross {
			if e.to == n {
				for k, v := range vc[e.from] {
					if v > clock[k] {
						clock[k] = v
					}
				}
			}
		}
		clock[m] = uint32(idx + 1)
		vc[n] = clock
		concurrent := false
		if prev >= 0 {
			pm := memberOf[prev]
			// prev happened-before n iff n's clock has absorbed prev's
			// own-component counter.
			concurrent = clock[pm] < vc[prev][pm]
		}
		rec := dumps[m].Records[idx]
		if rec.Kind == KindViolation {
			t.Violations = append(t.Violations, len(t.Entries))
		}
		t.Entries = append(t.Entries, Entry{
			Member:     t.Members[m],
			MemberIdx:  m,
			Index:      idx,
			Rec:        rec,
			Wall:       wall(n),
			Concurrent: concurrent,
		})
		prev = n
		emitted++
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		emit(n)
		release(n)
	}
	// A cycle cannot arise from real recordings (sends precede receives
	// on every clock after correction), but a hand-corrupted dump could
	// manufacture one; release stuck nodes by wall order rather than
	// dropping them.
	for emitted < total {
		best := -1
		for n := 0; n < total; n++ {
			if vc[n] == nil && indeg[n] >= 0 && (best == -1 || before(n, best)) {
				if m := memberOf[n]; n == base[m] || vc[n-1] != nil {
					best = n
				}
			}
		}
		if best == -1 {
			break
		}
		emit(best)
		release(best)
	}
	return t
}

// Entry is one record placed on the merged timeline.
type Entry struct {
	Member    string
	MemberIdx int
	// Index is the record's position within its member's dump.
	Index int
	Rec   Record
	// Wall is the skew-corrected wall-clock estimate (unix nanos).
	Wall int64
	// Concurrent marks an entry the happened-before relation does not
	// order against its timeline predecessor: the rendered adjacency is
	// a clock tiebreak, not causality.
	Concurrent bool
}

// Timeline is the merged, causally consistent cluster history.
type Timeline struct {
	Members []string
	// Skew holds the per-member clock correction applied (index-aligned
	// with Members).
	Skew    []time.Duration
	Entries []Entry
	// Violations indexes the entries carrying auditor violations.
	Violations []int
	Dumps      []*Dump
}

// Label resolves a Ref in e's symbol table.
func (t *Timeline) Label(e Entry, r Ref) string { return t.Dumps[e.MemberIdx].Label(r) }

// Divergence names a delivery-order disagreement surfaced by comparing
// expected vs actual per-member delivery sequences.
type Divergence struct {
	// Origin is the sending member whose stream the members disagree on.
	Origin string
	// Label is the violating message, rendered "origin:seq".
	Label string
	// Members lists the disagreeing members.
	Members []string
	Detail  string
}

// DeliveryDiffs replays every member's delivery records and reports where
// actual order diverges from the expected one: a FIFO inversion inside
// one member (a later-sequenced message from an origin delivered before
// an earlier one), or a cross-member gap (one member skipped a message
// its peers delivered while moving past it). Each divergence names the
// message and the members that disagree. Members that adopted rejoin
// watermarks (KindSeed) are excluded from gap analysis: their skipped
// prefix was seeded, not lost.
func (t *Timeline) DeliveryDiffs() []Divergence {
	type seen struct {
		order []uint64
		have  map[uint64]bool
		max   uint64
	}
	// origin → member → delivery stream
	streams := make(map[string]map[string]*seen)
	// Members that adopted rejoin watermarks (KindSeed): history at or
	// below the watermark reached their state without local delivery
	// events, so a missing delivery is not evidence of a skip. The black
	// box records only the watermark count, not the per-origin values, so
	// gap analysis is suppressed for these members entirely; FIFO
	// inversions among the deliveries they did record still report.
	seeded := make(map[string]bool)
	for _, e := range t.Entries {
		if e.Rec.Kind == KindSeed {
			seeded[e.Member] = true
		}
		if e.Rec.Kind != KindDeliver {
			continue
		}
		org := t.Dumps[e.MemberIdx].Sym(e.Rec.A.Org)
		if org == "" {
			continue
		}
		perMember := streams[org]
		if perMember == nil {
			perMember = make(map[string]*seen)
			streams[org] = perMember
		}
		s := perMember[e.Member]
		if s == nil {
			s = &seen{have: make(map[uint64]bool)}
			perMember[e.Member] = s
		}
		s.order = append(s.order, e.Rec.A.Seq)
		s.have[e.Rec.A.Seq] = true
		if e.Rec.A.Seq > s.max {
			s.max = e.Rec.A.Seq
		}
	}

	origins := make([]string, 0, len(streams))
	for org := range streams {
		origins = append(origins, org)
	}
	sort.Strings(origins)

	var out []Divergence
	for _, org := range origins {
		perMember := streams[org]
		members := make([]string, 0, len(perMember))
		for m := range perMember {
			members = append(members, m)
		}
		sort.Strings(members)

		// FIFO inversions within one member.
		for _, m := range members {
			s := perMember[m]
			var hi uint64
			for _, seq := range s.order {
				if seq < hi {
					out = append(out, Divergence{
						Origin:  org,
						Label:   fmt.Sprintf("%s:%d", org, seq),
						Members: []string{m},
						Detail:  fmt.Sprintf("%s delivered %s:%d after %s:%d — causal/FIFO order inverted", m, org, seq, org, hi),
					})
				} else {
					hi = seq
				}
			}
		}

		// Cross-member gaps: m moved past seq without delivering it while
		// other members did deliver it.
		union := make(map[uint64][]string)
		for _, m := range members {
			for seq := range perMember[m].have {
				union[seq] = append(union[seq], m)
			}
		}
		seqs := make([]uint64, 0, len(union))
		for seq := range union {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			deliveredBy := union[seq]
			sort.Strings(deliveredBy)
			for _, m := range members {
				s := perMember[m]
				if !s.have[seq] && s.max > seq && !seeded[m] {
					out = append(out, Divergence{
						Origin:  org,
						Label:   fmt.Sprintf("%s:%d", org, seq),
						Members: append([]string{m}, deliveredBy...),
						Detail: fmt.Sprintf("%s skipped %s:%d (advanced to %s:%d) while %v delivered it",
							m, org, seq, org, s.max, deliveredBy),
					})
				}
			}
		}
	}
	return out
}
