package flightrec

import (
	"fmt"
	"net/http"
	"strings"

	"causalshare/internal/telemetry"
)

// Route exposes one recorder's black box at /flightrec as a binary
// snapshot download — `curl member:port/flightrec > member.fr` is a
// live-cluster dump with no coordination.
func (r *Recorder) Route() telemetry.Route {
	return telemetry.Route{Pattern: "/flightrec", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		serveDump(w, r)
	})}
}

// Route exposes a whole set: /flightrec lists members, and
// /flightrec/<member> downloads that member's snapshot.
func (s *Set) Route() telemetry.Route {
	return telemetry.Route{Pattern: "/flightrec/", Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		member := strings.TrimPrefix(strings.TrimPrefix(req.URL.Path, "/flightrec"), "/")
		if member == "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, m := range s.Members() {
				fmt.Fprintf(w, "/flightrec/%s\n", m)
			}
			return
		}
		s.mu.Lock()
		r := s.recs[member]
		s.mu.Unlock()
		if r == nil {
			http.Error(w, "flightrec: no such member", http.StatusNotFound)
			return
		}
		serveDump(w, r)
	})}
}

func serveDump(w http.ResponseWriter, r *Recorder) {
	if r == nil {
		http.Error(w, "flightrec: recorder not armed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", r.Member()+".fr"))
	if err := r.Dump(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
