package flightrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Magic heads every binary flight-record snapshot. The trailing version
// segment bumps on any incompatible layout change.
const Magic = "causalshare-flightrec/v1"

// Codec errors. Decode must return one of these (wrapped with detail) on
// any malformed input — truncated, bit-flipped, or adversarial — and must
// never panic; FuzzFlightRecDecode enforces that.
var (
	ErrBadMagic  = errors.New("flightrec: bad magic")
	ErrTruncated = errors.New("flightrec: truncated snapshot")
	ErrCorrupt   = errors.New("flightrec: corrupt snapshot")
	ErrChecksum  = errors.New("flightrec: checksum mismatch")
)

// Wire layout after the magic string (all integers varint unless noted):
//
//	uvarint  len(member) + member bytes
//	svarint  baseWall (unix nanos at the recorder's monotonic anchor)
//	uvarint  dropped (records overwritten by ring wrap)
//	uvarint  nsyms, then per symbol: uvarint len + bytes (index 0, always
//	         "", is implicit and not encoded)
//	uvarint  nrecords, then per record:
//	         uvarint mono delta from previous record (nanos; first record
//	                 encodes its absolute offset)
//	         byte    kind
//	         uvarint A.Org, A.Seq, B.Org, B.Seq
//	         svarint value
//	8 bytes  FNV-64a over everything before it, big-endian (bit-flip
//	         detector; not cryptographic)
const (
	maxSymbols   = 1 << 20
	maxSymbolLen = 1 << 16
	maxRecords   = 1 << 24
	maxMemberLen = 1 << 12
)

// Dump is a decoded snapshot: one member's black box at rest. It is also
// what Recorder.Snapshot materializes in-process, so the merge tool works
// identically on live recorders and on files.
type Dump struct {
	Member   string
	BaseWall int64 // wall clock (unix nanos) at the monotonic anchor
	Dropped  uint64
	Syms     []string // Syms[0] == ""
	Records  []Record
}

// Wall converts a record's monotonic offset to an absolute wall-clock
// estimate in unix nanos.
func (d *Dump) Wall(rec Record) int64 { return d.BaseWall + int64(rec.Mono) }

// Sym resolves a symbol index ("" when out of range — decoded dumps are
// validated, so that only happens for a zero Ref).
func (d *Dump) Sym(i uint32) string {
	if int(i) < len(d.Syms) {
		return d.Syms[i]
	}
	return ""
}

// Label renders a Ref as "origin:seq" ("" for the zero Ref, bare origin
// when Seq carries no meaning for the kind).
func (d *Dump) Label(r Ref) string {
	if r.IsZero() {
		return ""
	}
	org := d.Sym(r.Org)
	if org == "" {
		return fmt.Sprintf("?:%d", r.Seq)
	}
	return fmt.Sprintf("%s:%d", org, r.Seq)
}

// Dump writes the recorder's retained records as a versioned binary
// snapshot and bumps the dump instruments. Nil-safe.
func (r *Recorder) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	d := r.Snapshot()
	n, err := d.encode(w)
	if err != nil {
		return err
	}
	r.ins.dumps.Inc()
	r.ins.dumpBytes.Add(uint64(n))
	return nil
}

func (d *Dump) encode(w io.Writer) (int, error) {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) { buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putS := func(v int64) { buf = append(buf, tmp[:binary.PutVarint(tmp[:], v)]...) }

	buf = append(buf, Magic...)
	putU(uint64(len(d.Member)))
	buf = append(buf, d.Member...)
	putS(d.BaseWall)
	putU(d.Dropped)

	syms := d.Syms
	if len(syms) == 0 {
		syms = []string{""}
	}
	putU(uint64(len(syms) - 1))
	for _, s := range syms[1:] {
		putU(uint64(len(s)))
		buf = append(buf, s...)
	}

	putU(uint64(len(d.Records)))
	prev := time.Duration(0)
	for _, rec := range d.Records {
		delta := rec.Mono - prev
		if delta < 0 {
			// Clock anomalies shouldn't happen under a monotonic reader,
			// but a snapshot must always round-trip: clamp rather than
			// emit an unrepresentable delta.
			delta = 0
		}
		prev = rec.Mono
		putU(uint64(delta))
		buf = append(buf, byte(rec.Kind))
		putU(uint64(rec.A.Org))
		putU(rec.A.Seq)
		putU(uint64(rec.B.Org))
		putU(rec.B.Seq)
		putS(rec.Value)
	}

	h := fnv.New64a()
	h.Write(buf)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	buf = append(buf, sum[:]...)
	return w.Write(buf)
}

// Decode parses a binary snapshot produced by Dump. Every length, count,
// symbol index, and kind is validated; the checksum trailer catches bit
// flips. Any malformed input returns an error — never a panic.
func Decode(data []byte) (*Dump, error) {
	if len(data) < len(Magic)+8 {
		return nil, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if binary.BigEndian.Uint64(trailer) != h.Sum64() {
		return nil, ErrChecksum
	}

	p := body[len(Magic):]
	getU := func(what string) (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s", ErrTruncated, what)
		}
		p = p[n:]
		return v, nil
	}
	getS := func(what string) (int64, error) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s", ErrTruncated, what)
		}
		p = p[n:]
		return v, nil
	}

	d := &Dump{}
	mlen, err := getU("member length")
	if err != nil {
		return nil, err
	}
	if mlen > maxMemberLen || mlen > uint64(len(p)) {
		return nil, fmt.Errorf("%w: member length %d", ErrCorrupt, mlen)
	}
	d.Member = string(p[:mlen])
	p = p[mlen:]
	if d.BaseWall, err = getS("base wall"); err != nil {
		return nil, err
	}
	if d.Dropped, err = getU("dropped"); err != nil {
		return nil, err
	}

	nsyms, err := getU("symbol count")
	if err != nil {
		return nil, err
	}
	if nsyms > maxSymbols {
		return nil, fmt.Errorf("%w: %d symbols", ErrCorrupt, nsyms)
	}
	d.Syms = make([]string, 1, nsyms+1)
	for i := uint64(0); i < nsyms; i++ {
		slen, err := getU("symbol length")
		if err != nil {
			return nil, err
		}
		if slen > maxSymbolLen || slen > uint64(len(p)) {
			return nil, fmt.Errorf("%w: symbol length %d", ErrCorrupt, slen)
		}
		d.Syms = append(d.Syms, string(p[:slen]))
		p = p[slen:]
	}

	nrecs, err := getU("record count")
	if err != nil {
		return nil, err
	}
	if nrecs > maxRecords {
		return nil, fmt.Errorf("%w: %d records", ErrCorrupt, nrecs)
	}
	d.Records = make([]Record, 0, nrecs)
	mono := time.Duration(0)
	for i := uint64(0); i < nrecs; i++ {
		delta, err := getU("record mono")
		if err != nil {
			return nil, err
		}
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: record kind", ErrTruncated)
		}
		kind := Kind(p[0])
		p = p[1:]
		if !kind.Valid() {
			return nil, fmt.Errorf("%w: record kind %d", ErrCorrupt, kind)
		}
		aOrg, err := getU("record A.Org")
		if err != nil {
			return nil, err
		}
		aSeq, err := getU("record A.Seq")
		if err != nil {
			return nil, err
		}
		bOrg, err := getU("record B.Org")
		if err != nil {
			return nil, err
		}
		bSeq, err := getU("record B.Seq")
		if err != nil {
			return nil, err
		}
		val, err := getS("record value")
		if err != nil {
			return nil, err
		}
		if aOrg >= uint64(len(d.Syms)) || bOrg >= uint64(len(d.Syms)) {
			return nil, fmt.Errorf("%w: symbol index out of range", ErrCorrupt)
		}
		mono += time.Duration(delta)
		d.Records = append(d.Records, Record{
			Mono:  mono,
			Kind:  kind,
			A:     Ref{Org: uint32(aOrg), Seq: aSeq},
			B:     Ref{Org: uint32(bOrg), Seq: bSeq},
			Value: val,
		})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return d, nil
}

// ReadFile decodes one snapshot file.
func ReadFile(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// DumpAll writes every recorder's snapshot into dir as <member>.fr and
// returns the written paths, sorted. Nil-safe; creates dir.
func (s *Set) DumpAll(dir string) ([]string, error) {
	if s == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, m := range s.Members() {
		path := filepath.Join(dir, m+".fr")
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		err = s.For(m).Dump(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
