// Package flightrec is the black-box flight recorder: a per-member,
// fixed-capacity, allocation-free ring of compact tagged records capturing
// every layer's externally visible transitions — frame send/receive/
// forward, holdback enter/exit with the blocking dependency, causal
// delivery, stability advance, epoch and election transitions, the
// reliability sublayer's retransmit/shed/resync verdicts, and auditor
// violations. Like an aircraft recorder it is always on and always
// bounded: recording costs one short mutex section and zero heap
// allocations in steady state, so the fully armed broadcast hot path
// stays 0 allocs/op.
//
// Records carry a wall/monotonic hybrid clock (the PR 7 SentAt
// discipline): each recorder stamps records with a monotonic offset from
// a wall-anchored base, and receive/deliver records additionally carry
// the origin's SentAt stamp, so a post-mortem merge can both order one
// member's records exactly and correct cross-member clock skew.
//
// Dump persists the ring as a versioned binary snapshot
// ("causalshare-flightrec/v1", see codec.go); Merge (merge.go)
// reconstructs one causally consistent cluster timeline from N member
// dumps — the same happened-before discipline the CBCAST layer enforces
// online, replayed offline around a failure.
package flightrec

import (
	"sync"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// Kind tags one flight record. The wire codec encodes kinds as single
// bytes; new kinds append, existing values never change.
type Kind uint8

const (
	// KindFrameSend: a broadcast left this member (A = label,
	// Value = encoded frame bytes).
	KindFrameSend Kind = iota + 1
	// KindFrameRecv: a frame arrived and entered ordering consideration
	// (A = label, Value = the origin's SentAt unix nanos, 0 if unstamped).
	KindFrameRecv
	// KindFrameForward: PC-cast re-emitted a first-receipt frame to the
	// group (A = label, Value = hop count).
	KindFrameForward
	// KindHoldback: a message entered the holdback buffer blocked on a
	// missing dependency (A = label, B = the missing dependency).
	KindHoldback
	// KindDepResolved: holdback exit attribution — A waited Value
	// nanoseconds for dependency B to be delivered here.
	KindDepResolved
	// KindDeliver: causal delivery to the layer above (A = label,
	// Value = the origin's SentAt unix nanos, 0 if unstamped).
	KindDeliver
	// KindFetch: a retransmission request for missing dependency A was
	// issued toward peer B.Org.
	KindFetch
	// KindStable: a stable point was established (A = closing label,
	// Value = stable cycle).
	KindStable
	// KindEpoch: the total-order layer adopted a new epoch (Value = epoch).
	KindEpoch
	// KindElect: an election completed at this member as leader
	// (Value = epoch, Seq of B = re-proposed assignments).
	KindElect
	// KindSuspect: the failure detector suspected peer B.Org.
	KindSuspect
	// KindRetransmit: the reliability sublayer re-sent link sequence
	// Value toward peer B.Org.
	KindRetransmit
	// KindNack: the reliability sublayer requested a repair from peer
	// B.Org starting at link sequence B.Seq (Value = gap width).
	KindNack
	// KindShed: the reliability sublayer shed unresponsive peer B.Org.
	KindShed
	// KindResync: the link from peer B.Org skipped Value irrecoverable
	// sequences and the layer above was asked to resync.
	KindResync
	// KindViolation: the online auditor flagged A (dep B) with violation
	// kind Value (trace.ViolationKind numbering).
	KindViolation
	// KindSeed: a rejoined member adopted Value delivered watermarks from
	// a snapshot.
	KindSeed
	// KindRead: a deferred read was served (Value = stable cycle served
	// from, B.Seq = registration boundary).
	KindRead

	kindMax = KindRead
)

var kindNames = [...]string{
	KindFrameSend:    "send",
	KindFrameRecv:    "recv",
	KindFrameForward: "forward",
	KindHoldback:     "holdback",
	KindDepResolved:  "dep-resolved",
	KindDeliver:      "deliver",
	KindFetch:        "fetch",
	KindStable:       "stable",
	KindEpoch:        "epoch",
	KindElect:        "elect",
	KindSuspect:      "suspect",
	KindRetransmit:   "retransmit",
	KindNack:         "nack",
	KindShed:         "shed",
	KindResync:       "resync",
	KindViolation:    "violation",
	KindSeed:         "seed",
	KindRead:         "read",
}

// String returns the kind's stable short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= KindFrameSend && k <= kindMax }

// Ref is an interned label reference: a symbol-table index for the origin
// string plus the sequence number. A zero Ref means "no label"; peers and
// other bare strings are carried as a Ref with Seq 0.
type Ref struct {
	Org uint32
	Seq uint64
}

// IsZero reports whether the reference names nothing.
func (r Ref) IsZero() bool { return r.Org == 0 && r.Seq == 0 }

// Record is one flight-recorder entry. It is a fixed-size value — the
// ring stores records inline, so recording never allocates.
type Record struct {
	// Mono is the monotonic offset from the recorder's wall-anchored base.
	Mono time.Duration
	// Kind tags the record; A, B, and Value are kind-specific (see the
	// Kind constants).
	Kind  Kind
	A, B  Ref
	Value int64
}

// Config parameterizes a Recorder.
type Config struct {
	// Member is the member this box records for.
	Member string
	// Capacity bounds the ring; the oldest record is overwritten when a
	// new one would exceed it. Default 16384.
	Capacity int
	// Telemetry, when non-nil, registers the flightrec_* instruments.
	Telemetry *telemetry.Registry
}

const defaultCapacity = 16384

type recorderInstruments struct {
	records, dropped, dumps, dumpBytes *telemetry.Counter
}

func newRecorderInstruments(reg *telemetry.Registry) recorderInstruments {
	return recorderInstruments{
		records:   reg.Counter("flightrec_records_total", "flight-recorder records captured"),
		dropped:   reg.Counter("flightrec_dropped_total", "flight-recorder records overwritten by ring wrap"),
		dumps:     reg.Counter("flightrec_dumps_total", "flight-recorder binary snapshots written"),
		dumpBytes: reg.Counter("flightrec_dump_bytes_total", "bytes of flight-recorder snapshots written"),
	}
}

// Recorder is one member's black box. All methods are safe for concurrent
// use, and every method on a nil *Recorder is a no-op, so layers thread a
// recorder through unconditionally.
type Recorder struct {
	member   string
	base     time.Time // monotonic anchor; records store offsets from it
	baseWall int64     // wall clock (unix nanos) at the anchor

	ins recorderInstruments

	mu   sync.Mutex
	buf  []Record
	next uint64 // total records ever captured
	// syms interns origin and peer strings; names[0] is always "".
	syms  map[string]uint32
	names []string
}

// NewRecorder builds a flight recorder for cfg.Member.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultCapacity
	}
	now := time.Now()
	r := &Recorder{
		member:   cfg.Member,
		base:     now,
		baseWall: now.UnixNano(),
		ins:      newRecorderInstruments(cfg.Telemetry),
		buf:      make([]Record, cfg.Capacity),
		syms:     make(map[string]uint32, 64),
		names:    make([]string, 1, 64),
	}
	r.syms[""] = 0
	return r
}

// Member returns the member this recorder captures for ("" on nil).
func (r *Recorder) Member() string {
	if r == nil {
		return ""
	}
	return r.member
}

// symLocked interns s. Steady state is a map hit with no allocation; a
// first-seen string (member ids, label origins — a small, stable set)
// grows the table once.
func (r *Recorder) symLocked(s string) uint32 {
	if s == "" {
		return 0
	}
	if id, ok := r.syms[s]; ok {
		return id
	}
	id := uint32(len(r.names))
	r.names = append(r.names, s)
	r.syms[s] = id
	return id
}

// record captures one entry. The hybrid-clock read happens outside the
// lock; ring write and interning inside.
func (r *Recorder) record(kind Kind, aOrg string, aSeq uint64, bOrg string, bSeq uint64, value int64) {
	if r == nil {
		return
	}
	at := time.Since(r.base)
	r.mu.Lock()
	rec := &r.buf[r.next%uint64(len(r.buf))]
	rec.Mono = at
	rec.Kind = kind
	rec.A = Ref{Org: r.symLocked(aOrg), Seq: aSeq}
	rec.B = Ref{Org: r.symLocked(bOrg), Seq: bSeq}
	rec.Value = value
	r.next++
	wrapped := r.next > uint64(len(r.buf))
	r.mu.Unlock()
	r.ins.records.Inc()
	if wrapped {
		r.ins.dropped.Inc()
	}
}

// Send records a broadcast leaving this member.
func (r *Recorder) Send(l message.Label, frameBytes int) {
	r.record(KindFrameSend, l.Origin, l.Seq, "", 0, int64(frameBytes))
}

// Recv records a frame entering ordering consideration; sentAt is the
// origin's wall stamp (0 when unstamped).
func (r *Recorder) Recv(l message.Label, sentAt int64) {
	r.record(KindFrameRecv, l.Origin, l.Seq, "", 0, sentAt)
}

// Forward records a PC-cast first-receipt re-emission.
func (r *Recorder) Forward(l message.Label, hops int) {
	r.record(KindFrameForward, l.Origin, l.Seq, "", 0, int64(hops))
}

// Holdback records holdback entry: l is blocked on missing dep.
func (r *Recorder) Holdback(l, dep message.Label) {
	r.record(KindHoldback, l.Origin, l.Seq, dep.Origin, dep.Seq, 0)
}

// DepResolved records holdback exit attribution: blocked waited wait for
// dep to be delivered here.
func (r *Recorder) DepResolved(blocked, dep message.Label, wait time.Duration) {
	r.record(KindDepResolved, blocked.Origin, blocked.Seq, dep.Origin, dep.Seq, int64(wait))
}

// Deliver records causal delivery; sentAt is the origin's wall stamp.
func (r *Recorder) Deliver(l message.Label, sentAt int64) {
	r.record(KindDeliver, l.Origin, l.Seq, "", 0, sentAt)
}

// Fetch records a retransmission request for dep toward peer.
func (r *Recorder) Fetch(dep message.Label, peer string) {
	r.record(KindFetch, dep.Origin, dep.Seq, peer, 0, 0)
}

// Stable records a stable-point advance.
func (r *Recorder) Stable(closer message.Label, cycle uint64) {
	r.record(KindStable, closer.Origin, closer.Seq, "", 0, int64(cycle))
}

// Epoch records adoption of a new total-order epoch.
func (r *Recorder) Epoch(epoch uint64) {
	r.record(KindEpoch, "", 0, "", 0, int64(epoch))
}

// Elect records a completed election at this member (the new leader),
// with the number of re-proposed assignments.
func (r *Recorder) Elect(epoch uint64, reproposed int) {
	r.record(KindElect, "", 0, "", uint64(reproposed), int64(epoch))
}

// Suspect records a failure-detector suspicion of peer.
func (r *Recorder) Suspect(peer string) {
	r.record(KindSuspect, "", 0, peer, 0, 0)
}

// Retransmit records a reliability-sublayer re-send toward peer.
func (r *Recorder) Retransmit(peer string, linkSeq uint64) {
	r.record(KindRetransmit, "", 0, peer, 0, int64(linkSeq))
}

// Nack records a reliability-sublayer repair request from peer.
func (r *Recorder) Nack(peer string, firstMissing uint64, width int) {
	r.record(KindNack, "", 0, peer, firstMissing, int64(width))
}

// Shed records the reliability sublayer shedding peer.
func (r *Recorder) Shed(peer string) {
	r.record(KindShed, "", 0, peer, 0, 0)
}

// Resync records a link RESET from peer that skipped irrecoverable
// sequences.
func (r *Recorder) Resync(peer string, skipped int) {
	r.record(KindResync, "", 0, peer, 0, int64(skipped))
}

// Violation records an online-auditor violation on l (violated edge from
// dep; either label may be zero), with the auditor's kind number.
func (r *Recorder) Violation(kind int, l, dep message.Label) {
	r.record(KindViolation, l.Origin, l.Seq, dep.Origin, dep.Seq, int64(kind))
}

// Seed records rejoin watermark adoption (n = origins seeded).
func (r *Recorder) Seed(n int) {
	r.record(KindSeed, "", 0, "", 0, int64(n))
}

// Read records a deferred read served from cycle served with registration
// boundary.
func (r *Recorder) Read(served, boundary uint64) {
	r.record(KindRead, "", 0, "", boundary, int64(served))
}

// Len returns the number of records currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Dropped returns how many records the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedLocked()
}

func (r *Recorder) droppedLocked() uint64 {
	if r.next <= uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// Snapshot materializes the retained records as a Dump — the same
// structure Decode produces from a binary snapshot, so in-process
// consumers (tests, the merge tool) need no encode/decode round trip.
func (r *Recorder) Snapshot() *Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &Dump{
		Member:   r.member,
		BaseWall: r.baseWall,
		Dropped:  r.droppedLocked(),
		Syms:     append([]string(nil), r.names...),
	}
	n := uint64(len(r.buf))
	if r.next < n {
		d.Records = append([]Record(nil), r.buf[:r.next]...)
		return d
	}
	d.Records = make([]Record, 0, n)
	start := r.next % n
	d.Records = append(d.Records, r.buf[start:]...)
	d.Records = append(d.Records, r.buf[:start]...)
	return d
}

// Set routes per-member recorders, creating them lazily with a shared
// template config. A nil *Set hands out nil recorders, so harnesses wire
// a set through unconditionally.
type Set struct {
	mu   sync.Mutex
	cfg  Config
	recs map[string]*Recorder
}

// NewSet builds a recorder set; cfg.Member is ignored (each member gets
// its own), cfg.Telemetry applies to every recorder (shared instruments
// aggregate; pass nil for none).
func NewSet(cfg Config) *Set {
	return &Set{cfg: cfg, recs: make(map[string]*Recorder)}
}

// For returns member's recorder, creating it on first sight. A rejoined
// incarnation gets its previous box back: a black box survives the
// process it records. Nil-safe: a nil set returns a nil recorder.
func (s *Set) For(member string) *Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.recs[member]; ok {
		return r
	}
	cfg := s.cfg
	cfg.Member = member
	r := NewRecorder(cfg)
	s.recs[member] = r
	return r
}

// Members returns the ids with live recorders, sorted.
func (s *Set) Members() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.recs))
	for m := range s.recs {
		out = append(out, m)
	}
	sortStrings(out)
	return out
}

// sortStrings is a tiny insertion sort: member sets are small and this
// keeps the package's import list lean.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
