package flightrec

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

func label(org string, seq uint64) message.Label { return message.Label{Origin: org, Seq: seq} }

func TestRecorderCapturesAndWraps(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRecorder(Config{Member: "m0", Capacity: 4, Telemetry: reg})
	for i := uint64(1); i <= 6; i++ {
		r.Send(label("m0", i), 32)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	d := r.Snapshot()
	if len(d.Records) != 4 {
		t.Fatalf("snapshot records = %d, want 4", len(d.Records))
	}
	// Oldest two were overwritten: retained seqs are 3..6 in order.
	for i, rec := range d.Records {
		if want := uint64(i + 3); rec.A.Seq != want {
			t.Fatalf("record %d seq = %d, want %d", i, rec.A.Seq, want)
		}
		if d.Label(rec.A) != "m0:"+string(rune('0'+i+3)) {
			t.Fatalf("record %d label = %q", i, d.Label(rec.A))
		}
		if i > 0 && rec.Mono < d.Records[i-1].Mono {
			t.Fatalf("mono not non-decreasing at %d", i)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Send(label("x", 1), 0)
	r.Deliver(label("x", 1), 0)
	r.Holdback(label("x", 2), label("x", 1))
	r.Violation(1, label("x", 2), label("x", 1))
	if r.Len() != 0 || r.Dropped() != 0 || r.Member() != "" || r.Snapshot() != nil {
		t.Fatal("nil recorder must be inert")
	}
	if err := r.Dump(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil Dump: %v", err)
	}
	var s *Set
	if s.For("m") != nil || s.Members() != nil {
		t.Fatal("nil set must hand out nil recorders")
	}
	if paths, err := s.DumpAll(t.TempDir()); err != nil || paths != nil {
		t.Fatalf("nil DumpAll: %v %v", paths, err)
	}
}

func TestSetReusesRecorderAcrossIncarnations(t *testing.T) {
	s := NewSet(Config{Capacity: 8})
	a := s.For("m1")
	a.Epoch(3)
	if b := s.For("m1"); b != a {
		t.Fatal("rejoined incarnation must get its previous black box back")
	}
	if got := s.Members(); len(got) != 1 || got[0] != "m1" {
		t.Fatalf("Members = %v", got)
	}
}

func TestDumpDecodeRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRecorder(Config{Member: "alpha", Capacity: 64, Telemetry: reg})
	r.Send(label("alpha", 1), 48)
	r.Recv(label("beta", 1), 12345)
	r.Holdback(label("beta", 2), label("beta", 1))
	r.DepResolved(label("beta", 2), label("beta", 1), 250*time.Microsecond)
	r.Deliver(label("beta", 1), 12345)
	r.Fetch(label("gamma", 7), "beta")
	r.Stable(label("alpha", 1), 2)
	r.Epoch(5)
	r.Elect(6, 3)
	r.Suspect("gamma")
	r.Retransmit("beta", 17)
	r.Nack("beta", 9, 4)
	r.Shed("gamma")
	r.Resync("beta", 2)
	r.Violation(1, label("beta", 2), label("beta", 1))
	r.Seed(4)
	r.Read(3, 1)
	r.Forward(label("beta", 3), 1)

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	d, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := r.Snapshot()
	if d.Member != "alpha" || d.BaseWall != want.BaseWall || d.Dropped != 0 {
		t.Fatalf("header mismatch: %+v", d)
	}
	if len(d.Records) != len(want.Records) {
		t.Fatalf("records = %d, want %d", len(d.Records), len(want.Records))
	}
	for i := range want.Records {
		if d.Records[i] != want.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, d.Records[i], want.Records[i])
		}
	}
	if d.Label(d.Records[2].A) != "beta:2" || d.Label(d.Records[2].B) != "beta:1" {
		t.Fatalf("holdback labels: %q blocked on %q", d.Label(d.Records[2].A), d.Label(d.Records[2].B))
	}
	if v := reg.Counter("flightrec_dumps_total", "").Value(); v != 1 {
		t.Fatalf("flightrec_dumps_total = %d", v)
	}
}

func TestDecodeRejectsMalformedInput(t *testing.T) {
	r := NewRecorder(Config{Member: "m", Capacity: 8})
	r.Send(label("m", 1), 10)
	r.Deliver(label("m", 1), 0)
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	good := buf.Bytes()

	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Decode([]byte("not-a-flight-record-snapshot....")); err == nil {
		t.Fatal("bad magic must error")
	}
	// Every truncation must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := Decode(good[:n]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", n)
		}
	}
	// Every single-bit flip must error (checksum trailer).
	for i := 0; i < len(good); i++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[i] ^= 1 << bit
			if _, err := Decode(bad); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			}
		}
	}
	// Trailing garbage after the checksum must error.
	if _, err := Decode(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

func TestDumpAllAndReadFile(t *testing.T) {
	s := NewSet(Config{Capacity: 16})
	s.For("m0").Send(label("m0", 1), 8)
	s.For("m1").Deliver(label("m0", 1), 0)
	dir := t.TempDir()
	paths, err := s.DumpAll(dir)
	if err != nil {
		t.Fatalf("DumpAll: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for i, want := range []string{"m0", "m1"} {
		d, err := ReadFile(paths[i])
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", paths[i], err)
		}
		if d.Member != want {
			t.Fatalf("member = %q, want %q", d.Member, want)
		}
	}
}

// makeTriad builds three members with a causal chain: m0 sends a:1, m1
// receives and delivers it then sends b:1 (caused by a:1), m2 receives
// both. Wall clocks are then skewed artificially to prove the merge
// corrects them.
func makeTriad(t *testing.T) []*Dump {
	t.Helper()
	mk := func(member string) *Recorder { return NewRecorder(Config{Member: member, Capacity: 64}) }
	m0, m1, m2 := mk("m0"), mk("m1"), mk("m2")

	m0.Send(label("m0", 1), 32)
	time.Sleep(time.Millisecond)
	m1.Recv(label("m0", 1), 0)
	m1.Deliver(label("m0", 1), 0)
	m1.Send(label("m1", 1), 32)
	time.Sleep(time.Millisecond)
	m2.Recv(label("m0", 1), 0)
	m2.Deliver(label("m0", 1), 0)
	m2.Recv(label("m1", 1), 0)
	m2.Deliver(label("m1", 1), 0)

	d0, d1, d2 := m0.Snapshot(), m1.Snapshot(), m2.Snapshot()
	// Skew m1's clock 2s into the past: its receive of m0:1 now appears
	// to precede the send unless the merge corrects it.
	d1.BaseWall -= 2 * int64(time.Second)
	return []*Dump{d0, d1, d2}
}

func TestMergeOrdersCausallyAndCorrectsSkew(t *testing.T) {
	tl := Merge(makeTriad(t))
	if len(tl.Members) != 3 || tl.Members[0] != "m0" {
		t.Fatalf("members = %v", tl.Members)
	}
	if tl.Skew[1] < time.Second {
		t.Fatalf("skew correction for m1 = %v, want ≥ 1s", tl.Skew[1])
	}
	pos := func(member string, kind Kind, org string, seq uint64) int {
		for i, e := range tl.Entries {
			if e.Member == member && e.Rec.Kind == kind && tl.Label(e, e.Rec.A) == org {
				_ = seq
				return i
			}
		}
		t.Fatalf("no entry %s/%v/%s", member, kind, org)
		return -1
	}
	send := pos("m0", KindFrameSend, "m0:1", 1)
	recv1 := pos("m1", KindFrameRecv, "m0:1", 1)
	send2 := pos("m1", KindFrameSend, "m1:1", 1)
	recv2 := pos("m2", KindFrameRecv, "m1:1", 1)
	if !(send < recv1 && recv1 < send2 && send2 < recv2) {
		t.Fatalf("causal chain out of order: send=%d recv1=%d send2=%d recv2=%d", send, recv1, send2, recv2)
	}
	for i, e := range tl.Entries {
		if i > 0 && e.Wall < tl.Entries[i-1].Wall && !e.Concurrent {
			// Ordered entries may still render out of wall order only
			// when causality forced it; the corrected clocks should make
			// that rare-to-never in this scenario.
			t.Logf("entry %d wall regression (%s)", i, e.Member)
		}
	}
}

func TestMergeMarksConcurrent(t *testing.T) {
	mk := func(member string) *Recorder { return NewRecorder(Config{Member: member, Capacity: 8}) }
	a, b := mk("a"), mk("b")
	// Two sends with no cross edges: unordered, so whichever renders
	// second must carry the concurrent mark.
	a.Send(label("a", 1), 8)
	b.Send(label("b", 1), 8)
	tl := Merge([]*Dump{a.Snapshot(), b.Snapshot()})
	if len(tl.Entries) != 2 {
		t.Fatalf("entries = %d", len(tl.Entries))
	}
	if !tl.Entries[1].Concurrent {
		t.Fatal("second of two unordered entries must be marked concurrent")
	}
}

func TestMergeDeterministic(t *testing.T) {
	dumps := makeTriad(t)
	t1, t2 := Merge(dumps), Merge(dumps)
	if len(t1.Entries) != len(t2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(t1.Entries), len(t2.Entries))
	}
	for i := range t1.Entries {
		if t1.Entries[i].Member != t2.Entries[i].Member || t1.Entries[i].Index != t2.Entries[i].Index {
			t.Fatalf("merge not deterministic at %d", i)
		}
	}
}

func TestDeliveryDiffsNamesDisagreeingMembers(t *testing.T) {
	mk := func(member string) *Recorder { return NewRecorder(Config{Member: member, Capacity: 32}) }
	good, bad := mk("good"), mk("bad")
	// good delivers o:1 then o:2; bad delivers o:2 before o:1 (FIFO/causal
	// inversion) — both divergence detectors should name "bad".
	good.Deliver(label("o", 1), 0)
	good.Deliver(label("o", 2), 0)
	bad.Deliver(label("o", 2), 0)
	bad.Deliver(label("o", 1), 0)
	tl := Merge([]*Dump{good.Snapshot(), bad.Snapshot()})
	diffs := tl.DeliveryDiffs()
	if len(diffs) == 0 {
		t.Fatal("expected divergences")
	}
	foundInversion := false
	for _, d := range diffs {
		if d.Origin != "o" {
			t.Fatalf("origin = %q", d.Origin)
		}
		for _, m := range d.Members {
			if m == "bad" && d.Label == "o:1" {
				foundInversion = true
			}
		}
	}
	if !foundInversion {
		t.Fatalf("no divergence naming member bad on o:1: %+v", diffs)
	}

	// A member that skipped a message its peers delivered while moving
	// past it must be named too.
	skipper := mk("skipper")
	skipper.Deliver(label("o", 2), 0)
	tl2 := Merge([]*Dump{good.Snapshot(), skipper.Snapshot()})
	foundGap := false
	for _, d := range tl2.DeliveryDiffs() {
		if d.Label == "o:1" {
			for _, m := range d.Members {
				if m == "skipper" {
					foundGap = true
				}
			}
		}
	}
	if !foundGap {
		t.Fatal("gap divergence must name the skipping member")
	}
}

func TestMergeIndexesViolations(t *testing.T) {
	r := NewRecorder(Config{Member: "m", Capacity: 8})
	r.Deliver(label("o", 2), 0)
	r.Violation(1, label("o", 2), label("o", 1))
	tl := Merge([]*Dump{r.Snapshot()})
	if len(tl.Violations) != 1 {
		t.Fatalf("violations = %v", tl.Violations)
	}
	e := tl.Entries[tl.Violations[0]]
	if e.Rec.Kind != KindViolation || tl.Label(e, e.Rec.A) != "o:2" || tl.Label(e, e.Rec.B) != "o:1" {
		t.Fatalf("violation entry = %+v", e)
	}
}

func TestHTTPRoutes(t *testing.T) {
	s := NewSet(Config{Capacity: 8})
	s.For("m0").Send(label("m0", 1), 8)

	// Set route: listing and per-member download.
	srv := httptest.NewServer(s.Route().Handler)
	defer srv.Close()
	resp := httptest.NewRecorder()
	s.Route().Handler.ServeHTTP(resp, httptest.NewRequest("GET", "/flightrec/", nil))
	if !strings.Contains(resp.Body.String(), "/flightrec/m0") {
		t.Fatalf("listing = %q", resp.Body.String())
	}
	resp = httptest.NewRecorder()
	s.Route().Handler.ServeHTTP(resp, httptest.NewRequest("GET", "/flightrec/m0", nil))
	if d, err := Decode(resp.Body.Bytes()); err != nil || d.Member != "m0" {
		t.Fatalf("set member download: %v %+v", err, d)
	}
	resp = httptest.NewRecorder()
	s.Route().Handler.ServeHTTP(resp, httptest.NewRequest("GET", "/flightrec/nope", nil))
	if resp.Code != 404 {
		t.Fatalf("missing member = HTTP %d, want 404", resp.Code)
	}

	// Single-recorder route.
	resp = httptest.NewRecorder()
	s.For("m0").Route().Handler.ServeHTTP(resp, httptest.NewRequest("GET", "/flightrec", nil))
	if d, err := Decode(resp.Body.Bytes()); err != nil || d.Member != "m0" {
		t.Fatalf("recorder download: %v %+v", err, d)
	}
	var nilRec *Recorder
	resp = httptest.NewRecorder()
	nilRec.Route().Handler.ServeHTTP(resp, httptest.NewRequest("GET", "/flightrec", nil))
	if resp.Code != 404 {
		t.Fatalf("nil recorder = HTTP %d, want 404", resp.Code)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindFrameSend; k <= kindMax; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if !k.Valid() {
			t.Fatalf("kind %d not valid", k)
		}
	}
	if Kind(0).Valid() || Kind(200).Valid() {
		t.Fatal("out-of-range kinds must be invalid")
	}
	if Kind(0).String() != "unknown" {
		t.Fatalf("zero kind = %q", Kind(0).String())
	}
}

func FuzzFlightRecDecode(f *testing.F) {
	r := NewRecorder(Config{Member: "fuzz", Capacity: 16})
	r.Send(label("fuzz", 1), 10)
	r.Recv(label("peer", 1), 42)
	r.Holdback(label("peer", 2), label("peer", 1))
	r.Deliver(label("peer", 1), 42)
	r.Violation(1, label("peer", 2), label("peer", 1))
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	flipped := append([]byte(nil), good...)
	flipped[len(Magic)+3] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input must be internally consistent: a re-encode must
		// decode back to the same dump.
		var out bytes.Buffer
		if _, err := d.encode(&out); err != nil {
			t.Fatalf("re-encode of accepted dump failed: %v", err)
		}
		d2, err := Decode(out.Bytes())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if d2.Member != d.Member || len(d2.Records) != len(d.Records) {
			t.Fatalf("round trip drifted: %+v vs %+v", d, d2)
		}
		// And merging any accepted dump must not panic.
		Merge([]*Dump{d}).DeliveryDiffs()
	})
}
