package group

import (
	"fmt"
	"sync"
	"time"

	"causalshare/internal/transport"
)

// hbSuffix is the transport-id namespace of the heartbeat plane; it uses
// the same '~' convention as the broadcast layers, so heartbeat traffic
// never collides with engine traffic on the same network.
const hbSuffix = "~hb"

// Runner drives a heartbeat failure detector over a live network: it
// attaches a dedicated heartbeat endpoint, broadcasts liveness frames
// every interval, folds received frames into the detector, and ticks
// timeouts. Membership changes surface through the shared Tracker.
type Runner struct {
	self     string
	tracker  *Tracker
	detector *Detector
	conn     transport.Conn
	interval time.Duration

	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartRunner attaches the heartbeat endpoint for self and starts the
// send/receive/tick loops. timeout should be several multiples of
// interval to tolerate scheduling jitter.
func StartRunner(tracker *Tracker, self string, net transport.Network, interval, timeout time.Duration) (*Runner, error) {
	if !tracker.group.Contains(self) {
		return nil, fmt.Errorf("group: %q is not a member", self)
	}
	if interval <= 0 || timeout <= interval {
		return nil, fmt.Errorf("group: need 0 < interval (%v) < timeout (%v)", interval, timeout)
	}
	conn, err := net.Attach(self + hbSuffix)
	if err != nil {
		return nil, fmt.Errorf("group: attach heartbeat plane: %w", err)
	}
	r := &Runner{
		self:     self,
		tracker:  tracker,
		detector: NewDetector(tracker, self, timeout),
		conn:     conn,
		interval: interval,
		done:     make(chan struct{}),
	}
	r.wg.Add(2)
	go r.beatLoop()
	go r.recvLoop()
	return r, nil
}

// Detector exposes the underlying detector (suspicion queries).
func (r *Runner) Detector() *Detector { return r.detector }

// Close stops heartbeating and detaches the endpoint. The tracker keeps
// its last view; peers will suspect this member after their timeouts.
func (r *Runner) Close() error {
	r.stopOnce.Do(func() { close(r.done) })
	err := r.conn.Close()
	r.wg.Wait()
	return err
}

func (r *Runner) beatLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	frame := []byte(r.self)
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
			for _, peer := range r.tracker.group.Others(r.self) {
				_ = r.conn.Send(peer+hbSuffix, frame) // loss tolerated by timeout slack
			}
			r.detector.Tick(time.Now())
		}
	}
}

func (r *Runner) recvLoop() {
	defer r.wg.Done()
	for {
		env, err := r.conn.Recv()
		if err != nil {
			return
		}
		peer := string(env.Payload)
		if r.tracker.group.Contains(peer) {
			r.detector.Observe(peer, time.Now())
		}
	}
}
