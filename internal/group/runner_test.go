package group

import (
	"testing"
	"time"

	"causalshare/internal/transport"
)

func startCluster(t *testing.T, ids []string, net transport.Network, interval, timeout time.Duration) (map[string]*Tracker, map[string]*Runner) {
	t.Helper()
	grp := MustNew("g", ids)
	trackers := make(map[string]*Tracker, len(ids))
	runners := make(map[string]*Runner, len(ids))
	for _, id := range ids {
		tr := NewTracker(grp)
		r, err := StartRunner(tr, id, net, interval, timeout)
		if err != nil {
			t.Fatal(err)
		}
		trackers[id] = tr
		runners[id] = r
	}
	return trackers, runners
}

func waitAlive(t *testing.T, tr *Tracker, peer string, want bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if tr.Alive(peer) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("peer %s alive=%v never observed (want %v)", peer, tr.Alive(peer), want)
}

func TestRunnerValidation(t *testing.T) {
	grp := MustNew("g", []string{"a"})
	tr := NewTracker(grp)
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	if _, err := StartRunner(tr, "ghost", net, time.Millisecond, 10*time.Millisecond); err == nil {
		t.Error("non-member accepted")
	}
	if _, err := StartRunner(tr, "a", net, 0, 10*time.Millisecond); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := StartRunner(tr, "a", net, 10*time.Millisecond, 5*time.Millisecond); err == nil {
		t.Error("timeout below interval accepted")
	}
}

func TestRunnersKeepEachOtherAlive(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	ids := []string{"a", "b", "c"}
	trackers, runners := startCluster(t, ids, net, 2*time.Millisecond, 20*time.Millisecond)
	defer func() {
		for _, r := range runners {
			_ = r.Close()
		}
	}()
	time.Sleep(60 * time.Millisecond) // several timeout windows
	for _, id := range ids {
		for _, peer := range ids {
			if !trackers[id].Alive(peer) {
				t.Errorf("%s believes %s dead despite heartbeats", id, peer)
			}
		}
	}
}

func TestRunnerDetectsFailureAndRecovery(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	ids := []string{"a", "b", "c"}
	trackers, runners := startCluster(t, ids, net, 2*time.Millisecond, 20*time.Millisecond)
	defer func() {
		for id, r := range runners {
			if id != "c" {
				_ = r.Close()
			}
		}
	}()

	time.Sleep(30 * time.Millisecond) // heartbeats established
	if err := runners["c"].Close(); err != nil {
		t.Fatal(err)
	}
	waitAlive(t, trackers["a"], "c", false, 2*time.Second)
	waitAlive(t, trackers["b"], "c", false, 2*time.Second)
	if got := runners["a"].Detector().Suspicions(); len(got) != 1 || got[0] != "c" {
		t.Errorf("a's suspicions = %v", got)
	}

	// c restarts: a fresh runner re-attaches the heartbeat endpoint and
	// the peers mark it up again.
	restarted, err := StartRunner(trackers["c"], "c", net, 2*time.Millisecond, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = restarted.Close() }()
	waitAlive(t, trackers["a"], "c", true, 2*time.Second)
	waitAlive(t, trackers["b"], "c", true, 2*time.Second)
}

func TestRunnerDetectsPartition(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	ids := []string{"a", "b"}
	trackers, runners := startCluster(t, ids, net, 2*time.Millisecond, 20*time.Millisecond)
	defer func() {
		for _, r := range runners {
			_ = r.Close()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	net.Partition("a"+hbSuffix, "b"+hbSuffix, true)
	waitAlive(t, trackers["a"], "b", false, 2*time.Second)
	waitAlive(t, trackers["b"], "a", false, 2*time.Second)
	net.Heal()
	waitAlive(t, trackers["a"], "b", true, 2*time.Second)
	waitAlive(t, trackers["b"], "a", true, 2*time.Second)
}
