package group

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		members []string
		wantErr bool
	}{
		{"valid", []string{"a", "b"}, false},
		{"single", []string{"solo"}, false},
		{"empty", nil, true},
		{"duplicate", []string{"a", "a"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New("g", tt.members)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%v) error = %v, wantErr %v", tt.members, err, tt.wantErr)
			}
		})
	}
}

func TestMembersSortedAndCopied(t *testing.T) {
	src := []string{"c", "a", "b"}
	g := MustNew("g", src)
	want := []string{"a", "b", "c"}
	for i, m := range g.Members() {
		if m != want[i] {
			t.Fatalf("Members()[%d] = %q, want %q", i, m, want[i])
		}
	}
	src[0] = "zzz" // mutating the input must not affect the group
	if g.Members()[2] != "c" {
		t.Error("group aliased caller's slice")
	}
}

func TestRankAndContains(t *testing.T) {
	g := MustNew("g", []string{"b", "a", "c"})
	tests := []struct {
		id   string
		rank int
	}{
		{"a", 0}, {"b", 1}, {"c", 2}, {"ghost", -1},
	}
	for _, tt := range tests {
		if got := g.Rank(tt.id); got != tt.rank {
			t.Errorf("Rank(%q) = %d, want %d", tt.id, got, tt.rank)
		}
		if got := g.Contains(tt.id); got != (tt.rank >= 0) {
			t.Errorf("Contains(%q) = %v", tt.id, got)
		}
	}
}

func TestOthers(t *testing.T) {
	g := MustNew("g", []string{"a", "b", "c"})
	others := g.Others("b")
	if len(others) != 2 || others[0] != "a" || others[1] != "c" {
		t.Errorf("Others(b) = %v", others)
	}
	if got := g.Others("not-member"); len(got) != 3 {
		t.Errorf("Others(non-member) = %v, want all members", got)
	}
}

func TestNextCycles(t *testing.T) {
	g := MustNew("g", []string{"a", "b", "c"})
	cur := "a"
	seen := []string{}
	for i := 0; i < 6; i++ {
		next, err := g.Next(cur)
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, next)
		cur = next
	}
	want := []string{"b", "c", "a", "b", "c", "a"}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("cycle = %v, want %v", seen, want)
		}
	}
	if _, err := g.Next("ghost"); err == nil {
		t.Error("Next(non-member) succeeded")
	}
}

func TestPropNextVisitsAllMembers(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%8) + 1
		members := make([]string, size)
		for i := range members {
			members[i] = string(rune('a' + i))
		}
		g := MustNew("g", members)
		seen := map[string]bool{}
		cur := members[0]
		for i := 0; i < size; i++ {
			seen[cur] = true
			var err error
			cur, err = g.Next(cur)
			if err != nil {
				return false
			}
		}
		return len(seen) == size && cur == members[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrackerViews(t *testing.T) {
	g := MustNew("g", []string{"a", "b", "c"})
	tr := NewTracker(g)
	v := tr.View()
	if v.Seq != 0 || len(v.Alive) != 3 {
		t.Fatalf("initial view = %+v", v)
	}
	if !tr.MarkDown("b") {
		t.Fatal("MarkDown(b) reported no change")
	}
	if tr.MarkDown("b") {
		t.Error("second MarkDown(b) reported change")
	}
	v = tr.View()
	if v.Seq != 1 || len(v.Alive) != 2 || v.Alive[0] != "a" || v.Alive[1] != "c" {
		t.Fatalf("view after failure = %+v", v)
	}
	if !tr.MarkUp("b") {
		t.Fatal("MarkUp(b) reported no change")
	}
	if v := tr.View(); v.Seq != 2 || len(v.Alive) != 3 {
		t.Fatalf("view after recovery = %+v", v)
	}
	if tr.MarkDown("outsider") {
		t.Error("MarkDown of non-member changed view")
	}
}

func TestTrackerAlive(t *testing.T) {
	g := MustNew("g", []string{"a", "b"})
	tr := NewTracker(g)
	if !tr.Alive("a") {
		t.Error("member not alive initially")
	}
	if tr.Alive("ghost") {
		t.Error("non-member reported alive")
	}
	tr.MarkDown("a")
	if tr.Alive("a") {
		t.Error("down member reported alive")
	}
}

func TestTrackerWatch(t *testing.T) {
	g := MustNew("g", []string{"a", "b"})
	tr := NewTracker(g)
	w := tr.Watch()
	tr.MarkDown("a")
	select {
	case v := <-w:
		if len(v.Alive) != 1 || v.Alive[0] != "b" {
			t.Errorf("watched view = %+v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("no view delivered to watcher")
	}
	// A slow watcher must not block changes: perform several without reads.
	tr.MarkUp("a")
	tr.MarkDown("b")
	tr.MarkDown("a") // would deadlock if watch sends were blocking
}

func TestDetectorTimeouts(t *testing.T) {
	g := MustNew("g", []string{"a", "b", "c"})
	tr := NewTracker(g)
	d := NewDetector(tr, "a", 100*time.Millisecond)
	t0 := time.Unix(1000, 0)

	d.Observe("b", t0)
	d.Observe("c", t0)
	if newly := d.Tick(t0.Add(50 * time.Millisecond)); len(newly) != 0 {
		t.Fatalf("premature suspicion: %v", newly)
	}
	d.Observe("b", t0.Add(80*time.Millisecond)) // b refreshes, c does not
	newly := d.Tick(t0.Add(150 * time.Millisecond))
	if len(newly) != 1 || newly[0] != "c" {
		t.Fatalf("newly suspected = %v, want [c]", newly)
	}
	if got := d.Suspicions(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("Suspicions = %v", got)
	}
	// Recovery: a fresh heartbeat clears the suspicion.
	d.Observe("c", t0.Add(200*time.Millisecond))
	if !tr.Alive("c") {
		t.Error("recovered peer still down")
	}
	// Repeat suspicion is not "newly" reported twice without recovery.
	d.Tick(t0.Add(500 * time.Millisecond))
	if again := d.Tick(t0.Add(600 * time.Millisecond)); len(again) != 0 {
		t.Errorf("repeat tick re-reported suspicions: %v", again)
	}
}

func TestDetectorIgnoresSelfAndStaleEvidence(t *testing.T) {
	g := MustNew("g", []string{"a", "b"})
	tr := NewTracker(g)
	d := NewDetector(tr, "a", time.Second)
	t0 := time.Unix(2000, 0)
	d.Observe("a", t0) // self-heartbeat ignored
	if len(d.lastSeen) != 0 {
		t.Error("self heartbeat recorded")
	}
	d.Observe("b", t0.Add(10*time.Second))
	d.Observe("b", t0) // out-of-order older evidence must not regress
	if d.lastSeen["b"] != t0.Add(10*time.Second) {
		t.Error("stale evidence overwrote fresher heartbeat")
	}
}
