// Package group provides the process-group abstraction the broadcast
// layers are organized around (the paper's RPC_GRP in §6.1): a named set
// of member entities with deterministic ordering, plus a heartbeat failure
// detector and a local view tracker.
//
// The paper assumes a static group supplied by the environment ("the
// clients and the server replicas are organized into a group"); full
// view-agreement (virtual synchrony) is outside its model, so views here
// are local and eventually consistent: every member converges on the same
// membership once heartbeats stabilize, which is all the data-access
// protocols require.
package group

import (
	"fmt"
	"sort"
	"sync"
)

// Group is an immutable, deterministic set of member ids. The arbitration
// protocol of §6.2 depends on every member enumerating the group in the
// same order; Group guarantees that by keeping members sorted.
type Group struct {
	name    string
	members []string
	index   map[string]int
}

// New constructs a group from its member ids. Duplicates are rejected; the
// member list is defensively copied and sorted.
func New(name string, members []string) (*Group, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("group %q: no members", name)
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	index := make(map[string]int, len(sorted))
	for i, m := range sorted {
		if _, dup := index[m]; dup {
			return nil, fmt.Errorf("group %q: duplicate member %q", name, m)
		}
		index[m] = i
	}
	return &Group{name: name, members: sorted, index: index}, nil
}

// MustNew is New but panics on error; for tests and literals with known-
// good member lists.
func MustNew(name string, members []string) *Group {
	g, err := New(name, members)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// Members returns the member ids in deterministic (sorted) order. The
// returned slice must not be mutated.
func (g *Group) Members() []string { return g.members }

// Contains reports whether id is a member.
func (g *Group) Contains(id string) bool {
	_, ok := g.index[id]
	return ok
}

// Rank returns id's position in the deterministic order, or -1 if not a
// member. The lock-arbitration protocol uses ranks to rotate lock
// ownership identically at every member.
func (g *Group) Rank(id string) int {
	i, ok := g.index[id]
	if !ok {
		return -1
	}
	return i
}

// Others returns all members except self, in deterministic order.
func (g *Group) Others(self string) []string {
	out := make([]string, 0, len(g.members)-1)
	for _, m := range g.members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// Next returns the member after id in the deterministic cyclic order. The
// arbitration sequence of §6.2 walks the group this way.
func (g *Group) Next(id string) (string, error) {
	i, ok := g.index[id]
	if !ok {
		return "", fmt.Errorf("group %q: %q is not a member", g.name, id)
	}
	return g.members[(i+1)%len(g.members)], nil
}

// View is a snapshot of which members a process currently believes alive.
type View struct {
	// Seq increments on every membership change observed locally.
	Seq uint64
	// Alive lists the live members in deterministic order.
	Alive []string
}

// Tracker maintains a local view over a group: members start alive and are
// marked down/up by the failure detector (or by the application on
// explicit leave/join). Tracker is safe for concurrent use.
type Tracker struct {
	group *Group

	mu    sync.Mutex
	seq   uint64
	down  map[string]struct{}
	watch []chan View
	subs  []func(id string, up bool)
}

// NewTracker returns a tracker with every group member alive.
func NewTracker(g *Group) *Tracker {
	return &Tracker{group: g, down: make(map[string]struct{})}
}

// View returns the current local view.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.viewLocked()
}

func (t *Tracker) viewLocked() View {
	alive := make([]string, 0, t.group.Size())
	for _, m := range t.group.Members() {
		if _, dead := t.down[m]; !dead {
			alive = append(alive, m)
		}
	}
	return View{Seq: t.seq, Alive: alive}
}

// Alive reports whether id is currently believed alive.
func (t *Tracker) Alive(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, dead := t.down[id]
	return t.group.Contains(id) && !dead
}

// MarkDown records id as failed. Returns true if this changed the view.
func (t *Tracker) MarkDown(id string) bool { return t.mark(id, true) }

// MarkUp records id as recovered. Returns true if this changed the view.
func (t *Tracker) MarkUp(id string) bool { return t.mark(id, false) }

func (t *Tracker) mark(id string, down bool) bool {
	if !t.group.Contains(id) {
		return false
	}
	t.mu.Lock()
	_, isDown := t.down[id]
	if down == isDown {
		t.mu.Unlock()
		return false
	}
	if down {
		t.down[id] = struct{}{}
	} else {
		delete(t.down, id)
	}
	t.seq++
	v := t.viewLocked()
	watchers := append([]chan View(nil), t.watch...)
	subs := append([]func(id string, up bool){}, t.subs...)
	t.mu.Unlock()
	for _, w := range watchers {
		select {
		case w <- v:
		default: // stale watcher; it will observe the next change
		}
	}
	for _, fn := range subs {
		fn(id, !down)
	}
	return true
}

// Subscribe registers fn to be called synchronously on every member edge:
// fn(id, false) when id is marked down, fn(id, true) when it recovers.
// Unlike Watch — which coalesces under a slow consumer and hands out whole
// views — Subscribe delivers every individual transition, which link-state
// machines (e.g. the PC-cast engine's buffered link establishment) need.
// fn runs on the marking goroutine and must not call back into the
// tracker.
func (t *Tracker) Subscribe(fn func(id string, up bool)) {
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
}

// Watch returns a channel receiving view snapshots on every change. The
// channel has capacity one and is never closed; a slow consumer misses
// intermediate views but always eventually sees the latest.
func (t *Tracker) Watch() <-chan View {
	ch := make(chan View, 1)
	t.mu.Lock()
	t.watch = append(t.watch, ch)
	t.mu.Unlock()
	return ch
}
