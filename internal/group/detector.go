package group

import (
	"sync"
	"time"
)

// Detector is a heartbeat failure detector: it periodically records local
// liveness evidence for peers and times out peers whose evidence goes
// stale. It deliberately separates *policy* (interval, timeout) from
// *transport*: the owner feeds it heartbeats via Observe and pumps Tick
// from whatever clock it uses, so the detector is trivially testable and
// usable under both the live and the simulated substrate.
type Detector struct {
	tracker *Tracker
	self    string
	timeout time.Duration

	mu       sync.Mutex
	lastSeen map[string]time.Time
}

// NewDetector builds a detector for self over the tracker's group. Peers
// whose last heartbeat is older than timeout at a Tick are marked down;
// a fresh heartbeat marks them up again.
func NewDetector(tracker *Tracker, self string, timeout time.Duration) *Detector {
	d := &Detector{
		tracker:  tracker,
		self:     self,
		timeout:  timeout,
		lastSeen: make(map[string]time.Time),
	}
	return d
}

// Prime seeds liveness evidence for every peer that has none yet, as of
// the given time. Tick only times out peers it has evidence for, so a
// detector that is never primed will not suspect a member that stayed
// silent from the start; owners that need "silent since boot" to count as
// failure (the sequencer failover protocol does) call Prime at startup.
func (d *Detector) Prime(at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.tracker.group.Members() {
		if p == d.self {
			continue
		}
		if _, ok := d.lastSeen[p]; !ok {
			d.lastSeen[p] = at
		}
	}
}

// Forget drops the liveness evidence recorded for peer, so a member that
// crashed and later rejoins is judged only on post-rejoin traffic rather
// than being re-suspected off a stale timestamp.
func (d *Detector) Forget(peer string) {
	d.mu.Lock()
	delete(d.lastSeen, peer)
	d.mu.Unlock()
}

// Observe records a heartbeat (or any message — all traffic is liveness
// evidence) from peer at the given time.
func (d *Detector) Observe(peer string, at time.Time) {
	if peer == d.self {
		return
	}
	d.mu.Lock()
	if prev, ok := d.lastSeen[peer]; !ok || at.After(prev) {
		d.lastSeen[peer] = at
	}
	d.mu.Unlock()
	d.tracker.MarkUp(peer)
}

// Suspect backdates peer's liveness evidence so the next Tick times it
// out immediately. Lower layers with direct failure evidence (the
// reliability sublayer shedding an unresponsive peer) use it to
// accelerate detection without bypassing the tracker's up/down protocol;
// a later genuine heartbeat still heals the peer, because Observe keeps
// the maximum timestamp.
func (d *Detector) Suspect(peer string, now time.Time) {
	if peer == d.self {
		return
	}
	stale := now.Add(-d.timeout - time.Nanosecond)
	d.mu.Lock()
	if prev, ok := d.lastSeen[peer]; !ok || prev.After(stale) {
		d.lastSeen[peer] = stale
	}
	d.mu.Unlock()
}

// Tick evaluates timeouts as of now, updating the tracker. It returns the
// peers newly suspected at this tick.
func (d *Detector) Tick(now time.Time) []string {
	d.mu.Lock()
	var suspects []string
	for peer, last := range d.lastSeen {
		if now.Sub(last) > d.timeout {
			suspects = append(suspects, peer)
		}
	}
	d.mu.Unlock()
	var newly []string
	for _, p := range suspects {
		if d.tracker.MarkDown(p) {
			newly = append(newly, p)
		}
	}
	return newly
}

// Suspicions returns the peers currently marked down in the tracker's
// group, in deterministic order.
func (d *Detector) Suspicions() []string {
	var out []string
	for _, m := range d.tracker.group.Members() {
		if m != d.self && !d.tracker.Alive(m) {
			out = append(out, m)
		}
	}
	return out
}
