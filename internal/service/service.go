// Package service bundles the layers of the model into a deployable unit:
// a Site is one member's full stack — transport attachment, causal
// broadcast engine, replica state machine, failure-detection heartbeats,
// and a client front-end — and a Cluster constructs and tears down a
// whole group of them. Examples and integration tests that do not need
// custom wiring use this instead of assembling the layers by hand.
package service

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/core"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/reliable"
	"causalshare/internal/transport"
)

// Options configures a Cluster. Zero values get sensible defaults.
type Options struct {
	// Engine selects the causal broadcast engine: "osend" (default) or
	// "cbcast".
	Engine string
	// Patience is the engine's retransmission window; defaults to 10ms.
	// It matters only on lossy networks.
	Patience time.Duration
	// Heartbeat, when positive, starts a failure-detection plane with
	// this interval (timeout is 8x the interval).
	Heartbeat time.Duration
	// Trace, when true, records every delivery for later analysis.
	Trace bool
	// Reliable, when non-nil, is the template config for a per-link
	// reliability sublayer wrapped around every site's connection: loss,
	// reordering and duplication are repaired below the causal engine
	// instead of leaning solely on its anti-entropy. Seeds are derived per
	// site; OnSuspect/OnResync are service-owned (shed peers mark the
	// site's Tracker down, RESETs trigger a targeted engine resync) and
	// must be left nil. The heartbeat plane's own attachment is never
	// wrapped — failure detection keeps its independent path.
	Reliable *reliable.Config
}

func (o Options) withDefaults() Options {
	if o.Engine == "" {
		o.Engine = "osend"
	}
	if o.Patience == 0 {
		o.Patience = 10 * time.Millisecond
	}
	return o
}

// Site is one member's full stack.
type Site struct {
	// ID is the member id.
	ID string
	// Replica is the local state machine.
	Replica *core.Replica
	// Engine is the causal broadcast engine (Broadcast for raw messages).
	Engine causal.Broadcaster
	// FrontEnd generates §6.1 orderings for this site's clients.
	FrontEnd *core.FrontEnd
	// Items generates §5.1 item-scoped orderings.
	Items *core.ItemFrontEnd
	// Tracker holds the local membership view (nil without heartbeats).
	Tracker *group.Tracker

	runner *group.Runner
}

// Cluster is a group of Sites over one network.
type Cluster struct {
	// Group is the membership.
	Group *group.Group
	// Net is the underlying network.
	Net transport.Network
	// Sites maps member id to its stack.
	Sites map[string]*Site
	// Trace records deliveries when Options.Trace was set (else nil).
	Trace *obs.Trace
}

// New builds a cluster of len(ids) sites over net. initial and apply
// define the replicated state machine; each replica clones initial.
func New(name string, ids []string, net transport.Network, initial core.State, apply core.Transition, opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	grp, err := group.New(name, ids)
	if err != nil {
		return nil, err
	}
	c := &Cluster{Group: grp, Net: net, Sites: make(map[string]*Site, len(ids))}
	if opts.Trace {
		c.Trace = obs.NewTrace()
	}
	for _, id := range ids {
		site, err := c.buildSite(id, initial, apply, opts)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.Sites[id] = site
	}
	return c, nil
}

func (c *Cluster) buildSite(id string, initial core.State, apply core.Transition, opts Options) (*Site, error) {
	rep, err := core.NewReplica(core.ReplicaConfig{Self: id, Initial: initial, Apply: apply})
	if err != nil {
		return nil, err
	}
	conn, err := c.Net.Attach(id)
	if err != nil {
		return nil, err
	}
	// Reliability hooks resolve through atomics: the sublayer exists
	// before the engine and tracker it reports to (see chaos.hooks).
	var syncer atomic.Pointer[causal.OSend]
	var tracker atomic.Pointer[group.Tracker]
	if opts.Reliable != nil {
		rcfg := *opts.Reliable
		rcfg.Seed = rcfg.Seed*int64(c.Group.Size()+1) + int64(c.Group.Rank(id)) + 1
		rcfg.OnSuspect = func(peer string) {
			if tr := tracker.Load(); tr != nil {
				tr.MarkDown(peer)
			}
			if e := syncer.Load(); e != nil {
				// Exclude the peer from the engine's stability quorum so a
				// dead member's frozen watermark cannot pin retained history.
				e.MarkDown(peer, true)
			}
		}
		rcfg.OnResync = func(peer string) {
			if e := syncer.Load(); e != nil {
				e.MarkDown(peer, false)
				_ = e.SyncWith(peer)
			}
		}
		conn = reliable.Wrap(conn, c.Group.Others(id), rcfg)
	}
	site := &Site{ID: id, Replica: rep}
	// The engine's receive loop may deliver before the front-end below is
	// constructed; publish it through an atomic pointer so early
	// deliveries simply skip observation.
	var fePtr atomic.Pointer[core.FrontEnd]
	deliver := causal.DeliverFunc(func(m message.Message) {
		if fe := fePtr.Load(); fe != nil {
			fe.Observe(m)
		}
		rep.Deliver(m)
	})
	if c.Trace != nil {
		deliver = c.Trace.Observer(id, deliver)
	}
	switch opts.Engine {
	case "osend":
		site.Engine, err = causal.NewOSend(causal.OSendConfig{
			Self: id, Group: c.Group, Conn: conn, Deliver: deliver, Patience: opts.Patience,
		})
	case "cbcast":
		site.Engine, err = causal.NewCBCast(causal.CBCastConfig{
			Self: id, Group: c.Group, Conn: conn, Deliver: deliver, Patience: opts.Patience,
		})
	default:
		_ = conn.Close()
		return nil, fmt.Errorf("service: unknown engine %q", opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	if os, ok := site.Engine.(*causal.OSend); ok {
		syncer.Store(os)
	}
	if site.FrontEnd, err = core.NewFrontEnd("fe", site.Engine); err != nil {
		return nil, err
	}
	fePtr.Store(site.FrontEnd)
	if site.Items, err = core.NewItemFrontEnd("it", site.Engine); err != nil {
		return nil, err
	}
	if opts.Heartbeat > 0 {
		site.Tracker = group.NewTracker(c.Group)
		site.runner, err = group.StartRunner(site.Tracker, id, c.Net, opts.Heartbeat, 8*opts.Heartbeat)
		if err != nil {
			return nil, err
		}
		tracker.Store(site.Tracker)
	}
	return site, nil
}

// WaitApplied blocks until every site applied at least n messages or the
// timeout passes.
func (c *Cluster) WaitApplied(n uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		done := true
		for _, s := range c.Sites {
			if s.Replica.Applied() < n {
				done = false
			}
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			var counts []string
			for id, s := range c.Sites {
				counts = append(counts, fmt.Sprintf("%s=%d", id, s.Replica.Applied()))
			}
			return fmt.Errorf("service: timed out waiting for %d applies (%v)", n, counts)
		}
		time.Sleep(time.Millisecond)
	}
}

// Audit compares all sites' stable-point histories.
func (c *Cluster) Audit() obs.AuditReport {
	histories := make(map[string][]core.StablePoint, len(c.Sites))
	for id, s := range c.Sites {
		histories[id] = s.Replica.StablePoints()
	}
	return obs.AuditStablePoints(histories)
}

// Close tears down every site and the network, joining errors.
func (c *Cluster) Close() error {
	var errs []error
	for _, s := range c.Sites {
		if s.runner != nil {
			errs = append(errs, s.runner.Close())
		}
		if s.Engine != nil {
			errs = append(errs, s.Engine.Close())
		}
	}
	errs = append(errs, c.Net.Close())
	return errors.Join(errs...)
}
