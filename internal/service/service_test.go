package service

import (
	"testing"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/shareddata"
	"causalshare/internal/transport"
)

func TestClusterLifecycle(t *testing.T) {
	for _, engine := range []string{"osend", "cbcast"} {
		t.Run(engine, func(t *testing.T) {
			net := transport.NewChanNet(transport.FaultModel{
				MaxDelay: 3 * time.Millisecond, Seed: 7,
			})
			c, err := New("svc", []string{"a", "b", "c"}, net,
				shareddata.NewCounter(0), shareddata.ApplyCounter,
				Options{Engine: engine, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := c.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()

			fe := c.Sites["a"].FrontEnd
			for i := 0; i < 9; i++ {
				op := shareddata.Inc()
				if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
					t.Fatal(err)
				}
			}
			rd := shareddata.Read()
			if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
				t.Fatal(err)
			}
			if err := c.WaitApplied(10, 10*time.Second); err != nil {
				t.Fatal(err)
			}
			report := c.Audit()
			if !report.Consistent() || report.Points != 1 {
				t.Fatalf("audit = %+v", report)
			}
			if err := c.Trace.VerifyAll(); err != nil {
				t.Fatal(err)
			}
			st, _ := c.Sites["b"].Replica.ReadStable()
			if st.Digest() != shareddata.NewCounter(9).Digest() {
				t.Errorf("stable state = %s", st.Digest())
			}
		})
	}
}

func TestClusterMultiSiteFrontEndsWeave(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: 3})
	c, err := New("svc", []string{"x", "y"}, net,
		shareddata.NewCounter(0), shareddata.ApplyCounter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Site x submits commutative ops; site y closes the cycle. y's
	// front-end observes x's ops via the wired Observe hook, so its
	// closer names them (after they arrived at y).
	op := shareddata.Inc()
	for i := 0; i < 4; i++ {
		if _, err := c.Sites["x"].FrontEnd.Submit(op.Op, op.Kind, op.Body); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitApplied(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rd := shareddata.Read()
	closer, err := c.Sites["y"].FrontEnd.Submit(rd.Op, rd.Kind, rd.Body)
	if err != nil {
		t.Fatal(err)
	}
	if closer.Deps.Len() != 4 {
		t.Errorf("closer deps = %v, want the 4 observed incs", closer.Deps)
	}
	if err := c.WaitApplied(5, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if report := c.Audit(); !report.Consistent() {
		t.Fatalf("audit = %+v", report)
	}
}

func TestClusterWithHeartbeats(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c, err := New("svc", []string{"a", "b"}, net,
		shareddata.NewCounter(0), shareddata.ApplyCounter,
		Options{Heartbeat: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	time.Sleep(30 * time.Millisecond)
	for _, id := range []string{"a", "b"} {
		if c.Sites[id].Tracker == nil {
			t.Fatalf("site %s has no tracker", id)
		}
		for _, peer := range []string{"a", "b"} {
			if !c.Sites[id].Tracker.Alive(peer) {
				t.Errorf("site %s believes %s dead", id, peer)
			}
		}
	}
}

func TestClusterItemFrontEnd(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{MaxDelay: 2 * time.Millisecond, Seed: 11})
	c, err := New("svc", []string{"a", "b"}, net,
		shareddata.NewKVStore(), shareddata.ApplyKV, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	items := c.Sites["a"].Items
	put := shareddata.Put("f1", "v1")
	if _, err := items.SubmitScoped(put.Op, "f1", put.Body); err != nil {
		t.Fatal(err)
	}
	put2 := shareddata.Put("f2", "v2")
	if _, err := items.SubmitScoped(put2.Op, "f2", put2.Body); err != nil {
		t.Fatal(err)
	}
	if _, err := items.Sync("snap", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitApplied(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if report := c.Audit(); !report.Consistent() || report.Points != 1 {
		t.Fatalf("audit = %+v", report)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	if _, err := New("svc", nil, net, shareddata.NewCounter(0), shareddata.ApplyCounter, Options{}); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := New("svc", []string{"a"}, net, shareddata.NewCounter(0), shareddata.ApplyCounter,
		Options{Engine: "bogus"}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestClusterOverTCP(t *testing.T) {
	net := transport.NewTCPNet()
	c, err := New("svc", []string{"a", "b", "c"}, net,
		shareddata.NewCounter(0), shareddata.ApplyCounter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	fe := c.Sites["c"].FrontEnd
	op := shareddata.Inc()
	for i := 0; i < 5; i++ {
		if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
			t.Fatal(err)
		}
	}
	rd := shareddata.Read()
	if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitApplied(6, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if report := c.Audit(); !report.Consistent() {
		t.Fatalf("audit over TCP = %+v", report)
	}
}

func TestClusterRawBroadcast(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	c, err := New("svc", []string{"a", "b"}, net,
		shareddata.NewCounter(0), shareddata.ApplyCounter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	m := message.Message{
		Label: message.Label{Origin: "a", Seq: 1},
		Kind:  message.KindNonCommutative,
		Op:    shareddata.OpSet,
		Body:  []byte("41"),
	}
	if err := c.Sites["a"].Engine.Broadcast(m); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitApplied(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Sites["b"].Replica.ReadStable()
	if st.Digest() != shareddata.NewCounter(41).Digest() {
		t.Errorf("state = %s", st.Digest())
	}
}
