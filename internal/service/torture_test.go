package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/reliable"
	"causalshare/internal/shareddata"
	"causalshare/internal/transport"
)

// TestTortureCombinedFaults runs the full stack under every fault at
// once — loss, duplication, reordering, and a partition healed mid-run —
// and demands complete convergence and stable-point agreement.
func TestTortureCombinedFaults(t *testing.T) {
	for _, engine := range []string{"osend", "cbcast"} {
		t.Run(engine, func(t *testing.T) {
			net := transport.NewChanNet(transport.FaultModel{
				DropProb: 0.15,
				DupProb:  0.10,
				MinDelay: 0,
				MaxDelay: 3 * time.Millisecond,
				Seed:     77,
			})
			ids := []string{"a", "b", "c", "d"}
			c, err := New("torture", ids, net,
				shareddata.NewCounter(0), shareddata.ApplyCounter,
				Options{Engine: engine, Patience: 8 * time.Millisecond, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()

			const cycles, perCycle = 8, 5
			total := uint64(0)
			fe := c.Sites["a"].FrontEnd
			for r := 0; r < cycles; r++ {
				if r == 3 {
					// Cut d off from half the group mid-run; heal two
					// cycles later. Retransmission must recover.
					net.Partition("a", "d", true)
					net.Partition("b", "d", true)
				}
				if r == 5 {
					net.Heal()
				}
				for k := 0; k < perCycle; k++ {
					op := shareddata.Inc()
					if k%2 == 1 {
						op = shareddata.Dec()
					}
					if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
						t.Fatal(err)
					}
					total++
				}
				rd := shareddata.Read()
				if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
					t.Fatal(err)
				}
				total++
			}
			if err := c.WaitApplied(total, 30*time.Second); err != nil {
				t.Fatal(err)
			}
			report := c.Audit()
			if !report.Consistent() {
				t.Fatalf("divergence under combined faults: %s", report.Divergence)
			}
			if report.Points != cycles {
				t.Fatalf("stable points = %d, want %d", report.Points, cycles)
			}
			if err := c.Trace.VerifyAll(); err != nil {
				t.Fatalf("causal delivery violated: %v", err)
			}
			if n, err := c.Trace.SameDeliverySet(); err != nil || n != int(total) {
				t.Fatalf("delivery sets: %d, %v", n, err)
			}
		})
	}
}

// TestTortureReliableSustainedLoss is the combined-faults scenario with
// the loss rate raised past what the engine's anti-entropy alone handles
// comfortably (20%% drop + duplication + reorder-inducing delay), and the
// reliability sublayer armed underneath. Every site must converge with
// identical stable points, a causally valid trace, and the complete
// delivery set — i.e. the sublayer repairs sustained loss transparently
// to every layer above it.
func TestTortureReliableSustainedLoss(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{
		DropProb: 0.20,
		DupProb:  0.10,
		MaxDelay: 3 * time.Millisecond,
		Seed:     77,
	})
	ids := []string{"a", "b", "c", "d"}
	c, err := New("torture-loss", ids, net,
		shareddata.NewCounter(0), shareddata.ApplyCounter,
		Options{
			Engine:   "osend",
			Patience: 8 * time.Millisecond,
			Trace:    true,
			Reliable: &reliable.Config{
				Window:   128,
				AckEvery: 8,
				Tick:     2 * time.Millisecond,
				// No member is ever down in this scenario; shedding would
				// only mean a config error, so give it real patience.
				StallTimeout: 2 * time.Second,
				ShedAfter:    5 * time.Second,
				Seed:         3,
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const cycles, perCycle = 8, 5
	total := uint64(0)
	fe := c.Sites["a"].FrontEnd
	for r := 0; r < cycles; r++ {
		for k := 0; k < perCycle; k++ {
			op := shareddata.Inc()
			if k%2 == 1 {
				op = shareddata.Dec()
			}
			if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
				t.Fatal(err)
			}
			total++
		}
		rd := shareddata.Read()
		if _, err := fe.Submit(rd.Op, rd.Kind, rd.Body); err != nil {
			t.Fatal(err)
		}
		total++
	}
	if err := c.WaitApplied(total, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	report := c.Audit()
	if !report.Consistent() {
		t.Fatalf("divergence under sustained loss: %s", report.Divergence)
	}
	if report.Points != cycles {
		t.Fatalf("stable points = %d, want %d", report.Points, cycles)
	}
	if err := c.Trace.VerifyAll(); err != nil {
		t.Fatalf("causal delivery violated: %v", err)
	}
	if n, err := c.Trace.SameDeliverySet(); err != nil || n != int(total) {
		t.Fatalf("delivery sets: %d, %v", n, err)
	}
}

// TestTortureConcurrentClients drives front-ends at every site
// concurrently under faults; the final converged state must be identical
// everywhere (the per-client cycle structures interleave, so stable-point
// streams may differ in count across interleavings — the invariant
// checked is convergence plus causal-delivery validity).
func TestTortureConcurrentClients(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{
		DropProb: 0.1, DupProb: 0.05, MaxDelay: 2 * time.Millisecond, Seed: 99,
	})
	ids := []string{"a", "b", "c"}
	c, err := New("torture2", ids, net,
		shareddata.NewCounter(0), shareddata.ApplyCounter,
		Options{Patience: 8 * time.Millisecond, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const perSite = 20
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			fe := c.Sites[id].FrontEnd
			for i := 0; i < perSite; i++ {
				op := shareddata.Inc()
				if _, err := fe.Submit(op.Op, op.Kind, op.Body); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	total := uint64(len(ids) * perSite)
	if err := c.WaitApplied(total, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Trace.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("counter:%d", len(ids)*perSite)
	for _, id := range ids {
		if got := c.Sites[id].Replica.ReadNow().Digest(); got != want {
			t.Errorf("site %s converged to %s, want %s", id, got, want)
		}
	}
}
