package sim

import (
	"testing"
	"time"

	"causalshare/internal/message"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now = %d, want 30", s.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(100, func() { got = append(got, i) })
	}
	s.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events out of schedule order: %v", got)
		}
	}
}

func TestRunLimit(t *testing.T) {
	s := New(1)
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*10, func() { count++ })
	}
	if n := s.Run(50); n != 5 || count != 5 {
		t.Fatalf("Run(50) processed %d (count %d), want 5", n, count)
	}
	if n := s.Run(0); n != 5 || count != 10 {
		t.Fatalf("Run(0) processed %d (count %d), want remaining 5", n, count)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	hits := 0
	var rec func(depth int)
	rec = func(depth int) {
		hits++
		if depth < 5 {
			s.After(10, func() { rec(depth + 1) })
		}
	}
	s.At(0, func() { rec(0) })
	s.Run(0)
	if hits != 6 {
		t.Errorf("hits = %d, want 6", hits)
	}
	if s.Now() != 50 {
		t.Errorf("Now = %d, want 50", s.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		s := New(42)
		net := NewNet(s, NetModel{MinLatency: Duration(time.Millisecond), MaxLatency: Duration(5 * time.Millisecond)})
		cluster := NewCausalCluster(s, net, RuleOSend, 4, nil)
		for i := uint64(1); i <= 50; i++ {
			i := i
			s.At(Time(i)*Duration(100*time.Microsecond), func() {
				cluster.Broadcast(int(i)%4, message.Message{
					Label: message.Label{Origin: MemberID(int(i) % 4), Seq: i},
					Kind:  message.KindCommutative,
					Op:    "inc",
				})
			})
		}
		s.Run(0)
		return cluster.Latencies()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at sample %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCausalClusterOSendRespectsDeps(t *testing.T) {
	s := New(7)
	net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(10 * time.Millisecond)})
	type dl struct {
		member int
		label  message.Label
	}
	var deliveries []dl
	cluster := NewCausalCluster(s, net, RuleOSend, 3, func(m int, msg message.Message, _ Time) {
		deliveries = append(deliveries, dl{m, msg.Label})
	})
	m1 := message.Message{Label: message.Label{Origin: MemberID(0), Seq: 1}, Kind: message.KindNonCommutative, Op: "w"}
	m2 := message.Message{
		Label: message.Label{Origin: MemberID(1), Seq: 1},
		Deps:  message.After(m1.Label),
		Kind:  message.KindNonCommutative,
		Op:    "w",
	}
	// Broadcast the dependent first: the rule must still order m1 first
	// at every member.
	s.At(0, func() { cluster.Broadcast(1, m2) })
	s.At(1, func() { cluster.Broadcast(0, m1) })
	s.Run(0)
	if cluster.Undelivered() != 0 {
		t.Fatalf("undelivered = %d", cluster.Undelivered())
	}
	pos := map[int]map[string]int{}
	for i, d := range deliveries {
		if pos[d.member] == nil {
			pos[d.member] = map[string]int{}
		}
		pos[d.member][d.label.String()] = i
	}
	for m := 0; m < 3; m++ {
		if pos[m][m1.Label.String()] > pos[m][m2.Label.String()] {
			t.Errorf("member %d delivered dependent before dependency", m)
		}
	}
}

func TestCausalClusterCBCastFIFO(t *testing.T) {
	s := New(11)
	net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(10 * time.Millisecond)})
	var seqs []uint64
	cluster := NewCausalCluster(s, net, RuleCBCast, 2, func(m int, msg message.Message, _ Time) {
		if m == 1 {
			seqs = append(seqs, msg.Label.Seq)
		}
	})
	for i := uint64(1); i <= 20; i++ {
		i := i
		s.At(Time(i), func() {
			cluster.Broadcast(0, message.Message{
				Label: message.Label{Origin: MemberID(0), Seq: i},
				Kind:  message.KindCommutative,
				Op:    "inc",
			})
		})
	}
	s.Run(0)
	if len(seqs) != 20 {
		t.Fatalf("member 1 delivered %d messages", len(seqs))
	}
	for i, q := range seqs {
		if q != uint64(i+1) {
			t.Fatalf("FIFO violated: %v", seqs)
		}
	}
	if cluster.Undelivered() != 0 {
		t.Errorf("undelivered = %d", cluster.Undelivered())
	}
}

func TestCausalClusterBuffersUnderReordering(t *testing.T) {
	// A dependency chain over a high-jitter network must produce nonzero
	// buffering under both rules.
	for _, rule := range []OrderRule{RuleOSend, RuleCBCast} {
		s := New(13)
		net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(20 * time.Millisecond)})
		cluster := NewCausalCluster(s, net, rule, 3, nil)
		var prev message.Label
		for i := uint64(1); i <= 30; i++ {
			i := i
			deps := message.After(prev)
			label := message.Label{Origin: MemberID(0), Seq: i}
			s.At(Time(i), func() {
				cluster.Broadcast(0, message.Message{
					Label: label, Deps: deps, Kind: message.KindNonCommutative, Op: "w",
				})
			})
			prev = label
		}
		s.Run(0)
		if cluster.Undelivered() != 0 {
			t.Errorf("%v: undelivered = %d", rule, cluster.Undelivered())
		}
		if cluster.MaxBuffered() == 0 {
			t.Errorf("%v: no buffering under 20ms jitter (model inert)", rule)
		}
		if len(cluster.Latencies()) != 3*30 {
			t.Errorf("%v: latency samples = %d, want 90", rule, len(cluster.Latencies()))
		}
	}
}

func TestTotalClusterIdenticalOrder(t *testing.T) {
	for _, mode := range []TotalMode{ModeMerge, ModeSequencer} {
		s := New(17)
		net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(5 * time.Millisecond)})
		const n = 4
		orders := make([][]string, n)
		var cluster *TotalCluster
		cluster = NewTotalCluster(s, net, mode, n, Duration(2*time.Millisecond), func(m int, msg message.Message, _ Time) {
			orders[m] = append(orders[m], msg.Label.String())
		})
		for i := uint64(1); i <= 40; i++ {
			i := i
			member := int(i) % n
			s.At(Time(i)*Duration(200*time.Microsecond), func() {
				cluster.ASend(member, message.Message{
					Label: message.Label{Origin: MemberID(member) + "~t", Seq: i},
					Kind:  message.KindNonCommutative,
					Op:    "w",
				})
			})
		}
		// Run long enough for heartbeats to flush the merge holdback.
		s.Run(Duration(2 * time.Second))
		for m := 0; m < n; m++ {
			if len(orders[m]) != 40 {
				t.Fatalf("%v: member %d delivered %d of 40 (undelivered %d)",
					mode, m, len(orders[m]), cluster.Undelivered())
			}
		}
		for m := 1; m < n; m++ {
			for i := range orders[0] {
				if orders[m][i] != orders[0][i] {
					t.Fatalf("%v: member %d order diverges at %d: %s vs %s",
						mode, m, i, orders[m][i], orders[0][i])
				}
			}
		}
	}
}

func TestTotalClusterSequencerNoHeartbeats(t *testing.T) {
	s := New(19)
	net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(2 * time.Millisecond)})
	delivered := 0
	cluster := NewTotalCluster(s, net, ModeSequencer, 3, 0, func(int, message.Message, Time) {
		delivered++
	})
	cluster.ASend(2, message.Message{
		Label: message.Label{Origin: MemberID(2) + "~t", Seq: 1},
		Kind:  message.KindNonCommutative, Op: "w",
	})
	s.Run(0)
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3 (no heartbeats needed)", delivered)
	}
	if cluster.HeartbeatFrames() != 0 {
		t.Errorf("sequencer injected heartbeats")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	samples := make([]Time, 100)
	for i := range samples {
		samples[i] = Time(i + 1)
	}
	s := Summarize(samples)
	if s.Count != 100 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 < 49 || s.P50 > 52 {
		t.Errorf("P50 = %d", s.P50)
	}
	if s.Mean != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Errorf("Mean = %d", s.Mean)
	}
	// Input must not be mutated (sorted copy).
	reversed := []Time{3, 1, 2}
	Summarize(reversed)
	if reversed[0] != 3 {
		t.Error("Summarize mutated input")
	}
}

func TestNetCountsFrames(t *testing.T) {
	s := New(23)
	net := NewNet(s, NetModel{})
	ran := 0
	net.Send(100, func() { ran++ })
	net.Send(50, func() { ran++ })
	s.Run(0)
	if net.Frames() != 2 || net.Bytes() != 150 || ran != 2 {
		t.Errorf("frames=%d bytes=%d ran=%d", net.Frames(), net.Bytes(), ran)
	}
}
