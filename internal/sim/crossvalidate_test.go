package sim

import (
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/chaos"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/transport"
)

// TestSimMatchesLiveEngines cross-validates the simulator's delivery
// rules against the live engines: the same workload must produce the same
// *delivered sets* at every member under both, and both must respect
// every declared dependency. (Delivery orders of concurrent messages may
// legitimately differ — they are a function of timing.)
func TestSimMatchesLiveEngines(t *testing.T) {
	const members = 3
	ops := make([]uint8, 30)
	for i := range ops {
		ops[i] = uint8(i*53 + 7) // deterministic mixed dependency pattern
	}
	w := buildRandomWorkload(ops, members)

	for _, rule := range []OrderRule{RuleOSend, RuleCBCast} {
		// Simulated run.
		simOrders, cluster := runWorkload(5, rule, w, members)
		if cluster.Undelivered() != 0 {
			t.Fatalf("%v: sim left %d undelivered", rule, cluster.Undelivered())
		}

		// Live run of the identical workload.
		ids := make([]string, members)
		for i := range ids {
			ids[i] = MemberID(i)
		}
		grp := group.MustNew("xv", ids)
		net := transport.NewChanNet(transport.FaultModel{
			MaxDelay: 2 * time.Millisecond, Seed: 5,
		})
		var mu sync.Mutex
		liveOrders := make(map[string][]message.Message, members)
		engines := make(map[string]causal.Broadcaster, members)
		for _, id := range ids {
			id := id
			deliver := func(m message.Message) {
				mu.Lock()
				liveOrders[id] = append(liveOrders[id], m)
				mu.Unlock()
			}
			conn, err := net.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			var eng causal.Broadcaster
			if rule == RuleOSend {
				eng, err = causal.NewOSend(causal.OSendConfig{
					Self: id, Group: grp, Conn: conn, Deliver: deliver,
				})
			} else {
				eng, err = causal.NewCBCast(causal.CBCastConfig{
					Self: id, Group: grp, Conn: conn, Deliver: deliver,
				})
			}
			if err != nil {
				t.Fatal(err)
			}
			engines[id] = eng
		}
		// CBCAST infers causality from what the sender delivered, so the
		// live run must issue each message from its designated sender in
		// workload order (same as the simulator's virtual-time order).
		for i, m := range w.msgs {
			if err := engines[MemberID(w.senders[i])].Broadcast(m); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			done := true
			for _, id := range ids {
				if len(liveOrders[id]) < len(w.msgs) {
					done = false
				}
			}
			mu.Unlock()
			if done {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%v: live engines did not converge", rule)
			}
			time.Sleep(time.Millisecond)
		}

		// Same delivered sets, and dependencies respected in both.
		for m := 0; m < members; m++ {
			simSet := make(map[message.Label]bool, len(simOrders[m]))
			for _, msg := range simOrders[m] {
				simSet[msg.Label] = true
			}
			mu.Lock()
			live := append([]message.Message(nil), liveOrders[MemberID(m)]...)
			mu.Unlock()
			if len(live) != len(simSet) {
				t.Fatalf("%v member %d: live delivered %d, sim %d", rule, m, len(live), len(simSet))
			}
			pos := make(map[message.Label]int, len(live))
			for i, msg := range live {
				if !simSet[msg.Label] {
					t.Fatalf("%v member %d: live delivered %v unseen in sim", rule, m, msg.Label)
				}
				pos[msg.Label] = i
			}
			switch rule {
			case RuleOSend:
				// OSend must honor every declared dependency.
				for _, msg := range live {
					for _, d := range msg.Deps.Labels() {
						if pos[d] >= pos[msg.Label] {
							t.Fatalf("%v member %d: live violated dependency %v -> %v", rule, m, d, msg.Label)
						}
					}
				}
			case RuleCBCast:
				// CBCAST orders by potential causality, not by the
				// declared predicates (a sender may broadcast before
				// delivering a declared predecessor); the checkable
				// invariant is FIFO per origin.
				lastSeq := make(map[string]uint64)
				for _, msg := range live {
					if msg.Label.Seq <= lastSeq[msg.Label.Origin] {
						t.Fatalf("%v member %d: FIFO violated at %v", rule, m, msg.Label)
					}
					lastSeq[msg.Label.Origin] = msg.Label.Seq
				}
			}
		}
		for _, e := range engines {
			_ = e.Close()
		}
		_ = net.Close()
	}
}

// TestChaosCrossValidatesSimAgainstLive runs the same seeded crash/rejoin
// schedules through the simulated failover rule and the live stack (chaos
// harness over ChanNet) and checks that both uphold the protocol's
// guarantees: convergence after the faults drain, identical totals among
// uninterrupted survivors, and position consistency everywhere. Delivered
// orders are not compared message-for-message across the two — assignment
// order is a function of timing, which the two executions model
// differently on purpose; the invariants are what the rule promises.
func TestChaosCrossValidatesSimAgainstLive(t *testing.T) {
	const n, quota = 5, 20
	ids := make([]string, n)
	for i := range ids {
		ids[i] = MemberID(i)
	}
	for _, seed := range []int64{7, 21, 33} {
		sched := chaos.RandomSchedule(seed, ids, 400*time.Millisecond, 4)

		// Simulated run of the schedule.
		r := runSimFailover(seed, n, quota, sched, Duration(1500*time.Millisecond))
		checkFailoverInvariants(t, seed, r)

		// Live run of the identical schedule.
		net := transport.NewChanNet(transport.FaultModel{})
		res, err := chaos.Run(chaos.Options{
			Members:        ids,
			Net:            net,
			Schedule:       sched,
			SendsPerMember: quota,
			Step:           2 * time.Millisecond,
			FailTimeout:    60 * time.Millisecond,
			Patience:       12 * time.Millisecond,
			Timeout:        15 * time.Second,
		})
		if err != nil {
			t.Fatalf("seed %d: live run: %v", seed, err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: live stack did not converge on schedule %v", seed, sched.Actions)
		}

		// Both executions must agree about which members end the run down
		// (that is schedule-determined) ...
		for i, id := range ids {
			if simDown, liveDown := r.cluster.IsDown(i), !res.Members[id].Alive; simDown != liveDown {
				t.Fatalf("seed %d: member %s down=%v in sim, down=%v live", seed, id, simDown, liveDown)
			}
		}
		// ... and the live survivors must agree with each other just as the
		// simulated ones do.
		var ref []string
		for _, id := range ids {
			m := res.Members[id]
			if !m.Alive || m.Rejoined {
				continue
			}
			if ref == nil {
				ref = m.Order
				continue
			}
			if len(m.Order) != len(ref) {
				t.Fatalf("seed %d: live survivors delivered %d vs %d", seed, len(m.Order), len(ref))
			}
			for i := range ref {
				if m.Order[i] != ref[i] {
					t.Fatalf("seed %d: live survivors diverge at %d", seed, i)
				}
			}
		}
		if ref == nil {
			t.Fatalf("seed %d: no uninterrupted live survivor", seed)
		}
		_ = net.Close()
	}
}
