package sim

import (
	"fmt"

	"causalshare/internal/message"
	"causalshare/internal/vclock"
)

// OrderRule selects which causal delivery rule a simulated cluster runs.
type OrderRule int

const (
	// RuleOSend delivers a message once all labels in its OccursAfter
	// predicate are delivered — the paper's explicit-dependency rule.
	RuleOSend OrderRule = iota + 1
	// RuleCBCast delivers under the vector-clock causal condition — the
	// ISIS-style baseline, which also enforces FIFO per sender and any
	// incidental causality the sender had observed.
	RuleCBCast
	// RulePCCast delivers in per-link FIFO receipt order with
	// forward-on-first-receipt flooding — the constant-metadata
	// PC-broadcast rule of the live causal.PCCast engine. Causal safety
	// comes from the links: every process emits m1 before m2 on every
	// link whenever it delivered (or sent) m1 before m2, so FIFO receipt
	// order extends causal order by induction.
	RulePCCast
)

// String names the rule for experiment tables.
func (r OrderRule) String() string {
	switch r {
	case RuleOSend:
		return "osend"
	case RuleCBCast:
		return "cbcast"
	case RulePCCast:
		return "pccast"
	default:
		return fmt.Sprintf("OrderRule(%d)", int(r))
	}
}

// ParseRule parses an engine selector ("osend", "cbcast", "pccast").
func ParseRule(s string) (OrderRule, error) {
	switch s {
	case "osend":
		return RuleOSend, nil
	case "cbcast":
		return RuleCBCast, nil
	case "pccast":
		return RulePCCast, nil
	default:
		return 0, fmt.Errorf("sim: unknown order rule %q (want osend, cbcast, or pccast)", s)
	}
}

// Rules lists every delivery rule, for sweeps.
var Rules = []OrderRule{RuleOSend, RuleCBCast, RulePCCast}

// DeliverFunc receives deliveries at simulated members.
type DeliverFunc func(member int, m message.Message, at Time)

// CausalCluster simulates n members running one causal delivery rule over
// a latency-modelled network. It records per-delivery latency and buffer
// occupancy — the observables of experiments E1/E6/E7.
type CausalCluster struct {
	sim  *Sim
	net  *Net
	rule OrderRule
	n    int
	onDl DeliverFunc

	nodes []*causalNode
	// sentAt records broadcast times for latency measurement.
	sentAt map[message.Label]Time
	// latencies collects (deliver - send) samples across members.
	latencies []Time
	// control accumulates ordering-metadata bytes (deps or clocks).
	control uint64
}

type causalNode struct {
	id string
	// OSend rule state.
	delivered map[message.Label]bool
	pending   map[message.Label]*simPending
	waiting   map[message.Label][]message.Label
	// CBCast rule state.
	vc     vclock.VC
	buffer []cbPending
	// PCCast rule state: per-peer FIFO link sequencing. sendSeq[d] is the
	// next stream position this node assigns on its link to d; recvSeq[s]
	// is the next position it will release from s; linkBuf[s] holds frames
	// that arrived ahead of the stream.
	seen    map[message.Label]bool
	sendSeq []uint64
	recvSeq []uint64
	linkBuf []map[uint64]message.Message
	// metrics
	maxBuffered int
}

type simPending struct {
	msg     message.Message
	missing map[message.Label]struct{}
}

type cbPending struct {
	sender string
	stamp  vclock.VC
	msg    message.Message
}

// NewCausalCluster builds a cluster of n members. onDeliver may be nil.
func NewCausalCluster(s *Sim, net *Net, rule OrderRule, n int, onDeliver DeliverFunc) *CausalCluster {
	c := &CausalCluster{
		sim: s, net: net, rule: rule, n: n, onDl: onDeliver,
		sentAt: make(map[message.Label]Time),
	}
	for i := 0; i < n; i++ {
		node := &causalNode{
			id:        memberID(i),
			delivered: make(map[message.Label]bool),
			pending:   make(map[message.Label]*simPending),
			waiting:   make(map[message.Label][]message.Label),
			vc:        vclock.New(),
		}
		if rule == RulePCCast {
			node.seen = make(map[message.Label]bool)
			node.sendSeq = make([]uint64, n)
			node.recvSeq = make([]uint64, n)
			node.linkBuf = make([]map[uint64]message.Message, n)
			for j := 0; j < n; j++ {
				node.linkBuf[j] = make(map[uint64]message.Message)
			}
		}
		c.nodes = append(c.nodes, node)
	}
	return c
}

// memberID formats the id of member i.
func memberID(i int) string { return fmt.Sprintf("n%03d", i) }

// MemberID exposes the simulated member naming for workloads.
func MemberID(i int) string { return memberID(i) }

// Broadcast sends m from member `from` to every member. Self-delivery is
// immediate (subject to the ordering rule); remote deliveries follow
// sampled latencies.
func (c *CausalCluster) Broadcast(from int, m message.Message) {
	c.sentAt[m.Label] = c.sim.Now()
	switch c.rule {
	case RuleOSend:
		c.control += uint64(len(m.Deps.Labels())) * 12 * uint64(c.n-1)
		c.arriveOSend(from, m)
		for i := 0; i < c.n; i++ {
			if i == from {
				continue
			}
			i := i
			c.net.Send(m.EncodedSize(), func() { c.arriveOSend(i, m) })
		}
	case RuleCBCast:
		node := c.nodes[from]
		node.vc.Tick(node.id)
		stamp := node.vc.Clone()
		c.control += uint64(stamp.EncodedSize()) * uint64(c.n-1)
		c.deliverAt(from, m)
		for i := 0; i < c.n; i++ {
			if i == from {
				continue
			}
			i := i
			c.net.Send(m.EncodedSize()+stamp.EncodedSize(), func() {
				c.arriveCBCast(i, node.id, stamp, m)
			})
		}
	case RulePCCast:
		node := c.nodes[from]
		node.seen[m.Label] = true
		c.control += pcHeaderBytes * uint64(c.n-1)
		// Outbound frames go on the links before the local delivery runs:
		// anything the delivery callback broadcasts must land after m in
		// every link's stream, or receipt order would not extend causality.
		c.floodPCCast(from, -1, m)
		c.deliverAt(from, m)
	}
}

// pcHeaderBytes is the constant per-frame ordering metadata of the
// PC-broadcast rule (the live engine's tagged PC header).
const pcHeaderBytes = 4

// floodPCCast sends m on every link out of src except back to except.
func (c *CausalCluster) floodPCCast(src, except int, m message.Message) {
	node := c.nodes[src]
	for i := 0; i < c.n; i++ {
		if i == src || i == except {
			continue
		}
		i := i
		seq := node.sendSeq[i]
		node.sendSeq[i]++
		c.net.Send(m.EncodedSize()+pcHeaderBytes, func() { c.arrivePCCast(i, src, seq, m) })
	}
}

// arrivePCCast buffers a link frame and releases the link's stream in
// sequence order — the FIFO property everything rests on.
func (c *CausalCluster) arrivePCCast(member, src int, seq uint64, m message.Message) {
	node := c.nodes[member]
	node.linkBuf[src][seq] = m
	if buffered := c.pcBuffered(node); buffered > node.maxBuffered {
		node.maxBuffered = buffered
	}
	for {
		next, ok := node.linkBuf[src][node.recvSeq[src]]
		if !ok {
			return
		}
		delete(node.linkBuf[src], node.recvSeq[src])
		node.recvSeq[src]++
		c.receivePCCast(member, src, next)
	}
}

// receivePCCast handles an in-stream frame: duplicates drop, first
// receipts forward to every other link and then deliver locally.
func (c *CausalCluster) receivePCCast(member, src int, m message.Message) {
	node := c.nodes[member]
	if node.seen[m.Label] {
		return
	}
	node.seen[m.Label] = true
	c.floodPCCast(member, src, m)
	c.deliverAt(member, m)
}

// pcBuffered counts frames held back by link sequencing at node.
func (c *CausalCluster) pcBuffered(node *causalNode) int {
	out := 0
	for _, buf := range node.linkBuf {
		out += len(buf)
	}
	return out
}

func (c *CausalCluster) arriveOSend(member int, m message.Message) {
	node := c.nodes[member]
	if node.delivered[m.Label] {
		return
	}
	if _, dup := node.pending[m.Label]; dup {
		return
	}
	missing := make(map[message.Label]struct{})
	for _, d := range m.Deps.Labels() {
		if !node.delivered[d] {
			missing[d] = struct{}{}
		}
	}
	if len(missing) > 0 {
		node.pending[m.Label] = &simPending{msg: m, missing: missing}
		for d := range missing {
			node.waiting[d] = append(node.waiting[d], m.Label)
		}
		if len(node.pending) > node.maxBuffered {
			node.maxBuffered = len(node.pending)
		}
		return
	}
	queue := []message.Message{m}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if node.delivered[cur.Label] {
			continue
		}
		node.delivered[cur.Label] = true
		c.deliverAt(member, cur)
		blocked := node.waiting[cur.Label]
		delete(node.waiting, cur.Label)
		for _, bl := range blocked {
			p, ok := node.pending[bl]
			if !ok {
				continue
			}
			delete(p.missing, cur.Label)
			if len(p.missing) == 0 {
				delete(node.pending, bl)
				queue = append(queue, p.msg)
			}
		}
	}
}

func (c *CausalCluster) arriveCBCast(member int, sender string, stamp vclock.VC, m message.Message) {
	node := c.nodes[member]
	node.buffer = append(node.buffer, cbPending{sender: sender, stamp: stamp, msg: m})
	if len(node.buffer) > node.maxBuffered {
		node.maxBuffered = len(node.buffer)
	}
	for {
		progress := false
		for i := 0; i < len(node.buffer); i++ {
			p := node.buffer[i]
			if !node.vc.CausallyReady(p.stamp, p.sender) {
				continue
			}
			node.vc.Merge(p.stamp)
			node.buffer = append(node.buffer[:i], node.buffer[i+1:]...)
			c.deliverAt(member, p.msg)
			progress = true
			i--
		}
		if !progress {
			return
		}
	}
}

func (c *CausalCluster) deliverAt(member int, m message.Message) {
	if sent, ok := c.sentAt[m.Label]; ok {
		c.latencies = append(c.latencies, c.sim.Now()-sent)
	}
	if c.onDl != nil {
		c.onDl(member, m, c.sim.Now())
	}
}

// Latencies returns all delivery-latency samples.
func (c *CausalCluster) Latencies() []Time { return c.latencies }

// MaxBuffered returns the highest buffer occupancy any member reached.
func (c *CausalCluster) MaxBuffered() int {
	out := 0
	for _, n := range c.nodes {
		if n.maxBuffered > out {
			out = n.maxBuffered
		}
	}
	return out
}

// ControlBytes returns accumulated ordering-metadata bytes.
func (c *CausalCluster) ControlBytes() uint64 { return c.control }

// Size returns the member count.
func (c *CausalCluster) Size() int { return c.n }

// Undelivered returns the number of (member, message) deliveries still
// buffered — it must be zero after a drained run.
func (c *CausalCluster) Undelivered() int {
	out := 0
	for _, n := range c.nodes {
		out += len(n.pending) + len(n.buffer) + c.pcBuffered(n)
	}
	return out
}
