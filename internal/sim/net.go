package sim

// NetModel describes the simulated network's latency behaviour. Frames are
// never lost in simulation (loss recovery is exercised by the live-engine
// tests); unequal latencies produce the reordering that stresses the
// delivery rules.
type NetModel struct {
	// MinLatency and MaxLatency bound the uniform per-frame latency.
	MinLatency Time
	// MaxLatency must be >= MinLatency; equal values give a constant-
	// latency network (no reordering).
	MaxLatency Time
}

// Net delivers frames between simulated nodes with sampled latencies.
type Net struct {
	sim   *Sim
	model NetModel
	// frames counts point-to-point frames sent (message-overhead metric).
	frames uint64
	// bytes counts payload bytes if senders report them.
	bytes uint64
}

// NewNet binds a network model to a simulator.
func NewNet(s *Sim, model NetModel) *Net {
	return &Net{sim: s, model: model}
}

// Send schedules deliver to run after a sampled latency, counting the
// frame. size is the frame's accounted wire size in bytes (0 if the
// experiment does not track bytes).
func (n *Net) Send(size int, deliver func()) {
	n.frames++
	n.bytes += uint64(size)
	n.sim.After(n.sim.Uniform(n.model.MinLatency, n.model.MaxLatency), deliver)
}

// Frames returns the number of frames sent.
func (n *Net) Frames() uint64 { return n.frames }

// Bytes returns the accounted payload bytes.
func (n *Net) Bytes() uint64 { return n.bytes }
