package sim

import (
	"sort"

	"causalshare/internal/message"
	"causalshare/internal/vclock"
)

// TotalMode selects the simulated total-order mechanism.
type TotalMode int

const (
	// ModeMerge is the decentralized deterministic merge (Lamport stamps
	// + horizons), total.Orderer's rule.
	ModeMerge TotalMode = iota + 1
	// ModeSequencer is the fixed-sequencer rule, total.Sequencer's.
	ModeSequencer
)

// String names the mode for experiment tables.
func (m TotalMode) String() string {
	switch m {
	case ModeMerge:
		return "merge"
	case ModeSequencer:
		return "sequencer"
	default:
		return "unknown"
	}
}

// TotalCluster simulates n members running a total-order layer over the
// latency-modelled network. FIFO per sender is assumed (the live layer
// enforces it by self-chaining; the simulator delivers each sender's
// frames in send order by construction of per-pair FIFO queues).
//
// With hbEvery > 0 (merge mode) the heartbeat self-reschedules forever,
// so drive the simulator with Run(limit), not Run(0).
type TotalCluster struct {
	sim  *Sim
	net  *Net
	mode TotalMode
	n    int
	onDl DeliverFunc
	// HeartbeatEvery, when > 0, injects liveness stamps for ModeMerge.
	hbEvery Time

	nodes     []*totalNode
	clock     []vclock.Lamport // per member Lamport clock
	seqNext   uint64           // sequencer: next global seq
	sendSeq   []uint64         // per member FIFO send counter
	hbSeq     uint64           // heartbeat label counter
	sentAt    map[message.Label]Time
	latencies []Time
	hbFrames  uint64
}

type totalNode struct {
	id       string
	horizon  map[string]uint64
	holdback []simStamped
	// fifo enforces per-sender in-order processing of arriving frames.
	fifoNext map[string]uint64
	fifoHold map[string][]simArrival
	// sequencer state
	seqOf       map[uint64]message.Label
	data        map[message.Label]message.Message
	nextDeliver uint64
	maxHoldback int
}

type simStamped struct {
	stamp vclock.Stamp
	msg   message.Message
	hb    bool
}

type simArrival struct {
	sender  string
	sendSeq uint64
	stamp   uint64
	msg     message.Message
	hb      bool
}

// NewTotalCluster builds a simulated total-order cluster.
func NewTotalCluster(s *Sim, net *Net, mode TotalMode, n int, hbEvery Time, onDeliver DeliverFunc) *TotalCluster {
	c := &TotalCluster{
		sim: s, net: net, mode: mode, n: n, onDl: onDeliver, hbEvery: hbEvery,
		clock:   make([]vclock.Lamport, n),
		sendSeq: make([]uint64, n),
		sentAt:  make(map[message.Label]Time),
	}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &totalNode{
			id:          memberID(i),
			horizon:     make(map[string]uint64),
			fifoNext:    make(map[string]uint64),
			fifoHold:    make(map[string][]simArrival),
			seqOf:       make(map[uint64]message.Label),
			data:        make(map[message.Label]message.Message),
			nextDeliver: 1,
		})
	}
	if mode == ModeMerge && hbEvery > 0 {
		for i := 0; i < n; i++ {
			c.scheduleHeartbeat(i)
		}
	}
	return c
}

func (c *TotalCluster) scheduleHeartbeat(member int) {
	c.sim.After(c.hbEvery, func() {
		c.heartbeat(member)
		c.scheduleHeartbeat(member)
	})
}

func (c *TotalCluster) heartbeat(member int) {
	c.hbSeq++
	m := message.Message{
		Label: message.Label{Origin: memberID(member) + "~hb", Seq: c.hbSeq},
		Kind:  message.KindControl,
		Op:    "hb",
	}
	c.hbFrames += uint64(c.n - 1)
	c.send(member, m, true)
}

// ASend broadcasts m from member for totally ordered delivery.
func (c *TotalCluster) ASend(member int, m message.Message) {
	c.sentAt[m.Label] = c.sim.Now()
	c.send(member, m, false)
}

func (c *TotalCluster) send(member int, m message.Message, hb bool) {
	sender := memberID(member)
	stamp := c.clock[member].Tick()
	c.sendSeq[member]++
	seq := c.sendSeq[member]
	for i := 0; i < c.n; i++ {
		arr := simArrival{sender: sender, sendSeq: seq, stamp: stamp, msg: m, hb: hb}
		if i == member {
			c.arrive(i, arr)
			continue
		}
		i := i
		c.net.Send(m.EncodedSize()+10, func() { c.arrive(i, arr) })
	}
}

// arrive enforces per-sender FIFO, then feeds the ordering rule.
func (c *TotalCluster) arrive(member int, a simArrival) {
	node := c.nodes[member]
	next := node.fifoNext[a.sender] + 1
	if a.sendSeq != next {
		node.fifoHold[a.sender] = append(node.fifoHold[a.sender], a)
		return
	}
	c.process(member, a)
	node.fifoNext[a.sender] = a.sendSeq
	// Release any held successors in seq order.
	for {
		held := node.fifoHold[a.sender]
		want := node.fifoNext[a.sender] + 1
		found := -1
		for i, h := range held {
			if h.sendSeq == want {
				found = i
				break
			}
		}
		if found < 0 {
			return
		}
		h := held[found]
		node.fifoHold[a.sender] = append(held[:found], held[found+1:]...)
		c.process(member, h)
		node.fifoNext[a.sender] = h.sendSeq
	}
}

func (c *TotalCluster) process(member int, a simArrival) {
	node := c.nodes[member]
	if a.stamp > node.horizon[a.sender] {
		node.horizon[a.sender] = a.stamp
	}
	// Witness the stamp so this member's future sends order after what it
	// has seen (Lamport's rule, matching the live Orderer).
	if a.sender != node.id {
		c.clock[member].Witness(a.stamp)
	}
	switch c.mode {
	case ModeMerge:
		entry := simStamped{
			stamp: vclock.Stamp{Time: a.stamp, Proc: a.sender},
			msg:   a.msg,
			hb:    a.hb,
		}
		i := sort.Search(len(node.holdback), func(i int) bool {
			return entry.stamp.Less(node.holdback[i].stamp)
		})
		node.holdback = append(node.holdback, simStamped{})
		copy(node.holdback[i+1:], node.holdback[i:])
		node.holdback[i] = entry
		if len(node.holdback) > node.maxHoldback {
			node.maxHoldback = len(node.holdback)
		}
		c.releaseMerge(member)
	case ModeSequencer:
		if a.hb {
			return
		}
		c.processSequencer(member, a)
	}
}

func (c *TotalCluster) releaseMerge(member int) {
	node := c.nodes[member]
	for len(node.holdback) > 0 {
		head := node.holdback[0]
		stable := true
		for i := 0; i < c.n; i++ {
			p := memberID(i)
			if p == head.stamp.Proc {
				continue
			}
			if node.horizon[p] < head.stamp.Time {
				stable = false
				break
			}
		}
		if !stable {
			return
		}
		node.holdback = node.holdback[1:]
		if !head.hb {
			c.deliverAt(member, head.msg)
		}
	}
}

func (c *TotalCluster) processSequencer(member int, a simArrival) {
	node := c.nodes[member]
	node.data[a.msg.Label] = a.msg
	if len(node.data) > node.maxHoldback {
		node.maxHoldback = len(node.data)
	}
	if member == 0 { // rank-0 member is the sequencer
		c.seqNext++
		seq := c.seqNext
		label := a.msg.Label
		// ORDER broadcast: one frame to every other member.
		for i := 1; i < c.n; i++ {
			i := i
			c.net.Send(16, func() { c.applyOrder(i, seq, label) })
		}
		c.applyOrder(0, seq, label)
	}
	c.releaseSequencer(member)
}

func (c *TotalCluster) applyOrder(member int, seq uint64, label message.Label) {
	c.nodes[member].seqOf[seq] = label
	c.releaseSequencer(member)
}

func (c *TotalCluster) releaseSequencer(member int) {
	node := c.nodes[member]
	for {
		label, ok := node.seqOf[node.nextDeliver]
		if !ok {
			return
		}
		m, ok := node.data[label]
		if !ok {
			return
		}
		delete(node.seqOf, node.nextDeliver)
		delete(node.data, label)
		node.nextDeliver++
		c.deliverAt(member, m)
	}
}

func (c *TotalCluster) deliverAt(member int, m message.Message) {
	if sent, ok := c.sentAt[m.Label]; ok {
		c.latencies = append(c.latencies, c.sim.Now()-sent)
	}
	if c.onDl != nil {
		c.onDl(member, m, c.sim.Now())
	}
}

// Latencies returns all delivery-latency samples.
func (c *TotalCluster) Latencies() []Time { return c.latencies }

// MaxHoldback returns the deepest holdback any member reached.
func (c *TotalCluster) MaxHoldback() int {
	out := 0
	for _, n := range c.nodes {
		if n.maxHoldback > out {
			out = n.maxHoldback
		}
	}
	return out
}

// HeartbeatFrames returns the liveness frames injected (merge mode).
func (c *TotalCluster) HeartbeatFrames() uint64 { return c.hbFrames }

// Undelivered returns buffered-but-undelivered entries after a run; it
// must be zero once heartbeats or traffic flush the holdback.
func (c *TotalCluster) Undelivered() int {
	out := 0
	for _, n := range c.nodes {
		for _, h := range n.holdback {
			if !h.hb {
				out++
			}
		}
		out += len(n.data)
	}
	return out
}
