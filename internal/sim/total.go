package sim

import (
	"sort"

	"causalshare/internal/message"
	"causalshare/internal/vclock"
)

// TotalMode selects the simulated total-order mechanism.
type TotalMode int

const (
	// ModeMerge is the decentralized deterministic merge (Lamport stamps
	// + horizons), total.Orderer's rule.
	ModeMerge TotalMode = iota + 1
	// ModeSequencer is the fixed-sequencer rule, total.Sequencer's.
	ModeSequencer
)

// String names the mode for experiment tables.
func (m TotalMode) String() string {
	switch m {
	case ModeMerge:
		return "merge"
	case ModeSequencer:
		return "sequencer"
	default:
		return "unknown"
	}
}

// TotalCluster simulates n members running a total-order layer over the
// latency-modelled network. FIFO per sender is assumed (the live layer
// enforces it by self-chaining; the simulator delivers each sender's
// frames in send order by construction of per-pair FIFO queues).
//
// With hbEvery > 0 (merge mode) the heartbeat self-reschedules forever,
// so drive the simulator with Run(limit), not Run(0). The same applies
// once SetFailover arms the liveness beacons.
//
// Crash/Recover model member failure as park-and-replay: frames addressed
// to a down member queue at its network interface and replay, in arrival
// order, the instant it recovers — the simulation analogue of the live
// rejoin path, where the causal layer's retention and the sequencer
// snapshot reconstruct exactly the missed history. A down member
// originates nothing (its ASends are dropped, its beacons and detection
// ticks skip).
type TotalCluster struct {
	sim  *Sim
	net  *Net
	mode TotalMode
	n    int
	onDl DeliverFunc
	// HeartbeatEvery, when > 0, injects liveness stamps for ModeMerge.
	hbEvery Time

	nodes     []*totalNode
	clock     []vclock.Lamport // per member Lamport clock
	sendSeq   []uint64         // per member FIFO send counter
	hbSeq     uint64           // heartbeat label counter
	sentAt    map[message.Label]Time
	latencies []Time
	hbFrames  uint64

	// failover state (ModeSequencer; see SetFailover)
	failover  bool
	detect    Time
	down      []bool
	parked    [][]func()
	replaying bool
	elections uint64
	fenced    uint64
}

type totalNode struct {
	id       string
	horizon  map[string]uint64
	holdback []simStamped
	// fifo enforces per-sender in-order processing of arriving frames.
	fifoNext map[string]uint64
	fifoHold map[string][]simArrival
	// sequencer state
	seqOf       map[uint64]message.Label
	assignEpoch map[uint64]uint64
	seqByLabel  map[message.Label]uint64
	data        map[message.Label]message.Message
	nextDeliver uint64
	nextAssign  uint64
	maxSeqSeen  uint64
	epoch       uint64
	lastHeard   map[string]Time
	maxHoldback int
}

type simStamped struct {
	stamp vclock.Stamp
	msg   message.Message
	hb    bool
}

type simArrival struct {
	sender  string
	sendSeq uint64
	stamp   uint64
	msg     message.Message
	hb      bool
}

// NewTotalCluster builds a simulated total-order cluster.
func NewTotalCluster(s *Sim, net *Net, mode TotalMode, n int, hbEvery Time, onDeliver DeliverFunc) *TotalCluster {
	c := &TotalCluster{
		sim: s, net: net, mode: mode, n: n, onDl: onDeliver, hbEvery: hbEvery,
		clock:   make([]vclock.Lamport, n),
		sendSeq: make([]uint64, n),
		sentAt:  make(map[message.Label]Time),
		down:    make([]bool, n),
		parked:  make([][]func(), n),
	}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &totalNode{
			id:          memberID(i),
			horizon:     make(map[string]uint64),
			fifoNext:    make(map[string]uint64),
			fifoHold:    make(map[string][]simArrival),
			seqOf:       make(map[uint64]message.Label),
			assignEpoch: make(map[uint64]uint64),
			seqByLabel:  make(map[message.Label]uint64),
			data:        make(map[message.Label]message.Message),
			nextDeliver: 1,
			nextAssign:  1,
			lastHeard:   make(map[string]Time),
		})
	}
	if mode == ModeMerge && hbEvery > 0 {
		for i := 0; i < n; i++ {
			c.scheduleHeartbeat(i)
		}
	}
	return c
}

func (c *TotalCluster) scheduleHeartbeat(member int) {
	c.sim.After(c.hbEvery, func() {
		if !c.down[member] {
			c.heartbeat(member)
		}
		c.scheduleHeartbeat(member)
	})
}

func (c *TotalCluster) heartbeat(member int) {
	c.hbSeq++
	m := message.Message{
		Label: message.Label{Origin: memberID(member) + "~hb", Seq: c.hbSeq},
		Kind:  message.KindControl,
		Op:    "hb",
	}
	c.hbFrames += uint64(c.n - 1)
	c.send(member, m, true)
}

// ASend broadcasts m from member for totally ordered delivery. A down
// member's send is dropped (a crashed process originates nothing);
// drivers pause a member's workload while it is down and resume the
// remainder after Recover.
func (c *TotalCluster) ASend(member int, m message.Message) {
	if c.down[member] {
		return
	}
	c.sentAt[m.Label] = c.sim.Now()
	c.send(member, m, false)
}

func (c *TotalCluster) send(member int, m message.Message, hb bool) {
	sender := memberID(member)
	stamp := c.clock[member].Tick()
	c.sendSeq[member]++
	seq := c.sendSeq[member]
	for i := 0; i < c.n; i++ {
		arr := simArrival{sender: sender, sendSeq: seq, stamp: stamp, msg: m, hb: hb}
		if i == member {
			c.arrive(i, arr)
			continue
		}
		i := i
		c.sendTo(i, m.EncodedSize()+10, func() { c.arrive(i, arr) })
	}
}

// sendTo schedules a frame for member, parking it if the member is down;
// parked frames replay in arrival order on Recover.
func (c *TotalCluster) sendTo(member, size int, fn func()) {
	c.net.Send(size, func() { c.admit(member, fn) })
}

func (c *TotalCluster) admit(member int, fn func()) {
	if c.down[member] {
		c.parked[member] = append(c.parked[member], fn)
		return
	}
	fn()
}

// arrive enforces per-sender FIFO, then feeds the ordering rule.
func (c *TotalCluster) arrive(member int, a simArrival) {
	node := c.nodes[member]
	next := node.fifoNext[a.sender] + 1
	if a.sendSeq != next {
		node.fifoHold[a.sender] = append(node.fifoHold[a.sender], a)
		return
	}
	c.process(member, a)
	node.fifoNext[a.sender] = a.sendSeq
	// Release any held successors in seq order.
	for {
		held := node.fifoHold[a.sender]
		want := node.fifoNext[a.sender] + 1
		found := -1
		for i, h := range held {
			if h.sendSeq == want {
				found = i
				break
			}
		}
		if found < 0 {
			return
		}
		h := held[found]
		node.fifoHold[a.sender] = append(held[:found], held[found+1:]...)
		c.process(member, h)
		node.fifoNext[a.sender] = h.sendSeq
	}
}

func (c *TotalCluster) process(member int, a simArrival) {
	node := c.nodes[member]
	node.lastHeard[a.sender] = c.sim.Now()
	if a.stamp > node.horizon[a.sender] {
		node.horizon[a.sender] = a.stamp
	}
	// Witness the stamp so this member's future sends order after what it
	// has seen (Lamport's rule, matching the live Orderer).
	if a.sender != node.id {
		c.clock[member].Witness(a.stamp)
	}
	switch c.mode {
	case ModeMerge:
		entry := simStamped{
			stamp: vclock.Stamp{Time: a.stamp, Proc: a.sender},
			msg:   a.msg,
			hb:    a.hb,
		}
		i := sort.Search(len(node.holdback), func(i int) bool {
			return entry.stamp.Less(node.holdback[i].stamp)
		})
		node.holdback = append(node.holdback, simStamped{})
		copy(node.holdback[i+1:], node.holdback[i:])
		node.holdback[i] = entry
		if len(node.holdback) > node.maxHoldback {
			node.maxHoldback = len(node.holdback)
		}
		c.releaseMerge(member)
	case ModeSequencer:
		if a.hb {
			return
		}
		c.processSequencer(member, a)
	}
}

func (c *TotalCluster) releaseMerge(member int) {
	node := c.nodes[member]
	for len(node.holdback) > 0 {
		head := node.holdback[0]
		stable := true
		for i := 0; i < c.n; i++ {
			p := memberID(i)
			if p == head.stamp.Proc {
				continue
			}
			if node.horizon[p] < head.stamp.Time {
				stable = false
				break
			}
		}
		if !stable {
			return
		}
		node.holdback = node.holdback[1:]
		if !head.hb {
			c.deliverAt(member, head.msg)
		}
	}
}

// leaderIdx maps an epoch to the member leading it: epoch 0 is the rank-0
// fixed sequencer, each succession advances one slot in group order —
// total.Sequencer's rule.
func (c *TotalCluster) leaderIdx(epoch uint64) int {
	return int(epoch % uint64(c.n))
}

func (c *TotalCluster) processSequencer(member int, a simArrival) {
	node := c.nodes[member]
	node.data[a.msg.Label] = a.msg
	if len(node.data) > node.maxHoldback {
		node.maxHoldback = len(node.data)
	}
	// Assignment is the epoch leader's job. During a recovery replay the
	// member's epoch may still be stale (the frame that catches it up is
	// later in the parked queue), so sequencing waits until the replay has
	// drained — Recover assigns any leftover unassigned holdback after.
	if !c.replaying && c.leaderIdx(node.epoch) == member {
		if _, assigned := node.seqByLabel[a.msg.Label]; !assigned {
			c.assignAndAnnounce(member, a.msg.Label)
		}
	}
	c.releaseSequencer(member)
}

// assignAndAnnounce hands label the leader's next sequence number under
// its current epoch and broadcasts the ORDER.
func (c *TotalCluster) assignAndAnnounce(member int, label message.Label) {
	node := c.nodes[member]
	seq := node.nextAssign
	node.nextAssign++
	c.announceOrder(member, seq, label)
}

// announceOrder broadcasts ORDER(epoch, seq, label) from member and
// applies it locally.
func (c *TotalCluster) announceOrder(member int, seq uint64, label message.Label) {
	node := c.nodes[member]
	epoch := node.epoch
	from := node.id
	for i := 0; i < c.n; i++ {
		if i == member {
			continue
		}
		i := i
		c.sendTo(i, 16, func() { c.applyOrder(i, from, epoch, seq, label) })
	}
	c.applyOrder(member, from, epoch, seq, label)
}

// applyOrder is the receiver side of an ORDER announcement: stale epochs
// are fenced, higher epochs adopted, and an epoch conflict on one sequence
// number resolves toward the higher epoch (the displaced label returns to
// the unassigned pool) — total.Sequencer's merge rule.
func (c *TotalCluster) applyOrder(member int, from string, epoch, seq uint64, label message.Label) {
	node := c.nodes[member]
	node.lastHeard[from] = c.sim.Now()
	if epoch < node.epoch {
		c.fenced++
		return
	}
	if epoch > node.epoch {
		node.epoch = epoch
	}
	if seq > node.maxSeqSeen {
		node.maxSeqSeen = seq
	}
	if seq < node.nextDeliver {
		return // already delivered; a re-proposal repeating history
	}
	if old, ok := node.seqOf[seq]; ok {
		if node.assignEpoch[seq] > epoch {
			return
		}
		if old != label {
			delete(node.seqByLabel, old)
		}
	}
	node.seqOf[seq] = label
	node.assignEpoch[seq] = epoch
	node.seqByLabel[label] = seq
	c.releaseSequencer(member)
}

func (c *TotalCluster) releaseSequencer(member int) {
	node := c.nodes[member]
	for {
		label, ok := node.seqOf[node.nextDeliver]
		if !ok {
			return
		}
		m, ok := node.data[label]
		if !ok {
			return
		}
		// With failover armed the assignment is retained for takeover
		// re-proposal (the live layer prunes at the min alive frontier; the
		// simulation keeps everything — memory is not the model here).
		if !c.failover {
			delete(node.seqOf, node.nextDeliver)
		}
		delete(node.data, label)
		node.nextDeliver++
		c.deliverAt(member, m)
	}
}

// SetFailover arms heartbeat-timeout leader succession for ModeSequencer:
// every member beacons its epoch, suspects peers silent longer than
// detect, and the next live member in epoch order takes over. detect must
// comfortably exceed the network's MaxLatency — takeover assumes the dead
// leader's in-flight ORDER announcements have drained, which is also the
// live protocol's election-window assumption (there enforced by the
// ELECT/ACK round trip). Call before Run; the beacons self-reschedule
// forever, so drive the simulation with Run(limit).
func (c *TotalCluster) SetFailover(detect Time) {
	if c.failover || detect <= 0 {
		return
	}
	c.failover = true
	c.detect = detect
	for i := 0; i < c.n; i++ {
		c.scheduleBeacon(i)
		c.scheduleDetect(i)
	}
}

func (c *TotalCluster) scheduleBeacon(member int) {
	c.sim.After(c.detect/3, func() {
		if !c.down[member] {
			c.beacon(member)
		}
		c.scheduleBeacon(member)
	})
}

// beacon broadcasts member's liveness and epoch (the SEQHB analogue).
func (c *TotalCluster) beacon(member int) {
	node := c.nodes[member]
	epoch := node.epoch
	from := node.id
	c.hbFrames += uint64(c.n - 1)
	for i := 0; i < c.n; i++ {
		if i == member {
			continue
		}
		i := i
		c.sendTo(i, 8, func() { c.applyBeacon(i, from, epoch) })
	}
}

func (c *TotalCluster) applyBeacon(member int, from string, epoch uint64) {
	node := c.nodes[member]
	node.lastHeard[from] = c.sim.Now()
	if epoch > node.epoch {
		node.epoch = epoch
	}
}

func (c *TotalCluster) scheduleDetect(member int) {
	c.sim.After(c.detect/3, func() {
		if !c.down[member] {
			c.maybeTakeover(member)
		}
		c.scheduleDetect(member)
	})
}

// aliveAt reports whether member currently believes peer is live.
func (c *TotalCluster) aliveAt(member, peer int) bool {
	if member == peer {
		return true
	}
	node := c.nodes[member]
	return node.lastHeard[memberID(peer)]+c.detect >= c.sim.Now()
}

// maybeTakeover runs member's failure detection: if the current epoch's
// leader is suspected and every interposed successor is too, member adopts
// the first epoch it leads, re-proposes its retained assignments under the
// new epoch (laggards may have fenced the dead leader's announcements),
// and sequences the unassigned holdback in deterministic label order —
// total.Sequencer's election completion, minus the ELECT/ACK round trip
// the quorum guard needs on a real network.
func (c *TotalCluster) maybeTakeover(member int) {
	node := c.nodes[member]
	if c.leaderIdx(node.epoch) == member {
		return
	}
	if c.aliveAt(member, c.leaderIdx(node.epoch)) {
		return
	}
	et := node.epoch + 1
	for c.leaderIdx(et) != member && !c.aliveAt(member, c.leaderIdx(et)) {
		et++
	}
	if c.leaderIdx(et) != member {
		return // a live predecessor in epoch order campaigns instead
	}
	node.epoch = et
	c.elections++
	if node.maxSeqSeen+1 > node.nextAssign {
		node.nextAssign = node.maxSeqSeen + 1
	}
	if node.nextDeliver > node.nextAssign {
		node.nextAssign = node.nextDeliver
	}
	seqs := make([]uint64, 0, len(node.seqOf))
	for seq := range node.seqOf {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		c.announceOrder(member, seq, node.seqOf[seq])
	}
	c.assignUnassigned(member)
	c.beacon(member) // announce the new epoch promptly
}

// assignUnassigned sequences every holdback message without an assignment,
// in (origin, seq) label order — the deterministic tiebreak shared with
// the live election re-proposal.
func (c *TotalCluster) assignUnassigned(member int) {
	node := c.nodes[member]
	unassigned := make([]message.Label, 0, len(node.data))
	for l := range node.data {
		if _, ok := node.seqByLabel[l]; !ok {
			unassigned = append(unassigned, l)
		}
	}
	sort.Slice(unassigned, func(i, j int) bool {
		if unassigned[i].Origin != unassigned[j].Origin {
			return unassigned[i].Origin < unassigned[j].Origin
		}
		return unassigned[i].Seq < unassigned[j].Seq
	})
	for _, l := range unassigned {
		c.assignAndAnnounce(member, l)
	}
}

// Crash marks member down: it originates nothing and frames addressed to
// it park at its interface until Recover.
func (c *TotalCluster) Crash(member int) {
	c.down[member] = true
}

// Recover brings a down member back: its parked frames replay in arrival
// order (the simulation analogue of live rejoin catch-up), and if the
// member still leads its — possibly replay-updated — epoch it sequences
// whatever holdback accumulated unassigned.
func (c *TotalCluster) Recover(member int) {
	if !c.down[member] {
		return
	}
	c.down[member] = false
	q := c.parked[member]
	c.parked[member] = nil
	c.replaying = true
	for _, fn := range q {
		fn()
	}
	c.replaying = false
	node := c.nodes[member]
	if c.mode == ModeSequencer && c.leaderIdx(node.epoch) == member {
		c.assignUnassigned(member)
	}
}

// IsDown reports whether member is currently crashed.
func (c *TotalCluster) IsDown(member int) bool { return c.down[member] }

// Epoch returns member's current leadership epoch.
func (c *TotalCluster) Epoch(member int) uint64 { return c.nodes[member].epoch }

// AliveView returns the peers member currently believes live (self
// included), in member order. Meaningful once SetFailover armed beacons.
func (c *TotalCluster) AliveView(member int) []string {
	var out []string
	for i := 0; i < c.n; i++ {
		if c.aliveAt(member, i) {
			out = append(out, memberID(i))
		}
	}
	return out
}

// Elections returns how many takeovers completed across the cluster.
func (c *TotalCluster) Elections() uint64 { return c.elections }

// Fenced returns how many stale-epoch ORDER announcements receivers
// dropped.
func (c *TotalCluster) Fenced() uint64 { return c.fenced }

// NextDeliver returns member's delivery frontier (the next global
// sequence number it will deliver).
func (c *TotalCluster) NextDeliver(member int) uint64 { return c.nodes[member].nextDeliver }

func (c *TotalCluster) deliverAt(member int, m message.Message) {
	if sent, ok := c.sentAt[m.Label]; ok {
		c.latencies = append(c.latencies, c.sim.Now()-sent)
	}
	if c.onDl != nil {
		c.onDl(member, m, c.sim.Now())
	}
}

// Latencies returns all delivery-latency samples.
func (c *TotalCluster) Latencies() []Time { return c.latencies }

// MaxHoldback returns the deepest holdback any member reached.
func (c *TotalCluster) MaxHoldback() int {
	out := 0
	for _, n := range c.nodes {
		if n.maxHoldback > out {
			out = n.maxHoldback
		}
	}
	return out
}

// HeartbeatFrames returns the liveness frames injected (merge-mode
// heartbeats and failover beacons).
func (c *TotalCluster) HeartbeatFrames() uint64 { return c.hbFrames }

// Undelivered returns buffered-but-undelivered entries after a run; it
// must be zero once heartbeats or traffic flush the holdback.
func (c *TotalCluster) Undelivered() int {
	out := 0
	for _, n := range c.nodes {
		for _, h := range n.holdback {
			if !h.hb {
				out++
			}
		}
		out += len(n.data)
	}
	return out
}
