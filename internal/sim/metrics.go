package sim

import (
	"fmt"
	"sort"
	"time"
)

// Summary holds order statistics over a set of virtual-time samples.
type Summary struct {
	Count int
	Mean  Time
	P50   Time
	P95   Time
	P99   Time
	Max   Time
}

// Summarize computes order statistics; it copies the input before sorting.
func Summarize(samples []Time) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum Time
	for _, s := range sorted {
		sum += s
	}
	pct := func(p float64) Time {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / Time(len(sorted)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// String renders the summary with millisecond precision for tables.
func (s Summary) String() string {
	ms := func(t Time) string {
		return fmt.Sprintf("%.3fms", float64(t)/float64(time.Millisecond))
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, ms(s.Mean), ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max))
}

// Millis converts a virtual time to float milliseconds for table output.
func Millis(t Time) float64 { return float64(t) / float64(time.Millisecond) }
