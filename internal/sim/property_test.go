package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"causalshare/internal/message"
)

// randomWorkload builds a reproducible workload from fuzz bytes: each op
// picks a sender and whether it chains on the previous message from that
// sender, some ops additionally depend on a random earlier message.
type randomWorkload struct {
	msgs    []message.Message
	senders []int
}

func buildRandomWorkload(ops []uint8, members int) randomWorkload {
	var w randomWorkload
	lastBySender := make([]message.Label, members)
	var all []message.Label
	for i, b := range ops {
		sender := int(b) % members
		label := message.Label{Origin: MemberID(sender) + "~w", Seq: uint64(i + 1)}
		var deps []message.Label
		if b&0x10 != 0 && !lastBySender[sender].IsNil() {
			deps = append(deps, lastBySender[sender])
		}
		if b&0x20 != 0 && len(all) > 0 {
			deps = append(deps, all[int(b>>2)%len(all)])
		}
		w.msgs = append(w.msgs, message.Message{
			Label: label,
			Deps:  message.After(deps...),
			Kind:  message.KindCommutative,
			Op:    "w",
		})
		w.senders = append(w.senders, sender)
		lastBySender[sender] = label
		all = append(all, label)
	}
	return w
}

// runWorkload drives the workload through a causal cluster, returning
// per-member delivery orders.
func runWorkload(seed int64, rule OrderRule, w randomWorkload, members int) ([][]message.Message, *CausalCluster) {
	s := New(seed)
	net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(10 * time.Millisecond)})
	orders := make([][]message.Message, members)
	cluster := NewCausalCluster(s, net, rule, members, func(m int, msg message.Message, _ Time) {
		orders[m] = append(orders[m], msg)
	})
	for i := range w.msgs {
		i := i
		s.At(Time(i)*Duration(200*time.Microsecond), func() {
			cluster.Broadcast(w.senders[i], w.msgs[i])
		})
	}
	s.Run(0)
	return orders, cluster
}

func TestPropOSendDeliversEverythingEverywhere(t *testing.T) {
	f := func(ops []uint8, seedByte uint8) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 40 {
			ops = ops[:40]
		}
		const members = 4
		w := buildRandomWorkload(ops, members)
		orders, cluster := runWorkload(int64(seedByte)+1, RuleOSend, w, members)
		if cluster.Undelivered() != 0 {
			return false
		}
		for m := 0; m < members; m++ {
			if len(orders[m]) != len(w.msgs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropOSendRespectsAllDeclaredDeps(t *testing.T) {
	f := func(ops []uint8, seedByte uint8) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 40 {
			ops = ops[:40]
		}
		const members = 3
		w := buildRandomWorkload(ops, members)
		orders, _ := runWorkload(int64(seedByte)+1, RuleOSend, w, members)
		for m := 0; m < members; m++ {
			pos := make(map[message.Label]int, len(orders[m]))
			for i, msg := range orders[m] {
				pos[msg.Label] = i
			}
			for _, msg := range orders[m] {
				for _, d := range msg.Deps.Labels() {
					dp, ok := pos[d]
					if !ok || dp >= pos[msg.Label] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropCBCastRespectsPotentialCausality(t *testing.T) {
	// Under CBCAST, the declared deps are a subset of potential causality
	// (sends happen in virtual-time order at their senders), so declared
	// deps must also hold — plus FIFO per sender.
	f := func(ops []uint8, seedByte uint8) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 30 {
			ops = ops[:30]
		}
		const members = 3
		w := buildRandomWorkload(ops, members)
		orders, cluster := runWorkload(int64(seedByte)+1, RuleCBCast, w, members)
		if cluster.Undelivered() != 0 {
			return false
		}
		for m := 0; m < members; m++ {
			lastSeq := make(map[string]uint64)
			for _, msg := range orders[m] {
				if msg.Label.Seq <= lastSeq[msg.Label.Origin] {
					return false // FIFO per origin violated
				}
				lastSeq[msg.Label.Origin] = msg.Label.Seq
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropSameSeedSameRun(t *testing.T) {
	f := func(ops []uint8, seedByte uint8) bool {
		if len(ops) == 0 || len(ops) > 30 {
			return true
		}
		const members = 3
		w := buildRandomWorkload(ops, members)
		a, _ := runWorkload(int64(seedByte)+1, RuleOSend, w, members)
		b, _ := runWorkload(int64(seedByte)+1, RuleOSend, w, members)
		for m := 0; m < members; m++ {
			if len(a[m]) != len(b[m]) {
				return false
			}
			for i := range a[m] {
				if a[m][i].Label != b[m][i].Label {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropTotalOrderIdenticalForRandomTraffic(t *testing.T) {
	f := func(ops []uint8, seedByte uint8, seqMode bool) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 30 {
			ops = ops[:30]
		}
		const members = 3
		mode := ModeMerge
		hb := Duration(time.Millisecond)
		if seqMode {
			mode = ModeSequencer
			hb = 0
		}
		s := New(int64(seedByte) + 1)
		net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(8 * time.Millisecond)})
		orders := make([][]message.Label, members)
		cluster := NewTotalCluster(s, net, mode, members, hb, func(m int, msg message.Message, _ Time) {
			orders[m] = append(orders[m], msg.Label)
		})
		for i, b := range ops {
			i, sender := i, int(b)%members
			s.At(Time(i)*Duration(150*time.Microsecond), func() {
				cluster.ASend(sender, message.Message{
					Label: message.Label{Origin: MemberID(sender) + "~t", Seq: uint64(i + 1)},
					Kind:  message.KindNonCommutative,
					Op:    "w",
				})
			})
		}
		s.Run(Duration(5 * time.Second))
		for m := 0; m < members; m++ {
			if len(orders[m]) != len(ops) {
				return false
			}
			for i := range orders[0] {
				if orders[m][i] != orders[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func TestPropWorkloadLabelsUnique(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 50 {
			ops = ops[:50]
		}
		w := buildRandomWorkload(ops, 4)
		seen := make(map[message.Label]bool, len(w.msgs))
		for _, m := range w.msgs {
			if seen[m.Label] {
				return false
			}
			seen[m.Label] = true
			if m.Deps.Contains(m.Label) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkloadDepsAlwaysBackward(t *testing.T) {
	// Dependencies always reference earlier messages, so the workload is
	// acyclic by construction — validate the generator itself.
	ops := make([]uint8, 60)
	for i := range ops {
		ops[i] = uint8(i*37 + 11)
	}
	w := buildRandomWorkload(ops, 5)
	index := make(map[message.Label]int, len(w.msgs))
	for i, m := range w.msgs {
		index[m.Label] = i
	}
	for i, m := range w.msgs {
		for _, d := range m.Deps.Labels() {
			j, ok := index[d]
			if !ok {
				t.Fatalf("dep %v of %v not in workload", d, m.Label)
			}
			if j >= i {
				t.Fatalf("dep %v (at %d) not before %v (at %d)", d, j, m.Label, i)
			}
		}
	}
	_ = fmt.Sprintf("%d", len(w.msgs))
}
