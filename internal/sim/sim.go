// Package sim is a deterministic discrete-event simulator for the
// broadcast protocols, used by the benchmark harness to reproduce the
// paper's claimed performance shapes at scale and with exactly
// reproducible runs (seeded randomness, virtual time, no goroutines).
//
// The live engines in packages causal and total are the real,
// concurrency-tested implementations; the simulator re-implements their
// *delivery rules* (which are a handful of lines each) on virtual time so
// that experiments measuring ordering delay, buffer occupancy, and
// message counts are noise-free and fast. The rules are cross-validated
// against the live engines by tests in this package.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Duration converts a time.Duration to virtual time.
func Duration(d time.Duration) Time { return Time(d) }

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any) {
	ev, ok := x.(event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Sim is a single-threaded discrete-event executor. The zero value is not
// usable; call New.
type Sim struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	events uint64
}

// New constructs a simulator with a seeded random source. Equal seeds give
// bitwise-identical runs.
func New(seed int64) *Sim {
	if seed == 0 {
		seed = 1
	}
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's random source; all model randomness must
// come from it to keep runs reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue drains or until time limit is
// passed (limit 0 = run to completion). It returns the number of events
// processed.
func (s *Sim) Run(limit Time) uint64 {
	processed := uint64(0)
	for s.queue.Len() > 0 {
		head := s.queue[0]
		if limit > 0 && head.at > limit {
			break
		}
		popped, ok := heap.Pop(&s.queue).(event)
		if !ok {
			break
		}
		s.now = popped.at
		popped.fn()
		processed++
	}
	s.events += processed
	return processed
}

// Events returns the total number of events processed so far.
func (s *Sim) Events() uint64 { return s.events }

// Uniform samples a virtual duration uniformly from [min, max].
func (s *Sim) Uniform(min, max Time) Time {
	if max <= min {
		return min
	}
	return min + Time(s.rng.Int63n(int64(max-min)))
}
