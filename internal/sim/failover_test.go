package sim

import (
	"testing"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/message"
)

// simFailoverRun drives a seeded crash/recover schedule through the
// simulated sequencer cluster with failover armed and collects every
// member's delivered label sequence.
type simFailoverRun struct {
	cluster *TotalCluster
	orders  [][]message.Label
	sent    int
	n       int
}

// runSimFailover executes sched over n members, each trying to broadcast
// quota data messages at a fixed cadence (paused while down, resumed
// after recovery). The run is pure virtual time: equal seeds give
// bitwise-identical outcomes.
func runSimFailover(seed int64, n, quota int, sched chaos.Schedule, limit Time) *simFailoverRun {
	s := New(seed)
	net := NewNet(s, NetModel{
		MinLatency: Duration(500 * time.Microsecond),
		MaxLatency: Duration(3 * time.Millisecond),
	})
	r := &simFailoverRun{orders: make([][]message.Label, n), n: n}
	r.cluster = NewTotalCluster(s, net, ModeSequencer, n, 0, func(m int, msg message.Message, _ Time) {
		r.orders[m] = append(r.orders[m], msg.Label)
	})
	r.cluster.SetFailover(Duration(20 * time.Millisecond))

	idx := make(map[string]int, n)
	for i := 0; i < n; i++ {
		idx[memberID(i)] = i
	}
	for _, a := range sched.Actions {
		a := a
		s.At(Duration(a.At), func() {
			switch {
			case a.Crash != "":
				r.cluster.Crash(idx[a.Crash])
			case a.Recover != "":
				r.cluster.Recover(idx[a.Recover])
			}
		})
	}
	for m := 0; m < n; m++ {
		m := m
		var pump func(k int)
		pump = func(k int) {
			if k >= quota {
				return
			}
			s.After(Duration(3*time.Millisecond), func() {
				if !r.cluster.IsDown(m) {
					r.cluster.ASend(m, message.Message{
						Label: message.Label{Origin: memberID(m) + "~t", Seq: uint64(k + 1)},
						Kind:  message.KindNonCommutative,
						Op:    "w",
					})
					r.sent++
					k++
				}
				pump(k)
			})
		}
		pump(0)
	}
	s.Run(limit)
	return r
}

// checkFailoverInvariants asserts the satellite properties on one run:
// contiguous sequence numbers per member (no duplicate, no skip), prefix
// consistency across every member, and full agreement at full length
// among the members up at the end.
func checkFailoverInvariants(t *testing.T, seed int64, r *simFailoverRun) {
	t.Helper()
	for m := 0; m < r.n; m++ {
		if got, want := uint64(len(r.orders[m])), r.cluster.NextDeliver(m)-1; got != want {
			t.Fatalf("seed %d: member %d delivered %d entries but frontier says %d (skipped or duplicated seq)",
				seed, m, got, want)
		}
		seen := make(map[message.Label]bool, len(r.orders[m]))
		for _, l := range r.orders[m] {
			if seen[l] {
				t.Fatalf("seed %d: member %d delivered %v twice", seed, m, l)
			}
			seen[l] = true
		}
	}
	// Prefix consistency: any two members agree on every position both
	// delivered.
	for m := 1; m < r.n; m++ {
		short := r.orders[0]
		if len(r.orders[m]) < len(short) {
			short = r.orders[m]
		}
		for i := range short {
			if r.orders[0][i] != r.orders[m][i] {
				t.Fatalf("seed %d: members 0 and %d diverge at position %d: %v vs %v",
					seed, m, i, r.orders[0][i], r.orders[m][i])
			}
		}
	}
	// Members up at the end converge on everything accepted into the run.
	for m := 0; m < r.n; m++ {
		if r.cluster.IsDown(m) {
			continue
		}
		if len(r.orders[m]) != r.sent {
			t.Fatalf("seed %d: live member %d delivered %d of %d accepted sends",
				seed, m, len(r.orders[m]), r.sent)
		}
	}
}

// TestPropSequencerFailoverConverges runs 120 seeded random crash/recover
// schedules through the simulated failover protocol and checks the
// ordering invariants on each: survivors converge to the identical total
// order, nobody duplicates or skips a sequence number, and every log is a
// prefix of the longest.
func TestPropSequencerFailoverConverges(t *testing.T) {
	const n, quota = 5, 20
	members := make([]string, n)
	for i := range members {
		members[i] = memberID(i)
	}
	leaderCrashes := 0
	for seed := int64(1); seed <= 120; seed++ {
		sched := chaos.RandomSchedule(seed, members, 400*time.Millisecond, 4)
		r := runSimFailover(seed, n, quota, sched, Duration(1500*time.Millisecond))
		checkFailoverInvariants(t, seed, r)
		for _, a := range sched.Actions {
			if a.Crash == memberID(0) {
				leaderCrashes++
				if r.cluster.Elections() == 0 {
					t.Fatalf("seed %d: leader crashed (%v) but no takeover happened", seed, sched.Actions)
				}
				break
			}
		}
	}
	if leaderCrashes == 0 {
		t.Fatal("no generated schedule ever crashed the initial leader; property coverage too weak")
	}
}

// TestSimFailoverFencesStaleLeader pins the fencing path: a leader that
// crashes, misses a takeover, and recovers must adopt the successor's
// epoch from the replayed frames instead of resuming as a second leader.
func TestSimFailoverFencesStaleLeader(t *testing.T) {
	const n, quota = 5, 15
	members := make([]string, n)
	for i := range members {
		members[i] = memberID(i)
	}
	sched := chaos.Schedule{Actions: []chaos.Action{
		{At: 20 * time.Millisecond, Crash: memberID(0)},
		{At: 200 * time.Millisecond, Recover: memberID(0)},
	}}
	r := runSimFailover(3, n, quota, sched, Duration(1500*time.Millisecond))
	checkFailoverInvariants(t, 3, r)
	if r.cluster.Elections() == 0 {
		t.Fatal("no takeover after leader crash")
	}
	if got := r.cluster.Epoch(0); got == 0 {
		t.Fatal("recovered ex-leader still believes it leads epoch 0")
	}
	if r.cluster.Epoch(0) != r.cluster.Epoch(1) {
		t.Fatalf("epochs diverge after recovery: %d vs %d", r.cluster.Epoch(0), r.cluster.Epoch(1))
	}
}

// TestSimFailoverDeterministic pins reproducibility of the whole chaos
// run, not just the schedule: same seed, same delivered orders.
func TestSimFailoverDeterministic(t *testing.T) {
	const n, quota = 5, 15
	members := make([]string, n)
	for i := range members {
		members[i] = memberID(i)
	}
	sched := chaos.RandomSchedule(9, members, 400*time.Millisecond, 4)
	a := runSimFailover(9, n, quota, sched, Duration(1500*time.Millisecond))
	b := runSimFailover(9, n, quota, sched, Duration(1500*time.Millisecond))
	for m := 0; m < n; m++ {
		if len(a.orders[m]) != len(b.orders[m]) {
			t.Fatalf("member %d: %d vs %d deliveries across identical runs", m, len(a.orders[m]), len(b.orders[m]))
		}
		for i := range a.orders[m] {
			if a.orders[m][i] != b.orders[m][i] {
				t.Fatalf("member %d diverges at %d across identical runs", m, i)
			}
		}
	}
}
