package sim

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"causalshare/internal/consistency"
	"causalshare/internal/message"
)

// runRecordedWorkload drives a causally honest seeded workload — every
// declared dependency was actually delivered (or sent) at the sender
// before the send — through one delivery rule, recording sends and
// deliveries into a consistency.Recorder. Honest dependencies are what
// make the recorded history a theorem: if the rule delivers causally, the
// history passes CC, CCv, and CM; if it ever reorders, a bad pattern
// appears.
func runRecordedWorkload(seed int64, rule OrderRule, members, sends int) (*consistency.Recorder, *CausalCluster) {
	s := New(seed)
	net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(10 * time.Millisecond)})
	rec := consistency.NewRecorder()

	lastDelivered := make([]map[string]message.Label, members)
	for i := range lastDelivered {
		lastDelivered[i] = make(map[string]message.Label)
	}
	cluster := NewCausalCluster(s, net, rule, members, func(m int, msg message.Message, _ Time) {
		rec.RecordDeliver(MemberID(m), msg)
		lastDelivered[m][msg.Label.Origin] = msg.Label
	})

	lastSent := make([]message.Label, members)
	jitter := rand.New(rand.NewSource(seed ^ 0x5eed))
	total := members * sends
	for k := 0; k < total; k++ {
		k := k
		sender := k % members
		at := Time(k)*Duration(700*time.Microsecond) + Time(jitter.Int63n(int64(Duration(2*time.Millisecond))))
		s.At(at, func() {
			// Deps are the sender's full causal floor: its own previous
			// send plus the freshest delivered label of every other
			// origin. Because every origin chains, this closure covers
			// the sender's whole causal past — which is what the data
			// layer (sequencer, front-end) actually declares, and what
			// makes "session order ⊆ causal order" a theorem rather than
			// an accident of timing. After() sorts, so map order is moot.
			var deps []message.Label
			if !lastSent[sender].IsNil() {
				deps = append(deps, lastSent[sender])
			}
			for origin, l := range lastDelivered[sender] {
				if origin != MemberID(sender) {
					deps = append(deps, l)
				}
			}
			m := message.Message{
				Label: message.Label{Origin: MemberID(sender), Seq: uint64(k/members + 1)},
				Kind:  message.KindNonCommutative,
				Op:    "sweep.op",
				Deps:  message.After(deps...),
			}
			lastSent[sender] = m.Label
			rec.RecordSend(MemberID(sender), m)
			cluster.Broadcast(sender, m)
		})
	}
	s.Run(0)
	return rec, cluster
}

// sweepSeeds returns the sweep width: 200 by default (the CI
// check-consistency budget), SWEEP_SEEDS=1000 for the full sweep, and a
// handful under -short.
func sweepSeeds(t *testing.T) int {
	if env := os.Getenv("SWEEP_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad SWEEP_SEEDS=%q", env)
		}
		return n
	}
	if testing.Short() {
		return 25
	}
	return 200
}

// quarantined parses testdata/quarantine_seeds.txt: one "engine seed"
// pair per line, '#' starts a comment. A listed pair is skipped with a
// log line instead of failing the sweep; the file documents the
// issue-comment convention for adding one.
func quarantined(t *testing.T) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	f, err := os.Open(filepath.Join("testdata", "quarantine_seeds.txt"))
	if err != nil {
		if os.IsNotExist(err) {
			return out
		}
		t.Fatalf("quarantine list: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			t.Fatalf("quarantine list: malformed line %q (want \"engine seed\")", sc.Text())
		}
		if _, err := ParseRule(fields[0]); err != nil {
			t.Fatalf("quarantine list: %v", err)
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			t.Fatalf("quarantine list: bad seed in %q", sc.Text())
		}
		out[fields[0]+" "+fields[1]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("quarantine list: %v", err)
	}
	return out
}

// TestConsistencySweep is the thousand-seed sweep (200 under the default
// CI budget, SWEEP_SEEDS=1000 for the full run): every delivery rule ×
// every seed must drain completely and yield a history that passes CC,
// CCv, and CM. Each failure prints the verdict report with its minimal
// counterexample.
func TestConsistencySweep(t *testing.T) {
	seeds := sweepSeeds(t)
	skip := quarantined(t)
	for _, rule := range Rules {
		rule := rule
		t.Run(rule.String(), func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				if skip[fmt.Sprintf("%s %d", rule, seed)] {
					t.Logf("seed %d quarantined (testdata/quarantine_seeds.txt)", seed)
					continue
				}
				rec, cluster := runRecordedWorkload(int64(seed)+1, rule, 4, 8)
				if und := cluster.Undelivered(); und != 0 {
					t.Fatalf("seed %d: %d deliveries still buffered", seed, und)
				}
				h := rec.History()
				rep, err := consistency.Check(h)
				if err != nil {
					t.Fatalf("seed %d: Check: %v", seed, err)
				}
				if !rep.AllHold() {
					t.Fatalf("seed %d (%s): recorded history fails:\n%s\n%s", seed, rule, h, rep)
				}
				if !rep.Differentiated {
					t.Fatalf("seed %d: recorder produced a non-differentiated history", seed)
				}
			}
		})
	}
}

// TestMutationMatrixAcrossEngines is the checker's own regression suite:
// for every delivery rule, a recorded healthy history is perturbed by
// every mutation class, and each class must be caught with exactly its
// verdict downgrade — no false negatives, and the downgrades land on the
// right rungs of the CC/CCv/CM lattice.
func TestMutationMatrixAcrossEngines(t *testing.T) {
	for _, rule := range Rules {
		rule := rule
		t.Run(rule.String(), func(t *testing.T) {
			t.Parallel()
			rec, cluster := runRecordedWorkload(11, rule, 4, 8)
			if und := cluster.Undelivered(); und != 0 {
				t.Fatalf("%d deliveries still buffered", und)
			}
			h := rec.History()
			base, err := consistency.Check(h)
			if err != nil {
				t.Fatal(err)
			}
			if !base.AllHold() {
				t.Fatalf("baseline unhealthy:\n%s\n%s", h, base)
			}
			for _, class := range consistency.Mutations {
				for mseed := int64(0); mseed < 5; mseed++ {
					mut, desc, err := consistency.Mutate(h, class, mseed)
					if err != nil {
						t.Fatalf("%s seed %d: no mutation site in a %d-op history: %v",
							class, mseed, h.Ops(), err)
					}
					cc, ccv, cm := class.Expected()
					rep, err := consistency.Check(mut)
					if err != nil {
						t.Fatalf("%s seed %d: Check: %v", class, mseed, err)
					}
					if rep.CC.Holds != cc || rep.CCv.Holds != ccv || rep.CM.Holds != cm {
						t.Fatalf("%s seed %d (%s): CC=%v CCv=%v CM=%v, want %v/%v/%v\n%s",
							class, mseed, desc, rep.CC.Holds, rep.CCv.Holds, rep.CM.Holds, cc, ccv, cm, rep)
					}
					pc, pv, pm := class.ExpectedPattern()
					for lv, want := range map[consistency.Level]string{
						consistency.LevelCC: pc, consistency.LevelCCv: pv, consistency.LevelCM: pm,
					} {
						if want == "" {
							continue
						}
						if got := rep.Outcome(lv).Pattern; got != want {
							t.Fatalf("%s seed %d: %s caught by %q, want %q\n%s", class, mseed, lv, got, want, rep)
						}
					}
				}
			}
		})
	}
}

// TestPCCastRuleDeliversEverythingInCausalOrder pins the new sim rule
// directly (the sweep checks it through the recorder): every member
// delivers every message, FIFO per link, dependencies respected.
func TestPCCastRuleDeliversEverythingInCausalOrder(t *testing.T) {
	const members = 4
	for seed := int64(1); seed <= 50; seed++ {
		s := New(seed)
		net := NewNet(s, NetModel{MinLatency: 0, MaxLatency: Duration(20 * time.Millisecond)})
		orders := make([][]message.Message, members)
		cluster := NewCausalCluster(s, net, RulePCCast, members, func(m int, msg message.Message, _ Time) {
			orders[m] = append(orders[m], msg)
		})
		lastSent := make([]message.Label, members)
		const total = 24
		for k := 0; k < total; k++ {
			k := k
			sender := k % members
			s.At(Time(k)*Duration(500*time.Microsecond), func() {
				var deps []message.Label
				if !lastSent[sender].IsNil() {
					deps = append(deps, lastSent[sender])
				}
				m := message.Message{
					Label: message.Label{Origin: MemberID(sender), Seq: uint64(k/members + 1)},
					Kind:  message.KindNonCommutative,
					Deps:  message.After(deps...),
				}
				lastSent[sender] = m.Label
				cluster.Broadcast(sender, m)
			})
		}
		s.Run(0)
		if und := cluster.Undelivered(); und != 0 {
			t.Fatalf("seed %d: %d frames still buffered", seed, und)
		}
		for m := 0; m < members; m++ {
			if len(orders[m]) != total {
				t.Fatalf("seed %d: member %d delivered %d of %d", seed, m, len(orders[m]), total)
			}
			pos := make(map[message.Label]int, total)
			for i, msg := range orders[m] {
				pos[msg.Label] = i
			}
			for _, msg := range orders[m] {
				for _, d := range msg.Deps.Labels() {
					dp, ok := pos[d]
					if !ok || dp > pos[msg.Label] {
						t.Fatalf("seed %d: member %d delivered %s before its dependency %s",
							seed, m, msg.Label, d)
					}
				}
			}
		}
	}
}
