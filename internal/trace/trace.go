// Package trace turns the dependency graph the application declares via
// OSend(..., OccursAfter(...)) into a first-class runtime artifact. A
// Collector merges span records from every node of an in-process group
// into the realized dependency DAG, attributes holdback latency to the
// specific edge a message waited on, and audits — online, as deliveries
// happen — that no declared causal edge is ever violated.
//
// The design follows the paper's observation that the declared graph is
// "stable information, reproducible across executions": because every
// message names its predecessors explicitly, checking causal consistency
// of one execution needs no vector clocks — a span context of O(1) size
// (trace id + root member) rides the wire, and the auditor just checks
// each declared edge at delivery time. Overhead stays constant per message
// regardless of group size.
//
// A trace groups the spans of one causal activity: it is rooted at an
// application (non-control) message, control traffic (ORDER, heartbeats)
// attaches to the activity it serves, and a message that depends on a
// stable-point closer starts a new, parent-linked trace — mirroring the
// paper's activity structure where a non-commutative request closes the
// current activity.
//
// The store is bounded and pooled: traces evict FIFO past MaxTraces, span
// records recycle through free lists, and trace_span_dropped_total counts
// what auditing lost to eviction. The steady-state hot path allocates
// nothing.
package trace

import (
	"fmt"
	"sync"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// Config parameterizes a Collector. The zero value is usable: unlimited
// sampling, default bounds, no telemetry.
type Config struct {
	// MaxTraces bounds the trace store; the oldest trace evicts when a new
	// one would exceed it. Default 1024.
	MaxTraces int
	// MaxLabelsPerTrace caps how many distinct messages one trace absorbs
	// before a continuation trace (parent-linked) is started instead; it
	// keeps unbounded control chains from growing a single giant trace.
	// Default 256.
	MaxLabelsPerTrace int
	// MaxViolations bounds the violation snapshot buffer (the counter keeps
	// counting past it). Default 64.
	MaxViolations int
	// SampleEvery traces one in every N new root activities; <= 1 traces
	// all of them. Messages continuing a sampled activity are always
	// traced; unsampled activities carry no span context at all.
	SampleEvery int
	// Telemetry receives the trace_* instruments; nil disables them.
	Telemetry *telemetry.Registry
	// Ring receives EventViolation events; nil disables them.
	Ring *telemetry.Ring
	// Observer, when non-nil, receives a tee of the collector's lifecycle
	// stream (sends, deliveries, rejoin seeds) for offline consumers such
	// as the consistency history recorder. Calls are made in collector
	// order (under the collector lock), so an observer sees a single
	// globally serialized event sequence. Offline whole-history checking
	// wants every message, so pair an observer with SampleEvery <= 1.
	Observer Observer
	// Flight, when non-nil, tees the lifecycle stream into per-member
	// flight recorders: sends, receives, deliveries, holdback-exit
	// attribution, epoch adoptions, rejoin seeds, and every auditor
	// violation land in the member's black box. Layers the collector
	// cannot see (holdback entry, retransmission, elections, stability)
	// feed the same recorders directly through their own configs.
	Flight *flightrec.Set
}

// Observer receives the collector's serialized lifecycle stream. It is
// deliberately expressed in message-package types only, so implementations
// (e.g. internal/consistency.Recorder) need not import this package.
type Observer interface {
	// RecordSend fires once per broadcast at the originating member,
	// before any delivery of the message is recorded.
	RecordSend(member string, m message.Message)
	// RecordDeliver fires at each member's causal delivery of m.
	RecordDeliver(member string, m message.Message)
	// RecordSeed fires when a rejoined member adopts delivered watermarks
	// from a snapshot: history at or below watermarks[origin] is already
	// reflected in the member's state without local delivery events.
	RecordSeed(member string, watermarks map[string]uint64)
}

const (
	defaultMaxTraces  = 1024
	defaultMaxLabels  = 256
	defaultMaxViols   = 64
	defaultMaxStables = 1024
)

// spanKey identifies one span: labels are globally unique, so (label,
// member) needs no trace id.
type spanKey struct {
	label  message.Label
	member string
}

// spanRec is the mutable store-side span. Stage fields are offsets from
// the collector's base clock; zero means the stage was not reached (the
// clock reads are taken after at least one nanosecond has passed, so a
// genuine zero offset cannot occur).
type spanRec struct {
	label  message.Label
	member string
	kind   message.Kind
	// deps aliases the message's immutable dependency slice.
	deps []message.Label
	send, enqueue, deliver, apply, stable time.Duration
	waits                                 []DepWait
}

// DepWait attributes holdback latency to one declared edge: the carrying
// message sat in the holdback buffer for Wait until Dep was delivered.
type DepWait struct {
	Dep  message.Label `json:"dep"`
	Wait time.Duration `json:"wait_ns"`
}

// traceRec is one causal activity's record.
type traceRec struct {
	id     uint64
	parent uint64
	origin string
	spans  []*spanRec
	// labels lists the distinct message labels registered to this trace,
	// for byLabel cleanup at eviction.
	labels []message.Label
}

// labelInfo is the per-label index entry: which trace the label belongs to
// and its kind (closers — non-commutative and read operations — start new
// downstream activities).
type labelInfo struct {
	trace uint64
	kind  message.Kind
}

func closerKind(k message.Kind) bool {
	return k == message.KindNonCommutative || k == message.KindRead
}

// stableClaim is the first member's report of a stable point at a cycle;
// later reports must match it.
type stableClaim struct {
	member string
	closer message.Label
	digest string
}

type memberAudit struct {
	// seeded holds per-origin delivered watermarks adopted at rejoin:
	// dependencies at or below the watermark were delivered by a previous
	// incarnation and are satisfied by construction.
	seeded map[string]uint64
	// maxEpoch is the highest epoch this member adopted.
	maxEpoch uint64
	hasEpoch bool
}

type collectorInstruments struct {
	spans, spanDropped, traces, tracesEvicted, violations *telemetry.Counter
	active                                                *telemetry.Gauge
}

func newCollectorInstruments(reg *telemetry.Registry) collectorInstruments {
	return collectorInstruments{
		spans:         reg.Counter("trace_spans_total", "span records created"),
		spanDropped:   reg.Counter("trace_span_dropped_total", "span records lost to trace-store eviction"),
		traces:        reg.Counter("trace_traces_total", "traces started"),
		tracesEvicted: reg.Counter("trace_traces_evicted_total", "traces evicted from the bounded store"),
		violations:    reg.Counter("trace_violations_total", "causal-order violations detected by the online auditor"),
		active:        reg.Gauge("trace_active_traces", "traces currently retained"),
	}
}

// Collector is the shared per-group trace store and online auditor. One
// collector serves every member of an in-process group; per-member Tracer
// handles (see Tracer) feed it. All methods are safe for concurrent use,
// and a nil *Collector is a valid disabled collector.
type Collector struct {
	base time.Time

	maxTraces, maxLabels, maxViols int
	sampleEvery                    int

	ins    collectorInstruments
	ring   *telemetry.Ring
	obs    Observer
	flight *flightrec.Set

	mu       sync.Mutex
	nextID   uint64
	rootSeen uint64

	traces  map[uint64]*traceRec
	spanIdx map[spanKey]*spanRec
	byLabel map[message.Label]labelInfo
	// evictQ is a fixed circular buffer of live trace ids in creation
	// order; capacity maxTraces+1 so it never reallocates.
	evictQ     []uint64
	qHead, qLen int

	members map[string]*memberAudit
	// boxes caches flight.For resolutions: the hooks fire per message
	// under c.mu, and taking the set's own lock for every event is
	// measurable at fan-out rates. Cleared by SetFlight.
	boxes map[string]*flightrec.Recorder

	stables    map[uint64]stableClaim
	stableQ    []uint64
	sqHead, sqLen int

	violations []Violation
	violSeen   uint64

	spanFree  []*spanRec
	traceFree []*traceRec
}

// NewCollector builds a collector with cfg's bounds.
func NewCollector(cfg Config) *Collector {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = defaultMaxTraces
	}
	if cfg.MaxLabelsPerTrace <= 0 {
		cfg.MaxLabelsPerTrace = defaultMaxLabels
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = defaultMaxViols
	}
	return &Collector{
		base:        time.Now(),
		maxTraces:   cfg.MaxTraces,
		maxLabels:   cfg.MaxLabelsPerTrace,
		maxViols:    cfg.MaxViolations,
		sampleEvery: cfg.SampleEvery,
		ins:         newCollectorInstruments(cfg.Telemetry),
		ring:        cfg.Ring,
		obs:         cfg.Observer,
		flight:      cfg.Flight,
		traces:      make(map[uint64]*traceRec, cfg.MaxTraces),
		spanIdx:     make(map[spanKey]*spanRec),
		byLabel:     make(map[message.Label]labelInfo),
		evictQ:      make([]uint64, cfg.MaxTraces+1),
		members:     make(map[string]*memberAudit),
		boxes:       make(map[string]*flightrec.Recorder),
		stables:     make(map[uint64]stableClaim, defaultMaxStables),
		stableQ:     make([]uint64, defaultMaxStables+1),
	}
}

// SetObserver installs (or clears) the lifecycle observer after
// construction. Harnesses that receive an already-built collector use it
// to attach a history recorder without touching every Config literal.
// Safe to call before traffic starts; swapping mid-run is not supported.
func (c *Collector) SetObserver(o Observer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

// SetFlight installs (or clears) the flight-recorder set after
// construction, mirroring SetObserver: harnesses that receive a built
// collector arm the black boxes without touching every Config literal.
// Safe to call before traffic starts; swapping mid-run is not supported.
func (c *Collector) SetFlight(s *flightrec.Set) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.flight = s
	clear(c.boxes)
	c.mu.Unlock()
}

// boxLocked resolves member's flight recorder through the collector-local
// cache. A nil flight set yields nil recorders, whose methods no-op.
func (c *Collector) boxLocked(member string) *flightrec.Recorder {
	if c.flight == nil {
		return nil
	}
	r, ok := c.boxes[member]
	if !ok {
		r = c.flight.For(member)
		c.boxes[member] = r
	}
	return r
}

// Flight returns the installed flight-recorder set (nil when disarmed).
func (c *Collector) Flight() *flightrec.Set {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flight
}

// Tracer returns the member-bound handle engines call their lifecycle
// hooks on. A nil collector returns a nil tracer; every Tracer method is
// nil-safe, so engines embed the hook calls unconditionally.
func (c *Collector) Tracer(member string) *Tracer {
	if c == nil {
		return nil
	}
	return &Tracer{c: c, member: member}
}

func (c *Collector) now() time.Duration {
	d := time.Since(c.base)
	if d <= 0 {
		d = 1 // stage fields use zero as "not reached"
	}
	return d
}

// ---- store primitives (all require c.mu) ----

func (c *Collector) newSpanLocked() *spanRec {
	if n := len(c.spanFree); n > 0 {
		sr := c.spanFree[n-1]
		c.spanFree = c.spanFree[:n-1]
		return sr
	}
	return &spanRec{}
}

func (c *Collector) newTraceRecLocked() *traceRec {
	if n := len(c.traceFree); n > 0 {
		tr := c.traceFree[n-1]
		c.traceFree = c.traceFree[:n-1]
		return tr
	}
	return &traceRec{}
}

func (c *Collector) startTraceLocked(id uint64, origin string, parent uint64) *traceRec {
	tr := c.newTraceRecLocked()
	tr.id, tr.origin, tr.parent = id, origin, parent
	tr.spans = tr.spans[:0]
	tr.labels = tr.labels[:0]
	c.traces[id] = tr
	c.evictQ[(c.qHead+c.qLen)%len(c.evictQ)] = id
	c.qLen++
	c.ins.traces.Inc()
	c.ins.active.Set(int64(len(c.traces)))
	for len(c.traces) > c.maxTraces {
		c.evictOldestLocked()
	}
	return tr
}

func (c *Collector) evictOldestLocked() {
	for c.qLen > 0 {
		id := c.evictQ[c.qHead]
		c.qHead = (c.qHead + 1) % len(c.evictQ)
		c.qLen--
		tr, ok := c.traces[id]
		if !ok {
			continue // already gone (never happens today, but cheap to tolerate)
		}
		delete(c.traces, id)
		for _, l := range tr.labels {
			delete(c.byLabel, l)
		}
		for _, sr := range tr.spans {
			delete(c.spanIdx, spanKey{sr.label, sr.member})
			sr.label, sr.member, sr.kind = message.Label{}, "", 0
			sr.deps = nil
			sr.send, sr.enqueue, sr.deliver, sr.apply, sr.stable = 0, 0, 0, 0, 0
			sr.waits = sr.waits[:0]
			c.spanFree = append(c.spanFree, sr)
		}
		c.ins.spanDropped.Add(uint64(len(tr.spans)))
		tr.spans = tr.spans[:0]
		tr.labels = tr.labels[:0]
		tr.origin = ""
		c.traceFree = append(c.traceFree, tr)
		c.ins.tracesEvicted.Inc()
		c.ins.active.Set(int64(len(c.traces)))
		return
	}
}

// ensureTraceLocked returns the trace for ctx, resurrecting a skeleton if
// the record was evicted (a remote member can enqueue a span for a trace
// the store already dropped).
func (c *Collector) ensureTraceLocked(ctx message.SpanContext) *traceRec {
	if tr, ok := c.traces[ctx.TraceID]; ok {
		return tr
	}
	return c.startTraceLocked(ctx.TraceID, ctx.Origin, 0)
}

// ensureSpanLocked returns the span record for (m.Label, member) in ctx's
// trace, creating and indexing it on first sight.
func (c *Collector) ensureSpanLocked(ctx message.SpanContext, member string, m message.Message) *spanRec {
	key := spanKey{m.Label, member}
	if sr, ok := c.spanIdx[key]; ok {
		return sr
	}
	tr := c.ensureTraceLocked(ctx)
	sr := c.newSpanLocked()
	sr.label, sr.member, sr.kind = m.Label, member, m.Kind
	sr.deps = m.Deps.Labels()
	tr.spans = append(tr.spans, sr)
	c.spanIdx[key] = sr
	if _, ok := c.byLabel[m.Label]; !ok {
		c.byLabel[m.Label] = labelInfo{trace: ctx.TraceID, kind: m.Kind}
		tr.labels = append(tr.labels, m.Label)
	}
	c.ins.spans.Inc()
	return sr
}

// assignLocked picks the span context for a message broadcast without one,
// applying the activity rules from the package comment.
func (c *Collector) assignLocked(member string, m message.Message) message.SpanContext {
	var (
		joinID   uint64 // first non-control, non-closer dependency's trace
		ctlID    uint64 // first control dependency's trace
		closerID uint64 // first closer dependency's trace
	)
	for _, d := range m.Deps.Labels() {
		info, ok := c.byLabel[d]
		if !ok {
			continue
		}
		switch {
		case info.kind == message.KindControl:
			if ctlID == 0 {
				ctlID = info.trace
			}
		case closerKind(info.kind):
			if closerID == 0 {
				closerID = info.trace
			}
		default:
			if joinID == 0 {
				joinID = info.trace
			}
		}
	}
	join := func(id uint64) message.SpanContext {
		tr, ok := c.traces[id]
		if !ok {
			return message.SpanContext{}
		}
		if len(tr.labels) >= c.maxLabels {
			// Continuation trace: same activity lineage, fresh record.
			c.nextID++
			nt := c.startTraceLocked(c.nextID, tr.origin, tr.id)
			return message.SpanContext{TraceID: nt.id, Origin: nt.origin}
		}
		return message.SpanContext{TraceID: tr.id, Origin: tr.origin}
	}
	if m.Kind == message.KindControl {
		// Control traffic attaches to the activity it serves; a control
		// message ordering a closer joins the closer's trace.
		for _, id := range []uint64{joinID, closerID, ctlID} {
			if id != 0 {
				if ctx := join(id); ctx.Valid() {
					return ctx
				}
			}
		}
	} else {
		if joinID != 0 {
			if ctx := join(joinID); ctx.Valid() {
				return ctx
			}
		}
		if closerID != 0 {
			// The dependency closed an activity: this message begins the
			// next one, parent-linked for lineage.
			if tr, ok := c.traces[closerID]; ok {
				c.nextID++
				nt := c.startTraceLocked(c.nextID, member, tr.id)
				return message.SpanContext{TraceID: nt.id, Origin: nt.origin}
			}
		}
		// Data depending only on control traffic roots a new activity
		// rather than joining the unbounded control chain.
	}
	// New root activity: head-based sampling decides here, once, for the
	// whole activity.
	c.rootSeen++
	if c.sampleEvery > 1 && c.rootSeen%uint64(c.sampleEvery) != 0 {
		return message.SpanContext{}
	}
	c.nextID++
	nt := c.startTraceLocked(c.nextID, member, 0)
	return message.SpanContext{TraceID: nt.id, Origin: nt.origin}
}

func (c *Collector) memberLocked(member string) *memberAudit {
	ma, ok := c.members[member]
	if !ok {
		ma = &memberAudit{}
		c.members[member] = ma
	}
	return ma
}

// ---- hook bodies ----

func (c *Collector) broadcast(member string, m message.Message) message.SpanContext {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx := m.Span
	if !ctx.Valid() {
		ctx = c.assignLocked(member, m)
		if !ctx.Valid() {
			return ctx // unsampled activity
		}
		m.Span = ctx
	}
	sr := c.ensureSpanLocked(ctx, member, m)
	if sr.send == 0 {
		sr.send = now
		if c.obs != nil {
			m.Span = ctx
			c.obs.RecordSend(member, m)
		}
		c.boxLocked(member).Send(m.Label, m.EncodedSize())
	}
	return ctx
}

func (c *Collector) enqueue(member string, m message.Message) {
	if !m.Span.Valid() {
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	sr := c.ensureSpanLocked(m.Span, member, m)
	if sr.enqueue == 0 {
		sr.enqueue = now
		c.boxLocked(member).Recv(m.Label, m.SentAt)
	}
}

func (c *Collector) depResolved(member string, blocked, dep message.Label, wait time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.boxLocked(member).DepResolved(blocked, dep, wait)
	sr, ok := c.spanIdx[spanKey{blocked, member}]
	if !ok {
		return
	}
	// Dependency counts are small; the bound only guards a pathological
	// re-resolution loop.
	if len(sr.waits) < 64 {
		sr.waits = append(sr.waits, DepWait{Dep: dep, Wait: wait})
	}
}

func (c *Collector) deliver(member string, m message.Message) {
	if !m.Span.Valid() {
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	sr := c.ensureSpanLocked(m.Span, member, m)
	if sr.deliver == 0 {
		sr.deliver = now
		if c.obs != nil {
			c.obs.RecordDeliver(member, m)
		}
		c.boxLocked(member).Deliver(m.Label, m.SentAt)
	}
	c.auditDeliveryLocked(member, m, now)
}

func (c *Collector) apply(member string, l message.Label) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.spanIdx[spanKey{l, member}]
	if !ok {
		return
	}
	if sr.apply == 0 {
		sr.apply = now
	}
}

func (c *Collector) stable(member string, closer message.Label, cycle uint64, digest string) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sr, ok := c.spanIdx[spanKey{closer, member}]; ok && sr.stable == 0 {
		sr.stable = now
	}
	c.auditStableLocked(member, closer, cycle, digest, now)
}

func (c *Collector) seedDelivered(member string, watermarks map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ma := c.memberLocked(member)
	if ma.seeded == nil {
		ma.seeded = make(map[string]uint64, len(watermarks))
	}
	for origin, seq := range watermarks {
		if seq > ma.seeded[origin] {
			ma.seeded[origin] = seq
		}
	}
	if c.obs != nil {
		c.obs.RecordSeed(member, watermarks)
	}
	c.boxLocked(member).Seed(len(watermarks))
}

func (c *Collector) epochAdopted(member string, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ma := c.memberLocked(member)
	if !ma.hasEpoch || epoch > ma.maxEpoch {
		ma.maxEpoch = epoch
	}
	ma.hasEpoch = true
	c.boxLocked(member).Epoch(epoch)
}

func (c *Collector) orderApplied(member string, epoch uint64, at message.Label) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ma := c.memberLocked(member)
	if ma.hasEpoch && epoch < ma.maxEpoch {
		c.violationLocked(ViolationEpochFence, member, at, message.Label{}, now,
			fmt.Sprintf("order for epoch %d applied after epoch %d was adopted", epoch, ma.maxEpoch))
	}
	if !ma.hasEpoch || epoch > ma.maxEpoch {
		ma.maxEpoch = epoch
		ma.hasEpoch = true
	}
}

func (c *Collector) readServed(member string, served, boundary uint64) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if served < boundary {
		c.violationLocked(ViolationStableRead, member, message.Label{}, message.Label{}, now,
			fmt.Sprintf("deferred read served at stable cycle %d before boundary %d", served, boundary))
	}
}

// Tracer is a member-bound handle on a Collector. Every method on a nil
// tracer is a no-op, so engines call hooks unconditionally; methods take
// messages by value to keep the caller's hot path allocation-free.
type Tracer struct {
	c      *Collector
	member string
}

// Member returns the member this tracer records for ("" on a nil tracer).
func (t *Tracer) Member() string {
	if t == nil {
		return ""
	}
	return t.member
}

// Collector returns the underlying collector (nil on a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.c
}

// Broadcast stamps the send stage and returns the span context the message
// must carry: the caller's context when already set, an inherited or fresh
// one otherwise, or the zero context when the activity is unsampled. Call
// it before sizing the wire frame so the trailer bytes are accounted.
func (t *Tracer) Broadcast(m message.Message) message.SpanContext {
	if t == nil {
		return m.Span
	}
	return t.c.broadcast(t.member, m)
}

// Enqueue stamps the receive stage: the message arrived and entered
// ordering-layer consideration at this member.
func (t *Tracer) Enqueue(m message.Message) {
	if t == nil {
		return
	}
	t.c.enqueue(t.member, m)
}

// DepResolved attributes holdback latency: blocked waited wait for dep to
// be delivered at this member.
func (t *Tracer) DepResolved(blocked, dep message.Label, wait time.Duration) {
	if t == nil {
		return
	}
	t.c.depResolved(t.member, blocked, dep, wait)
}

// Deliver stamps the delivery stage and runs the online causal-order
// audit: every declared dependency must already be delivered (or seeded)
// at this member.
func (t *Tracer) Deliver(m message.Message) {
	if t == nil {
		return
	}
	t.c.deliver(t.member, m)
}

// Apply stamps the total-order application stage for l at this member.
func (t *Tracer) Apply(l message.Label) {
	if t == nil {
		return
	}
	t.c.apply(t.member, l)
}

// Stable stamps the stable-point stage on the closing message's span and
// audits cross-member agreement on (cycle → closer, digest).
func (t *Tracer) Stable(closer message.Label, cycle uint64, digest string) {
	if t == nil {
		return
	}
	t.c.stable(t.member, closer, cycle, digest)
}

// ReadServed audits deferred-read consistency: a read registered before
// stable cycle `boundary` must not be answered from an earlier cycle.
func (t *Tracer) ReadServed(served, boundary uint64) {
	if t == nil {
		return
	}
	t.c.readServed(t.member, served, boundary)
}

// EpochAdopted records that this member adopted epoch (from election or a
// fenced ORDER/snapshot).
func (t *Tracer) EpochAdopted(epoch uint64) {
	if t == nil {
		return
	}
	t.c.epochAdopted(t.member, epoch)
}

// OrderApplied audits epoch fencing: applying an order from an epoch below
// the member's adopted maximum is a fence breach. at names the ordered
// message when known.
func (t *Tracer) OrderApplied(epoch uint64, at message.Label) {
	if t == nil {
		return
	}
	t.c.orderApplied(t.member, epoch, at)
}

// SeedDelivered registers rejoin watermarks: dependencies at or below
// watermarks[origin] were delivered by this member's previous incarnation
// and satisfy the delivery audit without local span records.
func (t *Tracer) SeedDelivered(watermarks map[string]uint64) {
	if t == nil || len(watermarks) == 0 {
		return
	}
	t.c.seedDelivered(t.member, watermarks)
}
