package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"causalshare/internal/telemetry"
)

// traceSummary is the index row for one retained trace.
type traceSummary struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Origin string `json:"origin"`
	Spans  int    `json:"spans"`
	Labels int    `json:"labels"`
}

// Routes returns the exposition endpoints for c, ready to pass to
// telemetry.Serve:
//
//	/trace/           index of retained traces + violation snapshots
//	/trace/{id}       one trace's merged span records (JSON)
//	/trace/{id}.dot   the realized dependency DAG in Graphviz format
//
// The exact-match /trace endpoint (the telemetry event ring) is unrelated
// and keeps working beside these.
func Routes(c *Collector) []telemetry.Route {
	return []telemetry.Route{{Pattern: "/trace/", Handler: handler(c)}}
}

func handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/trace/")
		switch {
		case rest == "":
			serveIndex(w, c)
		case strings.HasSuffix(rest, ".dot"):
			id, err := strconv.ParseUint(strings.TrimSuffix(rest, ".dot"), 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			v, ok := c.Trace(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			_, _ = w.Write([]byte(v.DOT()))
		default:
			id, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			v, ok := c.Trace(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			writeJSON(w, v)
		}
	})
}

func serveIndex(w http.ResponseWriter, c *Collector) {
	views := c.Traces()
	out := struct {
		Traces     []traceSummary `json:"traces"`
		Violations []Violation    `json:"violations"`
	}{Traces: make([]traceSummary, 0, len(views)), Violations: c.Violations()}
	for _, v := range views {
		labels := make(map[string]struct{}, len(v.Spans))
		for _, s := range v.Spans {
			labels[s.Label.String()] = struct{}{}
		}
		out.Traces = append(out.Traces, traceSummary{
			ID: v.ID, Parent: v.Parent, Origin: v.Origin,
			Spans: len(v.Spans), Labels: len(labels),
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
