package trace

import (
	"strings"
	"testing"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

func lbl(origin string, seq uint64) message.Label {
	return message.Label{Origin: origin, Seq: seq}
}

func msg(l message.Label, k message.Kind, deps ...message.Label) message.Message {
	return message.Message{Label: l, Deps: message.After(deps...), Kind: k, Op: "op"}
}

// send pushes one message through the full local lifecycle at every tracer.
func send(origin *Tracer, m message.Message, at ...*Tracer) message.Message {
	m.Span = origin.Broadcast(m)
	for _, t := range at {
		t.Enqueue(m)
		t.Deliver(m)
	}
	return m
}

// TestActivityGrouping pins the trace-boundary rules: commutative chains
// join, control traffic attaches to the activity it serves, and a message
// depending on a closer starts a new parent-linked activity.
func TestActivityGrouping(t *testing.T) {
	c := NewCollector(Config{})
	ta, tb := c.Tracer("a"), c.Tracer("b")

	m1 := send(ta, msg(lbl("a", 1), message.KindCommutative), ta, tb)
	if !m1.Span.Valid() {
		t.Fatal("root message not traced")
	}
	m2 := send(tb, msg(lbl("b", 1), message.KindCommutative, m1.Label), ta, tb)
	if m2.Span.TraceID != m1.Span.TraceID {
		t.Fatalf("commutative successor split the activity: %v vs %v", m2.Span, m1.Span)
	}
	closer := send(ta, msg(lbl("a", 2), message.KindNonCommutative, m1.Label, m2.Label), ta, tb)
	if closer.Span.TraceID != m1.Span.TraceID {
		t.Fatalf("closer left its own activity: %v vs %v", closer.Span, m1.Span)
	}
	order := send(ta, msg(lbl("a~seq", 1), message.KindControl, closer.Label), ta, tb)
	if order.Span.TraceID != m1.Span.TraceID {
		t.Fatalf("control for the closer did not join the activity: %v vs %v", order.Span, m1.Span)
	}
	next := send(tb, msg(lbl("b", 2), message.KindCommutative, closer.Label), ta, tb)
	if next.Span.TraceID == m1.Span.TraceID {
		t.Fatal("message after the closer stayed in the closed activity")
	}
	v, ok := c.Trace(next.Span.TraceID)
	if !ok {
		t.Fatal("successor trace missing")
	}
	if v.Parent != m1.Span.TraceID {
		t.Fatalf("successor trace parent = %d, want %d", v.Parent, m1.Span.TraceID)
	}

	// A control chain with no data dependency stays out of activities; a
	// data message over it roots a new one.
	hb := send(ta, msg(lbl("a~seq", 2), message.KindControl), ta)
	data := send(ta, msg(lbl("a", 3), message.KindCommutative, hb.Label), ta)
	if data.Span.TraceID == hb.Span.TraceID {
		t.Fatal("data message joined the pure control chain")
	}

	if got := c.ViolationCount(); got != 0 {
		t.Fatalf("clean run produced %d violations: %v", got, c.Violations())
	}
}

func TestSpanLifecycleStages(t *testing.T) {
	c := NewCollector(Config{})
	ta, tb := c.Tracer("a"), c.Tracer("b")
	m := send(ta, msg(lbl("a", 1), message.KindNonCommutative), ta, tb)
	ta.Apply(m.Label)
	ta.Stable(m.Label, 1, "digest")
	tb.Apply(m.Label)
	tb.Stable(m.Label, 1, "digest")

	v, ok := c.Trace(m.Span.TraceID)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(v.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(v.Spans))
	}
	for _, s := range v.Spans {
		if s.Enqueue == 0 || s.Deliver == 0 || s.Apply == 0 || s.Stable == 0 {
			t.Fatalf("span %s@%s missing stages: %+v", s.Label, s.Member, s)
		}
		if s.Member == "a" && s.Send == 0 {
			t.Fatalf("origin span missing send stage: %+v", s)
		}
		if s.Enqueue > s.Deliver || s.Deliver > s.Apply || s.Apply > s.Stable {
			t.Fatalf("stage order broken: %+v", s)
		}
	}
	if c.ViolationCount() != 0 {
		t.Fatalf("violations on clean lifecycle: %v", c.Violations())
	}
}

func TestDepWaitAttribution(t *testing.T) {
	c := NewCollector(Config{})
	ta := c.Tracer("a")
	m1 := msg(lbl("a", 1), message.KindCommutative)
	m1.Span = ta.Broadcast(m1)
	m2 := msg(lbl("a", 2), message.KindCommutative, m1.Label)
	m2.Span = ta.Broadcast(m2)
	// m2 arrives first and waits for m1.
	ta.Enqueue(m2)
	ta.Enqueue(m1)
	ta.Deliver(m1)
	ta.DepResolved(m2.Label, m1.Label, 5*time.Millisecond)
	ta.Deliver(m2)

	v, _ := c.Trace(m2.Span.TraceID)
	var found bool
	for _, s := range v.Spans {
		if s.Label == m2.Label {
			for _, w := range s.Waits {
				if w.Dep == m1.Label && w.Wait == 5*time.Millisecond {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("dep wait not attributed: %+v", v.Spans)
	}
	if c.ViolationCount() != 0 {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}
}

// TestInjectedMisordering drives the hooks in a deliberately wrong order —
// the dependent delivered before its declared dependency — and expects the
// online auditor to catch it, count it, and capture a snapshot.
func TestInjectedMisordering(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(64)
	c := NewCollector(Config{Telemetry: reg, Ring: ring})
	ta := c.Tracer("a")

	dep := msg(lbl("a", 1), message.KindCommutative)
	dep.Span = ta.Broadcast(dep)
	bad := msg(lbl("a", 2), message.KindCommutative, dep.Label)
	bad.Span = ta.Broadcast(bad)
	ta.Enqueue(dep)
	ta.Enqueue(bad)
	ta.Deliver(bad) // violation: dep not delivered yet
	ta.Deliver(dep)

	if got := c.ViolationCount(); got != 1 {
		t.Fatalf("ViolationCount = %d, want 1 (%v)", got, c.Violations())
	}
	snap := reg.Snapshot()
	var counted uint64
	for _, cs := range snap.Counters {
		if cs.Name == "trace_violations_total" {
			counted = cs.Value
		}
	}
	if counted != 1 {
		t.Fatalf("trace_violations_total = %d, want 1", counted)
	}
	viols := c.Violations()
	if len(viols) != 1 || viols[0].Kind != ViolationCausalOrder ||
		viols[0].Label != bad.Label || viols[0].Dep != dep.Label || viols[0].Member != "a" {
		t.Fatalf("bad snapshot: %+v", viols)
	}
	var ringHit bool
	for _, e := range ring.Snapshot() {
		if e.Kind == telemetry.EventViolation && e.Origin == "a" && e.Seq == 2 {
			ringHit = true
		}
	}
	if !ringHit {
		t.Fatal("violation not recorded in the event ring")
	}
}

func TestEpochFenceAndReadViolations(t *testing.T) {
	c := NewCollector(Config{})
	ta := c.Tracer("a")
	ta.EpochAdopted(3)
	ta.OrderApplied(3, lbl("a~seq", 9)) // fine: current epoch
	ta.OrderApplied(2, lbl("a~seq", 10))
	ta.ReadServed(5, 6)
	ta.ReadServed(6, 6) // fine: at boundary
	viols := c.Violations()
	if len(viols) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(viols), viols)
	}
	if viols[0].Kind != ViolationEpochFence || viols[1].Kind != ViolationStableRead {
		t.Fatalf("wrong kinds: %v", viols)
	}
}

func TestStableDivergence(t *testing.T) {
	c := NewCollector(Config{})
	ta, tb := c.Tracer("a"), c.Tracer("b")
	closer := lbl("a", 1)
	ta.Stable(closer, 1, "digest-1")
	tb.Stable(closer, 1, "digest-1") // agrees
	tb.Stable(closer, 2, "digest-2")
	ta.Stable(closer, 2, "digest-OTHER") // diverges
	viols := c.Violations()
	if len(viols) != 1 || viols[0].Kind != ViolationStableDiverge {
		t.Fatalf("got %v, want one stable-diverge", viols)
	}
}

// TestSeededWatermarkSuppressesAudit mirrors crash/rejoin: the fresh
// incarnation never delivers pre-crash history, so deliveries depending on
// it must not be flagged once the watermark is seeded.
func TestSeededWatermarkSuppressesAudit(t *testing.T) {
	c := NewCollector(Config{})
	ta := c.Tracer("a")
	old := msg(lbl("b", 7), message.KindCommutative)
	old.Span = ta.Broadcast(old) // known to the store, but never delivered at a
	ta.SeedDelivered(map[string]uint64{"b": 7})
	m := send(ta, msg(lbl("a", 1), message.KindCommutative, old.Label), ta)
	if !m.Span.Valid() {
		t.Fatal("not traced")
	}
	if got := c.ViolationCount(); got != 0 {
		t.Fatalf("seeded dependency flagged: %v", c.Violations())
	}
}

func TestEvictionBoundsAndDropCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(Config{MaxTraces: 4, Telemetry: reg})
	ta := c.Tracer("a")
	var first message.Message
	for i := 1; i <= 10; i++ {
		m := send(ta, msg(lbl("a", uint64(i)), message.KindCommutative), ta)
		if i == 1 {
			first = m
		}
	}
	if n := len(c.TraceIDs()); n != 4 {
		t.Fatalf("retained %d traces, want 4", n)
	}
	if _, ok := c.Trace(first.Span.TraceID); ok {
		t.Fatal("oldest trace survived eviction")
	}
	if _, ok := c.Lookup(first.Label); ok {
		t.Fatal("evicted label still indexed")
	}
	var dropped, evicted uint64
	for _, cs := range reg.Snapshot().Counters {
		switch cs.Name {
		case "trace_span_dropped_total":
			dropped = cs.Value
		case "trace_traces_evicted_total":
			evicted = cs.Value
		}
	}
	if evicted != 6 || dropped != 6 {
		t.Fatalf("evicted=%d dropped=%d, want 6/6", evicted, dropped)
	}
	// Evicted dependencies degrade the audit to best-effort, not to noise.
	m := send(ta, msg(lbl("a", 100), message.KindCommutative, first.Label), ta)
	if !m.Span.Valid() {
		t.Fatal("not traced")
	}
	if c.ViolationCount() != 0 {
		t.Fatalf("evicted dep flagged: %v", c.Violations())
	}
}

func TestSampling(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 4})
	ta := c.Tracer("a")
	traced := 0
	for i := 1; i <= 40; i++ {
		m := send(ta, msg(lbl("a", uint64(i)), message.KindCommutative), ta)
		if m.Span.Valid() {
			traced++
		}
	}
	if traced != 10 {
		t.Fatalf("traced %d of 40 roots with SampleEvery=4, want 10", traced)
	}
	// Continuations of a sampled activity stay traced.
	var sampled message.Message
	for i := uint64(41); ; i++ {
		sampled = send(ta, msg(lbl("a", i), message.KindCommutative), ta)
		if sampled.Span.Valid() {
			break
		}
	}
	cont := send(ta, msg(lbl("a", sampled.Label.Seq+100), message.KindCommutative, sampled.Label), ta)
	if cont.Span.TraceID != sampled.Span.TraceID {
		t.Fatalf("continuation of sampled activity not traced: %v vs %v", cont.Span, sampled.Span)
	}
}

func TestLabelCapStartsContinuationTrace(t *testing.T) {
	c := NewCollector(Config{MaxLabelsPerTrace: 3})
	ta := c.Tracer("a")
	prev := send(ta, msg(lbl("a", 1), message.KindCommutative), ta)
	root := prev.Span.TraceID
	var contID uint64
	for i := uint64(2); i <= 6; i++ {
		prev = send(ta, msg(lbl("a", i), message.KindCommutative, prev.Label), ta)
		if prev.Span.TraceID != root {
			contID = prev.Span.TraceID
			break
		}
	}
	if contID == 0 {
		t.Fatal("label cap never split the chain")
	}
	v, ok := c.Trace(contID)
	if !ok || v.Parent != root {
		t.Fatalf("continuation trace parent = %d, want %d", v.Parent, root)
	}
}

func TestCriticalPathAndDOT(t *testing.T) {
	c := NewCollector(Config{})
	ta, tb := c.Tracer("a"), c.Tracer("b")
	m1 := send(ta, msg(lbl("a", 1), message.KindCommutative), ta, tb)
	m2 := send(tb, msg(lbl("b", 1), message.KindCommutative), ta, tb)
	m3 := msg(lbl("a", 2), message.KindNonCommutative, m1.Label, m2.Label)
	m3.Span = ta.Broadcast(m3)
	if m3.Span.TraceID != m1.Span.TraceID && m3.Span.TraceID != m2.Span.TraceID {
		t.Fatalf("closer did not join a dependency activity: %v", m3.Span)
	}
	ta.Enqueue(m3)
	ta.DepResolved(m3.Label, m2.Label, 3*time.Millisecond)
	ta.Deliver(m3)
	tb.Enqueue(m3)
	tb.Deliver(m3)

	v, ok := c.Trace(m3.Span.TraceID)
	if !ok {
		t.Fatal("trace missing")
	}
	path := v.CriticalPath()
	if len(path) < 2 {
		t.Fatalf("critical path too short: %+v", path)
	}
	if last := path[len(path)-1]; last.Label != m3.Label {
		t.Fatalf("critical path does not end at the closer: %+v", path)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Completed < path[i-1].Completed {
			t.Fatalf("critical path not monotone: %+v", path)
		}
	}

	dot := v.DOT()
	for _, want := range []string{"digraph", m3.Label.String(), "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}

	g := v.Graph()
	if !g.HappensBefore(m1.Label, m3.Label) {
		t.Fatal("declared edge missing from rebuilt graph")
	}
	if viols := v.VerifyEdges(); len(viols) != 0 {
		t.Fatalf("offline verify flagged a clean trace: %v", viols)
	}
}

func TestVerifyEdgesCatchesInversion(t *testing.T) {
	v := TraceView{ID: 1, Origin: "a", Spans: []Span{
		{Trace: 1, Label: lbl("a", 1), Member: "a", Kind: message.KindCommutative, Deliver: 200},
		{Trace: 1, Label: lbl("a", 2), Member: "a", Kind: message.KindCommutative,
			Deps: []message.Label{lbl("a", 1)}, Deliver: 100},
	}}
	viols := v.VerifyEdges()
	if len(viols) != 1 || viols[0].Kind != ViolationCausalOrder {
		t.Fatalf("got %v, want one causal-order violation", viols)
	}
}

func TestNilCollectorAndTracer(t *testing.T) {
	var c *Collector
	tr := c.Tracer("a")
	if tr != nil {
		t.Fatal("nil collector returned non-nil tracer")
	}
	m := msg(lbl("a", 1), message.KindCommutative)
	m.Span = message.SpanContext{TraceID: 9, Origin: "x"}
	if got := tr.Broadcast(m); got != m.Span {
		t.Fatalf("nil tracer rewrote span: %v", got)
	}
	tr.Enqueue(m)
	tr.Deliver(m)
	tr.Apply(m.Label)
	tr.Stable(m.Label, 1, "d")
	tr.ReadServed(1, 2)
	tr.EpochAdopted(1)
	tr.OrderApplied(0, m.Label)
	tr.DepResolved(m.Label, lbl("a", 0), time.Millisecond)
	tr.SeedDelivered(map[string]uint64{"a": 1})
	if c.Violations() != nil || c.ViolationCount() != 0 || c.Traces() != nil {
		t.Fatal("nil collector not inert")
	}
}

// TestSteadyStateAllocs drives the full hook lifecycle through a bounded
// collector long past its eviction horizon: once the free lists and maps
// are warm, tracing allocates nothing per message.
func TestSteadyStateAllocs(t *testing.T) {
	c := NewCollector(Config{MaxTraces: 32})
	ta, tb := c.Tracer("a"), c.Tracer("b")
	seq := uint64(0)
	step := func() {
		seq++
		m := msg(lbl("a", seq), message.KindCommutative)
		m.Span = ta.Broadcast(m)
		ta.Enqueue(m)
		ta.Deliver(m)
		tb.Enqueue(m)
		tb.Deliver(m)
	}
	for i := 0; i < 200; i++ {
		step() // warm pools, maps, and the eviction ring
	}
	if avg := testing.AllocsPerRun(500, step); avg != 0 {
		t.Fatalf("steady-state tracing allocates %v allocs/op, want 0", avg)
	}
}
