package trace

import (
	"fmt"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// ViolationKind classifies what the online auditor caught.
type ViolationKind int

const (
	// ViolationCausalOrder: a message was delivered at a member before one
	// of its declared OccursAfter dependencies.
	ViolationCausalOrder ViolationKind = iota + 1
	// ViolationEpochFence: a member applied an ORDER from an epoch lower
	// than one it had already adopted.
	ViolationEpochFence
	// ViolationStableRead: a deferred read was answered from a stable
	// cycle earlier than its registration boundary.
	ViolationStableRead
	// ViolationStableDiverge: two members reported the same stable cycle
	// with different closers or state digests.
	ViolationStableDiverge
)

var violationNames = map[ViolationKind]string{
	ViolationCausalOrder:   "causal-order",
	ViolationEpochFence:    "epoch-fence",
	ViolationStableRead:    "stable-read",
	ViolationStableDiverge: "stable-diverge",
}

// String returns the kind's short name.
func (k ViolationKind) String() string {
	if s, ok := violationNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ViolationKind(%d)", int(k))
}

// Violation is one snapshot captured when the auditor fired. The bounded
// snapshot buffer keeps the first MaxViolations; trace_violations_total
// counts all of them.
type Violation struct {
	Kind   ViolationKind `json:"kind"`
	Member string        `json:"member"`
	// Label is the message whose handling violated the invariant (zero for
	// read-boundary violations, which have no carrying message).
	Label message.Label `json:"label"`
	// Dep is the violated edge's source for causal-order violations.
	Dep message.Label `json:"dep,omitempty"`
	// Trace is the owning trace id when known.
	Trace uint64 `json:"trace,omitempty"`
	// At is the collector-clock offset of detection.
	At time.Duration `json:"at_ns"`
	// Detail is a human-readable one-liner.
	Detail string `json:"detail"`
}

// String renders the violation for logs and failure messages.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s at %s: %s", v.Kind, v.Label, v.Member, v.Detail)
}

func (c *Collector) violationLocked(kind ViolationKind, member string, label, dep message.Label, at time.Duration, detail string) {
	c.violSeen++
	c.ins.violations.Inc()
	c.ring.Record(telemetry.EventViolation, member, label.Origin, label.Seq, int64(kind))
	c.boxLocked(member).Violation(int(kind), label, dep)
	if len(c.violations) >= c.maxViols {
		return
	}
	var traceID uint64
	if info, ok := c.byLabel[label]; ok {
		traceID = info.trace
	}
	c.violations = append(c.violations, Violation{
		Kind:   kind,
		Member: member,
		Label:  label,
		Dep:    dep,
		Trace:  traceID,
		At:     at,
		Detail: detail,
	})
}

// auditDeliveryLocked checks every declared edge of m at delivery time at
// member: each dependency must be delivered there already, or covered by a
// rejoin watermark. Dependencies the store no longer knows (evicted or
// unsampled) are skipped — like the post-hoc obs auditor, the check is
// best-effort under bounded retention, and trace_span_dropped_total says
// how much coverage was lost.
func (c *Collector) auditDeliveryLocked(member string, m message.Message, now time.Duration) {
	var ma *memberAudit
	if a, ok := c.members[member]; ok {
		ma = a
	}
	for _, dep := range m.Deps.Labels() {
		if ma != nil && ma.seeded != nil && dep.Seq <= ma.seeded[dep.Origin] {
			continue
		}
		if _, known := c.byLabel[dep]; !known {
			continue
		}
		sr, ok := c.spanIdx[spanKey{dep, member}]
		if !ok || sr.deliver == 0 {
			c.violationLocked(ViolationCausalOrder, member, m.Label, dep, now,
				fmt.Sprintf("delivered before declared dependency %s was delivered here", dep))
		}
	}
}

// auditStableLocked checks cross-member stable-point agreement: the first
// report of a cycle fixes (closer, digest); any later report of the same
// cycle must match both. The claim table is bounded FIFO.
func (c *Collector) auditStableLocked(member string, closer message.Label, cycle uint64, digest string, now time.Duration) {
	if claim, ok := c.stables[cycle]; ok {
		if claim.closer != closer || claim.digest != digest {
			c.violationLocked(ViolationStableDiverge, member, closer, claim.closer, now,
				fmt.Sprintf("stable cycle %d: %s reported (%s, %q), first report by %s was (%s, %q)",
					cycle, member, closer, digest, claim.member, claim.closer, claim.digest))
		}
		return
	}
	c.stables[cycle] = stableClaim{member: member, closer: closer, digest: digest}
	c.stableQ[(c.sqHead+c.sqLen)%len(c.stableQ)] = cycle
	c.sqLen++
	for len(c.stables) > defaultMaxStables {
		old := c.stableQ[c.sqHead]
		c.sqHead = (c.sqHead + 1) % len(c.stableQ)
		c.sqLen--
		delete(c.stables, old)
	}
}

// Violations returns a copy of the captured violation snapshots in
// detection order.
func (c *Collector) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// ViolationCount returns how many violations were detected in total,
// including any past the snapshot bound.
func (c *Collector) ViolationCount() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violSeen
}
