package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// Span is the exported, immutable view of one span record: one message's
// lifecycle at one member. Zero stage offsets mean the stage was never
// reached there.
type Span struct {
	Trace  uint64        `json:"trace"`
	Label  message.Label `json:"label"`
	Member string        `json:"member"`
	Kind   message.Kind  `json:"kind"`
	// Deps is the declared OccursAfter predicate.
	Deps []message.Label `json:"deps,omitempty"`
	// Lifecycle stages, as offsets from the collector's base clock.
	Send    time.Duration `json:"send_ns,omitempty"`
	Enqueue time.Duration `json:"enqueue_ns,omitempty"`
	Deliver time.Duration `json:"deliver_ns,omitempty"`
	Apply   time.Duration `json:"apply_ns,omitempty"`
	Stable  time.Duration `json:"stable_ns,omitempty"`
	// Waits attributes holdback latency to specific declared edges.
	Waits []DepWait `json:"waits,omitempty"`
}

// completed returns the span's latest recorded stage offset.
func (s Span) completed() time.Duration {
	max := s.Send
	for _, d := range []time.Duration{s.Enqueue, s.Deliver, s.Apply, s.Stable} {
		if d > max {
			max = d
		}
	}
	return max
}

// TraceView is the exported snapshot of one causal activity.
type TraceView struct {
	ID uint64 `json:"id"`
	// Parent links a continuation or successor activity to its ancestor.
	Parent uint64 `json:"parent,omitempty"`
	// Origin is the member that started the activity.
	Origin string `json:"origin"`
	// Spans holds every recorded span, sorted by (label, member).
	Spans []Span `json:"spans"`
}

func exportSpan(id uint64, sr *spanRec) Span {
	s := Span{
		Trace:   id,
		Label:   sr.label,
		Member:  sr.member,
		Kind:    sr.kind,
		Send:    sr.send,
		Enqueue: sr.enqueue,
		Deliver: sr.deliver,
		Apply:   sr.apply,
		Stable:  sr.stable,
	}
	if len(sr.deps) > 0 {
		s.Deps = append([]message.Label(nil), sr.deps...)
	}
	if len(sr.waits) > 0 {
		s.Waits = append([]DepWait(nil), sr.waits...)
	}
	return s
}

func exportTrace(tr *traceRec) TraceView {
	v := TraceView{ID: tr.id, Parent: tr.parent, Origin: tr.origin,
		Spans: make([]Span, 0, len(tr.spans))}
	for _, sr := range tr.spans {
		v.Spans = append(v.Spans, exportSpan(tr.id, sr))
	}
	sort.Slice(v.Spans, func(i, j int) bool {
		a, b := v.Spans[i], v.Spans[j]
		if a.Label != b.Label {
			return a.Label.Less(b.Label)
		}
		return a.Member < b.Member
	})
	return v
}

// TraceIDs returns the ids of all retained traces, oldest first.
func (c *Collector) TraceIDs() []uint64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]uint64, 0, len(c.traces))
	for i := 0; i < c.qLen; i++ {
		id := c.evictQ[(c.qHead+i)%len(c.evictQ)]
		if _, ok := c.traces[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Trace returns a snapshot of one retained trace.
func (c *Collector) Trace(id uint64) (TraceView, bool) {
	if c == nil {
		return TraceView{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.traces[id]
	if !ok {
		return TraceView{}, false
	}
	return exportTrace(tr), true
}

// Traces snapshots every retained trace, oldest first.
func (c *Collector) Traces() []TraceView {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	views := make([]TraceView, 0, len(c.traces))
	for i := 0; i < c.qLen; i++ {
		id := c.evictQ[(c.qHead+i)%len(c.evictQ)]
		if tr, ok := c.traces[id]; ok {
			views = append(views, exportTrace(tr))
		}
	}
	return views
}

// Lookup returns the trace id a label is registered to.
func (c *Collector) Lookup(l message.Label) (uint64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	info, ok := c.byLabel[l]
	return info.trace, ok
}

// Graph rebuilds the declared dependency graph of the activity, restricted
// to labels recorded in the trace (edges to other activities are cut — the
// parent link records the lineage).
func (v TraceView) Graph() *graph.Graph {
	g := graph.New()
	present := make(map[message.Label]bool, len(v.Spans))
	for _, s := range v.Spans {
		present[s.Label] = true
	}
	for _, s := range v.Spans {
		g.AddNode(s.Label)
		for _, d := range s.Deps {
			if present[d] {
				_ = g.AddEdges(s.Label, []message.Label{d})
			}
		}
	}
	return g
}

// labelAgg folds a label's spans across members.
type labelAgg struct {
	kind      message.Kind
	deps      []message.Label
	completed time.Duration // max completion across members
	members   int
	delivered int
	maxWait   map[message.Label]time.Duration
}

func (v TraceView) aggregate() map[message.Label]*labelAgg {
	agg := make(map[message.Label]*labelAgg)
	for _, s := range v.Spans {
		a, ok := agg[s.Label]
		if !ok {
			a = &labelAgg{kind: s.Kind, deps: s.Deps, maxWait: map[message.Label]time.Duration{}}
			agg[s.Label] = a
		}
		a.members++
		if s.Deliver > 0 {
			a.delivered++
		}
		if done := s.completed(); done > a.completed {
			a.completed = done
		}
		for _, w := range s.Waits {
			if w.Wait > a.maxWait[w.Dep] {
				a.maxWait[w.Dep] = w.Wait
			}
		}
	}
	return agg
}

// PathStep is one hop on the critical path, root first. Wait is the
// largest holdback wait any member attributed to the edge arriving at this
// step (zero when the dependency was already delivered everywhere).
type PathStep struct {
	Label message.Label `json:"label"`
	Kind  message.Kind  `json:"kind"`
	// Completed is the latest lifecycle stage offset across members.
	Completed time.Duration `json:"completed_ns"`
	Wait      time.Duration `json:"wait_ns,omitempty"`
}

// CriticalPath returns the slowest declared dependency chain of the
// activity: starting from the label that completed last, it walks back
// through the declared edge whose source completed latest, which is the
// chain that bounded the activity's end-to-end latency.
func (v TraceView) CriticalPath() []PathStep {
	agg := v.aggregate()
	if len(agg) == 0 {
		return nil
	}
	var tip message.Label
	var tipDone time.Duration
	for l, a := range agg {
		if a.completed > tipDone || (a.completed == tipDone && (tip == message.Label{} || l.Less(tip))) {
			tip, tipDone = l, a.completed
		}
	}
	var rev []PathStep
	seen := make(map[message.Label]bool)
	cur := tip
	for !seen[cur] {
		seen[cur] = true
		a := agg[cur]
		step := PathStep{Label: cur, Kind: a.kind, Completed: a.completed}
		var next message.Label
		var nextDone time.Duration
		found := false
		for _, d := range a.deps {
			da, ok := agg[d]
			if !ok || seen[d] {
				continue
			}
			if !found || da.completed > nextDone {
				next, nextDone, found = d, da.completed, true
			}
		}
		if found {
			step.Wait = a.maxWait[next]
		}
		rev = append(rev, step)
		if !found {
			break
		}
		cur = next
	}
	path := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// VerifyEdges re-checks every realized delivery against the declared
// graph after the fact: for each member that delivered a message, every
// declared dependency recorded in the trace must have delivered there
// first. It is the offline complement of the online auditor, used by
// cmd/causaltrace to diff a merged trace.
func (v TraceView) VerifyEdges() []Violation {
	byKey := make(map[spanKey]Span, len(v.Spans))
	for _, s := range v.Spans {
		byKey[spanKey{s.Label, s.Member}] = s
	}
	var out []Violation
	for _, s := range v.Spans {
		if s.Deliver == 0 {
			continue
		}
		for _, d := range s.Deps {
			ds, ok := byKey[spanKey{d, s.Member}]
			if !ok {
				continue // dependency outside this trace: lineage edge
			}
			if ds.Deliver == 0 || ds.Deliver > s.Deliver {
				out = append(out, Violation{
					Kind:   ViolationCausalOrder,
					Member: s.Member,
					Label:  s.Label,
					Dep:    d,
					Trace:  v.ID,
					At:     s.Deliver,
					Detail: fmt.Sprintf("realized delivery order inverts declared edge %s → %s", d, s.Label),
				})
			}
		}
	}
	return out
}

// DOT renders the realized dependency DAG in Graphviz format, one node per
// message annotated with its end-to-end completion and delivery coverage,
// edges annotated with the worst attributed holdback wait.
func (v TraceView) DOT() string {
	agg := v.aggregate()
	labels := make([]message.Label, 0, len(agg))
	for l := range agg {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })

	var b strings.Builder
	fmt.Fprintf(&b, "digraph trace_%d {\n", v.ID)
	b.WriteString("  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	for _, l := range labels {
		a := agg[l]
		shape := ""
		if closerKind(a.kind) {
			shape = ", style=bold" // activity closers stand out
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s · %d/%d delivered · %s\"%s];\n",
			l.String(), l.String(), a.kind, a.delivered, a.members,
			a.completed.Round(time.Microsecond), shape)
	}
	for _, l := range labels {
		a := agg[l]
		for _, d := range a.deps {
			if _, ok := agg[d]; !ok {
				continue
			}
			if w := a.maxWait[d]; w > 0 {
				fmt.Fprintf(&b, "  %q -> %q [label=\"wait %s\"];\n",
					l.String(), d.String(), w.Round(time.Microsecond))
			} else {
				fmt.Fprintf(&b, "  %q -> %q;\n", l.String(), d.String())
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
