package trace

import (
	"strings"
	"testing"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

// TestStableDivergeCloserMismatch pins the branch where two members agree
// on the digest but disagree on WHICH message closed the cycle: that is a
// divergence too (the stable point is the pair, not just the state hash).
func TestStableDivergeCloserMismatch(t *testing.T) {
	c := NewCollector(Config{})
	ta, tb := c.Tracer("a"), c.Tracer("b")
	ta.Stable(lbl("a", 1), 1, "digest-1")
	tb.Stable(lbl("b", 9), 1, "digest-1") // same cycle, same digest, other closer
	viols := c.Violations()
	if len(viols) != 1 || viols[0].Kind != ViolationStableDiverge {
		t.Fatalf("got %v, want one stable-diverge", viols)
	}
	if !strings.Contains(viols[0].Detail, "first report by a") {
		t.Fatalf("detail does not name the first reporter: %q", viols[0].Detail)
	}
	if viols[0].Dep != lbl("a", 1) {
		t.Fatalf("violation Dep should carry the first claim's closer, got %s", viols[0].Dep)
	}
}

// TestStableClaimTableEvicts pins the bounded-FIFO claim table: once more
// than defaultMaxStables cycles are claimed, the oldest claims fall out,
// and a conflicting late report of an evicted cycle is (by design) no
// longer detectable — the table is bounded, not archival.
func TestStableClaimTableEvicts(t *testing.T) {
	c := NewCollector(Config{})
	ta := c.Tracer("a")
	for cyc := uint64(1); cyc <= defaultMaxStables+10; cyc++ {
		ta.Stable(lbl("a", cyc), cyc, "d")
	}
	c.mu.Lock()
	claims := len(c.stables)
	c.mu.Unlock()
	if claims != defaultMaxStables {
		t.Fatalf("claim table holds %d, want bound %d", claims, defaultMaxStables)
	}
	// Cycle 1 was evicted: a diverging report of it re-registers instead
	// of firing, while a diverging report of a retained cycle still fires.
	c.Tracer("b").Stable(lbl("b", 1), 1, "OTHER")
	if got := c.ViolationCount(); got != 0 {
		t.Fatalf("evicted cycle still audited: %d violations", got)
	}
	c.Tracer("b").Stable(lbl("b", 2), defaultMaxStables+5, "OTHER")
	if got := c.ViolationCount(); got != 1 {
		t.Fatalf("retained cycle not audited: %d violations", got)
	}
}

// TestViolationSnapshotBound pins the MaxViolations overflow branch: the
// bounded snapshot buffer keeps the first K, the counter keeps counting,
// and the telemetry counter and ring agree with the total.
func TestViolationSnapshotBound(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(64)
	c := NewCollector(Config{MaxViolations: 3, Telemetry: reg, Ring: ring})
	ta := c.Tracer("a")
	ta.EpochAdopted(10)
	for i := 0; i < 5; i++ {
		ta.OrderApplied(4, lbl("a~seq", uint64(i+1)))
	}
	if got := len(c.Violations()); got != 3 {
		t.Fatalf("snapshot buffer holds %d, want 3", got)
	}
	if got := c.ViolationCount(); got != 5 {
		t.Fatalf("violation count %d, want 5", got)
	}
	snap := reg.Snapshot()
	var counted uint64
	for _, m := range snap.Counters {
		if m.Name == "trace_violations_total" {
			counted = m.Value
		}
	}
	if counted != 5 {
		t.Fatalf("trace_violations_total = %d, want 5", counted)
	}
	events := ring.Snapshot()
	fired := 0
	for _, e := range events {
		if e.Kind == telemetry.EventViolation {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("ring recorded %d violation events, want 5", fired)
	}
}

// TestOrderAppliedAdoptsEpoch pins the adoption side of the fence check:
// OrderApplied with a HIGHER epoch than any adopted so far must raise the
// member's fence (exactly as EpochAdopted would), so a later apply at the
// previously-current epoch is then a breach — and the very first apply at
// a member with no adopted epoch at all is never a breach.
func TestOrderAppliedAdoptsEpoch(t *testing.T) {
	c := NewCollector(Config{})
	ta := c.Tracer("a")
	ta.OrderApplied(2, lbl("a~seq", 1)) // no epoch adopted yet: clean, adopts 2
	if got := c.ViolationCount(); got != 0 {
		t.Fatalf("first apply flagged: %v", c.Violations())
	}
	ta.OrderApplied(5, lbl("a~seq", 2)) // adopts 5 on the way through
	ta.OrderApplied(2, lbl("a~seq", 3)) // now fenced out
	viols := c.Violations()
	if len(viols) != 1 || viols[0].Kind != ViolationEpochFence {
		t.Fatalf("got %v, want one epoch-fence", viols)
	}
	if viols[0].Label != lbl("a~seq", 3) {
		t.Fatalf("violation names %s, want the fenced order's label", viols[0].Label)
	}
	if !strings.Contains(viols[0].Detail, "epoch 2 applied after epoch 5") {
		t.Fatalf("detail %q does not describe the fence", viols[0].Detail)
	}
}

// TestViolationTraceAttribution pins that a causal-order violation is
// attributed to the owning trace id via the label index, and that the
// violation's String covers kind, label, and member for failure messages.
func TestViolationTraceAttribution(t *testing.T) {
	c := NewCollector(Config{})
	ta, tb := c.Tracer("a"), c.Tracer("b")
	dep := send(ta, msg(lbl("a", 1), message.KindCommutative), ta)
	m := msg(lbl("a", 2), message.KindCommutative, dep.Label)
	m.Span = ta.Broadcast(m)
	tb.Deliver(m) // dep never delivered at b
	viols := c.Violations()
	if len(viols) != 1 || viols[0].Kind != ViolationCausalOrder {
		t.Fatalf("got %v, want one causal-order violation", viols)
	}
	if viols[0].Trace != m.Span.TraceID {
		t.Fatalf("violation trace %d, want %d", viols[0].Trace, m.Span.TraceID)
	}
	if viols[0].Dep != dep.Label {
		t.Fatalf("violation dep %s, want %s", viols[0].Dep, dep.Label)
	}
	s := viols[0].String()
	for _, want := range []string{"causal-order", "a#2", "at b"} {
		if !strings.Contains(s, want) {
			t.Fatalf("violation string %q missing %q", s, want)
		}
	}
}

// TestViolationKindString pins the name table and the unknown fallback.
func TestViolationKindString(t *testing.T) {
	names := map[ViolationKind]string{
		ViolationCausalOrder:   "causal-order",
		ViolationEpochFence:    "epoch-fence",
		ViolationStableRead:    "stable-read",
		ViolationStableDiverge: "stable-diverge",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if got := ViolationKind(99).String(); got != "ViolationKind(99)" {
		t.Fatalf("unknown kind renders %q", got)
	}
}
