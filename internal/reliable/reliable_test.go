package reliable

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// fastConfig is aggressive enough to exercise every timer within a test's
// patience while staying deterministic-ish under race detection.
func fastConfig() Config {
	return Config{
		Window:       64,
		AckEvery:     8,
		Tick:         time.Millisecond,
		NackDelay:    2 * time.Millisecond,
		RTO:          5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		StallTimeout: 50 * time.Millisecond,
		ShedAfter:    150 * time.Millisecond,
		Seed:         1,
	}
}

// collector drains one wrapped connection, recording delivered payload
// copies per origin.
type collector struct {
	mu   sync.Mutex
	got  map[string][][]byte
	done chan struct{}
}

func collect(t *testing.T, c *Conn) *collector {
	t.Helper()
	col := &collector{got: make(map[string][][]byte), done: make(chan struct{})}
	go func() {
		defer close(col.done)
		var buf []transport.Envelope
		for {
			envs, err := c.RecvBatch(buf)
			if err != nil {
				return
			}
			col.mu.Lock()
			for i := range envs {
				env := &envs[i]
				col.got[env.From] = append(col.got[env.From], append([]byte(nil), env.Payload...))
				env.Release()
			}
			col.mu.Unlock()
			buf = envs
		}
	}()
	return col
}

func (col *collector) count(from string) int {
	col.mu.Lock()
	defer col.mu.Unlock()
	return len(col.got[from])
}

func (col *collector) payloads(from string) [][]byte {
	col.mu.Lock()
	defer col.mu.Unlock()
	return append([][]byte(nil), col.got[from]...)
}

func payload(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func sendBroadcast(t *testing.T, c *Conn, tos []string, body []byte) {
	t.Helper()
	f := transport.NewFrame(len(body))
	f.B = append(f.B, body...)
	if err := c.SendFrame(tos, f); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	f.Release()
}

func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// wrap3 builds a three-member wrapped cluster over net.
func wrap3(t *testing.T, net transport.Network, cfg func(self string) Config) map[string]*Conn {
	t.Helper()
	ids := []string{"a", "b", "c"}
	conns := make(map[string]*Conn, len(ids))
	for _, id := range ids {
		inner, err := net.Attach(id)
		if err != nil {
			t.Fatalf("Attach(%s): %v", id, err)
		}
		var peers []string
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		conns[id] = Wrap(inner, peers, cfg(id))
	}
	return conns
}

// TestReliableDeliveryLossless checks plain sequenced delivery and that
// payload bytes cross the sublayer intact.
func TestReliableDeliveryLossless(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer net.Close()
	conns := wrap3(t, net, func(string) Config { return fastConfig() })
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cols := map[string]*collector{}
	for id, c := range conns {
		cols[id] = collect(t, c)
	}
	const n = 200
	for i := 0; i < n; i++ {
		sendBroadcast(t, conns["a"], []string{"b", "c"}, payload(i))
	}
	for _, id := range []string{"b", "c"} {
		id := id
		waitFor(t, 5*time.Second, fmt.Sprintf("%s to deliver %d", id, n), func() bool {
			return cols[id].count("a") >= n
		})
		got := cols[id].payloads("a")
		for i := 0; i < n; i++ {
			if want := payload(i); string(got[i]) != string(want) {
				t.Fatalf("%s delivery %d: got % x want % x", id, i, got[i], want)
			}
		}
	}
}

// TestReliableDeliveryUnderLoss drives sustained 30%% loss plus
// duplication and checks complete, ordered, dup-free delivery — the
// sublayer's core guarantee.
func TestReliableDeliveryUnderLoss(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{DropProb: 0.3, DupProb: 0.05, Seed: 11})
	defer net.Close()
	reg := telemetry.NewRegistry()
	conns := wrap3(t, net, func(string) Config {
		cfg := fastConfig()
		cfg.Telemetry = reg
		// Shedding is exercised separately; here every frame must make it,
		// so give laggards effectively unlimited patience.
		cfg.StallTimeout = 10 * time.Second
		cfg.ShedAfter = 10 * time.Second
		return cfg
	})
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cols := map[string]*collector{}
	for id, c := range conns {
		cols[id] = collect(t, c)
	}
	const n = 300
	for i := 0; i < n; i++ {
		sendBroadcast(t, conns["a"], []string{"b", "c"}, payload(i))
	}
	for _, id := range []string{"b", "c"} {
		id := id
		waitFor(t, 20*time.Second, fmt.Sprintf("%s to recover all %d", id, n), func() bool {
			return cols[id].count("a") >= n
		})
		got := cols[id].payloads("a")
		if len(got) != n {
			t.Fatalf("%s delivered %d broadcasts, want exactly %d", id, len(got), n)
		}
		for i := range got {
			if want := payload(i); string(got[i]) != string(want) {
				t.Fatalf("%s delivery %d out of order: got % x want % x", id, i, got[i], want)
			}
		}
	}
	if v := reg.Counter("reliable_retransmits_total", "").Value(); v == 0 {
		t.Fatalf("expected retransmissions under 30%% loss, counter is 0")
	}
}

// TestReliableBurstLossTCP runs Gilbert–Elliott burst loss over the real
// TCP loopback transport.
func TestReliableBurstLossTCP(t *testing.T) {
	net := transport.NewTCPNetWithConfig(transport.TCPConfig{
		Faults: transport.FaultModel{DropProb: 0.05, BurstProb: 0.05, BurstHeal: 0.3, BurstDrop: 0.9, Seed: 7},
	})
	defer net.Close()
	conns := wrap3(t, net, func(string) Config { return fastConfig() })
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cols := map[string]*collector{}
	for id, c := range conns {
		cols[id] = collect(t, c)
	}
	const n = 200
	for i := 0; i < n; i++ {
		sendBroadcast(t, conns["b"], []string{"a", "c"}, payload(i))
	}
	for _, id := range []string{"a", "c"} {
		id := id
		waitFor(t, 20*time.Second, fmt.Sprintf("%s to recover all %d", id, n), func() bool {
			return cols[id].count("b") >= n
		})
		got := cols[id].payloads("b")
		for i := range got[:n] {
			if want := payload(i); string(got[i]) != string(want) {
				t.Fatalf("%s delivery %d: got % x want % x", id, i, got[i], want)
			}
		}
	}
}

// TestWindowBackpressureAndShed fills the send window against a peer that
// never acks and checks that (1) sends block, (2) the laggard is shed to
// OnSuspect after StallTimeout, and (3) the window then frees.
func TestWindowBackpressureAndShed(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer net.Close()
	// b is attached but never wrapped or read, so a's frames pile up in
	// its mailbox and no acks ever form: a pure laggard.
	innerA, _ := net.Attach("a")
	innerB, _ := net.Attach("b")
	defer innerB.Close()
	suspects := make(chan string, 4)
	cfg := fastConfig()
	cfg.Window = 8
	cfg.StallTimeout = 30 * time.Millisecond
	cfg.ShedAfter = 60 * time.Millisecond
	cfg.OnSuspect = func(peer string) { suspects <- peer }
	a := Wrap(innerA, []string{"b"}, cfg)
	defer a.Close()
	collect(t, a) // pump a's control plane

	// Window fills after 8 unacked sends; the 9th blocks, then sheds b.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			sendBroadcast(t, a, []string{"b"}, payload(i))
		}
	}()
	select {
	case p := <-suspects:
		if p != "b" {
			t.Fatalf("shed peer = %q, want b", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("laggard was never shed")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sends still blocked after shedding the laggard")
	}
}

// TestShedHealReset sheds a one-way-partitioned peer, advances history
// past the window, heals, and checks the peer is resynced via RESET
// (OnResync) and then receives new traffic again.
func TestShedHealReset(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer net.Close()
	innerA, _ := net.Attach("a")
	innerB, _ := net.Attach("b")
	cfgA := fastConfig()
	cfgA.Window = 16
	cfgA.StallTimeout = 20 * time.Millisecond
	cfgA.ShedAfter = 40 * time.Millisecond
	suspects := make(chan string, 4)
	cfgA.OnSuspect = func(peer string) { suspects <- peer }
	a := Wrap(innerA, []string{"b"}, cfgA)
	defer a.Close()
	cfgB := fastConfig()
	resyncs := make(chan string, 4)
	cfgB.OnResync = func(peer string) { resyncs <- peer }
	b := Wrap(innerB, []string{"a"}, cfgB)
	defer b.Close()
	collect(t, a)
	colB := collect(t, b)

	net.PartitionOneWay("a", "b", true)
	const burst = 100 // far past the 16-slot retransmit buffer
	for i := 0; i < burst; i++ {
		sendBroadcast(t, a, []string{"b"}, payload(i))
	}
	select {
	case <-suspects:
	case <-time.After(5 * time.Second):
		t.Fatal("partitioned peer was never shed")
	}
	net.PartitionOneWay("a", "b", false)
	// New traffic reaches b with sequences far beyond its horizon; its
	// NACK is unservable, so a answers with RESET and b reports a resync.
	deadline := time.Now().Add(10 * time.Second)
	sent := burst
	for {
		sendBroadcast(t, a, []string{"b"}, payload(sent))
		sent++
		select {
		case p := <-resyncs:
			if p != "a" {
				t.Fatalf("resync peer = %q, want a", p)
			}
		case <-time.After(10 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("healed peer never resynced")
			}
			continue
		}
		break
	}
	// Post-resync traffic flows again.
	base := colB.count("a")
	for i := 0; i < 20; i++ {
		sendBroadcast(t, a, []string{"b"}, payload(sent+i))
	}
	waitFor(t, 5*time.Second, "post-resync delivery", func() bool {
		return colB.count("a") >= base+20
	})
	// Everything b delivered is a strictly increasing subsequence of what
	// a sent: the skip is visible, reordering never is.
	got := colB.payloads("a")
	prev := int64(-1)
	for i, g := range got {
		v := int64(binary.BigEndian.Uint64(g))
		if v <= prev {
			t.Fatalf("delivery %d: payload %d after %d (reordered or duplicated)", i, v, prev)
		}
		prev = v
	}
}

// TestEpochRejoin crashes a member (close + re-attach + re-wrap) and
// checks the new incarnation's stream is adopted cleanly: deliveries
// resume with the new epoch, stale state discarded.
func TestEpochRejoin(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer net.Close()
	innerA, _ := net.Attach("a")
	innerB, _ := net.Attach("b")
	a := Wrap(innerA, []string{"b"}, fastConfig())
	b := Wrap(innerB, []string{"a"}, fastConfig())
	defer b.Close()
	colB := collect(t, b)
	for i := 0; i < 10; i++ {
		sendBroadcast(t, a, []string{"b"}, payload(i))
	}
	waitFor(t, 5*time.Second, "first incarnation delivery", func() bool { return colB.count("a") >= 10 })
	firstEpoch := a.Epoch()
	a.Close()

	innerA2, err := net.Attach("a")
	if err != nil {
		t.Fatalf("re-Attach(a): %v", err)
	}
	a2 := Wrap(innerA2, []string{"b"}, fastConfig())
	defer a2.Close()
	collect(t, a2)
	if a2.Epoch() <= firstEpoch {
		t.Fatalf("rejoin epoch %d not newer than %d", a2.Epoch(), firstEpoch)
	}
	for i := 0; i < 10; i++ {
		sendBroadcast(t, a2, []string{"b"}, payload(100+i))
	}
	waitFor(t, 5*time.Second, "second incarnation delivery", func() bool { return colB.count("a") >= 20 })
	got := colB.payloads("a")
	for i := 0; i < 10; i++ {
		if want := payload(100 + i); string(got[10+i]) != string(want) {
			t.Fatalf("rejoin delivery %d: got % x want % x", i, got[10+i], want)
		}
	}
}

// TestUnicastPassthrough checks that non-broadcast traffic is not
// sequenced and crosses the wrapper byte-identical (wire-compat is proved
// separately in wire_compat_test.go against the raw transport).
func TestUnicastPassthrough(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer net.Close()
	conns := wrap3(t, net, func(string) Config { return fastConfig() })
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cols := map[string]*collector{}
	for id, c := range conns {
		cols[id] = collect(t, c)
	}
	// A causal-layer-shaped unicast (kind tag 2) via Send.
	raw := []byte{2, 0xDE, 0xAD, 0xBE, 0xEF}
	if err := conns["a"].Send("b", raw); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// A subset fan-out via SendFrame: not the full peer set, so passthrough.
	f := transport.NewFrame(len(raw))
	f.B = append(f.B, raw...)
	if err := conns["c"].SendFrame([]string{"b"}, f); err != nil {
		t.Fatalf("SendFrame subset: %v", err)
	}
	f.Release()
	waitFor(t, 5*time.Second, "passthrough deliveries", func() bool {
		return cols["b"].count("a") >= 1 && cols["b"].count("c") >= 1
	})
	for _, from := range []string{"a", "c"} {
		got := cols["b"].payloads(from)[0]
		if string(got) != string(raw) {
			t.Fatalf("passthrough from %s mutated: got % x want % x", from, got, raw)
		}
	}
}

// TestDupSuppression feeds 100%% duplication and checks every broadcast is
// delivered exactly once.
func TestDupSuppression(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{DupProb: 1.0, Seed: 5})
	defer net.Close()
	reg := telemetry.NewRegistry()
	conns := wrap3(t, net, func(string) Config {
		cfg := fastConfig()
		cfg.Telemetry = reg
		return cfg
	})
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cols := map[string]*collector{}
	for id, c := range conns {
		cols[id] = collect(t, c)
	}
	const n = 100
	for i := 0; i < n; i++ {
		sendBroadcast(t, conns["a"], []string{"b", "c"}, payload(i))
	}
	waitFor(t, 10*time.Second, "delivery under duplication", func() bool {
		return cols["b"].count("a") >= n && cols["c"].count("a") >= n
	})
	time.Sleep(50 * time.Millisecond) // let straggler dups arrive
	for _, id := range []string{"b", "c"} {
		if got := cols[id].count("a"); got != n {
			t.Fatalf("%s delivered %d broadcasts under DupProb=1, want exactly %d", id, got, n)
		}
	}
	if v := reg.Counter("reliable_dup_suppressed_total", "").Value(); v == 0 {
		t.Fatal("expected suppressed duplicates, counter is 0")
	}
}
