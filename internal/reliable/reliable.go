// Package reliable is a per-link reliability sublayer that wraps any
// transport.Conn with sequenced broadcast delivery, cumulative acks
// piggybacked on outgoing data frames, NACK-driven gap repair with
// exponential backoff and jitter, sender-side RTO retransmission for tail
// loss, duplicate suppression, and a bounded retransmit window that
// exerts backpressure on the broadcast layers instead of buffering
// unboundedly.
//
// The paper's OSend/ASend primitives assume the kernel communication
// facility eventually delivers every broadcast; this package is that
// assumption made real over lossy links (cf. ISIS CBCAST's transport and
// Bayou's anti-entropy, which both place a reliability layer under the
// ordering protocols).
//
// # Design
//
// Broadcasts are sequenced per *stream*, not per peer pair: one sequence
// number per outgoing broadcast shared by every destination, so the
// encode-once zero-copy fan-out of the hot path survives — the reliability
// header (including the ack vector) is identical bytes for all receivers.
// Each receiver tracks the sender's stream independently: next-expected
// sequence, a reorder ring bounded by the sender's window, and cumulative
// acks back to the sender. Retransmissions re-send the retained frame's
// bytes unchanged, so a message's SpanContext (and every other byte)
// survives loss transparently.
//
// Graceful degradation: a peer that stops acking — crashed, partitioned,
// or simply slower than the window for longer than ShedAfter/StallTimeout
// tolerates — is shed: excluded from the window so the group is never
// hostage to its slowest member, and reported via OnSuspect (wired into
// group.Detector by the layers above). Shedding releases the shed peer's
// buffer claim; if it later returns and NACKs history the buffer no
// longer holds, the sender answers with RESET and the receiver jumps
// forward, reporting the irrecoverable gap via OnResync so the layer
// above performs a snapshot-based resync instead of a full log replay.
//
// Stream incarnations are fenced by an epoch: every Wrap gets a fresh
// epoch, receivers adopt higher epochs (and discard the dead
// incarnation's buffered frames) and drop lower ones, so a crashed member
// that rejoins mid-chaos cannot interleave stale sequences with new ones.
package reliable

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"causalshare/internal/flightrec"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// Config tunes one wrapped connection. The zero value gets defaults
// suitable for in-process and loopback links.
type Config struct {
	// Window bounds unacknowledged broadcasts: once Window frames are in
	// flight to the slowest live peer, SendFrame blocks (backpressure on
	// OSend/the sequencer) until acks free slots or StallTimeout sheds
	// the laggard. It also sizes each receiver's reorder ring. Default 256.
	Window int
	// AckEvery pushes a standalone cumulative ack after this many in-order
	// deliveries from one stream; between pushes acks ride free on
	// outgoing data frames and the per-Tick flush. Default 32.
	AckEvery int
	// Tick is the background cadence: delayed-ack flush, NACK scans, RTO
	// retransmission, shed deadlines. Default 2ms.
	Tick time.Duration
	// NackDelay is how long a sequence gap must persist before the first
	// NACK — shorter than the transport's reorder horizon wastes repair
	// traffic. Backoff doubles from here, jittered, up to BackoffMax.
	// Default 2*Tick.
	NackDelay time.Duration
	// RTO is the sender-side retransmission timeout covering tail loss
	// (the receiver cannot NACK frames it never saw evidence of). Doubles
	// with jitter up to BackoffMax while a peer makes no progress.
	// Default 5*Tick.
	RTO time.Duration
	// BackoffMax caps NACK and RTO backoff. Default 50*Tick.
	BackoffMax time.Duration
	// StallTimeout bounds how long one SendFrame may block on a full
	// window before the peers pinning the window are shed. Default 100ms.
	StallTimeout time.Duration
	// ShedAfter sheds a peer whose acks make no progress on outstanding
	// data for this long. Default 400ms.
	ShedAfter time.Duration
	// Seed fixes the jitter RNG for reproducible schedules. Zero means 1.
	Seed int64
	// OnSuspect is called (from the background ticker) when a peer is
	// shed; wire it into the failure detector.
	OnSuspect func(peer string)
	// OnResync is called when the link from peer skipped irrecoverable
	// sequences (RESET); the layer above should resync state from peer
	// (e.g. causal.OSend.SyncWith).
	OnResync func(peer string)
	// Telemetry registers the reliable_* instruments. May be nil.
	Telemetry *telemetry.Registry
	// Trace records retransmit/nack/shed/resync events. May be nil.
	Trace *telemetry.Ring
	// Flight, when non-nil, is this member's black-box flight recorder:
	// retransmissions, NACKs, sheds, and resyncs land there with the peer
	// and link sequence, so a post-mortem can correlate repair traffic
	// with the ordering stalls above it. May be nil.
	Flight *flightrec.Recorder
}

func (cfg *Config) defaults() {
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 32
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * time.Millisecond
	}
	if cfg.NackDelay <= 0 {
		cfg.NackDelay = 2 * cfg.Tick
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 5 * cfg.Tick
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 50 * cfg.Tick
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 100 * time.Millisecond
	}
	if cfg.ShedAfter <= 0 {
		cfg.ShedAfter = 400 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

// epochCounter hands every Wrap a process-unique, monotonically
// increasing stream incarnation, so a member that crashes and rejoins
// (new Wrap over a new attachment) is fenced from its dead incarnation.
var epochCounter atomic.Uint64

// ackWord packs an in-stream's (epoch, delivered watermark) pair into one
// atomic so the hot-path ack-vector builder reads a coherent pair without
// taking stream locks. 24 bits of epoch and 40 bits of sequence bound a
// process to ~16M rejoins and ~1.1e12 frames per stream — far beyond any
// run this system makes.
const ackSeqBits = 40

func packAck(epoch, seq uint64) uint64 { return epoch<<ackSeqBits | seq&(1<<ackSeqBits-1) }

func unpackAck(w uint64) (epoch, seq uint64) { return w >> ackSeqBits, w & (1<<ackSeqBits - 1) }

// outSlot retains one sent broadcast frame until every live peer acks it.
type outSlot struct {
	seq uint64
	f   *transport.Frame
	at  time.Time // first-send time, for the per-link RTT estimate
}

// peerOut is the sender's view of one destination.
type peerOut struct {
	id      string
	unicast [1]string

	acked        uint64 // cumulative ack received from this peer
	shed         bool
	lastProgress time.Time // last ack advance (or nothing outstanding)
	lastRetx     time.Time
	lastReset    time.Time
	rto          time.Duration
	rtt          time.Duration // EWMA of send→ack round trips (0 = no sample)
}

// outStream is the single sequenced broadcast stream of this connection.
type outStream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	next   uint64 // next sequence to assign (first assigned is 1)
	floor  uint64 // min ack over live peers; slots ≤ floor are released
	ring   []outSlot
	peers  map[string]*peerOut
	plist  []*peerOut
	closed bool

	notices []string // shed peers awaiting OnSuspect delivery
}

// inStream is the receiver's view of one peer's broadcast stream.
type inStream struct {
	id      string
	unicast [1]string

	mu       sync.Mutex
	epoch    uint64
	next     uint64 // next sequence to deliver
	maxSeen  uint64 // highest sequence observed this epoch
	ring     []transport.Envelope
	occ      []bool
	buffered int

	sinceAck  int
	lastAcked uint64
	ackDirty  bool

	gapSince    time.Time
	nackAt      time.Time
	nackBackoff time.Duration

	ackWord atomic.Uint64 // packAck(epoch, next-1), for piggybacking
}

// Conn wraps an inner transport.Conn with the reliability sublayer. It
// implements transport.Conn, transport.FrameSender and
// transport.BatchRecver, so it drops into any stack built on those.
type Conn struct {
	inner transport.Conn
	self  string
	selfB []byte
	peers []string
	cfg   Config
	ins   *instruments
	epoch uint64

	out outStream

	streamsMu  sync.RWMutex
	streams    map[string]*inStream
	streamList []*inStream
	vecMax     atomic.Int64 // upper bound on encoded ack-vector bytes

	recvMu   sync.Mutex
	innerBuf []transport.Envelope
	one      [1]transport.Envelope
	pend     []transport.Envelope
	pendHead int

	rng *rand.Rand // ticker-goroutine only

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

var (
	_ transport.Conn        = (*Conn)(nil)
	_ transport.FrameSender = (*Conn)(nil)
	_ transport.BatchRecver = (*Conn)(nil)
)

// Wrap layers reliability over conn for the broadcast group whose other
// members are peers (in the group's canonical order — the same order the
// broadcast layers pass to Multicast). Fan-outs addressed to exactly that
// set are sequenced; any other destination set passes through unchanged.
func Wrap(conn transport.Conn, peers []string, cfg Config) *Conn {
	cfg.defaults()
	c := &Conn{
		inner:   conn,
		self:    conn.LocalID(),
		peers:   append([]string(nil), peers...),
		cfg:     cfg,
		ins:     newInstruments(cfg.Telemetry),
		epoch:   epochCounter.Add(1),
		streams: make(map[string]*inStream, len(peers)),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		done:    make(chan struct{}),
	}
	c.selfB = []byte(c.self)
	c.out.next = 1 // first assigned sequence; floor 0 means nothing acked
	c.out.cond = sync.NewCond(&c.out.mu)
	c.out.ring = make([]outSlot, cfg.Window)
	c.out.peers = make(map[string]*peerOut, len(peers))
	now := time.Now()
	for _, id := range c.peers {
		p := &peerOut{id: id, lastProgress: now, rto: cfg.RTO}
		p.unicast[0] = id
		c.out.peers[id] = p
		c.out.plist = append(c.out.plist, p)
		c.addStreamLocked(id) // no readers yet; lock-free init is fine
	}
	c.registerLinkGauges(cfg.Telemetry)
	c.wg.Add(1)
	go c.tickLoop()
	return c
}

// registerLinkGauges registers the snapshot-time per-link health gauges:
// window occupancy (frames sent but unacked by the peer) and shed state.
// They scan under o.mu only when a snapshot is taken, so the send path
// pays nothing. With a registry shared by several Conns the last to
// register a peer label wins (so a member's fresh incarnation takes the
// series over); per-member registries never collide.
func (c *Conn) registerLinkGauges(reg *telemetry.Registry) {
	occ := reg.GaugeFamily("reliable_link_outstanding",
		"Broadcast frames sent but not yet acked by the peer.",
		"peer")
	shed := reg.GaugeFamily("reliable_link_shed",
		"1 when the peer is shed from the send window (suspect), else 0.",
		"peer")
	for _, p := range c.out.plist {
		p := p
		occ.Func(p.id, func() int64 {
			c.out.mu.Lock()
			defer c.out.mu.Unlock()
			if p.shed || c.out.next-1 <= p.acked {
				return 0
			}
			return int64(c.out.next - 1 - p.acked)
		})
		shed.Func(p.id, func() int64 {
			c.out.mu.Lock()
			defer c.out.mu.Unlock()
			if p.shed {
				return 1
			}
			return 0
		})
	}
}

// addStreamLocked creates the in-stream state for id. Callers must hold
// streamsMu (or be the constructor).
func (c *Conn) addStreamLocked(id string) *inStream {
	st := &inStream{
		id:   id,
		next: 1,
		ring: make([]transport.Envelope, c.cfg.Window),
		occ:  make([]bool, c.cfg.Window),
	}
	st.unicast[0] = id
	c.streams[id] = st
	c.streamList = append(c.streamList, st)
	c.vecMax.Add(int64(len(id)) + 3*binary.MaxVarintLen64)
	return st
}

func (c *Conn) stream(id string) *inStream {
	c.streamsMu.RLock()
	st := c.streams[id]
	c.streamsMu.RUnlock()
	if st != nil {
		return st
	}
	c.streamsMu.Lock()
	defer c.streamsMu.Unlock()
	if st = c.streams[id]; st != nil {
		return st
	}
	return c.addStreamLocked(id)
}

// LocalID implements transport.Conn.
func (c *Conn) LocalID() string { return c.self }

// Epoch returns this connection's stream incarnation (for tests/tooling).
func (c *Conn) Epoch() uint64 { return c.epoch }

// FIFO implements transport.FIFOProber: the sublayer's whole job is to
// upgrade an arbitrary conn to reliable per-pair FIFO for the sequenced
// broadcast stream (full-group fan-outs through SendFrame). Gaps are
// NACK-repaired, reorders held back, duplicates suppressed; irrecoverable
// skips surface through OnResync rather than as silent misordering.
// Unicast Send passes through unsequenced — point-to-point repair traffic
// carries its own ordering — so FIFO-dependent layers must disseminate
// exclusively via full-group Multicast, which the PC-cast engine does.
func (c *Conn) FIFO() bool { return true }

// Send passes a unicast through unsequenced: point-to-point repair
// traffic (causal fetches, sync snapshots) has its own retry logic above.
func (c *Conn) Send(to string, payload []byte) error {
	c.ins.passthrough.Inc()
	return c.inner.Send(to, payload)
}

// sequenced reports whether tos is exactly the broadcast peer set.
func (c *Conn) sequenced(tos []string) bool {
	if len(tos) != len(c.peers) {
		return false
	}
	for i, t := range tos {
		if t != c.peers[i] {
			return false
		}
	}
	return true
}

// SendFrame implements transport.FrameSender. A full-group fan-out is
// sequenced through the window; anything else passes through.
func (c *Conn) SendFrame(tos []string, f *transport.Frame) error {
	if !c.sequenced(tos) {
		c.ins.passthrough.Inc()
		return transport.Multicast(c.inner, tos, f)
	}
	o := &c.out
	o.mu.Lock()
	if o.next-1-o.floor >= uint64(len(o.ring)) {
		c.ins.windowStalls.Inc()
		deadline := time.Now().Add(c.cfg.StallTimeout)
		for o.next-1-o.floor >= uint64(len(o.ring)) && !o.closed {
			if !time.Now().Before(deadline) {
				// Retransmit-buffer overflow: shed the peers pinning the
				// window rather than buffer without bound or block forever.
				c.shedLaggardsLocked(time.Now())
				deadline = time.Now().Add(c.cfg.StallTimeout)
				continue
			}
			o.cond.Wait() // the ticker broadcasts every Tick
		}
	}
	if o.closed {
		o.mu.Unlock()
		return transport.ErrClosed
	}
	seq := o.next
	o.next++
	g := transport.NewFrame(2 + 3*binary.MaxVarintLen64 + int(c.vecMax.Load()) + len(f.B))
	g.B = appendDataPrefix(g.B, c.epoch, seq)
	g.B = c.appendAckVec(g.B)
	g.B = append(g.B, f.B...)
	slot := &o.ring[seq%uint64(len(o.ring))]
	if slot.f != nil {
		slot.f.Release() // unreachable when floor accounting holds; defensive
	}
	g.Retain()
	slot.seq, slot.f, slot.at = seq, g, time.Now()
	// With every peer shed there is no ack obligation left: the floor
	// tracks the head so the window never jams on a fully-shed group.
	c.advanceFloorLocked()
	c.ins.outstanding.Set(int64(o.next - 1 - o.floor))
	o.mu.Unlock()
	err := transport.Multicast(c.inner, tos, g)
	g.Release()
	c.ins.dataSent.Inc()
	return err
}

// appendAckVec piggybacks every known stream's cumulative ack. Entries
// with epoch 0 (nothing received yet) are emitted and ignored by
// receivers, which keeps the single-pass encoding race-free without
// per-stream locks.
func (c *Conn) appendAckVec(b []byte) []byte {
	c.streamsMu.RLock()
	list := c.streamList
	b = binary.AppendUvarint(b, uint64(len(list)))
	for _, st := range list {
		epoch, seq := unpackAck(st.ackWord.Load())
		b = appendAckEntry(b, st.id, epoch, seq)
	}
	c.streamsMu.RUnlock()
	return b
}

// Recv implements transport.Conn.
func (c *Conn) Recv() (transport.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	for c.pendHead >= len(c.pend) {
		c.pend = c.pend[:0]
		c.pendHead = 0
		envs, err := c.recvInnerLocked()
		if err != nil {
			return transport.Envelope{}, err
		}
		for _, e := range envs {
			c.pend = c.process(e, c.pend)
		}
	}
	e := c.pend[c.pendHead]
	c.pend[c.pendHead] = transport.Envelope{}
	c.pendHead++
	return e, nil
}

// RecvBatch implements transport.BatchRecver.
func (c *Conn) RecvBatch(buf []transport.Envelope) ([]transport.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	out := buf[:0]
	if c.pendHead < len(c.pend) {
		out = append(out, c.pend[c.pendHead:]...)
		c.pend = c.pend[:0]
		c.pendHead = 0
		return out, nil
	}
	for {
		envs, err := c.recvInnerLocked()
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		for _, e := range envs {
			out = c.process(e, out)
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (c *Conn) recvInnerLocked() ([]transport.Envelope, error) {
	if br, ok := c.inner.(transport.BatchRecver); ok {
		envs, err := br.RecvBatch(c.innerBuf)
		if err != nil {
			return nil, err
		}
		c.innerBuf = envs
		return envs, nil
	}
	env, err := c.inner.Recv()
	if err != nil {
		return nil, err
	}
	c.one[0] = env
	return c.one[:1], nil
}

// process classifies one inbound frame: passthrough traffic is delivered
// untouched, control frames are consumed, and data frames go through the
// per-stream sequencing state machine.
func (c *Conn) process(env transport.Envelope, out []transport.Envelope) []transport.Envelope {
	b := env.Payload
	if !isReliable(b) {
		c.ins.passthrough.Inc()
		return append(out, env)
	}
	body := b[2:]
	switch b[1] {
	case kindData:
		h, err := decodeData(body, c.selfB)
		if err != nil {
			c.ins.decodeErrors.Inc()
			env.Release()
			return out
		}
		if h.ackOK {
			c.applyAck(env.From, h.ackEpoch, h.ackSeq)
		}
		return c.acceptData(env, h, out)
	case kindAck:
		if epoch, ack, err := decodeAck(body); err == nil {
			c.applyAck(env.From, epoch, ack)
		} else {
			c.ins.decodeErrors.Inc()
		}
	case kindNack:
		var buf [maxNackSeqs]uint64
		if epoch, seqs, err := decodeNack(body, buf[:0]); err == nil {
			c.handleNack(env.From, epoch, seqs)
		} else {
			c.ins.decodeErrors.Inc()
		}
	case kindReset:
		if epoch, next, err := decodeReset(body); err == nil {
			c.handleReset(env.From, epoch, next)
		} else {
			c.ins.decodeErrors.Inc()
		}
	default:
		c.ins.decodeErrors.Inc()
	}
	env.Release()
	return out
}

// acceptData runs the receiver state machine for one stream data frame.
func (c *Conn) acceptData(env transport.Envelope, h dataHeader, out []transport.Envelope) []transport.Envelope {
	st := c.stream(env.From)
	var ackNow bool
	var ackEpoch, ackSeq uint64
	newIncarnation := false
	st.mu.Lock()
	if h.epoch < st.epoch {
		st.mu.Unlock()
		c.ins.staleEpoch.Inc()
		env.Release()
		return out
	}
	if h.epoch > st.epoch {
		newIncarnation = true
		// New incarnation of the peer. Every epoch's stream starts at
		// sequence 1, so adopt from the beginning: if the first frames
		// were lost (or we joined late) the normal NACK path recovers
		// them from the sender's buffer, and history the buffer no longer
		// holds comes back as a RESET + upper-layer resync. Nothing is
		// ever skipped silently.
		c.clearStreamLocked(st)
		st.epoch = h.epoch
		st.next = 1
	}
	if h.seq > st.maxSeen {
		st.maxSeen = h.seq
	}
	switch {
	case h.seq < st.next:
		// Duplicate (fault-model dup, or a retransmit that crossed our
		// ack). Re-ack soon so the sender stops retransmitting.
		c.ins.dupSuppressed.Inc()
		st.ackDirty = true
		env.Release()
	case h.seq == st.next:
		env.Payload = h.payload
		out = append(out, env)
		st.next++
		st.sinceAck++
		for st.buffered > 0 {
			i := int(st.next % uint64(len(st.ring)))
			if !st.occ[i] {
				break
			}
			out = append(out, st.ring[i])
			st.ring[i] = transport.Envelope{}
			st.occ[i] = false
			st.buffered--
			st.next++
			st.sinceAck++
		}
		if st.buffered == 0 {
			st.gapSince = time.Time{}
		}
		st.ackWord.Store(packAck(st.epoch, st.next-1))
		if st.sinceAck >= c.cfg.AckEvery {
			ackNow, ackEpoch, ackSeq = true, st.epoch, st.next-1
			st.sinceAck = 0
			st.ackDirty = false
			st.lastAcked = st.next - 1
		} else {
			st.ackDirty = true
		}
	default: // gap: buffer out-of-order, arm the NACK timer
		if h.seq-st.next >= uint64(len(st.ring)) {
			// Beyond the reorder ring (we fell behind by more than one
			// window, e.g. rejoining after a shed). Drop, but keep the
			// NACK timer armed: the sender will answer with data or RESET.
			c.ins.reorderOverflow.Inc()
			env.Release()
		} else {
			i := int(h.seq % uint64(len(st.ring)))
			if st.occ[i] {
				c.ins.dupSuppressed.Inc()
				env.Release()
			} else {
				env.Payload = h.payload
				st.ring[i] = env
				st.occ[i] = true
				st.buffered++
			}
		}
		if st.gapSince.IsZero() {
			now := time.Now()
			st.gapSince = now
			st.nackBackoff = c.cfg.NackDelay
			st.nackAt = now.Add(st.nackBackoff)
		}
	}
	st.mu.Unlock()
	if newIncarnation {
		c.reviveOut(env.From)
	}
	if ackNow {
		c.sendAck(st, ackEpoch, ackSeq)
	}
	return out
}

// reviveOut treats a frame from a peer's NEW incarnation as liveness
// evidence for the outbound link: the process evidently restarted, so a
// shed deadline armed against its dead predecessor no longer measures
// anything real. Without this, a restart racing an almost-expired
// ShedAfter gets shed moments AFTER it rejoined — the upper layer then
// down-marks it, one retention prune runs without its watermark in the
// quorum, and history the rejoiner was seeded to fetch is collected
// group-wide before its first advert lands: a permanent wedge.
func (c *Conn) reviveOut(from string) {
	o := &c.out
	o.mu.Lock()
	if p := o.peers[from]; p != nil {
		now := time.Now()
		if p.shed {
			c.unshedLocked(p, now)
		} else {
			p.lastProgress = now
		}
	}
	o.mu.Unlock()
}

// clearStreamLocked releases buffered envelopes and resets gap/ack state.
// st.next and st.epoch are left to the caller.
func (c *Conn) clearStreamLocked(st *inStream) {
	for i := range st.ring {
		if st.occ[i] {
			st.ring[i].Release()
			st.ring[i] = transport.Envelope{}
			st.occ[i] = false
		}
	}
	st.buffered = 0
	st.maxSeen = 0
	st.sinceAck = 0
	st.lastAcked = 0
	st.ackDirty = false
	st.gapSince = time.Time{}
	st.nackAt = time.Time{}
	st.nackBackoff = 0
}

func (c *Conn) sendAck(st *inStream, epoch, ack uint64) {
	f := transport.NewFrame(2 + 2*binary.MaxVarintLen64)
	f.B = appendAck(f.B, epoch, ack)
	_ = transport.Multicast(c.inner, st.unicast[:], f)
	f.Release()
	c.ins.acksSent.Inc()
}

// applyAck folds a cumulative ack from peer into the send window. Any
// reliability traffic from a shed peer revives it (the link evidently
// works again); an unresponsive revenant is simply re-shed by ShedAfter.
func (c *Conn) applyAck(from string, epoch, ack uint64) {
	if epoch == 0 {
		return // placeholder vector entry: peer has not received us yet
	}
	if epoch != c.epoch {
		c.ins.staleEpoch.Inc()
		return
	}
	o := &c.out
	o.mu.Lock()
	p := o.peers[from]
	if p == nil {
		o.mu.Unlock()
		return
	}
	now := time.Now()
	if p.shed {
		c.unshedLocked(p, now)
	}
	if ack > p.acked {
		if max := o.next - 1; ack > max {
			ack = max
		}
		// RTT sample: the newly acked head's first-send time is still in
		// its ring slot (the floor cannot have passed this peer's own
		// ack). Retransmitted slots keep their original stamp, so loss
		// inflates the sample — the EWMA absorbs it, and an inflated RTT
		// under loss is the honest signal for a dashboard anyway.
		slot := &o.ring[ack%uint64(len(o.ring))]
		if slot.f != nil && slot.seq == ack && !slot.at.IsZero() {
			sample := now.Sub(slot.at)
			if sample > 0 {
				if p.rtt == 0 {
					p.rtt = sample
				} else {
					p.rtt = (7*p.rtt + sample) / 8
				}
				c.ins.linkRTT.With(from).Set(p.rtt.Microseconds())
			}
		}
		p.acked = ack
		p.lastProgress = now
		p.rto = c.cfg.RTO
		c.advanceFloorLocked()
	}
	o.mu.Unlock()
}

// advanceFloorLocked recomputes the all-live-peers ack floor, releasing
// retained frames it passes and waking window-stalled senders.
func (c *Conn) advanceFloorLocked() {
	o := &c.out
	newFloor := o.next - 1
	for _, p := range o.plist {
		if !p.shed && p.acked < newFloor {
			newFloor = p.acked
		}
	}
	if newFloor <= o.floor {
		return
	}
	for s := o.floor + 1; s <= newFloor; s++ {
		slot := &o.ring[s%uint64(len(o.ring))]
		if slot.f != nil && slot.seq == s {
			slot.f.Release()
			slot.f = nil
		}
	}
	o.floor = newFloor
	c.ins.outstanding.Set(int64(o.next - 1 - o.floor))
	o.cond.Broadcast()
}

// unshedLocked revives a shed peer at the current floor: retained frames
// catch it up via RTO retransmission, older history via RESET+resync.
func (c *Conn) unshedLocked(p *peerOut, now time.Time) {
	p.shed = false
	if p.acked < c.out.floor {
		p.acked = c.out.floor
	}
	p.lastProgress = now
	p.lastRetx = now
	p.rto = c.cfg.RTO
	c.ins.unsheds.Inc()
}

// shedLocked excludes p from the window and queues the OnSuspect notice.
func (c *Conn) shedLocked(p *peerOut) {
	if p.shed {
		return
	}
	p.shed = true
	c.ins.sheds.Inc()
	c.out.notices = append(c.out.notices, p.id)
	c.advanceFloorLocked()
}

// shedLaggardsLocked sheds every live peer pinning the window at the
// current floor (retransmit-buffer overflow policy).
func (c *Conn) shedLaggardsLocked(now time.Time) {
	o := &c.out
	floor := o.floor
	for _, p := range o.plist {
		if !p.shed && p.acked == floor {
			c.shedLocked(p)
		}
	}
}

// handleNack retransmits the requested sequences still in the buffer and
// answers requests below the floor with a RESET.
func (c *Conn) handleNack(from string, epoch uint64, seqs []uint64) {
	c.ins.nacksRecv.Inc()
	if epoch != c.epoch {
		c.ins.staleEpoch.Inc()
		return
	}
	o := &c.out
	o.mu.Lock()
	p := o.peers[from]
	if p == nil {
		o.mu.Unlock()
		return
	}
	now := time.Now()
	if p.shed {
		c.unshedLocked(p, now)
	}
	var frames [maxNackSeqs]*transport.Frame
	var fseqs [maxNackSeqs]uint64
	n := 0
	needReset := false
	for _, s := range seqs {
		if s >= o.next {
			continue // not sent yet; the peer decodes garbage? ignore
		}
		slot := &o.ring[s%uint64(len(o.ring))]
		if slot.f != nil && slot.seq == s {
			slot.f.Retain()
			frames[n] = slot.f
			fseqs[n] = s
			n++
		} else {
			needReset = true
		}
	}
	var resetNext uint64
	if needReset && now.Sub(p.lastReset) >= c.cfg.Tick {
		p.lastReset = now
		resetNext = o.floor + 1
	}
	o.mu.Unlock()
	for i := 0; i < n; i++ {
		_ = transport.Multicast(c.inner, p.unicast[:], frames[i])
		frames[i].Release()
		c.ins.retransmits.Inc()
		c.ins.linkRetx.With(from).Inc()
		c.cfg.Trace.Record(telemetry.EventRetransmit, c.self, from, fseqs[i], 0)
		c.cfg.Flight.Retransmit(from, fseqs[i])
	}
	if resetNext > 0 {
		c.sendReset(p, resetNext)
	}
}

func (c *Conn) sendReset(p *peerOut, next uint64) {
	f := transport.NewFrame(2 + 2*binary.MaxVarintLen64)
	f.B = appendReset(f.B, c.epoch, next)
	_ = transport.Multicast(c.inner, p.unicast[:], f)
	f.Release()
	c.ins.resetsSent.Inc()
}

// handleReset jumps the receiver past sequences the sender can no longer
// serve and reports the irrecoverable gap upward.
func (c *Conn) handleReset(from string, epoch, next uint64) {
	st := c.stream(from)
	var skipped uint64
	st.mu.Lock()
	if epoch < st.epoch {
		st.mu.Unlock()
		c.ins.staleEpoch.Inc()
		return
	}
	if epoch > st.epoch {
		c.clearStreamLocked(st)
		st.epoch = epoch
	}
	if next > st.next {
		skipped = next - st.next
		c.clearStreamLocked(st)
		st.next = next
		st.maxSeen = next - 1
		st.ackDirty = true // ack the new watermark so the sender's floor moves
		st.ackWord.Store(packAck(st.epoch, st.next-1))
	}
	st.mu.Unlock()
	if skipped > 0 {
		c.ins.resyncs.Inc()
		c.cfg.Trace.Record(telemetry.EventResync, c.self, from, next, int64(skipped))
		c.cfg.Flight.Resync(from, int(skipped))
		if c.cfg.OnResync != nil {
			c.cfg.OnResync(from)
		}
	}
}

// tickLoop is the background pump: delayed acks, NACK scans, sender RTO,
// shed deadlines, and callback delivery.
func (c *Conn) tickLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		c.flushAcks()
		c.scanNacks(now)
		c.pumpSender(now)
		c.drainNotices()
	}
}

// flushAcks pushes standalone acks for streams whose watermark advanced
// since the last ack (delayed-ack coalescing) or that saw a duplicate.
func (c *Conn) flushAcks() {
	c.streamsMu.RLock()
	list := c.streamList
	c.streamsMu.RUnlock()
	for _, st := range list {
		st.mu.Lock()
		send := st.epoch != 0 && (st.ackDirty || st.next-1 > st.lastAcked)
		var epoch, ack uint64
		if send {
			epoch, ack = st.epoch, st.next-1
			st.ackDirty = false
			st.lastAcked = ack
			st.sinceAck = 0
		}
		st.mu.Unlock()
		if send {
			c.sendAck(st, epoch, ack)
		}
	}
}

// scanNacks sends due NACKs for persistent gaps, with doubling jittered
// backoff per stream.
func (c *Conn) scanNacks(now time.Time) {
	c.streamsMu.RLock()
	list := c.streamList
	c.streamsMu.RUnlock()
	for _, st := range list {
		var seqs [maxNackSeqs]uint64
		n := 0
		var epoch uint64
		st.mu.Lock()
		if !st.gapSince.IsZero() && !now.Before(st.nackAt) {
			r := uint64(len(st.ring))
			for s := st.next; s <= st.maxSeen && n < maxNackSeqs; s++ {
				if s-st.next < r && st.occ[int(s%r)] {
					continue
				}
				seqs[n] = s
				n++
			}
			if n == 0 {
				st.gapSince = time.Time{} // gap closed between scans
			} else {
				epoch = st.epoch
				st.nackBackoff = minDuration(2*st.nackBackoff, c.cfg.BackoffMax)
				st.nackAt = now.Add(c.jitter(st.nackBackoff))
			}
		}
		st.mu.Unlock()
		if n > 0 {
			f := transport.NewFrame(2 + (n+2)*binary.MaxVarintLen64)
			f.B = appendNack(f.B, epoch, seqs[:n])
			_ = transport.Multicast(c.inner, st.unicast[:], f)
			f.Release()
			c.ins.nacksSent.Inc()
			c.cfg.Trace.Record(telemetry.EventNack, c.self, st.id, seqs[0], int64(n))
			c.cfg.Flight.Nack(st.id, seqs[0], n)
		}
	}
}

// rtoBurst caps frames re-sent per peer per RTO firing.
const rtoBurst = 16

// pumpSender covers tail loss (RTO retransmission toward laggards) and
// shed deadlines, and wakes any window-stalled sender to re-check its
// deadline.
func (c *Conn) pumpSender(now time.Time) {
	o := &c.out
	var frames [rtoBurst]*transport.Frame
	var fseqs [rtoBurst]uint64
	o.mu.Lock()
	o.cond.Broadcast()
	top := o.next - 1
	n := 0
	var target *peerOut
	for _, p := range o.plist {
		if p.shed {
			continue
		}
		if p.acked >= top {
			p.lastProgress = now // nothing outstanding: the peer is current
			continue
		}
		if now.Sub(p.lastProgress) > c.cfg.ShedAfter {
			c.shedLocked(p)
			continue
		}
		if target == nil && now.Sub(p.lastRetx) >= p.rto && now.Sub(p.lastProgress) >= p.rto {
			for s := p.acked + 1; s <= top && n < rtoBurst; s++ {
				slot := &o.ring[s%uint64(len(o.ring))]
				if slot.f != nil && slot.seq == s {
					slot.f.Retain()
					frames[n] = slot.f
					fseqs[n] = s
					n++
				}
			}
			if n > 0 {
				target = p
				p.lastRetx = now
				p.rto = minDuration(2*p.rto, c.cfg.BackoffMax) + c.jitter(c.cfg.Tick)
			}
		}
	}
	o.mu.Unlock()
	for i := 0; i < n; i++ {
		_ = transport.Multicast(c.inner, target.unicast[:], frames[i])
		frames[i].Release()
		c.ins.retransmits.Inc()
		c.ins.linkRetx.With(target.id).Inc()
		c.cfg.Trace.Record(telemetry.EventRetransmit, c.self, target.id, fseqs[i], 0)
		c.cfg.Flight.Retransmit(target.id, fseqs[i])
	}
}

// drainNotices delivers queued OnSuspect callbacks outside all locks.
func (c *Conn) drainNotices() {
	o := &c.out
	o.mu.Lock()
	notices := o.notices
	o.notices = nil
	o.mu.Unlock()
	for _, id := range notices {
		c.cfg.Trace.Record(telemetry.EventShed, c.self, id, 0, 0)
		c.cfg.Flight.Shed(id)
		if c.cfg.OnSuspect != nil {
			c.cfg.OnSuspect(id)
		}
	}
}

// jitter spreads d by ±12.5% so synchronized peers do not retransmit in
// lockstep. Ticker-goroutine only (the RNG is unsynchronized).
func (c *Conn) jitter(d time.Duration) time.Duration {
	q := int64(d) / 4
	if q <= 0 {
		return d
	}
	return d - time.Duration(q/2) + time.Duration(c.rng.Int63n(q))
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// Close stops the ticker, releases retained frames and buffered
// envelopes, and closes the inner connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.out.mu.Lock()
		c.out.closed = true
		c.out.cond.Broadcast()
		for i := range c.out.ring {
			if c.out.ring[i].f != nil {
				c.out.ring[i].f.Release()
				c.out.ring[i].f = nil
			}
		}
		c.out.mu.Unlock()
		c.closeErr = c.inner.Close()
		c.wg.Wait()
		c.streamsMu.RLock()
		list := c.streamList
		c.streamsMu.RUnlock()
		for _, st := range list {
			st.mu.Lock()
			c.clearStreamLocked(st)
			st.mu.Unlock()
		}
	})
	return c.closeErr
}
