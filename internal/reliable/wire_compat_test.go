package reliable

import (
	"bytes"
	"testing"

	"causalshare/internal/transport"
)

// TestWireCompatPassthrough proves the deployability claim on the wire
// itself: frames without reliability headers cross between a wrapped and
// an *unwrapped* endpoint byte-identical in both directions. Only
// full-group broadcasts between wrapped endpoints ever grow a header.
func TestWireCompatPassthrough(t *testing.T) {
	net := transport.NewChanNet(transport.FaultModel{})
	defer net.Close()
	innerA, _ := net.Attach("a")
	rawB, _ := net.Attach("b") // never wrapped: a legacy peer
	a := Wrap(innerA, []string{"b"}, fastConfig())
	defer a.Close()
	defer rawB.Close()

	// Frames shaped like every existing layer's traffic: causal kinds
	// (leading 1..8), heartbeats (ASCII id), and arbitrary app bytes.
	frames := [][]byte{
		{1, 0x10, 0x20, 0x30},           // causal data
		{8, 0xAA},                       // causal sync response
		[]byte("a|heartbeat|7"),         // heartbeat-shaped
		{0x00},                          // degenerate single byte
		bytes.Repeat([]byte{0x7F}, 300), // larger than any header
	}

	// Wrapped sender → legacy receiver, via unicast Send.
	for _, want := range frames {
		if err := a.Send("b", want); err != nil {
			t.Fatalf("Send: %v", err)
		}
		env, err := rawB.Recv()
		if err != nil {
			t.Fatalf("raw Recv: %v", err)
		}
		if !bytes.Equal(env.Payload, want) {
			t.Fatalf("wrapped→legacy mutated bytes: got % x want % x", env.Payload, want)
		}
		env.Release()
	}

	// Wrapped sender → legacy receiver, via subset SendFrame (not the
	// full peer set semantics: a's peer set is exactly ["b"], so to force
	// passthrough use Send above; here prove a full-group SendFrame is
	// the ONLY path that grows a header).
	f := transport.NewFrame(4)
	f.B = append(f.B, 1, 2, 3, 4)
	if err := a.SendFrame([]string{"b"}, f); err != nil {
		t.Fatalf("SendFrame: %v", err)
	}
	f.Release()
	env, err := rawB.Recv()
	if err != nil {
		t.Fatalf("raw Recv: %v", err)
	}
	if !isReliable(env.Payload) {
		t.Fatalf("full-group broadcast did not grow a reliability header: % x", env.Payload)
	}
	env.Release()

	// Legacy sender → wrapped receiver: bytes arrive untouched.
	for _, want := range frames {
		if err := rawB.Send("a", want); err != nil {
			t.Fatalf("raw Send: %v", err)
		}
		env, err := a.Recv()
		if err != nil {
			t.Fatalf("wrapped Recv: %v", err)
		}
		if env.From != "b" || !bytes.Equal(env.Payload, want) {
			t.Fatalf("legacy→wrapped mutated bytes: got % x want % x", env.Payload, want)
		}
		env.Release()
	}
}
