package reliable

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format. Every reliability frame starts with a magic byte no other
// layer emits: causal/total frames start with small kind tags (1..8) and
// heartbeat frames with ASCII member ids, so sniffing one byte cleanly
// separates sequenced traffic from passthrough. Frames that do not start
// with the magic byte cross the sublayer byte-identical (the compat test
// proves it), which is what keeps the wrapper deployable under existing
// peers: old frames are simply never sequenced.
//
//	DATA  [0xE3][1][epoch][seq][n]{[idLen][id][epoch][ack]}×n [payload…]
//	ACK   [0xE3][2][epoch][ack]
//	NACK  [0xE3][3][epoch][n][first]{[delta]}×(n-1)
//	RESET [0xE3][4][epoch][next]
//
// All integers are uvarints. DATA carries the broadcast-stream sequence
// number plus a piggybacked cumulative-ack vector: one entry per peer
// stream the sender has received from, keyed by origin id. The vector is
// identical for every destination — that is what preserves the
// encode-once zero-copy fan-out — and each receiver reads only the entry
// keyed by its own id. NACK names explicitly missing sequences as a
// first value plus positive deltas. RESET tells the receiver the oldest
// sequence the sender can still serve; everything older is only
// recoverable by an application-level resync.
const (
	magicByte byte = 0xE3

	kindData  byte = 1
	kindAck   byte = 2
	kindNack  byte = 3
	kindReset byte = 4
)

// Decode hardening bounds. Real encoders stay far below these; the fuzz
// target proves arbitrary bytes cannot make the decoder allocate huge
// buffers or loop unboundedly.
const (
	maxAckEntries = 1 << 12
	maxPeerIDLen  = 1 << 8
	// maxNackSeqs caps the sequences one NACK may carry; wider gaps are
	// repaired across multiple backoff rounds (or by the sender's RTO).
	maxNackSeqs = 64
)

var errTruncated = errors.New("reliable: truncated frame")

// isReliable reports whether b is a reliability frame (vs passthrough).
func isReliable(b []byte) bool { return len(b) >= 2 && b[0] == magicByte }

// appendDataPrefix starts a DATA frame: magic, kind, epoch, seq.
func appendDataPrefix(b []byte, epoch, seq uint64) []byte {
	b = append(b, magicByte, kindData)
	b = binary.AppendUvarint(b, epoch)
	return binary.AppendUvarint(b, seq)
}

// appendAckEntry appends one ack-vector entry for the stream named id.
func appendAckEntry(b []byte, id string, epoch, ack uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(id)))
	b = append(b, id...)
	b = binary.AppendUvarint(b, epoch)
	return binary.AppendUvarint(b, ack)
}

// dataHeader is a decoded DATA frame. payload aliases the input buffer.
type dataHeader struct {
	epoch, seq uint64
	// ackEpoch/ackSeq are the vector entry keyed by the decoding member's
	// own id; ackOK reports whether such an entry was present.
	ackEpoch, ackSeq uint64
	ackOK            bool
	payload          []byte
}

// decodeData parses a DATA frame body (b starts after magic+kind),
// extracting in one allocation-free pass the stream header, the ack
// vector entry keyed self, and the payload.
func decodeData(b []byte, self []byte) (dataHeader, error) {
	var h dataHeader
	var used int
	if h.epoch, used = binary.Uvarint(b); used <= 0 {
		return h, fmt.Errorf("reliable: data epoch: %w", errTruncated)
	}
	b = b[used:]
	if h.seq, used = binary.Uvarint(b); used <= 0 || h.seq == 0 {
		return h, fmt.Errorf("reliable: data seq: %w", errTruncated)
	}
	b = b[used:]
	n, used := binary.Uvarint(b)
	if used <= 0 || n > maxAckEntries {
		return h, fmt.Errorf("reliable: ack vector count: %w", errTruncated)
	}
	b = b[used:]
	for i := uint64(0); i < n; i++ {
		idLen, used := binary.Uvarint(b)
		if used <= 0 || idLen > maxPeerIDLen || uint64(len(b)-used) < idLen {
			return h, fmt.Errorf("reliable: ack vector id: %w", errTruncated)
		}
		id := b[used : used+int(idLen)]
		b = b[used+int(idLen):]
		epoch, used := binary.Uvarint(b)
		if used <= 0 {
			return h, fmt.Errorf("reliable: ack vector epoch: %w", errTruncated)
		}
		b = b[used:]
		ack, used := binary.Uvarint(b)
		if used <= 0 {
			return h, fmt.Errorf("reliable: ack vector ack: %w", errTruncated)
		}
		b = b[used:]
		if !h.ackOK && bytesEqual(id, self) {
			h.ackEpoch, h.ackSeq, h.ackOK = epoch, ack, true
		}
	}
	h.payload = b
	return h, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// appendAck encodes a standalone cumulative ACK for one stream.
func appendAck(b []byte, epoch, ack uint64) []byte {
	b = append(b, magicByte, kindAck)
	b = binary.AppendUvarint(b, epoch)
	return binary.AppendUvarint(b, ack)
}

func decodeAck(b []byte) (epoch, ack uint64, err error) {
	var used int
	if epoch, used = binary.Uvarint(b); used <= 0 {
		return 0, 0, fmt.Errorf("reliable: ack epoch: %w", errTruncated)
	}
	b = b[used:]
	if ack, used = binary.Uvarint(b); used <= 0 {
		return 0, 0, fmt.Errorf("reliable: ack seq: %w", errTruncated)
	}
	if len(b) != used {
		return 0, 0, fmt.Errorf("reliable: %d stray ack bytes", len(b)-used)
	}
	return epoch, ack, nil
}

// appendNack encodes the explicitly missing sequences, which must be
// strictly increasing and non-empty.
func appendNack(b []byte, epoch uint64, seqs []uint64) []byte {
	b = append(b, magicByte, kindNack)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, uint64(len(seqs)))
	prev := uint64(0)
	for i, s := range seqs {
		if i == 0 {
			b = binary.AppendUvarint(b, s)
		} else {
			b = binary.AppendUvarint(b, s-prev)
		}
		prev = s
	}
	return b
}

// decodeNack parses missing sequences into buf (len ≥ maxNackSeqs).
func decodeNack(b []byte, buf []uint64) (epoch uint64, seqs []uint64, err error) {
	var used int
	if epoch, used = binary.Uvarint(b); used <= 0 {
		return 0, nil, fmt.Errorf("reliable: nack epoch: %w", errTruncated)
	}
	b = b[used:]
	n, used := binary.Uvarint(b)
	if used <= 0 || n == 0 || n > maxNackSeqs {
		return 0, nil, fmt.Errorf("reliable: nack count: %w", errTruncated)
	}
	b = b[used:]
	seqs = buf[:0]
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		v, used := binary.Uvarint(b)
		if used <= 0 {
			return 0, nil, fmt.Errorf("reliable: nack seq %d: %w", i, errTruncated)
		}
		b = b[used:]
		if i == 0 {
			prev = v
		} else {
			if v == 0 || prev+v < prev {
				return 0, nil, fmt.Errorf("reliable: nack delta %d not increasing", i)
			}
			prev += v
		}
		if prev == 0 {
			return 0, nil, errors.New("reliable: nack for seq 0")
		}
		seqs = append(seqs, prev)
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("reliable: %d stray nack bytes", len(b))
	}
	return epoch, seqs, nil
}

// appendReset encodes a RESET: the receiver should jump its next-expected
// sequence to next and recover skipped state above the sublayer.
func appendReset(b []byte, epoch, next uint64) []byte {
	b = append(b, magicByte, kindReset)
	b = binary.AppendUvarint(b, epoch)
	return binary.AppendUvarint(b, next)
}

func decodeReset(b []byte) (epoch, next uint64, err error) {
	var used int
	if epoch, used = binary.Uvarint(b); used <= 0 {
		return 0, 0, fmt.Errorf("reliable: reset epoch: %w", errTruncated)
	}
	b = b[used:]
	if next, used = binary.Uvarint(b); used <= 0 || next == 0 {
		return 0, 0, fmt.Errorf("reliable: reset next: %w", errTruncated)
	}
	if len(b) != used {
		return 0, 0, fmt.Errorf("reliable: %d stray reset bytes", len(b)-used)
	}
	return epoch, next, nil
}
