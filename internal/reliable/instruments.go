package reliable

import "causalshare/internal/telemetry"

// instruments groups the reliability sublayer's metrics, built from a
// possibly-nil registry so the hot path updates them unconditionally.
type instruments struct {
	dataSent        *telemetry.Counter
	retransmits     *telemetry.Counter
	nacksSent       *telemetry.Counter
	nacksRecv       *telemetry.Counter
	acksSent        *telemetry.Counter
	dupSuppressed   *telemetry.Counter
	windowStalls    *telemetry.Counter
	sheds           *telemetry.Counter
	unsheds         *telemetry.Counter
	resyncs         *telemetry.Counter
	resetsSent      *telemetry.Counter
	reorderOverflow *telemetry.Counter
	staleEpoch      *telemetry.Counter
	decodeErrors    *telemetry.Counter
	passthrough     *telemetry.Counter
	outstanding     *telemetry.Gauge

	// Per-link families (observability plane): smoothed RTT from ack
	// progress, retransmits toward each peer. Window occupancy and shed
	// state register as snapshot-time funcs in Wrap.
	linkRTT  *telemetry.GaugeFamily
	linkRetx *telemetry.CounterFamily
}

func newInstruments(reg *telemetry.Registry) *instruments {
	return &instruments{
		dataSent: reg.Counter("reliable_data_total",
			"Sequenced broadcast frames sent through the reliability sublayer."),
		retransmits: reg.Counter("reliable_retransmits_total",
			"Frames re-sent from the retransmit buffer (NACK-driven or RTO)."),
		nacksSent: reg.Counter("reliable_nacks_sent_total",
			"Gap-repair NACK frames sent."),
		nacksRecv: reg.Counter("reliable_nacks_recv_total",
			"NACK frames received and serviced."),
		acksSent: reg.Counter("reliable_acks_sent_total",
			"Standalone cumulative ACK frames sent (piggybacked acks are free)."),
		dupSuppressed: reg.Counter("reliable_dup_suppressed_total",
			"Frames discarded as link-level duplicates (already delivered or buffered)."),
		windowStalls: reg.Counter("reliable_window_stalls_total",
			"Sends that blocked because the retransmit window was full."),
		sheds: reg.Counter("reliable_sheds_total",
			"Peers shed to the Suspect state (buffer overflow or unresponsive)."),
		unsheds: reg.Counter("reliable_unsheds_total",
			"Shed peers revived by fresh reliability traffic."),
		resyncs: reg.Counter("reliable_resyncs_total",
			"RESET jumps that skipped irrecoverable sequences and triggered an upper-layer resync."),
		resetsSent: reg.Counter("reliable_resets_sent_total",
			"RESET frames sent to peers requesting history the buffer no longer holds."),
		reorderOverflow: reg.Counter("reliable_reorder_overflow_total",
			"Out-of-order frames discarded because the reorder buffer was full."),
		staleEpoch: reg.Counter("reliable_stale_epoch_total",
			"Frames discarded as belonging to an older stream incarnation."),
		decodeErrors: reg.Counter("reliable_decode_errors_total",
			"Reliability frames that failed to decode (delivered as passthrough)."),
		passthrough: reg.Counter("reliable_passthrough_total",
			"Frames crossing the sublayer unsequenced (unicasts, foreign traffic)."),
		outstanding: reg.Gauge("reliable_outstanding",
			"Broadcast frames sent but not yet acked by every live peer."),
		linkRTT: reg.GaugeFamily("reliable_link_rtt_us",
			"Smoothed (EWMA 7/8) send-to-cumulative-ack round trip per link, microseconds.",
			"peer"),
		linkRetx: reg.CounterFamily("reliable_link_retransmits_total",
			"Frames re-sent toward the peer (NACK-driven or RTO).",
			"peer"),
	}
}
