package reliable

import (
	"bytes"
	"testing"
)

func TestDataRoundTrip(t *testing.T) {
	b := appendDataPrefix(nil, 7, 42)
	// Vector with three entries; the decoder must pick out "me".
	b = append(b, 3)
	b = appendAckEntry(b, "other", 5, 100)
	b = appendAckEntry(b, "me", 7, 41)
	b = appendAckEntry(b, "late", 0, 0)
	payloadStart := len(b)
	b = append(b, []byte("hello causal world")...)
	if !isReliable(b) {
		t.Fatal("encoded DATA not recognized as reliable")
	}
	h, err := decodeData(b[2:], []byte("me"))
	if err != nil {
		t.Fatalf("decodeData: %v", err)
	}
	if h.epoch != 7 || h.seq != 42 {
		t.Fatalf("header = (%d,%d), want (7,42)", h.epoch, h.seq)
	}
	if !h.ackOK || h.ackEpoch != 7 || h.ackSeq != 41 {
		t.Fatalf("ack entry = (%v,%d,%d), want (true,7,41)", h.ackOK, h.ackEpoch, h.ackSeq)
	}
	if !bytes.Equal(h.payload, b[payloadStart:]) {
		t.Fatalf("payload = %q", h.payload)
	}
	// A member not in the vector sees no ack.
	h2, err := decodeData(b[2:], []byte("stranger"))
	if err != nil {
		t.Fatalf("decodeData(stranger): %v", err)
	}
	if h2.ackOK {
		t.Fatal("stranger found an ack entry")
	}
}

func TestAckNackResetRoundTrip(t *testing.T) {
	b := appendAck(nil, 3, 99)
	if e, a, err := decodeAck(b[2:]); err != nil || e != 3 || a != 99 {
		t.Fatalf("ack round trip = (%d,%d,%v)", e, a, err)
	}
	want := []uint64{5, 6, 9, 1000}
	b = appendNack(nil, 4, want)
	var buf [maxNackSeqs]uint64
	e, seqs, err := decodeNack(b[2:], buf[:0])
	if err != nil || e != 4 {
		t.Fatalf("nack round trip: epoch=%d err=%v", e, err)
	}
	if len(seqs) != len(want) {
		t.Fatalf("nack seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("nack seqs = %v, want %v", seqs, want)
		}
	}
	b = appendReset(nil, 9, 1234)
	if e, n, err := decodeReset(b[2:]); err != nil || e != 9 || n != 1234 {
		t.Fatalf("reset round trip = (%d,%d,%v)", e, n, err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty data":       nil,
		"data seq zero":    appendDataPrefix(nil, 1, 1)[2:4], // truncated after epoch
		"ack stray":        append(appendAck(nil, 1, 2), 0xFF)[2:],
		"nack empty":       appendNack(nil, 1, []uint64{})[2:],
		"nack zero delta":  {1, 2, 5, 0}, // epoch=1 n=2 first=5 delta=0
		"nack seq zero":    {1, 1, 0},    // epoch=1 n=1 first=0
		"reset next zero":  {1, 0},
		"reset stray":      append(appendReset(nil, 1, 2), 0xAB)[2:],
		"huge ack entries": {1, 1, 0xFF, 0xFF, 0xFF, 0x7F}, // count > maxAckEntries
	}
	for name, body := range cases {
		name, body := name, body
		t.Run(name, func(t *testing.T) {
			switch {
			case name == "ack stray":
				if _, _, err := decodeAck(body); err == nil {
					t.Fatal("decodeAck accepted malformed input")
				}
			case name == "reset next zero" || name == "reset stray":
				if _, _, err := decodeReset(body); err == nil {
					t.Fatal("decodeReset accepted malformed input")
				}
			case name == "nack empty" || name == "nack zero delta" || name == "nack seq zero":
				var buf [maxNackSeqs]uint64
				if _, _, err := decodeNack(body, buf[:0]); err == nil {
					t.Fatal("decodeNack accepted malformed input")
				}
			default:
				if _, err := decodeData(body, []byte("me")); err == nil {
					t.Fatal("decodeData accepted malformed input")
				}
			}
		})
	}
}

// FuzzReliableHeaderDecode throws arbitrary bytes at every decoder and
// checks the hardening bounds hold: no panics, no oversized outputs, and
// payload aliasing stays inside the input buffer.
func FuzzReliableHeaderDecode(f *testing.F) {
	f.Add(appendDataPrefix(nil, 1, 1))
	seed := appendDataPrefix(nil, 7, 42)
	seed = append(seed, 1)
	seed = appendAckEntry(seed, "me", 7, 41)
	seed = append(seed, []byte("payload")...)
	f.Add(seed)
	f.Add(appendAck(nil, 3, 99))
	f.Add(appendNack(nil, 4, []uint64{5, 6, 9}))
	f.Add(appendReset(nil, 9, 1234))
	f.Add([]byte{magicByte, kindData})
	f.Add([]byte{magicByte, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		if !isReliable(b) {
			return
		}
		body := b[2:]
		switch b[1] {
		case kindData:
			h, err := decodeData(body, []byte("me"))
			if err == nil {
				if h.seq == 0 {
					t.Fatal("decoded DATA with seq 0")
				}
				if len(h.payload) > len(body) {
					t.Fatal("payload longer than input")
				}
			}
		case kindAck:
			_, _, _ = decodeAck(body)
		case kindNack:
			var buf [maxNackSeqs]uint64
			_, seqs, err := decodeNack(body, buf[:0])
			if err == nil {
				if len(seqs) == 0 || len(seqs) > maxNackSeqs {
					t.Fatalf("decoded %d nack seqs", len(seqs))
				}
				for i := 1; i < len(seqs); i++ {
					if seqs[i] <= seqs[i-1] {
						t.Fatal("nack seqs not strictly increasing")
					}
				}
				if seqs[0] == 0 {
					t.Fatal("nack for seq 0")
				}
			}
		case kindReset:
			if _, next, err := decodeReset(body); err == nil && next == 0 {
				t.Fatal("decoded RESET with next 0")
			}
		}
	})
}
