package experiments

import (
	"fmt"
	"time"

	"causalshare/internal/core"
	"causalshare/internal/message"
	"causalshare/internal/shareddata"
	"causalshare/internal/sim"
)

// ms converts a duration in milliseconds to virtual time.
func ms(v float64) sim.Time { return sim.Time(v * float64(time.Millisecond)) }

// defaultNet is the latency model most experiments share: a LAN-ish 1–5ms
// uniform latency, enough jitter to reorder frames.
func defaultNet() sim.NetModel {
	return sim.NetModel{MinLatency: ms(1), MaxLatency: ms(5)}
}

// replicaSet attaches one core.Replica (counter state) per simulated
// member and records stable-point times for read-latency analysis.
type replicaSet struct {
	replicas []*core.Replica
	// stableTimes[m] lists virtual times of member m's stable points.
	stableTimes [][]sim.Time
	s           *sim.Sim
}

func newReplicaSet(s *sim.Sim, n int) (*replicaSet, error) {
	rs := &replicaSet{s: s, stableTimes: make([][]sim.Time, n)}
	for i := 0; i < n; i++ {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    sim.MemberID(i),
			Initial: shareddata.NewCounter(0),
			Apply:   shareddata.ApplyCounter,
		})
		if err != nil {
			return nil, err
		}
		rs.replicas = append(rs.replicas, rep)
	}
	return rs, nil
}

// deliver is the sim.DeliverFunc feeding the replicas.
func (rs *replicaSet) deliver(member int, m message.Message, at sim.Time) {
	before := rs.replicas[member].Cycle()
	rs.replicas[member].Deliver(m)
	if rs.replicas[member].Cycle() != before {
		rs.stableTimes[member] = append(rs.stableTimes[member], at)
	}
}

// histories exposes stable-point histories for auditing.
func (rs *replicaSet) histories() map[string][]core.StablePoint {
	out := make(map[string][]core.StablePoint, len(rs.replicas))
	for _, r := range rs.replicas {
		out[r.Self()] = r.StablePoints()
	}
	return out
}

// readLatency computes, for a read arriving at member m at time t, the
// wait until that member's next stable point (deferred-read latency).
// Reads arriving after the last stable point are reported against it
// (latency measured to the final point; callers schedule reads well
// inside the run to avoid censoring).
func (rs *replicaSet) readLatency(member int, t sim.Time) (sim.Time, bool) {
	for _, st := range rs.stableTimes[member] {
		if st >= t {
			return st - t, true
		}
	}
	return 0, false
}

// composerShim pairs a composer-only front-end with the member it is
// co-located with.
type composerShim struct {
	fe     *core.FrontEnd
	member int
}

// newCoreComposer wraps core.NewComposer for the experiment runners.
func newCoreComposer(origin string) (*core.FrontEnd, error) {
	return core.NewComposer(origin)
}

// counterWorkload is the §6.1 operation mix: commutative inc/dec with
// probability frac, non-commutative set otherwise, issued by one
// front-end per client member through composers (so OccursAfter
// predicates follow the paper's client() skeleton exactly).
type counterWorkload struct {
	// Ops is the total operation count.
	Ops int
	// Frac is the commutative fraction f (0..1).
	Frac float64
	// Clients is the number of issuing members (ids 0..Clients-1).
	Clients int
	// Gap is the virtual time between consecutive operations.
	Gap sim.Time
}

// drive schedules the workload onto a causal cluster, returning an error
// only for impossible configurations. Submission alternates over clients;
// each client's composer chains its own cycle structure, and observes
// other clients' closers via a shared observation hook so cycles weave.
func (w counterWorkload) driveCausal(s *sim.Sim, cluster *sim.CausalCluster) error {
	if w.Clients < 1 || w.Clients > cluster.Size() {
		return fmt.Errorf("experiments: %d clients for %d members", w.Clients, cluster.Size())
	}
	composers := make([]*core.FrontEnd, w.Clients)
	for i := range composers {
		fe, err := core.NewComposer(sim.MemberID(i) + "~cli")
		if err != nil {
			return err
		}
		composers[i] = fe
	}
	rng := s.Rand()
	for k := 0; k < w.Ops; k++ {
		k := k
		client := k % w.Clients
		commutative := rng.Float64() < w.Frac
		s.At(sim.Time(k)*w.Gap, func() {
			fe := composers[client]
			var (
				m   message.Message
				err error
			)
			if commutative {
				op := shareddata.Inc()
				m, err = fe.Compose(op.Op, op.Kind, op.Body)
			} else {
				op := shareddata.Set(int64(k))
				m, err = fe.Compose(op.Op, op.Kind, op.Body)
			}
			if err != nil {
				return
			}
			// Other clients learn of this message when it is broadcast;
			// the simulator's synchronous submission path makes the
			// observation immediate, which matches co-located front-ends.
			for i, other := range composers {
				if i != client {
					other.Observe(m)
				}
			}
			cluster.Broadcast(client, m)
		})
	}
	return nil
}

// driveTotal schedules the same mix through a total-order cluster: every
// operation (commutative or not) pays for total ordering — the
// traditional approach E1/E2 compare against.
func (w counterWorkload) driveTotal(s *sim.Sim, cluster *sim.TotalCluster) error {
	if w.Clients < 1 {
		return fmt.Errorf("experiments: no clients")
	}
	rng := s.Rand()
	for k := 0; k < w.Ops; k++ {
		k := k
		client := k % w.Clients
		commutative := rng.Float64() < w.Frac
		s.At(sim.Time(k)*w.Gap, func() {
			op := shareddata.Set(int64(k))
			kind := message.KindNonCommutative
			name := op.Op
			body := op.Body
			if commutative {
				inc := shareddata.Inc()
				name, kind, body = inc.Op, inc.Kind, inc.Body
			}
			cluster.ASend(client, message.Message{
				Label: message.Label{Origin: sim.MemberID(client) + "~tw", Seq: uint64(k + 1)},
				Kind:  kind,
				Op:    name,
				Body:  body,
			})
		})
	}
	return nil
}
