package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// E15Config parameterizes the metadata-scaling experiment.
type E15Config struct {
	// Engines are the causal engines to sweep (cbcast, osend, pccast).
	Engines []string
	// Sizes are the group sizes n.
	Sizes []int
	// Rounds is the number of all-to-all rounds: in every round each of
	// the n members broadcasts one message, and rounds are barriered so
	// round r+1 is causally after every round-r message. The barrier is
	// what makes the workload adversarial for explicit metadata: CBCast
	// clocks carry one entry per member that has ever sent, and OSend's
	// round-r OccursAfter predicate names all n−1 round-(r−1) labels.
	Rounds int
	// PCCastRounds, when set, caps the rounds used for the pccast rows at
	// larger sizes: the flood ships n·(n−1) frames per message, so the
	// biggest sizes pay the budget in frames rather than rounds. Zero
	// means use Rounds everywhere.
	PCCastRounds int
	// Timeout bounds each row's convergence wait.
	Timeout time.Duration
}

// DefaultE15 returns the reproduction parameters.
func DefaultE15() E15Config {
	return E15Config{
		Engines:      []string{"cbcast", "osend", "pccast"},
		Sizes:        []int{4, 16, 64, 256},
		Rounds:       2,
		PCCastRounds: 1,
		Timeout:      120 * time.Second,
	}
}

// RunE15 sweeps group size over the live stack for all three causal
// engines and measures the ordering metadata each one puts on the wire.
// The comparison PC-broadcast [Nédelec, Molli & Mostéfaoui] is built for:
// vector clocks (CBCast) and dependency lists (OSend, under an all-to-all
// workload) grow O(n) per frame, while the PC header stays constant-size
// at every n — causal order is carried by the per-link FIFO streams, not
// by per-message state. The price appears in the frames/msg column: the
// forward-on-first-receipt flood ships n·(n−1) frames per message where
// the clocked engines ship n−1.
func RunE15(cfg E15Config) Table {
	t := Table{
		ID:    "E15",
		Title: "ordering metadata vs group size (CBCast vs OSend vs PCCast)",
		Claim: "constant-size wire metadata suffices for causal broadcast over reliable FIFO links: per-frame ordering cost is flat in n for PC-cast and Θ(n) for vector clocks and all-to-all dependency lists",
		Columns: []string{
			"n", "engine", "msgs", "frames/msg", "meta B/frame", "meta B/msg", "wall ms", "converged",
		},
	}
	var flat, linear []point15
	for _, n := range cfg.Sizes {
		for _, engine := range cfg.Engines {
			rounds := cfg.Rounds
			if engine == "pccast" && cfg.PCCastRounds > 0 && cfg.PCCastRounds < rounds {
				rounds = cfg.PCCastRounds
			}
			row, bpf := runScaleRow(engine, n, rounds, cfg.Timeout)
			t.Rows = append(t.Rows, row)
			p := point15{n: n, engine: engine, bpf: bpf}
			if engine == "pccast" {
				flat = append(flat, p)
			} else {
				linear = append(linear, p)
			}
		}
	}
	t.Notes = scaleNotes(flat, linear)
	return t
}

// runScaleRow runs one (engine, n) cell and returns the table row plus
// the measured metadata bytes per frame.
func runScaleRow(engine string, n, rounds int, timeout time.Duration) ([]string, float64) {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%03d", i)
	}
	grp := group.MustNew("e15", ids)
	reg := telemetry.NewRegistry()
	net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
	defer func() { _ = net.Close() }()

	var delivered atomic.Uint64
	engines := make([]causal.Broadcaster, 0, n)
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			return scaleErrorRow(engine, n, err), 0
		}
		eng, err := newScaleEngine(engine, id, grp, conn, func(message.Message) { delivered.Add(1) }, reg)
		if err != nil {
			return scaleErrorRow(engine, n, err), 0
		}
		engines = append(engines, eng)
	}

	msgs := n * rounds
	start := time.Now()
	deadline := start.Add(timeout)
	converged := true
	// prev holds the previous round's labels: the OSend rows declare them
	// as the OccursAfter predicate (all-to-all causality, n−1 deps per
	// message); the clocked and FIFO engines carry the same causality
	// implicitly, since the barrier means every round-r send happens
	// after its sender delivered all of round r−1.
	var prev []message.Label
	seq := uint64(0)
	for r := 0; r < rounds && converged; r++ {
		seq++
		labels := make([]message.Label, n)
		for i, id := range ids {
			m := message.Message{
				Label: message.Label{Origin: id, Seq: seq},
				Kind:  message.KindCommutative,
				Op:    "inc",
			}
			if engine == "osend" && len(prev) > 0 {
				m.Deps = message.After(prev...)
			}
			labels[i] = m.Label
			if err := engines[i].Broadcast(m); err != nil {
				return scaleErrorRow(engine, n, err), 0
			}
		}
		target := uint64(n) * uint64(n) * uint64(r+1)
		for delivered.Load() < target {
			if time.Now().After(deadline) {
				converged = false
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		prev = labels
	}
	wall := time.Since(start)

	snap := reg.Snapshot()
	bytes := float64(snap.Get("causal_meta_bytes_total"))
	frames := float64(snap.Get("causal_meta_frames_total"))
	bpf := 0.0
	if frames > 0 {
		bpf = bytes / frames
	}
	conv := "yes"
	if !converged {
		conv = "NO"
	}
	return []string{
		itoa(n),
		engine,
		itoa(msgs),
		f2(frames / float64(msgs)),
		f2(bpf),
		f2(bytes / float64(msgs)),
		f2(float64(wall) / float64(time.Millisecond)),
		conv,
	}, bpf
}

// newScaleEngine constructs the named engine for one member. The clean
// ChanNet preserves per-pair FIFO order, so PCCast attaches directly; a
// lossy deployment would interpose reliable.Wrap here.
func newScaleEngine(engine, id string, grp *group.Group, conn transport.Conn, deliver causal.DeliverFunc, reg *telemetry.Registry) (causal.Broadcaster, error) {
	switch engine {
	case "osend":
		return causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: deliver, Telemetry: reg,
		})
	case "cbcast":
		return causal.NewCBCast(causal.CBCastConfig{
			Self: id, Group: grp, Conn: conn, Deliver: deliver, Telemetry: reg,
		})
	case "pccast":
		return causal.NewPCCast(causal.PCCastConfig{
			Self: id, Group: grp, Conn: conn, Deliver: deliver, Telemetry: reg,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown engine %q", engine)
	}
}

func scaleErrorRow(engine string, n int, err error) []string {
	return []string{itoa(n), engine, "-", "-", "-", "-", "-", "error: " + err.Error()}
}

// scaleNotes summarizes the measured shape: per-frame metadata growth
// from the smallest to the largest size, per engine family.
func scaleNotes(flat, linear []point15) string {
	growth := func(ps []point15, engine string) (first, last float64, n0, n1 int) {
		for _, p := range ps {
			if p.engine != engine {
				continue
			}
			if n0 == 0 {
				first, n0 = p.bpf, p.n
			}
			last, n1 = p.bpf, p.n
		}
		return
	}
	var parts []string
	for _, eng := range []string{"cbcast", "osend"} {
		first, last, n0, n1 := growth(linear, eng)
		if n0 != 0 && n1 > n0 && first > 0 {
			parts = append(parts, fmt.Sprintf("%s meta/frame grows %.1fx from n=%d to n=%d", eng, last/first, n0, n1))
		}
	}
	first, last, n0, n1 := growth(flat, "pccast")
	if n0 != 0 && n1 > n0 && first > 0 {
		parts = append(parts, fmt.Sprintf("pccast stays within %.1fx (constant header)", last/first))
	}
	note := "per-frame metadata: "
	for i, p := range parts {
		if i > 0 {
			note += "; "
		}
		note += p
	}
	return note + " — the flood pays n·(n−1) frames/msg for that flat header, so per-msg bytes cross over only once clock size outweighs flood amplification"
}

// point15 is one measured (engine, n) metadata point for the notes.
type point15 struct {
	n      int
	engine string
	bpf    float64
}
