package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/lockarb"
	"causalshare/internal/message"
	"causalshare/internal/total"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

// E9Config parameterizes the lock-arbitration experiment.
type E9Config struct {
	Sizes     []int
	Rotations int
}

// DefaultE9 returns the reproduction parameters.
func DefaultE9() E9Config {
	return E9Config{Sizes: []int{3, 5, 8}, Rotations: 5}
}

// RunE9 runs the §6.2 arbitration protocol on the live stack (sequencer
// total-order layer over OSend over an in-process network) and measures
// full-rotation latency — every member acquiring and releasing once — and
// the frame cost per grant. The claim reproduced: spontaneous LOCK
// requests are totally ordered and a deterministic algorithm yields
// consensus on each holder with no extra agreement traffic beyond the
// ordered broadcasts themselves.
func RunE9(cfg E9Config) Table {
	t := Table{
		ID:    "E9",
		Title: "decentralized lock arbitration: rotation latency and frames",
		Claim: "all members choose the same next lock holder, ensuring consensus among members (§6.2, Figure 5)",
		Columns: []string{
			"n", "rotation mean ms", "grants", "frames/grant", "holder agreement",
		},
	}
	for _, n := range cfg.Sizes {
		row, tel, _, err := runLockRotation(n, cfg.Rotations, nil)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		t.Rows = append(t.Rows, row)
		t.Telemetry = tel // last size's registry snapshot
	}
	t.Notes = "every member's grant log is identical (deterministic arbitration over the total order); frame cost is the ordered LOCK/TFR broadcasts only"
	return t
}

// runLockRotation drives the arbitration workload once and reports the
// E9 row plus the raw per-rotation latency (E13 reuses the latter for
// its tracing-overhead sweep). col, when non-nil, attaches a causal
// trace collector to every layer of the stack.
func runLockRotation(n, rotations int, col *trace.Collector) ([]string, string, float64, error) {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	grp, err := group.New("g", ids)
	if err != nil {
		return nil, "", 0, err
	}
	reg := runnerRegistry()
	net := transport.NewChanNetObserved(transport.FaultModel{}, reg)
	defer func() { _ = net.Close() }()

	arbiters := make(map[string]*lockarb.Arbiter, n)
	var logMu sync.Mutex
	grantLogs := make(map[string][]string, n)
	var engines []*causal.OSend
	var layers []*total.Sequencer
	defer func() {
		for _, l := range layers {
			_ = l.Close()
		}
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		id := id
		var arb *lockarb.Arbiter
		sq, err := total.NewSequencer(total.Config{
			Self: id, Group: grp,
			Deliver:   func(m message.Message) { arb.Ingest(m) },
			Telemetry: reg,
			Tracer:    col.Tracer(id),
		})
		if err != nil {
			return nil, "", 0, err
		}
		conn, err := net.Attach(id)
		if err != nil {
			return nil, "", 0, err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: sq.Ingest,
			Telemetry: reg,
			Tracer:    col.Tracer(id),
		})
		if err != nil {
			return nil, "", 0, err
		}
		sq.Bind(eng)
		arb, err = lockarb.NewArbiter(lockarb.Config{
			Self: id, Group: grp, Layer: sq,
			OnGrant: func(holder string, cycle uint64) {
				logMu.Lock()
				grantLogs[id] = append(grantLogs[id], fmt.Sprintf("%s@%d", holder, cycle))
				logMu.Unlock()
			},
		})
		if err != nil {
			return nil, "", 0, err
		}
		arbiters[id] = arb
		engines = append(engines, eng)
		layers = append(layers, sq)
	}
	for _, id := range ids {
		if err := arbiters[id].Start(); err != nil {
			return nil, "", 0, err
		}
	}

	start := time.Now()
	for r := 0; r < rotations; r++ {
		for _, id := range ids {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if _, err := arbiters[id].Acquire(ctx); err != nil {
				cancel()
				return nil, "", 0, fmt.Errorf("rotation %d at %s: %w", r, id, err)
			}
			if err := arbiters[id].Release(); err != nil {
				cancel()
				return nil, "", 0, err
			}
			cancel()
		}
	}
	elapsed := time.Since(start)

	grants := arbiters[ids[0]].Grants()
	frames := net.Stats().Sent
	agreement := "AGREE"
	logMu.Lock()
	defer logMu.Unlock()
	ref := grantLogs[ids[0]]
	for _, id := range ids[1:] {
		got := grantLogs[id]
		limit := len(ref)
		if len(got) < limit {
			limit = len(got)
		}
		for i := 0; i < limit; i++ {
			if got[i] != ref[i] {
				agreement = fmt.Sprintf("DIVERGED at %d", i)
			}
		}
	}
	rotationMs := float64(elapsed.Microseconds()) / 1000 / float64(rotations)
	return []string{
		itoa(n),
		f2(rotationMs),
		utoa(grants),
		f2(float64(frames) / float64(grants)),
		agreement,
	}, reg.Snapshot().Compact(), rotationMs, nil
}
