package experiments

import (
	"fmt"

	"causalshare/internal/core"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/shareddata"
	"causalshare/internal/sim"
)

// E11Config parameterizes the item-scoping experiment.
type E11Config struct {
	Members int
	Keys    []int
	Writes  int
	Seed    int64
}

// DefaultE11 returns the reproduction parameters.
func DefaultE11() E11Config {
	return E11Config{Members: 5, Keys: []int{1, 2, 4, 8, 16}, Writes: 240, Seed: 1111}
}

// RunE11 quantifies §5.1's item-granularity refinement: "the condition
// relates to decomposition of the data into distinct items ... it also
// subsumes the case where messages affect disjoint subsets of X".
// Overwrites spread across k keys run (a) under the naive protocol where
// every overwrite is a global closer, and (b) under the item-scoped
// protocol where same-key overwrites chain and cross-key overwrites stay
// concurrent, with one closing Sync. Both are audited for stable-point
// agreement; latency and graph width show the concurrency reclaimed.
func RunE11(cfg E11Config) Table {
	t := Table{
		ID:    "E11",
		Title: "item-scoped overwrites vs global closers",
		Claim: "messages affecting disjoint subsets of X are concurrent (§5.1): scoping reclaims the concurrency overwrites lose under global ordering",
		Columns: []string{
			"keys", "naive mean ms", "scoped mean ms", "naive width", "scoped width", "stable pts naive/scoped", "agreement",
		},
	}
	for _, keys := range cfg.Keys {
		naive, err := runKeyedWrites(cfg, keys, false)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		scoped, err := runKeyedWrites(cfg, keys, true)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		agreement := "AGREE"
		if !naive.agree || !scoped.agree {
			agreement = "DIVERGED"
		}
		t.Rows = append(t.Rows, []string{
			itoa(keys),
			f3(naive.meanMs), f3(scoped.meanMs),
			f2(naive.width), f2(scoped.width),
			fmt.Sprintf("%d/%d", naive.points, scoped.points),
			agreement,
		})
	}
	t.Notes = "scoped latency and width improve with key count (cross-key writes concurrent); the naive protocol serializes every overwrite regardless — both agree at every stable point"
	return t
}

type keyedResult struct {
	meanMs float64
	width  float64
	points int
	agree  bool
}

func runKeyedWrites(cfg E11Config, keys int, scoped bool) (keyedResult, error) {
	s := sim.New(cfg.Seed)
	net := sim.NewNet(s, defaultNet())
	replicas := make([]*core.Replica, cfg.Members)
	for i := range replicas {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    sim.MemberID(i),
			Initial: shareddata.NewKVStore(),
			Apply:   shareddata.ApplyKV,
		})
		if err != nil {
			return keyedResult{}, err
		}
		replicas[i] = rep
	}
	trace := obs.NewTrace()
	record := trace.Observer(sim.MemberID(0), nil)
	deliver := func(m int, msg message.Message, _ sim.Time) {
		replicas[m].Deliver(msg)
		if m == 0 {
			record(msg)
		}
	}
	cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, cfg.Members, deliver)

	var compose func(key string, body []byte) message.Message
	var closing message.Message
	if scoped {
		fe, err := core.NewItemComposer("e11~item")
		if err != nil {
			return keyedResult{}, err
		}
		compose = func(key string, body []byte) message.Message {
			op := shareddata.Put(key, string(body))
			return fe.ComposeScoped(op.Op, key, op.Body)
		}
		schedule(cfg, keys, s, cluster, compose)
		closing = fe.ComposeSync("snapshot", nil)
	} else {
		fe, err := core.NewComposer("e11~cli")
		if err != nil {
			return keyedResult{}, err
		}
		compose = func(key string, body []byte) message.Message {
			op := shareddata.Put(key, string(body))
			m, composeErr := fe.Compose(op.Op, op.Kind, op.Body)
			if composeErr != nil {
				return message.Message{}
			}
			return m
		}
		schedule(cfg, keys, s, cluster, compose)
		m, err := fe.Compose("snapshot", message.KindRead, nil)
		if err != nil {
			return keyedResult{}, err
		}
		closing = m
	}
	s.At(sim.Time(cfg.Writes+1)*ms(0.3), func() { cluster.Broadcast(0, closing) })
	s.Run(0)

	histories := make(map[string][]core.StablePoint, len(replicas))
	for _, r := range replicas {
		histories[r.Self()] = r.StablePoints()
	}
	audit := obs.AuditStablePoints(histories)
	g, err := trace.ExtractGraph()
	if err != nil {
		return keyedResult{}, err
	}
	return keyedResult{
		meanMs: sim.Millis(sim.Summarize(cluster.Latencies()).Mean),
		width:  g.MeanWidth(),
		points: audit.Points,
		agree:  audit.Consistent(),
	}, nil
}

// schedule issues cfg.Writes puts round-robin over keys and members. The
// compose function is invoked at scheduling time so chains follow issue
// order deterministically.
func schedule(cfg E11Config, keys int, s *sim.Sim, cluster *sim.CausalCluster, compose func(key string, body []byte) message.Message) {
	for w := 0; w < cfg.Writes; w++ {
		key := fmt.Sprintf("k%d", w%keys)
		m := compose(key, []byte(fmt.Sprintf("v%d", w)))
		if m.Label.IsNil() {
			continue
		}
		w := w
		s.At(sim.Time(w+1)*ms(0.3), func() { cluster.Broadcast(w%cfg.Members, m) })
	}
}
