package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

// E13Config parameterizes the tracing-overhead sweep.
type E13Config struct {
	// Members is the fan-out group size (one sender, Members receivers).
	Members int
	// Ops is the number of broadcasts in the fan-out workload.
	Ops int
	// LockMembers / Rotations parameterize the E9 lock-rotation workload
	// rerun under each tracing mode.
	LockMembers int
	Rotations   int
	// SampleN is the sampling period of the middle mode: trace one in
	// every SampleN root activities.
	SampleN int
}

// DefaultE13 returns the reproduction parameters.
func DefaultE13() E13Config {
	return E13Config{Members: 8, Ops: 4000, LockMembers: 5, Rotations: 5, SampleN: 16}
}

// e13Mode is one operating point of the sweep. A nil collector factory is
// the off mode: the stacks are built through the identical config path
// with a nil tracer.
type e13Mode struct {
	name   string
	sample int // 0 = tracing off
}

// RunE13 measures what the causal trace collector costs on two live-stack
// workloads: the broadcast fan-out pipeline (the zero-allocation hot
// path, one OSend sender to Members receivers) and the E9 lock-rotation
// protocol (sequencer total order over OSend). Each runs three times —
// tracing off, head-based sampling of one activity in SampleN, and
// always-on — and the table reports mean latency per unit of work plus
// the collector's own accounting: activities traced, span records
// written, spans lost to bounded-store eviction, and violations (which
// must be zero; the auditor runs inline with collection). The claim
// checked: always-on tracing is affordable and sampling makes the
// overhead negligible, so the audit can stay on in production.
func RunE13(cfg E13Config) Table {
	t := Table{
		ID:    "E13",
		Title: "causal tracing overhead: off / sampled / always-on",
		Claim: "span collection and the online consistency audit are cheap enough to leave enabled; sampling bounds the residual cost",
		Columns: []string{
			"workload", "mode", "us/op", "overhead", "traces", "spans", "dropped", "violations",
		},
	}
	modes := []e13Mode{
		{name: "off", sample: 0},
		{name: fmt.Sprintf("sampled 1/%d", cfg.SampleN), sample: cfg.SampleN},
		{name: "always", sample: 1},
	}

	type runner struct {
		workload string
		run      func(col *trace.Collector) (float64, error)
	}
	runners := []runner{
		{workload: "fanout", run: func(col *trace.Collector) (float64, error) {
			return runTracedFanout(cfg.Members, cfg.Ops, col)
		}},
		{workload: "locks", run: func(col *trace.Collector) (float64, error) {
			_, _, rotationMs, err := runLockRotation(cfg.LockMembers, cfg.Rotations, col)
			// One rotation is LockMembers acquire+release grants.
			return rotationMs * 1000 / float64(cfg.LockMembers), err
		}},
	}

	var overheads []string
	for _, r := range runners {
		var baseline float64
		for _, mode := range modes {
			var col *trace.Collector
			var reg *telemetry.Registry
			if mode.sample > 0 {
				reg = telemetry.NewRegistry()
				col = trace.NewCollector(trace.Config{SampleEvery: mode.sample, Telemetry: reg})
			}
			usPerOp, err := r.run(col)
			if err != nil {
				t.Notes = "error: " + err.Error()
				return t
			}
			overhead, traced, spans, dropped, viols := "1.00x", "-", "-", "-", "-"
			if baseline == 0 {
				baseline = usPerOp
			} else if baseline > 0 {
				overhead = fmt.Sprintf("%.2fx", usPerOp/baseline)
			}
			if col != nil {
				traced = utoa(reg.Counter("trace_traces_total", "").Value())
				spans = utoa(reg.Counter("trace_spans_total", "").Value())
				dropped = utoa(reg.Counter("trace_span_dropped_total", "").Value())
				viols = utoa(col.ViolationCount())
			}
			t.Rows = append(t.Rows, []string{
				r.workload, mode.name, f2(usPerOp), overhead, traced, spans, dropped, viols,
			})
			if mode.sample == 1 {
				overheads = append(overheads, fmt.Sprintf("%s %s", r.workload, overhead))
			}
		}
	}
	t.Notes = fmt.Sprintf(
		"always-on cost: %s; the bounded store keeps memory flat (dropped counts evicted spans) and the inline audit reported zero violations",
		joinComma(overheads))
	return t
}

// runTracedFanout times the BenchmarkBroadcastFanout workload — one OSend
// sender broadcasting dependency-free messages to n receivers over a
// perfect in-process network — returning mean microseconds per broadcast
// (full fan-out: every member delivered).
func runTracedFanout(n, ops int, col *trace.Collector) (float64, error) {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	grp, err := group.New("fanout", ids)
	if err != nil {
		return 0, err
	}
	net := transport.NewChanNet(transport.FaultModel{})
	defer func() { _ = net.Close() }()
	var delivered atomic.Uint64
	var engines []*causal.OSend
	defer func() {
		for _, e := range engines {
			_ = e.Close()
		}
	}()
	for _, id := range ids {
		conn, err := net.Attach(id)
		if err != nil {
			return 0, err
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn,
			Deliver: func(message.Message) { delivered.Add(1) },
			Tracer:  col.Tracer(id),
		})
		if err != nil {
			return 0, err
		}
		engines = append(engines, eng)
	}
	lab := message.NewLabeler(ids[0])
	start := time.Now()
	for i := 0; i < ops; i++ {
		m := message.Message{Label: lab.Next(), Kind: message.KindCommutative, Op: "inc"}
		if err := engines[0].Broadcast(m); err != nil {
			return 0, err
		}
	}
	target := uint64(n) * uint64(ops)
	for delivered.Load() < target {
		time.Sleep(20 * time.Microsecond)
	}
	return float64(time.Since(start).Microseconds()) / float64(ops), nil
}

// joinComma joins short fragments for a Notes line.
func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
