package experiments

import (
	"fmt"

	"causalshare/internal/message"
	"causalshare/internal/sim"
	"causalshare/internal/vclock"
)

// E6Config parameterizes the buffer-occupancy experiment.
type E6Config struct {
	Members int
	Ops     int
	Jitters []float64 // MaxLatency in ms (MinLatency 0)
	Seed    int64
}

// DefaultE6 returns the reproduction parameters.
func DefaultE6() E6Config {
	return E6Config{
		Members: 8,
		Ops:     1500,
		Jitters: []float64{1, 5, 10, 20, 50},
		Seed:    606,
	}
}

// RunE6 measures delivery-buffer occupancy under increasing network
// jitter for the paper's OSend rule versus the vector-clock CBCAST
// baseline. Workload: every member broadcasts interleaved traffic, with
// one member's stream chained (explicit dependencies) and the rest
// concurrent. The claim reproduced: inferring causality from transport
// observation (CBCAST) buffers messages the application never related —
// OSend buffers only declared dependencies.
func RunE6(cfg E6Config) Table {
	t := Table{
		ID:    "E6",
		Title: "delivery-buffer occupancy vs network jitter",
		Claim: "OSend orders only the application's declared relations; incidental-order engines impose constraints the application never asked for",
		Columns: []string{
			"jitter ms", "osend max buf", "cbcast max buf", "osend mean ms", "cbcast mean ms",
		},
	}
	for _, j := range cfg.Jitters {
		model := sim.NetModel{MinLatency: 0, MaxLatency: ms(j)}
		var maxBuf [2]int
		var mean [2]float64
		for i, rule := range []sim.OrderRule{sim.RuleOSend, sim.RuleCBCast} {
			s := sim.New(cfg.Seed)
			net := sim.NewNet(s, model)
			cluster := sim.NewCausalCluster(s, net, rule, cfg.Members, nil)
			driveMixed(s, cluster, cfg.Ops, cfg.Members)
			s.Run(0)
			maxBuf[i] = cluster.MaxBuffered()
			mean[i] = sim.Millis(sim.Summarize(cluster.Latencies()).Mean)
		}
		t.Rows = append(t.Rows, []string{
			f2(j), itoa(maxBuf[0]), itoa(maxBuf[1]), f3(mean[0]), f3(mean[1]),
		})
	}
	t.Notes = "CBCAST's buffers grow with jitter because FIFO+transitive constraints bind concurrent traffic; OSend buffers only the one declared chain"
	return t
}

// driveMixed schedules interleaved traffic: member 0's stream is a
// dependency chain; members 1..n-1 broadcast concurrent (unconstrained)
// messages.
func driveMixed(s *sim.Sim, cluster *sim.CausalCluster, ops, members int) {
	var prev message.Label
	for k := 0; k < ops; k++ {
		k := k
		member := k % members
		label := message.Label{Origin: sim.MemberID(member) + "~w", Seq: uint64(k + 1)}
		var deps message.OccursAfter
		if member == 0 {
			deps = message.After(prev)
			prev = label
		}
		m := message.Message{Label: label, Deps: deps, Kind: message.KindCommutative, Op: "w"}
		s.At(sim.Time(k)*ms(0.3), func() { cluster.Broadcast(member, m) })
	}
}

// E7Config parameterizes the wire-overhead experiment.
type E7Config struct {
	Sizes    []int
	DepsMean int
}

// DefaultE7 returns the reproduction parameters.
func DefaultE7() E7Config {
	return E7Config{Sizes: []int{2, 4, 8, 16, 32, 64}, DepsMean: 2}
}

// RunE7 compares the per-message ordering-metadata size of explicit
// OccursAfter labels (OSend) against vector-clock piggybacks (CBCAST) as
// the group grows, using the real wire encodings. The claim reproduced:
// the explicit representation's cost tracks the application's dependency
// degree (constant here), not the group size.
func RunE7(cfg E7Config) Table {
	t := Table{
		ID:    "E7",
		Title: "ordering metadata bytes per message vs group size",
		Claim: "OSend carries the causal relations themselves; clock-based schemes carry O(n) state",
		Columns: []string{
			"n", "osend dep bytes", "cbcast clock bytes", "ratio",
		},
	}
	for _, n := range cfg.Sizes {
		// OSend: a message naming DepsMean predecessors.
		deps := make([]message.Label, cfg.DepsMean)
		for i := range deps {
			deps[i] = message.Label{Origin: fmt.Sprintf("m%03d~cli", i), Seq: uint64(1000 + i)}
		}
		withDeps := message.Message{
			Label: message.Label{Origin: "m000~cli", Seq: 2000},
			Deps:  message.After(deps...),
			Kind:  message.KindCommutative,
			Op:    "inc",
		}
		noDeps := withDeps
		noDeps.Deps = message.After()
		osendBytes := withDeps.EncodedSize() - noDeps.EncodedSize()

		// CBCAST: a fully populated vector clock over n members.
		vc := vclock.New()
		for i := 0; i < n; i++ {
			vc.Set(fmt.Sprintf("m%03d", i), uint64(1000+i))
		}
		cbBytes := vc.EncodedSize()

		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(osendBytes), itoa(cbBytes),
			f2(float64(cbBytes) / float64(osendBytes)),
		})
	}
	t.Notes = "explicit dependency metadata is constant in group size (it tracks the dependency degree); vector clocks grow linearly — the crossover is at a handful of members"
	return t
}
