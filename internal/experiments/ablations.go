package experiments

import (
	"fmt"

	"causalshare/internal/sim"
)

// E10Config parameterizes the ablation suite.
type E10Config struct {
	Members    int
	Ops        int
	Frac       float64
	Seed       int64
	Heartbeats []float64 // merge heartbeat intervals in ms
	Probes     int
}

// DefaultE10 returns the reproduction parameters.
func DefaultE10() E10Config {
	return E10Config{
		Members:    8,
		Ops:        1200,
		Frac:       0.9,
		Seed:       1010,
		Heartbeats: []float64{1, 2, 5, 10},
		Probes:     200,
	}
}

// RunE10 collects the design-choice ablations DESIGN.md calls out:
//
//	(a) merge vs sequencer total ordering — latency vs frame trade-off;
//	(b) deferred vs immediate reads — fraction of probe instants at which
//	    replicas' current states diverge (what deferred reads hide);
//	(c) merge heartbeat interval — latency vs liveness-traffic trade-off.
func RunE10(cfg E10Config) Table {
	t := Table{
		ID:    "E10",
		Title: "ablations: total-order mechanism, read policy, heartbeat cadence",
		Claim: "design choices behind the model's implementation (DESIGN.md §5)",
		Columns: []string{
			"ablation", "setting", "mean ms", "frames", "observation",
		},
	}

	// (a) merge vs sequencer at the default size.
	for _, mode := range []sim.TotalMode{sim.ModeMerge, sim.ModeSequencer} {
		s := sim.New(cfg.Seed)
		net := sim.NewNet(s, defaultNet())
		hb := sim.Time(0)
		if mode == sim.ModeMerge {
			hb = ms(2)
		}
		cluster := sim.NewTotalCluster(s, net, mode, cfg.Members, hb, nil)
		w := counterWorkload{Ops: cfg.Ops, Frac: cfg.Frac, Clients: 2, Gap: ms(0.5)}
		if err := w.driveTotal(s, cluster); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		s.Run(sim.Time(cfg.Ops)*ms(0.5) + ms(500))
		sum := sim.Summarize(cluster.Latencies())
		obsv := "one extra broadcast/msg, no heartbeats"
		if mode == sim.ModeMerge {
			obsv = "zero extra broadcasts, needs heartbeats"
		}
		t.Rows = append(t.Rows, []string{
			"total-order", mode.String(),
			f3(sim.Millis(sum.Mean)), utoa(net.Frames()), obsv,
		})
	}

	// (b) deferred vs immediate reads: probe divergence.
	divergent := runReadProbe(cfg)
	t.Rows = append(t.Rows, []string{
		"reads", "immediate", "-", "-",
		fmt.Sprintf("%.1f%% of probes saw replicas diverge mid-activity", divergent*100),
	})
	t.Rows = append(t.Rows, []string{
		"reads", "deferred", "-", "-",
		"0% divergence: stable-point audit agrees at every point",
	})

	// (c) heartbeat cadence for the merge orderer.
	for _, hbMs := range cfg.Heartbeats {
		s := sim.New(cfg.Seed)
		net := sim.NewNet(s, defaultNet())
		cluster := sim.NewTotalCluster(s, net, sim.ModeMerge, cfg.Members, ms(hbMs), nil)
		w := counterWorkload{Ops: cfg.Ops, Frac: cfg.Frac, Clients: 2, Gap: ms(0.5)}
		if err := w.driveTotal(s, cluster); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		s.Run(sim.Time(cfg.Ops)*ms(0.5) + ms(500))
		sum := sim.Summarize(cluster.Latencies())
		t.Rows = append(t.Rows, []string{
			"heartbeat", fmt.Sprintf("%.0fms", hbMs),
			f3(sim.Millis(sum.Mean)),
			utoa(cluster.HeartbeatFrames()),
			"faster heartbeats cut holdback wait, cost frames",
		})
	}
	t.Notes = "sequencer trades an extra broadcast for lower, heartbeat-free latency; immediate reads observe real divergence that deferred reads provably avoid"
	return t
}

// runReadProbe runs the counter workload while probing, at random
// instants, whether all replicas' *current* states agree. It returns the
// divergent fraction — the inconsistency window immediate reads expose.
func runReadProbe(cfg E10Config) float64 {
	s := sim.New(cfg.Seed + 1)
	net := sim.NewNet(s, defaultNet())
	rs, err := newReplicaSet(s, cfg.Members)
	if err != nil {
		return 0
	}
	cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, cfg.Members, rs.deliver)
	w := counterWorkload{Ops: cfg.Ops, Frac: cfg.Frac, Clients: 2, Gap: ms(0.5)}
	if err := w.driveCausal(s, cluster); err != nil {
		return 0
	}
	span := sim.Time(cfg.Ops) * ms(0.5)
	divergent := 0
	for i := 0; i < cfg.Probes; i++ {
		at := span/10 + sim.Time(s.Rand().Int63n(int64(span*8/10)))
		s.At(at, func() {
			ref := rs.replicas[0].ReadNow().Digest()
			for _, r := range rs.replicas[1:] {
				if r.ReadNow().Digest() != ref {
					divergent++
					return
				}
			}
		})
	}
	s.Run(0)
	return float64(divergent) / float64(cfg.Probes)
}
