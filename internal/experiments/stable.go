package experiments

import (
	"fmt"

	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/shareddata"
	"causalshare/internal/sim"
	"causalshare/internal/transport"

	"causalshare/internal/baseline"
)

// E3Config parameterizes the stable-point cadence experiment.
type E3Config struct {
	Members    int
	Cycles     int
	ActivitySz []int // f_gamma values: commutative ops per cycle
	Reads      int
	Seed       int64
}

// DefaultE3 returns the reproduction parameters; f_gamma=20 is the
// paper's own example value.
func DefaultE3() E3Config {
	return E3Config{
		Members:    5,
		Cycles:     60,
		ActivitySz: []int{0, 1, 5, 20, 50},
		Reads:      300,
		Seed:       303,
	}
}

// RunE3 sweeps the causal-activity size f_gamma and measures the deferred-
// read latency (wait until the next stable point) together with the
// stable-point agreement audit. The claim reproduced: consistency need
// only be guaranteed at stable points; larger activities buy more
// concurrency at the cost of staler deferred reads, and agreement at
// stable points needs no protocol messages.
func RunE3(cfg E3Config) Table {
	t := Table{
		ID:    "E3",
		Title: "deferred-read latency vs activity size f_gamma",
		Claim: "a read may be deferred to the next stable point so the value returned is the same at every member (§5.1); f_gamma ≈ 20 for a 90% commutative mix",
		Columns: []string{
			"f_gamma", "read mean ms", "read p95 ms", "stable pts", "agreement", "extra agree msgs",
		},
	}
	for _, fg := range cfg.ActivitySz {
		s := sim.New(cfg.Seed)
		net := sim.NewNet(s, defaultNet())
		rs, err := newReplicaSet(s, cfg.Members)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, cfg.Members, rs.deliver)

		// One client issuing the §6.1 cycle shape: fg commutative ops
		// then one closer, Cycles times.
		fe, err := newCycleComposer(s, cluster, fg, cfg.Cycles)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		_ = fe
		// Read arrivals sample the run's middle 80%.
		runSpan := sim.Time(cfg.Cycles*(fg+1)) * ms(0.5)
		var readTimes []sim.Time
		var readMembers []int
		for i := 0; i < cfg.Reads; i++ {
			at := runSpan/10 + sim.Time(s.Rand().Int63n(int64(runSpan*8/10)))
			readTimes = append(readTimes, at)
			readMembers = append(readMembers, s.Rand().Intn(cfg.Members))
		}
		s.Run(0)

		var latencies []sim.Time
		for i, at := range readTimes {
			if l, ok := rs.readLatency(readMembers[i], at); ok {
				latencies = append(latencies, l)
			}
		}
		sum := sim.Summarize(latencies)
		audit := obs.AuditStablePoints(rs.histories())
		agreement := "AGREE"
		if !audit.Consistent() {
			agreement = "DIVERGED: " + audit.Divergence
		}
		t.Rows = append(t.Rows, []string{
			itoa(fg),
			f3(sim.Millis(sum.Mean)), f3(sim.Millis(sum.P95)),
			itoa(audit.Points),
			agreement,
			"0", // stable points are detected locally: no agreement traffic
		})
	}
	t.Notes = "every row audits identical state digests at every member at every stable point, with zero agreement messages; read staleness grows with activity size"
	return t
}

// newCycleComposer schedules exactly the rqst_nc / {rqst_c} cycle shape.
func newCycleComposer(s *sim.Sim, cluster *sim.CausalCluster, fg, cycles int) (int, error) {
	fe, err := newComposer(0)
	if err != nil {
		return 0, err
	}
	k := 0
	for c := 0; c < cycles; c++ {
		for i := 0; i < fg; i++ {
			k++
			scheduleOp(s, cluster, fe, k, true)
		}
		k++
		scheduleOp(s, cluster, fe, k, false)
	}
	return k, nil
}

func newComposer(member int) (*composerShim, error) {
	fe, err := newCoreComposer(sim.MemberID(member) + "~cli")
	if err != nil {
		return nil, err
	}
	return &composerShim{fe: fe, member: member}, nil
}

func scheduleOp(s *sim.Sim, cluster *sim.CausalCluster, fe *composerShim, k int, commutative bool) {
	s.At(sim.Time(k)*ms(0.5), func() {
		var m message.Message
		var err error
		if commutative {
			op := shareddata.Inc()
			m, err = fe.fe.Compose(op.Op, op.Kind, op.Body)
		} else {
			op := shareddata.Read()
			m, err = fe.fe.Compose(op.Op, op.Kind, op.Body)
		}
		if err != nil {
			return
		}
		cluster.Broadcast(fe.member, m)
	})
}

// E4Config parameterizes the agreement-overhead comparison.
type E4Config struct {
	Sizes      []int
	SyncPoints int
}

// DefaultE4 returns the reproduction parameters.
func DefaultE4() E4Config {
	return E4Config{Sizes: []int{3, 5, 8, 12, 16}, SyncPoints: 50}
}

// RunE4 measures the message cost of reaching agreement at sync points
// with an explicit protocol (the 2PC-shaped baseline) versus the model's
// local stable-point detection (zero messages). Live stack, fault-free.
// The claim reproduced: "agreement protocols ... reach agreement without
// requiring separate message exchanges across entities".
func RunE4(cfg E4Config) Table {
	t := Table{
		ID:    "E4",
		Title: "agreement cost per sync point: explicit protocol vs stable points",
		Claim: "protocols reach agreement without separate message exchanges (a 'virtually synchronous execution' at higher granularity)",
		Columns: []string{
			"n", "explicit msgs/sync", "explicit total msgs", "stable-point msgs/sync", "ratio",
		},
	}
	for _, n := range cfg.Sizes {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("m%02d", i)
		}
		grp, err := group.New("g", ids)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		net := transport.NewChanNet(transport.FaultModel{})
		connA, err := net.Attach(ids[0])
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		coord, err := baseline.NewCoordinator(ids[0], grp, connA)
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		var parts []*baseline.Participant
		for _, id := range ids[1:] {
			conn, err := net.Attach(id)
			if err != nil {
				t.Notes = "error: " + err.Error()
				return t
			}
			parts = append(parts, baseline.NewParticipant(id, conn, nil))
		}
		for i := 0; i < cfg.SyncPoints; i++ {
			if _, err := coord.Agree([]byte(fmt.Sprintf("digest-%d", i))); err != nil {
				t.Notes = "error: " + err.Error()
				return t
			}
		}
		st := coord.Stats()
		perSync := float64(st.Messages) / float64(st.Rounds)
		t.Rows = append(t.Rows, []string{
			itoa(n),
			f2(perSync),
			utoa(st.Messages),
			"0.00",
			fmt.Sprintf("∞ (saves %.0f msgs/sync)", perSync),
		})
		_ = coord.Close()
		for _, p := range parts {
			_ = p.Close()
		}
		_ = net.Close()
	}
	t.Notes = "explicit agreement costs 3(n-1) frames per sync point; stable-point detection is local and free — the model's headline saving"
	return t
}
