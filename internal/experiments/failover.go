package experiments

import (
	"fmt"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/telemetry"
	"causalshare/internal/transport"
)

// E12Config parameterizes the failover-latency experiment.
type E12Config struct {
	Members        int
	SendsPerMember int
	// Heartbeats are the heartbeat/detector intervals to sweep. Each run
	// arms failover with FailTimeout = FailMultiple × heartbeat and kills
	// the epoch-0 leader once each member has had CrashAfterSends send
	// opportunities (the driver paces one send per heartbeat), so the
	// crash lands mid-workload at every interval and the succession is
	// actually exercised.
	Heartbeats      []time.Duration
	FailMultiple    int
	CrashAfterSends int
	Timeout         time.Duration
}

// DefaultE12 returns the reproduction parameters.
func DefaultE12() E12Config {
	return E12Config{
		Members:        5,
		SendsPerMember: 15,
		Heartbeats:      []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond},
		FailMultiple:    5,
		CrashAfterSends: 7,
		Timeout:         30 * time.Second,
	}
}

// RunE12 measures sequencer failover latency as a function of the
// heartbeat interval on the live stack: each run kills the epoch-0 leader
// mid-workload and records (a) recovery — crash to every survivor past
// the dead leader's epoch, measured by the harness clock — and (b) the
// election round alone, from the total_failover_latency_seconds histogram
// (suspicion to completion). Detection dominates recovery: the leader
// must stay silent for FailTimeout = FailMultiple × heartbeat before
// anyone campaigns, so recovery tracks the detection window roughly
// linearly while the ELECT/ACK round stays in the sub-millisecond range.
func RunE12(cfg E12Config) Table {
	t := Table{
		ID:    "E12",
		Title: "failover latency vs heartbeat interval",
		Claim: "a crashed sequencer is succeeded without violating the agreed order; recovery time is bounded by the failure-detection window plus one election round",
		Columns: []string{
			"heartbeat ms", "fail timeout ms", "recovery ms", "election ms", "elections", "converged", "survivor frontier",
		},
	}
	ids := make([]string, cfg.Members)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%d", i)
	}
	for _, hb := range cfg.Heartbeats {
		failTimeout := time.Duration(cfg.FailMultiple) * hb
		reg := telemetry.NewRegistry()
		net := transport.NewChanNet(transport.FaultModel{})
		crashAt := time.Duration(cfg.CrashAfterSends) * hb
		res, err := chaos.Run(chaos.Options{
			Members:        ids,
			Net:            net,
			Schedule:       chaos.Schedule{Actions: []chaos.Action{{At: crashAt, Crash: ids[0]}}},
			SendsPerMember: cfg.SendsPerMember,
			Step:           hb,
			FailTimeout:    failTimeout,
			Patience:       2 * hb,
			Timeout:        cfg.Timeout,
			Telemetry:      reg,
		})
		_ = net.Close()
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		snap := reg.Snapshot()
		electionMs := "-"
		for _, h := range snap.Histograms {
			if h.Name == "total_failover_latency_seconds" && h.Count > 0 {
				electionMs = f2(h.Sum / float64(h.Count) * 1000)
			}
		}
		recoveryMs := "-"
		if len(res.Recovery) > 0 {
			recoveryMs = f2(float64(res.Recovery[0]) / float64(time.Millisecond))
		}
		converged := "yes"
		if !res.Converged {
			converged = "NO"
		}
		t.Rows = append(t.Rows, []string{
			f2(float64(hb) / float64(time.Millisecond)),
			f2(float64(failTimeout) / float64(time.Millisecond)),
			recoveryMs,
			electionMs,
			utoa(snap.Get("total_elections_total")),
			converged,
			utoa(res.Frontier),
		})
	}
	t.Notes = "recovery grows with the heartbeat interval (detection window = failMultiple × heartbeat dominates; the ELECT/ACK round adds little) — every run converges with all survivor orders identical"
	return t
}
