package experiments

import (
	"fmt"
	"time"

	"causalshare/internal/chaos"
	"causalshare/internal/reliable"
	"causalshare/internal/telemetry"
	"causalshare/internal/trace"
	"causalshare/internal/transport"
)

// E14Config parameterizes the loss-tolerance sweep.
type E14Config struct {
	Members        int
	SendsPerMember int
	// DropProbs is the independent per-frame loss sweep; one extra row
	// layers the Gilbert–Elliott burst model on top of BurstBase loss.
	DropProbs []float64
	BurstBase float64
	Seed      int64
	Timeout   time.Duration
}

// DefaultE14 returns the reproduction parameters.
func DefaultE14() E14Config {
	return E14Config{
		Members:        4,
		SendsPerMember: 25,
		DropProbs:      []float64{0, 0.1, 0.2, 0.3},
		BurstBase:      0.05,
		Seed:           7,
		Timeout:        60 * time.Second,
	}
}

// RunE14 sweeps sustained frame loss over the live stack with the
// reliability sublayer armed: every row must converge to the identical
// total order with zero causal violations, and the cost of loss shows up
// as repair traffic (NACK-driven retransmissions, duplicate suppression)
// and convergence time rather than as lost or reordered deliveries. The
// final row replaces independent loss with correlated Gilbert–Elliott
// bursts — episodes where ~90% of frames vanish — which exercise the
// NACK backoff and sender RTO paths that single-frame loss never needs.
func RunE14(cfg E14Config) Table {
	t := Table{
		ID:    "E14",
		Title: "reliable delivery under sustained loss (ack/NACK sublayer)",
		Claim: "causal and total order survive sustained and bursty frame loss: the per-link reliability sublayer repairs gaps below the broadcast layers, so every member converges to the identical order at every loss rate",
		Columns: []string{
			"drop", "burst", "converged", "elapsed ms", "delivered", "data frames", "retransmits", "nacks", "dup suppressed", "violations",
		},
	}
	ids := make([]string, cfg.Members)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%d", i)
	}
	type sweep struct {
		fm    transport.FaultModel
		burst bool
	}
	var sweeps []sweep
	for _, p := range cfg.DropProbs {
		sweeps = append(sweeps, sweep{fm: transport.FaultModel{DropProb: p, Seed: cfg.Seed}})
	}
	sweeps = append(sweeps, sweep{
		fm: transport.FaultModel{
			DropProb:  cfg.BurstBase,
			BurstProb: 0.02,
			BurstHeal: 0.2,
			BurstDrop: 0.9,
			Seed:      cfg.Seed,
		},
		burst: true,
	})
	for _, s := range sweeps {
		reg := telemetry.NewRegistry()
		col := trace.NewCollector(trace.Config{})
		net := transport.NewChanNet(s.fm)
		res, err := chaos.Run(chaos.Options{
			Members:        ids,
			Net:            net,
			Engine:         engineName,
			SendsPerMember: cfg.SendsPerMember,
			Step:           2 * time.Millisecond,
			Patience:       12 * time.Millisecond,
			Timeout:        cfg.Timeout,
			Telemetry:      reg,
			Collector:      col,
			Reliable: &reliable.Config{
				Window:       128,
				AckEvery:     8,
				Tick:         2 * time.Millisecond,
				StallTimeout: 300 * time.Millisecond,
				ShedAfter:    500 * time.Millisecond,
				Seed:         cfg.Seed,
			},
		})
		_ = net.Close()
		if err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		snap := reg.Snapshot()
		converged := "yes"
		if !res.Converged {
			converged = "NO"
		}
		delivered := 0
		for _, m := range res.Members {
			delivered += len(m.Order)
		}
		burst := "-"
		if s.burst {
			burst = "GE 90%"
		}
		t.Rows = append(t.Rows, []string{
			f2(s.fm.DropProb),
			burst,
			converged,
			f2(float64(res.Elapsed) / float64(time.Millisecond)),
			itoa(delivered),
			utoa(snap.Get("reliable_data_total")),
			utoa(snap.Get("reliable_retransmits_total")),
			utoa(snap.Get("reliable_nacks_sent_total")),
			utoa(snap.Get("reliable_dup_suppressed_total")),
			utoa(res.Violations),
		})
	}
	t.Notes = "every row converges violation-free; repair traffic (retransmits, NACKs, suppressed duplicates) grows with the loss rate while the delivered order stays identical — loss costs time and bandwidth, never consistency"
	return t
}
