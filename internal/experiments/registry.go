package experiments

import (
	"fmt"

	"causalshare/internal/core"
	"causalshare/internal/message"
	"causalshare/internal/shareddata"
	"causalshare/internal/sim"
)

// E5Config parameterizes the application-specific protocol experiment.
type E5Config struct {
	Members     int
	Queries     int
	UpdateRates []float64 // updates per query
	Seed        int64
}

// DefaultE5 returns the reproduction parameters.
func DefaultE5() E5Config {
	return E5Config{
		Members:     6,
		Queries:     1500,
		UpdateRates: []float64{0.01, 0.05, 0.1, 0.3, 0.6},
		Seed:        505,
	}
}

// RunE5 reproduces the §5.2 name-service scenario: updates and queries
// are generated spontaneously with no causal relations, each query
// carries the update count its issuing site had seen, and replicas
// discard queries whose context disagrees. Against it we run the same
// workload in strict mode (queries causally ordered after every update
// via the front-end protocol), which never discards but delays every
// query behind update propagation. The claim reproduced: the
// application-specific protocol "provides more asynchronism in execution
// ... when inconsistencies occur infrequently".
func RunE5(cfg E5Config) Table {
	t := Table{
		ID:    "E5",
		Title: "context-checked queries: discard rate vs update rate",
		Claim: "application-level inconsistency handling gives more asynchronism when inconsistencies are infrequent (§5.2)",
		Columns: []string{
			"upd/qry", "loose qry mean ms", "discard %", "strict qry mean ms", "strict discard %", "asynchrony win",
		},
	}
	for _, ur := range cfg.UpdateRates {
		looseLat, looseDiscard := runRegistryLoose(cfg, ur)
		strictLat := runRegistryStrict(cfg, ur)
		win := strictLat / looseLat
		t.Rows = append(t.Rows, []string{
			f2(ur),
			f3(looseLat),
			f2(looseDiscard * 100),
			f3(strictLat),
			"0.00",
			fmt.Sprintf("%.2fx", win),
		})
	}
	t.Notes = "loose queries deliver at raw network latency and discards grow with update rate; strict ordering never discards but every query pays the causal-ordering wait — the crossover matches the paper's guidance"
	return t
}

// runRegistryLoose: spontaneous upd/qry, context check at replicas.
// Returns mean query delivery latency (ms) and mean discard fraction.
func runRegistryLoose(cfg E5Config, updPerQry float64) (float64, float64) {
	s := sim.New(cfg.Seed)
	net := sim.NewNet(s, defaultNet())

	states := make([]core.State, cfg.Members)
	for i := range states {
		states[i] = shareddata.NewRegistry()
	}
	// Per-member issue-time context: the member's own replica state.
	cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, cfg.Members, func(m int, msg message.Message, _ sim.Time) {
		states[m] = shareddata.ApplyRegistry(states[m], msg)
	})

	rng := s.Rand()
	seq := uint64(0)
	queries := 0
	for queries < cfg.Queries {
		seq++
		k := seq
		member := rng.Intn(cfg.Members)
		isUpdate := rng.Float64() < updPerQry/(1+updPerQry)
		if !isUpdate {
			queries++
		}
		s.At(sim.Time(k)*ms(0.4), func() {
			var op shareddata.RegistryOp
			if isUpdate {
				op = shareddata.Upd("svc", fmt.Sprintf("v%d", k))
			} else {
				reg, ok := states[member].(*shareddata.Registry)
				if !ok {
					return
				}
				op = shareddata.Qry("svc", reg.Updates())
			}
			cluster.Broadcast(member, message.Message{
				Label: message.Label{Origin: sim.MemberID(member) + "~reg", Seq: k},
				Kind:  op.Kind,
				Op:    op.Op,
				Body:  op.Body,
			})
		})
	}
	s.Run(0)
	lat := sim.Summarize(cluster.Latencies())
	var discardSum, updSum float64
	for _, st := range states {
		reg, ok := st.(*shareddata.Registry)
		if !ok {
			continue
		}
		discardSum += float64(reg.Discarded())
		updSum++
	}
	discardRate := discardSum / (float64(cfg.Queries) * updSum)
	return sim.Millis(lat.Mean), discardRate
}

// runRegistryStrict: every query is causally ordered after every update
// via the §6.1 front-end (updates non-commutative, queries read-kind).
// Returns mean query delivery latency (ms); discards are impossible.
func runRegistryStrict(cfg E5Config, updPerQry float64) float64 {
	s := sim.New(cfg.Seed)
	net := sim.NewNet(s, defaultNet())
	cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, cfg.Members, nil)
	fe, err := core.NewComposer("strict~cli")
	if err != nil {
		return 0
	}
	rng := s.Rand()
	seq := uint64(0)
	queries := 0
	for queries < cfg.Queries {
		seq++
		k := seq
		member := rng.Intn(cfg.Members)
		isUpdate := rng.Float64() < updPerQry/(1+updPerQry)
		if !isUpdate {
			queries++
		}
		s.At(sim.Time(k)*ms(0.4), func() {
			var m message.Message
			var err error
			if isUpdate {
				op := shareddata.Upd("svc", fmt.Sprintf("v%d", k))
				m, err = fe.Compose(op.Op, message.KindNonCommutative, op.Body)
			} else {
				m, err = fe.Compose(shareddata.OpQry, message.KindRead, nil)
			}
			if err != nil {
				return
			}
			cluster.Broadcast(member, m)
		})
	}
	s.Run(0)
	lat := sim.Summarize(cluster.Latencies())
	return sim.Millis(lat.Mean)
}
