package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func cell(t *testing.T, tbl Table, row int, col string) string {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tbl.ID, col, tbl.Columns)
	return ""
}

func cellF(t *testing.T, tbl Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, tbl, row, col), "x"), 64)
	if err != nil {
		t.Fatalf("table %s row %d col %q = %q not numeric: %v", tbl.ID, row, col, cell(t, tbl, row, col), err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tbl := Table{
		ID: "T", Title: "test", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	out := tbl.String()
	for _, want := range []string{"T — test", "claim: c", "333", "notes: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	all := All()
	for _, id := range IDs() {
		if _, ok := all[id]; !ok {
			t.Errorf("experiment %s has no runner", id)
		}
	}
	if len(all) != len(IDs()) {
		t.Errorf("All() has %d runners, IDs() has %d", len(all), len(IDs()))
	}
}

func TestE1Shape(t *testing.T) {
	cfg := DefaultE1()
	cfg.Ops = 400
	cfg.Fractions = []float64{0, 0.9, 1.0}
	tbl := RunE1(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	for i := range tbl.Rows {
		causal := cellF(t, tbl, i, "causal mean ms")
		merge := cellF(t, tbl, i, "merge mean ms")
		seq := cellF(t, tbl, i, "seq mean ms")
		if causal >= merge {
			t.Errorf("f=%s: causal %.3f not below merge %.3f", tbl.Rows[i][0], causal, merge)
		}
		if causal >= seq {
			t.Errorf("f=%s: causal %.3f not below sequencer %.3f", tbl.Rows[i][0], causal, seq)
		}
	}
	// Latency should fall (or at least not rise) as f grows.
	if cellF(t, tbl, 2, "causal mean ms") > cellF(t, tbl, 0, "causal mean ms") {
		t.Error("causal latency did not improve with commutative fraction")
	}
	// Frame economy: causal needs fewer frames than merge (heartbeats).
	if cellF(t, tbl, 0, "causal frames") >= cellF(t, tbl, 0, "merge frames") {
		t.Error("causal frames not below merge frames")
	}
}

func TestE2Shape(t *testing.T) {
	cfg := DefaultE2()
	cfg.Ops = 300
	cfg.Sizes = []int{2, 8, 16}
	tbl := RunE2(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	last := len(tbl.Rows) - 1
	mergeGrowth := cellF(t, tbl, last, "merge mean ms") / cellF(t, tbl, 0, "merge mean ms")
	causalGrowth := cellF(t, tbl, last, "causal mean ms") / cellF(t, tbl, 0, "causal mean ms")
	if mergeGrowth <= causalGrowth {
		t.Errorf("total ordering did not degrade faster than causal: merge %.2fx vs causal %.2fx",
			mergeGrowth, causalGrowth)
	}
	// Causal must beat merge at the largest size.
	if cellF(t, tbl, last, "causal mean ms") >= cellF(t, tbl, last, "merge mean ms") {
		t.Error("causal not faster than total order at n=16")
	}
}

func TestE3Shape(t *testing.T) {
	cfg := DefaultE3()
	cfg.Cycles = 20
	cfg.ActivitySz = []int{0, 5, 20}
	cfg.Reads = 100
	tbl := RunE3(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	prev := -1.0
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, "agreement"); got != "AGREE" {
			t.Fatalf("f_gamma=%s: %s", tbl.Rows[i][0], got)
		}
		if got := cell(t, tbl, i, "extra agree msgs"); got != "0" {
			t.Errorf("stable points cost messages: %s", got)
		}
		mean := cellF(t, tbl, i, "read mean ms")
		if mean < prev {
			t.Errorf("read latency not monotone in activity size: %.3f after %.3f", mean, prev)
		}
		prev = mean
	}
}

func TestE4Shape(t *testing.T) {
	cfg := E4Config{Sizes: []int{3, 5}, SyncPoints: 10}
	tbl := RunE4(cfg)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	for i, n := range cfg.Sizes {
		want := float64(3 * (n - 1))
		if got := cellF(t, tbl, i, "explicit msgs/sync"); got != want {
			t.Errorf("n=%d: msgs/sync = %.2f, want %.2f", n, got, want)
		}
		if got := cell(t, tbl, i, "stable-point msgs/sync"); got != "0.00" {
			t.Errorf("stable points not free: %s", got)
		}
	}
}

func TestE5Shape(t *testing.T) {
	cfg := DefaultE5()
	cfg.Queries = 300
	cfg.UpdateRates = []float64{0.01, 0.3}
	tbl := RunE5(cfg)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	lowDiscard := cellF(t, tbl, 0, "discard %")
	highDiscard := cellF(t, tbl, 1, "discard %")
	if highDiscard <= lowDiscard {
		t.Errorf("discards did not grow with update rate: %.2f%% -> %.2f%%", lowDiscard, highDiscard)
	}
	for i := range tbl.Rows {
		if win := cellF(t, tbl, i, "asynchrony win"); win <= 1.0 {
			t.Errorf("row %d: loose protocol shows no asynchrony win (%.2fx)", i, win)
		}
		if loose := cellF(t, tbl, i, "loose qry mean ms"); loose >= cellF(t, tbl, i, "strict qry mean ms") {
			t.Errorf("row %d: loose latency %.3f not below strict", i, loose)
		}
	}
}

func TestE6Shape(t *testing.T) {
	cfg := DefaultE6()
	cfg.Ops = 400
	cfg.Jitters = []float64{5, 20}
	tbl := RunE6(cfg)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	for i := range tbl.Rows {
		osend := cellF(t, tbl, i, "osend max buf")
		cbcast := cellF(t, tbl, i, "cbcast max buf")
		if cbcast <= osend {
			t.Errorf("jitter %s: CBCAST buffer %v not above OSend %v",
				tbl.Rows[i][0], cbcast, osend)
		}
	}
}

func TestE7Shape(t *testing.T) {
	tbl := RunE7(DefaultE7())
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// OSend bytes constant; CBCAST bytes strictly increasing.
	base := cell(t, tbl, 0, "osend dep bytes")
	prev := 0.0
	for i := range tbl.Rows {
		if cell(t, tbl, i, "osend dep bytes") != base {
			t.Error("OSend metadata varied with group size")
		}
		cb := cellF(t, tbl, i, "cbcast clock bytes")
		if cb <= prev {
			t.Error("CBCAST metadata not increasing with group size")
		}
		prev = cb
	}
	last := len(tbl.Rows) - 1
	if ratio := cellF(t, tbl, last, "ratio"); ratio < 5 {
		t.Errorf("at n=64 CBCAST/OSend ratio = %.2f, expected >> 1", ratio)
	}
}

func TestE8Shape(t *testing.T) {
	cfg := E8Config{Players: []int{3, 6}, K: 2, LinCap: 10000}
	tbl := RunE8(cfg)
	for i := range tbl.Rows {
		if w := cellF(t, tbl, i, "strict width"); w != 1.0 {
			t.Errorf("strict width = %.2f, want 1.0", w)
		}
		if w := cellF(t, tbl, i, "relaxed width"); w <= 1.0 {
			t.Errorf("relaxed width = %.2f, want > 1", w)
		}
		if s := cell(t, tbl, i, "strict schedules"); s != "1" {
			t.Errorf("strict schedules = %s, want 1", s)
		}
	}
}

func TestE9Shape(t *testing.T) {
	cfg := E9Config{Sizes: []int{3}, Rotations: 2}
	tbl := RunE9(cfg)
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	if got := cell(t, tbl, 0, "holder agreement"); got != "AGREE" {
		t.Errorf("agreement = %s", got)
	}
	if grants := cellF(t, tbl, 0, "grants"); grants < 6 {
		t.Errorf("grants = %.0f, want >= 6 (3 members x 2 rotations)", grants)
	}
}

func TestE11Shape(t *testing.T) {
	cfg := DefaultE11()
	cfg.Writes = 80
	cfg.Keys = []int{1, 8}
	tbl := RunE11(cfg)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d; notes: %s", len(tbl.Rows), tbl.Notes)
	}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, "agreement"); got != "AGREE" {
			t.Fatalf("row %d agreement = %s", i, got)
		}
		if w := cellF(t, tbl, i, "naive width"); w != 1.0 {
			t.Errorf("naive width = %.2f, want 1.0 (all overwrites serialized)", w)
		}
	}
	// With 8 keys the scoped protocol must be wider and faster than naive.
	if cellF(t, tbl, 1, "scoped width") <= 4 {
		t.Errorf("scoped width at 8 keys = %.2f, want near 8", cellF(t, tbl, 1, "scoped width"))
	}
	if cellF(t, tbl, 1, "scoped mean ms") >= cellF(t, tbl, 1, "naive mean ms") {
		t.Error("scoped latency not below naive at 8 keys")
	}
}

func TestE10Shape(t *testing.T) {
	cfg := DefaultE10()
	cfg.Ops = 300
	cfg.Probes = 50
	cfg.Heartbeats = []float64{1, 10}
	tbl := RunE10(cfg)
	var hbRows []int
	for i, row := range tbl.Rows {
		if row[0] == "heartbeat" {
			hbRows = append(hbRows, i)
		}
	}
	if len(hbRows) != 2 {
		t.Fatalf("heartbeat rows = %d; notes: %s", len(hbRows), tbl.Notes)
	}
	fast, slow := hbRows[0], hbRows[1]
	if cellF(t, tbl, fast, "mean ms") >= cellF(t, tbl, slow, "mean ms") {
		t.Error("faster heartbeats did not reduce latency")
	}
	if cellF(t, tbl, fast, "frames") <= cellF(t, tbl, slow, "frames") {
		t.Error("faster heartbeats did not cost more frames")
	}
	// The deferred-read row must claim zero divergence.
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "reads" && row[1] == "deferred" && strings.HasPrefix(row[4], "0%") {
			found = true
		}
	}
	if !found {
		t.Error("deferred-read row missing or non-zero divergence")
	}
}

func TestE12Shape(t *testing.T) {
	cfg := DefaultE12()
	cfg.Heartbeats = []time.Duration{2 * time.Millisecond, 8 * time.Millisecond}
	cfg.SendsPerMember = 10
	tbl := RunE12(cfg)
	if strings.HasPrefix(tbl.Notes, "error:") {
		t.Fatal(tbl.Notes)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, "converged"); got != "yes" {
			t.Errorf("row %d converged = %q", i, got)
		}
		if cellF(t, tbl, i, "elections") == 0 {
			t.Errorf("row %d recorded no election", i)
		}
		if cellF(t, tbl, i, "recovery ms") <= 0 {
			t.Errorf("row %d recovery latency not measured", i)
		}
		if cellF(t, tbl, i, "election ms") <= 0 {
			t.Errorf("row %d election round not measured", i)
		}
	}
	// A wider detection window must cost more recovery latency.
	if cellF(t, tbl, 0, "recovery ms") >= cellF(t, tbl, 1, "recovery ms") {
		t.Errorf("recovery latency did not grow with the heartbeat interval: %s vs %s",
			cell(t, tbl, 0, "recovery ms"), cell(t, tbl, 1, "recovery ms"))
	}
}

func TestE13Shape(t *testing.T) {
	cfg := DefaultE13()
	cfg.Ops = 400
	cfg.Rotations = 2
	tbl := RunE13(cfg)
	if strings.HasPrefix(tbl.Notes, "error:") {
		t.Fatal(tbl.Notes)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 workloads x 3 modes)", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if cellF(t, tbl, i, "us/op") <= 0 {
			t.Errorf("row %d measured no latency", i)
		}
		mode := cell(t, tbl, i, "mode")
		if mode == "off" {
			if got := cell(t, tbl, i, "traces"); got != "-" {
				t.Errorf("row %d: off mode reported collector counters: %q", i, got)
			}
			continue
		}
		// Traced modes must account for their spans and audit clean.
		if cellF(t, tbl, i, "spans") <= 0 {
			t.Errorf("row %d (%s) recorded no spans", i, mode)
		}
		if got := cell(t, tbl, i, "violations"); got != "0" {
			t.Errorf("row %d (%s) audit violations = %s, want 0", i, mode, got)
		}
	}
	// Sampling must trace strictly fewer activities than always-on.
	if cellF(t, tbl, 1, "traces") >= cellF(t, tbl, 2, "traces") {
		t.Errorf("sampled mode traced %s activities, always-on %s — sampling had no effect",
			cell(t, tbl, 1, "traces"), cell(t, tbl, 2, "traces"))
	}
}
