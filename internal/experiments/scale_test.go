package experiments

import (
	"testing"
	"time"
)

// TestE15Shape runs the metadata-scaling sweep at CI-friendly sizes and
// pins the claim's shape: every row converges, per-frame metadata grows
// with n for the clocked engines and stays flat for PC-cast, and the
// flood's frame amplification is visible in frames/msg.
func TestE15Shape(t *testing.T) {
	cfg := DefaultE15()
	cfg.Sizes = []int{4, 16}
	cfg.Timeout = 30 * time.Second
	tbl := RunE15(cfg)
	if len(tbl.Rows) != len(cfg.Sizes)*len(cfg.Engines) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(cfg.Sizes)*len(cfg.Engines))
	}
	bpf := map[string]map[int]float64{}
	fpm := map[string]map[int]float64{}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, "converged"); got != "yes" {
			t.Fatalf("row %d (%s n=%s) converged = %q", i, cell(t, tbl, i, "engine"), cell(t, tbl, i, "n"), got)
		}
		eng := cell(t, tbl, i, "engine")
		n := int(cellF(t, tbl, i, "n"))
		if bpf[eng] == nil {
			bpf[eng], fpm[eng] = map[int]float64{}, map[int]float64{}
		}
		bpf[eng][n] = cellF(t, tbl, i, "meta B/frame")
		fpm[eng][n] = cellF(t, tbl, i, "frames/msg")
	}
	// Clocked engines: per-frame metadata must grow with n.
	for _, eng := range []string{"cbcast", "osend"} {
		if bpf[eng][16] <= bpf[eng][4] {
			t.Errorf("%s meta B/frame flat: n=4 %.1f, n=16 %.1f", eng, bpf[eng][4], bpf[eng][16])
		}
	}
	// PC-cast: constant-size header, so growth stays within noise (the
	// header's uvarint fields can add a byte, never a linear term).
	if bpf["pccast"][16] > bpf["pccast"][4]+2 {
		t.Errorf("pccast meta B/frame grew: n=4 %.1f, n=16 %.1f", bpf["pccast"][4], bpf["pccast"][16])
	}
	// At n=16 the clocked engines already pay more per frame than the
	// constant header.
	if bpf["pccast"][16] >= bpf["cbcast"][16] {
		t.Errorf("pccast per-frame %.1f not below cbcast %.1f at n=16", bpf["pccast"][16], bpf["cbcast"][16])
	}
	// Flood amplification: pccast ships ~n(n−1) frames/msg, the clocked
	// engines n−1.
	if fpm["pccast"][16] < 10*fpm["cbcast"][16] {
		t.Errorf("flood amplification missing: pccast %.0f frames/msg vs cbcast %.0f", fpm["pccast"][16], fpm["cbcast"][16])
	}
}

// TestSetEngine pins the chaos-runner engine selector used by the
// -engine flag of cmd/experiments.
func TestSetEngine(t *testing.T) {
	defer SetEngine("")
	if Engine() != "osend" {
		t.Fatalf("default engine = %q", Engine())
	}
	SetEngine("pccast")
	if Engine() != "pccast" {
		t.Fatalf("engine after SetEngine = %q", Engine())
	}
	SetEngine("")
	if Engine() != "osend" {
		t.Fatalf("engine after reset = %q", Engine())
	}
}
