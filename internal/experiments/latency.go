package experiments

import (
	"fmt"

	"causalshare/internal/sim"
)

// E1Config parameterizes the commutative-fraction sweep.
type E1Config struct {
	Members   int
	Ops       int
	Clients   int
	Fractions []float64
	Seed      int64
}

// DefaultE1 returns the parameters used by the paper-reproduction run.
// The paper: "Typically, 90% of the operations are commutative (e.g., as
// in many database applications). Thus, for example, f_gamma = 20."
func DefaultE1() E1Config {
	return E1Config{
		Members:   5,
		Ops:       2000,
		Clients:   2,
		Fractions: []float64{0, 0.5, 0.8, 0.9, 0.95, 1.0},
		Seed:      101,
	}
}

// RunE1 sweeps the commutative fraction f and measures mean delivery
// latency under (a) the paper's causal OSend protocol, (b) decentralized
// total ordering (merge), and (c) sequencer total ordering, plus frame
// counts. The claim reproduced: relaxed causal ordering delivers at
// network latency regardless of f, while totally ordering everything
// costs extra latency and frames — so the commutativity knowledge is pure
// win, growing with f.
func RunE1(cfg E1Config) Table {
	t := Table{
		ID:    "E1",
		Title: "delivery latency vs commutative fraction f",
		Claim: "relaxed (causal) ordering of commutative operations yields more asynchronism than total ordering; 90% of operations are typically commutative",
		Columns: []string{
			"f", "causal mean ms", "causal p95 ms", "merge mean ms", "seq mean ms",
			"causal frames", "merge frames", "seq frames",
		},
	}
	var causalAt09, mergeAt09 float64
	for _, f := range cfg.Fractions {
		w := counterWorkload{Ops: cfg.Ops, Frac: f, Clients: cfg.Clients, Gap: ms(0.5)}

		sc := sim.New(cfg.Seed)
		netC := sim.NewNet(sc, defaultNet())
		causal := sim.NewCausalCluster(sc, netC, sim.RuleOSend, cfg.Members, nil)
		if err := w.driveCausal(sc, causal); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		sc.Run(0)
		causalSum := sim.Summarize(causal.Latencies())

		sm := sim.New(cfg.Seed)
		netM := sim.NewNet(sm, defaultNet())
		merge := sim.NewTotalCluster(sm, netM, sim.ModeMerge, cfg.Members, ms(2), nil)
		if err := w.driveTotal(sm, merge); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		sm.Run(sim.Time(cfg.Ops)*ms(0.5) + ms(500))
		mergeSum := sim.Summarize(merge.Latencies())

		sq := sim.New(cfg.Seed)
		netQ := sim.NewNet(sq, defaultNet())
		seq := sim.NewTotalCluster(sq, netQ, sim.ModeSequencer, cfg.Members, 0, nil)
		if err := w.driveTotal(sq, seq); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		sq.Run(0)
		seqSum := sim.Summarize(seq.Latencies())

		if f == 0.9 {
			causalAt09 = sim.Millis(causalSum.Mean)
			mergeAt09 = sim.Millis(mergeSum.Mean)
		}
		t.Rows = append(t.Rows, []string{
			f2(f),
			f3(sim.Millis(causalSum.Mean)), f3(sim.Millis(causalSum.P95)),
			f3(sim.Millis(mergeSum.Mean)), f3(sim.Millis(seqSum.Mean)),
			utoa(netC.Frames()), utoa(netM.Frames()), utoa(netQ.Frames()),
		})
	}
	if causalAt09 > 0 {
		t.Notes = fmt.Sprintf(
			"at the paper's typical f=0.9: causal %.3fms vs merge total order %.3fms (%.1fx)",
			causalAt09, mergeAt09, mergeAt09/causalAt09)
	}
	return t
}

// E2Config parameterizes the group-size sweep.
type E2Config struct {
	Sizes   []int
	Ops     int
	Frac    float64
	Clients int
	Seed    int64
}

// DefaultE2 returns the reproduction parameters.
func DefaultE2() E2Config {
	return E2Config{
		Sizes:   []int{2, 4, 8, 16, 32},
		Ops:     1200,
		Frac:    0.9,
		Clients: 2,
		Seed:    202,
	}
}

// RunE2 sweeps the group size n at the paper's typical f=0.9 mix. The
// claim reproduced: "Total ordering may be feasible when the group size
// is not large" — total-order latency and frame counts grow with n while
// the causal protocol stays near network latency.
func RunE2(cfg E2Config) Table {
	t := Table{
		ID:    "E2",
		Title: "delivery latency vs group size n (f=0.9)",
		Claim: "total ordering may be feasible when the group size is not large [12]; causal ordering scales further",
		Columns: []string{
			"n", "causal mean ms", "merge mean ms", "merge hb frames", "seq mean ms",
			"causal ctrl B/msg", "merge holdback max",
		},
	}
	var first, last struct{ causal, merge float64 }
	for idx, n := range cfg.Sizes {
		w := counterWorkload{Ops: cfg.Ops, Frac: cfg.Frac, Clients: cfg.Clients, Gap: ms(0.5)}

		sc := sim.New(cfg.Seed)
		netC := sim.NewNet(sc, defaultNet())
		causal := sim.NewCausalCluster(sc, netC, sim.RuleOSend, n, nil)
		if err := w.driveCausal(sc, causal); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		sc.Run(0)
		causalSum := sim.Summarize(causal.Latencies())

		sm := sim.New(cfg.Seed)
		netM := sim.NewNet(sm, defaultNet())
		merge := sim.NewTotalCluster(sm, netM, sim.ModeMerge, n, ms(2), nil)
		if err := w.driveTotal(sm, merge); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		sm.Run(sim.Time(cfg.Ops)*ms(0.5) + ms(500))
		mergeSum := sim.Summarize(merge.Latencies())

		sq := sim.New(cfg.Seed)
		netQ := sim.NewNet(sq, defaultNet())
		seq := sim.NewTotalCluster(sq, netQ, sim.ModeSequencer, n, 0, nil)
		if err := w.driveTotal(sq, seq); err != nil {
			t.Notes = "error: " + err.Error()
			return t
		}
		sq.Run(0)
		seqSum := sim.Summarize(seq.Latencies())

		ctrlPerMsg := float64(causal.ControlBytes()) / float64(cfg.Ops)
		t.Rows = append(t.Rows, []string{
			itoa(n),
			f3(sim.Millis(causalSum.Mean)),
			f3(sim.Millis(mergeSum.Mean)),
			utoa(merge.HeartbeatFrames()),
			f3(sim.Millis(seqSum.Mean)),
			f2(ctrlPerMsg),
			itoa(merge.MaxHoldback()),
		})
		if idx == 0 {
			first.causal, first.merge = sim.Millis(causalSum.Mean), sim.Millis(mergeSum.Mean)
		}
		if idx == len(cfg.Sizes)-1 {
			last.causal, last.merge = sim.Millis(causalSum.Mean), sim.Millis(mergeSum.Mean)
		}
	}
	t.Notes = fmt.Sprintf(
		"n=%d→%d: causal %.3f→%.3fms, merge total order %.3f→%.3fms — total ordering degrades with group size, causal stays near network latency",
		cfg.Sizes[0], cfg.Sizes[len(cfg.Sizes)-1], first.causal, last.causal, first.merge, last.merge)
	return t
}
