// Package experiments implements the paper-reproduction harness: one
// runner per experiment in DESIGN.md's index (E1–E14), each returning a
// Table whose rows reproduce the corresponding claim's shape. The
// cmd/experiments binary prints all tables; bench_test.go wraps each
// runner in a testing.B benchmark.
//
// The paper (a model paper) reports no measured numbers, so EXPERIMENTS.md
// records, per experiment, the qualitative claim from the paper next to
// the measured rows produced here. All runners are deterministic: seeded
// virtual-time simulation or fault-free live stacks.
package experiments

import (
	"fmt"
	"strings"

	"causalshare/internal/telemetry"
)

// sharedReg, when set via SetTelemetry, is the registry live-stack runners
// register their instruments on, so a cmd/experiments -metrics-addr
// endpoint exposes layer counters while experiments run. Runners that
// report per-run snapshots fall back to a private registry when unset.
var sharedReg *telemetry.Registry

// SetTelemetry installs a registry for live-stack runners to share. Call
// it before running experiments; nil restores private per-run registries.
func SetTelemetry(reg *telemetry.Registry) { sharedReg = reg }

// engineName selects the causal engine chaos-backed runners (E14) drive;
// E15 always sweeps all three. The default matches the rest of the repo.
var engineName = "osend"

// SetEngine selects the causal engine for chaos-backed runners: "osend"
// (default), "cbcast" is not supported by the chaos harness, "pccast"
// runs the PC-broadcast engine over the reliability sublayer. Empty
// restores the default.
func SetEngine(name string) {
	if name == "" {
		name = "osend"
	}
	engineName = name
}

// Engine reports the currently selected chaos-runner engine.
func Engine() string { return engineName }

// runnerRegistry returns the shared registry, or a fresh private one so a
// runner always has somewhere to register and snapshot from.
func runnerRegistry() *telemetry.Registry {
	if sharedReg != nil {
		return sharedReg
	}
	return telemetry.NewRegistry()
}

// Table is one experiment's reproducible output.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title names the experiment.
	Title string
	// Claim quotes or paraphrases the paper's claim being reproduced.
	Claim string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes holds the measured interpretation (who won, by what factor).
	Notes string
	// Telemetry, when non-empty, is a compact registry snapshot captured
	// after the run (live-stack experiments only).
	Telemetry string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "notes: %s\n", t.Notes)
	}
	if t.Telemetry != "" {
		fmt.Fprintf(&b, "telemetry: %s\n", t.Telemetry)
	}
	return b.String()
}

// Runner produces one experiment table with default parameters.
type Runner func() Table

// All returns every experiment runner keyed by ID, for the CLI and the
// benchmark harness.
func All() map[string]Runner {
	return map[string]Runner{
		"E1":  func() Table { return RunE1(DefaultE1()) },
		"E2":  func() Table { return RunE2(DefaultE2()) },
		"E3":  func() Table { return RunE3(DefaultE3()) },
		"E4":  func() Table { return RunE4(DefaultE4()) },
		"E5":  func() Table { return RunE5(DefaultE5()) },
		"E6":  func() Table { return RunE6(DefaultE6()) },
		"E7":  func() Table { return RunE7(DefaultE7()) },
		"E8":  func() Table { return RunE8(DefaultE8()) },
		"E9":  func() Table { return RunE9(DefaultE9()) },
		"E10": func() Table { return RunE10(DefaultE10()) },
		"E11": func() Table { return RunE11(DefaultE11()) },
		"E12": func() Table { return RunE12(DefaultE12()) },
		"E13": func() Table { return RunE13(DefaultE13()) },
		"E14": func() Table { return RunE14(DefaultE14()) },
		"E15": func() Table { return RunE15(DefaultE15()) },
	}
}

// IDs returns experiment ids in run order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func utoa(v uint64) string { return fmt.Sprintf("%d", v) }
