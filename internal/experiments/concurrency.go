package experiments

import (
	"fmt"

	"causalshare/internal/graph"
	"causalshare/internal/message"
)

// E8Config parameterizes the concurrency-degree experiment.
type E8Config struct {
	Players []int
	// K is the lookback of the card-game dependency: player l depends on
	// player l-K's card rather than the immediately preceding player.
	K int
	// LinCap bounds linearization counting.
	LinCap int
}

// DefaultE8 returns the reproduction parameters.
func DefaultE8() E8Config {
	return E8Config{Players: []int{3, 4, 6, 8, 12}, K: 2, LinCap: 100000}
}

// RunE8 reproduces the §5.1 multiplayer card-game analysis: when player
// l's action depends only on player l-K's card (not the immediately
// preceding player), the orderings relax from a strict chain to
// ||{card_l, card_{l-1}, ...} and concurrency rises. We build both graphs
// with the real graph machinery and report the mean antichain width (1.0
// = fully serial) and the number of admissible schedules.
func RunE8(cfg E8Config) Table {
	t := Table{
		ID:    "E8",
		Title: "concurrency degree: relaxed card-game order vs strict turns",
		Claim: "card_k -> card_l with ||{card_(k+1)..card_(l-1)} results in a relaxed ordering and thus higher concurrency (§5.1)",
		Columns: []string{
			"players", "strict width", "relaxed width", "strict schedules", "relaxed schedules",
		},
	}
	for _, r := range cfg.Players {
		strict := buildCardGraph(r, 1)
		relaxed := buildCardGraph(r, cfg.K)
		sLin := strict.CountLinearizations(cfg.LinCap)
		rLin := relaxed.CountLinearizations(cfg.LinCap)
		sLinStr, rLinStr := itoa(sLin), itoa(rLin)
		if sLin >= cfg.LinCap {
			sLinStr = fmt.Sprintf(">=%d", cfg.LinCap)
		}
		if rLin >= cfg.LinCap {
			rLinStr = fmt.Sprintf(">=%d", cfg.LinCap)
		}
		t.Rows = append(t.Rows, []string{
			itoa(r),
			f2(strict.MeanWidth()),
			f2(relaxed.MeanWidth()),
			sLinStr,
			rLinStr,
		})
	}
	t.Notes = "strict turn-taking admits exactly one schedule (width 1.0); the k-lookback dependency multiplies admissible schedules and widens each layer — the relaxed ordering the paper advocates"
	return t
}

// buildCardGraph constructs the card-play dependency graph for r players
// over two rounds: with lookback k, play i depends on play i-k.
func buildCardGraph(r, k int) *graph.Graph {
	g := graph.New()
	total := 2 * r
	labels := make([]message.Label, total)
	for i := 0; i < total; i++ {
		labels[i] = message.Label{Origin: fmt.Sprintf("p%02d", i%r), Seq: uint64(i/r + 1)}
		var deps []message.Label
		if i-k >= 0 {
			deps = append(deps, labels[i-k])
		}
		// Errors impossible: edges always point backwards in play order.
		_ = g.AddEdges(labels[i], deps)
	}
	return g
}
