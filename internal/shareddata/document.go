package shareddata

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

// Document is the distributed-conferencing example (§5.2, reference [11]):
// a shared design document that participants collaboratively annotate
// from their workstations. Annotations are commutative — they accumulate
// as a set, so any interleaving is transition-preserving — while editing
// a section and publishing a revision are non-commutative.
//
// Annotations are stored keyed by the annotating message's label, which
// makes the set identical at every replica regardless of arrival order
// (the deterministic-digest requirement of core.State).
type Document struct {
	// sections maps section name to its current text.
	sections map[string]string
	// notes maps section name to its annotation set, keyed by the label
	// of the message that added each note.
	notes map[string]map[message.Label]string
	// revision increments on every publish.
	revision uint64
}

var _ core.State = (*Document)(nil)

// NewDocument returns an empty document.
func NewDocument() *Document {
	return &Document{
		sections: make(map[string]string),
		notes:    make(map[string]map[message.Label]string),
	}
}

// Clone implements core.State.
func (d *Document) Clone() core.State {
	out := NewDocument()
	out.revision = d.revision
	for s, txt := range d.sections {
		out.sections[s] = txt
	}
	for s, ns := range d.notes {
		cp := make(map[message.Label]string, len(ns))
		for l, n := range ns {
			cp[l] = n
		}
		out.notes[s] = cp
	}
	return out
}

// Equal implements core.State.
func (d *Document) Equal(o core.State) bool {
	od, ok := o.(*Document)
	if !ok || d.revision != od.revision ||
		len(d.sections) != len(od.sections) || len(d.notes) != len(od.notes) {
		return false
	}
	for s, txt := range d.sections {
		if od.sections[s] != txt {
			return false
		}
	}
	for s, ns := range d.notes {
		ons, ok := od.notes[s]
		if !ok || len(ns) != len(ons) {
			return false
		}
		for l, n := range ns {
			if ons[l] != n {
				return false
			}
		}
	}
	return true
}

// Digest implements core.State.
func (d *Document) Digest() string {
	h := fnv.New64a()
	secs := make([]string, 0, len(d.sections))
	for s := range d.sections {
		secs = append(secs, s)
	}
	sort.Strings(secs)
	for _, s := range secs {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(d.sections[s]))
		_, _ = h.Write([]byte{0})
	}
	noteSecs := make([]string, 0, len(d.notes))
	for s := range d.notes {
		noteSecs = append(noteSecs, s)
	}
	sort.Strings(noteSecs)
	for _, s := range noteSecs {
		ns := d.notes[s]
		labels := make([]message.Label, 0, len(ns))
		for l := range ns {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })
		for _, l := range labels {
			_, _ = h.Write([]byte(l.String()))
			_, _ = h.Write([]byte(ns[l]))
			_, _ = h.Write([]byte{2})
		}
	}
	return "doc:r" + strconv.FormatUint(d.revision, 10) + ":" + strconv.FormatUint(h.Sum64(), 16)
}

// Section returns the text of a section.
func (d *Document) Section(name string) (string, bool) {
	t, ok := d.sections[name]
	return t, ok
}

// Notes returns the annotations on a section, sorted by annotating label.
func (d *Document) Notes(section string) []string {
	ns := d.notes[section]
	labels := make([]message.Label, 0, len(ns))
	for l := range ns {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = ns[l]
	}
	return out
}

// Revision returns the publish count.
func (d *Document) Revision() uint64 { return d.revision }

// Document operation names.
const (
	OpAnnotate = "annotate"
	OpEdit     = "edit"
	OpPublish  = "publish"
)

// DocOp describes one document operation.
type DocOp struct {
	Op   string
	Kind message.Kind
	Body []byte
}

// Annotate returns a commutative annotation on section.
func Annotate(section, note string) DocOp {
	return DocOp{Op: OpAnnotate, Kind: message.KindCommutative, Body: []byte(section + "\x00" + note)}
}

// Edit returns a non-commutative rewrite of a section's text. It clears
// the section's annotations (they referred to the old text).
func Edit(section, text string) DocOp {
	return DocOp{Op: OpEdit, Kind: message.KindNonCommutative, Body: []byte(section + "\x00" + text)}
}

// Publish returns a non-commutative revision bump — the conference's
// synchronization point.
func Publish() DocOp {
	return DocOp{Op: OpPublish, Kind: message.KindNonCommutative}
}

// ApplyDocument is the transition function F for Document states.
func ApplyDocument(s core.State, m message.Message) core.State {
	d, ok := s.(*Document)
	if !ok {
		return s
	}
	switch m.Op {
	case OpAnnotate:
		section, note, ok := strings.Cut(string(m.Body), "\x00")
		if !ok {
			return d
		}
		ns := d.notes[section]
		if ns == nil {
			ns = make(map[message.Label]string)
			d.notes[section] = ns
		}
		ns[m.Label] = note
	case OpEdit:
		section, text, ok := strings.Cut(string(m.Body), "\x00")
		if !ok {
			return d
		}
		d.sections[section] = text
		delete(d.notes, section)
	case OpPublish:
		d.revision++
	}
	return d
}
