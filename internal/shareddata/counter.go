// Package shareddata provides replicated data types built on the core
// model, one per motivating example in the paper:
//
//   - Counter — the running integer example of §2.2: commutative inc/dec,
//     non-commutative set, reads ordered after increments.
//   - Registry — the §5.2 name service: upd/qry operations with the
//     context-carrying query protocol that detects and discards
//     inconsistent query results at the application level.
//   - KVStore — a keyed store mixing commutative per-key deltas with
//     non-commutative puts and deletes.
//   - Document — the §5.2/[11] conferencing example: a design document
//     with commutative annotations and non-commutative edits.
//
// Each type supplies a core.State implementation, the transition function
// F, and operation constructors that choose the message.Kind the §6.1
// front-end protocol needs.
package shareddata

import (
	"fmt"
	"strconv"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

// Counter is the paper's shared integer. inc and dec are commutative
// (transition-preserving in any interleaving); set is not and closes
// causal activities.
type Counter struct {
	// V is the counter value.
	V int64
}

var _ core.State = (*Counter)(nil)

// NewCounter returns a counter state starting at v.
func NewCounter(v int64) *Counter { return &Counter{V: v} }

// Clone implements core.State.
func (c *Counter) Clone() core.State { return &Counter{V: c.V} }

// Equal implements core.State.
func (c *Counter) Equal(o core.State) bool {
	oc, ok := o.(*Counter)
	return ok && oc.V == c.V
}

// Digest implements core.State.
func (c *Counter) Digest() string { return "counter:" + strconv.FormatInt(c.V, 10) }

// Counter operation names.
const (
	OpInc = "inc"
	OpDec = "dec"
	OpSet = "set"
	OpRd  = "rd"
)

// CounterOp describes one counter operation ready for FrontEnd.Submit.
type CounterOp struct {
	Op   string
	Kind message.Kind
	Body []byte
}

// Inc returns the commutative increment operation.
func Inc() CounterOp { return CounterOp{Op: OpInc, Kind: message.KindCommutative} }

// Dec returns the commutative decrement operation.
func Dec() CounterOp { return CounterOp{Op: OpDec, Kind: message.KindCommutative} }

// Set returns the non-commutative assignment operation.
func Set(v int64) CounterOp {
	return CounterOp{
		Op:   OpSet,
		Kind: message.KindNonCommutative,
		Body: []byte(strconv.FormatInt(v, 10)),
	}
}

// Read returns the read operation ("a rd operation cannot be concurrent
// with an inc/dec operation" — it closes the activity).
func Read() CounterOp { return CounterOp{Op: OpRd, Kind: message.KindRead} }

// ApplyCounter is the transition function F for Counter states. Unknown
// operations leave the state unchanged (a conservative default that keeps
// replicas in lock-step even if a foreign message leaks in).
func ApplyCounter(s core.State, m message.Message) core.State {
	c, ok := s.(*Counter)
	if !ok {
		return s
	}
	switch m.Op {
	case OpInc:
		c.V++
	case OpDec:
		c.V--
	case OpSet:
		v, err := strconv.ParseInt(string(m.Body), 10, 64)
		if err == nil {
			c.V = v
		}
	case OpRd:
		// Reads do not change state; they only close the activity.
	}
	return c
}

// String renders the counter for logs.
func (c *Counter) String() string { return fmt.Sprintf("Counter(%d)", c.V) }
