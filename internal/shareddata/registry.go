package shareddata

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

// Registry is the §5.2 name-service example: a name → value map accessed
// with upd (update/registration) and qry (query/resolution) operations.
//
// In loosely coupled deployments, upd and qry are generated spontaneously
// (no declarable causal relations), so replicas may interleave them
// differently and a query may return different values at different
// members. The paper's application-specific remedy: the query carries
// context information — here, the number of updates the issuing site had
// seen — and a replica processing a query whose context disagrees with
// its own update count marks the result inconsistent so the application
// discards it.
//
// Registry records query outcomes in the state itself (values keyed by
// query label), which keeps the type a pure core.State: two replicas that
// processed the same message sequence agree bit-for-bit, including on
// which queries were discarded.
type Registry struct {
	entries map[string]string
	// updates counts upd operations processed — the context a query is
	// checked against.
	updates uint64
	// results maps query labels to outcomes.
	results map[message.Label]QueryResult
	// discarded counts inconsistent queries (experiment E5's observable).
	discarded uint64
}

// QueryResult is the outcome of one qry operation at this replica.
type QueryResult struct {
	// Value is the resolved value ("" when the name is unbound).
	Value string
	// Discarded reports that the query's context disagreed with the
	// replica's update count and the result must not be used.
	Discarded bool
}

var _ core.State = (*Registry)(nil)

// NewRegistry returns an empty registry state.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]string),
		results: make(map[message.Label]QueryResult),
	}
}

// Clone implements core.State.
func (r *Registry) Clone() core.State {
	out := &Registry{
		entries:   make(map[string]string, len(r.entries)),
		updates:   r.updates,
		results:   make(map[message.Label]QueryResult, len(r.results)),
		discarded: r.discarded,
	}
	for k, v := range r.entries {
		out.entries[k] = v
	}
	for k, v := range r.results {
		out.results[k] = v
	}
	return out
}

// Equal implements core.State.
func (r *Registry) Equal(o core.State) bool {
	or, ok := o.(*Registry)
	if !ok {
		return false
	}
	if r.updates != or.updates || r.discarded != or.discarded ||
		len(r.entries) != len(or.entries) || len(r.results) != len(or.results) {
		return false
	}
	for k, v := range r.entries {
		if or.entries[k] != v {
			return false
		}
	}
	for k, v := range r.results {
		if or.results[k] != v {
			return false
		}
	}
	return true
}

// Digest implements core.State.
func (r *Registry) Digest() string {
	h := fnv.New64a()
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(r.entries[k]))
		_, _ = h.Write([]byte{0})
	}
	labels := make([]message.Label, 0, len(r.results))
	for l := range r.results {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Less(labels[j]) })
	for _, l := range labels {
		res := r.results[l]
		fmt.Fprintf(h, "%s|%s|%t;", l, res.Value, res.Discarded)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.updates<<1|r.discarded&1)
	_, _ = h.Write(buf[:])
	return "registry:" + strconv.FormatUint(h.Sum64(), 16)
}

// Lookup returns the current binding for name.
func (r *Registry) Lookup(name string) (string, bool) {
	v, ok := r.entries[name]
	return v, ok
}

// Result returns the recorded outcome of a query message.
func (r *Registry) Result(l message.Label) (QueryResult, bool) {
	res, ok := r.results[l]
	return res, ok
}

// Updates returns the number of upd operations processed.
func (r *Registry) Updates() uint64 { return r.updates }

// Discarded returns the number of queries rejected by the context check.
func (r *Registry) Discarded() uint64 { return r.discarded }

// Registry operation names.
const (
	OpUpd = "upd"
	OpQry = "qry"
)

// RegistryOp describes one registry operation.
type RegistryOp struct {
	Op   string
	Kind message.Kind
	Body []byte
}

// Upd returns a non-commutative registration binding name to value.
func Upd(name, value string) RegistryOp {
	return RegistryOp{
		Op:   OpUpd,
		Kind: message.KindNonCommutative,
		Body: []byte(name + "\x00" + value),
	}
}

// Qry returns a commutative query for name, carrying the issuing site's
// update count seenUpdates as its consistency context.
func Qry(name string, seenUpdates uint64) RegistryOp {
	return RegistryOp{
		Op:   OpQry,
		Kind: message.KindCommutative,
		Body: []byte(name + "\x00" + strconv.FormatUint(seenUpdates, 10)),
	}
}

// ApplyRegistry is the transition function F for Registry states.
func ApplyRegistry(s core.State, m message.Message) core.State {
	r, ok := s.(*Registry)
	if !ok {
		return s
	}
	switch m.Op {
	case OpUpd:
		name, value, ok := strings.Cut(string(m.Body), "\x00")
		if !ok {
			return r
		}
		r.entries[name] = value
		r.updates++
	case OpQry:
		name, ctx, ok := strings.Cut(string(m.Body), "\x00")
		if !ok {
			return r
		}
		seen, err := strconv.ParseUint(ctx, 10, 64)
		if err != nil {
			return r
		}
		res := QueryResult{Value: r.entries[name]}
		// The context check of §5.2: if updates happened between the
		// query's issue and its processing here, members may disagree on
		// the answer — discard.
		if seen != r.updates {
			res.Discarded = true
			r.discarded++
		}
		r.results[m.Label] = res
	}
	return r
}
