package shareddata

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

// KVStore is a keyed store that mixes commutative and non-commutative
// operations per key, demonstrating the paper's observation that stable
// points "relate to decomposition of the data into distinct items and
// scoping out the effects of messages on these items":
//
//   - Add(key, delta) is commutative: additions to the same numeric cell
//     are transition-preserving in any order.
//   - Put(key, value) and Del(key) are non-commutative: they overwrite
//     and must close causal activities.
type KVStore struct {
	nums map[string]int64
	strs map[string]string
}

var _ core.State = (*KVStore)(nil)

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{nums: make(map[string]int64), strs: make(map[string]string)}
}

// Clone implements core.State.
func (k *KVStore) Clone() core.State {
	out := &KVStore{
		nums: make(map[string]int64, len(k.nums)),
		strs: make(map[string]string, len(k.strs)),
	}
	for key, v := range k.nums {
		out.nums[key] = v
	}
	for key, v := range k.strs {
		out.strs[key] = v
	}
	return out
}

// Equal implements core.State.
func (k *KVStore) Equal(o core.State) bool {
	ok2, ok := o.(*KVStore)
	if !ok || len(k.nums) != len(ok2.nums) || len(k.strs) != len(ok2.strs) {
		return false
	}
	for key, v := range k.nums {
		if ok2.nums[key] != v {
			return false
		}
	}
	for key, v := range k.strs {
		if ok2.strs[key] != v {
			return false
		}
	}
	return true
}

// Digest implements core.State.
func (k *KVStore) Digest() string {
	h := fnv.New64a()
	numKeys := make([]string, 0, len(k.nums))
	for key := range k.nums {
		numKeys = append(numKeys, key)
	}
	sort.Strings(numKeys)
	for _, key := range numKeys {
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte(strconv.FormatInt(k.nums[key], 10)))
		_, _ = h.Write([]byte{0})
	}
	strKeys := make([]string, 0, len(k.strs))
	for key := range k.strs {
		strKeys = append(strKeys, key)
	}
	sort.Strings(strKeys)
	for _, key := range strKeys {
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte(k.strs[key]))
		_, _ = h.Write([]byte{1})
	}
	return "kv:" + strconv.FormatUint(h.Sum64(), 16)
}

// Num returns the numeric cell for key.
func (k *KVStore) Num(key string) int64 { return k.nums[key] }

// Str returns the string cell for key.
func (k *KVStore) Str(key string) (string, bool) {
	v, ok := k.strs[key]
	return v, ok
}

// Len returns the total number of populated cells.
func (k *KVStore) Len() int { return len(k.nums) + len(k.strs) }

// KVStore operation names.
const (
	OpAdd = "add"
	OpPut = "put"
	OpDel = "del"
)

// KVOp describes one store operation.
type KVOp struct {
	Op   string
	Kind message.Kind
	Body []byte
}

// Add returns a commutative delta on key's numeric cell.
func Add(key string, delta int64) KVOp {
	return KVOp{
		Op:   OpAdd,
		Kind: message.KindCommutative,
		Body: []byte(key + "\x00" + strconv.FormatInt(delta, 10)),
	}
}

// Put returns a non-commutative overwrite of key's string cell.
func Put(key, value string) KVOp {
	return KVOp{Op: OpPut, Kind: message.KindNonCommutative, Body: []byte(key + "\x00" + value)}
}

// Del returns a non-commutative delete of key (both cells).
func Del(key string) KVOp {
	return KVOp{Op: OpDel, Kind: message.KindNonCommutative, Body: []byte(key)}
}

// ApplyKV is the transition function F for KVStore states.
func ApplyKV(s core.State, m message.Message) core.State {
	k, ok := s.(*KVStore)
	if !ok {
		return s
	}
	switch m.Op {
	case OpAdd:
		key, d, ok := strings.Cut(string(m.Body), "\x00")
		if !ok {
			return k
		}
		delta, err := strconv.ParseInt(d, 10, 64)
		if err != nil {
			return k
		}
		k.nums[key] += delta
	case OpPut:
		key, v, ok := strings.Cut(string(m.Body), "\x00")
		if !ok {
			return k
		}
		k.strs[key] = v
	case OpDel:
		key := string(m.Body)
		delete(k.nums, key)
		delete(k.strs, key)
	}
	return k
}
