package shareddata

import (
	"fmt"
	"testing"
	"time"

	"causalshare/internal/core"
	"causalshare/internal/message"
	"causalshare/internal/obs"
	"causalshare/internal/sim"
)

// replicate runs ops through a simulated 4-member causal cluster with the
// §6.1 front-end composing the orderings, and returns the replicas for
// auditing. ops supplies (op name, kind, body) triples in issue order.
func replicate(t *testing.T, seed int64, initial core.State, apply core.Transition, ops []opSpec) []*core.Replica {
	t.Helper()
	const members = 4
	s := sim.New(seed)
	net := sim.NewNet(s, sim.NetModel{MinLatency: 0, MaxLatency: sim.Duration(8 * time.Millisecond)})
	replicas := make([]*core.Replica, members)
	for i := range replicas {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    sim.MemberID(i),
			Initial: initial,
			Apply:   apply,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = rep
	}
	cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, members, func(m int, msg message.Message, _ sim.Time) {
		replicas[m].Deliver(msg)
	})
	fe, err := core.NewComposer("t~cli")
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		i, op := i, op
		s.At(sim.Time(i)*sim.Duration(300*time.Microsecond), func() {
			m, err := fe.Compose(op.name, op.kind, op.body)
			if err != nil {
				t.Errorf("compose %q: %v", op.name, err)
				return
			}
			cluster.Broadcast(i%members, m)
		})
	}
	s.Run(0)
	if cluster.Undelivered() != 0 {
		t.Fatalf("undelivered messages: %d", cluster.Undelivered())
	}
	return replicas
}

type opSpec struct {
	name string
	kind message.Kind
	body []byte
}

func spec(op interface {
	opFields() (string, message.Kind, []byte)
}) opSpec {
	n, k, b := op.opFields()
	return opSpec{name: n, kind: k, body: b}
}

func (o CounterOp) opFields() (string, message.Kind, []byte)  { return o.Op, o.Kind, o.Body }
func (o RegistryOp) opFields() (string, message.Kind, []byte) { return o.Op, o.Kind, o.Body }
func (o KVOp) opFields() (string, message.Kind, []byte)       { return o.Op, o.Kind, o.Body }
func (o DocOp) opFields() (string, message.Kind, []byte)      { return o.Op, o.Kind, o.Body }

func auditReplicas(t *testing.T, replicas []*core.Replica, wantCycles int) {
	t.Helper()
	histories := make(map[string][]core.StablePoint, len(replicas))
	for _, r := range replicas {
		histories[r.Self()] = r.StablePoints()
	}
	report := obs.AuditStablePoints(histories)
	if !report.Consistent() {
		t.Fatalf("stable-point divergence: %s", report.Divergence)
	}
	if report.Points != wantCycles {
		t.Fatalf("audited %d stable points, want %d", report.Points, wantCycles)
	}
}

func TestCounterReplicationAgreesAtStablePoints(t *testing.T) {
	var ops []opSpec
	for c := 0; c < 8; c++ {
		for k := 0; k < 5; k++ {
			if k%2 == 0 {
				ops = append(ops, spec(Inc()))
			} else {
				ops = append(ops, spec(Dec()))
			}
		}
		ops = append(ops, spec(Read()))
	}
	replicas := replicate(t, 91, NewCounter(0), ApplyCounter, ops)
	auditReplicas(t, replicas, 8)
	st, _ := replicas[0].ReadStable()
	want := NewCounter(8 * 1) // per cycle: 3 inc, 2 dec
	if !st.Equal(want) {
		t.Errorf("final stable state %s, want %s", st.Digest(), want.Digest())
	}
}

func TestKVStoreReplicationAgreesAtStablePoints(t *testing.T) {
	var ops []opSpec
	for c := 0; c < 6; c++ {
		for k := 0; k < 4; k++ {
			ops = append(ops, spec(Add(fmt.Sprintf("k%d", k%2), int64(k+1))))
		}
		ops = append(ops, spec(Put("rev", fmt.Sprintf("r%d", c))))
	}
	replicas := replicate(t, 92, NewKVStore(), ApplyKV, ops)
	auditReplicas(t, replicas, 6)
	st, _ := replicas[0].ReadStable()
	kv, ok := st.(*KVStore)
	if !ok {
		t.Fatalf("state type %T", st)
	}
	if got, _ := kv.Str("rev"); got != "r5" {
		t.Errorf("rev = %q, want r5", got)
	}
	// Each cycle adds 1+3 to k0 and 2+4 to k1.
	if kv.Num("k0") != 6*4 || kv.Num("k1") != 6*6 {
		t.Errorf("k0=%d k1=%d, want 24, 36", kv.Num("k0"), kv.Num("k1"))
	}
}

func TestDocumentReplicationAgreesAtStablePoints(t *testing.T) {
	var ops []opSpec
	ops = append(ops, spec(Edit("intro", "draft")))
	for k := 0; k < 6; k++ {
		ops = append(ops, spec(Annotate("intro", fmt.Sprintf("note-%d", k))))
	}
	ops = append(ops, spec(Publish()))
	replicas := replicate(t, 93, NewDocument(), ApplyDocument, ops)
	auditReplicas(t, replicas, 2)
	st, _ := replicas[0].ReadStable()
	doc, ok := st.(*Document)
	if !ok {
		t.Fatalf("state type %T", st)
	}
	if doc.Revision() != 1 || len(doc.Notes("intro")) != 6 {
		t.Errorf("revision=%d notes=%d", doc.Revision(), len(doc.Notes("intro")))
	}
}

// TestKVItemScopedReplication exercises the §5.1 item-granularity
// protocol: per-key puts (normally global closers) stay concurrent across
// keys because same-key puts are chained by OccursAfter and cross-key
// puts commute. Every replica must agree on all last-writer values at the
// Sync despite heavy cross-key reordering.
func TestKVItemScopedReplication(t *testing.T) {
	const members = 4
	s := sim.New(95)
	net := sim.NewNet(s, sim.NetModel{MinLatency: 0, MaxLatency: sim.Duration(10 * time.Millisecond)})
	replicas := make([]*core.Replica, members)
	for i := range replicas {
		rep, err := core.NewReplica(core.ReplicaConfig{
			Self:    sim.MemberID(i),
			Initial: NewKVStore(),
			Apply:   ApplyKV,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = rep
	}
	cluster := sim.NewCausalCluster(s, net, sim.RuleOSend, members, func(m int, msg message.Message, _ sim.Time) {
		replicas[m].Deliver(msg)
	})
	fe, err := core.NewItemComposer("t~item")
	if err != nil {
		t.Fatal(err)
	}
	const keys, writes = 3, 8
	k := 0
	for w := 0; w < writes; w++ {
		for key := 0; key < keys; key++ {
			op := Put(fmt.Sprintf("k%d", key), fmt.Sprintf("v%d", w))
			m := fe.ComposeScoped(op.Op, fmt.Sprintf("k%d", key), op.Body)
			k++
			kk := k
			s.At(sim.Time(kk)*sim.Duration(200*time.Microsecond), func() {
				cluster.Broadcast(kk%members, m)
			})
		}
	}
	syncMsg := fe.ComposeSync("snapshot", nil)
	k++
	kk := k
	s.At(sim.Time(kk)*sim.Duration(200*time.Microsecond), func() {
		cluster.Broadcast(0, syncMsg)
	})
	s.Run(0)
	if cluster.Undelivered() != 0 {
		t.Fatalf("undelivered: %d", cluster.Undelivered())
	}
	auditReplicas(t, replicas, 1)
	st, _ := replicas[0].ReadStable()
	kv, ok := st.(*KVStore)
	if !ok {
		t.Fatalf("state type %T", st)
	}
	for key := 0; key < keys; key++ {
		if v, _ := kv.Str(fmt.Sprintf("k%d", key)); v != fmt.Sprintf("v%d", writes-1) {
			t.Errorf("k%d = %q, want last writer v%d", key, v, writes-1)
		}
	}
}

func TestRegistryReplicationStrictModeNeverDiscards(t *testing.T) {
	// In strict mode queries are reads ordered after updates; the context
	// always matches and every replica agrees at each read.
	var ops []opSpec
	for c := 0; c < 5; c++ {
		ops = append(ops, spec(Upd("svc", fmt.Sprintf("v%d", c))))
		// Context = c+1 updates seen (queries follow the update in the
		// causal order, so every replica has applied exactly c+1).
		q := Qry("svc", uint64(c+1))
		ops = append(ops, opSpec{name: q.Op, kind: message.KindRead, body: q.Body})
	}
	replicas := replicate(t, 94, NewRegistry(), ApplyRegistry, ops)
	auditReplicas(t, replicas, 10) // every upd and qry closes a cycle
	st, _ := replicas[0].ReadStable()
	reg, ok := st.(*Registry)
	if !ok {
		t.Fatalf("state type %T", st)
	}
	if reg.Discarded() != 0 {
		t.Errorf("strict mode discarded %d queries", reg.Discarded())
	}
	if v, _ := reg.Lookup("svc"); v != "v4" {
		t.Errorf("final binding %q", v)
	}
}
