package shareddata

import (
	"fmt"
	"testing"
	"testing/quick"

	"causalshare/internal/core"
	"causalshare/internal/message"
)

func lbl(o string, s uint64) message.Label { return message.Label{Origin: o, Seq: s} }

func mkMsg(l message.Label, op string, kind message.Kind, body []byte) message.Message {
	return message.Message{Label: l, Kind: kind, Op: op, Body: body}
}

func opMsg(l message.Label, op string, kind message.Kind, body []byte) message.Message {
	return mkMsg(l, op, kind, body)
}

// applyOps runs a sequence of (op-constructor output, label) pairs.
func applyCounterOps(s *Counter, ops ...CounterOp) *Counter {
	st := core.State(s)
	for i, op := range ops {
		st = ApplyCounter(st, opMsg(lbl("t", uint64(i+1)), op.Op, op.Kind, op.Body))
	}
	c, _ := st.(*Counter)
	return c
}

func TestCounterOps(t *testing.T) {
	c := applyCounterOps(NewCounter(0), Inc(), Inc(), Dec())
	if c.V != 1 {
		t.Errorf("V = %d, want 1", c.V)
	}
	c = applyCounterOps(c, Set(42), Inc())
	if c.V != 43 {
		t.Errorf("V = %d, want 43", c.V)
	}
	c = applyCounterOps(c, Read())
	if c.V != 43 {
		t.Errorf("read changed state: %d", c.V)
	}
}

func TestCounterKinds(t *testing.T) {
	tests := []struct {
		op   CounterOp
		want message.Kind
	}{
		{Inc(), message.KindCommutative},
		{Dec(), message.KindCommutative},
		{Set(1), message.KindNonCommutative},
		{Read(), message.KindRead},
	}
	for _, tt := range tests {
		if tt.op.Kind != tt.want {
			t.Errorf("%s kind = %v, want %v", tt.op.Op, tt.op.Kind, tt.want)
		}
	}
}

func TestCounterStateContract(t *testing.T) {
	c := NewCounter(7)
	cl, ok := c.Clone().(*Counter)
	if !ok {
		t.Fatal("Clone wrong type")
	}
	cl.V = 8
	if c.V != 7 {
		t.Error("Clone aliased state")
	}
	if !c.Equal(NewCounter(7)) || c.Equal(NewCounter(8)) {
		t.Error("Equal broken")
	}
	if c.Digest() != NewCounter(7).Digest() {
		t.Error("equal states, different digests")
	}
	if c.Digest() == NewCounter(8).Digest() {
		t.Error("different states, same digest")
	}
	if c.Equal(NewRegistry()) {
		t.Error("cross-type Equal returned true")
	}
}

func TestCounterMalformedSetIgnored(t *testing.T) {
	c := NewCounter(5)
	st := ApplyCounter(c, mkMsg(lbl("t", 1), OpSet, message.KindNonCommutative, []byte("notanumber")))
	if st.(*Counter).V != 5 {
		t.Error("malformed set changed state")
	}
	st = ApplyCounter(st, mkMsg(lbl("t", 2), "unknown-op", message.KindCommutative, nil))
	if st.(*Counter).V != 5 {
		t.Error("unknown op changed state")
	}
}

func TestPropIncDecCommute(t *testing.T) {
	f := func(start int64, ops []bool) bool {
		// Apply in given order and reversed; totals must match.
		fwd := core.State(NewCounter(start))
		rev := core.State(NewCounter(start))
		for i, isInc := range ops {
			op := Dec()
			if isInc {
				op = Inc()
			}
			fwd = ApplyCounter(fwd, opMsg(lbl("p", uint64(i+1)), op.Op, op.Kind, op.Body))
		}
		for i := len(ops) - 1; i >= 0; i-- {
			op := Dec()
			if ops[i] {
				op = Inc()
			}
			rev = ApplyCounter(rev, opMsg(lbl("p", uint64(i+1)), op.Op, op.Kind, op.Body))
		}
		return fwd.Equal(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterCommuteViaCore(t *testing.T) {
	s0 := NewCounter(3)
	inc := opMsg(lbl("a", 1), OpInc, message.KindCommutative, nil)
	dec := opMsg(lbl("b", 1), OpDec, message.KindCommutative, nil)
	set := opMsg(lbl("c", 1), OpSet, message.KindNonCommutative, []byte("9"))
	if !core.Commute(ApplyCounter, s0, inc, dec) {
		t.Error("inc/dec should commute")
	}
	if core.Commute(ApplyCounter, s0, inc, set) {
		t.Error("inc/set should not commute")
	}
}

func TestRegistryUpdQry(t *testing.T) {
	r := NewRegistry()
	st := core.State(r)
	upd := Upd("printer", "host-a")
	st = ApplyRegistry(st, opMsg(lbl("s", 1), upd.Op, upd.Kind, upd.Body))
	reg := st.(*Registry)
	if v, ok := reg.Lookup("printer"); !ok || v != "host-a" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if reg.Updates() != 1 {
		t.Fatalf("Updates = %d", reg.Updates())
	}
	// Query with matching context succeeds.
	q1 := Qry("printer", 1)
	qLbl := lbl("c", 1)
	st = ApplyRegistry(st, opMsg(qLbl, q1.Op, q1.Kind, q1.Body))
	res, ok := st.(*Registry).Result(qLbl)
	if !ok || res.Discarded || res.Value != "host-a" {
		t.Fatalf("query result = %+v, %v", res, ok)
	}
	// Query with stale context is discarded.
	q2 := Qry("printer", 0)
	q2Lbl := lbl("c", 2)
	st = ApplyRegistry(st, opMsg(q2Lbl, q2.Op, q2.Kind, q2.Body))
	res, ok = st.(*Registry).Result(q2Lbl)
	if !ok || !res.Discarded {
		t.Fatalf("stale query not discarded: %+v", res)
	}
	if st.(*Registry).Discarded() != 1 {
		t.Errorf("Discarded = %d, want 1", st.(*Registry).Discarded())
	}
}

func TestRegistryScenarioFromPaper(t *testing.T) {
	// §5.2: member A sees upd1 qry1 qry2 upd2 — both queries return the
	// same value. Member B sees upd1 qry1 upd2 qry2 — qry2's context
	// disagrees and must be discarded.
	upd1, upd2 := Upd("n", "v1"), Upd("n", "v2")
	qry1, qry2 := Qry("n", 1), Qry("n", 1) // both issued having seen upd1
	l := func(i uint64) message.Label { return lbl("m", i) }

	a := core.State(NewRegistry())
	a = ApplyRegistry(a, opMsg(l(1), upd1.Op, upd1.Kind, upd1.Body))
	a = ApplyRegistry(a, opMsg(l(2), qry1.Op, qry1.Kind, qry1.Body))
	a = ApplyRegistry(a, opMsg(l(3), qry2.Op, qry2.Kind, qry2.Body))
	a = ApplyRegistry(a, opMsg(l(4), upd2.Op, upd2.Kind, upd2.Body))
	ra := a.(*Registry)
	for _, ql := range []message.Label{l(2), l(3)} {
		res, _ := ra.Result(ql)
		if res.Discarded || res.Value != "v1" {
			t.Errorf("member A: query %v = %+v, want consistent v1", ql, res)
		}
	}

	b := core.State(NewRegistry())
	b = ApplyRegistry(b, opMsg(l(1), upd1.Op, upd1.Kind, upd1.Body))
	b = ApplyRegistry(b, opMsg(l(2), qry1.Op, qry1.Kind, qry1.Body))
	b = ApplyRegistry(b, opMsg(l(4), upd2.Op, upd2.Kind, upd2.Body))
	b = ApplyRegistry(b, opMsg(l(3), qry2.Op, qry2.Kind, qry2.Body))
	rb := b.(*Registry)
	res1, _ := rb.Result(l(2))
	if res1.Discarded || res1.Value != "v1" {
		t.Errorf("member B: qry1 = %+v, want consistent v1", res1)
	}
	res2, _ := rb.Result(l(3))
	if !res2.Discarded {
		t.Errorf("member B: qry2 = %+v, want discarded (context mismatch)", res2)
	}
}

func TestRegistryStateContract(t *testing.T) {
	r := NewRegistry()
	st := ApplyRegistry(r, opMsg(lbl("s", 1), OpUpd, message.KindNonCommutative, []byte("a\x00b")))
	cl := st.Clone()
	if !st.Equal(cl) || st.Digest() != cl.Digest() {
		t.Fatal("clone not equal to original")
	}
	ApplyRegistry(cl, opMsg(lbl("s", 2), OpUpd, message.KindNonCommutative, []byte("c\x00d")))
	if st.Equal(cl) {
		t.Error("mutating clone affected original or Equal broken")
	}
	if st.Digest() == cl.Digest() {
		t.Error("different registries share a digest")
	}
	// Malformed bodies are ignored.
	before := st.Digest()
	st = ApplyRegistry(st, opMsg(lbl("s", 3), OpUpd, message.KindNonCommutative, []byte("nozero")))
	st = ApplyRegistry(st, opMsg(lbl("s", 4), OpQry, message.KindCommutative, []byte("n\x00notanum")))
	if st.Digest() != before {
		t.Error("malformed operations changed state")
	}
}

func TestKVStoreOps(t *testing.T) {
	k := core.State(NewKVStore())
	add := Add("hits", 3)
	k = ApplyKV(k, opMsg(lbl("a", 1), add.Op, add.Kind, add.Body))
	add2 := Add("hits", -1)
	k = ApplyKV(k, opMsg(lbl("a", 2), add2.Op, add2.Kind, add2.Body))
	put := Put("owner", "alice")
	k = ApplyKV(k, opMsg(lbl("a", 3), put.Op, put.Kind, put.Body))
	kv := k.(*KVStore)
	if kv.Num("hits") != 2 {
		t.Errorf("hits = %d, want 2", kv.Num("hits"))
	}
	if v, ok := kv.Str("owner"); !ok || v != "alice" {
		t.Errorf("owner = %q, %v", v, ok)
	}
	if kv.Len() != 2 {
		t.Errorf("Len = %d, want 2", kv.Len())
	}
	del := Del("hits")
	k = ApplyKV(k, opMsg(lbl("a", 4), del.Op, del.Kind, del.Body))
	if k.(*KVStore).Num("hits") != 0 || k.(*KVStore).Len() != 1 {
		t.Error("del did not clear the cell")
	}
}

func TestPropKVAddsCommute(t *testing.T) {
	f := func(deltas []int8) bool {
		fwd := core.State(NewKVStore())
		rev := core.State(NewKVStore())
		key := func(i int) string { return fmt.Sprintf("k%d", i%3) }
		for i, d := range deltas {
			op := Add(key(i), int64(d))
			fwd = ApplyKV(fwd, opMsg(lbl("p", uint64(i+1)), op.Op, op.Kind, op.Body))
		}
		for i := len(deltas) - 1; i >= 0; i-- {
			op := Add(key(i), int64(deltas[i]))
			rev = ApplyKV(rev, opMsg(lbl("p", uint64(i+1)), op.Op, op.Kind, op.Body))
		}
		return fwd.Equal(rev) && fwd.Digest() == rev.Digest()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKVStoreStateContract(t *testing.T) {
	k := NewKVStore()
	op := Add("x", 5)
	st := ApplyKV(k, opMsg(lbl("a", 1), op.Op, op.Kind, op.Body))
	cl := st.Clone()
	op2 := Add("x", 1)
	ApplyKV(cl, opMsg(lbl("a", 2), op2.Op, op2.Kind, op2.Body))
	if st.(*KVStore).Num("x") != 5 {
		t.Error("clone aliased numeric map")
	}
	if st.Equal(cl) {
		t.Error("Equal missed difference")
	}
}

func TestDocumentOps(t *testing.T) {
	d := core.State(NewDocument())
	edit := Edit("intro", "first draft")
	d = ApplyDocument(d, opMsg(lbl("w", 1), edit.Op, edit.Kind, edit.Body))
	a1 := Annotate("intro", "typo in line 2")
	d = ApplyDocument(d, opMsg(lbl("p1", 1), a1.Op, a1.Kind, a1.Body))
	a2 := Annotate("intro", "cite the survey")
	d = ApplyDocument(d, opMsg(lbl("p2", 1), a2.Op, a2.Kind, a2.Body))
	doc := d.(*Document)
	if txt, _ := doc.Section("intro"); txt != "first draft" {
		t.Errorf("section = %q", txt)
	}
	if notes := doc.Notes("intro"); len(notes) != 2 {
		t.Errorf("notes = %v", notes)
	}
	pub := Publish()
	d = ApplyDocument(d, opMsg(lbl("w", 2), pub.Op, pub.Kind, pub.Body))
	if d.(*Document).Revision() != 1 {
		t.Errorf("revision = %d", d.(*Document).Revision())
	}
	// Edit clears stale annotations.
	edit2 := Edit("intro", "second draft")
	d = ApplyDocument(d, opMsg(lbl("w", 3), edit2.Op, edit2.Kind, edit2.Body))
	if notes := d.(*Document).Notes("intro"); len(notes) != 0 {
		t.Errorf("stale notes survived edit: %v", notes)
	}
}

func TestPropAnnotationsCommute(t *testing.T) {
	f := func(order []uint8) bool {
		// Build a fixed annotation set, apply in two different orders.
		msgs := make([]message.Message, 6)
		for i := range msgs {
			op := Annotate(fmt.Sprintf("s%d", i%2), fmt.Sprintf("note-%d", i))
			msgs[i] = opMsg(lbl(fmt.Sprintf("p%d", i), 1), op.Op, op.Kind, op.Body)
		}
		perm := make([]message.Message, len(msgs))
		copy(perm, msgs)
		for i, o := range order {
			j := int(o) % len(perm)
			perm[i%len(perm)], perm[j] = perm[j], perm[i%len(perm)]
		}
		a, b := core.State(NewDocument()), core.State(NewDocument())
		for _, m := range msgs {
			a = ApplyDocument(a, m)
		}
		for _, m := range perm {
			b = ApplyDocument(b, m)
		}
		return a.Equal(b) && a.Digest() == b.Digest()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDocumentStateContract(t *testing.T) {
	d := NewDocument()
	a := Annotate("s", "n")
	st := ApplyDocument(d, opMsg(lbl("p", 1), a.Op, a.Kind, a.Body))
	cl := st.Clone()
	b := Annotate("s", "m")
	ApplyDocument(cl, opMsg(lbl("p", 2), b.Op, b.Kind, b.Body))
	if len(st.(*Document).Notes("s")) != 1 {
		t.Error("clone aliased notes map")
	}
	if st.Equal(cl) || st.Digest() == cl.Digest() {
		t.Error("difference not detected")
	}
}

func TestActivityStabilityAcrossTypes(t *testing.T) {
	// Every declared-commutative operation set must form a stable causal
	// activity; mixing in a non-commutative op as body must not.
	opener := opMsg(lbl("n", 1), OpSet, message.KindNonCommutative, []byte("0"))
	incA := opMsg(lbl("a", 1), OpInc, message.KindCommutative, nil)
	incA.Deps = message.After(opener.Label)
	decB := opMsg(lbl("b", 1), OpDec, message.KindCommutative, nil)
	decB.Deps = message.After(opener.Label)
	closer := opMsg(lbl("n", 2), OpRd, message.KindRead, nil)
	closer.Deps = message.After(incA.Label, decB.Label)
	act := core.Activity{Opener: opener, Body: []message.Message{incA, decB}, Closer: closer}
	stable, err := act.IsStable(ApplyCounter, NewCounter(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Error("counter inc/dec activity not stable")
	}
}
