package lockarb

import "testing"

func TestLockCodecRoundTrip(t *testing.T) {
	tests := []struct {
		member string
		cycle  uint64
		want   bool
	}{
		{"m00", 1, true},
		{"node-with-long-name", 900, false},
		{"", 0, true},
	}
	for _, tt := range tests {
		data := encodeLock(tt.member, tt.cycle, tt.want)
		member, cycle, want, err := decodeLock(data)
		if err != nil {
			t.Fatalf("decodeLock(%q): %v", tt.member, err)
		}
		if member != tt.member || cycle != tt.cycle || want != tt.want {
			t.Errorf("round trip = %q,%d,%v want %q,%d,%v",
				member, cycle, want, tt.member, tt.cycle, tt.want)
		}
	}
}

func TestLockCodecErrors(t *testing.T) {
	valid := encodeLock("abc", 7, true)
	cases := [][]byte{nil, valid[:1], valid[:len(valid)-1], append(append([]byte{}, valid...), 1)}
	for _, data := range cases {
		if _, _, _, err := decodeLock(data); err == nil {
			t.Errorf("decodeLock accepted malformed %x", data)
		}
	}
}

func TestTFRCodecErrors(t *testing.T) {
	if _, _, err := decodeTFR(nil); err == nil {
		t.Error("decodeTFR accepted empty input")
	}
	if _, _, err := decodeTFR([]byte{0x05}); err == nil {
		t.Error("decodeTFR accepted input missing index")
	}
	cycle, k, err := decodeTFR([]byte{0x05, 0x02})
	if err != nil || cycle != 5 || k != 2 {
		t.Errorf("decodeTFR = %d, %d, %v", cycle, k, err)
	}
}
