package lockarb

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"causalshare/internal/causal"
	"causalshare/internal/group"
	"causalshare/internal/message"
	"causalshare/internal/total"
	"causalshare/internal/transport"
)

// grantLog records grants observed at one member, in order.
type grantLog struct {
	mu     sync.Mutex
	grants []string // "holder@cycle"
}

func (g *grantLog) record(holder string, cycle uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.grants = append(g.grants, fmt.Sprintf("%s@%d", holder, cycle))
}

func (g *grantLog) snapshot() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.grants...)
}

type arbStack struct {
	ids      []string
	net      *transport.ChanNet
	engines  map[string]*causal.OSend
	layers   map[string]interface{ Close() error }
	arbiters map[string]*Arbiter
	logs     map[string]*grantLog
}

// newArbStack builds a full deployment: arbiters over a total-order layer
// over OSend over a (possibly faulty) network.
func newArbStack(t *testing.T, layerKind string, ids []string, faults transport.FaultModel) *arbStack {
	t.Helper()
	grp := group.MustNew("g", ids)
	net := transport.NewChanNet(faults)
	s := &arbStack{
		ids: ids, net: net,
		engines:  map[string]*causal.OSend{},
		layers:   map[string]interface{ Close() error }{},
		arbiters: map[string]*Arbiter{},
		logs:     map[string]*grantLog{},
	}
	for _, id := range ids {
		log := &grantLog{}
		s.logs[id] = log
		var arb *Arbiter
		cfg := total.Config{
			Self:  id,
			Group: grp,
			Deliver: func(m message.Message) {
				arb.Ingest(m)
			},
		}
		var ingest causal.DeliverFunc
		var layer Layer
		switch layerKind {
		case "orderer":
			cfg.HeartbeatEvery = 2 * time.Millisecond
			o, err := total.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ingest = o.Ingest
			layer = o
			s.layers[id] = o
		case "sequencer":
			sq, err := total.NewSequencer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ingest = sq.Ingest
			layer = sq
			s.layers[id] = sq
		default:
			t.Fatalf("unknown layer kind %q", layerKind)
		}
		conn, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		patience := 15 * time.Millisecond
		if faults.DropProb == 0 {
			patience = 0
		}
		eng, err := causal.NewOSend(causal.OSendConfig{
			Self: id, Group: grp, Conn: conn, Deliver: ingest, Patience: patience,
		})
		if err != nil {
			t.Fatal(err)
		}
		switch l := layer.(type) {
		case *total.Orderer:
			l.Bind(eng)
		case *total.Sequencer:
			l.Bind(eng)
		}
		arb, err = NewArbiter(Config{Self: id, Group: grp, Layer: layer, OnGrant: log.record})
		if err != nil {
			t.Fatal(err)
		}
		s.engines[id] = eng
		s.arbiters[id] = arb
	}
	for _, id := range ids {
		if err := s.arbiters[id].Start(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func (s *arbStack) close(t *testing.T) {
	t.Helper()
	for _, a := range s.arbiters {
		_ = a.Close()
	}
	for _, l := range s.layers {
		_ = l.Close()
	}
	for _, e := range s.engines {
		_ = e.Close()
	}
	_ = s.net.Close()
}

func TestNewArbiterValidation(t *testing.T) {
	grp := group.MustNew("g", []string{"a"})
	o, err := total.New(total.Config{Self: "a", Group: grp, Deliver: func(message.Message) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = o.Close() }()
	if _, err := NewArbiter(Config{Self: "x", Group: grp, Layer: o}); err == nil {
		t.Error("non-member accepted")
	}
	if _, err := NewArbiter(Config{Self: "a", Group: grp}); err == nil {
		t.Error("nil layer accepted")
	}
}

func TestSingleRequesterAcquiresAndReleases(t *testing.T) {
	for _, kind := range []string{"orderer", "sequencer"} {
		t.Run(kind, func(t *testing.T) {
			s := newArbStack(t, kind, []string{"a", "b", "c"}, transport.FaultModel{})
			defer s.close(t)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			cycle, err := s.arbiters["b"].Acquire(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if cycle == 0 {
				t.Error("granted at cycle 0")
			}
			if h, ok := s.arbiters["b"].Holder(); !ok || h != "b" {
				t.Errorf("Holder = %q, %v", h, ok)
			}
			if err := s.arbiters["b"].Release(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllMembersAgreeOnGrantSequence(t *testing.T) {
	for _, kind := range []string{"orderer", "sequencer"} {
		t.Run(kind, func(t *testing.T) {
			ids := []string{"a", "b", "c"}
			s := newArbStack(t, kind, ids, transport.FaultModel{
				MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 9,
			})
			defer s.close(t)

			// Every member acquires/releases several times concurrently.
			const rounds = 4
			var wg sync.WaitGroup
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
						if _, err := s.arbiters[id].Acquire(ctx); err != nil {
							cancel()
							t.Errorf("%s acquire %d: %v", id, r, err)
							return
						}
						if err := s.arbiters[id].Release(); err != nil {
							cancel()
							t.Errorf("%s release %d: %v", id, r, err)
							return
						}
						cancel()
					}
				}(id)
			}
			wg.Wait()

			// All members observed enough grants; compare the common
			// prefix (trailing grants may still be propagating).
			want := len(ids) * rounds
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				done := true
				for _, id := range ids {
					if len(s.logs[id].snapshot()) < want {
						done = false
					}
				}
				if done {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			ref := s.logs[ids[0]].snapshot()
			if len(ref) < want {
				t.Fatalf("member %s observed %d grants, want >= %d", ids[0], len(ref), want)
			}
			for _, id := range ids[1:] {
				got := s.logs[id].snapshot()
				n := len(ref)
				if len(got) < n {
					n = len(got)
				}
				for i := 0; i < n; i++ {
					if got[i] != ref[i] {
						t.Fatalf("member %s grant %d = %s, want %s (full: %v vs %v)",
							id, i, got[i], ref[i], got, ref)
					}
				}
			}
		})
	}
}

func TestMutualExclusion(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	s := newArbStack(t, "sequencer", ids, transport.FaultModel{
		MinDelay: 0, MaxDelay: time.Millisecond, Seed: 33,
	})
	defer s.close(t)

	var mu sync.Mutex
	inside, maxInside := 0, 0
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				if _, err := s.arbiters[id].Acquire(ctx); err != nil {
					cancel()
					t.Errorf("%s: %v", id, err)
					return
				}
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				mu.Unlock()
				time.Sleep(time.Millisecond) // hold briefly
				mu.Lock()
				inside--
				mu.Unlock()
				if err := s.arbiters[id].Release(); err != nil {
					cancel()
					t.Errorf("%s release: %v", id, err)
					return
				}
				cancel()
			}
		}(id)
	}
	wg.Wait()
	if maxInside != 1 {
		t.Errorf("mutual exclusion violated: %d holders at once", maxInside)
	}
}

func TestFairnessRotation(t *testing.T) {
	// With every member requesting in every cycle, the rotation by S must
	// spread first-holder positions around the group.
	ids := []string{"a", "b", "c"}
	s := newArbStack(t, "sequencer", ids, transport.FaultModel{})
	defer s.close(t)

	firstHolders := make(map[string]int)
	const rounds = 6
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		granted := make([]uint64, len(ids))
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				defer cancel()
				cy, err := s.arbiters[id].Acquire(ctx)
				if err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				granted[i] = cy
				if err := s.arbiters[id].Release(); err != nil {
					t.Errorf("%s release: %v", id, err)
				}
			}(i, id)
		}
		wg.Wait()
		// The member granted in the earliest cycle of this round was a
		// first holder (rough proxy; exact sequence checked elsewhere).
		minCy, minID := granted[0], ids[0]
		for i := range granted {
			if granted[i] < minCy {
				minCy, minID = granted[i], ids[i]
			}
		}
		firstHolders[minID]++
	}
	if len(firstHolders) < 2 {
		t.Errorf("rotation never moved the first grant: %v", firstHolders)
	}
}

func TestIdleGroupIsQuiescent(t *testing.T) {
	ids := []string{"a", "b"}
	s := newArbStack(t, "sequencer", ids, transport.FaultModel{})
	defer s.close(t)
	time.Sleep(20 * time.Millisecond)
	if c := s.arbiters["a"].Cycle(); c != 1 {
		t.Errorf("idle group advanced to cycle %d", c)
	}
	if g := s.arbiters["a"].Grants(); g != 0 {
		t.Errorf("idle group granted %d locks", g)
	}
}

func TestReleaseWithoutHoldFails(t *testing.T) {
	s := newArbStack(t, "sequencer", []string{"a", "b"}, transport.FaultModel{})
	defer s.close(t)
	if err := s.arbiters["a"].Release(); err == nil {
		t.Error("Release without hold succeeded")
	}
}

func TestAcquireAfterCloseFails(t *testing.T) {
	s := newArbStack(t, "sequencer", []string{"a", "b"}, transport.FaultModel{})
	defer s.close(t)
	if err := s.arbiters["a"].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.arbiters["a"].Acquire(context.Background()); err != ErrClosed {
		t.Errorf("Acquire after Close = %v, want ErrClosed", err)
	}
}

func TestDoubleStartFails(t *testing.T) {
	s := newArbStack(t, "sequencer", []string{"a", "b"}, transport.FaultModel{})
	defer s.close(t)
	if err := s.arbiters["a"].Start(); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestAcquireContextCancel(t *testing.T) {
	// Member b never gets the lock if nobody releases; its context expires.
	s := newArbStack(t, "sequencer", []string{"a", "b"}, transport.FaultModel{})
	defer s.close(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.arbiters["a"].Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// a holds; b's acquire must time out.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer shortCancel()
	if _, err := s.arbiters["b"].Acquire(shortCtx); err == nil {
		t.Error("blocked acquire returned without the lock")
	}
	if err := s.arbiters["a"].Release(); err != nil {
		t.Fatal(err)
	}
}

func TestArbitrationUnderLoss(t *testing.T) {
	ids := []string{"a", "b", "c"}
	s := newArbStack(t, "orderer", ids, transport.FaultModel{
		DropProb: 0.1, MinDelay: 0, MaxDelay: 2 * time.Millisecond, Seed: 71,
	})
	defer s.close(t)
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for r := 0; r < 2; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if _, err := s.arbiters[id].Acquire(ctx); err != nil {
					cancel()
					t.Errorf("%s acquire: %v", id, err)
					return
				}
				if err := s.arbiters[id].Release(); err != nil {
					cancel()
					t.Errorf("%s release: %v", id, err)
					return
				}
				cancel()
			}
		}(id)
	}
	wg.Wait()
}
