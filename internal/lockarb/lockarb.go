// Package lockarb implements the paper's decentralized arbitration
// protocol for distributed shared data access (§6.2, Figure 5): LOCK and
// TFR (transfer) messages are totally ordered with ASend, and every member
// runs the same deterministic arbitration algorithm over the same message
// sequence, so all members agree on each lock holder with no arbiter
// process and no extra agreement rounds.
//
// Protocol, per arbitration cycle S:
//
//  1. When cycle S opens (all TFRs of cycle S-1 delivered), every member
//     broadcasts LOCK(member, S, want) — want reports whether the member
//     has local acquirers queued. Null requests keep the "predetermined
//     number of LOCK messages" (= group size) deterministic.
//  2. Once a member has delivered all |G| LOCK messages of cycle S, it
//     computes the arbitration sequence: the requesters sorted by group
//     rank, rotated by S for fairness. All members compute the same
//     sequence. The first member of the sequence holds the lock.
//  3. When the holder's application releases, the holder broadcasts
//     TFR(member, S, k); delivery of TFR(…, k) passes the lock to
//     sequence position k+1. The last TFR of the cycle opens cycle S+1.
//
// Following the paper's predicates, LOCK(S) carries
// OccursAfter(∧ TFR(S-1)) and TFR(S, k) carries OccursAfter(∧ LOCK(S)),
// expressing the protocol's causal structure explicitly even though the
// total-order layer already sequences the traffic.
package lockarb

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"causalshare/internal/group"
	"causalshare/internal/message"
)

// ErrClosed is returned by operations on a closed arbiter.
var ErrClosed = errors.New("lockarb: closed")

// Layer is the slice of the total-order layer the arbiter needs; both
// total.Orderer and total.Sequencer satisfy it.
type Layer interface {
	ASend(op string, kind message.Kind, body []byte, after message.OccursAfter) (message.Label, error)
}

// Operation names on the wire.
const (
	opLock = "lockarb.lock"
	opTFR  = "lockarb.tfr"
)

// Config parameterizes an Arbiter.
type Config struct {
	// Self is the local member id.
	Self string
	// Group is the arbitration domain; every member runs an arbiter.
	Group *group.Group
	// Layer is the total-order layer the arbiter sends through.
	Layer Layer
	// OnGrant, when non-nil, is called whenever any member acquires the
	// lock (the replicated-state-machine view; fires at every member for
	// every grant). It runs on the delivery goroutine.
	OnGrant func(holder string, cycle uint64)
}

// Arbiter is one member's replica of the arbitration state machine.
// Ingest is its total-order DeliverFunc; Start begins cycle 1.
type Arbiter struct {
	self    string
	grp     *group.Group
	layer   Layer
	onGrant func(string, uint64)

	mu      sync.Mutex
	closed  bool
	started bool
	cycle   uint64
	// sentLock reports this member has broadcast its LOCK for the current
	// cycle. LOCKs are sent lazily — on local demand or in response to
	// another member's LOCK — so an idle group is quiescent instead of
	// spinning empty cycles.
	sentLock bool
	// wants collects this cycle's LOCK votes.
	wants map[string]bool
	// lockLabels are the cycle's LOCK message labels (TFR dependencies).
	lockLabels []message.Label
	// prevTFRLabels are the previous cycle's TFR labels (LOCK deps).
	prevTFRLabels []message.Label
	tfrLabels     []message.Label
	// seq is the arbitration sequence once all LOCKs are in; holderIdx
	// indexes the current holder (-1 before the sequence is known).
	seq       []string
	holderIdx int
	// waiters are local acquirers blocked until self holds the lock.
	waiters []chan uint64
	// holding reports self currently holds the lock (Release pending).
	holding bool
	// grants counts lock grants observed (all members).
	grants uint64
}

// NewArbiter constructs an arbiter replica.
func NewArbiter(cfg Config) (*Arbiter, error) {
	if cfg.Group == nil || !cfg.Group.Contains(cfg.Self) {
		return nil, fmt.Errorf("lockarb: %q is not a member of the group", cfg.Self)
	}
	if cfg.Layer == nil {
		return nil, fmt.Errorf("lockarb: nil total-order layer")
	}
	return &Arbiter{
		self:      cfg.Self,
		grp:       cfg.Group,
		layer:     cfg.Layer,
		onGrant:   cfg.OnGrant,
		wants:     make(map[string]bool, cfg.Group.Size()),
		holderIdx: -1,
	}, nil
}

// Start opens arbitration cycle 1. The member's first LOCK broadcast is
// deferred until it has local acquirers or sees another member's LOCK, so
// an idle group exchanges no messages. Every member must call Start once.
func (a *Arbiter) Start() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("lockarb: already started")
	}
	a.started = true
	a.cycle = 1
	send, cycle := a.maybeMarkSendLocked(len(a.waiters) > 0)
	a.mu.Unlock()
	if send {
		return a.sendLock(cycle, true, nil)
	}
	return nil
}

// maybeMarkSendLocked decides whether this member's LOCK for the current
// cycle should be broadcast now (it has not been sent and demand exists).
// Caller holds a.mu; the actual send happens unlocked.
func (a *Arbiter) maybeMarkSendLocked(demand bool) (bool, uint64) {
	if !a.started || a.sentLock || !demand {
		return false, 0
	}
	a.sentLock = true
	return true, a.cycle
}

// Acquire blocks until this member holds the lock, returning the cycle in
// which it was granted. The caller must call Release exactly once per
// successful Acquire.
func (a *Arbiter) Acquire(ctx context.Context) (uint64, error) {
	ch := make(chan uint64, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0, ErrClosed
	}
	a.waiters = append(a.waiters, ch)
	send, cycle := a.maybeMarkSendLocked(true)
	deps := append([]message.Label(nil), a.prevTFRLabels...)
	a.mu.Unlock()
	if send {
		if err := a.sendLock(cycle, true, deps); err != nil {
			return 0, err
		}
	}
	select {
	case cycle := <-ch:
		return cycle, nil
	case <-ctx.Done():
		// Best effort removal; a grant racing the cancellation is passed
		// on at the next Release of whoever holds it.
		a.mu.Lock()
		for i, w := range a.waiters {
			if w == ch {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
		return 0, fmt.Errorf("lockarb: acquire at %q: %w", a.self, ctx.Err())
	}
}

// Release hands the lock to the next member of the arbitration sequence
// by broadcasting TFR.
func (a *Arbiter) Release() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	if !a.holding {
		a.mu.Unlock()
		return fmt.Errorf("lockarb: %q releasing a lock it does not hold", a.self)
	}
	a.holding = false
	cycle := a.cycle
	k := a.holderIdx
	deps := append([]message.Label(nil), a.lockLabels...)
	a.mu.Unlock()

	body := binary.AppendUvarint(nil, cycle)
	body = binary.AppendUvarint(body, uint64(k))
	_, err := a.layer.ASend(opTFR, message.KindControl, body, message.After(deps...))
	if err != nil {
		return fmt.Errorf("lockarb: release: %w", err)
	}
	return nil
}

// Holder returns the current lock holder, if the sequence is decided and
// a holder is active.
func (a *Arbiter) Holder() (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.holderIdx < 0 || a.holderIdx >= len(a.seq) {
		return "", false
	}
	return a.seq[a.holderIdx], true
}

// Cycle returns the current arbitration cycle S.
func (a *Arbiter) Cycle() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cycle
}

// Grants returns the number of grants observed across all members.
func (a *Arbiter) Grants() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grants
}

// Close unblocks nothing and stops accepting operations; in-flight
// acquires fail only via their contexts.
func (a *Arbiter) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	return nil
}

// Ingest is the DeliverFunc to hand to the total-order layer.
func (a *Arbiter) Ingest(m message.Message) {
	switch m.Op {
	case opLock:
		a.ingestLock(m)
	case opTFR:
		a.ingestTFR(m)
	}
}

func (a *Arbiter) ingestLock(m message.Message) {
	member, cycle, want, err := decodeLock(m.Body)
	if err != nil || !a.grp.Contains(member) {
		return
	}
	a.mu.Lock()
	if a.closed || cycle != a.cycle {
		a.mu.Unlock()
		return
	}
	if _, dup := a.wants[member]; dup {
		a.mu.Unlock()
		return
	}
	a.wants[member] = want
	a.lockLabels = append(a.lockLabels, m.Label)
	// Respond to the cycle if we have not spoken yet: our LOCK (possibly
	// a null request) completes the predetermined count at every member.
	respond, respCycle := a.maybeMarkSendLocked(member != a.self)
	respWant := len(a.waiters) > 0 || a.holding
	deps := append([]message.Label(nil), a.prevTFRLabels...)
	var grant func()
	if len(a.wants) == a.grp.Size() {
		grant = a.decideLocked()
	}
	a.mu.Unlock()
	if respond {
		_ = a.sendLock(respCycle, respWant, deps) // best effort; peers refetch
	}
	if grant != nil {
		grant()
	}
}

// decideLocked computes the arbitration sequence once all LOCKs of the
// cycle are in, returning a function to run unlocked that performs grant
// notifications (or cycle advance when nobody wants the lock).
func (a *Arbiter) decideLocked() func() {
	var requesters []string
	members := a.grp.Members()
	n := len(members)
	// Deterministic fairness: start the rank scan at cycle mod n.
	for i := 0; i < n; i++ {
		m := members[(i+int(a.cycle))%n]
		if a.wants[m] {
			requesters = append(requesters, m)
		}
	}
	a.seq = requesters
	if len(requesters) == 0 {
		a.holderIdx = -1
		return func() { a.advanceCycle() }
	}
	a.holderIdx = 0
	return a.grantLocked(requesters[0])
}

// grantLocked records a grant to holder and returns the unlocked
// notification step. Caller holds a.mu.
func (a *Arbiter) grantLocked(holder string) func() {
	a.grants++
	cycle := a.cycle
	cb := a.onGrant
	var wake chan uint64
	if holder == a.self {
		a.holding = true
		if len(a.waiters) > 0 {
			wake = a.waiters[0]
			a.waiters = a.waiters[1:]
		}
	}
	return func() {
		if wake != nil {
			wake <- cycle
		}
		if cb != nil {
			cb(holder, cycle)
		}
	}
}

func (a *Arbiter) ingestTFR(m message.Message) {
	cycle, k, err := decodeTFR(m.Body)
	if err != nil {
		return
	}
	a.mu.Lock()
	if a.closed || cycle != a.cycle || int(k) != a.holderIdx {
		a.mu.Unlock()
		return
	}
	a.tfrLabels = append(a.tfrLabels, m.Label)
	a.holderIdx++
	if a.holderIdx < len(a.seq) {
		grant := a.grantLocked(a.seq[a.holderIdx])
		a.mu.Unlock()
		grant()
		return
	}
	a.mu.Unlock()
	a.advanceCycle()
}

// advanceCycle opens cycle S+1: resets per-cycle state and broadcasts
// this member's next LOCK.
func (a *Arbiter) advanceCycle() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.cycle++
	a.sentLock = false
	a.wants = make(map[string]bool, a.grp.Size())
	a.prevTFRLabels = a.tfrLabels
	a.tfrLabels = nil
	a.lockLabels = nil
	a.seq = nil
	a.holderIdx = -1
	send, cycle := a.maybeMarkSendLocked(len(a.waiters) > 0)
	deps := append([]message.Label(nil), a.prevTFRLabels...)
	a.mu.Unlock()
	if send {
		// Best effort: a failed send surfaces as a stalled cycle, which
		// the caller observes via Cycle(); the paper's model assumes a
		// reliable broadcast layer beneath.
		_ = a.sendLock(cycle, true, deps)
	}
}

func (a *Arbiter) sendLock(cycle uint64, want bool, deps []message.Label) error {
	body := encodeLock(a.self, cycle, want)
	_, err := a.layer.ASend(opLock, message.KindControl, body, message.After(deps...))
	if err != nil {
		return fmt.Errorf("lockarb: send LOCK(%d): %w", cycle, err)
	}
	return nil
}

func encodeLock(member string, cycle uint64, want bool) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(member)))
	buf = append(buf, member...)
	buf = binary.AppendUvarint(buf, cycle)
	if want {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeLock(data []byte) (member string, cycle uint64, want bool, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return "", 0, false, fmt.Errorf("lockarb: truncated member")
	}
	member = string(data[used : used+int(n)])
	data = data[used+int(n):]
	cycle, used = binary.Uvarint(data)
	if used <= 0 || len(data[used:]) != 1 {
		return "", 0, false, fmt.Errorf("lockarb: truncated lock body")
	}
	return member, cycle, data[used] == 1, nil
}

func decodeTFR(data []byte) (cycle, k uint64, err error) {
	cycle, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, 0, fmt.Errorf("lockarb: truncated tfr cycle")
	}
	k, used2 := binary.Uvarint(data[used:])
	if used2 <= 0 {
		return 0, 0, fmt.Errorf("lockarb: truncated tfr index")
	}
	return cycle, k, nil
}
