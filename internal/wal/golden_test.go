package wal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"causalshare/internal/message"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_v1.wal from the current encoder")

// TestGoldenSegmentV1 freezes the causalshare-wal/v1 on-disk format.
// The golden file holds one record of every kind, written by the
// encoder at the time the format shipped. Both directions are pinned:
// today's encoder must reproduce those bytes exactly, and today's
// decoder must replay them to the original state. If this test fails,
// the wire format changed — bump Magic and add a new golden file
// instead of regenerating this one, or logs written by released
// binaries become unreadable.
func TestGoldenSegmentV1(t *testing.T) {
	got := fixtureSegmentBytes(t)
	path := filepath.Join("testdata", "golden_v1.wal")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}

	// Encoder side: byte-identical output.
	if !bytes.Equal(got, want) {
		if len(got) != len(want) {
			t.Fatalf("encoder drifted from v1 format: %d bytes, golden has %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("encoder drifted from v1 format at byte %d: %#02x != %#02x", i, got[i], want[i])
			}
		}
	}

	// Decoder side: the golden bytes replay to the fixture state.
	var kinds []Kind
	good, scanErr := ScanSegment(want, func(r Record) error {
		kinds = append(kinds, r.Kind)
		return nil
	})
	if scanErr != nil || good != len(want) {
		t.Fatalf("golden segment no longer decodes: prefix %d/%d, %v", good, len(want), scanErr)
	}
	wantKinds := []Kind{
		KindFrontier, KindDeliver, KindDeliver, KindDeliver,
		KindMessage, KindEpoch, KindOrder, KindCommit,
		KindMember, KindMember,
	}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("golden record kinds: got %v, want %v", kinds, wantKinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("golden record %d: got %v, want %v", i, kinds[i], wantKinds[i])
		}
	}

	// And the full replay path reconstructs the original state.
	fs := NewMemFS(1, Faults{})
	f, err := fs.Create("/w/" + segmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	rec, w, err := Recover(Options{Dir: "/w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rec.Truncated {
		t.Fatalf("golden segment reported truncated: %v", rec.TruncatedErr)
	}
	wantFrontier := map[string]uint64{"a": 5, "b~seq": 7, "c~seq": 2}
	for o, s := range wantFrontier {
		if rec.Frontier[o] != s {
			t.Fatalf("frontier[%s] = %d, want %d (full: %v)", o, rec.Frontier[o], s, rec.Frontier)
		}
	}
	if rec.Epoch != 2 || rec.NextDeliver != 9 {
		t.Fatalf("epoch/nextDeliver = %d/%d, want 2/9", rec.Epoch, rec.NextDeliver)
	}
	if len(rec.Assigns) != 1 || rec.Assigns[0] != (Assign{Seq: 9, Epoch: 2, Label: lbl("a", 5)}) {
		t.Fatalf("assigns: %+v", rec.Assigns)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Label != lbl("a", 5) ||
		rec.Pending[0].Op != "chaos.op" || string(rec.Pending[0].Body) != "a/5" ||
		rec.Pending[0].Kind != message.KindNonCommutative {
		t.Fatalf("pending: %+v", rec.Pending)
	}
	if down, ok := rec.Down["b"]; !ok || down {
		t.Fatalf("down verdict: %v (last write was up)", rec.Down)
	}
	if dig := FrontierDigest(rec.Frontier); dig == 0 {
		t.Fatal("frontier digest degenerate")
	}
}
