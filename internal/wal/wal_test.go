package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"causalshare/internal/message"
	"causalshare/internal/telemetry"
)

func lbl(origin string, seq uint64) message.Label {
	return message.Label{Origin: origin, Seq: seq}
}

func counterValue(s telemetry.Snapshot, name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

func gaugeValue(s telemetry.Snapshot, name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// journalFixture writes one of every record kind. Tests replay against
// the state it encodes.
func journalFixture(w *WAL) {
	w.Frontier(map[string]uint64{"a": 3, "b~seq": 7})
	w.Deliver(lbl("a", 4))
	w.Deliver(lbl("a", 5))
	w.Deliver(lbl("c~seq", 2))
	m := message.Message{
		Label: lbl("a", 5),
		Deps:  message.After(lbl("a", 4)),
		Kind:  message.KindNonCommutative,
		Op:    "chaos.op",
		Body:  []byte("a/5"),
	}
	w.Message(&m)
	w.Epoch(2)
	w.Order(2, 9, lbl("a", 5))
	w.Commit(9)
	w.Member("b", true)
	w.Member("b", false)
}

func TestRecoverRoundTrip(t *testing.T) {
	for _, policy := range []Policy{PolicyEach, PolicyInterval, PolicyAsync} {
		t.Run(policy.String(), func(t *testing.T) {
			fs := NewMemFS(1, Faults{})
			opts := Options{Dir: "/w", FS: fs, Policy: policy}
			w, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			journalFixture(w)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			rec, w2, err := Recover(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if rec.Truncated {
				t.Fatalf("clean log reported truncation: %v", rec.TruncatedErr)
			}
			if got := rec.Frontier["a"]; got != 5 {
				t.Fatalf("frontier[a] = %d, want 5", got)
			}
			if got := rec.Frontier["b~seq"]; got != 7 {
				t.Fatalf("frontier[b~seq] = %d, want 7 (checkpoint)", got)
			}
			if rec.Epoch != 2 {
				t.Fatalf("epoch = %d, want 2", rec.Epoch)
			}
			if rec.NextDeliver != 9 {
				t.Fatalf("nextDeliver = %d, want 9", rec.NextDeliver)
			}
			if len(rec.Assigns) != 1 || rec.Assigns[0].Seq != 9 || rec.Assigns[0].Label != lbl("a", 5) {
				t.Fatalf("assigns = %+v", rec.Assigns)
			}
			// Seq 9's payload is retained (commit frontier is 9 = first
			// unreleased), so it must surface as holdback.
			if len(rec.Pending) != 1 || rec.Pending[0].Op != "chaos.op" {
				t.Fatalf("pending = %+v", rec.Pending)
			}
			if down, ok := rec.Down["b"]; !ok || down {
				t.Fatalf("down[b] = %v/%v, want false (last verdict wins)", down, ok)
			}
		})
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	fs := NewMemFS(1, Faults{})
	rec, w, err := Recover(Options{Dir: "/fresh", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(rec.Frontier) != 0 || rec.Epoch != 0 || rec.NextDeliver != 1 ||
		len(rec.Assigns) != 0 || len(rec.Pending) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered non-zero state: %+v", rec)
	}
}

func TestCommitReleasesPending(t *testing.T) {
	fs := NewMemFS(1, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		m := message.Message{Label: lbl("a", i), Kind: message.KindNonCommutative, Op: "op", Body: []byte{byte(i)}}
		w.Message(&m)
		w.Order(0, i, m.Label)
	}
	w.Commit(3) // released seqs 1 and 2
	_ = w.Close()
	rec, w2, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(rec.Pending) != 1 || rec.Pending[0].Label != lbl("a", 3) {
		t.Fatalf("pending after commit = %+v, want only a/3", rec.Pending)
	}
	if len(rec.Assigns) != 3 {
		t.Fatalf("assigns retained = %d, want 3 (failover re-announcement needs them)", len(rec.Assigns))
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS(1, Faults{})
	reg := telemetry.NewRegistry()
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach, SegmentBytes: 256, Telemetry: reg}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := uint64(1); i <= n; i++ {
		w.Deliver(lbl("rotator", i))
	}
	_ = w.Close()
	names, _ := fs.List("/w")
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %v", names)
	}
	rec, w2, err := Recover(Options{Dir: "/w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Frontier["rotator"] != n {
		t.Fatalf("frontier = %d, want %d across %d segments", rec.Frontier["rotator"], uint64(n), len(names))
	}
	if rec.Segments != len(names) {
		t.Fatalf("replayed %d segments, dir has %d", rec.Segments, len(names))
	}
	if got := gaugeValue(reg.Snapshot(), "wal_segments"); got < 3 {
		t.Fatalf("wal_segments = %d, want >= 3", got)
	}
}

func TestRecoverAppendsAboveOldSegments(t *testing.T) {
	fs := NewMemFS(1, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach}
	w, _ := Open(opts)
	w.Deliver(lbl("a", 1))
	_ = w.Close()
	_, w2, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2.Deliver(lbl("a", 2))
	_ = w2.Close()
	rec, w3, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if rec.Frontier["a"] != 2 {
		t.Fatalf("second incarnation's records lost: frontier = %d", rec.Frontier["a"])
	}
	names, _ := fs.List("/w")
	if len(names) < 2 {
		t.Fatalf("each incarnation should own a segment, got %v", names)
	}
}

func TestWriteCheckpointRoundTrip(t *testing.T) {
	fs := NewMemFS(1, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyAsync}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := Recovered{
		Frontier:    map[string]uint64{"a": 10, "b": 20},
		Epoch:       3,
		NextDeliver: 12,
		Assigns:     []Assign{{Seq: 12, Epoch: 3, Label: lbl("a", 10)}},
		Pending: []message.Message{
			{Label: lbl("a", 10), Kind: message.KindNonCommutative, Op: "op", Body: []byte("x")},
		},
	}
	if err := w.WriteCheckpoint(base); err != nil {
		t.Fatal(err)
	}
	fs.Crash() // checkpoint must have been forced durable despite async
	_ = w.Close()
	rec, w2, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Frontier["a"] != 10 || rec.Frontier["b"] != 20 || rec.Epoch != 3 || rec.NextDeliver != 12 {
		t.Fatalf("checkpoint did not survive crash: %+v", rec)
	}
	if len(rec.Pending) != 1 || len(rec.Assigns) != 1 {
		t.Fatalf("checkpoint holdback lost: %+v", rec)
	}
}

func TestPolicyAsyncCrashLosesOnlyTail(t *testing.T) {
	fs := NewMemFS(1, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyAsync, Interval: time.Hour}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Deliver(lbl("a", 1))
	if err := w.Sync(); err != nil { // explicit barrier
		t.Fatal(err)
	}
	w.Deliver(lbl("a", 2)) // still buffered: Interval is an hour away
	fs.Crash()
	rec, w2, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Frontier["a"] != 1 {
		t.Fatalf("frontier = %d, want the synced prefix 1", rec.Frontier["a"])
	}
	_ = w.Close()
}

func TestNilWALIsSafe(t *testing.T) {
	var w *WAL
	w.Deliver(lbl("a", 1))
	m := message.Message{Label: lbl("a", 1)}
	w.Message(&m)
	w.Epoch(1)
	w.Order(1, 1, m.Label)
	w.Commit(2)
	w.Member("b", true)
	w.Frontier(map[string]uint64{"a": 1})
	if err := w.WriteCheckpoint(Recovered{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"each": PolicyEach, "per-record": PolicyEach,
		"interval": PolicyInterval, "group-commit": PolicyInterval,
		"async": PolicyAsync,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestFrontierDigest(t *testing.T) {
	a := map[string]uint64{"x": 1, "y": 2}
	b := map[string]uint64{"y": 2, "x": 1}
	if FrontierDigest(a) != FrontierDigest(b) {
		t.Fatal("digest must be iteration-order independent")
	}
	b["x"] = 3
	if FrontierDigest(a) == FrontierDigest(b) {
		t.Fatal("digest must be value sensitive")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	opts := Options{Dir: dir, Policy: PolicyEach}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	journalFixture(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, w2, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Frontier["a"] != 5 || rec.NextDeliver != 9 {
		t.Fatalf("OSFS recovery drifted: %+v", rec)
	}
	// A torn tail on the real filesystem truncates the same way.
	names, _ := (OSFS{}).List(dir)
	last := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec2, w3, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if !rec2.Truncated {
		t.Fatal("torn tail on OSFS not reported")
	}
}

func TestDegradedWriteKeepsLogUsable(t *testing.T) {
	fs := NewMemFS(1, Faults{WriteBudget: 64})
	reg := telemetry.NewRegistry()
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach, Telemetry: reg}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		w.Deliver(lbl("a", i))
	}
	if w.Err() == nil {
		t.Fatal("64-byte budget never tripped ENOSPC")
	}
	if !errors.Is(w.Err(), ErrNoSpace) {
		t.Fatalf("sticky error = %v, want ErrNoSpace", w.Err())
	}
	_ = w.Close()
	if counterValue(reg.Snapshot(), "wal_append_errors_total") == 0 {
		t.Fatal("append errors not counted")
	}
	// Recovery over the partial log must still yield a clean prefix
	// (space was freed before the restart).
	fs.SetFaults(Faults{})
	rec, w2, err := Recover(Options{Dir: "/w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Frontier["a"] == 0 && !rec.Truncated {
		t.Fatalf("nothing recovered and no truncation: %+v", rec)
	}
	if rec.Frontier["a"] > 50 {
		t.Fatalf("recovered beyond what was written: %d", rec.Frontier["a"])
	}
}
