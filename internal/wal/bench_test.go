// Benchmarks behind `make bench-wal` (experiment E17): the raw append
// cost of each sync policy on a real filesystem, and recovery replay
// time as a function of log length. The broadcast-latency half of the
// sweep lives in the root package (BenchmarkDurableBroadcastPolicy),
// where the WAL is armed under the full fan-out pipeline.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"causalshare/internal/message"
)

// BenchmarkWALAppendPolicy measures one journaled delivery per iteration
// under each sync policy, on the real filesystem. PolicyEach pays an
// fsync per record; PolicyInterval and PolicyAsync only encode into the
// buffer and let the background loop write, so the gap between the rows
// is the price of per-record durability.
func BenchmarkWALAppendPolicy(b *testing.B) {
	for _, row := range []struct {
		name   string
		policy Policy
	}{
		{"async", PolicyAsync},
		{"interval", PolicyInterval},
		{"each", PolicyEach},
	} {
		b.Run("policy="+row.name, func(b *testing.B) {
			w, err := Open(Options{Dir: b.TempDir(), Policy: row.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = w.Close() }()
			l := message.Label{Origin: "bench-member", Seq: 0}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Seq++
				w.Deliver(l)
			}
			b.StopTimer()
			if err := w.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWALRecovery measures restart-from-disk replay: a log holding
// `records` deliveries is recovered from the real filesystem. ns/op is
// the full Recover call (segment scan, CRC checks, frontier rebuild) —
// the startup cost a restarting member pays before it can rejoin.
func BenchmarkWALRecovery(b *testing.B) {
	for _, records := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			w, err := Open(Options{Dir: dir, Policy: PolicyAsync})
			if err != nil {
				b.Fatal(err)
			}
			l := message.Label{Origin: "bench-member", Seq: 0}
			for i := 0; i < records; i++ {
				l.Seq++
				w.Deliver(l)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			orig, err := OSFS{}.List(dir)
			if err != nil {
				b.Fatal(err)
			}
			keep := make(map[string]bool, len(orig))
			for _, name := range orig {
				keep[name] = true
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, rw, err := Recover(Options{Dir: dir, Policy: PolicyAsync})
				if err != nil {
					b.Fatal(err)
				}
				if rec.Frontier["bench-member"] != uint64(records) {
					b.Fatalf("recovered frontier %d, want %d",
						rec.Frontier["bench-member"], records)
				}
				_ = rw.Close()
				// Drop the fresh segment each Recover opened, outside the
				// timer, so every iteration replays the same log.
				b.StopTimer()
				names, err := OSFS{}.List(dir)
				if err != nil {
					b.Fatal(err)
				}
				for _, name := range names {
					if !keep[name] {
						_ = os.Remove(filepath.Join(dir, name))
					}
				}
				b.StartTimer()
			}
		})
	}
}
