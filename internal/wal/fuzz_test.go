package wal

import (
	"bytes"
	"testing"
	"time"
)

// fixtureSegmentBytes builds one durable segment holding one record of
// every kind, and returns its raw bytes.
func fixtureSegmentBytes(t testing.TB) []byte {
	t.Helper()
	fs := NewMemFS(1, Faults{})
	opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach}
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	journalFixture(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List("/w")
	if err != nil || len(names) != 1 {
		t.Fatalf("fixture segments: %v %v", names, err)
	}
	f, err := fs.Open("/w/" + names[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, fs.Size("/w/"+names[0]))
	if _, err := f.Read(data); err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzWALDecode hammers ScanSegment with arbitrary bytes. The codec's
// contract under garbage input: never panic, report a valid-prefix
// length within bounds, and be self-consistent — rescanning the prefix
// it blessed must succeed cleanly with the same record count.
func FuzzWALDecode(f *testing.F) {
	good := fixtureSegmentBytes(f)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(Magic)])
	f.Add([]byte{})
	f.Add([]byte(Magic + "garbage"))
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	doubled := append(bytes.Clone(good), good[len(Magic):]...)
	f.Add(doubled)

	f.Fuzz(func(t *testing.T, data []byte) {
		count := 0
		good, err := ScanSegment(data, func(Record) error { count++; return nil })
		if good < 0 || good > len(data) {
			t.Fatalf("valid prefix %d out of bounds for %d bytes", good, len(data))
		}
		if err == nil && good != len(data) {
			t.Fatalf("clean scan consumed %d of %d bytes", good, len(data))
		}
		if good == 0 {
			return
		}
		recount := 0
		regood, rerr := ScanSegment(data[:good], func(Record) error { recount++; return nil })
		if rerr != nil {
			t.Fatalf("rescan of blessed prefix failed: %v", rerr)
		}
		if regood != good || recount != count {
			t.Fatalf("rescan disagreed: prefix %d/%d, records %d/%d", regood, good, recount, count)
		}
	})
}

// FuzzWALRecoverTail appends a fuzzed tail to a valid segment and runs
// full recovery over it: replay must not panic, must keep the intact
// fixture prefix, and must leave a log that accepts new appends.
func FuzzWALRecoverTail(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("causalshare-wal/v1"))

	f.Fuzz(func(t *testing.T, tail []byte) {
		fs := NewMemFS(1, Faults{})
		opts := Options{Dir: "/w", FS: fs, Policy: PolicyEach, Interval: time.Hour}
		w, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		journalFixture(w)
		_ = w.Close()
		names, _ := fs.List("/w")
		seg, err := fs.Open("/w/" + names[0])
		if err != nil {
			t.Fatal(err)
		}
		// memHandle writes always append, so this lands after the valid
		// records.
		if _, err := seg.Write(tail); err != nil {
			t.Fatal(err)
		}
		_ = seg.Sync()
		_ = seg.Close()

		rec, w2, err := Recover(opts)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer w2.Close()
		// The fixture's intact records must survive whatever the tail was.
		// (≥, not ==: a fuzzed tail that happens to decode as valid
		// records can only move the state forward.)
		if rec.Frontier["a"] < 5 || rec.Epoch < 2 || rec.NextDeliver < 9 {
			t.Fatalf("fixture state lost under tail garbage: %+v", rec)
		}
		w2.Deliver(lbl("a", 6))
		if err := w2.Sync(); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
