package wal

import "causalshare/internal/telemetry"

// walInstruments are the wal_* metrics. A nil registry yields nil
// instruments, whose methods are no-ops — the log runs unobserved at
// zero cost.
type walInstruments struct {
	appends      *telemetry.Counter
	appendBytes  *telemetry.Counter
	appendErrors *telemetry.Counter
	appendLat    *telemetry.Histogram
	syncs        *telemetry.Counter
	syncErrors   *telemetry.Counter
	syncLat      *telemetry.Histogram
	segments     *telemetry.Gauge
	segmentBytes *telemetry.Gauge
	replayed     *telemetry.Counter
	replayLat    *telemetry.Histogram
	truncations  *telemetry.Counter
}

func newWALInstruments(reg *telemetry.Registry) walInstruments {
	return walInstruments{
		appends: reg.Counter("wal_appends_total",
			"Records appended to the write-ahead log."),
		appendBytes: reg.Counter("wal_append_bytes_total",
			"Bytes appended to the write-ahead log (record framing included)."),
		appendErrors: reg.Counter("wal_append_errors_total",
			"Appends dropped because the log is in a degraded state (write failure, ENOSPC)."),
		appendLat: reg.Histogram("wal_append_seconds",
			"Latency of one journal append, buffering through the configured sync policy.",
			telemetry.DurationBuckets),
		syncs: reg.Counter("wal_syncs_total",
			"Segment fsyncs issued (per-record, group-commit, rotation, and close)."),
		syncErrors: reg.Counter("wal_sync_errors_total",
			"Segment fsyncs that returned an error; the affected bytes may not survive a crash."),
		syncLat: reg.Histogram("wal_sync_seconds",
			"Latency of one segment fsync.",
			telemetry.DurationBuckets),
		segments: reg.Gauge("wal_segments",
			"Segment files the log currently spans."),
		segmentBytes: reg.Gauge("wal_segment_bytes",
			"Bytes written to the active segment (magic header included)."),
		replayed: reg.Counter("wal_replay_records_total",
			"Records replayed from disk during recovery."),
		replayLat: reg.Histogram("wal_replay_seconds",
			"Wall time of one recovery replay over all segments.",
			telemetry.DurationBuckets),
		truncations: reg.Counter("wal_truncations_total",
			"Recoveries that truncated a torn or corrupt record tail (later segments dropped with it)."),
	}
}
