package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"causalshare/internal/message"
)

// Assign is one recovered (seq → label) sequencer assignment with the
// epoch it was made under — wal's view of total.SyncAssign, kept local so
// the package stays a leaf dependency.
type Assign struct {
	Seq   uint64
	Epoch uint64
	Label message.Label
}

// Recovered is the state a replay rebuilds: everything a restarted
// member needs to resume as its own prior incarnation. The harness turns
// it into the engine seed (Frontier) and the sequencer snapshot (Epoch,
// NextDeliver, Assigns, Pending) that a live peer would otherwise have
// to serve.
type Recovered struct {
	// Frontier is the delivered-watermark map (highest delivered seq per
	// origin) — what SeedFrontier takes.
	Frontier map[string]uint64
	// Epoch is the highest sequencer epoch journaled.
	Epoch uint64
	// NextDeliver is the sequencer delivery frontier (first unreleased
	// global sequence number; 1 when nothing was released).
	NextDeliver uint64
	// Assigns are the retained sequence assignments, ascending by Seq.
	Assigns []Assign
	// Pending is the sequencer holdback: journaled payloads that were
	// causally delivered but not yet released, in label order.
	Pending []message.Message
	// Down is the last journaled membership verdict per peer (true =
	// down). Stale by definition — the group moved on while this member
	// was dead — so harnesses treat it as a hint, not truth.
	Down map[string]bool
	// Records counts replayed records; Segments counts segment files
	// replayed (truncated tail included).
	Records  int
	Segments int
	// Truncated reports that replay hit a torn or corrupt record and
	// dropped it, everything after it, and every later segment.
	Truncated bool
	// TruncatedErr is the scan error that stopped replay (nil when the
	// log was clean).
	TruncatedErr error
}

// Recover replays the log in opts.Dir — truncating at the first torn or
// corrupt record and discarding every segment after it — and reopens the
// log for appending above what survived. An empty or missing directory
// recovers the zero state: a first incarnation and a restart share one
// code path. The returned WAL is ready for use; the caller journals a
// checkpoint of whatever state it actually resumes with (see
// WriteCheckpoint) before new traffic.
func Recover(opts Options) (*Recovered, *WAL, error) {
	ins := newWALInstruments(opts.Telemetry)
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	t0 := time.Now()
	rec, nextIndex, err := replay(fs, opts.Dir, ins)
	ins.replayLat.ObserveSince(t0)
	if err != nil {
		return nil, nil, err
	}
	w, _, err := open(opts, ins, nextIndex)
	if err != nil {
		return nil, nil, err
	}
	return rec, w, nil
}

// replay walks the segments in order, applying every valid record to a
// replayState. It returns the recovered state and the index the next
// fresh segment should use.
func replay(fs FS, dir string, ins walInstruments) (*Recovered, int, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	segs := segmentIndexes(names)
	st := newReplayState()
	rec := &Recovered{}
	nextIndex := 0
	for i, idx := range segs {
		nextIndex = idx + 1
		name := dir + "/" + segmentName(idx)
		good, scanErr, err := replaySegment(fs, name, st)
		if err != nil {
			return nil, 0, err
		}
		rec.Segments++
		if scanErr == nil {
			continue
		}
		// Torn or corrupt tail: truncate this segment to its valid prefix
		// and drop every later segment — records past a corruption are
		// unordered relative to the lost ones and must not resurrect.
		rec.Truncated = true
		rec.TruncatedErr = scanErr
		ins.truncations.Inc()
		if err := truncateSegment(fs, name, good); err != nil {
			return nil, 0, err
		}
		for _, later := range segs[i+1:] {
			if err := fs.Remove(dir + "/" + segmentName(later)); err != nil {
				return nil, 0, fmt.Errorf("wal: drop segment after corruption: %w", err)
			}
		}
		break
	}
	st.finish(rec)
	rec.Records = st.records
	ins.replayed.Add(uint64(st.records))
	return rec, nextIndex, nil
}

// replaySegment scans one segment into st. The first return is the valid
// prefix length; scanErr is the (recoverable) reason the scan stopped
// early, err a hard I/O failure.
func replaySegment(fs FS, name string, st *replayState) (int, error, error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: open %s: %w", name, err)
	}
	data, err := io.ReadAll(f)
	_ = f.Close()
	if err != nil {
		return 0, nil, fmt.Errorf("wal: read %s: %w", name, err)
	}
	good, scanErr := ScanSegment(data, st.apply)
	if scanErr == nil && good != len(data) {
		scanErr = ErrTruncated
	}
	// An empty file (created but never flushed) has no magic; treat it as
	// an all-torn segment rather than a foreign file.
	if errors.Is(scanErr, ErrBadMagic) && len(data) < len(Magic) {
		scanErr = fmt.Errorf("%w: segment header", ErrTruncated)
		good = 0
	}
	return good, scanErr, nil
}

// truncateSegment cuts name down to size bytes and syncs the result, so
// a future recovery does not trip over the same torn tail.
func truncateSegment(fs FS, name string, size int) error {
	f, err := fs.Open(name)
	if err != nil {
		return fmt.Errorf("wal: reopen for truncate %s: %w", name, err)
	}
	defer f.Close()
	if err := f.Truncate(int64(size)); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync truncated %s: %w", name, err)
	}
	return nil
}

// replayState folds records into the sequencer/engine state they encode.
type replayState struct {
	frontier    map[string]uint64
	data        map[message.Label]message.Message
	seqOf       map[uint64]Assign
	seqByLabel  map[message.Label]uint64
	down        map[string]bool
	epoch       uint64
	nextDeliver uint64
	records     int
}

func newReplayState() *replayState {
	return &replayState{
		frontier:    make(map[string]uint64),
		data:        make(map[message.Label]message.Message),
		seqOf:       make(map[uint64]Assign),
		seqByLabel:  make(map[message.Label]uint64),
		down:        make(map[string]bool),
		nextDeliver: 1,
	}
}

func (st *replayState) apply(r Record) error {
	st.records++
	switch r.Kind {
	case KindDeliver:
		if r.Label.Seq > st.frontier[r.Label.Origin] {
			st.frontier[r.Label.Origin] = r.Label.Seq
		}
	case KindFrontier:
		for _, l := range r.Frontier {
			if l.Seq > st.frontier[l.Origin] {
				st.frontier[l.Origin] = l.Seq
			}
		}
	case KindMessage:
		if _, dup := st.data[r.Msg.Label]; !dup {
			st.data[r.Msg.Label] = r.Msg
		}
	case KindEpoch:
		if r.Epoch > st.epoch {
			st.epoch = r.Epoch
		}
	case KindOrder:
		st.mergeAssign(Assign{Seq: r.Seq, Epoch: r.Epoch, Label: r.Label})
	case KindCommit:
		// Advance the delivery frontier, releasing (forgetting) the
		// payloads the live sequencer released before journaling this.
		for s := st.nextDeliver; s < r.Seq; s++ {
			if a, ok := st.seqOf[s]; ok {
				delete(st.data, a.Label)
			}
		}
		if r.Seq > st.nextDeliver {
			st.nextDeliver = r.Seq
		}
	case KindMember:
		st.down[r.Peer] = r.Down
	}
	return nil
}

// mergeAssign mirrors the sequencer's conflict rule: per sequence number
// (and per label) the higher-epoch assignment wins.
func (st *replayState) mergeAssign(a Assign) {
	if old, ok := st.seqByLabel[a.Label]; ok && old != a.Seq {
		if st.seqOf[old].Epoch > a.Epoch {
			return
		}
		delete(st.seqOf, old)
		delete(st.seqByLabel, a.Label)
	}
	if ex, ok := st.seqOf[a.Seq]; ok {
		if ex.Label == a.Label {
			if a.Epoch > ex.Epoch {
				st.seqOf[a.Seq] = a
			}
			return
		}
		if ex.Epoch >= a.Epoch {
			return
		}
		delete(st.seqByLabel, ex.Label)
	}
	st.seqOf[a.Seq] = a
	st.seqByLabel[a.Label] = a.Seq
}

// finish materializes the fold into a Recovered.
func (st *replayState) finish(rec *Recovered) {
	// Drop holdback entries whose assigned sequence the commit frontier
	// already passed: re-seeding them would wedge the sequencer's
	// holdback with messages nothing will ever release again.
	for l, seq := range st.seqByLabel {
		if seq < st.nextDeliver {
			delete(st.data, l)
		}
	}
	rec.Frontier = st.frontier
	rec.Epoch = st.epoch
	rec.NextDeliver = st.nextDeliver
	rec.Down = st.down
	rec.Assigns = make([]Assign, 0, len(st.seqOf))
	for _, a := range st.seqOf {
		rec.Assigns = append(rec.Assigns, a)
	}
	sort.Slice(rec.Assigns, func(i, j int) bool { return rec.Assigns[i].Seq < rec.Assigns[j].Seq })
	rec.Pending = make([]message.Message, 0, len(st.data))
	for _, m := range st.data {
		rec.Pending = append(rec.Pending, m)
	}
	sort.Slice(rec.Pending, func(i, j int) bool {
		if rec.Pending[i].Label.Origin != rec.Pending[j].Label.Origin {
			return rec.Pending[i].Label.Origin < rec.Pending[j].Label.Origin
		}
		return rec.Pending[i].Label.Seq < rec.Pending[j].Label.Seq
	})
}
