package wal

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoSpace is the shim's ENOSPC: appends past the configured budget
// fail after a (possibly partial) write, exactly like a full disk.
var ErrNoSpace = errors.New("wal: no space left on device")

// ErrSyncFault is the error MemFS returns from Sync when SyncErrors is
// armed — the fsync-failed case callers must treat as "those bytes may
// not survive".
var ErrSyncFault = errors.New("wal: injected fsync error")

// Faults configures the failure modes MemFS injects. The zero value is a
// well-behaved filesystem. All probabilities draw from the shim's seeded
// RNG, so a given (seed, operation sequence) reproduces bit-identically.
type Faults struct {
	// TornWrites makes Crash tear the unsynced tail at a random byte
	// boundary instead of discarding it whole: a prefix of the volatile
	// bytes survives, modelling a sector-straddling write cut by power
	// loss. Without it Crash keeps exactly the synced prefix.
	TornWrites bool
	// FlipBitOnCrash corrupts one random durable byte (one bit) at the
	// next Crash, modelling media decay the CRC must catch.
	FlipBitOnCrash bool
	// ShortReads makes Read return at most a few bytes per call. Legal
	// io.Reader behavior that shakes out callers assuming full reads.
	ShortReads bool
	// SyncErrors makes every Sync fail with ErrSyncFault without
	// promoting anything to durable.
	SyncErrors bool
	// SyncLies makes Sync report success WITHOUT promoting volatile bytes
	// to durable — the firmware-lies-about-flush case. A later Crash loses
	// data the caller was told is safe.
	SyncLies bool
	// WriteBudget, when positive, is the total number of bytes the shim
	// accepts across all files before Write starts failing with ErrNoSpace
	// (after a partial write of whatever budget remains).
	WriteBudget int64
}

// MemFS is an in-memory FS with crash semantics: every write lands
// volatile, Sync promotes a file's bytes to durable, and Crash discards
// whatever is not durable (possibly tearing or corrupting what is,
// per Faults). The torture suite drives it through every crash point the
// real log can hit.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	rng     *rand.Rand
	faults  Faults
	written int64
	// crashes and flips count injected events for test assertions.
	crashes int
	flips   int
}

type memFile struct {
	data   []byte
	synced int // durable prefix length
}

// NewMemFS returns a shim whose injected faults draw from seed.
func NewMemFS(seed int64, faults Faults) *MemFS {
	return &MemFS{
		files:  make(map[string]*memFile),
		rng:    rand.New(rand.NewSource(seed)),
		faults: faults,
	}
}

// Crash simulates power loss: every file's volatile suffix is discarded
// (torn at a random byte boundary when Faults.TornWrites is set), and one
// durable bit may flip (Faults.FlipBitOnCrash). Open handles keep working
// afterwards — the torture suite reuses the FS across incarnations, as a
// restarted process reuses its disk.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashes++
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic RNG consumption order
	for _, name := range names {
		f := m.files[name]
		keep := f.synced
		if m.faults.TornWrites && len(f.data) > f.synced {
			keep += m.rng.Intn(len(f.data) - f.synced + 1)
		}
		f.data = f.data[:keep]
		if f.synced > keep {
			f.synced = keep
		}
	}
	if m.faults.FlipBitOnCrash {
		var candidates []string
		for _, name := range names {
			if len(m.files[name].data) > 0 {
				candidates = append(candidates, name)
			}
		}
		if len(candidates) > 0 {
			f := m.files[candidates[m.rng.Intn(len(candidates))]]
			i := m.rng.Intn(len(f.data))
			f.data[i] ^= 1 << uint(m.rng.Intn(8))
			m.flips++
		}
	}
}

// FlipBit corrupts one specific bit of a file for targeted fault tests.
func (m *MemFS) FlipBit(name string, off int, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || off >= len(f.data) {
		return fmt.Errorf("wal: flip %s@%d: no such byte", name, off)
	}
	f.data[off] ^= 1 << (bit % 8)
	m.flips++
	return nil
}

// Flips returns how many bits have been flipped (by Crash or FlipBit).
func (m *MemFS) Flips() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flips
}

// SetFaults swaps the fault configuration mid-run (e.g. arm SyncErrors
// for a window, then heal).
func (m *MemFS) SetFaults(f Faults) {
	m.mu.Lock()
	m.faults = f
	m.mu.Unlock()
}

// Size returns the current byte size of a file (0 if absent).
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

// Export writes every file's current content under dir on the real
// filesystem — the artifact hook: when a torture run ends badly the chaos
// harness dumps the in-memory segments next to the flight-recorder boxes
// so CI can upload both.
func (m *MemFS) Export(dir string) ([]string, error) {
	m.mu.Lock()
	snap := make(map[string][]byte, len(m.files))
	for name, f := range m.files {
		snap[name] = append([]byte(nil), f.data...)
	}
	m.mu.Unlock()
	var out []string
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst := filepath.Join(dir, filepath.FromSlash(strings.TrimLeft(name, "/")))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return out, err
		}
		if err := os.WriteFile(dst, snap[name], 0o644); err != nil {
			return out, err
		}
		out = append(out, dst)
	}
	return out, nil
}

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: %w", name, os.ErrNotExist)
	}
	return &memHandle{fs: m, name: name, f: f}, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, name: name, f: f}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// memHandle is one open handle; reads carry their own offset, writes
// always append (the log's only write pattern).
type memHandle struct {
	fs   *MemFS
	name string
	f    *memFile
	off  int
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := len(p)
	if h.fs.faults.ShortReads && n > 1 {
		n = 1 + h.fs.rng.Intn(min(n, 7))
	}
	n = copy(p[:n], h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n := len(p)
	if b := h.fs.faults.WriteBudget; b > 0 {
		remain := b - h.fs.written
		if remain <= 0 {
			return 0, ErrNoSpace
		}
		if int64(n) > remain {
			n = int(remain)
		}
	}
	h.f.data = append(h.f.data, p[:n]...)
	h.fs.written += int64(n)
	if n < len(p) {
		return n, ErrNoSpace
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.faults.SyncErrors {
		return ErrSyncFault
	}
	if h.fs.faults.SyncLies {
		return nil // reported safe, not actually durable
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("wal: truncate %s to %d: out of range", h.name, size)
	}
	h.f.data = h.f.data[:size]
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Close() error { return nil }
